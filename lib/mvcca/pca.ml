type t = { mean : Vec.t; components : Mat.t; variances : Vec.t; intensity : float }

type method_ = [ `Auto | `Cov_eig | `Randomized ]

(* Below this feature dimension the d×d eigendecomposition is cheap enough
   that sketching cannot pay for itself; `Auto only reaches for the
   randomized range finder above it (and when the kept rank leaves room for
   the oversampled sketch to be genuinely truncated). *)
let randomized_dim_threshold = 512

let fit ?(center = true) ?(method_ = `Auto) ?(shrinkage = `None) ~r x =
  let d, n = Mat.dims x in
  if n = 0 then invalid_arg "Pca.fit: no instances";
  let mean = if center then Mat.row_means x else Array.make d 0. in
  let centered = Mat.sub_col_vec x mean in
  let keep = min r d in
  let nf = float_of_int n in
  (* `Lw/`Oas need the covariance itself, which the sketched route exists to
     avoid — they pin the covariance route. *)
  let needs_cov = match shrinkage with `None | `Fixed _ -> false | `Lw | `Oas -> true in
  let use_randomized =
    match method_ with
    | `Cov_eig -> false
    | `Randomized ->
      if needs_cov then
        Robust.warnf
          "Pca.fit: `Lw/`Oas shrinkage needs the covariance — using the `Cov_eig route";
      not needs_cov
    | `Auto -> (not needs_cov) && d >= randomized_dim_threshold && 4 * (keep + 8) <= d
  in
  if use_randomized then begin
    let svd, _info = Svd.randomized ~rank:keep centered in
    let rho = match shrinkage with `Fixed f -> Float.max 0. (Float.min 1. f) | _ -> 0. in
    (* μ = tr(C)/d = ‖X̄‖²_F/(n·d), without forming C. *)
    let fro = Mat.frobenius centered in
    let mu = fro *. fro /. (nf *. float_of_int d) in
    let variances =
      Array.map
        (fun s -> ((1. -. rho) *. (s *. s) /. nf) +. (rho *. mu))
        svd.Svd.sigma
    in
    { mean; components = svd.Svd.u; variances; intensity = rho }
  end
  else begin
    let cov = Mat.scale (1. /. nf) (Mat.gram centered) in
    let { Shrink.cov = sh; intensity; target = _ } =
      Shrink.apply ~x:centered ~n shrinkage cov
    in
    let eig = Eigen.decompose sh in
    { mean;
      components = Eigen.top_k eig keep;
      variances = Array.sub eig.Eigen.values 0 keep;
      intensity }
  end

let transform t x = Mat.mul_tn t.components (Mat.sub_col_vec x t.mean)
let components t = Mat.copy t.components
let explained_variance t = Array.copy t.variances
let mean t = Array.copy t.mean
let shrinkage_intensity t = t.intensity
