(** Tensor canonical correlation analysis — the paper's contribution
    (Sec. 4).

    Given m centered views [{Xₚ ∈ R^{dₚ×N}}], TCCA maximizes the high-order
    canonical correlation [ρ = C₁₂…ₘ ×₁ h₁ᵀ … ×ₘ hₘᵀ] subject to
    [hₚᵀ C̃pp hₚ = 1] (Eqs. 4.7–4.8).  Substituting [uₚ = C̃pp^{1/2} hₚ]
    turns this into the best rank-1 approximation of the whitened covariance
    tensor [M = C₁₂…ₘ ×₁ C̃₁₁^{−1/2} … ×ₘ C̃ₘₘ^{−1/2}] (Theorem 2 +
    De Lathauwer 2000b), and the rank-r solution is its CP decomposition,
    computed with ALS (default), HOPM-deflation or the tensor power method.

    The covariance tensor is accumulated streaming over instances, so memory
    is O(Πdₚ) and fit time is independent of N after the single O(N·Πdₚ)
    accumulation pass — the scalability property of Sec. 4.5. *)

type solver =
  | Als of Cp_als.options     (** The paper's choice (Sec. 4.3). *)
  | Sampled_als of Cp_rand.options
      (** Sampled-least-squares ALS (CPRAND) — first-class: runs directly on
          the prepared operator (dense or factored, nothing is materialized),
          honors [budget] deadlines like [Als], and turns the
          [Cp_rand.options.min_fit] accuracy gate into a typed
          [Not_converged] failure. *)
  | Power_deflation           (** Greedy rank-1 deflation (Allen 2012). *)

val default_solver : solver

type whiten = [ `Auto | `Eig | `Randomized of int ]
(** Whitener construction.  [`Eig] is the exact route (covariance + symmetric
    eig ladder).  [`Randomized k] sketches the top-[k] covariance eigenpairs
    with {!Svd.randomized} straight from the centered view — O(dₚ·N·k)
    instead of O(dₚ²·N + dₚ³) — and flattens the unexplored tail onto the
    identity mass [ρμ + ε]; it needs the retained centered views (factored
    path) and a data-independent shrinkage ([`None]/[`Fixed]), degrading to
    [`Eig] with a warning otherwise.  [`Auto] (default) picks the sketch
    (rank 256) per view for tall views ([dₚ ≥ 512]) and stays bit-identical
    to [`Eig] below the threshold. *)

type t

val fit :
  ?eps:float ->
  ?materialize:bool ->
  ?shrinkage:Shrink.t ->
  ?whiten:whiten ->
  ?solver:solver ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.config ->
  r:int ->
  Mat.t array ->
  t
(** [fit ~eps ~r views] with instances as columns; centering is internal and
    frozen.  [eps] is the regularizer of Eq. 4.8 (default 1e-2, the paper's
    linear-experiment value).  [r] is clamped to [min dₚ].  Raises
    [Invalid_argument] on fewer than 2 views or inconsistent instance
    counts, and [Robust.Error] when {!fit_checked} would return [Error] —
    a numerically degraded fit never comes back as a silent NaN model.

    [materialize] selects the covariance-tensor representation:
    [Some true] builds the dense ∏dₚ tensor (required by the
    [Power_deflation] solver), [Some false] keeps it implicit as the rank-N
    factored operator [M = (1/N) Σᵢ ∘ₚ (C̃ₚₚ^{−1/2} x̄ₚᵢ)] — O(N·Σdₚ) memory
    and O(N·Σdₚ·r) per ALS sweep, which is what makes many-view shapes
    (e.g. 5 views at dₚ = 40 ≈ 10⁸ dense entries) fit at all.  The default
    picks dense iff ∏dₚ ≤ [materialize_threshold].  Both paths compute the
    same M; projections agree to solver roundoff.

    [shrinkage] (default [`None], bit-identical to the historical ridge-only
    path) replaces the whitening ladder's first rung: each per-view
    covariance is conditioned with {!Shrink.apply}
    ([(1−ρ)C + ρμI], ρ from Ledoit–Wolf, OAS or fixed) {e before} the
    [ε·10ᵏ] ridge ladder, so the ladder only escalates on top of an already
    well-conditioned target.  [whiten] picks the whitener construction —
    see {!type:whiten}.

    {b Long-running fits}: [budget] bounds the solve — it is probed once per
    ALS/power sweep, and on expiry the fit returns its {e best-so-far} model
    with the [Robust.Deadline_exceeded] diagnostic appended to
    {!solver_info} and pushed through [Robust.warnf] (a deadline is graceful
    degradation, not an error; [fit_checked] still returns [Ok]).
    [checkpoint] (Als solver only; a warning is logged and it is ignored for
    the sampled/deflation solvers) snapshots the full ALS state through
    {!Checkpoint} so a killed process resumes from its last sweep boundary —
    the resumed fit is bit-identical to an uninterrupted one at any
    [TCCA_DOMAINS] setting.  A corrupt, torn, truncated or mismatched
    snapshot degrades to a cold start with a typed warning; it never crashes
    the fit and never yields a silently wrong model. *)

val materialize_threshold : int
(** The ∏dₚ cutoff of the default heuristic (262 144 entries = 2 MB). *)

type prepared
(** The N-dependent work of a fit — centering, whitening, covariance-tensor
    accumulation (or its factored stand-in) — frozen so that several ranks
    can be decomposed from the same operator.  This is what makes dimension
    sweeps cheap: everything up to the CP decomposition is rank-independent
    (Sec. 4.5). *)

val prepare :
  ?eps:float -> ?materialize:bool -> ?shrinkage:Shrink.t -> ?whiten:whiten -> Mat.t array ->
  prepared

val fit_prepared :
  ?solver:solver -> ?budget:Budget.t -> ?checkpoint:Checkpoint.config -> r:int -> prepared -> t

(** {2 Guarded entry points}

    The [_checked] twins return every numerical degradation as a typed
    [Robust.failure] instead of raising; the plain functions above raise
    [Robust.Error] in exactly those situations.  On healthy inputs the two
    are bit-for-bit identical (the escalation ladders' first attempt is the
    historical arithmetic).  Guardrails on the path: per-view whitening
    retries a geometric ridge schedule (ε·10ᵏ, up to 4 attempts) on a Jacobi
    sweep-cap and reports the covariance's numerical rank
    ([Rank_deficient] when 0, a logged warning when merely deficient);
    NaN/Inf are caught at stage boundaries (inputs, the whitened operator,
    projections); ALS failures (non-finite fit, swamp) restart
    deterministically inside {!Cp_als} and surface only when restarts are
    exhausted.  Recovered events land in [Robust.recent_warnings]. *)

val prepare_checked :
  ?eps:float -> ?materialize:bool -> ?shrinkage:Shrink.t -> ?whiten:whiten -> Mat.t array ->
  (prepared, Robust.failure) result

val fit_prepared_checked :
  ?solver:solver ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.config ->
  r:int ->
  prepared ->
  (t, Robust.failure) result

val fit_checked :
  ?eps:float ->
  ?materialize:bool ->
  ?shrinkage:Shrink.t ->
  ?whiten:whiten ->
  ?solver:solver ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.config ->
  r:int ->
  Mat.t array ->
  (t, Robust.failure) result

val materialized : prepared -> bool
(** Whether the prepared operator is the dense tensor (exposed so tests and
    benches can pin which path the heuristic chose). *)

val shrinkage_intensities : prepared -> float array
(** Per-view shrinkage intensity ρ actually applied while whitening —
    all zeros without [shrinkage]. *)

type raw
(** Only the ε-independent work: means, per-view covariance matrices and the
    covariance statistics (dense tensor or retained centered views).  Lets an
    ε-validation loop (the paper tunes ε over {10ⁱ} for the image
    experiments) reuse the single accumulation pass. *)

val prepare_raw : ?materialize:bool -> ?shrinkage:Shrink.t -> Mat.t array -> raw
val prepare_of_raw : ?whiten:whiten -> eps:float -> raw -> prepared

val prepare_of_raw_checked :
  ?whiten:whiten -> eps:float -> raw -> (prepared, Robust.failure) result

val r : t -> int
val n_views : t -> int

val correlations : t -> Vec.t
(** CP weights [λ⁽ᵏ⁾] — the high-order canonical correlations, by
    descending magnitude. *)

val transform_view : t -> int -> Mat.t -> Mat.t
(** [Zₚ = (C̃pp^{−1/2} Uₚ)ᵀ (Xₚ − μₚ)], [r × N] (Eq. 4.11, transposed
    convention: instances stay columns). *)

val transform : t -> Mat.t array -> Mat.t
(** Concatenation [Z ∈ R^{(m·r) × N}] of all projected views — the final
    representation of Fig. 2. *)

val projections : t -> Mat.t array
(** Per-view projection matrices [C̃pp^{−1/2} Uₚ], each [dₚ × r]. *)

val canonical_vectors : t -> Mat.t array
(** The same matrices — [hₚ⁽ᵏ⁾] columns satisfy [hₚᵀ C̃pp hₚ = 1]. *)

val solver_info : t -> string
(** Human-readable convergence note (iterations, fit) for logging. *)

val view_dims : t -> int array
(** Input dimensionality dₚ of each view (what {!transform} expects). *)

(** {2 Serialization surface and warm restarts}

    What a long-lived serving process needs from a fitted model: a plain
    record of its contents (to write durable model files through
    [Checkpoint.Wire]) and a solver preloaded with its whitened-space
    factors (to warm-start an incremental refit). *)

type parts = {
  pt_means : Vec.t array;
  pt_projections : Mat.t array;  (** [C̃pp^{−1/2} Uₚ], whitening folded in. *)
  pt_factors : Mat.t array;      (** The whitened-space [Uₚ] — retained so a
                                     refit can warm-start CP-ALS. *)
  pt_correlations : Vec.t;
  pt_note : string;
}
(** A fitted model, exploded.  All arrays are fresh copies in both
    directions. *)

val to_parts : t -> parts

val of_parts : parts -> t
(** Raises [Invalid_argument] on structural inconsistency (view counts,
    ranks, mean/projection dims) — the guard a deserializer relies on. *)

val warm_solver : ?options:Cp_als.options -> t -> solver
(** An [Als] solver whose init is [Cp_als.Warm] on this model's whitened
    factors: the incremental-refit entry point.  [options] (default
    [Cp_als.default_options]) supplies everything but [init]. *)

val covariance_tensor : Mat.t array -> Tensor.t
(** The centered covariance tensor [C₁₂…ₘ = (1/N) Σₙ x₁ₙ ∘ … ∘ xₘₙ] of
    already-centered views — exposed for tests and benches. *)

(** Streaming construction of the fit statistics, for pools too large to
    materialize as matrices (the paper's Sec. 4.5 point: TCCA's cost is
    independent of N once the covariance statistics are accumulated, so it
    "can be scaled in very large sample size problems").

    Batches are pushed one at a time; the builder keeps only O(Πdₚ + Σdₚ²)
    state: raw sums for the means, per-view second-moment matrices and the
    raw third-moment tensor.  [finalize] converts the raw moments into the
    centered statistics and returns the same [raw] value
    [prepare_raw] would produce on the concatenation of all batches. *)
module Builder : sig
  type t

  val create : dims:int array -> t
  (** One dimension per view; raises [Invalid_argument] on fewer than two
      views. *)

  val add_batch : t -> Mat.t array -> unit
  (** Push a batch of instances (one matrix per view, matching [dims] and a
      shared column count).  O(batch · Πdₚ). *)

  val count : t -> int
  (** Instances absorbed so far. *)

  val finalize : ?shrinkage:Shrink.t -> t -> raw
  (** Centered statistics of everything absorbed; raises [Invalid_argument]
      if no instances were added.  The builder stays usable (more batches
      can follow and [finalize] can be called again).  [shrinkage] as in
      {!Tcca.fit}; the builder never retains instances, so [`Lw] degrades
      to [`Oas] with a warning. *)
end

val whitened_tensor : ?eps:float -> Mat.t array -> Tensor.t
(** [M] of Eq. 4.9 for raw views (centers internally) — exposed for the
    solver-ablation bench. *)
