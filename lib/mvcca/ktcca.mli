(** Kernel tensor CCA — the paper's non-linear extension (Sec. 4.4).

    With per-view Gram matrices [Kₚₚ], the Representer Theorem turns
    problem (4.7) into maximizing [K₁₂…ₘ ×₁ a₁ᵀ … ×ₘ aₘᵀ] subject to the
    PLS-regularized constraints [aₚᵀ(Kₚₚ² + εKₚₚ)aₚ = 1] (Eq. 4.14), where
    Theorem 3 gives the kernel covariance tensor as
    [K₁₂…ₘ = (1/N) Σₙ k₁ₙ ∘ … ∘ kₘₙ] over Gram columns.  With the Cholesky
    factorization [Kₚₚ² + εKₚₚ = LₚᵀLₚ] and [bₚ = Lₚaₚ], the problem is the
    best rank-1 (rank-r via CP-ALS) approximation of
    [S = K₁₂…ₘ ×₁ (L₁⁻¹)ᵀ … ×ₘ (Lₘ⁻¹)ᵀ] (Eq. 4.15).

    Dense, the tensor [S] is Nᵐ and fitting cost scales as O(t·r·Nᵐ)
    (Sec. 4.5).  But [S = (1/N) Σₙ ∘ₚ (Gₚ⁻¹ kₚₙ)] is rank-N by construction,
    so the default ALS path keeps it as an [Op_tensor.Factored] operator with
    factors [Gₚ⁻¹ Kₚ] — O(m·N²) memory and O(N²·m·r) per sweep — and the
    [max_instances] guard applies only when the dense tensor is actually
    materialized ([~materialize:true] or small Nᵐ).

    {b Sketched scaling path.}  With [~approx:(`Nystrom …)] (see {!approx})
    each kernel is replaced by its Nyström approximation [K̂ₚ = FₚFₚᵀ] from a
    rank-revealing pivoted partial Cholesky ({!Pchol}) that consumes kernel
    columns on demand — the N×N Gram is {e never} materialized on this path,
    so N = 20 000 instances fit in seconds with O(N·ℓ) memory.  All algebra
    downstream is exact on [K̂]: whitening, the CP solve and the training
    embedding live in ℓₚ-space; only the dual weights (N×r) and the factors
    (N×ℓₚ) touch N. *)

type approx = Exact | Nystrom of { rank : int; tol : float }
(** [Exact] is the historical path (bit-identical).  [Nystrom] caps the
    partial Cholesky at [rank] columns and stops early once the residual
    kernel trace falls below [tol]·trace (see {!Pchol.decompose}). *)

type sketch_info = {
  achieved_ranks : int array;    (** Nyström rank ℓₚ reached per view. *)
  trace_residuals : float array; (** Relative residual tr(K−K̂)/tr(K). *)
}

type t

val max_instances : int
(** Guard against accidentally materializing an Nᵐ tensor that cannot fit
    (default 600 for three views ≈ 1.7 GB).  Dense exact path only. *)

val fit :
  ?eps:float ->
  ?center:bool ->
  ?materialize:bool ->
  ?approx:approx ->
  ?solver:Tcca.solver ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.config ->
  r:int ->
  Mat.t array ->
  t
(** [fit ~eps ~r kernels] on training Gram matrices (one per view).
    [center] (default true) double-centers each kernel.  [eps] defaults to
    1e-4.  [materialize] mirrors {!Tcca.fit}: dense iff Nᵐ ≤
    [Tcca.materialize_threshold] by default ([Power_deflation] requires the
    dense tensor); on the Nyström path it controls the ∏ℓₚ tensor instead.
    [approx] selects the sketched path — the supplied Grams are then only
    read column-by-column through {!Pchol.oracle_of_mat} (use
    {!fit_oracles} to avoid forming them at all).  [budget] and
    [checkpoint] mirror {!Tcca.fit}: a budget-expired solve returns its
    best-so-far model (warning logged, not an error), and checkpoint/resume
    (Als solver only) makes the dual-weight fit crash-safe with
    bit-identical resume. *)

val fit_oracles :
  ?eps:float ->
  ?center:bool ->
  ?materialize:bool ->
  approx:approx ->
  ?solver:Tcca.solver ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.config ->
  r:int ->
  Pchol.oracle array ->
  t
(** The large-N entry point: one kernel column/diagonal oracle per view
    (e.g. {!Kernel.oracle}); nothing N×N is ever allocated.  [approx] must
    be [Nystrom] (raises [Invalid_argument] on [Exact]). *)

type prepared
(** Whitened statistics and the operator [S], frozen so several ranks can be
    decomposed without re-materializing [S].  Exact path: centered kernels +
    Cholesky factors.  Nyström path: centered factors Fₚ + ℓ-space Cholesky
    factors. *)

val prepare :
  ?eps:float -> ?center:bool -> ?materialize:bool -> ?approx:approx -> Mat.t array ->
  prepared

val prepare_oracles :
  ?eps:float ->
  ?center:bool ->
  ?materialize:bool ->
  approx:approx ->
  Pchol.oracle array ->
  prepared

val fit_prepared :
  ?solver:Tcca.solver ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.config ->
  r:int ->
  prepared ->
  t

(** {2 Guarded entry points}

    Mirrors {!Tcca}'s [_checked] API: every numerical degradation comes back
    as a typed [Robust.failure]; the plain functions raise [Robust.Error] in
    exactly those cases and are otherwise bit-for-bit identical.  The
    whitening step composes two ladders: [Cholesky.decompose_jittered]'s
    diagonal-jitter retries, then geometric ε-escalation (ε·10ᵏ, up to 4
    attempts) of the PLS target [K² + εK] (exact) or [FᵀF + εI] (Nyström);
    a target that stays indefinite surfaces as [Not_positive_definite] with
    the failing pivot and the largest jitter tried.  The partial Cholesky
    itself reports a non-PSD kernel oracle the same way.  NaN/Inf are caught
    on the whitened operator and the dual weights; ALS failures restart
    inside [Cp_als] first. *)

val prepare_checked :
  ?eps:float ->
  ?center:bool ->
  ?materialize:bool ->
  ?approx:approx ->
  Mat.t array ->
  (prepared, Robust.failure) result

val prepare_oracles_checked :
  ?eps:float ->
  ?center:bool ->
  ?materialize:bool ->
  approx:approx ->
  Pchol.oracle array ->
  (prepared, Robust.failure) result

val fit_prepared_checked :
  ?solver:Tcca.solver ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.config ->
  r:int ->
  prepared ->
  (t, Robust.failure) result

val fit_checked :
  ?eps:float ->
  ?center:bool ->
  ?materialize:bool ->
  ?approx:approx ->
  ?solver:Tcca.solver ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.config ->
  r:int ->
  Mat.t array ->
  (t, Robust.failure) result

val fit_oracles_checked :
  ?eps:float ->
  ?center:bool ->
  ?materialize:bool ->
  approx:approx ->
  ?solver:Tcca.solver ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.config ->
  r:int ->
  Pchol.oracle array ->
  (t, Robust.failure) result

val materialized : prepared -> bool
(** Whether the prepared operator is a dense tensor (Nᵐ on the exact path,
    ∏ℓₚ on the Nyström path). *)

val sketch_info : prepared -> sketch_info option
(** Nyström diagnostics — achieved ranks and relative trace residuals;
    [None] on the exact path. *)

val model_sketch_info : t -> sketch_info option
(** Same diagnostics carried on the fitted model. *)

type raw
(** The ε-independent work — centered kernels and (dense path only) the Nᵐ
    kernel covariance tensor, or on the Nyström path the centered partial
    Cholesky factors — shared by an ε-validation loop (the paper optimizes ε
    over {10ⁱ} for the kernel experiments).  The partial Cholesky runs once
    per raw, not once per ε. *)

val prepare_raw :
  ?center:bool -> ?materialize:bool -> ?approx:approx -> Mat.t array -> raw

val prepare_raw_checked :
  ?center:bool -> ?materialize:bool -> ?approx:approx -> Mat.t array ->
  (raw, Robust.failure) result

val prepare_raw_oracles : ?center:bool -> approx:approx -> Pchol.oracle array -> raw

val prepare_raw_oracles_checked :
  ?center:bool -> approx:approx -> Pchol.oracle array -> (raw, Robust.failure) result

val prepare_of_raw : ?materialize:bool -> eps:float -> raw -> prepared

val prepare_of_raw_checked :
  ?materialize:bool -> eps:float -> raw -> (prepared, Robust.failure) result

val r : t -> int
val n_views : t -> int
val correlations : t -> Vec.t

val transform_train : t -> Mat.t
(** [(m·r) × N] concatenated training embedding [Zₚ = Kₚₚ Lₚ⁻¹ Bₚ]
    (Eq. 4.16); on the Nyström path [Zₚ = (FₚBₚ)ᵀ = (K̂ₚAₚ)ᵀ]. *)

val transform : t -> Mat.t array -> Mat.t
(** Embed new instances from their cross-kernel columns
    ([N_train × N_new] per view, un-centered).  On the Nyström path the
    training column means used for centering are the approximation's
    [K̂1/N]. *)

val dual_weights : t -> Mat.t array
(** Per-view [N × r] dual coefficients [aₚ = Lₚ⁻¹Bₚ]; on the Nyström path
    the least-norm solution [Aₚ = Fₚ(FₚᵀFₚ+δI)⁻¹Bₚ] of [FₚᵀAₚ = Bₚ]. *)

val warm_solver : ?options:Cp_als.options -> t -> Tcca.solver
(** An [Als] solver whose init is [Cp_als.Warm] on this model's retained
    whitened-space factors [Bₚ] — the incremental-refit entry point,
    mirroring {!Tcca.warm_solver}.  [options] (default
    [Cp_als.default_options]) supplies everything but [init]. *)
