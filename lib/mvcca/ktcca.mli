(** Kernel tensor CCA — the paper's non-linear extension (Sec. 4.4).

    With per-view Gram matrices [Kₚₚ], the Representer Theorem turns
    problem (4.7) into maximizing [K₁₂…ₘ ×₁ a₁ᵀ … ×ₘ aₘᵀ] subject to the
    PLS-regularized constraints [aₚᵀ(Kₚₚ² + εKₚₚ)aₚ = 1] (Eq. 4.14), where
    Theorem 3 gives the kernel covariance tensor as
    [K₁₂…ₘ = (1/N) Σₙ k₁ₙ ∘ … ∘ kₘₙ] over Gram columns.  With the Cholesky
    factorization [Kₚₚ² + εKₚₚ = LₚᵀLₚ] and [bₚ = Lₚaₚ], the problem is the
    best rank-1 (rank-r via CP-ALS) approximation of
    [S = K₁₂…ₘ ×₁ (L₁⁻¹)ᵀ … ×ₘ (Lₘ⁻¹)ᵀ] (Eq. 4.15).

    Dense, the tensor [S] is Nᵐ and fitting cost scales as O(t·r·Nᵐ)
    (Sec. 4.5).  But [S = (1/N) Σₙ ∘ₚ (Gₚ⁻¹ kₚₙ)] is rank-N by construction,
    so the default ALS path keeps it as an [Op_tensor.Factored] operator with
    factors [Gₚ⁻¹ Kₚ] — O(m·N²) memory and O(N²·m·r) per sweep — and the
    [max_instances] guard applies only when the dense tensor is actually
    materialized ([~materialize:true] or small Nᵐ). *)

type t

val max_instances : int
(** Guard against accidentally materializing an Nᵐ tensor that cannot fit
    (default 600 for three views ≈ 1.7 GB).  Dense path only. *)

val fit :
  ?eps:float ->
  ?center:bool ->
  ?materialize:bool ->
  ?solver:Tcca.solver ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.config ->
  r:int ->
  Mat.t array ->
  t
(** [fit ~eps ~r kernels] on training Gram matrices (one per view).
    [center] (default true) double-centers each kernel.  [eps] defaults to
    1e-4.  [materialize] mirrors {!Tcca.fit}: dense iff Nᵐ ≤
    [Tcca.materialize_threshold] by default; [Rand_als] and
    [Power_deflation] require the dense tensor.  [budget] and [checkpoint]
    also mirror {!Tcca.fit}: a budget-expired solve returns its best-so-far
    model (warning logged, not an error), and checkpoint/resume (Als solver
    only) makes the dual-weight fit crash-safe with bit-identical resume. *)

type prepared
(** Centered kernels, Cholesky factors and the whitened operator [S], frozen
    so several ranks can be decomposed without re-materializing [S]. *)

val prepare : ?eps:float -> ?center:bool -> ?materialize:bool -> Mat.t array -> prepared

val fit_prepared :
  ?solver:Tcca.solver ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.config ->
  r:int ->
  prepared ->
  t

(** {2 Guarded entry points}

    Mirrors {!Tcca}'s [_checked] API: every numerical degradation comes back
    as a typed [Robust.failure]; the plain functions raise [Robust.Error] in
    exactly those cases and are otherwise bit-for-bit identical.  The
    whitening step composes two ladders: [Cholesky.decompose_jittered]'s
    diagonal-jitter retries, then geometric ε-escalation (ε·10ᵏ, up to 4
    attempts) of the PLS target [K² + εK]; a target that stays indefinite
    surfaces as [Not_positive_definite] with the failing pivot and the
    largest jitter tried.  NaN/Inf are caught on the whitened operator and
    the dual weights; ALS failures restart inside [Cp_als] first. *)

val prepare_checked :
  ?eps:float ->
  ?center:bool ->
  ?materialize:bool ->
  Mat.t array ->
  (prepared, Robust.failure) result

val fit_prepared_checked :
  ?solver:Tcca.solver ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.config ->
  r:int ->
  prepared ->
  (t, Robust.failure) result

val fit_checked :
  ?eps:float ->
  ?center:bool ->
  ?materialize:bool ->
  ?solver:Tcca.solver ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.config ->
  r:int ->
  Mat.t array ->
  (t, Robust.failure) result

val materialized : prepared -> bool
(** Whether the prepared operator is the dense Nᵐ tensor. *)

type raw
(** The ε-independent work — centered kernels and (dense path only) the Nᵐ
    kernel covariance tensor — shared by an ε-validation loop (the paper
    optimizes ε over {10ⁱ} for the kernel experiments). *)

val prepare_raw : ?center:bool -> ?materialize:bool -> Mat.t array -> raw
val prepare_of_raw : eps:float -> raw -> prepared
val prepare_of_raw_checked : eps:float -> raw -> (prepared, Robust.failure) result

val r : t -> int
val n_views : t -> int
val correlations : t -> Vec.t

val transform_train : t -> Mat.t
(** [(m·r) × N] concatenated training embedding [Zₚ = Kₚₚ Lₚ⁻¹ Bₚ]
    (Eq. 4.16). *)

val transform : t -> Mat.t array -> Mat.t
(** Embed new instances from their cross-kernel columns
    ([N_train × N_new] per view, un-centered). *)

val dual_weights : t -> Mat.t array
(** Per-view [N × r] dual coefficients [aₚ = Lₚ⁻¹Bₚ]. *)
