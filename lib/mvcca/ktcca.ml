type approx = Exact | Nystrom of { rank : int; tol : float }

type sketch_info = {
  achieved_ranks : int array;   (* Nyström rank ℓₚ actually reached per view *)
  trace_residuals : float array; (* relative trace residual tr(K−FFᵀ)/tr(K) *)
}

(* How the model carries the training data forward: the exact path keeps the
   centered N×N Grams (transform_train is aᵀK), the Nyström path keeps the
   already-projected N×r blocks K̂ₚaₚ = FₚBₚ — nothing N×N survives. *)
type train_rep =
  | Train_gram of Mat.t array
  | Train_factor of Mat.t array

type t = {
  duals : Mat.t array; (* aₚ : N × r *)
  train_rep : train_rep;
  raw_col_means : Vec.t array;
  raw_total_means : float array;
  centered : bool;
  correlations : Vec.t;
  t_sketch : sketch_info option;
  factors : Mat.t array; (* whitened-space Bₚ, retained for warm refits *)
}

let max_instances = 600

let center_cross ~train_col_means ~train_total cross =
  let n, q = Mat.dims cross in
  let cross_col_means = Array.init q (fun j -> Vec.mean (Mat.col cross j)) in
  Mat.init n q (fun i j ->
      Mat.get cross i j -. train_col_means.(i) -. cross_col_means.(j) +. train_total)

let jittered_pls eps k =
  let n, _ = Mat.dims k in
  let a = Mat.add (Mat.scale eps k) (Mat.mul k k) in
  Mat.add_scaled_identity (1e-10 *. (1. +. Mat.trace a /. float_of_int n)) a

(* The whitened representation behind the operator [S]. *)
type rep =
  | Exact_rep of { e_kernels : Mat.t array; e_chols : Cholesky.t array }
  | Nystrom_rep of {
      ny_factors : Mat.t array; (* centered Fₚ, N × ℓₚ *)
      ny_chols : Cholesky.t array; (* Gₚ with FₚᵀFₚ + εI = GₚGₚᵀ, ℓₚ × ℓₚ *)
      ny_info : sketch_info;
    }

type prepared = {
  p_rep : rep;
  p_op : Op_tensor.t; (* the whitened kernel tensor S, dense or implicit *)
  p_raw_col_means : Vec.t array;
  p_raw_total_means : float array;
  p_centered : bool;
}

let materialized prepared =
  match prepared.p_op with Op_tensor.Dense _ -> true | Op_tensor.Factored _ -> false

let sketch_info prepared =
  match prepared.p_rep with
  | Exact_rep _ -> None
  | Nystrom_rep { ny_info; _ } -> Some ny_info

let model_sketch_info t = t.t_sketch

type raw_rep =
  | Raw_exact of {
      rx_kernels : Mat.t array; (* centered *)
      rx_tensor : Tensor.t option; (* K₁₂…ₘ, materialized only on the dense path *)
    }
  | Raw_nystrom of {
      rn_factors : Mat.t array; (* centered Fₚ *)
      rn_info : sketch_info;
    }

type raw = {
  raw_rep : raw_rep;
  raw_cms : Vec.t array;
  raw_tms : float array;
  raw_centered : bool;
}

let prepare_raw_exact ?(center = true) ?materialize kernels_raw =
  let m = Array.length kernels_raw in
  if m < 2 then invalid_arg "Ktcca.fit: need at least two views";
  let n, m1 = Mat.dims kernels_raw.(0) in
  if n <> m1 then invalid_arg "Ktcca.fit: kernels must be square";
  Array.iter
    (fun k -> if Mat.dims k <> (n, n) then invalid_arg "Ktcca.fit: kernel size mismatch")
    kernels_raw;
  let dense =
    match materialize with
    | Some b -> b
    | None -> float_of_int n ** float_of_int m <= float_of_int Tcca.materialize_threshold
  in
  (* The Nᵐ guard only protects the dense path; the factored operator holds
     nothing bigger than the m N×N kernels themselves. *)
  if dense && n > max_instances then
    invalid_arg
      (Printf.sprintf "Ktcca.fit: N=%d exceeds max_instances=%d (the tensor S is N^m dense)"
         n max_instances);
  let raw_col_means =
    Array.map (fun k -> Array.init n (fun i -> Vec.mean (Mat.row k i))) kernels_raw
  in
  let raw_total_means = Array.map Stats.mean raw_col_means in
  let kernels =
    if center then Array.map Kernel.center kernels_raw else Array.map Mat.copy kernels_raw
  in
  (* K₁₂…ₘ = (1/N) Σₙ k₁ₙ ∘ … ∘ kₘₙ (Theorem 3): exactly the covariance
     tensor of the Gram matrices viewed as N-dimensional features — i.e. the
     centered kernels ARE its Kruskal factors, so the factored path needs no
     accumulation at all. *)
  { raw_rep =
      Raw_exact
        { rx_kernels = kernels;
          rx_tensor = (if dense then Some (Tcca.covariance_tensor kernels) else None) };
    raw_cms = raw_col_means;
    raw_tms = raw_total_means;
    raw_centered = center }

(* Nyström raw statistics: a pivoted partial Cholesky per view consumes
   kernel columns on demand (never the N×N Gram) and yields K̂ₚ = FₚFₚᵀ.
   Everything downstream — centering, PLS whitening, the tensor S — is
   computed exactly on K̂, in ℓₚ-space:

     centering   HK̂H = (HFₚ)(HFₚ)ᵀ           (subtract Fₚ's column means)
     col means   μ̂ = K̂1/N = Fₚ(Fₚᵀ1)/N       (of the uncentered K̂)
     constraint  aᵀ(K̂² + εK̂)a = bᵀ(FₚᵀFₚ + εI)b   with  b = Fₚᵀa. *)
let nystrom_raw_checked ~center ~rank ~tol oracles =
  let m = Array.length oracles in
  if m < 2 then invalid_arg "Ktcca.fit: need at least two views";
  let n = oracles.(0).Pchol.o_dim in
  if n < 1 then invalid_arg "Ktcca.fit: empty oracle";
  Array.iter
    (fun o -> if o.Pchol.o_dim <> n then invalid_arg "Ktcca.fit: oracle size mismatch")
    oracles;
  if rank < 1 then invalid_arg "Ktcca.fit: Nystrom rank must be >= 1";
  try
    let ranks = Array.make m 0 and residuals = Array.make m 0. in
    let col_means = Array.make m [||] and total_means = Array.make m 0. in
    let factors =
      Array.mapi
        (fun p oracle ->
          match Pchol.decompose ~rank ~tol oracle with
          | Error e -> raise (Robust.Error e)
          | Ok (f0, info) ->
            ranks.(p) <- info.Pchol.rank;
            residuals.(p) <-
              (if info.Pchol.trace_initial > 0. then
                 info.Pchol.trace_residual /. info.Pchol.trace_initial
               else 0.);
            (* μ̂ = F₀(F₀ᵀ1)/N, and the per-column means of F₀ for centering. *)
            let ell = snd (Mat.dims f0) in
            let fmeans = Array.init ell (fun j -> Vec.mean (Mat.col f0 j)) in
            let mu = Mat.mul_vec f0 fmeans in
            col_means.(p) <- mu;
            total_means.(p) <- Stats.mean mu;
            if center then Mat.init n ell (fun i j -> Mat.get f0 i j -. fmeans.(j)) else f0)
        oracles
    in
    Ok
      { raw_rep =
          Raw_nystrom
            { rn_factors = factors;
              rn_info = { achieved_ranks = ranks; trace_residuals = residuals } };
        raw_cms = col_means;
        raw_tms = total_means;
        raw_centered = center }
  with Robust.Error e -> Error e

let prepare_raw_oracles_checked ?(center = true) ~approx oracles =
  match approx with
  | Exact -> invalid_arg "Ktcca.prepare_raw_oracles: oracles require a `Nystrom` approx"
  | Nystrom { rank; tol } -> nystrom_raw_checked ~center ~rank ~tol oracles

let prepare_raw_oracles ?center ~approx oracles =
  match prepare_raw_oracles_checked ?center ~approx oracles with
  | Ok raw -> raw
  | Error e -> Robust.fail e

let prepare_raw_checked ?center ?materialize ?(approx = Exact) kernels_raw =
  match approx with
  | Exact -> Ok (prepare_raw_exact ?center ?materialize kernels_raw)
  | Nystrom { rank; tol } ->
    let oracles = Array.map Pchol.oracle_of_mat kernels_raw in
    let center = match center with Some c -> c | None -> true in
    nystrom_raw_checked ~center ~rank ~tol oracles

let prepare_raw ?center ?materialize ?approx kernels_raw =
  match prepare_raw_checked ?center ?materialize ?approx kernels_raw with
  | Ok raw -> raw
  | Error e -> Robust.fail e

(* Gram-whitening ladder.  Attempt 0 is bit-for-bit the historical
   [Cholesky.decompose (jittered_pls eps k)] — [decompose_jittered]'s own
   first try is the plain factorization.  An indefinite target first walks
   the diagonal-jitter ladder inside [decompose_jittered]; if that is
   exhausted too, [eps] escalates geometrically (the PLS constraint
   [K² + εK] grows more definite with ε on a PSD kernel). *)
let gram_attempts = 4

let whiten_kernel ~eps ~view kernel =
  let stage = Printf.sprintf "ktcca.whiten view %d" view in
  let target e =
    let a = jittered_pls e kernel in
    (* Fault injection: shift view 0's factorization target until it is
       decisively indefinite — no jitter or eps in the ladders can mask it. *)
    if view = 0 && Robust.Inject.(active Gram_indefinite) then
      Mat.add_scaled_identity (-.(1. +. Float.abs (Mat.trace a))) a
    else a
  in
  let rec attempt k =
    let e = eps *. (10. ** float_of_int k) in
    match Cholesky.decompose_jittered ~stage (target e) with
    | Ok (f, jitter) ->
      if k > 0 || jitter > 0. then
        Robust.warnf "%s: factorized with eps %g, diagonal jitter %g" stage e jitter;
      Ok f
    | Error (Robust.Not_positive_definite _ as err) when k + 1 < gram_attempts ->
      Robust.warnf "%s: %s — escalating eps to %g" stage
        (Robust.failure_to_string err)
        (eps *. (10. ** float_of_int (k + 1)));
      attempt (k + 1)
    | Error err -> Error err
  in
  attempt 0

(* Nyström whitening: Mₚ = FₚᵀFₚ + εI is ℓₚ×ℓₚ and already conditioned by ε,
   but reuse the same escalation shape for a degenerate F. *)
let whiten_nystrom ~eps ~view f =
  let stage = Printf.sprintf "ktcca.whiten-nystrom view %d" view in
  let gram = Mat.tgram f in
  let rec attempt k =
    let e = eps *. (10. ** float_of_int k) in
    match Cholesky.decompose_jittered ~stage (Mat.add_scaled_identity e gram) with
    | Ok (g, jitter) ->
      if k > 0 || jitter > 0. then
        Robust.warnf "%s: factorized with eps %g, diagonal jitter %g" stage e jitter;
      Ok g
    | Error (Robust.Not_positive_definite _ as err) when k + 1 < gram_attempts ->
      Robust.warnf "%s: %s — escalating eps to %g" stage
        (Robust.failure_to_string err)
        (eps *. (10. ** float_of_int (k + 1)));
      attempt (k + 1)
    | Error err -> Error err
  in
  attempt 0

let prepare_of_raw_checked ?materialize ~eps raw =
  match raw.raw_rep with
  | Raw_exact { rx_kernels; rx_tensor } -> (
    let chols =
      try
        Ok
          (Array.mapi
             (fun p k ->
               match whiten_kernel ~eps ~view:p k with
               | Ok f -> f
               | Error e -> raise (Robust.Error e))
             rx_kernels)
      with Robust.Error e -> Error e
    in
    match chols with
    | Error e -> Error e
    | Ok chols ->
      (* S = K ×ₚ (Lₚ⁻¹)ᵀ; with A = GGᵀ and the paper's L = Gᵀ this is
         (Lₚ⁻¹)ᵀ = Gₚ⁻¹. *)
      let inv_lowers = Array.map Cholesky.inverse_lower chols in
      let op =
        match rx_tensor with
        | Some t -> Op_tensor.dense (Tensor.mode_products t inv_lowers)
        | None ->
          (* S = (1/N) Σₙ ∘ₚ (Gₚ⁻¹ kₚₙ): factors Zₚ = Gₚ⁻¹ Kₚ, never Nᵐ. *)
          let n = fst (Mat.dims rx_kernels.(0)) in
          Op_tensor.factored
            ~weight:(1. /. float_of_int n)
            (Array.map2 Mat.mul inv_lowers rx_kernels)
      in
      if not (Op_tensor.all_finite op) then
        Error
          (Robust.Non_finite { stage = "ktcca.prepare"; where = "whitened kernel operator" })
      else
        Ok
          { p_rep = Exact_rep { e_kernels = rx_kernels; e_chols = chols };
            p_op = op;
            p_raw_col_means = raw.raw_cms;
            p_raw_total_means = raw.raw_tms;
            p_centered = raw.raw_centered })
  | Raw_nystrom { rn_factors; rn_info } -> (
    let chols =
      try
        Ok
          (Array.mapi
             (fun p f ->
               match whiten_nystrom ~eps ~view:p f with
               | Ok g -> g
               | Error e -> raise (Robust.Error e))
             rn_factors)
      with Robust.Error e -> Error e
    in
    match chols with
    | Error e -> Error e
    | Ok chols ->
      (* With b = Fᵀa and M = FᵀF + εI = GGᵀ, setting c = Gᵀb turns the
         objective into the CP fit of S = (1/N) Σₙ ∘ₚ (Gₚ⁻¹ fₚₙ) over the
         rows fₚₙ of Fₚ: factors Zₚ = Gₚ⁻¹Fₚᵀ, ℓₚ × N.  The operator lives
         entirely in ℓ-space, so it materializes to the tiny dense ∏ℓₚ
         tensor by default — that is where ALS is cheapest. *)
      let n = fst (Mat.dims rn_factors.(0)) in
      let inv_lowers = Array.map Cholesky.inverse_lower chols in
      let factors =
        Array.map2 (fun il f -> Mat.mul il (Mat.transpose f)) inv_lowers rn_factors
      in
      let op = Op_tensor.factored ~weight:(1. /. float_of_int n) factors in
      let ldims = Array.map (fun z -> fst (Mat.dims z)) factors in
      let dense =
        match materialize with
        | Some b -> b
        | None ->
          Array.fold_left (fun acc d -> acc *. float_of_int d) 1. ldims
          <= float_of_int Tcca.materialize_threshold
      in
      let op = if dense then Op_tensor.dense (Op_tensor.to_tensor op) else op in
      if not (Op_tensor.all_finite op) then
        Error
          (Robust.Non_finite { stage = "ktcca.prepare"; where = "whitened kernel operator" })
      else
        Ok
          { p_rep = Nystrom_rep { ny_factors = rn_factors; ny_chols = chols; ny_info = rn_info };
            p_op = op;
            p_raw_col_means = raw.raw_cms;
            p_raw_total_means = raw.raw_tms;
            p_centered = raw.raw_centered })

let prepare_of_raw ?materialize ~eps raw =
  match prepare_of_raw_checked ?materialize ~eps raw with
  | Ok p -> p
  | Error e -> Robust.fail e

let prepare ?(eps = 1e-4) ?center ?materialize ?approx kernels_raw =
  prepare_of_raw ?materialize ~eps (prepare_raw ?center ?materialize ?approx kernels_raw)

let prepare_checked ?(eps = 1e-4) ?center ?materialize ?approx kernels_raw =
  match prepare_raw_checked ?center ?materialize ?approx kernels_raw with
  | Error e -> Error e
  | Ok raw -> prepare_of_raw_checked ?materialize ~eps raw

let prepare_oracles_checked ?(eps = 1e-4) ?center ?materialize ~approx oracles =
  match prepare_raw_oracles_checked ?center ~approx oracles with
  | Error e -> Error e
  | Ok raw -> prepare_of_raw_checked ?materialize ~eps raw

let prepare_oracles ?eps ?center ?materialize ~approx oracles =
  match prepare_oracles_checked ?eps ?center ?materialize ~approx oracles with
  | Ok p -> p
  | Error e -> Robust.fail e

let fit_prepared_checked ?(solver = Tcca.default_solver) ?budget ?checkpoint ~r prepared =
  if r < 1 then invalid_arg "Ktcca.fit_prepared: r must be >= 1";
  let r = Array.fold_left min r (Op_tensor.dims prepared.p_op) in
  (match (checkpoint, solver) with
  | Some cfg, (Tcca.Sampled_als _ | Tcca.Power_deflation) ->
    Robust.warnf "Ktcca.fit: checkpointing (%s) only supported by the Als solver — ignored"
      cfg.Checkpoint.path
  | _ -> ());
  let note_deadline = function
    | None -> ()
    | Some d ->
      Robust.warnf "Ktcca.fit: %s — returning best-so-far model" (Robust.failure_to_string d)
  in
  let dense_tensor () =
    match prepared.p_op with
    | Op_tensor.Dense t -> t
    | Op_tensor.Factored _ ->
      let entries =
        Array.fold_left
          (fun acc d -> acc *. float_of_int d)
          1.
          (Op_tensor.dims prepared.p_op)
      in
      if entries > 1e8 then
        invalid_arg
          (Printf.sprintf
             "Ktcca.fit_prepared: this solver needs the dense tensor (%.0f entries); use \
              the Als solver or ~materialize:true"
             entries);
      Op_tensor.to_tensor prepared.p_op
  in
  let solved =
    match solver with
    | Tcca.Als options ->
      let k, info = Cp_als.decompose_op ~options ?budget ?checkpoint ~rank:r prepared.p_op in
      note_deadline info.Cp_als.deadline;
      (match info.Cp_als.failure with Some f -> Error f | None -> Ok k)
    | Tcca.Sampled_als options -> (
      let k, info = Cp_rand.decompose_op ~options ?budget ~rank:r prepared.p_op in
      note_deadline info.Cp_rand.deadline;
      match info.Cp_rand.failure with Some f -> Error f | None -> Ok k)
    | Tcca.Power_deflation ->
      let k, deadline = Tensor_power.decompose ?budget ~rank:r (dense_tensor ()) in
      note_deadline deadline;
      Ok (Kruskal.normalize k)
  in
  match solved with
  | Error e -> Error e
  | Ok kruskal -> (
    match prepared.p_rep with
    | Exact_rep { e_kernels; e_chols } ->
      (* aₚ = Lₚ⁻¹ Bₚ = Gₚ⁻ᵀ Bₚ. *)
      let duals =
        Array.map2
          (fun chol b -> Cholesky.solve_lower_transpose chol b)
          e_chols kruskal.Kruskal.factors
      in
      if not (Array.for_all Mat.all_finite duals && Vec.all_finite kruskal.Kruskal.weights)
      then Error (Robust.Non_finite { stage = "ktcca.fit"; where = "dual weights" })
      else
        Ok
          { duals;
            train_rep = Train_gram e_kernels;
            raw_col_means = prepared.p_raw_col_means;
            raw_total_means = prepared.p_raw_total_means;
            centered = prepared.p_centered;
            correlations = kruskal.Kruskal.weights;
            t_sketch = None;
            factors = kruskal.Kruskal.factors }
    | Nystrom_rep { ny_factors; ny_chols; ny_info } -> (
      (* Back-substitution in ℓ-space: Bₚ = Gₚ⁻ᵀCₚ, then the least-norm dual
         with FₚᵀAₚ = Bₚ is Aₚ = Fₚ(FₚᵀFₚ + δI)⁻¹Bₚ; the train embedding
         K̂ₚAₚ = FₚBₚ never touches an N×N matrix. *)
      try
        let blocks = Array.make (Array.length ny_factors) (Mat.create 0 0) in
        let duals =
          Array.init (Array.length ny_factors) (fun p ->
              let b = Cholesky.solve_lower_transpose ny_chols.(p) kruskal.Kruskal.factors.(p) in
              blocks.(p) <- Mat.mul ny_factors.(p) b;
              let stage = Printf.sprintf "ktcca.duals view %d" p in
              match Cholesky.decompose_jittered ~stage (Mat.tgram ny_factors.(p)) with
              | Error e -> raise (Robust.Error e)
              | Ok (chol, _) ->
                Mat.mul ny_factors.(p) (Cholesky.solve chol b))
        in
        if
          not
            (Array.for_all Mat.all_finite duals
            && Array.for_all Mat.all_finite blocks
            && Vec.all_finite kruskal.Kruskal.weights)
        then Error (Robust.Non_finite { stage = "ktcca.fit"; where = "dual weights" })
        else
          Ok
            { duals;
              train_rep = Train_factor blocks;
              raw_col_means = prepared.p_raw_col_means;
              raw_total_means = prepared.p_raw_total_means;
              centered = prepared.p_centered;
              correlations = kruskal.Kruskal.weights;
              t_sketch = Some ny_info;
              factors = kruskal.Kruskal.factors }
      with Robust.Error e -> Error e))

let fit_prepared ?solver ?budget ?checkpoint ~r prepared =
  match fit_prepared_checked ?solver ?budget ?checkpoint ~r prepared with
  | Ok t -> t
  | Error e -> Robust.fail e

let fit_checked ?(eps = 1e-4) ?center ?materialize ?approx ?solver ?budget ?checkpoint ~r
    kernels_raw =
  match prepare_checked ~eps ?center ?materialize ?approx kernels_raw with
  | Error e -> Error e
  | Ok prepared -> fit_prepared_checked ?solver ?budget ?checkpoint ~r prepared

let fit ?eps ?center ?materialize ?approx ?solver ?budget ?checkpoint ~r kernels_raw =
  fit_prepared ?solver ?budget ?checkpoint ~r
    (prepare ?eps ?center ?materialize ?approx kernels_raw)

let fit_oracles_checked ?eps ?center ?materialize ~approx ?solver ?budget ?checkpoint ~r
    oracles =
  match prepare_oracles_checked ?eps ?center ?materialize ~approx oracles with
  | Error e -> Error e
  | Ok prepared -> fit_prepared_checked ?solver ?budget ?checkpoint ~r prepared

let fit_oracles ?eps ?center ?materialize ~approx ?solver ?budget ?checkpoint ~r oracles =
  match fit_oracles_checked ?eps ?center ?materialize ~approx ?solver ?budget ?checkpoint ~r
          oracles
  with
  | Ok t -> t
  | Error e -> Robust.fail e

let r t = Array.length t.correlations
let n_views t = Array.length t.duals
let correlations t = Array.copy t.correlations

let transform_train t =
  match t.train_rep with
  | Train_gram kernels ->
    Mat.vcat_list
      (Array.to_list (Array.map2 (fun a k -> Mat.mul_tn a k) t.duals kernels))
  | Train_factor blocks ->
    Mat.vcat_list (Array.to_list (Array.map Mat.transpose blocks))

let transform t crosses =
  if Array.length crosses <> n_views t then invalid_arg "Ktcca.transform: view count mismatch";
  let blocks =
    Array.mapi
      (fun p cross ->
        let cross =
          if t.centered then
            center_cross ~train_col_means:t.raw_col_means.(p)
              ~train_total:t.raw_total_means.(p) cross
          else cross
        in
        Mat.mul_tn t.duals.(p) cross)
      crosses
  in
  Mat.vcat_list (Array.to_list blocks)

let dual_weights t = Array.map Mat.copy t.duals

let warm_solver ?options t =
  let base = match options with Some o -> o | None -> Cp_als.default_options in
  Tcca.Als { base with Cp_als.init = Cp_als.Warm (Array.map Mat.copy t.factors) }
