type t = {
  duals : Mat.t array; (* aₚ : N × r *)
  kernels : Mat.t array; (* centered training grams *)
  raw_col_means : Vec.t array;
  raw_total_means : float array;
  centered : bool;
  correlations : Vec.t;
}

let max_instances = 600

let center_cross ~train_col_means ~train_total cross =
  let n, q = Mat.dims cross in
  let cross_col_means = Array.init q (fun j -> Vec.mean (Mat.col cross j)) in
  Mat.init n q (fun i j ->
      Mat.get cross i j -. train_col_means.(i) -. cross_col_means.(j) +. train_total)

let jittered_pls eps k =
  let n, _ = Mat.dims k in
  let a = Mat.add (Mat.scale eps k) (Mat.mul k k) in
  Mat.add_scaled_identity (1e-10 *. (1. +. Mat.trace a /. float_of_int n)) a

type prepared = {
  p_kernels : Mat.t array;
  p_chols : Cholesky.t array;
  p_op : Op_tensor.t; (* the whitened kernel tensor S, dense or implicit *)
  p_raw_col_means : Vec.t array;
  p_raw_total_means : float array;
  p_centered : bool;
}

let materialized prepared =
  match prepared.p_op with Op_tensor.Dense _ -> true | Op_tensor.Factored _ -> false

type raw = {
  raw_kernels : Mat.t array; (* centered *)
  raw_tensor : Tensor.t option; (* K₁₂…ₘ, materialized only on the dense path *)
  raw_cms : Vec.t array;
  raw_tms : float array;
  raw_centered : bool;
}

let prepare_raw ?(center = true) ?materialize kernels_raw =
  let m = Array.length kernels_raw in
  if m < 2 then invalid_arg "Ktcca.fit: need at least two views";
  let n, m1 = Mat.dims kernels_raw.(0) in
  if n <> m1 then invalid_arg "Ktcca.fit: kernels must be square";
  Array.iter
    (fun k -> if Mat.dims k <> (n, n) then invalid_arg "Ktcca.fit: kernel size mismatch")
    kernels_raw;
  let dense =
    match materialize with
    | Some b -> b
    | None -> float_of_int n ** float_of_int m <= float_of_int Tcca.materialize_threshold
  in
  (* The Nᵐ guard only protects the dense path; the factored operator holds
     nothing bigger than the m N×N kernels themselves. *)
  if dense && n > max_instances then
    invalid_arg
      (Printf.sprintf "Ktcca.fit: N=%d exceeds max_instances=%d (the tensor S is N^m dense)"
         n max_instances);
  let raw_col_means =
    Array.map (fun k -> Array.init n (fun i -> Vec.mean (Mat.row k i))) kernels_raw
  in
  let raw_total_means = Array.map Stats.mean raw_col_means in
  let kernels =
    if center then Array.map Kernel.center kernels_raw else Array.map Mat.copy kernels_raw
  in
  (* K₁₂…ₘ = (1/N) Σₙ k₁ₙ ∘ … ∘ kₘₙ (Theorem 3): exactly the covariance
     tensor of the Gram matrices viewed as N-dimensional features — i.e. the
     centered kernels ARE its Kruskal factors, so the factored path needs no
     accumulation at all. *)
  { raw_kernels = kernels;
    raw_tensor = (if dense then Some (Tcca.covariance_tensor kernels) else None);
    raw_cms = raw_col_means;
    raw_tms = raw_total_means;
    raw_centered = center }

(* Gram-whitening ladder.  Attempt 0 is bit-for-bit the historical
   [Cholesky.decompose (jittered_pls eps k)] — [decompose_jittered]'s own
   first try is the plain factorization.  An indefinite target first walks
   the diagonal-jitter ladder inside [decompose_jittered]; if that is
   exhausted too, [eps] escalates geometrically (the PLS constraint
   [K² + εK] grows more definite with ε on a PSD kernel). *)
let gram_attempts = 4

let whiten_kernel ~eps ~view kernel =
  let stage = Printf.sprintf "ktcca.whiten view %d" view in
  let target e =
    let a = jittered_pls e kernel in
    (* Fault injection: shift view 0's factorization target until it is
       decisively indefinite — no jitter or eps in the ladders can mask it. *)
    if view = 0 && Robust.Inject.(active Gram_indefinite) then
      Mat.add_scaled_identity (-.(1. +. Float.abs (Mat.trace a))) a
    else a
  in
  let rec attempt k =
    let e = eps *. (10. ** float_of_int k) in
    match Cholesky.decompose_jittered ~stage (target e) with
    | Ok (f, jitter) ->
      if k > 0 || jitter > 0. then
        Robust.warnf "%s: factorized with eps %g, diagonal jitter %g" stage e jitter;
      Ok f
    | Error (Robust.Not_positive_definite _ as err) when k + 1 < gram_attempts ->
      Robust.warnf "%s: %s — escalating eps to %g" stage
        (Robust.failure_to_string err)
        (eps *. (10. ** float_of_int (k + 1)));
      attempt (k + 1)
    | Error err -> Error err
  in
  attempt 0

let prepare_of_raw_checked ~eps raw =
  let chols =
    try
      Ok
        (Array.mapi
           (fun p k ->
             match whiten_kernel ~eps ~view:p k with
             | Ok f -> f
             | Error e -> raise (Robust.Error e))
           raw.raw_kernels)
    with Robust.Error e -> Error e
  in
  match chols with
  | Error e -> Error e
  | Ok chols ->
    (* S = K ×ₚ (Lₚ⁻¹)ᵀ; with A = GGᵀ and the paper's L = Gᵀ this is
       (Lₚ⁻¹)ᵀ = Gₚ⁻¹. *)
    let inv_lowers = Array.map Cholesky.inverse_lower chols in
    let op =
      match raw.raw_tensor with
      | Some t -> Op_tensor.dense (Tensor.mode_products t inv_lowers)
      | None ->
        (* S = (1/N) Σₙ ∘ₚ (Gₚ⁻¹ kₚₙ): factors Zₚ = Gₚ⁻¹ Kₚ, never Nᵐ. *)
        let n = fst (Mat.dims raw.raw_kernels.(0)) in
        Op_tensor.factored
          ~weight:(1. /. float_of_int n)
          (Array.map2 Mat.mul inv_lowers raw.raw_kernels)
    in
    if not (Op_tensor.all_finite op) then
      Error (Robust.Non_finite { stage = "ktcca.prepare"; where = "whitened kernel operator" })
    else
      Ok
        { p_kernels = raw.raw_kernels;
          p_chols = chols;
          p_op = op;
          p_raw_col_means = raw.raw_cms;
          p_raw_total_means = raw.raw_tms;
          p_centered = raw.raw_centered }

let prepare_of_raw ~eps raw =
  match prepare_of_raw_checked ~eps raw with Ok p -> p | Error e -> Robust.fail e

let prepare ?(eps = 1e-4) ?center ?materialize kernels_raw =
  prepare_of_raw ~eps (prepare_raw ?center ?materialize kernels_raw)

let prepare_checked ?(eps = 1e-4) ?center ?materialize kernels_raw =
  prepare_of_raw_checked ~eps (prepare_raw ?center ?materialize kernels_raw)

let fit_prepared_checked ?(solver = Tcca.default_solver) ?budget ?checkpoint ~r prepared =
  if r < 1 then invalid_arg "Ktcca.fit_prepared: r must be >= 1";
  let n = Op_tensor.dim prepared.p_op 0 in
  let r = min r n in
  (match (checkpoint, solver) with
  | Some cfg, (Tcca.Rand_als _ | Tcca.Power_deflation) ->
    Robust.warnf "Ktcca.fit: checkpointing (%s) only supported by the Als solver — ignored"
      cfg.Checkpoint.path
  | _ -> ());
  let note_deadline = function
    | None -> ()
    | Some d ->
      Robust.warnf "Ktcca.fit: %s — returning best-so-far model" (Robust.failure_to_string d)
  in
  let dense_tensor () =
    match prepared.p_op with
    | Op_tensor.Dense t -> t
    | Op_tensor.Factored _ ->
      let entries = float_of_int n ** float_of_int (Op_tensor.order prepared.p_op) in
      if entries > 1e8 then
        invalid_arg
          (Printf.sprintf
             "Ktcca.fit_prepared: this solver needs the dense tensor (%.0f entries); use \
              the Als solver or ~materialize:true"
             entries);
      Op_tensor.to_tensor prepared.p_op
  in
  let solved =
    match solver with
    | Tcca.Als options ->
      let k, info = Cp_als.decompose_op ~options ?budget ?checkpoint ~rank:r prepared.p_op in
      note_deadline info.Cp_als.deadline;
      (match info.Cp_als.failure with Some f -> Error f | None -> Ok k)
    | Tcca.Rand_als options ->
      let k, info = Cp_rand.decompose ~options ?budget ~rank:r (dense_tensor ()) in
      note_deadline info.Cp_rand.deadline;
      Ok k
    | Tcca.Power_deflation ->
      let k, deadline = Tensor_power.decompose ?budget ~rank:r (dense_tensor ()) in
      note_deadline deadline;
      Ok (Kruskal.normalize k)
  in
  match solved with
  | Error e -> Error e
  | Ok kruskal ->
    (* aₚ = Lₚ⁻¹ Bₚ = Gₚ⁻ᵀ Bₚ. *)
    let duals =
      Array.map2 (fun chol b -> Cholesky.solve_lower_transpose chol b) prepared.p_chols
        kruskal.Kruskal.factors
    in
    if
      not (Array.for_all Mat.all_finite duals && Vec.all_finite kruskal.Kruskal.weights)
    then Error (Robust.Non_finite { stage = "ktcca.fit"; where = "dual weights" })
    else
      Ok
        { duals;
          kernels = prepared.p_kernels;
          raw_col_means = prepared.p_raw_col_means;
          raw_total_means = prepared.p_raw_total_means;
          centered = prepared.p_centered;
          correlations = kruskal.Kruskal.weights }

let fit_prepared ?solver ?budget ?checkpoint ~r prepared =
  match fit_prepared_checked ?solver ?budget ?checkpoint ~r prepared with
  | Ok t -> t
  | Error e -> Robust.fail e

let fit_checked ?(eps = 1e-4) ?center ?materialize ?solver ?budget ?checkpoint ~r
    kernels_raw =
  match prepare_checked ~eps ?center ?materialize kernels_raw with
  | Error e -> Error e
  | Ok prepared -> fit_prepared_checked ?solver ?budget ?checkpoint ~r prepared

let fit ?eps ?center ?materialize ?solver ?budget ?checkpoint ~r kernels_raw =
  fit_prepared ?solver ?budget ?checkpoint ~r (prepare ?eps ?center ?materialize kernels_raw)

let r t = Array.length t.correlations
let n_views t = Array.length t.duals
let correlations t = Array.copy t.correlations

let transform_train t =
  Mat.vcat_list
    (Array.to_list (Array.map2 (fun a k -> Mat.mul_tn a k) t.duals t.kernels))

let transform t crosses =
  if Array.length crosses <> n_views t then invalid_arg "Ktcca.transform: view count mismatch";
  let blocks =
    Array.mapi
      (fun p cross ->
        let cross =
          if t.centered then
            center_cross ~train_col_means:t.raw_col_means.(p)
              ~train_total:t.raw_total_means.(p) cross
          else cross
        in
        Mat.mul_tn t.duals.(p) cross)
      crosses
  in
  Mat.vcat_list (Array.to_list blocks)

let dual_weights t = Array.map Mat.copy t.duals
