(** Principal component analysis.

    Used as the per-view preprocessing step of the DSE and SSMVD baselines
    (the paper reduces each view to 100 dimensions with PCA before running
    them) and as the best one-dimensional representation in CCA-MAXVAR. *)

type t

type method_ = [ `Auto | `Cov_eig | `Randomized ]
(** [`Cov_eig] is the classical route (d×d covariance, symmetric eig).
    [`Randomized] skips the covariance entirely: {!Svd.randomized} on the
    centered instances gives the top components in O(d·N·(r+8)) instead of
    O(d²·N + d³).  [`Auto] (default) picks the sketched route only for
    genuinely tall views — [d ≥ 512] with [r] small enough that the
    oversampled sketch truncates ([4·(r+8) ≤ d]) — so every small-d fit is
    bit-identical to the classical path. *)

val fit :
  ?center:bool -> ?method_:method_ -> ?shrinkage:Shrink.t -> r:int -> Mat.t -> t
(** Instances as columns; keeps the top [min r d] components.  [shrinkage]
    (default [`None], bit-identical to no shrinkage) conditions the
    covariance with {!Shrink.apply} before the eigendecomposition —
    components are unchanged by construction (the scaled-identity target
    shares every eigenbasis), but the explained variances are the shrunk
    eigenvalues [(1−ρ)λ + ρμ].  [`Lw]/[`Oas] need the covariance and
    therefore pin the [`Cov_eig] route (a warning is logged if
    [`Randomized] was forced); [`Fixed ρ] composes with either route. *)

val transform : t -> Mat.t -> Mat.t
(** [r × N] scores. *)

val components : t -> Mat.t
(** [d × r] orthonormal loadings. *)

val explained_variance : t -> Vec.t
(** Eigenvalues of the (shrunk) covariance for the kept components. *)

val mean : t -> Vec.t

val shrinkage_intensity : t -> float
(** The ρ actually used — [0.] without shrinkage. *)
