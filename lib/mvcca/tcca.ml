type solver = Als of Cp_als.options | Sampled_als of Cp_rand.options | Power_deflation

let default_solver = Als Cp_als.default_options

type whiten = [ `Auto | `Eig | `Randomized of int ]

type t = {
  means : Vec.t array;
  projections : Mat.t array; (* dₚ × r, whitening folded in *)
  factors : Mat.t array;     (* whitened-space Uₚ, retained for warm refits *)
  correlations : Vec.t;
  solver_note : string;
}

let check_views name views =
  let m = Array.length views in
  if m < 2 then invalid_arg (name ^ ": need at least two views");
  let n = snd (Mat.dims views.(0)) in
  if n = 0 then invalid_arg (name ^ ": no instances");
  Array.iter
    (fun v -> if snd (Mat.dims v) <> n then invalid_arg (name ^ ": instance count mismatch"))
    views;
  n

let covariance_tensor views =
  let n = check_views "Tcca.covariance_tensor" views in
  let dims = Array.map (fun v -> fst (Mat.dims v)) views in
  let c = Tensor.create dims in
  let weight = 1. /. float_of_int n in
  (* The N-dependent pass.  Mode 0 is sliced into slabs, one per pool chunk;
     each chunk owns its slab of the tensor exclusively and replays all N
     instances in order, so every cell accumulates its N rank-1 contributions
     in the exact sequential order — bitwise identical for any pool size.
     Columns are materialized once, shared read-only across chunks. *)
  let cols = Array.init n (fun i -> Array.map (fun v -> Mat.col v i) views) in
  Parallel.parallel_for ~cost:(n * Tensor.size c) ~n:dims.(0)
    (fun lo hi ->
      for i = 0 to n - 1 do
        Tensor.add_outer_slab_in_place c weight cols.(i) ~lo ~hi
      done);
  c

let whiteners ~eps views =
  let n = check_views "Tcca.whiteners" views in
  let nf = float_of_int n in
  Array.map
    (fun x ->
      let cov = Mat.add_scaled_identity eps (Mat.scale (1. /. nf) (Mat.gram x)) in
      Matfun.inv_sqrt_psd cov)
    views

(* Whitening ladder.  Attempt 0 is bit-for-bit the historical
   [inv_sqrt_psd (cov + eps·I)]; a Jacobi sweep-cap escalates the ridge
   geometrically (eps·10ᵏ) — a better-conditioned target — before surfacing
   the failure.  Rank is measured against the ridge actually added, so a
   covariance that carries no information at all (numerical rank 0) is a
   [Rank_deficient] failure rather than a whitener made of pure ridge.

   With a shrinkage regularizer active ([shift0 = ρ·μ > 0]), the shrunk
   covariance replaces the bare ridge as the first rung: attempt 0 adds no
   ridge at all (the identity target already conditions the matrix), and
   the geometric ladder starts one rung later as the escalation fallback.
   Rank is then measured against the total identity mass [ρμ + ridge]. *)
let whiten_attempts = 4

let whiten_view ?(shift0 = 0.) ~eps ~view cov =
  let dim = fst (Mat.dims cov) in
  let stage = Printf.sprintf "tcca.whiten view %d" view in
  let cov =
    if view = 0 && Robust.Inject.(active Covariance_nan) then
      Mat.init dim dim (fun a b -> if a = 0 && b = 0 then nan else Mat.get cov a b)
    else cov
  in
  let ridge_at k =
    if shift0 > 0. then if k = 0 then 0. else eps *. (10. ** float_of_int (k - 1))
    else eps *. (10. ** float_of_int k)
  in
  let rec attempt k =
    let ridge = ridge_at k in
    match
      Matfun.inv_sqrt_psd_checked ~shift:(shift0 +. ridge) ~stage
        (Mat.add_scaled_identity ridge cov)
    with
    | Ok (w, rank) ->
      if k > 0 then Robust.warnf "%s: recovered with ridge %g (%d escalations)" stage ridge k;
      if rank = 0 && shift0 > 0. then begin
        (* ρ = 1: the estimator decided every deviation from the identity
           target is noise (e.g. OAS on white data).  The shrunk matrix is
           exactly (ρμ + ridge)·I — perfectly invertible, not degenerate
           data, so whiten it rather than reporting rank deficiency. *)
        Robust.warnf "%s: covariance fully shrunk to the identity target (ρμ = %g)" stage
          shift0;
        Ok w
      end
      else if rank = 0 then Error (Robust.Rank_deficient { view; rank; dim })
      else begin
        if rank < dim then
          Robust.warnf "%s: covariance numerically rank-deficient (%d of %d directions)"
            stage rank dim;
        Ok w
      end
    | Error (Robust.Not_converged _ as e) when k + 1 < whiten_attempts ->
      Robust.warnf "%s: %s — escalating ridge to %g" stage (Robust.failure_to_string e)
        (ridge_at (k + 1));
      attempt (k + 1)
    | Error e -> Error e
  in
  attempt 0

let whiteners_checked ?shifts ~eps covs =
  try
    Ok
      (Array.mapi
         (fun p c ->
           let shift0 = match shifts with None -> 0. | Some s -> s.(p) in
           match whiten_view ~shift0 ~eps ~view:p c with
           | Ok w -> w
           | Error e -> raise (Robust.Error e))
         covs)
  with Robust.Error e -> Error e

(* Sketched whitener for tall views: the top-[sketch] eigenpairs of the
   covariance come from {!Svd.randomized} on the centered view directly —
   O(dₚ·N·sketch) instead of O(dₚ²·N + dₚ³) — and the unexplored tail is
   flattened onto the identity mass [ρμ + ε], giving
   [W = U diag((1−ρ)λᵢ + ρμ + ε)^{−1/2} Uᵀ + (ρμ+ε)^{−1/2}(I − UUᵀ)]
   materialized as a dense dₚ×dₚ matrix.  Exact when the covariance's rank
   is ≤ sketch; otherwise the tail is regularized harder than the exact
   whitener would — the same direction the ridge pushes. *)
let randomized_dim_threshold = 512
let default_sketch = 256

let whiten_view_randomized ~eps ~view ~sketch ~rho centered =
  let d, n = Mat.dims centered in
  let stage = Printf.sprintf "tcca.whiten-randomized view %d" view in
  let nf = float_of_int n in
  let fro = Mat.frobenius centered in
  let mu = fro *. fro /. (nf *. float_of_int d) in
  let svd, sinfo = Svd.randomized ~rank:(min sketch d) ~seed:(0x7CCA + view) centered in
  if not sinfo.Svd.converged then
    Error
      (Robust.Not_converged
         { stage; sweeps = sinfo.Svd.sweeps; residual = sinfo.Svd.residual })
  else begin
    let k = Array.length svd.Svd.sigma in
    let lambda = Array.map (fun s -> s *. s /. nf) svd.Svd.sigma in
    let base = (rho *. mu) +. eps in
    if base <= 0. then
      Error
        (Robust.Not_positive_definite
           { stage; pivot = 0; value = base; jitter_tried = 0. })
    else begin
      let lmax = Array.fold_left Float.max 0. lambda in
      let rank =
        Array.fold_left (fun acc l -> if l > 1e-9 *. lmax then acc + 1 else acc) 0 lambda
      in
      if rank = 0 then Error (Robust.Rank_deficient { view; rank; dim = d })
      else begin
        let c = 1. /. sqrt base in
        let u = svd.Svd.u in
        let scaled =
          Mat.init d k (fun i j ->
              Mat.get u i j *. ((1. /. sqrt (((1. -. rho) *. lambda.(j)) +. base)) -. c))
        in
        let w = Mat.add_scaled_identity c (Mat.mul_nt scaled u) in
        if not (Mat.all_finite w) then
          Error (Robust.Non_finite { stage; where = "sketched whitener" })
        else Ok w
      end
    end
  end

let whitened_tensor ?(eps = 1e-2) views =
  let means = Array.map Mat.row_means views in
  let centered = Array.map2 Mat.sub_col_vec views means in
  let c = covariance_tensor centered in
  Tensor.mode_products c (whiteners ~eps centered)

(* Below this many logical entries the dense path wins: its per-sweep cost
   O(∏dₚ·r) beats the factored O(N·Σdₚ·r) once the one-off O(N·∏dₚ)
   accumulation is amortized, and the dense tensor is small anyway. *)
let materialize_threshold = 262_144

let should_materialize ?materialize dims =
  match materialize with
  | Some b -> b
  | None ->
    (* Float product: ∏dₚ can overflow an int for many-view shapes. *)
    Array.fold_left (fun acc d -> acc *. float_of_int d) 1. dims
    <= float_of_int materialize_threshold

type prepared = {
  p_means : Vec.t array;
  p_whiteners : Mat.t array;
  p_shrink : float array; (* per-view shrinkage intensity ρ actually applied *)
  p_op : Op_tensor.t; (* the whitened covariance tensor M, dense or implicit *)
}

let shrinkage_intensities prepared = Array.copy prepared.p_shrink

let materialized prepared =
  match prepared.p_op with Op_tensor.Dense _ -> true | Op_tensor.Factored _ -> false

type raw_stats =
  | Raw_tensor of Tensor.t (* C₁₂…ₘ of the centered views, materialized *)
  | Raw_views of Mat.t array (* the centered views themselves (dₚ × N each) *)

(* [r_cov_stats] carries (shrunk covariances, intensities ρ, shifts ρ·μ).
   On the materialized path it is forced eagerly (the centered views are
   dropped); on the factored path it stays lazy so a sketched whitening run
   never pays the O(dₚ²·N) Gram it exists to avoid. *)
type raw = {
  r_means : Vec.t array;
  r_cov_stats : (Mat.t array * float array * float array) Lazy.t;
  r_stats : raw_stats;
  r_shrink : Shrink.t;
  r_n : int;
}

let shrink_view ~n ~shrinkage x =
  let nf = float_of_int n in
  let c = Mat.scale (1. /. nf) (Mat.gram x) in
  Shrink.apply ~x ~n shrinkage c

let prepare_raw ?materialize ?(shrinkage = (`None : Shrink.t)) views =
  let n = check_views "Tcca.prepare" views in
  let means = Array.map Mat.row_means views in
  let centered = Array.map2 Mat.sub_col_vec views means in
  (* Fault injection: wipe one instance column of view 0 — a dead sensor.
     The pipeline must absorb it (rank drops by at most one). *)
  if Robust.Inject.(active View_column_zero) then begin
    let v = centered.(0) in
    for i = 0 to fst (Mat.dims v) - 1 do
      Mat.set v i 0 0.
    done
  end;
  let dims = Array.map (fun v -> fst (Mat.dims v)) views in
  let compute () =
    let applied = Array.map (fun x -> shrink_view ~n ~shrinkage x) centered in
    ( Array.map (fun a -> a.Shrink.cov) applied,
      Array.map (fun a -> a.Shrink.intensity) applied,
      Array.map (fun a -> a.Shrink.intensity *. a.Shrink.target) applied )
  in
  if should_materialize ?materialize dims then
    { r_means = means;
      r_cov_stats = Lazy.from_val (compute ());
      r_stats = Raw_tensor (covariance_tensor centered);
      r_shrink = shrinkage;
      r_n = n }
  else
    { r_means = means;
      r_cov_stats = lazy (compute ());
      r_stats = Raw_views centered;
      r_shrink = shrinkage;
      r_n = n }

let prepare_of_raw_checked ?(whiten = (`Auto : whiten)) ~eps raw =
  (* The sketched whitener needs the centered views (to sketch from) and a
     data-independent shrinkage intensity (Lw/Oas need the covariance the
     sketch avoids) — outside that envelope it degrades to the exact eig
     whitener, loudly when it was forced. *)
  let rho_fixed =
    match raw.r_shrink with
    | `None -> Some 0.
    | `Fixed f -> Some (Float.min 1. (Float.max 0. f))
    | `Lw | `Oas -> None
  in
  let sketchable =
    match (rho_fixed, raw.r_stats) with
    | Some rho, Raw_views centered -> Some (rho, centered)
    | _ -> None
  in
  let want_rand =
    match whiten with
    | `Eig -> `No
    | `Randomized k -> (
      match sketchable with
      | Some _ -> `Forced k
      | None ->
        Robust.warnf
          "tcca.whiten: `Randomized needs retained views and a data-independent shrinkage \
           — falling back to the exact eig whitener";
        `No)
    | `Auto -> ( match sketchable with Some _ -> `Auto | None -> `No)
  in
  let sketch_for d =
    match want_rand with
    | `Forced k -> Some (min k d)
    | `Auto when d >= randomized_dim_threshold -> Some (min default_sketch d)
    | _ -> None
  in
  let view_dims = Array.map Array.length raw.r_means in
  let any_rand = Array.exists (fun d -> sketch_for d <> None) view_dims in
  let whiteners_result =
    match (any_rand, sketchable) with
    | false, _ | _, None ->
      let covs, intens, shifts = Lazy.force raw.r_cov_stats in
      (match whiteners_checked ~shifts ~eps covs with
      | Error e -> Error e
      | Ok ws -> Ok (ws, intens))
    | true, Some (rho, centered) -> (
      (* Mixed per-view route: tall views take the sketch, small views the
         exact whitener on an on-demand covariance (the shared lazy is left
         unforced — forcing it would Gram the tall views too). *)
      try
        let intens = Array.make (Array.length centered) rho in
        let ws =
          Array.mapi
            (fun p x ->
              match sketch_for view_dims.(p) with
              | Some sketch -> (
                match whiten_view_randomized ~eps ~view:p ~sketch ~rho x with
                | Ok w -> w
                | Error e -> raise (Robust.Error e))
              | None -> (
                let a = shrink_view ~n:raw.r_n ~shrinkage:raw.r_shrink x in
                intens.(p) <- a.Shrink.intensity;
                let shift0 = a.Shrink.intensity *. a.Shrink.target in
                match whiten_view ~shift0 ~eps ~view:p a.Shrink.cov with
                | Ok w -> w
                | Error e -> raise (Robust.Error e)))
            centered
        in
        Ok (ws, intens)
      with Robust.Error e -> Error e)
  in
  match whiteners_result with
  | Error e -> Error e
  | Ok (ws, intens) ->
    let op =
      match raw.r_stats with
      | Raw_tensor t -> Op_tensor.dense (Tensor.mode_products t ws)
      | Raw_views centered ->
        (* M = (1/N) Σᵢ ∘ₚ (Wₚ x̄ₚᵢ): the whitened views ARE the Kruskal
           factors of M — nothing of size ∏dₚ is ever allocated. *)
        let n = snd (Mat.dims centered.(0)) in
        Op_tensor.factored ~weight:(1. /. float_of_int n) (Array.map2 Mat.mul ws centered)
    in
    if not (Op_tensor.all_finite op) then
      Error
        (Robust.Non_finite { stage = "tcca.prepare"; where = "whitened covariance operator" })
    else Ok { p_means = raw.r_means; p_whiteners = ws; p_shrink = intens; p_op = op }

let prepare_of_raw ?whiten ~eps raw =
  match prepare_of_raw_checked ?whiten ~eps raw with Ok p -> p | Error e -> Robust.fail e

let prepare_checked ?(eps = 1e-2) ?materialize ?shrinkage ?whiten views =
  prepare_of_raw_checked ?whiten ~eps (prepare_raw ?materialize ?shrinkage views)

let prepare ?(eps = 1e-2) ?materialize ?shrinkage ?whiten views =
  prepare_of_raw ?whiten ~eps (prepare_raw ?materialize ?shrinkage views)

module Builder = struct
  (* Raw (uncentered) moments, exactly centered at [finalize] time by
     inclusion–exclusion:

       E[∘ₚ (xₚ − μₚ)]
         = Σ_{S ⊆ [m], |Sᶜ| ≥ 2} (−1)^{|S|} E[∘_{p∉S} xₚ] ∘ (∘_{p∈S} μₚ)
           + (−1)^{m−1} (m−1) ∘ₚ μₚ

     so the builder stores the joint raw-moment tensor of every mode subset
     of size ≥ 2 (for m = 3: the full tensor and the three pairwise
     matrices), the per-view sums, and the per-view second moments. *)
  type t = {
    dims : int array;
    mutable n : int;
    sums : Vec.t array;              (* Σ xₚ *)
    second : Mat.t array;            (* Σ xₚ xₚᵀ *)
    joints : (int, Tensor.t) Hashtbl.t; (* bitmask of the mode subset *)
  }

  let subset_modes mask m =
    let rec go p acc = if p < 0 then acc else go (p - 1) (if mask land (1 lsl p) <> 0 then p :: acc else acc) in
    go (m - 1) []

  let create ~dims =
    let m = Array.length dims in
    if m < 2 then invalid_arg "Tcca.Builder.create: need at least two views";
    Array.iter (fun d -> if d < 1 then invalid_arg "Tcca.Builder.create: bad dimension") dims;
    let joints = Hashtbl.create 16 in
    for mask = 0 to (1 lsl m) - 1 do
      let modes = subset_modes mask m in
      if List.length modes >= 2 then
        Hashtbl.replace joints mask
          (Tensor.create (Array.of_list (List.map (fun p -> dims.(p)) modes)))
    done;
    { dims;
      n = 0;
      sums = Array.map (fun d -> Vec.create d) dims;
      second = Array.map (fun d -> Mat.create d d) dims;
      joints }

  let count t = t.n

  let add_batch t views =
    let m = Array.length t.dims in
    if Array.length views <> m then invalid_arg "Tcca.Builder.add_batch: view count mismatch";
    Array.iteri
      (fun p v ->
        if fst (Mat.dims v) <> t.dims.(p) then
          invalid_arg "Tcca.Builder.add_batch: dimension mismatch")
      views;
    let batch = snd (Mat.dims views.(0)) in
    Array.iter
      (fun v ->
        if snd (Mat.dims v) <> batch then
          invalid_arg "Tcca.Builder.add_batch: instance count mismatch")
      views;
    for i = 0 to batch - 1 do
      let cols = Array.map (fun v -> Mat.col v i) views in
      Array.iteri (fun p c -> Vec.axpy_in_place 1. c t.sums.(p)) cols;
      Array.iteri
        (fun p c ->
          (* rank-1 update of the second moment *)
          let s = t.second.(p) in
          for a = 0 to t.dims.(p) - 1 do
            if c.(a) <> 0. then
              for b = 0 to t.dims.(p) - 1 do
                Mat.set s a b (Mat.get s a b +. (c.(a) *. c.(b)))
              done
          done)
        cols;
      Hashtbl.iter
        (fun mask tensor ->
          let modes = subset_modes mask m in
          Tensor.add_outer_in_place tensor 1.
            (Array.of_list (List.map (fun p -> cols.(p)) modes)))
        t.joints
    done;
    t.n <- t.n + batch

  let finalize ?(shrinkage = (`None : Shrink.t)) t =
    if t.n = 0 then invalid_arg "Tcca.Builder.finalize: no instances";
    let m = Array.length t.dims in
    let nf = float_of_int t.n in
    let means = Array.map (fun s -> Vec.scale (1. /. nf) s) t.sums in
    let covs =
      Array.mapi
        (fun p s ->
          let raw = Mat.scale (1. /. nf) s in
          Mat.init t.dims.(p) t.dims.(p) (fun a b ->
              Mat.get raw a b -. (means.(p).(a) *. means.(p).(b))))
        t.second
    in
    (* Inclusion–exclusion over mean subsets. *)
    let out = Tensor.create t.dims in
    let full_mask = (1 lsl m) - 1 in
    let idx = Array.make m 0 in
    let size = Tensor.size out in
    let strides = Array.make m 1 in
    for p = m - 2 downto 0 do
      strides.(p) <- strides.(p + 1) * t.dims.(p + 1)
    done;
    for flat = 0 to size - 1 do
      let rem = ref flat in
      for p = 0 to m - 1 do
        idx.(p) <- !rem / strides.(p);
        rem := !rem mod strides.(p)
      done;
      let acc = ref 0. in
      (* Subsets S of means; complement Sᶜ must have ≥ 2 modes to index a
         stored joint tensor; |Sᶜ| = 1 and 0 fold into the constant term. *)
      for s_mask = 0 to full_mask do
        let comp = full_mask land lnot s_mask in
        let comp_modes = subset_modes comp m in
        if List.length comp_modes >= 2 then begin
          let joint = Hashtbl.find t.joints comp in
          let joint_idx = Array.of_list (List.map (fun p -> idx.(p)) comp_modes) in
          let mu = ref 1. in
          List.iter (fun p -> mu := !mu *. means.(p).(idx.(p))) (subset_modes s_mask m);
          let sign = if List.length (subset_modes s_mask m) mod 2 = 0 then 1. else -1. in
          acc := !acc +. (sign *. Tensor.get joint joint_idx /. nf *. !mu)
        end
      done;
      (* Constant term: m subsets with |Sᶜ| = 1 contribute (−1)^{m−1} ∘μ each
         (E[x_q] = μ_q), and S = [m] contributes (−1)^m ∘μ. *)
      let mu_all = ref 1. in
      for p = 0 to m - 1 do
        mu_all := !mu_all *. means.(p).(idx.(p))
      done;
      let sign_m1 = if (m - 1) mod 2 = 0 then 1. else -1. in
      acc := !acc +. (sign_m1 *. float_of_int (m - 1) *. !mu_all);
      Tensor.set out idx !acc
    done;
    (* The streaming builder never retains instances, so [`Lw] (which needs
       them) degrades to [`Oas] inside {!Shrink.apply} with a warning. *)
    let applied = Array.map (fun c -> Shrink.apply ~n:t.n shrinkage c) covs in
    { r_means = means;
      r_cov_stats =
        Lazy.from_val
          ( Array.map (fun a -> a.Shrink.cov) applied,
            Array.map (fun a -> a.Shrink.intensity) applied,
            Array.map (fun a -> a.Shrink.intensity *. a.Shrink.target) applied );
      r_stats = Raw_tensor out;
      r_shrink = shrinkage;
      r_n = t.n }
end

(* Power_deflation walks raw tensor entries, so a factored operator must be
   materialized for it; refuse when that allocation is itself infeasible
   rather than letting it OOM. *)
let materialize_for_solver name op =
  (match op with
  | Op_tensor.Dense _ -> ()
  | Op_tensor.Factored _ ->
    let entries =
      Array.fold_left (fun acc d -> acc *. float_of_int d) 1. (Op_tensor.dims op)
    in
    if entries > 1e8 then
      invalid_arg
        (Printf.sprintf
           "%s: this solver needs the dense tensor (%.0f entries); use the Als solver for \
            factored operators"
           name entries));
  Op_tensor.to_tensor op

(* A budget-expired solve is graceful degradation, not an error: the model is
   the solver's best-so-far state.  Surface the diagnostic loudly (warnings
   ring + solver note) without failing the fit. *)
let note_deadline note = function
  | None -> note
  | Some d ->
    Robust.warnf "Tcca.fit: %s — returning best-so-far model" (Robust.failure_to_string d);
    note ^ "; " ^ Robust.failure_to_string d

let fit_prepared_checked ?(solver = default_solver) ?budget ?checkpoint ~r prepared =
  if r < 1 then invalid_arg "Tcca.fit_prepared: r must be >= 1";
  let r = Array.fold_left min r (Op_tensor.dims prepared.p_op) in
  (match (checkpoint, solver) with
  | Some cfg, (Sampled_als _ | Power_deflation) ->
    (* Sampled and deflation solvers carry no resumable snapshot yet: be loud
       rather than silently unprotected. *)
    Robust.warnf "Tcca.fit: checkpointing (%s) only supported by the Als solver — ignored"
      cfg.Checkpoint.path
  | _ -> ());
  let solved =
    match solver with
    | Als options ->
      let k, info = Cp_als.decompose_op ~options ?budget ?checkpoint ~rank:r prepared.p_op in
      (* A Some failure means the solver exhausted its restarts on
         non-finite or swamped runs — the model is not trustworthy. *)
      (match info.Cp_als.failure with
      | Some f -> Error f
      | None ->
        Ok
          ( k,
            note_deadline
              (Printf.sprintf "als: %d iters, fit %.6f, converged %b, runs %d"
                 info.Cp_als.iterations info.Cp_als.fit info.Cp_als.converged
                 (List.length info.Cp_als.runs))
              info.Cp_als.deadline ))
    | Sampled_als options -> (
      (* First-class sampled solver: runs on the operator directly (dense or
         factored — nothing is materialized) and honors the min_fit accuracy
         gate as a typed failure. *)
      let k, info = Cp_rand.decompose_op ~options ?budget ~rank:r prepared.p_op in
      match info.Cp_rand.failure with
      | Some f -> Error f
      | None ->
        Ok
          ( k,
            note_deadline
              (Printf.sprintf "sampled-als: %d iters, sampled fit %.6f, converged %b"
                 info.Cp_rand.iterations info.Cp_rand.sampled_fit info.Cp_rand.converged)
              info.Cp_rand.deadline ))
    | Power_deflation ->
      let m_tensor = materialize_for_solver "Tcca.fit_prepared" prepared.p_op in
      let k, deadline = Tensor_power.decompose ?budget ~rank:r m_tensor in
      Ok (Kruskal.normalize k, note_deadline "power-deflation" deadline)
  in
  match solved with
  | Error e -> Error e
  | Ok (kruskal, note) ->
    (* hₚ = C̃pp^{−1/2} uₚ (Theorem 2's back-substitution); fold the whitener
       into the projection so transform is a single matrix product. *)
    let projections =
      Array.map2 (fun w u -> Mat.mul w u) prepared.p_whiteners kruskal.Kruskal.factors
    in
    if
      not
        (Array.for_all Mat.all_finite projections
        && Vec.all_finite kruskal.Kruskal.weights)
    then Error (Robust.Non_finite { stage = "tcca.fit"; where = "projections" })
    else
      Ok
        { means = prepared.p_means;
          projections;
          factors = kruskal.Kruskal.factors;
          correlations = kruskal.Kruskal.weights;
          solver_note = note }

let fit_prepared ?solver ?budget ?checkpoint ~r prepared =
  match fit_prepared_checked ?solver ?budget ?checkpoint ~r prepared with
  | Ok t -> t
  | Error e -> Robust.fail e

let fit_checked ?(eps = 1e-2) ?materialize ?shrinkage ?whiten ?solver ?budget ?checkpoint ~r
    views =
  match prepare_checked ~eps ?materialize ?shrinkage ?whiten views with
  | Error e -> Error e
  | Ok prepared -> fit_prepared_checked ?solver ?budget ?checkpoint ~r prepared

let fit ?(eps = 1e-2) ?materialize ?shrinkage ?whiten ?solver ?budget ?checkpoint ~r views =
  fit_prepared ?solver ?budget ?checkpoint ~r (prepare ~eps ?materialize ?shrinkage ?whiten views)

let r t = Array.length t.correlations
let n_views t = Array.length t.projections
let correlations t = Array.copy t.correlations

let transform_view t p x =
  if p < 0 || p >= n_views t then invalid_arg "Tcca.transform_view: bad view index";
  Mat.mul_tn t.projections.(p) (Mat.sub_col_vec x t.means.(p))

let transform t views =
  if Array.length views <> n_views t then invalid_arg "Tcca.transform: view count mismatch";
  Mat.vcat_list (Array.to_list (Array.mapi (fun p x -> transform_view t p x) views))

let projections t = Array.map Mat.copy t.projections
let canonical_vectors = projections
let solver_info t = t.solver_note
let view_dims t = Array.map Array.length t.means

(* ------------------------------------------------------------------ *)
(* Serialization surface + warm restarts (the serving layer's needs). *)

type parts = {
  pt_means : Vec.t array;
  pt_projections : Mat.t array;
  pt_factors : Mat.t array;
  pt_correlations : Vec.t;
  pt_note : string;
}

let to_parts t =
  { pt_means = Array.map Array.copy t.means;
    pt_projections = Array.map Mat.copy t.projections;
    pt_factors = Array.map Mat.copy t.factors;
    pt_correlations = Array.copy t.correlations;
    pt_note = t.solver_note }

let of_parts p =
  let m = Array.length p.pt_projections in
  if m < 2 then invalid_arg "Tcca.of_parts: need at least two views";
  if Array.length p.pt_means <> m || Array.length p.pt_factors <> m then
    invalid_arg "Tcca.of_parts: view count mismatch";
  let r = Array.length p.pt_correlations in
  if r < 1 then invalid_arg "Tcca.of_parts: empty correlations";
  Array.iteri
    (fun i proj ->
      let rows, cols = Mat.dims proj in
      if cols <> r then invalid_arg "Tcca.of_parts: projection rank mismatch";
      if rows <> Array.length p.pt_means.(i) then
        invalid_arg "Tcca.of_parts: mean/projection dim mismatch";
      if snd (Mat.dims p.pt_factors.(i)) <> r then
        invalid_arg "Tcca.of_parts: factor rank mismatch")
    p.pt_projections;
  { means = Array.map Array.copy p.pt_means;
    projections = Array.map Mat.copy p.pt_projections;
    factors = Array.map Mat.copy p.pt_factors;
    correlations = Array.copy p.pt_correlations;
    solver_note = p.pt_note }

let warm_solver ?options t =
  let base = match options with Some o -> o | None -> Cp_als.default_options in
  Als { base with Cp_als.init = Cp_als.Warm (Array.map Mat.copy t.factors) }
