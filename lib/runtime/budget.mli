(** Cooperative deadlines and iteration budgets for long-running solves.

    A production fit must not hang a caller: every iterative solver
    ([Cp_als], [Cp_rand], [Hopm]/[Tensor_power]) accepts a budget and probes
    it {e once per sweep} at the loop head.  When the budget expires the
    solver stops at that sweep boundary and returns its best-so-far model
    with [converged = false] and a {!Robust.Deadline_exceeded} diagnostic —
    it never raises and never discards completed work.  ALS iterates improve
    (near-)monotonically (Chen, Kolar & Tsay 2021), which is what makes the
    best-so-far snapshot a principled degradation target rather than a random
    partial state.

    The clock starts at {!create}, not at the first check, so a budget built
    by a caller and threaded through [Tcca.fit_checked] bounds the whole fit
    including preparation time spent before the sweep loop. *)

type t

val unlimited : t
(** Never expires; every probe is two [option] compares.  The default of all
    solver entry points. *)

val create : ?wall_seconds:float -> ?sweeps:int -> unit -> t
(** [create ?wall_seconds ?sweeps ()] expires when either limit is hit:
    [wall_seconds] of wall-clock time since creation, or [sweeps] solver
    sweeps completed.  Omitting both yields {!unlimited}.  Raises
    [Invalid_argument] on negative limits; [~sweeps:0] (or [~wall_seconds:0.])
    expires at the first probe — the degenerate "return the initialization"
    budget. *)

val is_unlimited : t -> bool

val expired : stage:string -> sweeps:int -> t -> Robust.failure option
(** The per-sweep probe: [Some (Deadline_exceeded _)] once a limit is hit
    (naming [stage] and the tripped limit), [None] otherwise.  When the
    {!Robust.Inject.Deadline_now} fault is armed, every probe reports
    expiry. *)

val remaining_seconds : t -> float option
(** Wall-clock seconds left ([None] when no wall limit is set); never
    negative.  Useful for splitting one budget across pipeline stages. *)
