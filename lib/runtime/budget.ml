(* Cooperative deadlines for iterative solves.  A budget is checked once per
   sweep at the solver's loop head — cheap (one [Unix.gettimeofday] plus two
   compares) and safe (the solver is always at a consistent state when it
   stops), at the cost of a granularity of one sweep. *)

type t = {
  start : float;                (* gettimeofday at creation *)
  wall : float option;          (* seconds allowed from [start] *)
  max_sweeps : int option;      (* sweeps allowed, across the whole solve *)
}

let unlimited = { start = 0.; wall = None; max_sweeps = None }

let create ?wall_seconds ?sweeps () =
  (match wall_seconds with
  | Some s when s < 0. -> invalid_arg "Budget.create: wall_seconds must be >= 0"
  | _ -> ());
  (match sweeps with
  | Some k when k < 0 -> invalid_arg "Budget.create: sweeps must be >= 0"
  | _ -> ());
  match (wall_seconds, sweeps) with
  | None, None -> unlimited
  | _ -> { start = Unix.gettimeofday (); wall = wall_seconds; max_sweeps = sweeps }

let is_unlimited t = t.wall = None && t.max_sweeps = None

let expired ~stage ~sweeps t =
  if Robust.Inject.(active Deadline_now) then
    Some (Robust.Deadline_exceeded { stage; sweeps; elapsed = 0.; limit = "injected" })
  else if is_unlimited t then None
  else
    let sweep_hit = match t.max_sweeps with Some k -> sweeps >= k | None -> false in
    if sweep_hit then
      let elapsed = if t.wall = None then 0. else Unix.gettimeofday () -. t.start in
      Some
        (Robust.Deadline_exceeded
           { stage;
             sweeps;
             elapsed;
             limit = Printf.sprintf "sweeps %d" (Option.get t.max_sweeps) })
    else
      match t.wall with
      | None -> None
      | Some w ->
        let elapsed = Unix.gettimeofday () -. t.start in
        if elapsed >= w then
          Some
            (Robust.Deadline_exceeded
               { stage; sweeps; elapsed; limit = Printf.sprintf "wall %gs" w })
        else None

let remaining_seconds t =
  match t.wall with
  | None -> None
  | Some w -> Some (Float.max 0. (w -. (Unix.gettimeofday () -. t.start)))
