(** Numerics guardrails: structured failure reporting, warning capture, and a
    fault-injection hook for the TCCA/KTCCA solve path.

    The paper's high-dimension / small-sample regime is exactly where the
    whitening step ([C̃pp^{−1/2}], Theorem 2) and KTCCA's Cholesky of
    [K²pp + εKpp] go numerically bad: near-singular covariances, indefinite
    kernel Grams, ALS swamps.  This module gives every such event a typed
    value so callers can distinguish "recovered after escalation" from
    "structured failure" — and so nothing ever degrades into a silent NaN
    model.  The decomposition modules in [lib/linalg], the ALS solver and the
    two fit paths all report through this type; see DESIGN.md §"Robustness"
    for the escalation policies built on top of it. *)

(** Everything that can go numerically wrong on a solve path.  The [stage]
    fields name where in the pipeline the event happened (e.g.
    ["tcca.whiten view 1"], ["cp_als"]) so multi-view failures stay
    attributable. *)
type failure =
  | Not_converged of { stage : string; sweeps : int; residual : float }
      (** An iteration (Jacobi sweeps, ALS) hit its cap or stalled;
          [residual] is the stage's own convergence measure (off-diagonal
          norm for Jacobi, [1 − fit] for ALS). *)
  | Not_positive_definite of {
      stage : string;
      pivot : int;       (** Index of the failing Cholesky pivot. *)
      value : float;     (** Its (non-positive) value. *)
      jitter_tried : float;
          (** Largest diagonal jitter attempted before giving up;
              [0.] when no escalation ran. *)
    }
  | Non_finite of { stage : string; where : string }
      (** A NaN/Inf was caught at a stage boundary; [where] names the
          offending object (a view, the whitened operator, a sweep's fit). *)
  | Rank_deficient of { view : int; rank : int; dim : int }
      (** A view's covariance has numerical rank 0 (or otherwise too low to
          proceed): [rank] of [dim] directions carry information. *)
  | Deadline_exceeded of { stage : string; sweeps : int; elapsed : float; limit : string }
      (** A cooperative budget ({!Budget}) expired: the stage stopped at a
          sweep boundary after [sweeps] sweeps and [elapsed] wall-clock
          seconds.  [limit] names the budget that tripped (e.g. ["wall 2.5s"],
          ["sweeps 50"]).  Unlike every other constructor this one usually
          travels with a {e valid} best-so-far model — solvers report it in
          their info records and the warnings ring, not as a fit error. *)

exception Error of failure
(** Raised by the exception-style entry points ([Tcca.fit], [Ktcca.fit], …)
    when their [result]-returning [_checked] twin would return [Error].
    A printer is registered, so an uncaught one renders readably. *)

val pp_failure : Format.formatter -> failure -> unit
val failure_to_string : failure -> string

val fail : failure -> 'a
(** [fail f] = [raise (Error f)]. *)

(** {1 Warnings}

    Guardrail events that were recovered (a ridge escalation, a Jacobi cap, a
    restarted ALS run) are worth surfacing but not worth failing over.  They
    go to the [logs] library (source ["tcca.robust"]) and into a small
    in-process ring buffer that tests and callers can inspect without
    installing a reporter.

    The ring is domain-safe: [warnf], [recent_warnings] and [clear_warnings]
    may be called from pool-worker domains concurrently (guardrails fire
    inside parallel regions); entries are serialized under an internal
    leaf-level mutex. *)

val warnf : ('a, unit, string, unit) format4 -> 'a
(** Printf-style warning: appended to the ring buffer and forwarded to
    [Logs.warn] on the ["tcca.robust"] source. *)

val recent_warnings : unit -> string list
(** The captured warnings, oldest first (capped; older entries drop).
    Non-destructive: repeated calls return the same entries until
    {!clear_warnings} or {!drain_warnings} runs. *)

val clear_warnings : unit -> unit

val drain_warnings : unit -> string list
(** Read-and-clear, atomically: returns the captured warnings oldest first
    and empties the ring in one critical section, so a long-lived process
    (the serving daemon) can ship warning batches to its log without ever
    re-reporting an entry or losing one.

    Mutex contract: the ring is guarded by a single internal leaf-level
    mutex shared by {!warnf}, {!recent_warnings}, {!clear_warnings} and this
    function.  A [warnf] racing a [drain_warnings] lands either in the
    returned batch or in the ring for the next drain — never in both and
    never dropped.  Two concurrent drains partition the entries between
    them. *)

(** {1 Fault injection}

    [Inject] lets tests corrupt chosen pipeline stages to prove that every
    degradation path ends in a recovered model or a typed {!failure} — never
    a silent NaN model.  Disabled (the default), every probe is a single
    [bool] load, so production paths pay nothing.  Not domain-safe by design:
    arm/disarm from the test's main domain only. *)
module Inject : sig
  type stage =
    | Covariance_nan   (** Poison the covariance statistics with a NaN. *)
    | View_column_zero (** Zero one instance column of view 0. *)
    | Gram_indefinite  (** Make view 0's whitening target indefinite. *)
    | Sweep_cap
        (** Force symmetric eigendecompositions (either method — Jacobi
            sweeps or tridiagonal QL iterations) to a 0-iteration cap. *)
    | Als_nan          (** Poison every ALS sweep's fit with NaN. *)
    | Torn_checkpoint_write
        (** Simulate a crash mid-[Checkpoint.save]: a truncated file lands at
            the destination path (the atomic temp-file + rename protocol is
            bypassed, which is exactly what it protects against). *)
    | Corrupt_checkpoint
        (** Flip one payload byte after the CRC is computed, so the next
            [Checkpoint.load] fails its integrity check. *)
    | Deadline_now
        (** Make every [Budget] check report immediate expiry, regardless of
            the actual clocks. *)
    | Slow_client
        (** Serving: pretend a connected client stalls mid-frame, so the
            daemon's per-connection read timeout must fire and the
            connection must be dropped without wedging a worker. *)
    | Torn_swap
        (** Serving: truncate the bytes of a hot-swap model read, so the
            swap must fail validation and roll back to the serving
            version. *)
    | Queue_full
        (** Serving: make the bounded request queue report overflow on every
            enqueue, forcing the load-shedding reply path. *)
    | Refit_nan
        (** Serving: poison the covariance statistics of an incremental
            refit (via the same NaN guardrail the fit path uses), so the
            refit must fail typed and leave the serving model unchanged. *)
    | Worker_crash
        (** Serving: make a model's compute worker die from an uncaught
            exception mid-request, so the supervisor must answer the
            in-flight request typed, log the death, and respawn the worker
            within its capped budget — siblings untouched. *)
    | Breaker_probe_fail
        (** Serving: force the next half-open circuit-breaker probe to
            fail, so the breaker must fall back to Open (with a fresh
            cooldown) instead of re-closing. *)
    | Registry_corrupt_one
        (** Serving: during multi-model recovery, treat the alphabetically
            first model directory's snapshots as unreadable, so exactly
            that model cold-starts with a warning while every sibling
            loads its newest valid snapshot. *)
    | Torn_model_write
        (** Serving: simulate a crash mid-[Model_store.save] — a truncated
            file lands at the {e final} path with no fsync and no rename,
            which is exactly the failure mode the durable temp-file +
            fsync + rename protocol prevents. *)

  val arm : stage -> unit
  (** Arm a stage (enables injection globally). *)

  val disarm : stage -> unit

  val reset : unit -> unit
  (** Disarm everything and disable injection. *)

  val enabled : unit -> bool

  val active : stage -> bool
  (** [true] iff injection is enabled and [stage] is armed.  This is the
      probe production code calls; when nothing was ever armed it costs one
      [bool] dereference. *)

  val with_stage : stage -> (unit -> 'a) -> 'a
  (** [with_stage s f] arms [s], runs [f], and restores the previous armed
      set even on exception — the test-suite entry point. *)
end
