(** Deterministic-jitter exponential backoff with a typed give-up.

    The serving daemon retries exactly two kinds of operation — model-file
    I/O (hot swap, startup recovery) and incremental refit attempts — and
    both need the same contract: a bounded number of attempts, exponentially
    growing delays so a struggling disk or a transient NFS blip is not
    hammered, jitter so a fleet of daemons restarted together does not
    retry in lockstep, and a {e typed} give-up carrying the last error so
    the caller can reply precisely instead of guessing.

    Determinism matters here as everywhere else in this repo: the jitter is
    a pure function of the policy seed and the attempt number (a splitmix
    integer hash), so a test that observes the delay sequence once can
    assert it forever, and two daemons with different seeds still spread
    their retries. *)

type policy = {
  attempts : int;      (** Total tries including the first ([>= 1]). *)
  base_delay : float;  (** Delay before attempt 2, seconds. *)
  multiplier : float;  (** Exponential growth per further attempt. *)
  max_delay : float;   (** Cap on any single delay, seconds. *)
  jitter : float;
      (** Fraction of each delay randomized, in [[0, 1]]: the delay for an
          attempt is [d * (1 - jitter + jitter * u)] with [u] in [[0, 1)]
          drawn deterministically from [seed] and the attempt number. *)
  seed : int;  (** Jitter stream identity. *)
}

val default_policy : policy
(** 4 attempts, 50 ms base, ×2 growth, 1 s cap, 0.5 jitter, seed 0x52455459
    (["RETY"]). *)

val delay_for : policy -> attempt:int -> float
(** [delay_for p ~attempt] is the delay slept {e after} failed [attempt]
    (1-based) and before the next one — deterministic in [(p.seed,
    attempt)].  Raises [Invalid_argument] on a non-positive attempt. *)

type 'e give_up = {
  ga_attempts : int;     (** Attempts actually made. *)
  ga_total_delay : float;(** Seconds of backoff slept across them. *)
  ga_last_error : 'e;    (** The final attempt's error, verbatim. *)
}
(** Why a retried operation was abandoned: every attempt failed and the
    policy ran out. *)

val run :
  ?policy:policy ->
  ?sleep:(float -> unit) ->
  ?on_retry:(attempt:int -> delay:float -> 'e -> unit) ->
  (unit -> ('a, 'e) result) ->
  ('a, 'e give_up) result
(** [run f] calls [f] up to [policy.attempts] times, sleeping the
    {!delay_for} backoff between failures.  First [Ok] wins.  [~sleep]
    (default [Unix.sleepf]) exists so tests run instantly and can record
    the delay sequence; [~on_retry] fires before each sleep with the
    failing attempt's number, the chosen delay and its error (the daemon
    logs these).  Exceptions from [f] are not caught: retry is for typed,
    expected failures — a programming error should crash loudly. *)
