(* Exponential backoff with deterministic jitter.  [runtime] sits below
   [mvutil], so the jitter stream is a local splitmix-style integer hash
   rather than [Rng] — same fixed-point determinism, zero dependencies. *)

type policy = {
  attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
  seed : int;
}

let default_policy =
  { attempts = 4;
    base_delay = 0.05;
    multiplier = 2.0;
    max_delay = 1.0;
    jitter = 0.5;
    seed = 0x52455459 (* "RETY" *) }

(* splitmix64 finalizer on (seed, attempt): a well-mixed 64-bit hash whose
   top 53 bits become a uniform float in [0, 1). *)
let uniform ~seed ~attempt =
  let z = ref Int64.(add (of_int seed) (mul (of_int attempt) 0x9E3779B97F4A7C15L)) in
  let mix shift mult =
    z := Int64.(mul (logxor !z (shift_right_logical !z shift)) mult)
  in
  mix 30 0xBF58476D1CE4E5B9L;
  mix 27 0x94D049BB133111EBL;
  let bits = Int64.(to_int (shift_right_logical (logxor !z (shift_right_logical !z 31)) 11)) in
  float_of_int bits /. 9007199254740992.0 (* 2^53 *)

let delay_for p ~attempt =
  if attempt < 1 then invalid_arg "Retry.delay_for: attempt must be >= 1";
  let raw = p.base_delay *. (p.multiplier ** float_of_int (attempt - 1)) in
  let capped = Float.min raw p.max_delay in
  let j = Float.max 0. (Float.min 1. p.jitter) in
  let u = uniform ~seed:p.seed ~attempt in
  capped *. (1. -. j +. (j *. u))

type 'e give_up = {
  ga_attempts : int;
  ga_total_delay : float;
  ga_last_error : 'e;
}

let run ?(policy = default_policy) ?(sleep = Unix.sleepf) ?on_retry f =
  if policy.attempts < 1 then invalid_arg "Retry.run: attempts must be >= 1";
  let rec go attempt slept =
    match f () with
    | Ok v -> Ok v
    | Error e when attempt >= policy.attempts ->
      Error { ga_attempts = attempt; ga_total_delay = slept; ga_last_error = e }
    | Error e ->
      let delay = delay_for policy ~attempt in
      (match on_retry with
       | Some cb -> cb ~attempt ~delay e
       | None -> ());
      sleep delay;
      go (attempt + 1) (slept +. delay)
  in
  go 1 0.
