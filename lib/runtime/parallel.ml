(* Reusable domain pool.  One long-lived worker domain per pool slot; each
   worker blocks on its own mutex/condvar pair waiting for a closure, runs
   it, publishes the result (or the exception), and goes back to sleep.
   The caller's domain always executes chunk 0 itself, so a pool of size k
   spawns k-1 domains. *)

let max_domains = 128
let clamp s = if s < 1 then 1 else if s > max_domains then max_domains else s

let size_from_env raw =
  match raw with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some v when v >= 1 -> clamp v
    | Some _ | None -> clamp (Domain.recommended_domain_count ()))
  | None -> clamp (Domain.recommended_domain_count ())

let requested_size = ref None

let num_domains () =
  match !requested_size with
  | Some s -> s
  | None ->
    let s = size_from_env (Sys.getenv_opt "TCCA_DOMAINS") in
    requested_size := Some s;
    s

let default_cutoff = 16384

let cutoff =
  ref
    (match Option.bind (Sys.getenv_opt "TCCA_PAR_CUTOFF") int_of_string_opt with
    | Some v when v >= 0 -> v
    | Some _ | None -> default_cutoff)

let sequential_cutoff () = !cutoff
let set_sequential_cutoff v = cutoff := if v < 0 then 0 else v

(* ------------------------------------------------------------------ *)
(* Worker slots.                                                      *)

type cell = Idle | Job of (unit -> unit) | Done of exn option | Quit

type slot = { mutex : Mutex.t; cond : Condition.t; mutable cell : cell }

type pool = { size : int; slots : slot array; domains : unit Domain.t array }

let live_pool : pool option ref = ref None

(* Guards pool creation/shutdown; a second mutex serializes dispatch so that
   two user domains can't interleave jobs on the same slots. *)
let pool_mutex = Mutex.create ()
let dispatch_mutex = Mutex.create ()

(* Workers (and any code they call) must never re-enter the pool: nested
   parallel regions degrade to sequential instead of deadlocking. *)
let inside_pool : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let worker_loop slot =
  Domain.DLS.set inside_pool true;
  let rec wait () =
    match slot.cell with
    | Job f ->
      Mutex.unlock slot.mutex;
      let outcome = (try f (); None with e -> Some e) in
      Mutex.lock slot.mutex;
      slot.cell <- Done outcome;
      Condition.broadcast slot.cond;
      wait ()
    | Quit -> Mutex.unlock slot.mutex
    | Idle | Done _ ->
      Condition.wait slot.cond slot.mutex;
      wait ()
  in
  Mutex.lock slot.mutex;
  wait ()

let shutdown_registered = ref false

let shutdown () =
  Mutex.lock pool_mutex;
  (match !live_pool with
  | None -> ()
  | Some p ->
    live_pool := None;
    Array.iter
      (fun slot ->
        Mutex.lock slot.mutex;
        slot.cell <- Quit;
        Condition.broadcast slot.cond;
        Mutex.unlock slot.mutex)
      p.slots;
    Array.iter Domain.join p.domains);
  Mutex.unlock pool_mutex

let set_num_domains s =
  let s = clamp s in
  (* Keep a live pool of the right size — tests flip sizes repeatedly. *)
  (match !live_pool with
  | Some p when p.size <> s -> shutdown ()
  | Some _ | None -> ());
  requested_size := Some s

let create_pool size =
  let slots =
    Array.init (size - 1) (fun _ ->
        { mutex = Mutex.create (); cond = Condition.create (); cell = Idle })
  in
  let domains = Array.map (fun slot -> Domain.spawn (fun () -> worker_loop slot)) slots in
  if not !shutdown_registered then begin
    shutdown_registered := true;
    at_exit shutdown
  end;
  { size; slots; domains }

let ensure_pool size =
  Mutex.lock pool_mutex;
  let p =
    match !live_pool with
    | Some p when p.size = size -> p
    | Some _ ->
      (* Size changed since creation: rebuild.  (shutdown re-locks, so drop
         the lock around it.) *)
      Mutex.unlock pool_mutex;
      shutdown ();
      Mutex.lock pool_mutex;
      let p = create_pool size in
      live_pool := Some p;
      p
    | None ->
      let p = create_pool size in
      live_pool := Some p;
      p
  in
  Mutex.unlock pool_mutex;
  p

(* ------------------------------------------------------------------ *)
(* Dispatch.                                                          *)

(* Chunk c of [0,n) split k ways is [c*n/k, (c+1)*n/k): contiguous,
   non-overlapping, near-equal — the row-ownership determinism contract. *)
let chunk_bounds n k c = (c * n / k, (c + 1) * n / k)

let run_chunked size n (work : int -> int -> int -> unit) =
  let pool = ensure_pool size in
  let nchunks = min size n in
  let first_exn = ref None in
  let record = function
    | Some e when !first_exn = None -> first_exn := Some e
    | _ -> ()
  in
  let used = nchunks - 1 in
  for c = 1 to used do
    let lo, hi = chunk_bounds n nchunks c in
    let slot = pool.slots.(c - 1) in
    Mutex.lock slot.mutex;
    slot.cell <- Job (fun () -> work c lo hi);
    Condition.broadcast slot.cond;
    Mutex.unlock slot.mutex
  done;
  let lo0, hi0 = chunk_bounds n nchunks 0 in
  let own = (try work 0 lo0 hi0; None with e -> Some e) in
  for c = 1 to used do
    let slot = pool.slots.(c - 1) in
    Mutex.lock slot.mutex;
    let rec join () =
      match slot.cell with
      | Done outcome ->
        slot.cell <- Idle;
        record outcome
      | Job _ | Idle ->
        Condition.wait slot.cond slot.mutex;
        join ()
      | Quit -> ()
    in
    join ();
    Mutex.unlock slot.mutex
  done;
  record own;
  match !first_exn with Some e -> raise e | None -> ()

let sequential_only ?(cost = max_int) n =
  n < 2 || cost < !cutoff || num_domains () = 1 || Domain.DLS.get inside_pool

let parallel_for ?cost ~n body =
  if n <= 0 then ()
  else begin
    let cost = match cost with Some c -> c | None -> n in
    if sequential_only ~cost n then body 0 n
    else if not (Mutex.try_lock dispatch_mutex) then body 0 n
    else
      Fun.protect
        ~finally:(fun () -> Mutex.unlock dispatch_mutex)
        (fun () -> run_chunked (num_domains ()) n (fun _ lo hi -> body lo hi))
  end

let parallel_for_reduce ?cost ~n ~init ~combine body =
  if n <= 0 then init
  else begin
    let cost = match cost with Some c -> c | None -> n in
    if sequential_only ~cost n then combine init (body 0 n)
    else if not (Mutex.try_lock dispatch_mutex) then combine init (body 0 n)
    else
      Fun.protect
        ~finally:(fun () -> Mutex.unlock dispatch_mutex)
        (fun () ->
          let size = num_domains () in
          let nchunks = min size n in
          let partials = Array.make nchunks None in
          run_chunked size n (fun c lo hi -> partials.(c) <- Some (body lo hi));
          Array.fold_left
            (fun acc p ->
              match p with Some v -> combine acc v | None -> acc)
            init partials)
  end
