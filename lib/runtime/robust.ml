type failure =
  | Not_converged of { stage : string; sweeps : int; residual : float }
  | Not_positive_definite of {
      stage : string;
      pivot : int;
      value : float;
      jitter_tried : float;
    }
  | Non_finite of { stage : string; where : string }
  | Rank_deficient of { view : int; rank : int; dim : int }
  | Deadline_exceeded of { stage : string; sweeps : int; elapsed : float; limit : string }

exception Error of failure

let pp_failure ppf = function
  | Not_converged { stage; sweeps; residual } ->
    Format.fprintf ppf "not converged at %s after %d sweeps (residual %g)" stage sweeps
      residual
  | Not_positive_definite { stage; pivot; value; jitter_tried } ->
    Format.fprintf ppf "not positive definite at %s: pivot %d = %g%s" stage pivot value
      (if jitter_tried > 0. then Format.asprintf " (jitter up to %g tried)" jitter_tried
       else "")
  | Non_finite { stage; where } ->
    Format.fprintf ppf "non-finite value at %s in %s" stage where
  | Rank_deficient { view; rank; dim } ->
    Format.fprintf ppf "view %d is rank deficient: rank %d of %d" view rank dim
  | Deadline_exceeded { stage; sweeps; elapsed; limit } ->
    Format.fprintf ppf "deadline exceeded at %s after %d sweeps (%.3fs elapsed, budget %s)"
      stage sweeps elapsed limit

let failure_to_string f = Format.asprintf "%a" pp_failure f

let () =
  Printexc.register_printer (function
    | Error f -> Some (Printf.sprintf "Robust.Error: %s" (failure_to_string f))
    | _ -> None)

let fail f = raise (Error f)

(* ------------------------------------------------------------------ *)
(* Warnings: a bounded ring buffer plus a [logs] source.  The buffer is
   what tests assert on; the source is what applications subscribe to.
   Guardrail events fire from pool-worker domains too (a ridge escalation
   inside a parallel region, a checkpoint fallback under a worker's fit),
   so the ring is guarded by its own mutex — the lock is leaf-level
   (nothing is called while holding it) and warnings are rare, so the
   cost is invisible next to the work that triggered them. *)

let src = Logs.Src.create "tcca.robust" ~doc:"TCCA numerics guardrails"

module Log = (val Logs.src_log src : Logs.LOG)

let max_warnings = 64
let warnings_mutex = Mutex.create ()
let warnings : string list ref = ref [] (* newest first, capped *)

let with_ring f =
  Mutex.lock warnings_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock warnings_mutex) f

let push_warning s =
  with_ring (fun () ->
      let keep = ref [ s ] and n = ref 1 in
      List.iter
        (fun w ->
          if !n < max_warnings then begin
            keep := w :: !keep;
            incr n
          end)
        !warnings;
      warnings := List.rev !keep)

let warnf fmt =
  Printf.ksprintf
    (fun s ->
      push_warning s;
      Log.warn (fun m -> m "%s" s))
    fmt

let recent_warnings () = with_ring (fun () -> List.rev !warnings)
let clear_warnings () = with_ring (fun () -> warnings := [])

let drain_warnings () =
  with_ring (fun () ->
      let drained = List.rev !warnings in
      warnings := [];
      drained)

(* ------------------------------------------------------------------ *)

module Inject = struct
  type stage =
    | Covariance_nan
    | View_column_zero
    | Gram_indefinite
    | Sweep_cap
    | Als_nan
    | Torn_checkpoint_write
    | Corrupt_checkpoint
    | Deadline_now
    | Slow_client
    | Torn_swap
    | Queue_full
    | Refit_nan
    | Worker_crash
    | Breaker_probe_fail
    | Registry_corrupt_one
    | Torn_model_write

  (* [on] is the single-load fast path: production code probes [active],
     which reads one bool before anything else happens. *)
  let on = ref false
  let armed : stage list ref = ref []

  let arm s =
    if not (List.memq s !armed) then armed := s :: !armed;
    on := true

  let disarm s =
    armed := List.filter (fun x -> x <> s) !armed;
    if !armed = [] then on := false

  let reset () =
    armed := [];
    on := false

  let enabled () = !on
  let active s = !on && List.memq s !armed

  let with_stage s f =
    let saved = !armed in
    arm s;
    Fun.protect
      ~finally:(fun () ->
        armed := saved;
        on := saved <> [])
      f
end
