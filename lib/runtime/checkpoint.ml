(* Crash-safe snapshots of iterative solver state.

   Wire format (little-endian throughout; see DESIGN.md §"Checkpoint wire
   format" for the field-level layout):

     magic   "TCCK"                     4 bytes
     version u32                        4 bytes
     length  u64 (payload bytes)        8 bytes
     crc32   u32 (of the payload)       4 bytes
     payload                            [length] bytes

   The payload is a flat field stream (ints and float bits as fixed i64,
   length-prefixed strings and arrays) — no alignment, no pointers, so a
   snapshot written on any platform loads on any other.

   Durability protocol: the whole file is built in memory, written to
   [path ^ ".tmp"] with an fsync-free close, and published with [Sys.rename].
   Rename is atomic on POSIX, so a reader (including a crashed-and-restarted
   self) only ever observes either the previous complete snapshot or the new
   complete snapshot — never a torn one.  The [Torn_checkpoint_write] fault
   bypasses exactly this protocol to prove the loader's degradation path.

   The header/CRC/field-stream machinery is generic — only the payload
   schema is snapshot-specific — so it lives in the [Wire] submodule, which
   the serving layer reuses for its own model files (magic "TCCM"). *)

type direction = Newer | Older

type load_error =
  | Truncated
  | Corrupt of string
  | Version_mismatch of { found : int; expected : int; direction : direction }

let load_error_to_string = function
  | Truncated -> "truncated snapshot (torn write or incomplete copy)"
  | Corrupt what -> Printf.sprintf "corrupt snapshot (%s)" what
  | Version_mismatch { found; expected; direction } ->
    Printf.sprintf "snapshot format version %d is %s than this build reads (%d)" found
      (match direction with Newer -> "newer" | Older -> "older")
      expected

(* ------------------------------------------------------------------ *)

module Wire = struct
  (* CRC32 (IEEE 802.3, the zlib polynomial). *)

  let crc_table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c))

  let crc32 s =
    let table = Lazy.force crc_table in
    let c = ref 0xFFFFFFFF in
    String.iter
      (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
      s;
    !c lxor 0xFFFFFFFF

  (* Field-stream encoders. *)

  let add_i64 b v = Buffer.add_int64_le b v
  let add_int b v = add_i64 b (Int64.of_int v)
  let add_f64 b v = add_i64 b (Int64.bits_of_float v)
  let add_bool b v = add_int b (if v then 1 else 0)

  let add_string b s =
    add_int b (String.length s);
    Buffer.add_string b s

  let add_f_array b a =
    add_int b (Array.length a);
    Array.iter (add_f64 b) a

  let add_int_opt b = function
    | None -> add_int b 0
    | Some v ->
      add_int b 1;
      add_int b v

  (* Decoding: a cursor over the payload; any overrun or bad tag raises
     [Decode], which framed loaders surface as [Corrupt]. *)

  exception Decode of string

  type cursor = { s : string; mutable pos : int }

  let cursor s = { s; pos = 0 }

  let need c n =
    if c.pos + n > String.length c.s then raise (Decode "field overruns payload")

  let get_i64 c =
    need c 8;
    let v = String.get_int64_le c.s c.pos in
    c.pos <- c.pos + 8;
    v

  let get_int c =
    let v = get_i64 c in
    let i = Int64.to_int v in
    if Int64.of_int i <> v then raise (Decode "integer out of range");
    i

  let get_nat c what =
    let v = get_int c in
    if v < 0 then raise (Decode (what ^ " is negative"));
    v

  let get_f64 c = Int64.float_of_bits (get_i64 c)

  let get_bool c =
    match get_int c with 0 -> false | 1 -> true | _ -> raise (Decode "bad bool tag")

  let get_string c =
    let n = get_nat c "string length" in
    need c n;
    let s = String.sub c.s c.pos n in
    c.pos <- c.pos + n;
    s

  let get_f_array c =
    let n = get_nat c "array length" in
    need c (8 * n);
    let a =
      Array.init n (fun i ->
          Int64.float_of_bits (String.get_int64_le c.s (c.pos + (8 * i))))
    in
    c.pos <- c.pos + (8 * n);
    a

  let get_int_opt c =
    match get_int c with
    | 0 -> None
    | 1 -> Some (get_int c)
    | _ -> raise (Decode "bad option tag")

  let expect_end c =
    if c.pos <> String.length c.s then raise (Decode "trailing bytes after payload")

  let at_end c = c.pos = String.length c.s

  (* Framing. *)

  let header_bytes = 20

  let frame ~magic ~version payload =
    if String.length magic <> 4 then invalid_arg "Wire.frame: magic must be 4 bytes";
    let b = Buffer.create (header_bytes + String.length payload) in
    Buffer.add_string b magic;
    Buffer.add_int32_le b (Int32.of_int version);
    add_i64 b (Int64.of_int (String.length payload));
    Buffer.add_int32_le b (Int32.of_int (crc32 payload));
    Buffer.add_string b payload;
    Buffer.contents b

  let unframe ~magic ~version s =
    if String.length s < header_bytes then Error Truncated
    else if String.sub s 0 4 <> magic then Error (Corrupt "bad magic")
    else begin
      let found = Int32.to_int (String.get_int32_le s 4) in
      if found <> version then
        Error
          (Version_mismatch
             { found;
               expected = version;
               direction = (if found > version then Newer else Older) })
      else begin
        let len64 = String.get_int64_le s 8 in
        let declared_crc = Int32.to_int (String.get_int32_le s 16) land 0xFFFFFFFF in
        match Int64.unsigned_to_int len64 with
        | None -> Error (Corrupt "absurd payload length")
        | Some len ->
          if String.length s < header_bytes + len then Error Truncated
          else if String.length s > header_bytes + len then
            Error (Corrupt "trailing bytes after payload")
          else
            let payload = String.sub s header_bytes len in
            if crc32 payload <> declared_crc then Error (Corrupt "CRC mismatch")
            else Ok payload
      end
    end

  (* File I/O. *)

  let write_file path bytes =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc bytes)

  let write_atomic ~path bytes =
    let tmp = path ^ ".tmp" in
    write_file tmp bytes;
    Sys.rename tmp path

  (* Durable variant: rename alone only orders the *names*; the temp file's
     data can still sit in the page cache when power is lost, leaving a
     zero-length or torn file behind a valid-looking name.  fsync the temp
     file before the rename, then fsync the directory so the rename itself
     is on disk.  Directory fsync is best-effort (some filesystems refuse
     O_RDONLY directory descriptors); data fsync failures are real errors. *)
  let fsync_dir dir =
    match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()

  let write_durable ~path bytes =
    let tmp = path ^ ".tmp" in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    (match
       Fun.protect
         ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
         (fun () ->
           let b = Bytes.unsafe_of_string bytes in
           let total = Bytes.length b in
           let written = ref 0 in
           while !written < total do
             written := !written + Unix.write fd b !written (total - !written)
           done;
           Unix.fsync fd)
     with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) ->
      raise (Sys_error (tmp ^ ": " ^ Unix.error_message e)));
    Sys.rename tmp path;
    fsync_dir (Filename.dirname path)

  let read ~path =
    let read_all () =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match read_all () with
    | s -> Ok s
    | exception Sys_error e -> Error (Corrupt ("unreadable: " ^ e))
end

let crc32 = Wire.crc32

(* ------------------------------------------------------------------ *)
(* Snapshot structure.  Factors are plain row-major arrays: this module
   sits below [linalg] in the build, so the matrix conversion happens in
   the solver that owns the state ([Cp_als]). *)

type factor = { rows : int; cols : int; data : float array }

type run_state = {
  rs_init_random : int option; (* Some seed for Random init, None for Hosvd *)
  rs_iterations : int;
  rs_previous_fit : float;
  rs_best_fit : float;
  rs_drops : int;
  rs_converged : bool;
  rs_failure : Robust.failure option;
  rs_weights : float array;
  rs_factors : factor array;
  rs_history : float array; (* per-sweep fit, oldest first *)
}

type t = {
  fingerprint : string;
  domains : int;
  attempt : int;
  completed : run_state list; (* finished restart runs, oldest first *)
  current : run_state;        (* the in-progress run at its last sweep boundary *)
}

let version = 1
let magic = "TCCK"

(* ------------------------------------------------------------------ *)
(* Snapshot payload codec, on top of the [Wire] field stream. *)

open Wire

let add_failure b = function
  | None -> add_int b 0
  | Some (Robust.Not_converged { stage; sweeps; residual }) ->
    add_int b 1;
    add_string b stage;
    add_int b sweeps;
    add_f64 b residual
  | Some (Robust.Not_positive_definite { stage; pivot; value; jitter_tried }) ->
    add_int b 2;
    add_string b stage;
    add_int b pivot;
    add_f64 b value;
    add_f64 b jitter_tried
  | Some (Robust.Non_finite { stage; where }) ->
    add_int b 3;
    add_string b stage;
    add_string b where
  | Some (Robust.Rank_deficient { view; rank; dim }) ->
    add_int b 4;
    add_int b view;
    add_int b rank;
    add_int b dim
  | Some (Robust.Deadline_exceeded { stage; sweeps; elapsed; limit }) ->
    add_int b 5;
    add_string b stage;
    add_int b sweeps;
    add_f64 b elapsed;
    add_string b limit

let add_factor b f =
  if Array.length f.data <> f.rows * f.cols then
    invalid_arg "Checkpoint: factor data length mismatch";
  add_int b f.rows;
  add_int b f.cols;
  add_f_array b f.data

let add_run_state b rs =
  add_int_opt b rs.rs_init_random;
  add_int b rs.rs_iterations;
  add_f64 b rs.rs_previous_fit;
  add_f64 b rs.rs_best_fit;
  add_int b rs.rs_drops;
  add_bool b rs.rs_converged;
  add_failure b rs.rs_failure;
  add_f_array b rs.rs_weights;
  add_int b (Array.length rs.rs_factors);
  Array.iter (add_factor b) rs.rs_factors;
  add_f_array b rs.rs_history

let encode_payload t =
  let b = Buffer.create 4096 in
  add_string b t.fingerprint;
  add_int b t.domains;
  add_int b t.attempt;
  add_int b (List.length t.completed);
  List.iter (add_run_state b) t.completed;
  add_run_state b t.current;
  Buffer.contents b

let get_failure c =
  match get_int c with
  | 0 -> None
  | 1 ->
    let stage = get_string c in
    let sweeps = get_int c in
    let residual = get_f64 c in
    Some (Robust.Not_converged { stage; sweeps; residual })
  | 2 ->
    let stage = get_string c in
    let pivot = get_int c in
    let value = get_f64 c in
    let jitter_tried = get_f64 c in
    Some (Robust.Not_positive_definite { stage; pivot; value; jitter_tried })
  | 3 ->
    let stage = get_string c in
    let where = get_string c in
    Some (Robust.Non_finite { stage; where })
  | 4 ->
    let view = get_int c in
    let rank = get_int c in
    let dim = get_int c in
    Some (Robust.Rank_deficient { view; rank; dim })
  | 5 ->
    let stage = get_string c in
    let sweeps = get_int c in
    let elapsed = get_f64 c in
    let limit = get_string c in
    Some (Robust.Deadline_exceeded { stage; sweeps; elapsed; limit })
  | _ -> raise (Decode "bad failure tag")

let get_factor c =
  let rows = get_nat c "factor rows" in
  let cols = get_nat c "factor cols" in
  let data = get_f_array c in
  if Array.length data <> rows * cols then raise (Decode "factor shape mismatch");
  { rows; cols; data }

let get_run_state c =
  let rs_init_random = get_int_opt c in
  let rs_iterations = get_nat c "iterations" in
  let rs_previous_fit = get_f64 c in
  let rs_best_fit = get_f64 c in
  let rs_drops = get_nat c "drops" in
  let rs_converged = get_bool c in
  let rs_failure = get_failure c in
  let rs_weights = get_f_array c in
  let n_factors = get_nat c "factor count" in
  let rs_factors = Array.init n_factors (fun _ -> get_factor c) in
  let rs_history = get_f_array c in
  { rs_init_random;
    rs_iterations;
    rs_previous_fit;
    rs_best_fit;
    rs_drops;
    rs_converged;
    rs_failure;
    rs_weights;
    rs_factors;
    rs_history }

let decode_payload s =
  let c = cursor s in
  let fingerprint = get_string c in
  let domains = get_nat c "domains" in
  let attempt = get_nat c "attempt" in
  let n_completed = get_nat c "completed count" in
  let completed = List.init n_completed (fun _ -> get_run_state c) in
  let current = get_run_state c in
  expect_end c;
  { fingerprint; domains; attempt; completed; current }

(* ------------------------------------------------------------------ *)
(* File I/O. *)

let encode_file t =
  let file = frame ~magic ~version (encode_payload t) in
  (* CRC always taken over the clean bytes; the [Corrupt_checkpoint] fault
     then flips one bit of the last payload byte so the loader must catch
     the mismatch. *)
  if Robust.Inject.(active Corrupt_checkpoint) then begin
    let b = Bytes.of_string file in
    let i = Bytes.length b - 1 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    Bytes.to_string b
  end
  else file

let save ~path t =
  let bytes = encode_file t in
  if Robust.Inject.(active Torn_checkpoint_write) then
    (* Crash simulation: half the file lands at the *final* path, no rename.
       This is the failure mode the temp-file + rename protocol prevents. *)
    write_file path (String.sub bytes 0 (String.length bytes / 2))
  else write_atomic ~path bytes

let load ~path =
  match read ~path with
  | Error e -> Error e
  | Ok s -> (
    match unframe ~magic ~version s with
    | Error e -> Error e
    | Ok payload -> (
      match decode_payload payload with
      | t -> Ok t
      | exception Decode what -> Error (Corrupt what)))

(* ------------------------------------------------------------------ *)
(* Solver-facing configuration. *)

type config = { path : string; every : int; resume : bool }

let config ?(every = 1) ?(resume = true) path =
  if every < 1 then invalid_arg "Checkpoint.config: every must be >= 1";
  { path; every; resume }

let load_for_resume ~fingerprint cfg =
  if not cfg.resume then None
  else if not (Sys.file_exists cfg.path) then None
  else
    match load ~path:cfg.path with
    | Error e ->
      Robust.warnf "Checkpoint %s: %s — cold start" cfg.path (load_error_to_string e);
      None
    | Ok t when t.fingerprint <> fingerprint ->
      Robust.warnf
        "Checkpoint %s: fingerprint mismatch (snapshot %S, solve %S) — cold start"
        cfg.path t.fingerprint fingerprint;
      None
    | Ok t -> Some t
