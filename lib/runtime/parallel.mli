(** A lazily-created, reusable domain pool for data-parallel kernels.

    The pool is sized from [TCCA_DOMAINS] (environment) when set, otherwise
    [Domain.recommended_domain_count ()].  At size 1 every entry point runs
    sequentially in the calling domain — no domains are ever spawned — so a
    single-core container pays nothing for the abstraction.

    Determinism contract: [parallel_for] splits [0, n) into contiguous,
    non-overlapping chunks and hands each chunk to exactly one domain.  A
    kernel that (a) writes only to indices inside its chunk ("row ownership")
    and (b) accumulates into each output cell in the same order as its
    sequential loop therefore produces bitwise-identical results for every
    pool size.  All kernels in [Mat], [Tensor], [Distance], and [Cp_als]
    follow this discipline. *)

val num_domains : unit -> int
(** Size the pool has (or will have once lazily created). *)

val set_num_domains : int -> unit
(** Override the pool size (clamped to [1, 128]).  Shuts the current pool
    down; the next parallel call re-creates it lazily at the new size.
    Intended for tests and benchmarks; prefer [TCCA_DOMAINS] in production. *)

val size_from_env : string option -> int
(** Pool size implied by a raw [TCCA_DOMAINS] value: a positive integer is
    clamped to [1, 128]; [None], garbage, and non-positive values fall back
    to [Domain.recommended_domain_count ()].  Exposed for testing. *)

val default_cutoff : int
(** The built-in sequential cutoff (16384 work units). *)

val sequential_cutoff : unit -> int
(** Minimum estimated cost (arbitrary work units, see [parallel_for]'s [cost])
    below which parallel entry points run sequentially.  Default 16384;
    overridable via [TCCA_PAR_CUTOFF]. *)

val set_sequential_cutoff : int -> unit
(** Override the cutoff.  [set_sequential_cutoff 0] forces even tiny inputs
    through the pool — used by tests to exercise the parallel paths. *)

val parallel_for : ?cost:int -> n:int -> (int -> int -> unit) -> unit
(** [parallel_for ~cost ~n body] partitions [0, n) into contiguous chunks and
    calls [body lo hi] (meaning: process indices [lo .. hi-1]) once per chunk,
    concurrently when the pool has more than one domain.  Runs sequentially
    as [body 0 n] when the pool size is 1, when [cost] (default [n]) is below
    [sequential_cutoff ()], when [n < 2], or when called from inside another
    parallel region (nested calls degrade to sequential rather than
    deadlock).  Exceptions raised by any chunk are re-raised in the caller
    after all chunks finish. *)

val parallel_for_reduce :
  ?cost:int -> n:int -> init:'a -> combine:('a -> 'a -> 'a) -> (int -> int -> 'a) -> 'a
(** [parallel_for_reduce ~n ~init ~combine body] — like [parallel_for] but
    each chunk returns a partial value; partials are combined left-to-right
    in chunk order (lowest indices first), starting from [init], so a given
    [n] and chunk count reduce in a fixed order. *)

val shutdown : unit -> unit
(** Join all pool domains.  Idempotent; also registered [at_exit].  The pool
    is re-created lazily if a parallel call happens afterwards. *)
