(** Crash-safe, versioned binary snapshots of iterative solver state.

    A multi-hour rank-r TCCA/KTCCA fit is a CP-ALS loop whose entire
    resumable state is small: the per-mode factor matrices, the weight
    vector, a handful of loop scalars, and the restart bookkeeping.  This
    module gives that state a durable on-disk form so a fit killed at sweep
    900/1000 resumes from its last sweep boundary — bit-identical to an
    uninterrupted run — instead of starting over.

    {b Wire format} (little-endian; full field layout in DESIGN.md §8):
    a 20-byte header — magic ["TCCK"], format {!version} (u32), payload
    length (u64), CRC32 of the payload (u32) — followed by the payload as a
    flat field stream.  Every load verifies magic, version, declared length
    and CRC before decoding, so each distinct way a file can go bad maps to
    a typed {!load_error} rather than an exception or (worse) a silently
    wrong model.

    {b Durability}: {!save} builds the file in memory, writes it to
    [path ^ ".tmp"], and publishes it with an atomic [Sys.rename] — a crash
    at any instant leaves either the previous complete snapshot or the new
    one, never a torn file.  The {!Robust.Inject.Torn_checkpoint_write} and
    [Corrupt_checkpoint] faults bypass these protections so tests can prove
    the loader's cold-start degradation path end-to-end.

    This module sits below [linalg], so factor matrices appear here as plain
    row-major {!factor} arrays; the owning solver ([Cp_als]) converts to and
    from [Mat.t]. *)

val version : int
(** Current format version (bump on any layout change). *)

type factor = { rows : int; cols : int; data : float array }
(** One factor matrix, row-major: element [(i, j)] at [data.(i * cols + j)]. *)

type run_state = {
  rs_init_random : int option;
      (** [Some seed] for a [Random seed] initialization, [None] for HOSVD. *)
  rs_iterations : int;       (** Sweeps completed by this run. *)
  rs_previous_fit : float;   (** Fit after the last completed sweep. *)
  rs_best_fit : float;       (** Best fit seen (swamp-detection state). *)
  rs_drops : int;            (** Consecutive below-best sweeps (ditto). *)
  rs_converged : bool;
  rs_failure : Robust.failure option;
  rs_weights : float array;  (** λ after the last sweep. *)
  rs_factors : factor array; (** One per mode, at the last sweep boundary. *)
  rs_history : float array;  (** Per-sweep fit trajectory, oldest first. *)
}
(** A single ALS run — the in-progress one at its last sweep boundary, or a
    finished one kept so a resumed multi-start solve can still pick the best
    run exactly as the uninterrupted solve would. *)

type t = {
  fingerprint : string;
      (** Opaque solve identity (shape, rank, options) written by the solver;
          a mismatch on load means the snapshot belongs to a different
          problem and is refused (cold start). *)
  domains : int;   (** [Parallel.num_domains ()] at save time (metadata: the
                       kernels are bitwise pool-size-independent). *)
  attempt : int;   (** Restarts consumed; the restart seed stream is replayed
                       deterministically to this position on resume. *)
  completed : run_state list; (** Finished runs, oldest first. *)
  current : run_state;
}

type direction =
  | Newer  (** The file was written by a build newer than this one. *)
  | Older  (** The file predates the oldest version this build reads. *)

type load_error =
  | Truncated
      (** Shorter than the header or the declared payload — a torn write. *)
  | Corrupt of string
      (** Bad magic, CRC mismatch, or a malformed field (the string says
          which). *)
  | Version_mismatch of { found : int; expected : int; direction : direction }
      (** The header's format version is not one this build reads.
          [direction] distinguishes forward incompatibility ([Newer] — e.g.
          a hot-swap fed a snapshot from a newer daemon, refusable with a
          precise reply) from a stale file ([Older]). *)

val load_error_to_string : load_error -> string

val save : path:string -> t -> unit
(** Atomic write: temp file in the same directory + rename.  Raises
    [Sys_error] if the directory is unwritable — solvers catch and degrade
    (a failed snapshot must not kill the fit it protects). *)

val load : path:string -> (t, load_error) result
(** Never raises on bad content: every malformed input maps to a typed
    {!load_error}. *)

val crc32 : string -> int
(** The checksum used by the format (IEEE 802.3 / zlib polynomial); exposed
    for tests and for digesting models elsewhere.  Alias of
    {!Wire.crc32}. *)

(** {1 Wire-format toolkit}

    The header/CRC/field-stream machinery, factored out so other durable
    formats (the serving layer's model files, magic ["TCCM"]) share the
    exact framing, integrity checks and typed {!load_error}s of the
    snapshot format instead of reinventing them. *)
module Wire : sig
  val crc32 : string -> int

  val header_bytes : int
  (** Fixed frame header size: magic (4) + version (4) + length (8) +
      CRC32 (4) = 20 bytes. *)

  (** {2 Field-stream encoders}

      Everything is written as little-endian i64s (floats by bit pattern),
      strings and arrays length-prefixed. *)

  val add_i64 : Buffer.t -> int64 -> unit
  val add_int : Buffer.t -> int -> unit
  val add_f64 : Buffer.t -> float -> unit
  val add_bool : Buffer.t -> bool -> unit
  val add_string : Buffer.t -> string -> unit
  val add_f_array : Buffer.t -> float array -> unit
  val add_int_opt : Buffer.t -> int option -> unit

  (** {2 Field-stream decoders} *)

  exception Decode of string
  (** Raised by the [get_*] cursor readers on any overrun, bad tag, or
      malformed field; framed loaders catch it and surface [Corrupt]. *)

  type cursor

  val cursor : string -> cursor
  val get_i64 : cursor -> int64
  val get_int : cursor -> int
  val get_nat : cursor -> string -> int
  (** [get_nat c what] reads an int and raises {!Decode} if negative;
      [what] names the field in the error. *)

  val get_f64 : cursor -> float
  val get_bool : cursor -> bool
  val get_string : cursor -> string
  val get_f_array : cursor -> float array
  val get_int_opt : cursor -> int option

  val expect_end : cursor -> unit
  (** Raises {!Decode} unless the cursor consumed the whole payload. *)

  val at_end : cursor -> bool
  (** [true] iff the cursor has consumed the whole payload — how decoders
      of formats with optional trailing fields (the serving protocol's
      [model_id]) distinguish an old-format payload from a new one. *)

  (** {2 Framing and file I/O} *)

  val frame : magic:string -> version:int -> string -> string
  (** [frame ~magic ~version payload] builds the complete file bytes:
      20-byte header (magic must be exactly 4 bytes) + payload.  The CRC is
      always computed over the payload as given. *)

  val unframe : magic:string -> version:int -> string -> (string, load_error) result
  (** Header validation in order — length, magic, version (mismatches carry
      a {!direction}), declared payload length, CRC — returning the verified
      payload.  Never raises on bad content. *)

  val write_atomic : path:string -> string -> unit
  (** Temp file in the same directory + atomic [Sys.rename].  Raises
      [Sys_error] if the directory is unwritable. *)

  val write_durable : path:string -> string -> unit
  (** {!write_atomic} hardened against power loss: the temp file is
      fsynced before the rename and the containing directory after it, so
      a crash at any point leaves either the previous complete file or the
      new complete file durably on disk — never a zero-length or torn one
      behind a valid-looking name.  Directory fsync is best-effort; a
      failed data fsync raises [Sys_error].  Model files (the unit of
      serving recovery) use this; solver checkpoints keep the cheaper
      {!write_atomic} (a torn checkpoint only costs a cold-started fit). *)

  val read : path:string -> (string, load_error) result
  (** Whole-file read; an unreadable path maps to [Corrupt]. *)
end

(** {1 Solver-facing configuration} *)

type config = {
  path : string; (** Snapshot file (one file; each save replaces the last). *)
  every : int;   (** Save every [every] sweeps. *)
  resume : bool; (** Load [path] on start when present ([false] = overwrite). *)
}

val config : ?every:int -> ?resume:bool -> string -> config
(** [config path] with [every = 1] and [resume = true] defaults.  Raises
    [Invalid_argument] if [every < 1]. *)

val load_for_resume : fingerprint:string -> config -> t option
(** The solver's start-of-solve hook: [None] when resume is off, the file is
    absent, it fails to load (typed warning via {!Robust.warnf}, cold start),
    or its fingerprint does not match. *)
