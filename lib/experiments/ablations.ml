let solver_comparison ~world ~n ~eps ~rs ~seed =
  let rng = Rng.create (0xAB1 + seed) in
  let data = Synth.sample world rng ~n in
  let m_tensor = Tcca.whitened_tensor ~eps data.Multiview.views in
  let t = Tableau.create ~title:"Solver ablation (CP fit / seconds)"
      ~columns:[ "rank"; "ALS fit"; "ALS s"; "rand fit"; "rand s"; "HOPM fit"; "HOPM s";
                 "power fit"; "power s" ]
  in
  Array.iter
    (fun r ->
      let als_result = ref None in
      let als_s = Measure.time (fun () ->
          als_result := Some (Cp_als.decompose ~rank:r m_tensor))
      in
      let als_fit =
        match !als_result with
        | Some (k, _) -> Kruskal.fit k m_tensor
        | None -> nan
      in
      let rand_result = ref None in
      let rand_s = Measure.time (fun () ->
          rand_result := Some (Cp_rand.decompose ~rank:r m_tensor))
      in
      let rand_fit =
        match !rand_result with
        | Some (k, _) -> Kruskal.fit k m_tensor
        | None -> nan
      in
      (* "HOPM" row: repeated best-rank-1 of the original tensor without
         deflation is meaningless for r > 1, so we report its rank-1 quality
         replicated — the honest comparison at r = 1 — and deflation for the
         full rank-r story. *)
      let hopm_result = ref None in
      let hopm_s = Measure.time (fun () -> hopm_result := Some (Hopm.rank1 m_tensor)) in
      let hopm_fit =
        match !hopm_result with
        | Some res ->
          let k =
            { Kruskal.weights = [| res.Hopm.sigma |];
              factors =
                Array.map (fun v -> Mat.of_cols [| v |]) res.Hopm.vectors }
          in
          Kruskal.fit k m_tensor
        | None -> nan
      in
      let power_result = ref None in
      let power_s = Measure.time (fun () ->
          power_result := Some (fst (Tensor_power.decompose ~rank:r m_tensor)))
      in
      let power_fit =
        match !power_result with Some k -> Kruskal.fit k m_tensor | None -> nan
      in
      Tableau.add_row t (string_of_int r)
        [ als_fit; als_s; rand_fit; rand_s; hopm_fit; hopm_s; power_fit; power_s ])
    rs;
  Tableau.render t

let confounder_sweep ~base ~strengths ~r ~seeds =
  let t = Tableau.create ~title:"Pairwise-confounder ablation (test accuracy %)"
      ~columns:[ "confounder strength"; "TCCA"; "CCA-LS"; "TCCA - CCA-LS" ]
  in
  Array.iter
    (fun strength ->
      let config = { base with Synth.confounder_strength = strength } in
      let world = Synth.make_world ~seed:77 config in
      let protocol = Linear_protocol.default_config world in
      let mean_acc meth =
        let accs =
          Array.init seeds (fun seed ->
              (Linear_protocol.run protocol meth ~r ~seed).Linear_protocol.test_acc)
        in
        Stats.mean accs *. 100.
      in
      let tcca = mean_acc Spec.Tcca and ccals = mean_acc Spec.Cca_ls in
      Tableau.add_row t (Printf.sprintf "%.2f" strength) [ tcca; ccals; tcca -. ccals ])
    strengths;
  Tableau.render t

let eps_sweep ~world ~epsilons ~r ~seeds =
  let t = Tableau.create ~title:"Regularization (eps) ablation — TCCA test accuracy %"
      ~columns:[ "eps"; "accuracy" ]
  in
  Array.iter
    (fun eps ->
      let protocol = { (Linear_protocol.default_config world) with Linear_protocol.eps } in
      let accs =
        Array.init seeds (fun seed ->
            (Linear_protocol.run protocol Spec.Tcca ~r ~seed).Linear_protocol.test_acc)
      in
      Tableau.add_row t (Printf.sprintf "%g" eps) [ Stats.mean accs *. 100. ])
    epsilons;
  Tableau.render t
