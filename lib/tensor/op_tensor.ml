type t =
  | Dense of Tensor.t
  | Factored of { weight : float; factors : Mat.t array }

let dense x = Dense x

let factored ~weight factors =
  let m = Array.length factors in
  if m = 0 then invalid_arg "Op_tensor.factored: no modes";
  let n = snd (Mat.dims factors.(0)) in
  if n < 1 then invalid_arg "Op_tensor.factored: no components";
  Array.iter
    (fun z ->
      if snd (Mat.dims z) <> n then
        invalid_arg "Op_tensor.factored: component count mismatch")
    factors;
  Factored { weight; factors }

let order = function
  | Dense x -> Tensor.order x
  | Factored { factors; _ } -> Array.length factors

let dims = function
  | Dense x -> Array.copy x.Tensor.dims
  | Factored { factors; _ } -> Array.map (fun z -> fst (Mat.dims z)) factors

let dim op k =
  match op with
  | Dense x -> Tensor.dim x k
  | Factored { factors; _ } -> fst (Mat.dims factors.(k))

let size op = Array.fold_left ( * ) 1 (dims op)

let n_components = function
  | Dense _ -> None
  | Factored { factors; _ } -> Some (snd (Mat.dims factors.(0)))

let all_finite = function
  | Dense x -> Tensor.all_finite x
  | Factored { weight; factors } ->
    Float.is_finite weight && Array.for_all Mat.all_finite factors

(* ------------------------------------------------------------------ *)
(* Dense MTTKRP: X₍ₖ₎ · (⊙_{q≠k} U_q) without materializing either
   operand — one pass over the tensor entries, carrying the running
   row-product of the non-k factor rows.  O(size · r) multiplies,
   O(m · r) scratch per domain.

   The mode-k index range [lo, hi) slices the output: a slice touches only
   rows [lo .. hi-1] of V, so partitioning mode k across the domain pool
   gives each chunk exclusive ownership of its V rows, and within a row the
   traversal (hence accumulation) order is identical to the sequential walk —
   results are bitwise-deterministic for any pool size. *)
let dense_mttkrp_slice (x : Tensor.t) us k vd ~lo ~hi =
  let m = Tensor.order x in
  let dims = x.Tensor.dims and strides = x.Tensor.strides and data = x.Tensor.data in
  let r = snd (Mat.dims us.(0)) in
  let scratch = Array.init (m + 1) (fun _ -> Array.make r 1.) in
  let rec go level base ik coeff =
    if level = m - 1 then begin
      if level = k then
        for i = lo to hi - 1 do
          let xv = Array.unsafe_get data (base + i) in
          if xv <> 0. then begin
            let vrow = i * r in
            for c = 0 to r - 1 do
              Array.unsafe_set vd (vrow + c)
                (Array.unsafe_get vd (vrow + c) +. (xv *. Array.unsafe_get coeff c))
            done
          end
        done
      else begin
        let ud = (us.(level) : Mat.t).Mat.data in
        let vrow = ik * r in
        for i = 0 to dims.(level) - 1 do
          let xv = Array.unsafe_get data (base + i) in
          if xv <> 0. then begin
            let urow = i * r in
            for c = 0 to r - 1 do
              Array.unsafe_set vd (vrow + c)
                (Array.unsafe_get vd (vrow + c)
                +. (xv *. Array.unsafe_get coeff c *. Array.unsafe_get ud (urow + c)))
            done
          end
        done
      end
    end
    else begin
      let stride = strides.(level) in
      if level = k then
        for i = lo to hi - 1 do
          go (level + 1) (base + (i * stride)) i coeff
        done
      else begin
        let next = scratch.(level) in
        let ud = (us.(level) : Mat.t).Mat.data in
        for i = 0 to dims.(level) - 1 do
          let urow = i * r in
          for c = 0 to r - 1 do
            Array.unsafe_set next c
              (Array.unsafe_get coeff c *. Array.unsafe_get ud (urow + c))
          done;
          go (level + 1) (base + (i * stride)) ik next
        done
      end
    end
  in
  go 0 0 0 scratch.(m)

let dense_mttkrp (x : Tensor.t) us k =
  let dims = x.Tensor.dims in
  let r = snd (Mat.dims us.(0)) in
  let v = Mat.create dims.(k) r in
  let vd = (v : Mat.t).Mat.data in
  Parallel.parallel_for ~cost:(Tensor.size x * r) ~n:dims.(k) (fun lo hi ->
      dense_mttkrp_slice x us k vd ~lo ~hi);
  v

(* Hadamard product over the factored blocks: ⊛_{q≠skip} (f q zq), an n×n or
   n×r matrix.  The GEMMs inside f run on the Parallel pool; the Hadamard
   itself is cheap. *)
let hadamard_excluding factors ~skip ~rows ~cols f =
  let acc = ref (Mat.make rows cols 1.) in
  Array.iteri (fun q z -> if q <> skip then acc := Mat.map2 ( *. ) !acc (f q z)) factors;
  !acc

let mttkrp op us k =
  let m = order op in
  if Array.length us <> m then invalid_arg "Op_tensor.mttkrp: arity mismatch";
  if k < 0 || k >= m then invalid_arg "Op_tensor.mttkrp: bad mode";
  match op with
  | Dense x -> dense_mttkrp x us k
  | Factored { weight; factors } ->
    (* Vₖ = w · Zₖ · ⊛_{q≠k}(ZqᵀUq) — never touches ∏dₚ entries. *)
    let n = snd (Mat.dims factors.(0)) in
    let r = snd (Mat.dims us.(0)) in
    let h =
      hadamard_excluding factors ~skip:k ~rows:n ~cols:r (fun q z -> Mat.mul_tn z us.(q))
    in
    Mat.scale weight (Mat.mul factors.(k) h)

let norm2 = function
  | Dense x -> Tensor.inner x x
  | Factored { weight; factors } ->
    (* ⟨M, M⟩ = w² Σᵢⱼ ∏ₚ ⟨zₚᵢ, zₚⱼ⟩ = w² · 1ᵀ(⊛ₚ ZₚᵀZₚ)1. *)
    let n = snd (Mat.dims factors.(0)) in
    let g = hadamard_excluding factors ~skip:(-1) ~rows:n ~cols:n (fun _ z -> Mat.tgram z) in
    let total = ref 0. in
    Array.iter (fun v -> total := !total +. v) g.Mat.data;
    weight *. weight *. !total

let inner_kruskal op lambda us =
  let m = order op in
  if Array.length us <> m then invalid_arg "Op_tensor.inner_kruskal: arity mismatch";
  let r = Array.length lambda in
  Array.iter
    (fun u ->
      if snd (Mat.dims u) <> r then invalid_arg "Op_tensor.inner_kruskal: rank mismatch")
    us;
  match op with
  | Dense x ->
    (* ⟨X, ⟦λ; U⟧⟩ = Σ_c λ_c ⟨v_c, u_c⟩ with V the final-mode MTTKRP. *)
    let v = dense_mttkrp x us (m - 1) in
    let acc = ref 0. in
    for c = 0 to r - 1 do
      acc := !acc +. (lambda.(c) *. Vec.dot (Mat.col v c) (Mat.col us.(m - 1) c))
    done;
    !acc
  | Factored { weight; factors } ->
    (* w Σᵢ Σ_c λ_c ∏ₚ ⟨zₚᵢ, uₚ_c⟩ = w · 1ᵀ(⊛ₚ ZₚᵀUₚ)λ. *)
    let n = snd (Mat.dims factors.(0)) in
    let h =
      hadamard_excluding factors ~skip:(-1) ~rows:n ~cols:r (fun p z ->
          Mat.mul_tn z us.(p))
    in
    let total = ref 0. in
    for c = 0 to r - 1 do
      let col_sum = ref 0. in
      for i = 0 to n - 1 do
        col_sum := !col_sum +. Mat.get h i c
      done;
      total := !total +. (lambda.(c) *. !col_sum)
    done;
    weight *. !total

let mode_gram op k =
  let m = order op in
  if k < 0 || k >= m then invalid_arg "Op_tensor.mode_gram: bad mode";
  match op with
  | Dense x -> Mat.gram (Unfold.unfold x k)
  | Factored { weight; factors } ->
    (* M₍ₖ₎ = w·Zₖ(⊙_{q≠k}Zq)ᵀ, so M₍ₖ₎M₍ₖ₎ᵀ = w²·Zₖ(⊛_{q≠k}ZqᵀZq)Zₖᵀ. *)
    let n = snd (Mat.dims factors.(0)) in
    let w = hadamard_excluding factors ~skip:k ~rows:n ~cols:n (fun _ z -> Mat.tgram z) in
    Mat.scale (weight *. weight) (Mat.mul_nt (Mat.mul factors.(k) w) factors.(k))

let to_tensor = function
  | Dense x -> x
  | Factored { weight; factors } ->
    (* Same slab pattern as Tcca.covariance_tensor: mode 0 is sliced into
       chunks, each chunk owns its slab exclusively and replays all n
       components in order, so every cell accumulates its n rank-1
       contributions in the exact sequential order — bitwise identical to
       the sequential loop at any pool size.  This is the Nyström hot path
       (O(n·∏dₚ) scalar FMAs for the dense ℓ-space tensor), so it must
       actually ride the pool. *)
    let n = snd (Mat.dims factors.(0)) in
    let dims = Array.map (fun z -> fst (Mat.dims z)) factors in
    let out = Tensor.create dims in
    let cols = Array.init n (fun i -> Array.map (fun z -> Mat.col z i) factors) in
    Parallel.parallel_for ~cost:(n * Tensor.size out) ~n:dims.(0) (fun lo hi ->
        for i = 0 to n - 1 do
          Tensor.add_outer_slab_in_place out weight cols.(i) ~lo ~hi
        done);
    out
