(** First-class tensor operators: a dense tensor, or the same tensor kept in
    factored (Kruskal) form and never materialized.

    The whitened covariance tensor of TCCA (paper Eq. 4.9) is by construction
    rank-N: [M = (1/N) Σᵢ z₁ᵢ ∘ … ∘ zₘᵢ] with [zₚᵢ = C̃ₚₚ^{−1/2} x̄ₚᵢ], so every
    quantity CP-ALS needs — MTTKRP, the Frobenius norm, inner products against
    Kruskal models, mode-unfolding Grams — collapses to small matrix products
    of the [dₚ × N] factor blocks.  [Factored] exposes exactly that: cost per
    ALS sweep drops from O(∏ₚ dₚ · r) to O(N · Σₚ dₚ · r) and memory from
    ∏ₚ dₚ to N · Σₚ dₚ, which is what makes many-view workloads (5 views at
    dₚ = 40 is a ~10⁸-entry dense tensor) representable at all.

    All factored implementations are built from [Mat.mul] / [Mat.mul_tn] /
    [Mat.tgram] and Hadamard products, so they run on the shared [Parallel]
    domain pool and inherit its deterministic row-partitioning contract:
    results are bitwise identical for every pool size. *)

type t =
  | Dense of Tensor.t
  | Factored of { weight : float; factors : Mat.t array }
      (** [weight · Σᵢ ∘ₚ factors.(p).col(i)] — each factor is [dₚ × n] and
          all share the component count [n]. *)

(** {1 Construction} *)

val dense : Tensor.t -> t

val factored : weight:float -> Mat.t array -> t
(** Validates: at least one mode, all factors share a column count ≥ 1.
    Raises [Invalid_argument] otherwise.  The matrices are kept by reference
    (not copied); callers must not mutate them afterwards. *)

(** {1 Shape} *)

val order : t -> int
val dims : t -> int array
val dim : t -> int -> int

val size : t -> int
(** Logical entry count ∏ₚ dₚ — what {!to_tensor} would allocate, [not] what
    the operator holds in memory. *)

val n_components : t -> int option
(** [Some n] for [Factored] (the shared column count), [None] for [Dense]. *)

val all_finite : t -> bool
(** No NaN/Inf anywhere in the representation: every entry for [Dense], the
    weight and every factor entry for [Factored].  Costs what the operator
    actually holds in memory, never the logical ∏ₚ dₚ. *)

(** {1 The CP-ALS contraction kernels} *)

val mttkrp : t -> Mat.t array -> int -> Mat.t
(** [mttkrp op us k = X₍ₖ₎ · (⊙_{q≠k} U_q)] — the matricized-tensor times
    Khatri–Rao product, the hot kernel of an ALS sweep.  Dense: one parallel
    pass over the entries, O(size · r).  Factored:
    [weight · Zₖ · ⊛_{q≠k}(ZqᵀUq)], O(n · Σₚ dₚ · r). *)

val norm2 : t -> float
(** [⟨X, X⟩ = ‖X‖²_F].  Factored: [w² · 1ᵀ(⊛ₚ ZₚᵀZₚ)1], O(n² · Σₚ dₚ). *)

val inner_kruskal : t -> Vec.t -> Mat.t array -> float
(** [inner_kruskal op λ us = ⟨X, ⟦λ; U₁…Uₘ⟧⟩] — the cross term of the fit
    computation.  Factored: [w · 1ᵀ(⊛ₚ ZₚᵀUₚ)λ], O(n · r · Σₚ dₚ). *)

val mode_gram : t -> int -> Mat.t
(** [mode_gram op k = X₍ₖ₎ X₍ₖ₎ᵀ] ([dₖ × dₖ]) — what HOSVD initialization
    eigendecomposes.  Dense: Gram of the explicit unfolding.  Factored:
    [w² · Zₖ (⊛_{q≠k} ZqᵀZq) Zₖᵀ] without forming the unfolding. *)

(** {1 Conversion} *)

val to_tensor : t -> Tensor.t
(** Materialize.  [Dense] returns the wrapped tensor (shared, not copied);
    [Factored] allocates the full ∏ₚ dₚ array — callers should check {!size}
    first (the dense-only CP solvers go through this escape hatch). *)
