(** Rank-r CP decomposition by alternating least squares — the solver TCCA
    uses for the best rank-1 (and recursively rank-r) approximation of the
    whitened covariance tensor (paper Sec. 4.3; Kroonenberg & De Leeuw 1980,
    Comon et al. 2009).

    Each sweep solves, for every mode k, the linear least-squares problem
    [min ‖X₍ₖ₎ − Uₖ diag(λ) Zₖᵀ‖] with [Zₖ] the Khatri–Rao product of the
    other factors, via the normal equations
    [Uₖ ← X₍ₖ₎ Zₖ (⊛_{q≠k} UqᵀUq)⁺]. *)

type init =
  | Random of int          (** Gaussian factors from the given seed. *)
  | Hosvd                  (** Leading eigenvectors of each unfolding's Gram
                               matrix (deterministic; random-padded when
                               [rank > dim]). *)

type options = {
  max_iter : int;          (** Default 100. *)
  tol : float;             (** Stop when the fit improves by less than this
                               between sweeps.  Default 1e-6. *)
  init : init;             (** Default [Hosvd]. *)
}

val default_options : options

type info = {
  iterations : int;
  fit : float;             (** Final relative fit in [−∞, 1]. *)
  converged : bool;
  fit_history : float list; (** Fit after each sweep, oldest first. *)
}

val decompose : ?options:options -> rank:int -> Tensor.t -> Kruskal.t * info
(** Raises [Invalid_argument] if [rank < 1].  Equivalent to [decompose_op]
    on [Op_tensor.Dense]. *)

val decompose_op : ?options:options -> rank:int -> Op_tensor.t -> Kruskal.t * info
(** The generic solver: every sweep touches the tensor only through
    [Op_tensor.mttkrp] / [norm2] / [mode_gram], so a [Factored] operator is
    decomposed in O(n · Σₚ dₚ · r) per sweep without the ∏ₚ dₚ entries ever
    existing.  On [Dense] this is bit-for-bit the historical dense solver. *)

val mttkrp : Tensor.t -> Mat.t array -> int -> Mat.t
(** [mttkrp x us k = X₍ₖ₎ · (⊙_{q≠k} U_q)] — the matricized-tensor times
    Khatri–Rao product, the hot kernel of a sweep (exposed for benches).
    Delegates to [Op_tensor.mttkrp] on the dense operator. *)
