(** Rank-r CP decomposition by alternating least squares — the solver TCCA
    uses for the best rank-1 (and recursively rank-r) approximation of the
    whitened covariance tensor (paper Sec. 4.3; Kroonenberg & De Leeuw 1980,
    Comon et al. 2009).

    Each sweep solves, for every mode k, the linear least-squares problem
    [min ‖X₍ₖ₎ − Uₖ diag(λ) Zₖᵀ‖] with [Zₖ] the Khatri–Rao product of the
    other factors, via the normal equations
    [Uₖ ← X₍ₖ₎ Zₖ (⊛_{q≠k} UqᵀUq)⁺].

    {2 Robustness}

    A run is {e guarded}: a non-finite fit stops the sweep loop immediately
    (instead of burning [max_iter] sweeps on [NaN ≠ NaN]) and records a
    [Robust.Non_finite] diagnostic; a {e swamp} — the fit repeatedly falling
    well below its running best, the classic ALS oscillation — stops after
    [stall_sweeps] such drops with [Robust.Not_converged].  A failed run
    triggers up to [restarts] deterministic multi-start retries from
    [Random] initializations seeded by a [Mvutil.Rng] stream over
    [restart_seed]; the best run (clean ≻ converged ≻ highest fit) is
    returned, with every run's summary kept in [info.runs].  A clean run
    that merely exhausts [max_iter] never restarts — identical behaviour to
    the historical solver.

    {2 Budgets and checkpoints}

    An optional [?budget] is probed once per sweep (and once before each
    restart): on expiry the solver stops at that sweep boundary and returns
    its best-so-far model with [converged = false] and the
    [Robust.Deadline_exceeded] diagnostic in [info.deadline] — [info.failure]
    still describes only genuine numerical failures, so a deadline on an
    otherwise healthy run is {e not} an error.  An optional [?checkpoint]
    snapshots the full solve state (current run's loop variables, finished
    runs, restart position) through {!Checkpoint} every
    [every] sweeps plus at each run boundary; with [resume = true] a
    matching snapshot restores that state and the remaining sweeps replay
    the exact arithmetic — the resumed solve is bit-identical to an
    uninterrupted one at any [TCCA_DOMAINS] setting.  Unreadable, corrupt or
    mismatched snapshots degrade to a cold start with a typed warning;
    failed saves warn and continue unprotected.  Neither option changes any
    numerical path. *)

type init =
  | Random of int          (** Gaussian factors from the given seed. *)
  | Hosvd                  (** Leading eigenvectors of each unfolding's Gram
                               matrix (deterministic; random-padded when
                               [rank > dim]). *)
  | Warm of Mat.t array
      (** Start from the given per-mode factors — the incremental-refit
          path: the serving daemon hands in the live model's factors so a
          refit on slightly-changed statistics converges in a few sweeps.
          Columns are truncated (or seeded-Gaussian padded) to [rank]; a
          factor array whose order, row dims, or finiteness do not match
          the operator degrades to [Hosvd] with a {!Robust.warnf} warning
          rather than failing — a stale warm start must never take the
          daemon down.  Warm solves are not resumable: a [?checkpoint] is
          ignored with a warning (there is no recipe a snapshot could
          replay to recreate the starting factors). *)

type options = {
  max_iter : int;          (** Default 100. *)
  tol : float;             (** Stop when the fit improves by less than this
                               between sweeps.  Default 1e-6. *)
  init : init;             (** Default [Hosvd]. *)
  restarts : int;          (** Max multi-start retries after a {e failed}
                               (non-finite or swamped) run.  Default 2;
                               0 disables restarts. *)
  restart_seed : int;      (** Seed of the deterministic restart-seed stream.
                               Default [0x524F4253]. *)
  stall_sweeps : int;      (** Swamp threshold: sweeps with
                               [fit < best − 10·tol] (counter reset on a new
                               best) before declaring a swamp.  Default 15. *)
}

val default_options : options

type run = {
  run_init : init;
  run_iterations : int;
  run_fit : float;
  run_converged : bool;
  run_failure : Robust.failure option;
}
(** Per-restart summary, oldest first in [info.runs]. *)

type info = {
  iterations : int;
  fit : float;             (** Final relative fit in [−∞, 1] (NaN if the
                               selected run died on a non-finite fit). *)
  converged : bool;
  fit_history : float list; (** Fit after each sweep of the selected run,
                                oldest first. *)
  failure : Robust.failure option;
      (** [None] iff the selected run ended cleanly (converged or hit
          [max_iter] with finite factors). *)
  deadline : Robust.failure option;
      (** [Some (Deadline_exceeded _)] when a budget stopped the solve; the
          returned model is the best-so-far state, not an error. *)
  runs : run list;         (** All runs attempted, in order; a singleton when
                               the first run was clean. *)
}

val decompose :
  ?options:options ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.config ->
  rank:int ->
  Tensor.t ->
  Kruskal.t * info
(** Raises [Invalid_argument] if [rank < 1].  Equivalent to [decompose_op]
    on [Op_tensor.Dense]. *)

val decompose_op :
  ?options:options ->
  ?budget:Budget.t ->
  ?checkpoint:Checkpoint.config ->
  rank:int ->
  Op_tensor.t ->
  Kruskal.t * info
(** The generic solver: every sweep touches the tensor only through
    [Op_tensor.mttkrp] / [norm2] / [mode_gram], so a [Factored] operator is
    decomposed in O(n · Σₚ dₚ · r) per sweep without the ∏ₚ dₚ entries ever
    existing.  On [Dense] this is bit-for-bit the historical dense solver. *)

val mttkrp : Tensor.t -> Mat.t array -> int -> Mat.t
(** [mttkrp x us k = X₍ₖ₎ · (⊙_{q≠k} U_q)] — the matricized-tensor times
    Khatri–Rao product, the hot kernel of a sweep (exposed for benches).
    Delegates to [Op_tensor.mttkrp] on the dense operator. *)
