(** Greedy deflation "tensor power method" for a rank-r approximation
    (Allen 2012) — the other alternative solver the paper cites, used in the
    solver-ablation bench.

    Repeatedly extracts the best rank-1 term with {!Hopm} and subtracts it.
    Unlike joint ALS, the components greedily explain variance one at a time —
    the behaviour the paper contrasts with ALS in Sec. 5.1.1 (remark 5). *)

val decompose :
  ?max_iter:int ->
  ?tol:float ->
  ?budget:Budget.t ->
  rank:int ->
  Tensor.t ->
  Kruskal.t * Robust.failure option
(** Defaults follow {!Hopm.rank1}.  One [budget] spans the whole deflation —
    sweeps accumulate across components.  On expiry the second component of
    the result is [Some (Deadline_exceeded _)] and the model keeps exactly
    the components fully extracted so far (later weights stay 0, later factor
    columns stay zero vectors — the model is always finite). *)
