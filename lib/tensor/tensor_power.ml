let decompose ?max_iter ?tol ?(budget = Budget.unlimited) ~rank x =
  if rank < 1 then invalid_arg "Tensor_power.decompose: rank must be >= 1";
  let m = Tensor.order x in
  let residual = ref (Tensor.copy x) in
  let weights = Array.make rank 0. in
  let dims = Array.init m (Tensor.dim x) in
  let factors = Array.map (fun d -> Mat.make d rank 0.) dims in
  let deadline = ref None in
  let sweeps = ref 0 in
  let c = ref 0 in
  while !c < rank && !deadline = None do
    let res =
      Hopm.rank1 ?max_iter ?tol ~seed:(!c + 1) ~budget ~sweeps_before:!sweeps !residual
    in
    sweeps := !sweeps + res.Hopm.iterations;
    (match res.Hopm.deadline with
    | Some f ->
      (* Keep only fully-extracted components: a budget-truncated power
         iteration has not converged to an eigenpair, and deflating with it
         would poison the residual for nothing.  Later components stay at
         their zero initialization, so the returned model is finite. *)
      deadline := Some f
    | None ->
      weights.(!c) <- res.Hopm.sigma;
      Array.iteri (fun k u -> Mat.set_col factors.(k) !c u) res.Hopm.vectors;
      Tensor.add_outer_in_place !residual (-.res.Hopm.sigma) res.Hopm.vectors;
      incr c)
  done;
  ({ Kruskal.weights; factors }, !deadline)
