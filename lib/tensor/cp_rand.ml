type options = {
  max_iter : int;
  tol : float;
  samples_per_mode : int option;
  fit_samples : int;
  seed : int;
}

let default_options =
  { max_iter = 60; tol = 1e-5; samples_per_mode = None; fit_samples = 4096; seed = 0xCA9D }

type info = {
  iterations : int;
  sampled_fit : float;
  converged : bool;
  deadline : Robust.failure option;
}

(* Entry of the current CP model at a multi-index. *)
let model_entry factors lambda idx =
  let r = Array.length lambda in
  let acc = ref 0. in
  for c = 0 to r - 1 do
    let prod = ref lambda.(c) in
    Array.iteri (fun p i -> prod := !prod *. Mat.get factors.(p) i c) idx;
    acc := !acc +. !prod
  done;
  !acc

(* Relative fit estimated on sampled entries: 1 − √(Σ(x−x̂)²/Σx²). *)
let sampled_fit rng options x factors lambda =
  let m = Tensor.order x in
  let idx = Array.make m 0 in
  let err2 = ref 0. and norm2 = ref 0. in
  for _ = 1 to options.fit_samples do
    for p = 0 to m - 1 do
      idx.(p) <- Rng.int rng (Tensor.dim x p)
    done;
    let v = Tensor.get x idx in
    let d = v -. model_entry factors lambda idx in
    err2 := !err2 +. (d *. d);
    norm2 := !norm2 +. (v *. v)
  done;
  if !norm2 = 0. then 1. else 1. -. sqrt (!err2 /. !norm2)

let decompose ?(options = default_options) ?(budget = Budget.unlimited) ~rank x =
  if rank < 1 then invalid_arg "Cp_rand.decompose: rank must be >= 1";
  let m = Tensor.order x in
  let dims = Array.init m (Tensor.dim x) in
  let rng = Rng.create options.seed in
  let samples =
    match options.samples_per_mode with
    | Some s -> max s rank
    | None ->
      max 64 (10 * rank * int_of_float (Float.ceil (log (float_of_int (rank + 1)))))
  in
  (* HOSVD-style init, as in Cp_als. *)
  let factors =
    Array.init m (fun k ->
        let unfolding = Unfold.unfold x k in
        let eig = Eigen.decompose (Mat.gram unfolding) in
        let keep = min rank dims.(k) in
        let lead = Eigen.top_k eig keep in
        if keep = rank then lead
        else Mat.hcat lead (Mat.init dims.(k) (rank - keep) (fun _ _ -> Rng.gaussian rng)))
  in
  let lambda = Array.make rank 1. in
  let idx = Array.make m 0 in
  let iterations = ref 0 in
  let converged = ref false in
  let previous_fit = ref neg_infinity in
  let fit = ref 0. in
  let deadline = ref None in
  while (not !converged) && !deadline = None && !iterations < options.max_iter do
    match Budget.expired ~stage:"cp_rand" ~sweeps:!iterations budget with
    | Some f -> deadline := Some f
    | None ->
    incr iterations;
    for k = 0 to m - 1 do
      (* Sampled least squares for mode k: rows are random index tuples of
         the other modes. *)
      let zs = Mat.create samples rank in
      let ys = Mat.create samples dims.(k) in
      for s = 0 to samples - 1 do
        for p = 0 to m - 1 do
          idx.(p) <- (if p = k then 0 else Rng.int rng dims.(p))
        done;
        (* Row of the Khatri–Rao product of the *unit-norm* factors at this
           tuple: the solved Uₖ then absorbs λ, which the renormalization
           below extracts — mirroring Cp_als. *)
        for c = 0 to rank - 1 do
          let prod = ref 1. in
          for p = 0 to m - 1 do
            if p <> k then prod := !prod *. Mat.get factors.(p) idx.(p) c
          done;
          Mat.set zs s c !prod
        done;
        for i = 0 to dims.(k) - 1 do
          idx.(k) <- i;
          Mat.set ys s i (Tensor.get x idx)
        done;
        idx.(k) <- 0
      done;
      (* Normal equations (ZᵀZ + δI) Uᵀ = Zᵀ Y. *)
      let ztz = Mat.add_scaled_identity 1e-10 (Mat.tgram zs) in
      let zty = Mat.mul_tn zs ys in
      let ut = Cholesky.solve_system ztz zty in
      let u = Mat.transpose ut in
      (* Re-normalize columns, folding norms into λ. *)
      for c = 0 to rank - 1 do
        let col = Mat.col u c in
        let n = Vec.norm col in
        if n > 1e-300 then begin
          Mat.set_col u c (Vec.scale (1. /. n) col);
          lambda.(c) <- n
        end
        else lambda.(c) <- 0.
      done;
      factors.(k) <- u
    done;
    fit := sampled_fit rng options x factors lambda;
    if Float.abs (!fit -. !previous_fit) < options.tol then converged := true;
    previous_fit := !fit
  done;
  let kruskal = Kruskal.normalize { Kruskal.weights = Array.copy lambda; factors } in
  ( kruskal,
    { iterations = !iterations;
      sampled_fit = !fit;
      converged = !converged;
      deadline = !deadline } )
