type options = {
  max_iter : int;
  tol : float;
  samples_per_mode : int option;
  fit_samples : int;
  min_fit : float option;
  seed : int;
}

let default_options =
  { max_iter = 60;
    tol = 1e-5;
    samples_per_mode = None;
    fit_samples = 4096;
    min_fit = None;
    seed = 0xCA9D }

type info = {
  iterations : int;
  sampled_fit : float;
  converged : bool;
  failure : Robust.failure option;
  deadline : Robust.failure option;
}

(* Entry of the current CP model at a multi-index. *)
let model_entry factors lambda idx =
  let r = Array.length lambda in
  let acc = ref 0. in
  for c = 0 to r - 1 do
    let prod = ref lambda.(c) in
    Array.iteri (fun p i -> prod := !prod *. Mat.get factors.(p) i c) idx;
    acc := !acc +. !prod
  done;
  !acc

(* Entry of the operator at a multi-index.  Dense: direct lookup.  Factored
   (w · Σⱼ ∘ₚ zₚⱼ): w · Σⱼ ∏ₚ Zₚ[idxₚ, j] — O(n·m) per entry, the price of
   sampling an implicit tensor. *)
let op_entry op idx =
  match op with
  | Op_tensor.Dense x -> Tensor.get x idx
  | Op_tensor.Factored { weight; factors } ->
    let n = snd (Mat.dims factors.(0)) in
    let acc = ref 0. in
    for j = 0 to n - 1 do
      let prod = ref 1. in
      Array.iteri (fun p i -> prod := !prod *. Mat.get factors.(p) i j) idx;
      acc := !acc +. !prod
    done;
    weight *. !acc

(* Mode-k fiber of the operator at [idx] (idx.(k) is ignored), written into
   [out].  Factored: out = w · Zₖ · c with cⱼ = ∏_{q≠k} Z_q[idx_q, j]. *)
let op_fiber op k idx out =
  match op with
  | Op_tensor.Dense x ->
    let dk = Tensor.dim x k in
    let saved = idx.(k) in
    for i = 0 to dk - 1 do
      idx.(k) <- i;
      out.(i) <- Tensor.get x idx
    done;
    idx.(k) <- saved
  | Op_tensor.Factored { weight; factors } ->
    let n = snd (Mat.dims factors.(0)) in
    let c = Array.make n 1. in
    Array.iteri
      (fun q z ->
        if q <> k then
          for j = 0 to n - 1 do
            c.(j) <- c.(j) *. Mat.get z idx.(q) j
          done)
      factors;
    let v = Mat.mul_vec factors.(k) c in
    for i = 0 to Array.length out - 1 do
      out.(i) <- weight *. v.(i)
    done

(* Relative fit estimated on sampled entries: 1 − √(Σ(x−x̂)²/Σx²). *)
let sampled_fit rng options op factors lambda =
  let m = Op_tensor.order op in
  let idx = Array.make m 0 in
  let err2 = ref 0. and norm2 = ref 0. in
  for _ = 1 to options.fit_samples do
    for p = 0 to m - 1 do
      idx.(p) <- Rng.int rng (Op_tensor.dim op p)
    done;
    let v = op_entry op idx in
    let d = v -. model_entry factors lambda idx in
    err2 := !err2 +. (d *. d);
    norm2 := !norm2 +. (v *. v)
  done;
  if !norm2 = 0. then 1. else 1. -. sqrt (!err2 /. !norm2)

let decompose_op ?(options = default_options) ?(budget = Budget.unlimited) ~rank op =
  if rank < 1 then invalid_arg "Cp_rand.decompose: rank must be >= 1";
  let m = Op_tensor.order op in
  let dims = Op_tensor.dims op in
  let rng = Rng.create options.seed in
  let samples =
    match options.samples_per_mode with
    | Some s -> max s rank
    | None ->
      max 64 (10 * rank * int_of_float (Float.ceil (log (float_of_int (rank + 1)))))
  in
  (* HOSVD-style init on the dense path, as in Cp_als.  The factored path
     initializes from the seeded Gaussian stream instead: its mode Grams
     would cost an n×n Hadamard (n = component count, e.g. N for the Nyström
     operator), defeating the point of sampling. *)
  let factors =
    match op with
    | Op_tensor.Dense x ->
      Array.init m (fun k ->
          let unfolding = Unfold.unfold x k in
          let eig = Eigen.decompose (Mat.gram unfolding) in
          let keep = min rank dims.(k) in
          let lead = Eigen.top_k eig keep in
          if keep = rank then lead
          else Mat.hcat lead (Mat.init dims.(k) (rank - keep) (fun _ _ -> Rng.gaussian rng)))
    | Op_tensor.Factored _ ->
      Array.init m (fun k -> Mat.init dims.(k) rank (fun _ _ -> Rng.gaussian rng))
  in
  let lambda = Array.make rank 1. in
  let idx = Array.make m 0 in
  let iterations = ref 0 in
  let converged = ref false in
  let previous_fit = ref neg_infinity in
  let fit = ref 0. in
  let deadline = ref None in
  let fiber = Array.make (Array.fold_left max 1 dims) 0. in
  while (not !converged) && !deadline = None && !iterations < options.max_iter do
    match Budget.expired ~stage:"cp_rand" ~sweeps:!iterations budget with
    | Some f -> deadline := Some f
    | None ->
    incr iterations;
    for k = 0 to m - 1 do
      (* Sampled least squares for mode k: rows are random index tuples of
         the other modes. *)
      let zs = Mat.create samples rank in
      let ys = Mat.create samples dims.(k) in
      for s = 0 to samples - 1 do
        for p = 0 to m - 1 do
          idx.(p) <- (if p = k then 0 else Rng.int rng dims.(p))
        done;
        (* Row of the Khatri–Rao product of the *unit-norm* factors at this
           tuple: the solved Uₖ then absorbs λ, which the renormalization
           below extracts — mirroring Cp_als. *)
        for c = 0 to rank - 1 do
          let prod = ref 1. in
          for p = 0 to m - 1 do
            if p <> k then prod := !prod *. Mat.get factors.(p) idx.(p) c
          done;
          Mat.set zs s c !prod
        done;
        op_fiber op k idx fiber;
        for i = 0 to dims.(k) - 1 do
          Mat.set ys s i fiber.(i)
        done
      done;
      (* Normal equations (ZᵀZ + δI) Uᵀ = Zᵀ Y. *)
      let ztz = Mat.add_scaled_identity 1e-10 (Mat.tgram zs) in
      let zty = Mat.mul_tn zs ys in
      let ut = Cholesky.solve_system ztz zty in
      let u = Mat.transpose ut in
      (* Re-normalize columns, folding norms into λ. *)
      for c = 0 to rank - 1 do
        let col = Mat.col u c in
        let n = Vec.norm col in
        if n > 1e-300 then begin
          Mat.set_col u c (Vec.scale (1. /. n) col);
          lambda.(c) <- n
        end
        else lambda.(c) <- 0.
      done;
      factors.(k) <- u
    done;
    fit := sampled_fit rng options op factors lambda;
    if Float.abs (!fit -. !previous_fit) < options.tol then converged := true;
    previous_fit := !fit
  done;
  let kruskal = Kruskal.normalize { Kruskal.weights = Array.copy lambda; factors } in
  (* Accuracy gate: a fit below [min_fit] means the sampled solve cannot be
     trusted — surface a typed failure instead of a silently bad model.  A
     budget-expired solve is exempt (best-so-far is the documented
     contract; the deadline diagnostic already tells the caller). *)
  let failure =
    match options.min_fit, !deadline with
    | Some gate, None when !fit < gate ->
      Some
        (Robust.Not_converged
           { stage = "cp_rand"; sweeps = !iterations; residual = 1. -. !fit })
    | _ -> None
  in
  ( kruskal,
    { iterations = !iterations;
      sampled_fit = !fit;
      converged = !converged;
      failure;
      deadline = !deadline } )

let decompose ?options ?budget ~rank x = decompose_op ?options ?budget ~rank (Op_tensor.dense x)
