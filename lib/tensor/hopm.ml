type result = {
  sigma : float;
  vectors : Vec.t array;
  iterations : int;
  converged : bool;
  deadline : Robust.failure option;
}

(* X ×_{q≠k} u_qᵀ: contract every mode but k, yielding a vector of length
   dims.(k).  Contract from the highest mode down so indices stay valid. *)
let contract_all_but (x : Tensor.t) us k =
  let m = Tensor.order x in
  let t = ref x in
  (* Contract modes m-1 … k+1 first (their positions are unchanged), then
     modes k-1 … 0 (each contraction removes one mode before k, so the
     running position of mode q < k is just q). *)
  for q = m - 1 downto k + 1 do
    t := Tensor.contract_vec !t q us.(q)
  done;
  for q = k - 1 downto 0 do
    t := Tensor.contract_vec !t q us.(q)
  done;
  (!t).Tensor.data

let init_vectors x =
  let m = Tensor.order x in
  Array.init m (fun k ->
      let unfolding = Unfold.unfold x k in
      let gram = Mat.gram unfolding in
      let eig = Eigen.decompose gram in
      Mat.col eig.Eigen.vectors 0)

let rank1 ?(max_iter = 200) ?(tol = 1e-10) ?(seed = 7) ?(budget = Budget.unlimited)
    ?(sweeps_before = 0) x =
  let m = Tensor.order x in
  let us =
    if Tensor.frobenius x = 0. then begin
      let rng = Rng.create seed in
      Array.init m (fun k ->
          Vec.normalize (Array.init (Tensor.dim x k) (fun _ -> Rng.gaussian rng)))
    end
    else init_vectors x
  in
  let sigma = ref (Tensor.multilinear_form x us) in
  let iterations = ref 0 in
  let converged = ref false in
  let deadline = ref None in
  while (not !converged) && !deadline = None && !iterations < max_iter do
    match Budget.expired ~stage:"hopm" ~sweeps:(sweeps_before + !iterations) budget with
    | Some f -> deadline := Some f
    | None ->
      incr iterations;
      for k = 0 to m - 1 do
        let w = contract_all_but x us k in
        let n = Vec.norm w in
        if n > 0. then us.(k) <- Vec.scale (1. /. n) w
      done;
      let s = Tensor.multilinear_form x us in
      if Float.abs (s -. !sigma) <= tol *. Float.max 1. (Float.abs s) then
        converged := true;
      sigma := s
  done;
  { sigma = !sigma;
    vectors = us;
    iterations = !iterations;
    converged = !converged;
    deadline = !deadline }
