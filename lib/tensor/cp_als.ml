type init = Random of int | Hosvd

type options = { max_iter : int; tol : float; init : init }

let default_options = { max_iter = 100; tol = 1e-6; init = Hosvd }

type info = { iterations : int; fit : float; converged : bool; fit_history : float list }

(* X₍ₖ₎ · (⊙_{q≠k} U_q) without materializing either operand: one pass over
   the tensor entries, carrying the running row-product of the non-k factor
   rows.  O(size · r) multiplies, O(m · r) scratch per domain.

   The mode-k index range [lo, hi) slices the output: a slice touches only
   rows [lo .. hi-1] of V, so partitioning mode k across the domain pool
   gives each chunk exclusive ownership of its V rows, and within a row the
   traversal (hence accumulation) order is identical to the sequential walk —
   results are bitwise-deterministic for any pool size. *)
let mttkrp_slice (x : Tensor.t) us k vd ~lo ~hi =
  let m = Tensor.order x in
  let dims = x.Tensor.dims and strides = x.Tensor.strides and data = x.Tensor.data in
  let r = snd (Mat.dims us.(0)) in
  let scratch = Array.init (m + 1) (fun _ -> Array.make r 1.) in
  let rec go level base ik coeff =
    if level = m - 1 then begin
      if level = k then
        for i = lo to hi - 1 do
          let xv = Array.unsafe_get data (base + i) in
          if xv <> 0. then begin
            let vrow = i * r in
            for c = 0 to r - 1 do
              Array.unsafe_set vd (vrow + c)
                (Array.unsafe_get vd (vrow + c) +. (xv *. Array.unsafe_get coeff c))
            done
          end
        done
      else begin
        let ud = (us.(level) : Mat.t).Mat.data in
        let vrow = ik * r in
        for i = 0 to dims.(level) - 1 do
          let xv = Array.unsafe_get data (base + i) in
          if xv <> 0. then begin
            let urow = i * r in
            for c = 0 to r - 1 do
              Array.unsafe_set vd (vrow + c)
                (Array.unsafe_get vd (vrow + c)
                +. (xv *. Array.unsafe_get coeff c *. Array.unsafe_get ud (urow + c)))
            done
          end
        done
      end
    end
    else begin
      let stride = strides.(level) in
      if level = k then
        for i = lo to hi - 1 do
          go (level + 1) (base + (i * stride)) i coeff
        done
      else begin
        let next = scratch.(level) in
        let ud = (us.(level) : Mat.t).Mat.data in
        for i = 0 to dims.(level) - 1 do
          let urow = i * r in
          for c = 0 to r - 1 do
            Array.unsafe_set next c
              (Array.unsafe_get coeff c *. Array.unsafe_get ud (urow + c))
          done;
          go (level + 1) (base + (i * stride)) ik next
        done
      end
    end
  in
  go 0 0 0 scratch.(m)

let mttkrp (x : Tensor.t) us k =
  let m = Tensor.order x in
  if Array.length us <> m then invalid_arg "Cp_als.mttkrp: arity mismatch";
  let dims = x.Tensor.dims in
  let r = snd (Mat.dims us.(0)) in
  let v = Mat.create dims.(k) r in
  let vd = (v : Mat.t).Mat.data in
  Parallel.parallel_for ~cost:(Tensor.size x * r) ~n:dims.(k) (fun lo hi ->
      mttkrp_slice x us k vd ~lo ~hi);
  v

(* Solve U Γ = V for U with Γ symmetric PSD: Cholesky when possible (the
   generic case), spectral pseudo-inverse as the rank-deficient fallback. *)
let solve_against_gram v gamma =
  match Cholesky.decompose gamma with
  | f -> Mat.transpose (Cholesky.solve f (Mat.transpose v))
  | exception Cholesky.Not_positive_definite -> Mat.mul v (Matfun.inv_psd gamma)

let normalize_columns_in_place u lambda =
  let _, r = Mat.dims u in
  for c = 0 to r - 1 do
    let col = Mat.col u c in
    let n = Vec.norm col in
    if n > 1e-300 then begin
      Mat.set_col u c (Vec.scale (1. /. n) col);
      lambda.(c) <- n
    end
    else lambda.(c) <- 0.
  done

let init_factors options ~rank x =
  let m = Tensor.order x in
  let dims = x.Tensor.dims in
  match options.init with
  | Random seed ->
    let rng = Rng.create seed in
    Array.init m (fun k -> Mat.init dims.(k) rank (fun _ _ -> Rng.gaussian rng))
  | Hosvd ->
    let rng = Rng.create 0x415353 in
    Array.init m (fun k ->
        let unfolding = Unfold.unfold x k in
        let gram = Mat.gram unfolding in
        let eig = Eigen.decompose gram in
        let keep = min rank dims.(k) in
        let lead = Eigen.top_k eig keep in
        if keep = rank then lead
        else begin
          (* rank > dₖ: pad with random columns so the factor is full width. *)
          let pad = Mat.init dims.(k) (rank - keep) (fun _ _ -> Rng.gaussian rng) in
          Mat.hcat lead pad
        end)

let decompose ?(options = default_options) ~rank x =
  if rank < 1 then invalid_arg "Cp_als.decompose: rank must be >= 1";
  let m = Tensor.order x in
  let factors = init_factors options ~rank x in
  let lambda = Array.make rank 1. in
  let norm_x2 = Tensor.inner x x in
  let norm_x = sqrt norm_x2 in
  let fit_history = ref [] in
  let previous_fit = ref neg_infinity in
  let converged = ref false in
  let iterations = ref 0 in
  while (not !converged) && !iterations < options.max_iter do
    incr iterations;
    let last_v = ref (Mat.create 1 1) in
    for k = 0 to m - 1 do
      let v = mttkrp x factors k in
      let gamma = Khatri_rao.gram_hadamard_excluding factors k in
      let u = solve_against_gram v gamma in
      normalize_columns_in_place u lambda;
      factors.(k) <- u;
      if k = m - 1 then last_v := v
    done;
    (* Fit from the last sweep's quantities:
       ⟨X, X̂⟩ = Σ_c λ_c ⟨v_c, u_c⟩ with V the final-mode MTTKRP,
       ‖X̂‖²   = λᵀ (⊛_p UₚᵀUₚ) λ. *)
    let cross = ref 0. in
    for c = 0 to rank - 1 do
      cross := !cross +. (lambda.(c) *. Vec.dot (Mat.col !last_v c) (Mat.col factors.(m - 1) c))
    done;
    let gram_full = ref (Mat.make rank rank 1.) in
    Array.iter (fun u -> gram_full := Mat.map2 ( *. ) !gram_full (Mat.tgram u)) factors;
    let norm_xhat2 = Vec.dot lambda (Mat.mul_vec !gram_full lambda) in
    let err2 = Float.max 0. (norm_x2 -. (2. *. !cross) +. norm_xhat2) in
    let fit = if norm_x = 0. then 1. else 1. -. (sqrt err2 /. norm_x) in
    fit_history := fit :: !fit_history;
    if Float.abs (fit -. !previous_fit) < options.tol then converged := true;
    previous_fit := fit
  done;
  let kruskal = Kruskal.normalize { Kruskal.weights = Array.copy lambda; factors } in
  ( kruskal,
    { iterations = !iterations;
      fit = !previous_fit;
      converged = !converged;
      fit_history = List.rev !fit_history } )
