type init = Random of int | Hosvd

type options = { max_iter : int; tol : float; init : init }

let default_options = { max_iter = 100; tol = 1e-6; init = Hosvd }

type info = { iterations : int; fit : float; converged : bool; fit_history : float list }

(* The dense kernel lives in Op_tensor (shared with the factored operator);
   this alias keeps the historical entry point for tests and benches. *)
let mttkrp (x : Tensor.t) us k = Op_tensor.mttkrp (Op_tensor.Dense x) us k

(* Solve U Γ = V for U with Γ symmetric PSD: Cholesky when possible (the
   generic case), spectral pseudo-inverse as the rank-deficient fallback. *)
let solve_against_gram v gamma =
  match Cholesky.decompose gamma with
  | f -> Mat.transpose (Cholesky.solve f (Mat.transpose v))
  | exception Cholesky.Not_positive_definite -> Mat.mul v (Matfun.inv_psd gamma)

let normalize_columns_in_place u lambda =
  let rows, r = Mat.dims u in
  for c = 0 to r - 1 do
    let col = Mat.col u c in
    let n = Vec.norm col in
    if n > 1e-300 then begin
      Mat.set_col u c (Vec.scale (1. /. n) col);
      lambda.(c) <- n
    end
    else begin
      (* Underflowed column: zero it explicitly so the factor carries no
         stale un-normalized direction alongside its λ = 0 weight. *)
      for i = 0 to rows - 1 do
        Mat.set u i c 0.
      done;
      lambda.(c) <- 0.
    end
  done

let init_factors options ~rank op =
  let m = Op_tensor.order op in
  let dims = Op_tensor.dims op in
  match options.init with
  | Random seed ->
    let rng = Rng.create seed in
    Array.init m (fun k -> Mat.init dims.(k) rank (fun _ _ -> Rng.gaussian rng))
  | Hosvd ->
    let rng = Rng.create 0x415353 in
    Array.init m (fun k ->
        let gram = Op_tensor.mode_gram op k in
        let eig = Eigen.decompose gram in
        let keep = min rank dims.(k) in
        let lead = Eigen.top_k eig keep in
        if keep = rank then lead
        else begin
          (* rank > dₖ: pad with random columns so the factor is full width. *)
          let pad = Mat.init dims.(k) (rank - keep) (fun _ _ -> Rng.gaussian rng) in
          Mat.hcat lead pad
        end)

let decompose_op ?(options = default_options) ~rank op =
  if rank < 1 then invalid_arg "Cp_als.decompose: rank must be >= 1";
  let m = Op_tensor.order op in
  let factors = init_factors options ~rank op in
  let lambda = Array.make rank 1. in
  let norm_x2 = Op_tensor.norm2 op in
  let norm_x = sqrt norm_x2 in
  let fit_history = ref [] in
  let previous_fit = ref neg_infinity in
  let converged = ref false in
  let iterations = ref 0 in
  while (not !converged) && !iterations < options.max_iter do
    incr iterations;
    let last_v = ref (Mat.create 1 1) in
    for k = 0 to m - 1 do
      let v = Op_tensor.mttkrp op factors k in
      let gamma = Khatri_rao.gram_hadamard_excluding factors k in
      let u = solve_against_gram v gamma in
      normalize_columns_in_place u lambda;
      factors.(k) <- u;
      if k = m - 1 then last_v := v
    done;
    (* Fit from the last sweep's quantities:
       ⟨X, X̂⟩ = Σ_c λ_c ⟨v_c, u_c⟩ with V the final-mode MTTKRP,
       ‖X̂‖²   = λᵀ (⊛_p UₚᵀUₚ) λ. *)
    let cross = ref 0. in
    for c = 0 to rank - 1 do
      cross := !cross +. (lambda.(c) *. Vec.dot (Mat.col !last_v c) (Mat.col factors.(m - 1) c))
    done;
    let gram_full = ref (Mat.make rank rank 1.) in
    Array.iter (fun u -> gram_full := Mat.map2 ( *. ) !gram_full (Mat.tgram u)) factors;
    let norm_xhat2 = Vec.dot lambda (Mat.mul_vec !gram_full lambda) in
    let err2 = Float.max 0. (norm_x2 -. (2. *. !cross) +. norm_xhat2) in
    let fit = if norm_x = 0. then 1. else 1. -. (sqrt err2 /. norm_x) in
    fit_history := fit :: !fit_history;
    if Float.abs (fit -. !previous_fit) < options.tol then converged := true;
    previous_fit := fit
  done;
  let kruskal = Kruskal.normalize { Kruskal.weights = Array.copy lambda; factors } in
  ( kruskal,
    { iterations = !iterations;
      fit = !previous_fit;
      converged = !converged;
      fit_history = List.rev !fit_history } )

let decompose ?options ~rank x = decompose_op ?options ~rank (Op_tensor.Dense x)
