type init = Random of int | Hosvd | Warm of Mat.t array

type options = {
  max_iter : int;
  tol : float;
  init : init;
  restarts : int;
  restart_seed : int;
  stall_sweeps : int;
}

let default_options =
  { max_iter = 100;
    tol = 1e-6;
    init = Hosvd;
    restarts = 2;
    restart_seed = 0x524F4253;
    stall_sweeps = 15 }

type run = {
  run_init : init;
  run_iterations : int;
  run_fit : float;
  run_converged : bool;
  run_failure : Robust.failure option;
}

type info = {
  iterations : int;
  fit : float;
  converged : bool;
  fit_history : float list;
  failure : Robust.failure option;
  deadline : Robust.failure option;
  runs : run list;
}

(* The dense kernel lives in Op_tensor (shared with the factored operator);
   this alias keeps the historical entry point for tests and benches. *)
let mttkrp (x : Tensor.t) us k = Op_tensor.mttkrp (Op_tensor.Dense x) us k

(* Solve U Γ = V for U with Γ symmetric PSD: Cholesky when possible (the
   generic case), spectral pseudo-inverse as the rank-deficient fallback. *)
let solve_against_gram v gamma =
  match Cholesky.decompose gamma with
  | f -> Mat.transpose (Cholesky.solve f (Mat.transpose v))
  | exception Cholesky.Not_positive_definite _ -> Mat.mul v (Matfun.inv_psd gamma)

let normalize_columns_in_place u lambda =
  let rows, r = Mat.dims u in
  for c = 0 to r - 1 do
    let col = Mat.col u c in
    let n = Vec.norm col in
    if n > 1e-300 then begin
      Mat.set_col u c (Vec.scale (1. /. n) col);
      lambda.(c) <- n
    end
    else begin
      (* Underflowed column: zero it explicitly so the factor carries no
         stale un-normalized direction alongside its λ = 0 weight. *)
      for i = 0 to rows - 1 do
        Mat.set u i c 0.
      done;
      lambda.(c) <- 0.
    end
  done

let rec init_factors init ~rank op =
  let m = Op_tensor.order op in
  let dims = Op_tensor.dims op in
  match init with
  | Warm given ->
    (* Serving refits hand in the live model's factors.  A stale or
       mismatched warm start must degrade, not crash the daemon: any shape
       or finiteness problem falls back to the deterministic Hosvd init
       with a warning. *)
    let shape_ok =
      Array.length given = m
      && Array.for_all2 (fun u d -> fst (Mat.dims u) = d) given dims
      && Array.for_all Mat.all_finite given
    in
    if not shape_ok then begin
      Robust.warnf
        "Cp_als: warm-start factors do not match the operator (order/dims/finite) — \
         falling back to Hosvd init";
      init_factors Hosvd ~rank op
    end
    else
      let rng = Rng.create 0x5741524D (* "WARM" *) in
      Array.map
        (fun u ->
          let rows, cols = Mat.dims u in
          if cols = rank then Mat.copy u
          else if cols > rank then Mat.init rows rank (fun i j -> Mat.get u i j)
          else
            (* rank grew since the warm model was fitted: keep its columns
               and pad the new directions with seeded Gaussians. *)
            Mat.hcat (Mat.copy u)
              (Mat.init rows (rank - cols) (fun _ _ -> Rng.gaussian rng)))
        given
  | Random seed ->
    let rng = Rng.create seed in
    Array.init m (fun k -> Mat.init dims.(k) rank (fun _ _ -> Rng.gaussian rng))
  | Hosvd ->
    let rng = Rng.create 0x415353 in
    Array.init m (fun k ->
        let gram = Op_tensor.mode_gram op k in
        let eig = Eigen.decompose gram in
        let keep = min rank dims.(k) in
        let lead = Eigen.top_k eig keep in
        if keep = rank then lead
        else begin
          (* rank > dₖ: pad with random columns so the factor is full width. *)
          let pad = Mat.init dims.(k) (rank - keep) (fun _ _ -> Rng.gaussian rng) in
          Mat.hcat lead pad
        end)

(* ------------------------------------------------------------------ *)
(* Checkpoint plumbing: Checkpoint lives below linalg, so factor state
   crosses the boundary as plain row-major arrays. *)

let factor_of_mat (m : Mat.t) =
  { Checkpoint.rows = m.Mat.rows; cols = m.Mat.cols; data = Array.copy m.Mat.data }

let mat_of_factor (f : Checkpoint.factor) =
  Mat.unsafe_of_flat ~rows:f.Checkpoint.rows ~cols:f.Checkpoint.cols
    (Array.copy f.Checkpoint.data)

let init_of_state (rs : Checkpoint.run_state) =
  match rs.Checkpoint.rs_init_random with Some s -> Random s | None -> Hosvd

(* A [Warm] init cannot be named in a snapshot (it is the live model's
   factors, not a recipe); [decompose_op] refuses to checkpoint such solves,
   so this mapping is only ever read back for Random/Hosvd runs. *)
let init_to_state = function Random s -> Some s | Hosvd | Warm _ -> None

(* The solve identity a snapshot must match to be resumed: shape, operator
   representation, rank, and every option that alters the sweep arithmetic.
   (Tensor *content* is deliberately not digested — hashing a dense operator
   per save would cost more than the sweep it protects.) *)
let fingerprint options ~rank op =
  let dims =
    String.concat "x" (Array.to_list (Array.map string_of_int (Op_tensor.dims op)))
  in
  let repr =
    match Op_tensor.n_components op with
    | None -> "dense"
    | Some n -> Printf.sprintf "factored:%d" n
  in
  let init =
    match options.init with
    | Random s -> Printf.sprintf "random:%d" s
    | Hosvd -> "hosvd"
    | Warm fs ->
      (* Content-free on purpose (like the tensor itself): warm solves are
         never checkpointed, so this only has to be readable. *)
      Printf.sprintf "warm:%d" (Array.length fs)
  in
  Printf.sprintf "cp_als/1 rank=%d dims=%s repr=%s max_iter=%d tol=%.17g init=%s restarts=%d seed=%d stall=%d"
    rank dims repr options.max_iter options.tol init options.restarts
    options.restart_seed options.stall_sweeps

(* Everything one run hands back: the model, its summary, its trajectory,
   its final durable state, and whether a budget stopped it. *)
type run_outcome = {
  o_kruskal : Kruskal.t;
  o_run : run;
  o_history : float list;
  o_state : Checkpoint.run_state;
  o_deadline : Robust.failure option;
}

(* One ALS run from one initialization, guarded: a non-finite fit stops the
   sweep loop immediately (instead of burning max_iter on NaN ≠ NaN), and a
   swamp — the fit repeatedly dropping well below its best without the
   convergence test firing — stops with a Not_converged diagnostic so the
   caller can restart from fresh factors.

   [resume] (a snapshot's current-run state) restores every loop variable at
   a sweep boundary, so the remaining sweeps replay the exact arithmetic of
   an uninterrupted run.  [budget] is probed once per sweep at the loop
   head; on expiry the run stops at that boundary with its best-so-far
   factors and [o_deadline] set — never an exception.  [on_sweep] receives a
   lazily-built durable state after each completed sweep (the checkpoint
   hook; [ignore]-cheap when checkpointing is off). *)
let single_run options ~budget ~sweeps_before ~on_sweep ~resume ~rank ~init op =
  let m = Op_tensor.order op in
  let factors, lambda =
    match resume with
    | Some rs ->
      ( Array.map mat_of_factor rs.Checkpoint.rs_factors,
        Array.copy rs.Checkpoint.rs_weights )
    | None -> (init_factors init ~rank op, Array.make rank 1.)
  in
  let norm_x2 = Op_tensor.norm2 op in
  let norm_x = sqrt norm_x2 in
  let fit_history = ref [] in
  let previous_fit = ref neg_infinity in
  let best_fit = ref neg_infinity in
  let drops = ref 0 in
  let failure = ref None in
  let converged = ref false in
  let iterations = ref 0 in
  let deadline = ref None in
  (match resume with
  | Some rs ->
    fit_history := List.rev (Array.to_list rs.Checkpoint.rs_history);
    previous_fit := rs.Checkpoint.rs_previous_fit;
    best_fit := rs.Checkpoint.rs_best_fit;
    drops := rs.Checkpoint.rs_drops;
    converged := rs.Checkpoint.rs_converged;
    failure := rs.Checkpoint.rs_failure;
    iterations := rs.Checkpoint.rs_iterations
  | None -> ());
  let state () =
    { Checkpoint.rs_init_random = init_to_state init;
      rs_iterations = !iterations;
      rs_previous_fit = !previous_fit;
      rs_best_fit = !best_fit;
      rs_drops = !drops;
      rs_converged = !converged;
      rs_failure = !failure;
      rs_weights = Array.copy lambda;
      rs_factors = Array.map factor_of_mat factors;
      rs_history = Array.of_list (List.rev !fit_history) }
  in
  while
    (not !converged) && !failure = None && !deadline = None
    && !iterations < options.max_iter
  do
    match Budget.expired ~stage:"cp_als" ~sweeps:(sweeps_before + !iterations) budget with
    | Some f -> deadline := Some f
    | None ->
      incr iterations;
      let last_v = ref (Mat.create 1 1) in
      for k = 0 to m - 1 do
        let v = Op_tensor.mttkrp op factors k in
        let gamma = Khatri_rao.gram_hadamard_excluding factors k in
        let u = solve_against_gram v gamma in
        normalize_columns_in_place u lambda;
        factors.(k) <- u;
        if k = m - 1 then last_v := v
      done;
      (* Fit from the last sweep's quantities:
         ⟨X, X̂⟩ = Σ_c λ_c ⟨v_c, u_c⟩ with V the final-mode MTTKRP,
         ‖X̂‖²   = λᵀ (⊛_p UₚᵀUₚ) λ. *)
      let cross = ref 0. in
      for c = 0 to rank - 1 do
        cross := !cross +. (lambda.(c) *. Vec.dot (Mat.col !last_v c) (Mat.col factors.(m - 1) c))
      done;
      let gram_full = ref (Mat.make rank rank 1.) in
      Array.iter (fun u -> gram_full := Mat.map2 ( *. ) !gram_full (Mat.tgram u)) factors;
      let norm_xhat2 = Vec.dot lambda (Mat.mul_vec !gram_full lambda) in
      let err2 = Float.max 0. (norm_x2 -. (2. *. !cross) +. norm_xhat2) in
      let fit = if norm_x = 0. then 1. else 1. -. (sqrt err2 /. norm_x) in
      let fit = if Robust.Inject.(active Als_nan) then nan else fit in
      fit_history := fit :: !fit_history;
      if not (Float.is_finite fit) then
        failure :=
          Some
            (Robust.Non_finite
               { stage = "cp_als"; where = Printf.sprintf "fit at sweep %d" !iterations })
      else begin
        if Float.abs (fit -. !previous_fit) < options.tol then converged := true;
        (* Swamp detection: ALS is monotone in exact arithmetic, so a fit that
           keeps landing well below its best (10·tol, i.e. beyond convergence-
           test noise) is oscillating, not converging.  The absolute 1e-12
           floor keeps tol = 0 runs from counting ulp-level jitter at a fixed
           point as drops: fit is normalized O(1), so roundoff oscillation is
           ~1e-16 while a genuine swamp swings by ~1e-3 or more. *)
        if fit > !best_fit then begin
          best_fit := fit;
          drops := 0
        end
        else if fit < !best_fit -. ((10. *. options.tol) +. 1e-12) then begin
          incr drops;
          if !drops >= options.stall_sweeps && not !converged then
            failure :=
              Some
                (Robust.Not_converged
                   { stage = "cp_als";
                     sweeps = !iterations;
                     residual = 1. -. !best_fit })
        end
      end;
      previous_fit := fit;
      on_sweep !iterations state
  done;
  (* Final-model guard: a NaN that appeared in the factors without reaching
     the fit (e.g. through the Gram pseudo-inverse) must not leave silently. *)
  if
    !failure = None
    && not (Array.for_all Mat.all_finite factors && Vec.all_finite lambda)
  then
    failure := Some (Robust.Non_finite { stage = "cp_als"; where = "final factors" });
  let kruskal = Kruskal.normalize { Kruskal.weights = Array.copy lambda; factors } in
  { o_kruskal = kruskal;
    o_run =
      { run_init = init;
        run_iterations = !iterations;
        run_fit = !previous_fit;
        run_converged = !converged;
        run_failure = !failure };
    o_history = List.rev !fit_history;
    o_state = state ();
    o_deadline = !deadline }

let run_ok r = match r.run_failure with None -> true | Some _ -> false

(* [a] strictly better than [b]: clean beats failed, converged beats capped,
   then higher finite fit. *)
let better a b =
  let score r = (if run_ok r then 2 else 0) + if r.run_converged then 1 else 0 in
  if score a <> score b then score a > score b
  else
    let fit r = if Float.is_finite r.run_fit then r.run_fit else neg_infinity in
    fit a > fit b

(* Rebuild a finished run's outcome from its durable state — what a resumed
   multi-start solve uses so its final best-run selection matches the
   uninterrupted solve exactly. *)
let outcome_of_state (rs : Checkpoint.run_state) =
  let factors = Array.map mat_of_factor rs.Checkpoint.rs_factors in
  { o_kruskal =
      Kruskal.normalize
        { Kruskal.weights = Array.copy rs.Checkpoint.rs_weights; factors };
    o_run =
      { run_init = init_of_state rs;
        run_iterations = rs.Checkpoint.rs_iterations;
        run_fit = rs.Checkpoint.rs_previous_fit;
        run_converged = rs.Checkpoint.rs_converged;
        run_failure = rs.Checkpoint.rs_failure };
    o_history = Array.to_list rs.Checkpoint.rs_history;
    o_state = rs;
    o_deadline = None }

let decompose_op ?(options = default_options) ?(budget = Budget.unlimited) ?checkpoint
    ~rank op =
  if rank < 1 then invalid_arg "Cp_als.decompose: rank must be >= 1";
  let checkpoint =
    (* A warm init is the live model's factors — there is no recipe a
       snapshot could replay to recreate it, so resuming such a solve could
       not be bit-identical.  Refuse loudly rather than silently mis-resume;
       warm-started serving refits are protected by the daemon's own
       post-refit model snapshot instead. *)
    match (options.init, checkpoint) with
    | Warm _, Some cfg ->
      Robust.warnf "Cp_als: checkpoint %s ignored — warm-started solves are not resumable"
        cfg.Checkpoint.path;
      None
    | _ -> checkpoint
  in
  let fp = fingerprint options ~rank op in
  let loaded =
    match checkpoint with
    | None -> None
    | Some cfg -> Checkpoint.load_for_resume ~fingerprint:fp cfg
  in
  let completed_states =
    ref (match loaded with None -> [] | Some s -> s.Checkpoint.completed)
  in
  let attempt0 = match loaded with None -> 0 | Some s -> s.Checkpoint.attempt in
  let resume_current = Option.map (fun s -> s.Checkpoint.current) loaded in
  let attempt = ref attempt0 in
  let save_snapshot cur_state =
    match checkpoint with
    | None -> ()
    | Some cfg -> (
      try
        Checkpoint.save ~path:cfg.Checkpoint.path
          { Checkpoint.fingerprint = fp;
            domains = Parallel.num_domains ();
            attempt = !attempt;
            completed = !completed_states;
            current = cur_state }
      with Sys_error e ->
        (* A failed snapshot must not kill the fit it protects. *)
        Robust.warnf "Checkpoint %s: save failed (%s) — continuing unprotected"
          cfg.Checkpoint.path e)
  in
  let on_sweep sweep state =
    match checkpoint with
    | Some cfg when sweep mod cfg.Checkpoint.every = 0 -> save_snapshot (state ())
    | _ -> ()
  in
  let sweeps_of_states states =
    List.fold_left (fun acc rs -> acc + rs.Checkpoint.rs_iterations) 0 states
  in
  let run_one ~sweeps_before ~init ~resume =
    let outcome =
      single_run options ~budget ~sweeps_before ~on_sweep ~resume ~rank ~init op
    in
    (* End-of-run snapshot: makes the completed run (including its final
       guard verdict) durable before any restart decision. *)
    if checkpoint <> None then save_snapshot outcome.o_state;
    outcome
  in
  let first =
    match resume_current with
    | Some rs ->
      (* Budget sweep counts are totals across runs; the resumed run's own
         pre-crash sweeps re-enter through its restored iteration counter. *)
      run_one
        ~sweeps_before:(sweeps_of_states !completed_states)
        ~init:(init_of_state rs) ~resume:(Some rs)
    | None -> run_one ~sweeps_before:0 ~init:options.init ~resume:None
  in
  (* Restored finished runs come first in chronological order. *)
  let prior = List.map outcome_of_state !completed_states in
  let runs = ref (first :: List.rev prior) in
  (* Escalation: deterministic multi-start.  Only a *failed* run (non-finite
     or swamped) triggers restarts — a clean run that merely exhausted
     max_iter keeps the historical behaviour.  The seed stream is replayed
     to the snapshot's position on resume, so a resumed solve draws the same
     restart seeds an uninterrupted one would. *)
  let rng = Rng.create options.restart_seed in
  for _ = 1 to attempt0 do
    ignore (Rng.int rng 0x3FFFFFFF)
  done;
  let deadline = ref (List.hd !runs).o_deadline in
  while
    (let head = List.hd !runs in
     (not (run_ok head.o_run)) && head.o_deadline = None)
    && !deadline = None && !attempt < options.restarts
  do
    let head = List.hd !runs in
    let total_sweeps = List.fold_left (fun acc o -> acc + o.o_run.run_iterations) 0 !runs in
    match Budget.expired ~stage:"cp_als" ~sweeps:total_sweeps budget with
    | Some f ->
      (* No time left to repair a failed run: stop restarting, report both. *)
      deadline := Some f
    | None ->
      incr attempt;
      let seed = Rng.int rng 0x3FFFFFFF in
      Robust.warnf "Cp_als: run %d failed (%s) — restarting from Random %d (%d/%d)" !attempt
        (match head.o_run.run_failure with
        | Some f -> Robust.failure_to_string f
        | None -> "?")
        seed !attempt options.restarts;
      completed_states := !completed_states @ [ head.o_state ];
      let outcome =
        run_one ~sweeps_before:total_sweeps ~init:(Random seed) ~resume:None
      in
      if outcome.o_deadline <> None then deadline := outcome.o_deadline;
      runs := outcome :: !runs
  done;
  let ordered = List.rev !runs in
  let best =
    List.fold_left
      (fun acc candidate -> if better candidate.o_run acc.o_run then candidate else acc)
      (List.hd ordered) (List.tl ordered)
  in
  ( best.o_kruskal,
    { iterations = best.o_run.run_iterations;
      fit = best.o_run.run_fit;
      converged = best.o_run.run_converged;
      fit_history = best.o_history;
      failure = best.o_run.run_failure;
      deadline = !deadline;
      runs = List.map (fun o -> o.o_run) ordered } )

let decompose ?options ?budget ?checkpoint ~rank x =
  decompose_op ?options ?budget ?checkpoint ~rank (Op_tensor.Dense x)
