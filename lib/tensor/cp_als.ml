type init = Random of int | Hosvd

type options = {
  max_iter : int;
  tol : float;
  init : init;
  restarts : int;
  restart_seed : int;
  stall_sweeps : int;
}

let default_options =
  { max_iter = 100;
    tol = 1e-6;
    init = Hosvd;
    restarts = 2;
    restart_seed = 0x524F4253;
    stall_sweeps = 15 }

type run = {
  run_init : init;
  run_iterations : int;
  run_fit : float;
  run_converged : bool;
  run_failure : Robust.failure option;
}

type info = {
  iterations : int;
  fit : float;
  converged : bool;
  fit_history : float list;
  failure : Robust.failure option;
  runs : run list;
}

(* The dense kernel lives in Op_tensor (shared with the factored operator);
   this alias keeps the historical entry point for tests and benches. *)
let mttkrp (x : Tensor.t) us k = Op_tensor.mttkrp (Op_tensor.Dense x) us k

(* Solve U Γ = V for U with Γ symmetric PSD: Cholesky when possible (the
   generic case), spectral pseudo-inverse as the rank-deficient fallback. *)
let solve_against_gram v gamma =
  match Cholesky.decompose gamma with
  | f -> Mat.transpose (Cholesky.solve f (Mat.transpose v))
  | exception Cholesky.Not_positive_definite _ -> Mat.mul v (Matfun.inv_psd gamma)

let normalize_columns_in_place u lambda =
  let rows, r = Mat.dims u in
  for c = 0 to r - 1 do
    let col = Mat.col u c in
    let n = Vec.norm col in
    if n > 1e-300 then begin
      Mat.set_col u c (Vec.scale (1. /. n) col);
      lambda.(c) <- n
    end
    else begin
      (* Underflowed column: zero it explicitly so the factor carries no
         stale un-normalized direction alongside its λ = 0 weight. *)
      for i = 0 to rows - 1 do
        Mat.set u i c 0.
      done;
      lambda.(c) <- 0.
    end
  done

let init_factors init ~rank op =
  let m = Op_tensor.order op in
  let dims = Op_tensor.dims op in
  match init with
  | Random seed ->
    let rng = Rng.create seed in
    Array.init m (fun k -> Mat.init dims.(k) rank (fun _ _ -> Rng.gaussian rng))
  | Hosvd ->
    let rng = Rng.create 0x415353 in
    Array.init m (fun k ->
        let gram = Op_tensor.mode_gram op k in
        let eig = Eigen.decompose gram in
        let keep = min rank dims.(k) in
        let lead = Eigen.top_k eig keep in
        if keep = rank then lead
        else begin
          (* rank > dₖ: pad with random columns so the factor is full width. *)
          let pad = Mat.init dims.(k) (rank - keep) (fun _ _ -> Rng.gaussian rng) in
          Mat.hcat lead pad
        end)

(* One ALS run from one initialization, guarded: a non-finite fit stops the
   sweep loop immediately (instead of burning max_iter on NaN ≠ NaN), and a
   swamp — the fit repeatedly dropping well below its best without the
   convergence test firing — stops with a Not_converged diagnostic so the
   caller can restart from fresh factors. *)
let single_run options ~rank ~init op =
  let m = Op_tensor.order op in
  let factors = init_factors init ~rank op in
  let lambda = Array.make rank 1. in
  let norm_x2 = Op_tensor.norm2 op in
  let norm_x = sqrt norm_x2 in
  let fit_history = ref [] in
  let previous_fit = ref neg_infinity in
  let best_fit = ref neg_infinity in
  let drops = ref 0 in
  let failure = ref None in
  let converged = ref false in
  let iterations = ref 0 in
  while (not !converged) && !failure = None && !iterations < options.max_iter do
    incr iterations;
    let last_v = ref (Mat.create 1 1) in
    for k = 0 to m - 1 do
      let v = Op_tensor.mttkrp op factors k in
      let gamma = Khatri_rao.gram_hadamard_excluding factors k in
      let u = solve_against_gram v gamma in
      normalize_columns_in_place u lambda;
      factors.(k) <- u;
      if k = m - 1 then last_v := v
    done;
    (* Fit from the last sweep's quantities:
       ⟨X, X̂⟩ = Σ_c λ_c ⟨v_c, u_c⟩ with V the final-mode MTTKRP,
       ‖X̂‖²   = λᵀ (⊛_p UₚᵀUₚ) λ. *)
    let cross = ref 0. in
    for c = 0 to rank - 1 do
      cross := !cross +. (lambda.(c) *. Vec.dot (Mat.col !last_v c) (Mat.col factors.(m - 1) c))
    done;
    let gram_full = ref (Mat.make rank rank 1.) in
    Array.iter (fun u -> gram_full := Mat.map2 ( *. ) !gram_full (Mat.tgram u)) factors;
    let norm_xhat2 = Vec.dot lambda (Mat.mul_vec !gram_full lambda) in
    let err2 = Float.max 0. (norm_x2 -. (2. *. !cross) +. norm_xhat2) in
    let fit = if norm_x = 0. then 1. else 1. -. (sqrt err2 /. norm_x) in
    let fit = if Robust.Inject.(active Als_nan) then nan else fit in
    fit_history := fit :: !fit_history;
    if not (Float.is_finite fit) then
      failure :=
        Some
          (Robust.Non_finite
             { stage = "cp_als"; where = Printf.sprintf "fit at sweep %d" !iterations })
    else begin
      if Float.abs (fit -. !previous_fit) < options.tol then converged := true;
      (* Swamp detection: ALS is monotone in exact arithmetic, so a fit that
         keeps landing well below its best (10·tol, i.e. beyond convergence-
         test noise) is oscillating, not converging. *)
      if fit > !best_fit then begin
        best_fit := fit;
        drops := 0
      end
      else if fit < !best_fit -. (10. *. options.tol) then begin
        incr drops;
        if !drops >= options.stall_sweeps && not !converged then
          failure :=
            Some
              (Robust.Not_converged
                 { stage = "cp_als";
                   sweeps = !iterations;
                   residual = 1. -. !best_fit })
      end
    end;
    previous_fit := fit
  done;
  (* Final-model guard: a NaN that appeared in the factors without reaching
     the fit (e.g. through the Gram pseudo-inverse) must not leave silently. *)
  if
    !failure = None
    && not (Array.for_all Mat.all_finite factors && Vec.all_finite lambda)
  then
    failure := Some (Robust.Non_finite { stage = "cp_als"; where = "final factors" });
  let kruskal = Kruskal.normalize { Kruskal.weights = Array.copy lambda; factors } in
  ( kruskal,
    { run_init = init;
      run_iterations = !iterations;
      run_fit = !previous_fit;
      run_converged = !converged;
      run_failure = !failure } ,
    List.rev !fit_history )

let run_ok r = match r.run_failure with None -> true | Some _ -> false

(* [a] strictly better than [b]: clean beats failed, converged beats capped,
   then higher finite fit. *)
let better a b =
  let score r = (if run_ok r then 2 else 0) + if r.run_converged then 1 else 0 in
  if score a <> score b then score a > score b
  else
    let fit r = if Float.is_finite r.run_fit then r.run_fit else neg_infinity in
    fit a > fit b

let decompose_op ?(options = default_options) ~rank op =
  if rank < 1 then invalid_arg "Cp_als.decompose: rank must be >= 1";
  let first = single_run options ~rank ~init:options.init op in
  let runs = ref [ first ] in
  (* Escalation: deterministic multi-start.  Only a *failed* run (non-finite
     or swamped) triggers restarts — a clean run that merely exhausted
     max_iter keeps the historical behaviour. *)
  let rng = Rng.create options.restart_seed in
  let attempt = ref 0 in
  while
    (let _, r, _ = List.hd !runs in
     not (run_ok r))
    && !attempt < options.restarts
  do
    incr attempt;
    let seed = Rng.int rng 0x3FFFFFFF in
    let _, r, _ = List.hd !runs in
    Robust.warnf "Cp_als: run %d failed (%s) — restarting from Random %d (%d/%d)" !attempt
      (match r.run_failure with Some f -> Robust.failure_to_string f | None -> "?")
      seed !attempt options.restarts;
    runs := single_run options ~rank ~init:(Random seed) op :: !runs
  done;
  let ordered = List.rev !runs in
  let best =
    List.fold_left
      (fun acc candidate ->
        let _, rb, _ = acc and _, rc, _ = candidate in
        if better rc rb then candidate else acc)
      (List.hd ordered) (List.tl ordered)
  in
  let kruskal, r, history = best in
  ( kruskal,
    { iterations = r.run_iterations;
      fit = r.run_fit;
      converged = r.run_converged;
      fit_history = history;
      failure = r.run_failure;
      runs = List.map (fun (_, r, _) -> r) ordered } )

let decompose ?options ~rank x = decompose_op ?options ~rank (Op_tensor.Dense x)
