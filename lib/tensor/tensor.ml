type t = { dims : int array; strides : int array; data : float array }

let strides_of dims =
  let m = Array.length dims in
  let strides = Array.make m 1 in
  for k = m - 2 downto 0 do
    strides.(k) <- strides.(k + 1) * dims.(k + 1)
  done;
  strides

let size_of dims = Array.fold_left ( * ) 1 dims

let check_dims dims =
  if Array.length dims = 0 then invalid_arg "Tensor: order must be >= 1";
  Array.iter (fun d -> if d < 1 then invalid_arg "Tensor: dimensions must be >= 1") dims

let create dims =
  check_dims dims;
  { dims = Array.copy dims; strides = strides_of dims; data = Array.make (size_of dims) 0. }

let of_flat dims data =
  check_dims dims;
  if Array.length data <> size_of dims then invalid_arg "Tensor.of_flat: bad length";
  { dims = Array.copy dims; strides = strides_of dims; data = Array.copy data }

let copy t = { t with data = Array.copy t.data }

let order t = Array.length t.dims
let dim t k = t.dims.(k)
let size t = Array.length t.data

let offset t idx =
  let m = Array.length t.dims in
  if Array.length idx <> m then invalid_arg "Tensor: index arity mismatch";
  let off = ref 0 in
  for k = 0 to m - 1 do
    if idx.(k) < 0 || idx.(k) >= t.dims.(k) then invalid_arg "Tensor: index out of bounds";
    off := !off + (idx.(k) * t.strides.(k))
  done;
  !off

let get t idx = t.data.(offset t idx)
let set t idx v = t.data.(offset t idx) <- v

let init dims f =
  let t = create dims in
  let m = Array.length dims in
  let idx = Array.make m 0 in
  let n = size t in
  for flat = 0 to n - 1 do
    (* Decode the row-major flat offset into a multi-index. *)
    let rem = ref flat in
    for k = 0 to m - 1 do
      idx.(k) <- !rem / t.strides.(k);
      rem := !rem mod t.strides.(k)
    done;
    t.data.(flat) <- f idx
  done;
  t

let check_same_dims name a b =
  if a.dims <> b.dims then invalid_arg (name ^ ": shape mismatch")

let map2 f a b =
  check_same_dims "Tensor.map2" a b;
  { a with data = Array.init (size a) (fun k -> f a.data.(k) b.data.(k)) }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale s a = { a with data = Array.map (fun v -> s *. v) a.data }

let scale_in_place s a =
  for k = 0 to size a - 1 do
    a.data.(k) <- s *. a.data.(k)
  done

let map f a = { a with data = Array.map f a.data }

(* Accumulate w · (x1 ∘ … ∘ xm) by recursing over modes; the innermost mode is
   a tight scalar-times-vector loop over contiguous memory.  The [slab]
   variant restricts mode 0 to [lo, hi): it touches only the flat range
   [lo·strides.(0), hi·strides.(0)), which is what lets the covariance-tensor
   accumulation partition mode 0 across domains with exclusive ownership. *)
let add_outer_slab_in_place t w xs ~lo ~hi =
  let m = order t in
  if Array.length xs <> m then invalid_arg "Tensor.add_outer_in_place: arity mismatch";
  Array.iteri
    (fun k x ->
      if Array.length x <> t.dims.(k) then
        invalid_arg "Tensor.add_outer_in_place: dimension mismatch")
    xs;
  if lo < 0 || hi > t.dims.(0) then invalid_arg "Tensor.add_outer_slab_in_place: bad slab";
  let rec go k base coeff =
    if k = m - 1 then begin
      let x = xs.(k) in
      for i = 0 to t.dims.(k) - 1 do
        t.data.(base + i) <- t.data.(base + i) +. (coeff *. Array.unsafe_get x i)
      done
    end
    else begin
      let x = xs.(k) in
      let stride = t.strides.(k) in
      for i = 0 to t.dims.(k) - 1 do
        let xi = Array.unsafe_get x i in
        if xi <> 0. then go (k + 1) (base + (i * stride)) (coeff *. xi)
      done
    end
  in
  if m = 1 then begin
    let x = xs.(0) in
    for i = lo to hi - 1 do
      t.data.(i) <- t.data.(i) +. (w *. Array.unsafe_get x i)
    done
  end
  else begin
    let x = xs.(0) in
    let stride = t.strides.(0) in
    for i = lo to hi - 1 do
      let xi = Array.unsafe_get x i in
      if xi <> 0. then go 1 (i * stride) (w *. xi)
    done
  end

let add_outer_in_place t w xs = add_outer_slab_in_place t w xs ~lo:0 ~hi:t.dims.(0)

let outer xs =
  let dims = Array.map Array.length xs in
  let t = create dims in
  add_outer_in_place t 1. xs;
  t

let inner a b =
  check_same_dims "Tensor.inner" a b;
  let acc = ref 0. in
  for k = 0 to size a - 1 do
    acc := !acc +. (a.data.(k) *. b.data.(k))
  done;
  !acc

let frobenius a = sqrt (inner a a)
let all_finite a = Vec.all_finite a.data

(* a ×ₖ u : for every slice along mode k, replace the length-dims.(k) fiber by
   u times that fiber.  We iterate over all positions of the other modes via
   (outer, inner) offsets: outer = strides over modes < k, inner = modes > k. *)
let mode_product a k u =
  let m = order a in
  if k < 0 || k >= m then invalid_arg "Tensor.mode_product: bad mode";
  let j, dk = Mat.dims u in
  if dk <> a.dims.(k) then invalid_arg "Tensor.mode_product: dimension mismatch";
  let out_dims = Array.copy a.dims in
  out_dims.(k) <- j;
  let b = create out_dims in
  let stride_k = a.strides.(k) in
  let stride_k_out = b.strides.(k) in
  (* outer block count = product of dims before mode k;
     inner size = stride over mode k = product of dims after k. *)
  let outer_count = ref 1 in
  for q = 0 to k - 1 do
    outer_count := !outer_count * a.dims.(q)
  done;
  let inner_size = stride_k in
  let outer_stride_in = stride_k * a.dims.(k) in
  let outer_stride_out = stride_k_out * j in
  let ud = (u : Mat.t).Mat.data in
  for o = 0 to !outer_count - 1 do
    let base_in = o * outer_stride_in and base_out = o * outer_stride_out in
    for r = 0 to j - 1 do
      let urow = r * dk in
      let out_base = base_out + (r * stride_k_out) in
      for i = 0 to dk - 1 do
        let coeff = Array.unsafe_get ud (urow + i) in
        if coeff <> 0. then begin
          let in_base = base_in + (i * stride_k) in
          for l = 0 to inner_size - 1 do
            Array.unsafe_set b.data (out_base + l)
              (Array.unsafe_get b.data (out_base + l)
              +. (coeff *. Array.unsafe_get a.data (in_base + l)))
          done
        end
      done
    done
  done;
  b

let mode_products a us =
  if Array.length us <> order a then invalid_arg "Tensor.mode_products: arity mismatch";
  let t = ref a in
  Array.iteri (fun k u -> t := mode_product !t k u) us;
  !t

let contract_vec a k h =
  let m = order a in
  if m = 1 then invalid_arg "Tensor.contract_vec: order-1 tensor (use multilinear_form)";
  let row = Mat.unsafe_of_flat ~rows:1 ~cols:(Array.length h) (Array.copy h) in
  let b = mode_product a k row in
  (* Drop the singleton mode k. *)
  let out_dims = Array.of_list (List.filteri (fun q _ -> q <> k) (Array.to_list b.dims)) in
  { dims = out_dims; strides = strides_of out_dims; data = b.data }

let multilinear_form a hs =
  let m = order a in
  if Array.length hs <> m then invalid_arg "Tensor.multilinear_form: arity mismatch";
  (* Contract the last mode first: fibers there are contiguous. *)
  let rec go t k =
    if k = 0 then begin
      let h = hs.(0) in
      let acc = ref 0. in
      for i = 0 to Array.length h - 1 do
        acc := !acc +. (h.(i) *. t.data.(i))
      done;
      !acc
    end
    else go (contract_vec t k hs.(k)) (k - 1)
  in
  go a (m - 1)

let equal ?(eps = 1e-9) a b =
  a.dims = b.dims
  && begin
       let ok = ref true in
       for k = 0 to size a - 1 do
         if Float.abs (a.data.(k) -. b.data.(k)) > eps then ok := false
       done;
       !ok
     end

let pp fmt t =
  Format.fprintf fmt "tensor%a"
    (fun f dims ->
      Format.fprintf f "[%s]"
        (String.concat "x" (Array.to_list (Array.map string_of_int dims))))
    t.dims
