(** Randomized CP-ALS (after CPRAND, Battaglino, Ballard & Kolda 2018) — the
    paper's future-work direction of "efficient tensor decomposition methods
    that could speed up TCCA", implemented as a drop-in alternative to
    {!Cp_als}.

    Each least-squares update
    [min ‖X₍ₖ₎ − Uₖ Zₖᵀ‖] (with [Zₖ] the Khatri–Rao of the other factors)
    is solved on a uniform sample of its rows: a row of [Zₖ] is one index
    tuple [(i_q)_{q≠k}], so a sampled row costs O(m·r) to form and the
    sampled normal equations cost O(s·(r² + dₖ·r)) instead of touching all
    [Πdₚ] entries.  With [s ≈ 10·r·ln r] the factor-recovery quality matches
    full ALS on well-conditioned tensors at a fraction of the flops — the
    [abl-solver] bench quantifies the trade on the whitened covariance
    tensor. *)

type options = {
  max_iter : int;             (** Default 60. *)
  tol : float;                (** Stop when the sampled-fit estimate improves
                                  by less than this (default 1e-5). *)
  samples_per_mode : int option;
      (** LS sample count; [None] picks [max 64 (10·r·⌈ln(r+1)⌉)]. *)
  fit_samples : int;          (** Entries sampled to estimate the fit
                                  (default 4096). *)
  min_fit : float option;
      (** Accuracy gate: a final sampled fit below this surfaces as
          [info.failure = Some Not_converged] — the first-class solver
          contract that a sampled solve never silently ships a bad model.
          [None] (default) keeps the historical always-[Ok] behavior. *)
  seed : int;
}

val default_options : options

type info = {
  iterations : int;
  sampled_fit : float;  (** Final fit estimate from sampled entries. *)
  converged : bool;
  failure : Robust.failure option;
      (** [Some (Not_converged _)] when the [min_fit] accuracy gate rejected
          the model (residual = 1 − sampled fit).  Budget-expired solves are
          exempt: best-so-far with the deadline diagnostic is the
          documented degradation, not an error. *)
  deadline : Robust.failure option;
      (** [Some (Deadline_exceeded _)] when a budget stopped the solve at a
          sweep boundary; the model is the best-so-far state. *)
}

val decompose :
  ?options:options -> ?budget:Budget.t -> rank:int -> Tensor.t -> Kruskal.t * info
(** Factors are initialized as in {!Cp_als} (HOSVD-style); raises
    [Invalid_argument] if [rank < 1].  [budget] is probed once per sweep. *)

val decompose_op :
  ?options:options -> ?budget:Budget.t -> rank:int -> Op_tensor.t -> Kruskal.t * info
(** Same solver over a first-class operator — [Dense] is bit-identical to
    {!decompose}; [Factored] samples the implicit tensor directly (an entry
    costs O(n·m), a mode-k fiber O(n·(m + dₖ)) where n is the component
    count), so nothing of size ∏dₚ is ever materialized.  The factored path
    initializes factors from the seeded Gaussian stream instead of HOSVD —
    the mode Grams HOSVD needs would cost an n×n Hadamard product, which is
    exactly the allocation this path exists to avoid. *)
