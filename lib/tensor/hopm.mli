(** Higher-order power method (HOPM) for the best rank-1 tensor approximation
    (De Lathauwer, De Moor & Vandewalle 2000b) — one of the alternative
    solvers the paper mentions for problem (4.10).

    Iterates [uₖ ← X ×_{q≠k} u_qᵀ / ‖·‖] until the generalized Rayleigh
    quotient [σ = X ×₁u₁ᵀ…×ₘuₘᵀ] stabilizes. *)

type result = {
  sigma : float;           (** The rank-1 weight (the canonical correlation). *)
  vectors : Vec.t array;   (** Unit vectors, one per mode. *)
  iterations : int;
  converged : bool;
  deadline : Robust.failure option;
      (** [Some (Deadline_exceeded _)] when a budget stopped the iteration at
          a sweep boundary; [sigma]/[vectors] are the best-so-far state. *)
}

val rank1 :
  ?max_iter:int ->
  ?tol:float ->
  ?seed:int ->
  ?budget:Budget.t ->
  ?sweeps_before:int ->
  Tensor.t ->
  result
(** Defaults: [max_iter = 200], [tol = 1e-10].  Initialized from the leading
    eigenvector of each unfolding Gram (deterministic); [seed] only matters
    for the degenerate all-zero tensor.  [budget] is probed once per sweep;
    [sweeps_before] offsets the sweep count reported to it, so a deflation
    caller ({!Tensor_power}) can account sweeps across components against one
    budget. *)
