(** Dense order-m tensors.

    The covariance tensor [C₁₂…ₘ ∈ R^{d₁×…×dₘ}] of paper Sec. 4.2 is the only
    large object in TCCA; it is stored flat with row-major strides (last mode
    fastest).  Mode-k matricization follows the Kolda–Bader convention (first
    remaining mode fastest), matching [Khatri_rao] so that CP-ALS can be
    written as in the literature. *)

type t = private {
  dims : int array;       (** [dims.(k)] = size of mode [k], 0-indexed. *)
  strides : int array;    (** Row-major strides; [strides.(m-1) = 1]. *)
  data : float array;
}

(** {1 Construction} *)

val create : int array -> t
(** Zero tensor; every dimension must be ≥ 1. *)

val init : int array -> (int array -> float) -> t
(** The index array passed to the callback is reused — copy it if kept. *)

val of_flat : int array -> float array -> t
(** Wrap a flat row-major array (copied). *)

val copy : t -> t

val outer : Vec.t array -> t
(** [outer [|x1; …; xm|]] is the rank-1 tensor [x1 ∘ x2 ∘ … ∘ xm]. *)

(** {1 Access} *)

val order : t -> int
val dim : t -> int -> int
val size : t -> int
(** Total number of entries. *)

val get : t -> int array -> float
val set : t -> int array -> float -> unit

(** {1 Algebra} *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val scale_in_place : float -> t -> unit
val map : (float -> float) -> t -> t

val add_outer_in_place : t -> float -> Vec.t array -> unit
(** [add_outer_in_place t w xs] adds [w · (x1 ∘ … ∘ xm)] — the streaming
    accumulation step of the covariance tensor, O(size) per instance and
    independent of how many instances follow. *)

val add_outer_slab_in_place : t -> float -> Vec.t array -> lo:int -> hi:int -> unit
(** Like {!add_outer_in_place} but restricted to mode-0 indices [lo .. hi-1];
    writes touch only the flat range [lo·strides.(0), hi·strides.(0)).  Used
    to partition the covariance-tensor accumulation across the [Parallel]
    domain pool with exclusive slab ownership (bitwise-deterministic). *)

val inner : t -> t -> float
(** Element-wise inner product [⟨A, B⟩]. *)

val frobenius : t -> float
(** [‖A‖_F] (paper Eq. 4.4). *)

val all_finite : t -> bool
(** [true] iff no entry is NaN or infinite (single pass, early exit) — the
    stage-boundary guard of the robust fit paths. *)

val mode_product : t -> int -> Mat.t -> t
(** [mode_product a k u] is [a ×ₖ u] for [u : J × dims.(k)] (paper Eq. 4.1). *)

val mode_products : t -> Mat.t array -> t
(** [a ×₁ u₁ ×₂ u₂ … ×ₘ uₘ] (paper Eq. 4.2); the array must have one matrix
    per mode. *)

val contract_vec : t -> int -> Vec.t -> t
(** [contract_vec a k h] is [a ×ₖ hᵀ] with the collapsed mode removed: an
    order-(m−1) tensor. *)

val multilinear_form : t -> Vec.t array -> float
(** [multilinear_form a [|h1; …; hm|] = a ×₁ h₁ᵀ ×₂ h₂ᵀ … ×ₘ hₘᵀ] — the
    high-order canonical correlation of Theorem 1. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
