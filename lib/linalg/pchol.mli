(** Rank-revealing pivoted partial Cholesky on an implicit kernel matrix.

    The Nyström scaling path of KTCCA needs a low-rank factor [F ∈ R^{N×ℓ}]
    with [K ≈ F Fᵀ] without ever materializing the N×N Gram matrix [K].
    Greedy pivoted Cholesky delivers exactly that from two queries — the
    diagonal and single columns on demand: at each step the largest residual
    diagonal entry is pivoted, its (residual) column becomes the next column
    of [F], and the residual diagonal shrinks monotonically.  After ℓ steps
    the approximation error is bounded by the residual trace,
    [‖K − FFᵀ‖_* ≤ tr(K) − ‖F‖²_F] for PSD [K], which is the stopping rule:
    stop when the residual trace falls below [tol · tr(K)] (or the rank cap
    is reached, or no positive pivot remains).

    Cost: ℓ oracle columns plus O(N·ℓ²) flops and O(N·ℓ) memory — never
    O(N²) anything.  The per-step residual update is row-partitioned across
    the [Parallel] pool (each row owns its own slot of [F] and of the
    residual diagonal, accumulating in ascending step order), so results are
    bitwise identical for every pool size. *)

type oracle = {
  o_dim : int;  (** N — the (square) kernel's side. *)
  o_diag : unit -> float array;
      (** The full diagonal [K[i,i]], length [o_dim] — one call, up front. *)
  o_column : int -> float array;
      (** [o_column j] is column [K[:,j]], length [o_dim].  Called at most
          once per achieved rank, with distinct pivot indices. *)
}

val oracle_of_mat : Mat.t -> oracle
(** Columns of an explicit symmetric matrix — for tests and for callers that
    already hold the Gram matrix.  Raises [Invalid_argument] when not
    square.  The matrix is kept by reference. *)

type info = {
  rank : int;  (** Achieved rank ℓ (columns of the returned factor). *)
  trace_initial : float;  (** tr(K) as reported by the diagonal oracle. *)
  trace_residual : float;
      (** Residual trace [Σᵢ max(dᵢ, 0)] at exit — the nuclear-norm bound on
          [‖K − FFᵀ‖]. *)
  pivots : int array;  (** The chosen pivot indices, in order. *)
}

val decompose :
  ?rank:int -> ?tol:float -> oracle -> (Mat.t * info, Robust.failure) result
(** [decompose ~rank ~tol o] returns the [N × ℓ] factor with [ℓ ≤ rank]
    (default [rank = N]) and [ℓ] minimal such that the residual trace is
    [≤ tol · tr(K)] (default [tol = 1e-6]) — or smaller if the residual
    diagonal runs out of positive pivots first (the kernel's numerical rank
    was below the cap).

    Failures: [Non_finite] when the diagonal or a fetched column carries
    NaN/Inf; [Not_positive_definite] when the diagonal has a decisively
    negative entry or no positive trace at all (the oracle is not a PSD
    kernel).  Ties in pivot selection break toward the lowest index, so the
    factorization is fully deterministic. *)
