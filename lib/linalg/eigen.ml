type t = { values : Vec.t; vectors : Mat.t }

let off_diagonal_norm a =
  let n, _ = Mat.dims a in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = Mat.get a i j in
      acc := !acc +. (2. *. v *. v)
    done
  done;
  sqrt !acc

type info = { sweeps : int; residual : float; converged : bool }

let decompose_info ?(max_sweeps = 64) ?(eps = 1e-12) a0 =
  let n, m = Mat.dims a0 in
  if n <> m then invalid_arg "Eigen.decompose: not square";
  (* Fault injection: a forced sweep cap turns every non-trivial input into a
     visible Not_converged, proving the callers' degradation paths. *)
  let max_sweeps = if Robust.Inject.(active Sweep_cap) then 0 else max_sweeps in
  (* Work on a symmetrized copy so tiny asymmetries from accumulation don't
     bias the rotations. *)
  let a = Mat.init n n (fun i j -> 0.5 *. (Mat.get a0 i j +. Mat.get a0 j i)) in
  let v = Mat.identity n in
  let scale = Float.max (Mat.max_abs a) 1e-300 in
  let threshold = eps *. scale *. float_of_int n in
  let sweep = ref 0 in
  let residual = ref (off_diagonal_norm a) in
  while !residual > threshold && !sweep < max_sweeps do
    incr sweep;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Mat.get a p q in
        if Float.abs apq > eps *. scale /. 1e3 then begin
          let app = Mat.get a p p and aqq = Mat.get a q q in
          (* Stable rotation computation (Golub & Van Loan §8.4). *)
          let theta = (aqq -. app) /. (2. *. apq) in
          let t =
            let sign = if theta >= 0. then 1. else -1. in
            sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
          in
          let c = 1. /. sqrt ((t *. t) +. 1.) in
          let s = t *. c in
          (* A <- Jᵀ A J on rows/cols p,q. *)
          for k = 0 to n - 1 do
            let akp = Mat.get a k p and akq = Mat.get a k q in
            Mat.set a k p ((c *. akp) -. (s *. akq));
            Mat.set a k q ((s *. akp) +. (c *. akq))
          done;
          for k = 0 to n - 1 do
            let apk = Mat.get a p k and aqk = Mat.get a q k in
            Mat.set a p k ((c *. apk) -. (s *. aqk));
            Mat.set a q k ((s *. apk) +. (c *. aqk))
          done;
          for k = 0 to n - 1 do
            let vkp = Mat.get v k p and vkq = Mat.get v k q in
            Mat.set v k p ((c *. vkp) -. (s *. vkq));
            Mat.set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done;
    residual := off_diagonal_norm a
  done;
  (* Sort descending by eigenvalue, permuting eigenvector columns along. *)
  let order = Array.init n (fun i -> i) in
  let diag = Mat.diag a in
  Array.sort (fun i j -> compare diag.(j) diag.(i)) order;
  let values = Array.map (fun i -> diag.(i)) order in
  let vectors = Mat.select_cols v order in
  (* [<=] (not [<]) so a NaN residual — non-finite input — reads as not
     converged rather than silently fine. *)
  ( { values; vectors },
    { sweeps = !sweep; residual = !residual; converged = !residual <= threshold } )

let decompose ?max_sweeps ?eps a0 =
  let eig, info = decompose_info ?max_sweeps ?eps a0 in
  if not info.converged then
    Robust.warnf "Eigen.decompose: sweep cap hit after %d sweeps (residual %g)" info.sweeps
      info.residual;
  eig

let decompose_checked ?(stage = "eigen") ?max_sweeps ?eps a0 =
  if not (Mat.all_finite a0) then
    Error (Robust.Non_finite { stage; where = "input matrix" })
  else begin
    let eig, info = decompose_info ?max_sweeps ?eps a0 in
    if not info.converged then
      Error (Robust.Not_converged { stage; sweeps = info.sweeps; residual = info.residual })
    else Ok eig
  end

let top_k { vectors; values } k =
  if k > Array.length values then invalid_arg "Eigen.top_k: k too large";
  Mat.sub_cols vectors 0 k

let reconstruct { values; vectors } =
  let scaled = Mat.init (fst (Mat.dims vectors)) (Array.length values)
      (fun i j -> Mat.get vectors i j *. values.(j))
  in
  Mat.mul_nt scaled vectors
