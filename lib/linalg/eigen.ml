type t = { values : Vec.t; vectors : Mat.t }
type info = { sweeps : int; residual : float; converged : bool }
type method_ = [ `Tridiagonal | `Jacobi ]

(* TCCA_EIG selects the default algorithm: "jacobi" restores the legacy
   cyclic-Jacobi numerics everywhere, anything else (or unset) picks the
   two-stage tridiagonal solver.  Read once — the method is part of a run's
   determinism contract, so it must not flip mid-process. *)
let method_of_env = function
  | Some s when String.lowercase_ascii (String.trim s) = "jacobi" -> `Jacobi
  | Some _ | None -> `Tridiagonal

let default_method_memo = lazy (method_of_env (Sys.getenv_opt "TCCA_EIG"))
let default_method () = Lazy.force default_method_memo

let off_diagonal_norm a =
  let n, _ = Mat.dims a in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = Mat.get a i j in
      acc := !acc +. (2. *. v *. v)
    done
  done;
  sqrt !acc

(* Sort descending by eigenvalue, permuting eigenvector columns along. *)
let sorted_result n diag vectors =
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare diag.(j) diag.(i)) order;
  { values = Array.map (fun i -> diag.(i)) order; vectors = Mat.select_cols vectors order }

(* ------------------------------------------------------------------ *)
(* Reference path: cyclic Jacobi.  O(d³) per sweep × 6–10 sweeps, but
   unconditionally stable and rotation-exact — kept as the oracle the
   tridiagonal path is property-tested against, and selectable via
   [`Jacobi] / TCCA_EIG=jacobi.                                        *)

let jacobi_info ~max_sweeps ~eps a0 =
  let n, _ = Mat.dims a0 in
  (* Work on a symmetrized copy so tiny asymmetries from accumulation don't
     bias the rotations. *)
  let a = Mat.init n n (fun i j -> 0.5 *. (Mat.get a0 i j +. Mat.get a0 j i)) in
  let v = Mat.identity n in
  let scale = Float.max (Mat.max_abs a) 1e-300 in
  let threshold = eps *. scale *. float_of_int n in
  let sweep = ref 0 in
  let residual = ref (off_diagonal_norm a) in
  while !residual > threshold && !sweep < max_sweeps do
    incr sweep;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Mat.get a p q in
        if Float.abs apq > eps *. scale /. 1e3 then begin
          let app = Mat.get a p p and aqq = Mat.get a q q in
          (* Stable rotation computation (Golub & Van Loan §8.4). *)
          let theta = (aqq -. app) /. (2. *. apq) in
          let t =
            let sign = if theta >= 0. then 1. else -1. in
            sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
          in
          let c = 1. /. sqrt ((t *. t) +. 1.) in
          let s = t *. c in
          (* A <- Jᵀ A J on rows/cols p,q. *)
          for k = 0 to n - 1 do
            let akp = Mat.get a k p and akq = Mat.get a k q in
            Mat.set a k p ((c *. akp) -. (s *. akq));
            Mat.set a k q ((s *. akp) +. (c *. akq))
          done;
          for k = 0 to n - 1 do
            let apk = Mat.get a p k and aqk = Mat.get a q k in
            Mat.set a p k ((c *. apk) -. (s *. aqk));
            Mat.set a q k ((s *. apk) +. (c *. aqk))
          done;
          for k = 0 to n - 1 do
            let vkp = Mat.get v k p and vkq = Mat.get v k q in
            Mat.set v k p ((c *. vkp) -. (s *. vkq));
            Mat.set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done;
    residual := off_diagonal_norm a
  done;
  (* [<=] (not [<]) so a NaN residual — non-finite input — reads as not
     converged rather than silently fine. *)
  ( sorted_result n (Mat.diag a) v,
    { sweeps = !sweep; residual = !residual; converged = !residual <= threshold } )

(* ------------------------------------------------------------------ *)
(* Fast path: classical two-stage solver.
   Stage 1 — Householder tridiagonalization (tred2-style): n−2 reflectors,
   each a symmetric matrix-vector product plus a rank-2 update
   A ← A − v wᵀ − w vᵀ on the shrinking lower triangle; both are
   row-banded across the [Parallel] pool with exclusive row ownership and
   sequential-order accumulation per cell, so the reduction is bitwise
   identical for any pool size.  The reflectors are accumulated into the
   full orthogonal basis Q with the same row/column-ownership discipline.
   Stage 2 — implicit-shift QL iteration (tql2-style) on the tridiagonal
   (d, e): Wilkinson-style shifts from the leading 2×2, deflation on
   negligible e entries, typically 1–3 iterations per eigenvalue.  Each QL
   step's Givens sequence is computed as scalars first and then replayed
   against the eigenvector rows in a pool-banded pass — every row applies
   the identical rotation list in the identical order, preserving bitwise
   determinism.
   Total ≈ (4/3)n³ (reduce) + 2n³ (accumulate + rotate) flops, versus
   Jacobi's ≈ 6n³ per sweep × 6–10 sweeps.                               *)

let tridiagonal_info ~max_iter ~eps a0 =
  let n, _ = Mat.dims a0 in
  (* Symmetrized flat working copy; [z] is progressively overwritten and
     ends as the eigenvector matrix (columns aligned with [d]). *)
  let z = Array.make (max 1 (n * n)) 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      z.((i * n) + j) <- 0.5 *. (Mat.get a0 i j +. Mat.get a0 j i)
    done
  done;
  let d = Array.make (max 1 n) 0. and e = Array.make (max 1 n) 0. in
  (* --- Stage 1: reduce to tridiagonal, reflectors stored in place. --- *)
  for i = n - 1 downto 1 do
    let l = i - 1 in
    let rowi = i * n in
    let h = ref 0. in
    if l > 0 then begin
      let scale = ref 0. in
      for k = 0 to l do
        scale := !scale +. Float.abs z.(rowi + k)
      done;
      if !scale = 0. then e.(i) <- z.(rowi + l)
      else begin
        for k = 0 to l do
          let v = z.(rowi + k) /. !scale in
          z.(rowi + k) <- v;
          h := !h +. (v *. v)
        done;
        let f = z.(rowi + l) in
        let g = if f >= 0. then -.sqrt !h else sqrt !h in
        e.(i) <- !scale *. g;
        h := !h -. (f *. g);
        z.(rowi + l) <- f -. g;
        let hv = !h in
        (* p = A v / h into e.(0..l).  Row j owns e.(j) and its stash of
           v/h in column i; the symmetric product reads row j's own prefix
           and the strictly-lower column j — neither is written this pass. *)
        Parallel.parallel_for ~cost:((l + 1) * (l + 1)) ~n:(l + 1) (fun lo hi ->
            for j = lo to hi - 1 do
              let rowj = j * n in
              z.(rowj + i) <- z.(rowi + j) /. hv;
              let g = ref 0. in
              for k = 0 to j do
                g := !g +. (Array.unsafe_get z (rowj + k) *. Array.unsafe_get z (rowi + k))
              done;
              for k = j + 1 to l do
                g := !g +. (Array.unsafe_get z ((k * n) + j) *. Array.unsafe_get z (rowi + k))
              done;
              e.(j) <- !g /. hv
            done);
        let f = ref 0. in
        for j = 0 to l do
          f := !f +. (e.(j) *. z.(rowi + j))
        done;
        (* w = p − (vᵀp / 2h) v, then the GEMM-shaped rank-2 update
           A ← A − v wᵀ − w vᵀ on the lower triangle, one row per cell
           owner — each cell is touched exactly once per reflector. *)
        let hh = !f /. (hv +. hv) in
        for j = 0 to l do
          e.(j) <- e.(j) -. (hh *. z.(rowi + j))
        done;
        Parallel.parallel_for ~cost:((l + 1) * (l + 1)) ~n:(l + 1) (fun lo hi ->
            for j = lo to hi - 1 do
              let fv = Array.unsafe_get z (rowi + j) and gw = Array.unsafe_get e j in
              let rowj = j * n in
              for k = 0 to j do
                Array.unsafe_set z (rowj + k)
                  (Array.unsafe_get z (rowj + k)
                  -. ((fv *. Array.unsafe_get e k) +. (gw *. Array.unsafe_get z (rowi + k))))
              done
            done)
      end
    end
    else if n > 1 then e.(i) <- z.(rowi + l);
    d.(i) <- !h
  done;
  (* --- Accumulate the reflectors into the orthogonal basis Q. --- *)
  if n > 0 then begin
    d.(0) <- 0.;
    e.(0) <- 0.
  end;
  for i = 0 to n - 1 do
    let rowi = i * n in
    if d.(i) <> 0. then
      (* Q₀..ᵢ₋₁ ← Q₀..ᵢ₋₁ (I − β v vᵀ): column j owns its strided writes;
         row i and column i are read-only until the zeroing below. *)
      Parallel.parallel_for ~cost:(2 * i * i) ~n:i (fun lo hi ->
          for j = lo to hi - 1 do
            let g = ref 0. in
            for k = 0 to i - 1 do
              g := !g +. (Array.unsafe_get z (rowi + k) *. Array.unsafe_get z ((k * n) + j))
            done;
            let g = !g in
            for k = 0 to i - 1 do
              let kj = (k * n) + j in
              Array.unsafe_set z kj
                (Array.unsafe_get z kj -. (g *. Array.unsafe_get z ((k * n) + i)))
            done
          done);
    d.(i) <- z.(rowi + i);
    z.(rowi + i) <- 1.;
    for j = 0 to i - 1 do
      z.((j * n) + i) <- 0.;
      z.(rowi + j) <- 0.
    done
  done;
  (* --- Stage 2: implicit-shift QL with deflation on (d, e). --- *)
  for i = 1 to n - 1 do
    e.(i - 1) <- e.(i)
  done;
  if n > 0 then e.(n - 1) <- 0.;
  let total_iter = ref 0 in
  let all_converged = ref true in
  let cs = Array.make (max 1 n) 0.
  and sn = Array.make (max 1 n) 0.
  and ridx = Array.make (max 1 n) 0 in
  for l = 0 to n - 1 do
    let iter = ref 0 in
    let finished = ref false in
    while not !finished do
      (* First negligible off-diagonal at or after l (relative test, so the
         threshold follows the local eigenvalue scale; a NaN entry never
         tests negligible and runs the caps instead of looping). *)
      let m = ref l in
      let scanning = ref true in
      while !scanning && !m < n - 1 do
        let dd = Float.abs d.(!m) +. Float.abs d.(!m + 1) in
        if Float.abs e.(!m) <= eps *. dd then scanning := false else incr m
      done;
      let m = !m in
      if m = l then finished := true
      else if !iter >= max_iter then begin
        all_converged := false;
        finished := true
      end
      else begin
        incr iter;
        incr total_iter;
        (* Shift from the leading 2×2 of the unreduced block. *)
        let g0 = (d.(l + 1) -. d.(l)) /. (2. *. e.(l)) in
        let r0 = Float.hypot g0 1. in
        let g = ref (d.(m) -. d.(l) +. (e.(l) /. (if g0 >= 0. then g0 +. r0 else g0 -. r0))) in
        let s = ref 1. and c = ref 1. and p = ref 0. in
        let nrot = ref 0 in
        let broke = ref false in
        let i = ref (m - 1) in
        while (not !broke) && !i >= l do
          let f = !s *. e.(!i) and b = !c *. e.(!i) in
          let r = Float.hypot f !g in
          e.(!i + 1) <- r;
          if r = 0. then begin
            (* Premature deflation mid-chase: drop the shift and restart. *)
            d.(!i + 1) <- d.(!i + 1) -. !p;
            e.(m) <- 0.;
            broke := true
          end
          else begin
            s := f /. r;
            c := !g /. r;
            let gg = d.(!i + 1) -. !p in
            let rr = ((d.(!i) -. gg) *. !s) +. (2. *. !c *. b) in
            p := !s *. rr;
            d.(!i + 1) <- gg +. !p;
            g := (!c *. rr) -. b;
            cs.(!nrot) <- !c;
            sn.(!nrot) <- !s;
            ridx.(!nrot) <- !i;
            incr nrot;
            decr i
          end
        done;
        (* Replay the Givens sequence against the eigenvector rows,
           pool-banded: every row applies the identical scalar list in the
           identical order, so chunking cannot change the arithmetic. *)
        let nrot = !nrot in
        if nrot > 0 then
          Parallel.parallel_for ~cost:(n * nrot) ~n (fun lo hi ->
              for k = lo to hi - 1 do
                let rowk = k * n in
                for q = 0 to nrot - 1 do
                  let i = Array.unsafe_get ridx q in
                  let cq = Array.unsafe_get cs q and sq = Array.unsafe_get sn q in
                  let zi = Array.unsafe_get z (rowk + i) in
                  let zi1 = Array.unsafe_get z (rowk + i + 1) in
                  Array.unsafe_set z (rowk + i + 1) ((sq *. zi) +. (cq *. zi1));
                  Array.unsafe_set z (rowk + i) ((cq *. zi) -. (sq *. zi1))
                done
              done);
        if not !broke then begin
          d.(l) <- d.(l) -. !p;
          e.(l) <- !g;
          e.(m) <- 0.
        end
      end
    done
  done;
  let residual = ref 0. in
  for k = 0 to n - 2 do
    residual := !residual +. (2. *. e.(k) *. e.(k))
  done;
  let residual = sqrt !residual in
  let vectors =
    if n = 0 then Mat.create 0 0 else Mat.unsafe_of_flat ~rows:n ~cols:n z
  in
  let d = if n = 0 then [||] else d in
  ( sorted_result n d vectors,
    (* A non-finite residual (NaN/Inf input) must read as not converged even
       when every block hit its deflation test vacuously. *)
    { sweeps = !total_iter;
      residual;
      converged = !all_converged && Float.is_finite residual } )

(* ------------------------------------------------------------------ *)

let decompose_info ?method_ ?(max_sweeps = 64) ?(eps = 1e-12) a0 =
  let n, m = Mat.dims a0 in
  if n <> m then invalid_arg "Eigen.decompose: not square";
  (* Fault injection: a forced iteration cap turns every non-trivial input
     into a visible Not_converged, proving the callers' degradation paths —
     for either method. *)
  let max_sweeps = if Robust.Inject.(active Sweep_cap) then 0 else max_sweeps in
  match (match method_ with Some m -> m | None -> default_method ()) with
  | `Jacobi -> jacobi_info ~max_sweeps ~eps a0
  | `Tridiagonal -> tridiagonal_info ~max_iter:max_sweeps ~eps a0

let decompose ?method_ ?max_sweeps ?eps a0 =
  let eig, info = decompose_info ?method_ ?max_sweeps ?eps a0 in
  if not info.converged then
    Robust.warnf "Eigen.decompose: sweep cap hit after %d sweeps (residual %g)" info.sweeps
      info.residual;
  eig

let decompose_checked ?(stage = "eigen") ?method_ ?max_sweeps ?eps a0 =
  if not (Mat.all_finite a0) then
    Error (Robust.Non_finite { stage; where = "input matrix" })
  else begin
    let eig, info = decompose_info ?method_ ?max_sweeps ?eps a0 in
    if not info.converged then
      Error (Robust.Not_converged { stage; sweeps = info.sweeps; residual = info.residual })
    else Ok eig
  end

let top_k { vectors; values } k =
  if k > Array.length values then invalid_arg "Eigen.top_k: k too large";
  Mat.sub_cols vectors 0 k

let reconstruct { values; vectors } =
  let scaled = Mat.init (fst (Mat.dims vectors)) (Array.length values)
      (fun i j -> Mat.get vectors i j *. values.(j))
  in
  Mat.mul_nt scaled vectors
