(** Thin singular value decomposition: one-sided Jacobi, with a QR + eig
    route for tall matrices.

    CCA reduces to the SVD of the whitened cross-covariance matrix
    [C̃₁₁^{-1/2} C₁₂ C̃₂₂^{-1/2}] (and KCCA to its kernel analogue); one-sided
    Jacobi is simple, backward-stable and accurate for small singular values,
    which is exactly what picking the top canonical directions needs.  For
    genuinely tall inputs ([m ≥ 3n] after orientation), the default route is
    a thin Householder QR followed by the symmetric eigendecomposition of
    [RᵀR] — [O(mn²)] once instead of per Jacobi sweep — with singular values
    recovered as [σⱼ = ‖A vⱼ‖] to undo the Gram product's conditioning
    squaring. *)

type t = {
  u : Mat.t;      (** [m × k] left singular vectors (columns), [k = min m n]. *)
  sigma : Vec.t;  (** Singular values in descending order, length [k]. *)
  v : Mat.t;      (** [n × k] right singular vectors (columns). *)
}

type info = {
  sweeps : int;      (** Jacobi sweeps actually run, or the inner
                         eigensolver's iteration count on the QR + eig
                         route. *)
  residual : float;  (** Jacobi: worst remaining normalized column-pair inner
                         product [max |⟨wp,wq⟩|/(‖wp‖‖wq‖)], measured only
                         when the cap was hit, [0.] otherwise.  QR + eig: the
                         inner {!Eigen.info} residual. *)
  converged : bool;  (** Whether the chosen route converged under its
                         iteration cap. *)
}

type method_ = [ `Auto | `Jacobi | `Qr_eig ]
(** [`Auto] (default) routes tall inputs ([max_dim ≥ 3 · min_dim]) through
    QR + symmetric eig and everything else through one-sided Jacobi — unless
    [TCCA_EIG=jacobi] pinned the legacy numerics process-wide, in which case
    every shape stays on Jacobi.  [`Jacobi] and [`Qr_eig] force a route
    ([`Qr_eig] works for any shape; the wide case is handled by transposing
    first). *)

val decompose : ?method_:method_ -> ?max_sweeps:int -> ?eps:float -> Mat.t -> t
(** Thin SVD of any rectangular matrix.  Hitting the sweep cap logs a
    [Robust] warning; use {!decompose_info} or {!decompose_checked} to
    observe it structurally. *)

val decompose_info :
  ?method_:method_ -> ?max_sweeps:int -> ?eps:float -> Mat.t -> t * info
(** Same computation, plus the convergence record. *)

val decompose_checked :
  ?stage:string ->
  ?method_:method_ ->
  ?max_sweeps:int ->
  ?eps:float ->
  Mat.t ->
  (t, Robust.failure) result
(** Guarded variant: [Error Non_finite] on a NaN/Inf input, [Error
    Not_converged] when the iteration cap is hit.  [stage] defaults to
    ["svd"]. *)

val randomized :
  ?oversample:int -> ?power_iters:int -> ?seed:int -> rank:int -> Mat.t -> t * info
(** Halko-style randomized truncated SVD: a Gaussian test matrix (drawn from
    the deterministic [Rng] seeded by [seed], default [0x51ED]) sketches the
    range, [power_iters] (default 2) power iterations with re-orthonormalized
    half-steps sharpen it against slowly-decaying spectra, and the small
    [(rank+oversample)]-dimensional problem is solved exactly (QB → symmetric
    eig of [BBᵀ], [σⱼ = ‖Bᵀwⱼ‖]).  Unlike {!decompose} this returns only the
    top [min rank (min m n)] triplets — O(m·n·(rank+oversample)) per pass
    instead of O(m·n·min(m,n)).  [oversample] defaults to 8.  For a matrix
    of exact rank ≤ [rank] the result matches the exact routes to roundoff;
    in general the tail beyond the sketch is discarded, not approximated.
    The [info] convergence record is the inner eigensolver's.  Fully
    deterministic (and bitwise pool-size invariant) for a fixed seed. *)

val truncated : t -> int -> Mat.t * Vec.t * Mat.t
(** [truncated svd r] keeps the top [r] triplets: [(u_r, sigma_r, v_r)]. *)

val reconstruct : t -> Mat.t
(** [U diag(σ) Vᵀ] — for testing. *)

val nuclear_norm : t -> float
val rank : ?tol:float -> t -> int
(** Numerical rank: count of [σᵢ > tol · σ₀] (default [tol = 1e-10]). *)
