(** Thin singular value decomposition by the one-sided Jacobi method.

    CCA reduces to the SVD of the whitened cross-covariance matrix
    [C̃₁₁^{-1/2} C₁₂ C̃₂₂^{-1/2}] (and KCCA to its kernel analogue); one-sided
    Jacobi is simple, backward-stable and accurate for small singular values,
    which is exactly what picking the top canonical directions needs. *)

type t = {
  u : Mat.t;      (** [m × k] left singular vectors (columns), [k = min m n]. *)
  sigma : Vec.t;  (** Singular values in descending order, length [k]. *)
  v : Mat.t;      (** [n × k] right singular vectors (columns). *)
}

type info = {
  sweeps : int;      (** Jacobi sweeps actually run. *)
  residual : float;  (** Worst remaining normalized column-pair inner product
                         [max |⟨wp,wq⟩|/(‖wp‖‖wq‖)]; measured only when the
                         cap was hit, [0.] otherwise. *)
  converged : bool;  (** Whether a full sweep completed with no rotations
                         before [max_sweeps] ran out. *)
}

val decompose : ?max_sweeps:int -> ?eps:float -> Mat.t -> t
(** Thin SVD of any rectangular matrix.  Hitting the sweep cap logs a
    [Robust] warning; use {!decompose_info} or {!decompose_checked} to
    observe it structurally. *)

val decompose_info : ?max_sweeps:int -> ?eps:float -> Mat.t -> t * info
(** Same computation, plus the convergence record. *)

val decompose_checked :
  ?stage:string -> ?max_sweeps:int -> ?eps:float -> Mat.t -> (t, Robust.failure) result
(** Guarded variant: [Error Non_finite] on a NaN/Inf input, [Error
    Not_converged] when the sweep cap is hit.  [stage] defaults to ["svd"]. *)

val truncated : t -> int -> Mat.t * Vec.t * Mat.t
(** [truncated svd r] keeps the top [r] triplets: [(u_r, sigma_r, v_r)]. *)

val reconstruct : t -> Mat.t
(** [U diag(σ) Vᵀ] — for testing. *)

val nuclear_norm : t -> float
val rank : ?tol:float -> t -> int
(** Numerical rank: count of [σᵢ > tol · σ₀] (default [tol = 1e-10]). *)
