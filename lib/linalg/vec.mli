(** Dense vectors as plain [float array]s.

    Thin functional layer; everything allocates a fresh result unless the name
    ends in [_in_place].  Lengths are checked and mismatches raise
    [Invalid_argument]. *)

type t = float array

val create : int -> t
(** Zero vector. *)

val init : int -> (int -> float) -> t
val of_list : float list -> t
val copy : t -> t
val dim : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val axpy : float -> t -> t -> t
(** [axpy a x y = a*x + y]. *)

val axpy_in_place : float -> t -> t -> unit
(** [axpy_in_place a x y] sets [y <- a*x + y]. *)

val mul_elem : t -> t -> t
(** Element-wise (Hadamard) product — the [z1 ⊙ z2] of the paper's Eq. (4.5). *)

val dot : t -> t -> float
val norm : t -> float
(** Euclidean norm. *)

val norm1 : t -> float
val norm_inf : t -> float

val normalize : t -> t
(** Unit-norm copy; the zero vector is returned unchanged. *)

val sum : t -> float
val mean : t -> float

val center : t -> t
(** Subtract the mean. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

val outer : t -> t -> float array array
(** [outer x y] is the rank-1 matrix [x yᵀ] as rows. *)

val equal : ?eps:float -> t -> t -> bool
(** Component-wise comparison with absolute tolerance [eps] (default 1e-9). *)

val all_finite : t -> bool
(** [true] iff no component is NaN or infinite.  One linear pass with early
    exit — cheap enough to guard every stage boundary of a fit. *)

val pp : Format.formatter -> t -> unit
