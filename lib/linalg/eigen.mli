(** Symmetric eigendecomposition by the cyclic Jacobi method.

    Every covariance and Gram matrix in the paper's pipeline is symmetric, and
    whitening ([C̃pp^{-1/2}]) needs the full spectrum with an orthogonal basis.
    Jacobi delivers both with unconditional stability at the d ≤ a-few-hundred
    sizes of this reproduction. *)

type t = {
  values : Vec.t;   (** Eigenvalues in descending order. *)
  vectors : Mat.t;  (** Orthonormal eigenvectors as columns, aligned with [values]. *)
}

type info = {
  sweeps : int;      (** Jacobi sweeps actually run. *)
  residual : float;  (** Final off-diagonal Frobenius norm. *)
  converged : bool;  (** Whether [residual] fell under the threshold — false
                         when the sweep cap was hit (or the input carried
                         NaNs, which make the residual NaN). *)
}

val decompose : ?max_sweeps:int -> ?eps:float -> Mat.t -> t
(** [decompose a] for symmetric [a].  [eps] (default [1e-12]) is the
    off-diagonal Frobenius threshold relative to the matrix norm;
    [max_sweeps] defaults to 64.  Raises [Invalid_argument] if [a] is not
    square.  Both triangles are read: the input is symmetrized as
    [(a + aᵀ)/2] first, so tiny asymmetries from accumulation are averaged
    out rather than ignored (an asymmetric input is decomposed as its
    symmetric part).  Hitting the sweep cap logs a [Robust] warning; use
    {!decompose_info} or {!decompose_checked} to observe it structurally. *)

val decompose_info : ?max_sweeps:int -> ?eps:float -> Mat.t -> t * info
(** Same computation, plus the convergence record — the legacy-API view of
    the sweep cap. *)

val decompose_checked :
  ?stage:string -> ?max_sweeps:int -> ?eps:float -> Mat.t -> (t, Robust.failure) result
(** Guarded variant: [Error Non_finite] on a NaN/Inf input, [Error
    Not_converged] when the sweep cap is hit.  [stage] (default ["eigen"])
    labels the failure for attribution. *)

val top_k : t -> int -> Mat.t
(** Eigenvectors of the [k] largest eigenvalues, as columns. *)

val reconstruct : t -> Mat.t
(** [V diag(λ) Vᵀ] — for testing. *)
