(** Symmetric eigendecomposition by the cyclic Jacobi method.

    Every covariance and Gram matrix in the paper's pipeline is symmetric, and
    whitening ([C̃pp^{-1/2}]) needs the full spectrum with an orthogonal basis.
    Jacobi delivers both with unconditional stability at the d ≤ a-few-hundred
    sizes of this reproduction. *)

type t = {
  values : Vec.t;   (** Eigenvalues in descending order. *)
  vectors : Mat.t;  (** Orthonormal eigenvectors as columns, aligned with [values]. *)
}

val decompose : ?max_sweeps:int -> ?eps:float -> Mat.t -> t
(** [decompose a] for symmetric [a].  [eps] (default [1e-12]) is the
    off-diagonal Frobenius threshold relative to the matrix norm;
    [max_sweeps] defaults to 64.  Raises [Invalid_argument] if [a] is not
    square.  Both triangles are read: the input is symmetrized as
    [(a + aᵀ)/2] first, so tiny asymmetries from accumulation are averaged
    out rather than ignored (an asymmetric input is decomposed as its
    symmetric part). *)

val top_k : t -> int -> Mat.t
(** Eigenvectors of the [k] largest eigenvalues, as columns. *)

val reconstruct : t -> Mat.t
(** [V diag(λ) Vᵀ] — for testing. *)
