(** Symmetric eigendecomposition: two-stage tridiagonal solver with a cyclic
    Jacobi reference path.

    Every covariance and Gram matrix in the paper's pipeline is symmetric, and
    whitening ([C̃pp^{-1/2}]) needs the full spectrum with an orthogonal basis.
    The default solver reduces to tridiagonal form with Householder
    reflectors (rank-2 updates banded across the [Parallel] pool) and then
    runs implicit-shift QL with Wilkinson shifts and deflation — ≈3n³ flops
    total versus Jacobi's ≈6n³ *per sweep* × 6–10 sweeps.  Cyclic Jacobi is
    retained as the reference oracle and selectable per call or process-wide.

    Determinism: for a fixed method, results are bitwise identical across
    [TCCA_DOMAINS] pool sizes — all banded loops have exclusive row/column
    ownership and fixed per-cell accumulation order.  The two methods agree
    only to numerical tolerance, not bitwise. *)

type t = {
  values : Vec.t;   (** Eigenvalues in descending order. *)
  vectors : Mat.t;  (** Orthonormal eigenvectors as columns, aligned with [values]. *)
}

type info = {
  sweeps : int;      (** Jacobi sweeps, or QL iterations summed over all
                         eigenvalues for the tridiagonal method. *)
  residual : float;  (** Remaining off-diagonal Frobenius norm (of the full
                         matrix for Jacobi, of the tridiagonal's
                         sub-diagonal for QL). *)
  converged : bool;  (** Whether every eigenvalue converged under the
                         iteration cap — false on a cap hit, and on inputs
                         carrying NaNs (which poison the residual). *)
}

type method_ = [ `Tridiagonal | `Jacobi ]
(** [`Tridiagonal] — Householder reduction + implicit-shift QL (fast path).
    [`Jacobi] — cyclic Jacobi rotations (reference oracle; preferable when
    rotation-exact orthogonality on tiny matrices matters more than speed,
    or for bisecting a numerics regression against the legacy behavior). *)

val default_method : unit -> method_
(** Process-wide default: [`Jacobi] iff the [TCCA_EIG] environment variable
    is ["jacobi"] (case-insensitive), else [`Tridiagonal].  Read once and
    memoized — the method is part of a run's determinism contract. *)

val method_of_env : string option -> method_
(** Pure parser behind {!default_method}, exposed for tests. *)

val decompose : ?method_:method_ -> ?max_sweeps:int -> ?eps:float -> Mat.t -> t
(** [decompose a] for symmetric [a].  [method_] defaults to
    {!default_method}.  [eps] (default [1e-12]) is the convergence
    threshold: relative off-diagonal Frobenius norm for Jacobi, relative
    per-entry deflation test for QL.  [max_sweeps] (default 64) caps Jacobi
    sweeps, or QL iterations per eigenvalue.  Raises [Invalid_argument] if
    [a] is not square.  Both triangles are read: the input is symmetrized as
    [(a + aᵀ)/2] first, so tiny asymmetries from accumulation are averaged
    out rather than ignored (an asymmetric input is decomposed as its
    symmetric part).  Hitting the iteration cap logs a [Robust] warning; use
    {!decompose_info} or {!decompose_checked} to observe it structurally. *)

val decompose_info :
  ?method_:method_ -> ?max_sweeps:int -> ?eps:float -> Mat.t -> t * info
(** Same computation, plus the convergence record — the legacy-API view of
    the iteration cap. *)

val decompose_checked :
  ?stage:string ->
  ?method_:method_ ->
  ?max_sweeps:int ->
  ?eps:float ->
  Mat.t ->
  (t, Robust.failure) result
(** Guarded variant: [Error Non_finite] on a NaN/Inf input, [Error
    Not_converged] when the iteration cap is hit.  [stage] (default
    ["eigen"]) labels the failure for attribution. *)

val top_k : t -> int -> Mat.t
(** Eigenvectors of the [k] largest eigenvalues, as columns. *)

val reconstruct : t -> Mat.t
(** [V diag(λ) Vᵀ] — for testing. *)
