(** Matrix functions on symmetric positive-(semi)definite inputs.

    The central one for the paper is the inverse square root: TCCA whitens the
    covariance tensor with [C̃pp^{-1/2}] (Eq. 4.9), computed spectrally as
    [V diag(λᵢ^{-1/2}) Vᵀ].

    Every spectral function takes an optional [?method_] forwarded to
    {!Eigen.decompose}, defaulting to {!Eigen.default_method} — so the
    whitening hot path rides the two-stage tridiagonal solver unless
    [TCCA_EIG=jacobi] pins the legacy numerics. *)

val sqrt_psd : ?method_:Eigen.method_ -> Mat.t -> Mat.t
(** Symmetric square root; negative eigenvalues from roundoff are clamped
    to 0. *)

val inv_sqrt_psd : ?floor:float -> ?method_:Eigen.method_ -> Mat.t -> Mat.t
(** Symmetric inverse square root.  Eigenvalues below [floor] (default
    [1e-12] × λ_max) are treated as [floor], making the result a regularized
    pseudo-inverse square root for rank-deficient inputs. *)

val inv_sqrt_psd_checked :
  ?floor:float ->
  ?shift:float ->
  ?method_:Eigen.method_ ->
  stage:string ->
  Mat.t ->
  (Mat.t * int, Robust.failure) result
(** Guarded whitener: same arithmetic as {!inv_sqrt_psd} (bit-for-bit), but
    the eigensolver iteration cap and NaN/Inf inputs surface as [Error]
    instead of a silently wrong matrix.  Returns the whitener together with
    the numerical rank of [a − shift·I] — pass the ridge already added to
    [a] as [shift] (default [0.]) so rank deficiency of the unregularized
    covariance is reported (eigenvalues within [1e-9·λmax] of the shift
    don't count).  [stage] labels any failure for attribution. *)

val inv_psd : ?floor:float -> ?method_:Eigen.method_ -> Mat.t -> Mat.t
(** Symmetric (pseudo-)inverse through the spectrum. *)

val pinv : ?tol:float -> Mat.t -> Mat.t
(** Moore–Penrose pseudo-inverse of any rectangular matrix via SVD;
    singular values below [tol·σ₀] (default [1e-12]) are dropped. *)

val apply_spectral : ?method_:Eigen.method_ -> (float -> float) -> Mat.t -> Mat.t
(** [apply_spectral f a = V diag(f λᵢ) Vᵀ] for symmetric [a]. *)
