type t = [ `None | `Lw | `Oas | `Fixed of float ]

let clip01 v = if v < 0. then 0. else if v > 1. then 1. else v

(* ‖C‖²_F and tr(C), shared by both estimators. *)
let frob2 c =
  let f = Mat.frobenius c in
  f *. f

let lw_intensity ~x c =
  let d, n = Mat.dims x in
  if fst (Mat.dims c) <> d then invalid_arg "Shrink.lw_intensity: dimension mismatch";
  if n = 0 then invalid_arg "Shrink.lw_intensity: no instances";
  let df = float_of_int d and nf = float_of_int n in
  let mu = Mat.trace c /. df in
  (* δ² = ‖C − μI‖²_F / d = (‖C‖²_F − d·μ²)/d. *)
  let c2 = frob2 c in
  let delta2 = Float.max 0. ((c2 -. (df *. mu *. mu)) /. df) in
  if delta2 <= 0. then 1.
  else begin
    (* Σₙ‖xₙ‖⁴ over instance columns. *)
    let quart = ref 0. in
    for j = 0 to n - 1 do
      let nrm2 = ref 0. in
      for i = 0 to d - 1 do
        let v = Mat.get x i j in
        nrm2 := !nrm2 +. (v *. v)
      done;
      quart := !quart +. (!nrm2 *. !nrm2)
    done;
    let beta2 = Float.max 0. ((!quart -. (nf *. c2)) /. (df *. nf *. nf)) in
    clip01 (Float.min beta2 delta2 /. delta2)
  end

let oas_intensity ~n c =
  let d, m = Mat.dims c in
  if d <> m then invalid_arg "Shrink.oas_intensity: not square";
  if n <= 0 then invalid_arg "Shrink.oas_intensity: no instances";
  let df = float_of_int d and nf = float_of_int n in
  let tr = Mat.trace c in
  let tr2 = frob2 c in
  let denom = (nf +. 1. -. (2. /. df)) *. (tr2 -. (tr *. tr /. df)) in
  if denom <= 0. then 1.
  else clip01 ((((1. -. (2. /. df)) *. tr2) +. (tr *. tr)) /. denom)

type applied = { cov : Mat.t; intensity : float; target : float }

let shrunk rho c =
  let d = fst (Mat.dims c) in
  let mu = Mat.trace c /. float_of_int d in
  if rho <= 0. then { cov = c; intensity = 0.; target = mu }
  else
    { cov = Mat.add_scaled_identity (rho *. mu) (Mat.scale (1. -. rho) c);
      intensity = rho;
      target = mu }

let apply ?x ~n mode c =
  match mode with
  | `None -> shrunk 0. c
  | `Fixed rho -> shrunk (clip01 rho) c
  | `Oas -> shrunk (oas_intensity ~n c) c
  | `Lw -> (
    match x with
    | Some x -> shrunk (lw_intensity ~x c) c
    | None ->
      Robust.warnf
        "Shrink.apply: `Lw needs the centered instances (streaming builder keeps none) — \
         falling back to `Oas";
      shrunk (oas_intensity ~n c) c)
