type t = { g : Mat.t } (* lower triangular, A = G Gᵀ *)

exception Not_positive_definite of { pivot : int; value : float }

let decompose a =
  let n, m = Mat.dims a in
  if n <> m then invalid_arg "Cholesky.decompose: not square";
  let g = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Mat.get g i k *. Mat.get g j k)
      done;
      if i = j then begin
        (* NaN pivots must fail too: [!acc <= 0.] alone is false for NaN. *)
        if not (!acc > 0.) then raise (Not_positive_definite { pivot = i; value = !acc });
        Mat.set g i i (sqrt !acc)
      end
      else Mat.set g i j (!acc /. Mat.get g j j)
    done
  done;
  { g }

let decompose_checked ?(stage = "cholesky") a =
  if not (Mat.all_finite a) then Error (Robust.Non_finite { stage; where = "input matrix" })
  else
    match decompose a with
    | f -> Ok f
    | exception Not_positive_definite { pivot; value } ->
      Error (Robust.Not_positive_definite { stage; pivot; value; jitter_tried = 0. })

let decompose_jittered ?(stage = "cholesky") ?(attempts = 4) ?jitter0 a =
  let n, _ = Mat.dims a in
  (* Default first jitter: tied to the diagonal scale so it perturbs the
     spectrum by roughly machine-roundoff of the matrix itself. *)
  let scale =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := Float.max !acc (Float.abs (Mat.get a i i))
    done;
    Float.max !acc 1.
  in
  let jitter0 = match jitter0 with Some j -> j | None -> 1e-12 *. scale in
  (* Attempt 0 is the plain factorization; attempt k ≥ 1 adds
     jitter0·100^(k−1) to the diagonal.  [attempts] counts the jittered
     retries, so the geometric ladder spans 10^(2·attempts) before giving
     up — enough to absorb roundoff-scale indefiniteness while still
     surfacing genuinely indefinite inputs quickly. *)
  let rec attempt k jitter =
    let target = if k = 0 then a else Mat.add_scaled_identity jitter a in
    match decompose_checked ~stage target with
    | Ok f ->
      if k > 0 then
        Robust.warnf "%s: recovered with diagonal jitter %g after %d failed attempt%s" stage
          jitter k
          (if k = 1 then "" else "s");
      Ok (f, if k = 0 then 0. else jitter)
    | Error (Robust.Not_positive_definite npd) when k < attempts ->
      Robust.warnf "%s: pivot %d = %g not positive%s — retrying with more jitter" stage
        npd.pivot npd.value
        (if k = 0 then "" else Printf.sprintf " at jitter %g" jitter);
      attempt (k + 1) (if k = 0 then jitter else jitter *. 100.)
    | Error (Robust.Not_positive_definite npd) ->
      Error
        (Robust.Not_positive_definite
           { npd with jitter_tried = (if k = 0 then 0. else jitter) })
    | Error e -> Error e (* non-finite input: jitter cannot fix it *)
  in
  attempt 0 jitter0

let lower { g } = Mat.copy g

let forward g b =
  let n, _ = Mat.dims g in
  let y = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for k = 0 to i - 1 do
      acc := !acc -. (Mat.get g i k *. y.(k))
    done;
    y.(i) <- !acc /. Mat.get g i i
  done;
  y

let backward g y =
  (* solves Gᵀ x = y *)
  let n, _ = Mat.dims g in
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for k = i + 1 to n - 1 do
      acc := !acc -. (Mat.get g k i *. x.(k))
    done;
    x.(i) <- !acc /. Mat.get g i i
  done;
  x

let solve_vec { g } b =
  let n, _ = Mat.dims g in
  if Array.length b <> n then invalid_arg "Cholesky.solve_vec: dimension mismatch";
  backward g (forward g b)

let solve f b =
  let _, ncols = Mat.dims b in
  let n, _ = Mat.dims f.g in
  let x = Mat.create n ncols in
  for j = 0 to ncols - 1 do
    Mat.set_col x j (solve_vec f (Mat.col b j))
  done;
  x

let inverse f =
  let n, _ = Mat.dims f.g in
  solve f (Mat.identity n)

let solve_lower_vec { g } b = forward g b

let solve_lower_transpose f b =
  let _, ncols = Mat.dims b in
  let n, _ = Mat.dims f.g in
  let x = Mat.create n ncols in
  for j = 0 to ncols - 1 do
    Mat.set_col x j (backward f.g (Mat.col b j))
  done;
  x

let inverse_lower f =
  let n, _ = Mat.dims f.g in
  let inv = Mat.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0. in
    e.(j) <- 1.;
    Mat.set_col inv j (forward f.g e)
  done;
  inv

let log_det { g } =
  let n, _ = Mat.dims g in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. log (Mat.get g i i)
  done;
  2. *. !acc

let solve_system a b = solve (decompose a) b
