type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0. }
let make rows cols v = { rows; cols; data = Array.make (rows * cols) v }

let init rows cols f =
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    let base = i * cols in
    for j = 0 to cols - 1 do
      data.(base + j) <- f i j
    done
  done;
  { rows; cols; data }

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let diag_of_vec v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.)

let of_arrays rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then { rows = 0; cols = 0; data = [||] }
  else begin
    let cols = Array.length rows_arr.(0) in
    Array.iter
      (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged rows")
      rows_arr;
    init rows cols (fun i j -> rows_arr.(i).(j))
  end

let of_cols cols_arr =
  let cols = Array.length cols_arr in
  if cols = 0 then { rows = 0; cols = 0; data = [||] }
  else begin
    let rows = Array.length cols_arr.(0) in
    Array.iter
      (fun c -> if Array.length c <> rows then invalid_arg "Mat.of_cols: ragged columns")
      cols_arr;
    init rows cols (fun i j -> cols_arr.(j).(i))
  end

let unsafe_of_flat ~rows ~cols data =
  if Array.length data <> rows * cols then invalid_arg "Mat.unsafe_of_flat: bad length";
  { rows; cols; data }

let copy a = { a with data = Array.copy a.data }
let get a i j = a.data.((i * a.cols) + j)
let set a i j v = a.data.((i * a.cols) + j) <- v
let dims a = (a.rows, a.cols)

(* [row]/[col] sit on the tridiagonalization and SVD inner loops: one
   upfront bounds check, then raw strided reads. *)
let row a i =
  if i < 0 || i >= a.rows then invalid_arg "Mat.row: index out of range";
  Array.sub a.data (i * a.cols) a.cols

let col a j =
  if j < 0 || j >= a.cols then invalid_arg "Mat.col: index out of range";
  let out = Array.make a.rows 0. in
  let src = ref j in
  for i = 0 to a.rows - 1 do
    Array.unsafe_set out i (Array.unsafe_get a.data !src);
    src := !src + a.cols
  done;
  out

let set_row a i v =
  if Array.length v <> a.cols then invalid_arg "Mat.set_row: dimension mismatch";
  Array.blit v 0 a.data (i * a.cols) a.cols

let set_col a j v =
  if Array.length v <> a.rows then invalid_arg "Mat.set_col: dimension mismatch";
  for i = 0 to a.rows - 1 do
    set a i j v.(i)
  done

let diag a = Array.init (min a.rows a.cols) (fun i -> get a i i)

let sub_cols a j0 n =
  if j0 < 0 || n < 0 || j0 + n > a.cols then invalid_arg "Mat.sub_cols: out of range";
  let data = Array.make (a.rows * n) 0. in
  for i = 0 to a.rows - 1 do
    Array.blit a.data ((i * a.cols) + j0) data (i * n) n
  done;
  { rows = a.rows; cols = n; data }

let sub_rows a i0 n =
  if i0 < 0 || i0 + n > a.rows then invalid_arg "Mat.sub_rows: out of range";
  { rows = n; cols = a.cols; data = Array.sub a.data (i0 * a.cols) (n * a.cols) }

let select_cols a idx = init a.rows (Array.length idx) (fun i j -> get a i idx.(j))
let to_arrays a = Array.init a.rows (row a)

let check_same_dims name a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg (name ^ ": dimension mismatch")

let map2 f a b =
  check_same_dims "Mat.map2" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k)) }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale s a = { a with data = Array.map (fun v -> s *. v) a.data }

let add_scaled_identity eps a =
  if a.rows <> a.cols then invalid_arg "Mat.add_scaled_identity: not square";
  let r = copy a in
  for i = 0 to a.rows - 1 do
    set r i i (get r i i +. eps)
  done;
  r

(* Dense products.  All five GEMM-shaped entry points (mul / mul_tn /
   mul_nt / gram / tgram) obey one accumulation contract: every output cell
   is the IEEE-754 sum of its k products taken in ascending-k order,
   starting from +0., with no zero skips and no FMA (see DESIGN.md §10).
   Two implementations honour it bitwise — the packed register-blocked
   microkernel in [Gemm] (the default) and the straightforward loops below,
   retained as the selectable reference oracle (TCCA_GEMM=naive, mirroring
   TCCA_EIG=jacobi).  Both row-partition the output across the domain pool;
   because cells never share accumulators, any partition is bitwise
   identical to the sequential run.  Everything downstream (whitening, the
   covariance tensor, MTTKRP, kernels, RLS) funnels through these. *)
let mul_tile = 64

let naive_mul_into a b c =
  let m = a.rows and n = b.cols and k = a.cols in
  let ad = a.data and bd = b.data in
  let row_band lo hi =
    (* ikj, cache-blocked over the inner dimension so a tile of [b] rows
       stays resident while a row panel of [c] is updated; per cell the
       additions still happen in ascending [l] order. *)
    let lb = ref 0 in
    while !lb < k do
      let lhi = min k (!lb + mul_tile) in
      for i = lo to hi - 1 do
        let arow = i * k and crow = i * n in
        for l = !lb to lhi - 1 do
          let aval = Array.unsafe_get ad (arow + l) in
          let brow = l * n in
          for j = 0 to n - 1 do
            Array.unsafe_set c (crow + j)
              (Array.unsafe_get c (crow + j) +. (aval *. Array.unsafe_get bd (brow + j)))
          done
        done
      done;
      lb := lhi
    done
  in
  Parallel.parallel_for ~cost:(m * n * k) ~n:m row_band

(* Microkernel unless the oracle is selected or the product is too small to
   amortize packing — all bitwise-equivalent routes. *)
let use_microkernel ~flops =
  match Gemm.impl () with
  | `Naive -> false
  | `Microkernel -> flops >= Gemm.small_cutoff ()

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: inner dimension mismatch";
  let m = a.rows and n = b.cols and k = a.cols in
  let c = Array.make (m * n) 0. in
  if use_microkernel ~flops:(2 * m * n * k) then
    Gemm.gemm ~ta:false ~tb:false ~m ~n ~k ~a:a.data ~b:b.data c
  else naive_mul_into a b c;
  { rows = m; cols = n; data = c }

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let base = i * a.cols in
      let acc = ref 0. in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (Array.unsafe_get a.data (base + j) *. Array.unsafe_get x j)
      done;
      !acc)

let tmul_vec a x =
  if a.rows <> Array.length x then invalid_arg "Mat.tmul_vec: dimension mismatch";
  let y = Array.make a.cols 0. in
  for i = 0 to a.rows - 1 do
    let base = i * a.cols in
    let xi = x.(i) in
    if xi <> 0. then
      for j = 0 to a.cols - 1 do
        y.(j) <- y.(j) +. (xi *. Array.unsafe_get a.data (base + j))
      done
  done;
  y

let transpose a = init a.cols a.rows (fun i j -> get a j i)

(* Mirror the strict lower triangle from the upper — a bit copy, so the
   mirrored cells are exactly the transposed bits at any pool size. *)
let mirror_lower n c =
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      c.((i * n) + j) <- c.((j * n) + i)
    done
  done

let naive_gram_into a c =
  (* a aᵀ: each pool chunk owns a band of output rows and fills its slice of
     the upper triangle with ascending-l dot products (cells are
     independent, so partitioning is trivially deterministic). *)
  let m = a.rows and k = a.cols in
  let ad = a.data in
  Parallel.parallel_for ~cost:(m * m * k / 2) ~n:m (fun lo hi ->
      for i = lo to hi - 1 do
        let ri = i * k in
        for j = i to m - 1 do
          let rj = j * k in
          let acc = ref 0. in
          for l = 0 to k - 1 do
            acc := !acc +. (Array.unsafe_get ad (ri + l) *. Array.unsafe_get ad (rj + l))
          done;
          Array.unsafe_set c ((i * m) + j) !acc
        done
      done)

let gram a =
  let m = a.rows and k = a.cols in
  let c = Array.make (m * m) 0. in
  if use_microkernel ~flops:(m * (m + 1) * k) then Gemm.syrk ~ta:false ~n:m ~k ~a:a.data c
  else naive_gram_into a c;
  mirror_lower m c;
  { rows = m; cols = m; data = c }

let naive_tgram_into a c =
  (* aᵀ a accumulated row-by-row of [a]: cache-friendly and symmetric.  Pool
     chunks own bands of output rows [i]; every chunk walks all rows [l] of
     [a] in order, so each upper-triangle cell accumulates in ascending-[l]
     order regardless of pool size. *)
  let n = a.cols in
  let rows = a.rows in
  let ad = a.data in
  Parallel.parallel_for ~cost:(rows * n * n / 2) ~n (fun lo hi ->
      for l = 0 to rows - 1 do
        let base = l * n in
        for i = lo to hi - 1 do
          let ai = Array.unsafe_get ad (base + i) in
          let crow = i * n in
          for j = i to n - 1 do
            Array.unsafe_set c (crow + j)
              (Array.unsafe_get c (crow + j) +. (ai *. Array.unsafe_get ad (base + j)))
          done
        done
      done)

let tgram a =
  let n = a.cols in
  let c = Array.make (n * n) 0. in
  if use_microkernel ~flops:(n * (n + 1) * a.rows) then
    Gemm.syrk ~ta:true ~n ~k:a.rows ~a:a.data c
  else naive_tgram_into a c;
  mirror_lower n c;
  { rows = n; cols = n; data = c }

let naive_mul_tn_into a b c =
  let m = a.cols and n = b.cols in
  let rows = a.rows in
  let ad = a.data and bd = b.data in
  (* Output rows [i] (= columns of [a]) are banded across the pool; every
     chunk scans the rows [l] of [a]/[b] in order, so each output cell sees
     the same ascending-[l] accumulation as the sequential loop. *)
  Parallel.parallel_for ~cost:(rows * m * n) ~n:m (fun lo hi ->
      for l = 0 to rows - 1 do
        let abase = l * m and bbase = l * n in
        for i = lo to hi - 1 do
          let aval = Array.unsafe_get ad (abase + i) in
          let crow = i * n in
          for j = 0 to n - 1 do
            Array.unsafe_set c (crow + j)
              (Array.unsafe_get c (crow + j) +. (aval *. Array.unsafe_get bd (bbase + j)))
          done
        done
      done)

let mul_tn a b =
  if a.rows <> b.rows then invalid_arg "Mat.mul_tn: dimension mismatch";
  let m = a.cols and n = b.cols and k = a.rows in
  let c = Array.make (m * n) 0. in
  if use_microkernel ~flops:(2 * m * n * k) then
    Gemm.gemm ~ta:true ~tb:false ~m ~n ~k ~a:a.data ~b:b.data c
  else naive_mul_tn_into a b c;
  { rows = m; cols = n; data = c }

let naive_mul_nt_into a b c =
  let m = a.rows and n = b.rows and k = a.cols in
  let ad = a.data and bd = b.data in
  Parallel.parallel_for ~cost:(m * n * k) ~n:m (fun lo hi ->
      for i = lo to hi - 1 do
        let ri = i * k in
        for j = 0 to n - 1 do
          let rj = j * k in
          let acc = ref 0. in
          for l = 0 to k - 1 do
            acc := !acc +. (Array.unsafe_get ad (ri + l) *. Array.unsafe_get bd (rj + l))
          done;
          Array.unsafe_set c ((i * n) + j) !acc
        done
      done)

let mul_nt a b =
  if a.cols <> b.cols then invalid_arg "Mat.mul_nt: dimension mismatch";
  let m = a.rows and n = b.rows and k = a.cols in
  let c = Array.make (m * n) 0. in
  if use_microkernel ~flops:(2 * m * n * k) then
    Gemm.gemm ~ta:false ~tb:true ~m ~n ~k ~a:a.data ~b:b.data c
  else naive_mul_nt_into a b c;
  { rows = m; cols = n; data = c }

(* One allocation + row-block blits for any number of operands: the
   GEMM micro-batcher stacks dozens of request matrices per call, where
   the old pairwise fold cost O(k²) copies. *)
let hcat_many ms =
  let first = List.hd ms in
  let rows = first.rows in
  List.iter (fun m -> if m.rows <> rows then invalid_arg "Mat.hcat: row mismatch") ms;
  let cols = List.fold_left (fun acc m -> acc + m.cols) 0 ms in
  let data = Array.make (rows * cols) 0. in
  let off = ref 0 in
  List.iter
    (fun m ->
      for i = 0 to rows - 1 do
        Array.blit m.data (i * m.cols) data ((i * cols) + !off) m.cols
      done;
      off := !off + m.cols)
    ms;
  { rows; cols; data }

let hcat a b = hcat_many [ a; b ]

let vcat a b =
  if a.cols <> b.cols then invalid_arg "Mat.vcat: column mismatch";
  { rows = a.rows + b.rows; cols = a.cols; data = Array.append a.data b.data }

let hcat_list = function
  | [] -> invalid_arg "Mat.hcat_list: empty"
  | ms -> hcat_many ms

let vcat_list = function
  | [] -> invalid_arg "Mat.vcat_list: empty"
  | m :: rest -> List.fold_left vcat m rest

let map f a = { a with data = Array.map f a.data }

let trace a =
  let acc = ref 0. in
  for i = 0 to min a.rows a.cols - 1 do
    acc := !acc +. get a i i
  done;
  !acc

let frobenius a = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0. a.data)
let max_abs a = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. a.data
let all_finite a = Vec.all_finite a.data

let row_means a =
  Array.init a.rows (fun i ->
      let base = i * a.cols in
      let acc = ref 0. in
      for j = 0 to a.cols - 1 do
        acc := !acc +. a.data.(base + j)
      done;
      !acc /. float_of_int a.cols)

let sub_col_vec a v =
  if Array.length v <> a.rows then invalid_arg "Mat.sub_col_vec: dimension mismatch";
  init a.rows a.cols (fun i j -> get a i j -. v.(i))

let center_rows a =
  let means = row_means a in
  (sub_col_vec a means, means)

let is_symmetric ?(eps = 1e-9) a =
  a.rows = a.cols
  && begin
       let ok = ref true in
       for i = 0 to a.rows - 1 do
         for j = i + 1 to a.cols - 1 do
           if Float.abs (get a i j -. get a j i) > eps then ok := false
         done
       done;
       !ok
     end

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
       let ok = ref true in
       for k = 0 to Array.length a.data - 1 do
         if Float.abs (a.data.(k) -. b.data.(k)) > eps then ok := false
       done;
       !ok
     end

let pp fmt a =
  Format.fprintf fmt "@[<v>";
  for i = 0 to a.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to a.cols - 1 do
      if j > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%8.4f" (get a i j)
    done;
    Format.fprintf fmt "]";
    if i < a.rows - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"
