let apply_spectral ?method_ f a =
  let { Eigen.values; vectors } = Eigen.decompose ?method_ a in
  let n, k = Mat.dims vectors in
  let scaled = Mat.init n k (fun i j -> Mat.get vectors i j *. f values.(j)) in
  Mat.mul_nt scaled vectors

let sqrt_psd ?method_ a = apply_spectral ?method_ (fun l -> sqrt (Float.max l 0.)) a

let inv_sqrt_of_eig ?floor { Eigen.values; vectors } =
  let lmax = Float.max values.(0) 0. in
  let fl = match floor with Some f -> f | None -> 1e-12 *. Float.max lmax 1. in
  let n, k = Mat.dims vectors in
  let scaled =
    Mat.init n k (fun i j -> Mat.get vectors i j /. sqrt (Float.max values.(j) fl))
  in
  Mat.mul_nt scaled vectors

let inv_sqrt_psd ?floor ?method_ a = inv_sqrt_of_eig ?floor (Eigen.decompose ?method_ a)

let inv_sqrt_psd_checked ?floor ?(shift = 0.) ?method_ ~stage a =
  match Eigen.decompose_checked ~stage ?method_ a with
  | Error e -> Error e
  | Ok eig ->
    let w = inv_sqrt_of_eig ?floor eig in
    if not (Mat.all_finite w) then
      Error (Robust.Non_finite { stage; where = "inverse square root" })
    else begin
      (* Numerical rank of the un-shifted matrix (a − shift·I): with the
         ridge [shift] subtracted back out, null directions of the original
         covariance sit at ~0 and are not counted. *)
      let lmax = Float.max (eig.Eigen.values.(0) -. shift) 0. in
      let tol = 1e-9 *. lmax in
      let rank =
        Array.fold_left
          (fun acc l -> if l -. shift > tol then acc + 1 else acc)
          0 eig.Eigen.values
      in
      Ok (w, rank)
    end

let inv_psd ?floor ?method_ a =
  let { Eigen.values; vectors } = Eigen.decompose ?method_ a in
  let lmax = Float.max values.(0) 0. in
  let fl = match floor with Some f -> f | None -> 1e-12 *. Float.max lmax 1. in
  let n, k = Mat.dims vectors in
  let scaled = Mat.init n k (fun i j -> Mat.get vectors i j /. Float.max values.(j) fl) in
  Mat.mul_nt scaled vectors

let pinv ?(tol = 1e-12) a =
  let { Svd.u; sigma; v } = Svd.decompose a in
  let s0 = if Array.length sigma = 0 then 0. else sigma.(0) in
  let n, k = Mat.dims v in
  let scaled =
    Mat.init n k (fun i j ->
        if sigma.(j) > tol *. s0 && sigma.(j) > 0. then Mat.get v i j /. sigma.(j) else 0.)
  in
  Mat.mul_nt scaled u
