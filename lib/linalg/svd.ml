type t = { u : Mat.t; sigma : Vec.t; v : Mat.t }

type info = { sweeps : int; residual : float; converged : bool }

(* Worst normalized off-orthogonality max |⟨wp,wq⟩|/(‖wp‖‖wq‖) — measured
   only on the failure path (cap hit), so the happy path pays nothing. *)
let max_pair_cos w =
  let m, n = Mat.dims w in
  let worst = ref 0. in
  for p = 0 to n - 2 do
    for q = p + 1 to n - 1 do
      let alpha = ref 0. and beta = ref 0. and gamma = ref 0. in
      for i = 0 to m - 1 do
        let wp = Mat.get w i p and wq = Mat.get w i q in
        alpha := !alpha +. (wp *. wp);
        beta := !beta +. (wq *. wq);
        gamma := !gamma +. (wp *. wq)
      done;
      let denom = sqrt (!alpha *. !beta) in
      if denom > 0. then worst := Float.max !worst (Float.abs !gamma /. denom)
    done
  done;
  !worst

(* One-sided Jacobi on a tall matrix: rotate column pairs of [w] until all
   pairs are orthogonal, accumulating the rotations into [v].  Then
   σⱼ = ‖wⱼ‖ and uⱼ = wⱼ/σⱼ. *)
let one_sided_info ?(max_sweeps = 60) ?(eps = 1e-12) a =
  let m, n = Mat.dims a in
  let w = Mat.copy a in
  let v = Mat.identity n in
  let rotate = ref true in
  let sweep = ref 0 in
  while !rotate && !sweep < max_sweeps do
    rotate := false;
    incr sweep;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        (* Gram entries of the column pair. *)
        let alpha = ref 0. and beta = ref 0. and gamma = ref 0. in
        for i = 0 to m - 1 do
          let wp = Mat.get w i p and wq = Mat.get w i q in
          alpha := !alpha +. (wp *. wp);
          beta := !beta +. (wq *. wq);
          gamma := !gamma +. (wp *. wq)
        done;
        let limit = eps *. sqrt (!alpha *. !beta) in
        if Float.abs !gamma > limit && limit > 0. then begin
          rotate := true;
          let zeta = (!beta -. !alpha) /. (2. *. !gamma) in
          let t =
            let sign = if zeta >= 0. then 1. else -1. in
            sign /. (Float.abs zeta +. sqrt (1. +. (zeta *. zeta)))
          in
          let c = 1. /. sqrt (1. +. (t *. t)) in
          let s = c *. t in
          for i = 0 to m - 1 do
            let wp = Mat.get w i p and wq = Mat.get w i q in
            Mat.set w i p ((c *. wp) -. (s *. wq));
            Mat.set w i q ((s *. wp) +. (c *. wq))
          done;
          for i = 0 to n - 1 do
            let vp = Mat.get v i p and vq = Mat.get v i q in
            Mat.set v i p ((c *. vp) -. (s *. vq));
            Mat.set v i q ((s *. vp) +. (c *. vq))
          done
        end
      done
    done
  done;
  let sigma = Array.init n (fun j -> Vec.norm (Mat.col w j)) in
  let u = Mat.create m n in
  for j = 0 to n - 1 do
    let col = Mat.col w j in
    let s = sigma.(j) in
    if s > 0. then Mat.set_col u j (Vec.scale (1. /. s) col)
    else begin
      (* Zero singular value: any unit vector orthogonal works; keep e_j
         truncated to m for determinism. *)
      let e = Array.make m 0. in
      e.(j mod m) <- 1.;
      Mat.set_col u j e
    end
  done;
  (* Order descending. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare sigma.(j) sigma.(i)) order;
  ( { u = Mat.select_cols u order;
      sigma = Array.map (fun i -> sigma.(i)) order;
      v = Mat.select_cols v order },
    (* Converged iff the last completed sweep needed no rotation; hitting the
       cap with [rotate] still pending means some column pair is still not
       orthogonal to working precision. *)
    { sweeps = !sweep;
      residual = (if !rotate then max_pair_cos w else 0.);
      converged = not !rotate } )

type method_ = [ `Auto | `Jacobi | `Qr_eig ]

(* Below this aspect ratio the O(mn²) Jacobi rotations already dominate any
   QR savings, and Jacobi's pairwise orthogonalization is the more accurate
   of the two — only genuinely tall inputs take the QR + eig route. *)
let tall_ratio = 3

(* Tall path: thin QR, then the symmetric eigendecomposition of RᵀR (n × n,
   independent of m) gives V.  Recomputing σⱼ = ‖A vⱼ‖ instead of √λⱼ pulls
   the small singular values back from the squared-condition damage of the
   Gram product; U follows by normalizing the columns of AV. *)
let qr_eig_info ?max_sweeps ?eps a =
  let m, n = Mat.dims a in
  let r_mat = Qr.r (Qr.decompose a) in
  let eig, einfo = Eigen.decompose_info ?max_sweeps ?eps (Mat.tgram r_mat) in
  let w = Mat.mul a eig.Eigen.vectors in
  let sigma = Array.init n (fun j -> Vec.norm (Mat.col w j)) in
  let u = Mat.create m n in
  for j = 0 to n - 1 do
    let s = sigma.(j) in
    if s > 0. then Mat.set_col u j (Vec.scale (1. /. s) (Mat.col w j))
    else begin
      (* Same deterministic fallback as the Jacobi path. *)
      let e = Array.make m 0. in
      e.(j mod m) <- 1.;
      Mat.set_col u j e
    end
  done;
  (* The eigenvalues arrive descending already; re-sort on the recomputed
     σ so ties broken by the norm recovery stay ordered. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare sigma.(j) sigma.(i)) order;
  ( { u = Mat.select_cols u order;
      sigma = Array.map (fun i -> sigma.(i)) order;
      v = Mat.select_cols eig.Eigen.vectors order },
    { sweeps = einfo.Eigen.sweeps;
      residual = einfo.Eigen.residual;
      converged = einfo.Eigen.converged } )

let decompose_info ?(method_ = `Auto) ?max_sweeps ?eps a =
  let take_qr_eig rows cols =
    match method_ with
    | `Jacobi -> false
    | `Qr_eig -> true
    | `Auto -> (
        (* TCCA_EIG=jacobi restores the full legacy numerics, including
           one-sided-Jacobi SVD for every shape. *)
        match Eigen.default_method () with
        | `Jacobi -> false
        | `Tridiagonal -> cols > 0 && rows >= tall_ratio * cols)
  in
  let m, n = Mat.dims a in
  if m >= n then
    if take_qr_eig m n then qr_eig_info ?max_sweeps ?eps a
    else one_sided_info ?max_sweeps ?eps a
  else begin
    let at = Mat.transpose a in
    let { u; sigma; v }, info =
      if take_qr_eig n m then qr_eig_info ?max_sweeps ?eps at
      else one_sided_info ?max_sweeps ?eps at
    in
    ({ u = v; sigma; v = u }, info)
  end

let decompose ?method_ ?max_sweeps ?eps a =
  let svd, info = decompose_info ?method_ ?max_sweeps ?eps a in
  if not info.converged then
    Robust.warnf "Svd.decompose: sweep cap hit after %d sweeps" info.sweeps;
  svd

let decompose_checked ?(stage = "svd") ?method_ ?max_sweeps ?eps a =
  if not (Mat.all_finite a) then Error (Robust.Non_finite { stage; where = "input matrix" })
  else begin
    let svd, info = decompose_info ?method_ ?max_sweeps ?eps a in
    if not info.converged then
      Error
        (Robust.Not_converged { stage; sweeps = info.sweeps; residual = info.residual })
    else Ok svd
  end

(* Halko–Martinsson–Tropp randomized range finder: sketch the column space
   with a Gaussian test matrix, tighten it with power iterations
   (re-orthonormalized each half-step so roundoff cannot collapse the
   basis), then solve the small problem exactly — QB with B = QᵀA and the
   symmetric eigendecomposition of BBᵀ.  Singular values are recovered as
   ‖Bᵀwⱼ‖ rather than √λⱼ to undo the Gram product's conditioning squaring,
   mirroring the QR+eig route above.  The test matrix comes from the
   deterministic [Rng], so the factorization is replayable from the seed
   alone; all products run on [Mat]'s bitwise-deterministic kernels. *)
let randomized ?(oversample = 8) ?(power_iters = 2) ?(seed = 0x51ED) ~rank a =
  if rank < 1 then invalid_arg "Svd.randomized: rank must be >= 1";
  if oversample < 0 then invalid_arg "Svd.randomized: oversample must be >= 0";
  let m, n = Mat.dims a in
  let ell = min (min m n) (rank + oversample) in
  let rng = Rng.create seed in
  let omega = Mat.init n ell (fun _ _ -> Rng.gaussian rng) in
  let y = ref (Mat.mul a omega) in
  for _ = 1 to power_iters do
    let z = Qr.orthonormalize (Mat.mul_tn a !y) in
    y := Mat.mul a z
  done;
  let q = Qr.orthonormalize !y in
  let b = Mat.mul_tn q a in
  let eig, einfo = Eigen.decompose_info (Mat.gram b) in
  let keep = min rank ell in
  let w = Eigen.top_k eig keep in
  let u = Mat.mul q w in
  let btw = Mat.mul_tn b w in
  let sigma = Array.init keep (fun j -> Vec.norm (Mat.col btw j)) in
  let v = Mat.create n keep in
  for j = 0 to keep - 1 do
    let s = sigma.(j) in
    if s > 0. then Mat.set_col v j (Vec.scale (1. /. s) (Mat.col btw j))
    else begin
      (* Same deterministic zero-σ fallback as the exact routes. *)
      let e = Array.make n 0. in
      e.(j mod n) <- 1.;
      Mat.set_col v j e
    end
  done;
  ( { u; sigma; v },
    { sweeps = einfo.Eigen.sweeps;
      residual = einfo.Eigen.residual;
      converged = einfo.Eigen.converged } )

let truncated { u; sigma; v } r =
  if r > Array.length sigma then invalid_arg "Svd.truncated: r too large";
  (Mat.sub_cols u 0 r, Array.sub sigma 0 r, Mat.sub_cols v 0 r)

let reconstruct { u; sigma; v } =
  let m, k = Mat.dims u in
  let scaled = Mat.init m k (fun i j -> Mat.get u i j *. sigma.(j)) in
  Mat.mul_nt scaled v

let nuclear_norm { sigma; _ } = Vec.sum sigma

let rank ?(tol = 1e-10) { sigma; _ } =
  if Array.length sigma = 0 then 0
  else begin
    let s0 = sigma.(0) in
    if s0 = 0. then 0
    else Array.fold_left (fun acc s -> if s > tol *. s0 then acc + 1 else acc) 0 sigma
  end
