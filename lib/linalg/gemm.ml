(* Packed, register-blocked GEMM core — see DESIGN.md §10.

   Accumulation contract (shared with the naive oracle loops in Mat): every
   output cell is the IEEE-754 sum of its k products taken one at a time in
   ascending-k order, starting from +0., with no zero skips and no FMA.
   Packing, register tiling, cache blocking and pool partitioning only
   reorder which *cells* are computed when — never the order of terms
   within a cell — so any blocking parameters and any pool size produce
   bitwise-identical results. *)

type impl = [ `Microkernel | `Naive ]

(* TCCA_GEMM selects the default implementation: "naive" restores the
   straightforward loops everywhere, anything else (or unset) the packed
   microkernel.  Read once — the implementation is part of a run's
   determinism story and must not flip mid-process (same discipline as
   TCCA_EIG). *)
let impl_of_env = function
  | Some s when String.lowercase_ascii (String.trim s) = "naive" -> `Naive
  | Some _ | None -> `Microkernel

let default_impl_memo = lazy (impl_of_env (Sys.getenv_opt "TCCA_GEMM"))
let default_impl () = Lazy.force default_impl_memo

let selected : impl option ref = ref None
let impl () = match !selected with Some i -> i | None -> default_impl ()
let set_impl i = selected := Some i
let reset_impl () = selected := None

(* ------------------------------------------------------------------ *)
(* Blocking parameters.

   mr×nr = 4×4 register tile: 16 float accumulators plus 8 operand loads
   per depth step fit the 16 SSE2 registers of amd64 without spilling —
   measured fastest among 4×4 / 2×8 / unrolled variants on the target
   Xeon (~5 GFLOP/s, at the machine's scalar mul+add issue ceiling).

   kc: depth of one packed slab — an mr-wide A panel (kc·mr·8 = 8 KB) plus
   an nr-wide B panel stream stays L1-resident through the tile loop.
   mc: rows per packed A block (mc·kc·8 = 256 KB, L2-resident).
   nc: columns per packed B block (kc·nc·8 = 2 MB, L3-resident); also caps
   the per-domain scratch footprint.  mc and nc are multiples of mr/nr so
   register tiles never straddle a cache block. *)
let mr = 4
let nr = 4
let kc = 256
let mc = 128
let nc = 1024

(* Below this many flops (2·m·n·k) the packing walk costs more than it
   saves; Mat routes such products to the naive loops (bitwise-identical by
   the accumulation contract, so the switch is invisible).  Crossover
   measured on the CP-ALS factor shapes (r≈8): tiny d×r products lose,
   d≈32³ products already win. *)
let default_small_cutoff = 16_384
let small_cutoff_v = ref default_small_cutoff
let small_cutoff () = !small_cutoff_v
let set_small_cutoff v = small_cutoff_v := max 0 v

(* ------------------------------------------------------------------ *)
(* Per-domain packing scratch: long-lived worker domains reuse their
   buffers across calls (grow-only), so steady-state GEMMs allocate only
   the result.  Each domain touches exclusively its own scratch, so the
   parallel bands never race. *)

type scratch = {
  mutable ap : float array; (* packed A block: mpan panels × klen × mr *)
  mutable bp : float array; (* packed B block: npan panels × klen × nr *)
  tile : float array; (* mr×nr staging buffer for edge/diagonal tiles *)
}

let scratch_key =
  Domain.DLS.new_key (fun () -> { ap = [||]; bp = [||]; tile = Array.make (mr * nr) 0. })

let grown buf len = if Array.length buf >= len then buf else Array.make len 0.

(* ------------------------------------------------------------------ *)
(* Packing.

   A panels: panel ip holds rows [i0 + ip·mr, …); layout is depth-major,
   ap.(ip·klen·mr + l·mr + r), so the kernel reads mr contiguous values per
   depth step.  Rows beyond mlen are zero-padded — the kernel computes the
   padded cells and the store discards them, which keeps edge tiles exact.
   B panels mirror this with nr-wide column panels. *)

let pack_a ~ta ~lda ~a ~i0 ~mlen ~p0 ~klen ap =
  let mpan = (mlen + mr - 1) / mr in
  for ip = 0 to mpan - 1 do
    let ib = i0 + (ip * mr) in
    let vr = min mr (i0 + mlen - ib) in
    let dst0 = ip * (klen * mr) in
    if not ta then
      (* A[i,l] = a.(i·lda + l): each source row is contiguous in l. *)
      for r = 0 to mr - 1 do
        let dst = ref (dst0 + r) in
        if r < vr then begin
          let src = ((ib + r) * lda) + p0 in
          for l = 0 to klen - 1 do
            Array.unsafe_set ap !dst (Array.unsafe_get a (src + l));
            dst := !dst + mr
          done
        end
        else
          for _ = 1 to klen do
            Array.unsafe_set ap !dst 0.;
            dst := !dst + mr
          done
      done
    else
      (* A[i,l] = a.(l·lda + i): each depth step is contiguous in i. *)
      for l = 0 to klen - 1 do
        let src = ((p0 + l) * lda) + ib in
        let dst = dst0 + (l * mr) in
        for r = 0 to vr - 1 do
          Array.unsafe_set ap (dst + r) (Array.unsafe_get a (src + r))
        done;
        for r = vr to mr - 1 do
          Array.unsafe_set ap (dst + r) 0.
        done
      done
  done

let pack_b ~tb ~ldb ~b ~j0 ~nlen ~p0 ~klen bp =
  let npan = (nlen + nr - 1) / nr in
  for jp = 0 to npan - 1 do
    let jb = j0 + (jp * nr) in
    let vc = min nr (j0 + nlen - jb) in
    let dst0 = jp * (klen * nr) in
    if not tb then
      (* B[l,j] = b.(l·ldb + j): each depth step is contiguous in j. *)
      for l = 0 to klen - 1 do
        let src = ((p0 + l) * ldb) + jb in
        let dst = dst0 + (l * nr) in
        for q = 0 to vc - 1 do
          Array.unsafe_set bp (dst + q) (Array.unsafe_get b (src + q))
        done;
        for q = vc to nr - 1 do
          Array.unsafe_set bp (dst + q) 0.
        done
      done
    else
      (* B[l,j] = b.(j·ldb + l): each source column is contiguous in l. *)
      for q = 0 to nr - 1 do
        let dst = ref (dst0 + q) in
        if q < vc then begin
          let src = ((jb + q) * ldb) + p0 in
          for l = 0 to klen - 1 do
            Array.unsafe_set bp !dst (Array.unsafe_get b (src + l));
            dst := !dst + nr
          done
        end
        else
          for _ = 1 to klen do
            Array.unsafe_set bp !dst 0.;
            dst := !dst + nr
          done
      done
  done

(* ------------------------------------------------------------------ *)
(* The 4×4 register microkernel: load the C tile, accumulate klen depth
   steps into 16 register-resident accumulators, store back.  Interior
   tiles load/store rows directly; edge tiles and diagonal-straddling
   [up] tiles stage through the mr×nr [tile] buffer so inactive cells
   (padding, or strictly-lower cells of a syrk) are never touched. *)

let kern ap abase bp bbase klen c ldc i0 j0 vr vc up first tile =
  let full = vr = mr && vc = nr && ((not up) || j0 >= i0 + (mr - 1)) in
  let c00 = ref 0. and c01 = ref 0. and c02 = ref 0. and c03 = ref 0. in
  let c10 = ref 0. and c11 = ref 0. and c12 = ref 0. and c13 = ref 0. in
  let c20 = ref 0. and c21 = ref 0. and c22 = ref 0. and c23 = ref 0. in
  let c30 = ref 0. and c31 = ref 0. and c32 = ref 0. and c33 = ref 0. in
  (* On the first depth slab the accumulators start at the contract's +0.
     directly — c is still all +0. there, so skipping the load pass is
     bitwise identical and saves a full traversal of c. *)
  if first then ()
  else if full then begin
    let r0 = (i0 * ldc) + j0 in
    let r1 = r0 + ldc and r2 = r0 + (2 * ldc) and r3 = r0 + (3 * ldc) in
    c00 := Array.unsafe_get c r0;
    c01 := Array.unsafe_get c (r0 + 1);
    c02 := Array.unsafe_get c (r0 + 2);
    c03 := Array.unsafe_get c (r0 + 3);
    c10 := Array.unsafe_get c r1;
    c11 := Array.unsafe_get c (r1 + 1);
    c12 := Array.unsafe_get c (r1 + 2);
    c13 := Array.unsafe_get c (r1 + 3);
    c20 := Array.unsafe_get c r2;
    c21 := Array.unsafe_get c (r2 + 1);
    c22 := Array.unsafe_get c (r2 + 2);
    c23 := Array.unsafe_get c (r2 + 3);
    c30 := Array.unsafe_get c r3;
    c31 := Array.unsafe_get c (r3 + 1);
    c32 := Array.unsafe_get c (r3 + 2);
    c33 := Array.unsafe_get c (r3 + 3)
  end
  else begin
    Array.fill tile 0 (mr * nr) 0.;
    for r = 0 to vr - 1 do
      let crow = ((i0 + r) * ldc) + j0 in
      for q = 0 to vc - 1 do
        if (not up) || j0 + q >= i0 + r then
          Array.unsafe_set tile ((r * nr) + q) (Array.unsafe_get c (crow + q))
      done
    done;
    c00 := Array.unsafe_get tile 0;
    c01 := Array.unsafe_get tile 1;
    c02 := Array.unsafe_get tile 2;
    c03 := Array.unsafe_get tile 3;
    c10 := Array.unsafe_get tile 4;
    c11 := Array.unsafe_get tile 5;
    c12 := Array.unsafe_get tile 6;
    c13 := Array.unsafe_get tile 7;
    c20 := Array.unsafe_get tile 8;
    c21 := Array.unsafe_get tile 9;
    c22 := Array.unsafe_get tile 10;
    c23 := Array.unsafe_get tile 11;
    c30 := Array.unsafe_get tile 12;
    c31 := Array.unsafe_get tile 13;
    c32 := Array.unsafe_get tile 14;
    c33 := Array.unsafe_get tile 15
  end;
  for l = 0 to klen - 1 do
    let ao = abase + (l * mr) and bo = bbase + (l * nr) in
    let a0 = Array.unsafe_get ap ao in
    let a1 = Array.unsafe_get ap (ao + 1) in
    let a2 = Array.unsafe_get ap (ao + 2) in
    let a3 = Array.unsafe_get ap (ao + 3) in
    let b0 = Array.unsafe_get bp bo in
    let b1 = Array.unsafe_get bp (bo + 1) in
    let b2 = Array.unsafe_get bp (bo + 2) in
    let b3 = Array.unsafe_get bp (bo + 3) in
    c00 := !c00 +. (a0 *. b0);
    c01 := !c01 +. (a0 *. b1);
    c02 := !c02 +. (a0 *. b2);
    c03 := !c03 +. (a0 *. b3);
    c10 := !c10 +. (a1 *. b0);
    c11 := !c11 +. (a1 *. b1);
    c12 := !c12 +. (a1 *. b2);
    c13 := !c13 +. (a1 *. b3);
    c20 := !c20 +. (a2 *. b0);
    c21 := !c21 +. (a2 *. b1);
    c22 := !c22 +. (a2 *. b2);
    c23 := !c23 +. (a2 *. b3);
    c30 := !c30 +. (a3 *. b0);
    c31 := !c31 +. (a3 *. b1);
    c32 := !c32 +. (a3 *. b2);
    c33 := !c33 +. (a3 *. b3)
  done;
  if full then begin
    let r0 = (i0 * ldc) + j0 in
    let r1 = r0 + ldc and r2 = r0 + (2 * ldc) and r3 = r0 + (3 * ldc) in
    Array.unsafe_set c r0 !c00;
    Array.unsafe_set c (r0 + 1) !c01;
    Array.unsafe_set c (r0 + 2) !c02;
    Array.unsafe_set c (r0 + 3) !c03;
    Array.unsafe_set c r1 !c10;
    Array.unsafe_set c (r1 + 1) !c11;
    Array.unsafe_set c (r1 + 2) !c12;
    Array.unsafe_set c (r1 + 3) !c13;
    Array.unsafe_set c r2 !c20;
    Array.unsafe_set c (r2 + 1) !c21;
    Array.unsafe_set c (r2 + 2) !c22;
    Array.unsafe_set c (r2 + 3) !c23;
    Array.unsafe_set c r3 !c30;
    Array.unsafe_set c (r3 + 1) !c31;
    Array.unsafe_set c (r3 + 2) !c32;
    Array.unsafe_set c (r3 + 3) !c33
  end
  else begin
    Array.unsafe_set tile 0 !c00;
    Array.unsafe_set tile 1 !c01;
    Array.unsafe_set tile 2 !c02;
    Array.unsafe_set tile 3 !c03;
    Array.unsafe_set tile 4 !c10;
    Array.unsafe_set tile 5 !c11;
    Array.unsafe_set tile 6 !c12;
    Array.unsafe_set tile 7 !c13;
    Array.unsafe_set tile 8 !c20;
    Array.unsafe_set tile 9 !c21;
    Array.unsafe_set tile 10 !c22;
    Array.unsafe_set tile 11 !c23;
    Array.unsafe_set tile 12 !c30;
    Array.unsafe_set tile 13 !c31;
    Array.unsafe_set tile 14 !c32;
    Array.unsafe_set tile 15 !c33;
    for r = 0 to vr - 1 do
      let crow = ((i0 + r) * ldc) + j0 in
      for q = 0 to vc - 1 do
        if (not up) || j0 + q >= i0 + r then
          Array.unsafe_set c (crow + q) (Array.unsafe_get tile ((r * nr) + q))
      done
    done
  end

(* ------------------------------------------------------------------ *)
(* One pool chunk: rows [r0, r1) of the output.  BLIS-style loop nest —
   jc (nc column blocks) → pc (kc depth slabs, ascending, so every cell
   accumulates its terms in ascending-k order across slabs) → ic (mc row
   blocks) → register tiles.  Each chunk packs into its own domain-local
   scratch; B is repacked per chunk, which duplicates O(k·n) copy work but
   keeps the partitioning embarrassingly deterministic. *)

let band ~ta ~tb ~n ~k ~lda ~ldb ~a ~b ~up c r0 r1 =
  if r1 > r0 && n > 0 && k > 0 then begin
    let s = Domain.DLS.get scratch_key in
    let klen_max = min kc k in
    let npan_cap = (min nc n + nr - 1) / nr in
    let bp = grown s.bp (klen_max * npan_cap * nr) in
    s.bp <- bp;
    let mpan_cap = (min mc (r1 - r0) + mr - 1) / mr in
    let ap = grown s.ap (klen_max * mpan_cap * mr) in
    s.ap <- ap;
    let tile = s.tile in
    let jc = ref 0 in
    while !jc < n do
      let j0 = !jc in
      let nlen = min nc (n - j0) in
      let npan = (nlen + nr - 1) / nr in
      let pc = ref 0 in
      while !pc < k do
        let p0 = !pc in
        let klen = min kc (k - p0) in
        pack_b ~tb ~ldb ~b ~j0 ~nlen ~p0 ~klen bp;
        let ic = ref r0 in
        while !ic < r1 do
          let i0 = !ic in
          let mlen = min mc (r1 - i0) in
          let mpan = (mlen + mr - 1) / mr in
          pack_a ~ta ~lda ~a ~i0 ~mlen ~p0 ~klen ap;
          for ip = 0 to mpan - 1 do
            let ib = i0 + (ip * mr) in
            let vr = min mr (i0 + mlen - ib) in
            let abase = ip * (klen * mr) in
            for jp = 0 to npan - 1 do
              let jb = j0 + (jp * nr) in
              let vc = min nr (j0 + nlen - jb) in
              (* Tiles with no cell on or above the diagonal are skipped
                 outright in the syrk case. *)
              if (not up) || jb + vc - 1 >= ib then
                kern ap abase bp (jp * (klen * nr)) klen c n ib jb vr vc up (p0 = 0) tile
            done
          done;
          ic := i0 + mlen
        done;
        pc := p0 + klen
      done;
      jc := j0 + nlen
    done
  end

(* ------------------------------------------------------------------ *)

let gemm ~ta ~tb ~m ~n ~k ~a ~b c =
  if Array.length c <> m * n then invalid_arg "Gemm.gemm: bad output length";
  if m > 0 && n > 0 && k > 0 then begin
    let lda = if ta then m else k in
    let ldb = if tb then k else n in
    Parallel.parallel_for ~cost:(m * n * k) ~n:m (fun r0 r1 ->
        band ~ta ~tb ~n ~k ~lda ~ldb ~a ~b ~up:false c r0 r1)
  end

let syrk ~ta ~n ~k ~a c =
  if Array.length c <> n * n then invalid_arg "Gemm.syrk: bad output length";
  if n > 0 && k > 0 then begin
    (* op(A)·op(A)ᵀ: the B operand is the same array read with the opposite
       transposition, so both strides collapse to the one storage width. *)
    let ld = if ta then n else k in
    Parallel.parallel_for ~cost:((n * n * k / 2) + 1) ~n (fun r0 r1 ->
        band ~ta ~tb:(not ta) ~n ~k ~lda:ld ~ldb:ld ~a ~b:a ~up:true c r0 r1)
  end
