type t = float array

let create n = Array.make n 0.
let init = Array.init
let of_list = Array.of_list
let copy = Array.copy
let dim = Array.length

let check_same_dim name x y =
  if Array.length x <> Array.length y then invalid_arg (name ^ ": dimension mismatch")

let map2 f x y =
  check_same_dim "Vec.map2" x y;
  Array.init (Array.length x) (fun i -> f x.(i) y.(i))

let add x y = map2 ( +. ) x y
let sub x y = map2 ( -. ) x y
let scale a x = Array.map (fun v -> a *. v) x
let axpy a x y = map2 (fun xi yi -> (a *. xi) +. yi) x y

let axpy_in_place a x y =
  check_same_dim "Vec.axpy_in_place" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let mul_elem x y = map2 ( *. ) x y

let dot x y =
  check_same_dim "Vec.dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm x = sqrt (dot x x)
let norm1 x = Array.fold_left (fun acc v -> acc +. Float.abs v) 0. x
let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. x

let normalize x =
  let n = norm x in
  if n = 0. then copy x else scale (1. /. n) x

let sum x = Array.fold_left ( +. ) 0. x
let mean x = sum x /. float_of_int (Array.length x)
let center x =
  let m = mean x in
  Array.map (fun v -> v -. m) x

let map = Array.map

let outer x y = Array.map (fun xi -> scale xi y) x

let equal ?(eps = 1e-9) x y =
  Array.length x = Array.length y
  && begin
       let ok = ref true in
       for i = 0 to Array.length x - 1 do
         if Float.abs (x.(i) -. y.(i)) > eps then ok := false
       done;
       !ok
     end

let all_finite x =
  (* Hand-rolled loop with early exit: this guards stage boundaries on the
     fit paths, so it must cost one pass at most and usually far less. *)
  let n = Array.length x in
  let i = ref 0 in
  while !i < n && Float.is_finite x.(!i) do
    incr i
  done;
  !i = n

let pp fmt x =
  Format.fprintf fmt "[@[%a@]]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
       (fun f v -> Format.fprintf f "%g" v))
    (Array.to_list x)
