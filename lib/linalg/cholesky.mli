(** Cholesky factorization of symmetric positive-definite matrices.

    KTCCA (paper Sec. 4.4) rests on the unique factorization
    [K²pp + εKpp = Lᵀp Lp]; this module provides the lower factor, triangular
    solves, SPD inverses and log-determinants.  Note the paper writes the
    factorization as [LᵀL] with [L] *upper*; we return the conventional lower
    [G] with [A = G Gᵀ], so the paper's [Lp] is our [Gᵀ]. *)

type t
(** The lower factor [G] with [A = G Gᵀ]. *)

exception Not_positive_definite of { pivot : int; value : float }
(** The failing pivot index and its (non-positive, possibly NaN) value — so
    callers escalating regularization (KTCCA's ε-ladder) can report which
    entry of which matrix went bad instead of a bare failure. *)

val decompose : Mat.t -> t
(** Raises [Invalid_argument] on a non-square input,
    [Not_positive_definite] when a pivot is ≤ 0 or NaN (up to roundoff). *)

val decompose_checked : ?stage:string -> Mat.t -> (t, Robust.failure) result
(** Guarded variant: [Error Non_finite] on a NaN/Inf input, [Error
    Not_positive_definite] (with the pivot payload) instead of the
    exception.  [stage] (default ["cholesky"]) labels the failure. *)

val decompose_jittered :
  ?stage:string ->
  ?attempts:int ->
  ?jitter0:float ->
  Mat.t ->
  (t * float, Robust.failure) result
(** Escalation ladder: try the plain factorization, then retry with diagonal
    jitter [jitter0·100ᵏ] for [k = 0 .. attempts−1] (default [attempts] = 4,
    [jitter0] = [1e-12 · max |aᵢᵢ|]).  Returns the factor and the jitter
    actually used ([0.] when none was needed); every retry is logged via
    [Robust].  [Error Not_positive_definite] carries the last pivot and the
    largest jitter tried when the ladder is exhausted — the input was
    genuinely indefinite, not just roundoff-perturbed. *)

val lower : t -> Mat.t
(** The explicit lower-triangular factor [G]. *)

val solve_vec : t -> Vec.t -> Vec.t
(** Solve [A x = b] via two triangular solves. *)

val solve : t -> Mat.t -> Mat.t
val inverse : t -> Mat.t

val solve_lower_vec : t -> Vec.t -> Vec.t
(** Solve [G y = b] (forward substitution only). *)

val solve_lower_transpose : t -> Mat.t -> Mat.t
(** Solve [Gᵀ Y = B]. *)

val inverse_lower : t -> Mat.t
(** [G⁻¹], explicitly. *)

val log_det : t -> float
(** [log det A]. *)

val solve_system : Mat.t -> Mat.t -> Mat.t
(** One-shot SPD solve. *)
