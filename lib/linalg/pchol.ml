type oracle = {
  o_dim : int;
  o_diag : unit -> float array;
  o_column : int -> float array;
}

let oracle_of_mat k =
  let n, m = Mat.dims k in
  if n <> m then invalid_arg "Pchol.oracle_of_mat: not square";
  { o_dim = n;
    o_diag = (fun () -> Mat.diag k);
    o_column = (fun j -> Mat.col k j) }

type info = {
  rank : int;
  trace_initial : float;
  trace_residual : float;
  pivots : int array;
}

let all_finite_arr a =
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if not (Float.is_finite a.(i)) then ok := false
  done;
  !ok

(* Largest residual diagonal entry, ties to the lowest index.  Strict [>]
   keeps the scan deterministic; NaN never wins (comparisons are false). *)
let argmax d =
  let best = ref 0 in
  for i = 1 to Array.length d - 1 do
    if d.(i) > d.(!best) then best := i
  done;
  !best

let residual_trace d =
  let acc = ref 0. in
  for i = 0 to Array.length d - 1 do
    if d.(i) > 0. then acc := !acc +. d.(i)
  done;
  !acc

let decompose ?rank ?(tol = 1e-6) o =
  let n = o.o_dim in
  if n < 1 then invalid_arg "Pchol.decompose: empty oracle";
  let cap_rank =
    match rank with
    | None -> n
    | Some r ->
      if r < 1 then invalid_arg "Pchol.decompose: rank must be >= 1";
      min r n
  in
  let stage = "pchol" in
  let d = o.o_diag () in
  if Array.length d <> n then invalid_arg "Pchol.decompose: diagonal length mismatch";
  if not (all_finite_arr d) then
    Error (Robust.Non_finite { stage; where = "kernel diagonal" })
  else begin
    let dmax0 = Array.fold_left Float.max 0. d in
    let neg_tol = 1e-12 *. Float.max dmax0 1. in
    let bad_neg = ref (-1) in
    Array.iteri (fun i v -> if v < -.neg_tol && !bad_neg < 0 then bad_neg := i) d;
    if !bad_neg >= 0 then
      Error
        (Robust.Not_positive_definite
           { stage; pivot = !bad_neg; value = d.(!bad_neg); jitter_tried = 0. })
    else begin
      let trace0 = residual_trace d in
      if trace0 <= 0. then
        Error
          (Robust.Not_positive_definite
             { stage; pivot = argmax d; value = dmax0; jitter_tried = 0. })
      else begin
        (* Rows of F packed at stride [cap]; capacity doubles as the achieved
           rank grows, so an un-capped call never allocates N×N up front. *)
        let cap = ref (max 1 (min cap_rank 64)) in
        let f = ref (Array.make (n * !cap) 0.) in
        let grow () =
          let cap' = min cap_rank (2 * !cap) in
          let f' = Array.make (n * cap') 0. in
          for i = 0 to n - 1 do
            Array.blit !f (i * !cap) f' (i * cap') !cap
          done;
          cap := cap';
          f := f'
        in
        let pivots = Array.make cap_rank 0 in
        let failure = ref None in
        let steps = ref 0 in
        let finished = ref false in
        while (not !finished) && !failure = None && !steps < cap_rank do
          if residual_trace d <= tol *. trace0 then finished := true
          else begin
            let j = argmax d in
            let dmax = d.(j) in
            if dmax <= 0. then finished := true
            else begin
              let s = !steps in
              if s >= !cap then grow ();
              let col = o.o_column j in
              if Array.length col <> n then
                invalid_arg "Pchol.decompose: column length mismatch";
              if not (all_finite_arr col) then
                failure :=
                  Some
                    (Robust.Non_finite
                       { stage; where = Printf.sprintf "kernel column %d" j })
              else begin
                let fd = !f and c = !cap in
                let piv_row = Array.sub fd (j * c) s in
                let inv_sqrt = 1. /. sqrt dmax in
                (* Row ownership: each i writes only F[i,s] and d[i], and the
                   projection sum runs in ascending step order — bitwise
                   identical at any pool size. *)
                Parallel.parallel_for ~cost:(n * (s + 2)) ~n (fun lo hi ->
                    for i = lo to hi - 1 do
                      let base = i * c in
                      let acc = ref (Array.unsafe_get col i) in
                      for t = 0 to s - 1 do
                        acc :=
                          !acc
                          -. (Array.unsafe_get fd (base + t)
                             *. Array.unsafe_get piv_row t)
                      done;
                      let v = !acc *. inv_sqrt in
                      Array.unsafe_set fd (base + s) v;
                      d.(i) <- d.(i) -. (v *. v)
                    done);
                (* The pivot's own residual is exactly zero; pin it so roundoff
                   can never re-select it. *)
                d.(j) <- 0.;
                pivots.(s) <- j;
                incr steps
              end
            end
          end
        done;
        match !failure with
        | Some e -> Error e
        | None ->
          let ell = !steps in
          if ell = 0 then
            Error
              (Robust.Not_positive_definite
                 { stage; pivot = argmax d; value = dmax0; jitter_tried = 0. })
          else begin
            let fd = !f and c = !cap in
            let factor = Mat.init n ell (fun i t -> fd.((i * c) + t)) in
            Ok
              ( factor,
                { rank = ell;
                  trace_initial = trace0;
                  trace_residual = residual_trace d;
                  pivots = Array.sub pivots 0 ell } )
          end
      end
    end
  end
