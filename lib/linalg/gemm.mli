(** Packed, register-blocked GEMM core.

    Every dense product in the repository — [Mat.mul], [mul_tn], [mul_nt],
    [gram], [tgram], and therefore whitening, the covariance tensor, MTTKRP,
    the factored [Op_tensor] path, kernels and the learners — funnels into
    the two entry points below.  A and B panels are repacked into contiguous
    tile-ordered scratch buffers (per-domain, reused across calls), and the
    inner loop computes an [mr]×[nr] register tile with cache-level
    mc/kc/nc blocking; transposed operands pay a different packing walk
    instead of strided inner loops.

    {2 Bitwise accumulation contract}

    Each output cell is the IEEE-754 sum of its [k] products accumulated one
    at a time in ascending-[k] order, starting from [+0.], with no zero
    skips and no FMA.  Packing, register tiling and cache blocking only
    change {e which cells} are in flight at a time — never the order of
    terms within a cell — so the result is bitwise identical for any
    blocking parameters, any pool size (including the sequential fallback),
    and bitwise identical to the straightforward naive loops kept in [Mat]
    as the reference oracle.  See DESIGN.md §10. *)

type impl = [ `Microkernel | `Naive ]

val default_impl : unit -> impl
(** Resolved once from the [TCCA_GEMM] environment variable: ["naive"]
    selects the straightforward reference loops everywhere, anything else
    (or unset) the packed microkernel.  Mirrors [TCCA_EIG]. *)

val impl : unit -> impl
(** Currently selected implementation ({!set_impl} wins over the
    environment default). *)

val set_impl : impl -> unit
(** Override the implementation — test hook for the microkernel-vs-naive
    equivalence suites. *)

val reset_impl : unit -> unit
(** Drop the {!set_impl} override and fall back to {!default_impl}. *)

(** {2 Blocking parameters} *)

val mr : int
(** Register-tile rows: the microkernel keeps [mr]×[nr] accumulators live
    in registers across the depth loop. *)

val nr : int
(** Register-tile columns. *)

val small_cutoff : unit -> int
(** Products with fewer than this many flops (2·m·n·k) run the naive loops
    even under [`Microkernel] — packing overhead dominates tiny GEMMs (the
    r≈8 factor updates of CP-ALS).  Bitwise invisible: both paths obey the
    accumulation contract. *)

val set_small_cutoff : int -> unit
(** Test hook (set 0 to force the microkernel on tiny shapes). *)

(** {2 Kernels}

    Both kernels add into [c], which callers pass zero-filled; both
    partition output rows across the {!Parallel} pool in the fixed
    contiguous-band scheme (chunk boundaries never affect cell values, so
    any pool size is bitwise identical). *)

val gemm :
  ta:bool -> tb:bool -> m:int -> n:int -> k:int ->
  a:float array -> b:float array -> float array -> unit
(** [gemm ~ta ~tb ~m ~n ~k ~a ~b c] computes [C = op(A)·op(B)] into the
    row-major [m×n] array [c].  [a] stores [op(A)] row-major as [m×k] when
    [ta = false] and as its transpose [k×m] when [ta = true]; likewise [b]
    is [k×n] ([tb = false]) or [n×k] ([tb = true]).  Raises
    [Invalid_argument] if [c] has the wrong length. *)

val syrk : ta:bool -> n:int -> k:int -> a:float array -> float array -> unit
(** [syrk ~ta ~n ~k ~a c] fills the upper triangle (diagonal included) of
    [C = op(A)·op(A)ᵀ] into the row-major [n×n] array [c], where [a] stores
    [op(A)] as [n×k] ([ta = false], the [Mat.gram] case) or [k×n]
    ([ta = true], the [Mat.tgram] case).  Tiles strictly below the diagonal
    are skipped; the caller mirrors the strict lower triangle. *)
