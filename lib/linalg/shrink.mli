(** Shrinkage covariance estimators — Ledoit–Wolf and OAS.

    Both replace the sample covariance [C] with the convex combination
    [C_sh = (1−ρ)·C + ρ·μ·I], [μ = tr(C)/d], where the intensity [ρ ∈ [0,1]]
    is estimated from the data instead of hand-tuned.  Used as the first
    rung of the whitening regularizer in {!Tcca} and {!Pca}: a data-driven
    conditioner in place of the fixed ridge [ε·I], with the ridge ladder
    still behind it as the escalation fallback.

    - Ledoit–Wolf (2004): [ρ = min(β̄², δ²)/δ²] with
      [δ² = ‖C − μI‖²_F / d] and
      [β̄² = (Σₙ‖xₙ‖⁴ − N‖C‖²_F) / (d·N²)] — needs the centered instances.
    - OAS (Chen, Wiesel, Eldar & Hero 2010):
      [ρ = ((1−2/d)·tr(C²) + tr(C)²) / ((N+1−2/d)·(tr(C²) − tr(C)²/d))],
      clipped to [[0,1]] — needs only [C] and [N], so it is the streaming
      (Builder) fallback.

    On white data ([C ≈ μI]) both intensities go to 1 and the shrunk
    estimate collapses to the scaled identity; on strongly structured
    covariances they stay near 0 and [C] passes through unchanged. *)

type t = [ `None | `Lw | `Oas | `Fixed of float ]
(** [`Fixed rho] pins the intensity; it is clipped to [[0,1]]. *)

val lw_intensity : x:Mat.t -> Mat.t -> float
(** [lw_intensity ~x c] for centered instances [x] (d×N columns) and their
    sample covariance [c = x xᵀ/N].  In [[0,1]]. *)

val oas_intensity : n:int -> Mat.t -> float
(** [oas_intensity ~n c] from the covariance and the instance count alone.
    In [[0,1]]. *)

type applied = {
  cov : Mat.t;  (** The shrunk covariance [(1−ρ)C + ρμI]. *)
  intensity : float;  (** ρ actually used ([0.] for [`None]). *)
  target : float;  (** μ = tr(C)/d — the scaled-identity target. *)
}

val apply : ?x:Mat.t -> n:int -> t -> Mat.t -> applied
(** Shrink [c].  [`Lw] requires [?x] (the centered instances) and falls back
    to [`Oas] with a logged warning when it is absent — the streaming
    builder keeps no instances.  [`None] returns [c] itself (same value,
    not a copy) with intensity 0, so the default path is bit-identical to
    no shrinkage at all. *)
