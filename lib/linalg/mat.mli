(** Dense row-major matrices.

    The workhorse type of the whole reproduction: data matrices are stored as
    [d × N] (features × instances), following the paper's notation
    [Xp ∈ R^{dp×N}].  All operations allocate fresh results; dimensions are
    validated and mismatches raise [Invalid_argument]. *)

type t = private { rows : int; cols : int; data : float array }
(** Row-major: element [(i, j)] lives at [data.(i * cols + j)].  The record is
    private so invariants (data length = rows·cols) cannot be broken from
    outside; build values with the constructors below. *)

(** {1 Construction} *)

val create : int -> int -> t
(** Zero matrix. *)

val make : int -> int -> float -> t
val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val diag_of_vec : Vec.t -> t
val of_arrays : float array array -> t
(** Rows; all rows must have equal length. *)

val of_cols : float array array -> t
(** Columns; all columns must have equal length. *)

val unsafe_of_flat : rows:int -> cols:int -> float array -> t
(** Wrap an existing flat row-major array without copying.  The caller must
    not alias it mutably afterwards; length is checked. *)

val copy : t -> t

(** {1 Access} *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val dims : t -> int * int
val row : t -> int -> Vec.t
(** Copy of row [i].  One upfront bounds check, then strided unchecked
    reads — hot in the tridiagonalization/SVD inner loops.  Raises
    [Invalid_argument] when [i] is out of range. *)

val col : t -> int -> Vec.t
(** Copy of column [j]; same single-check discipline as {!row}. *)

val set_row : t -> int -> Vec.t -> unit
val set_col : t -> int -> Vec.t -> unit
val diag : t -> Vec.t
val sub_cols : t -> int -> int -> t
(** [sub_cols a j0 n] is columns [j0 .. j0+n-1]. *)

val sub_rows : t -> int -> int -> t
val select_cols : t -> int array -> t
(** Gather the given columns, in order. *)

val to_arrays : t -> float array array

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val add_scaled_identity : float -> t -> t
(** [add_scaled_identity eps a = a + eps·I] (square only) — the paper's
    regularization [C̃pp = Cpp + εI]. *)

val mul : t -> t -> t
(** Matrix product.  Runs on the packed register-blocked microkernel
    ({!Gemm}) by default, or on the straightforward reference loops when
    [TCCA_GEMM=naive] (or for products too small to amortize packing);
    every route obeys the same per-cell ascending-k accumulation contract,
    so all of them — at any pool size, including the sequential fallback —
    are bitwise identical.  Row-partitioned across the [Parallel] domain
    pool.  See DESIGN.md §10. *)

val mul_vec : t -> Vec.t -> Vec.t
val tmul_vec : t -> Vec.t -> Vec.t
(** [tmul_vec a x = aᵀ x] without forming the transpose. *)

val transpose : t -> t
val gram : t -> t
(** [gram a = a aᵀ] (rows × rows): only upper-triangle tiles are computed
    and the strict lower triangle is mirrored bit-for-bit, so
    [gram a ≡ mul a (transpose a)] bitwise (IEEE multiplication commutes). *)

val tgram : t -> t
(** [tgram a = aᵀ a] (cols × cols), exploiting symmetry the same way;
    [tgram a ≡ mul (transpose a) a] bitwise. *)

val mul_tn : t -> t -> t
(** [mul_tn a b = aᵀ b] without materializing [aᵀ] — the microkernel packs
    [a] with a transposed walk instead of running strided inner loops.
    Bitwise identical to [mul (transpose a) b]. *)

val mul_nt : t -> t -> t
(** [mul_nt a b = a bᵀ] without materializing [bᵀ]; bitwise identical to
    [mul a (transpose b)]. *)

val hcat : t -> t -> t
val vcat : t -> t -> t
val hcat_list : t list -> t
val vcat_list : t list -> t

(** {1 Maps and reductions} *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val trace : t -> float
val frobenius : t -> float
val max_abs : t -> float
val row_means : t -> Vec.t
val center_rows : t -> t * Vec.t
(** Subtract each row's mean (centering instances stored as columns); returns
    the centered matrix and the mean vector, for centering test data later. *)

val sub_col_vec : t -> Vec.t -> t
(** Subtract a length-[rows] vector from every column. *)

val all_finite : t -> bool
(** [true] iff no entry is NaN or infinite (single pass, early exit). *)

val is_symmetric : ?eps:float -> t -> bool
val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
