(** The daemon's wire protocol: length-prefixed binary frames over a stream
    socket, one synchronous request/response pair at a time per connection.

    Framing: a u32 little-endian body length followed by the body; the body
    is a [Checkpoint.Wire] field stream (tagged variants, little-endian i64
    fields) — the same primitives, integrity discipline and portability as
    the snapshot format.  Frames above {!max_frame_bytes} are refused
    before any allocation, so a hostile or corrupt length prefix cannot
    OOM the daemon.

    {b Multi-model routing and wire compatibility.}  Every routed request
    carries a [model_id] naming its target in the daemon's registry.  On
    the wire the field is an {e optional trailing} string: frames from
    single-model (PR 8) clients end where the old body ended and decode
    with [model_id = "default"] — except [Drain], whose absent field maps
    to [""] (drain the whole daemon), preserving the old drain semantics
    exactly.  New fields must only ever be appended and probed with
    [Wire.at_end].

    Reads are deadline-bounded ({!read_frame} never blocks past its
    timeout), which is what lets the daemon shed a stalled client — the
    {!Robust.Inject.Slow_client} fault forces exactly that path. *)

type request =
  | Health
      (** Single-model-era daemon health; answered with the ["default"]
          model's numbers so old monitoring keeps reading sense.  New
          clients use {!List_models} + {!Model_health}. *)
  | Transform of { deadline_ms : int; views : Mat.t array; model_id : string }
      (** Project a batch (instances as columns, one matrix per view).
          [deadline_ms]: [< 0] = the server's default deadline, [0] =
          already expired (degenerate probe), [> 0] = that budget. *)
  | Predict of { deadline_ms : int; views : Mat.t array; model_id : string }
      (** Per-instance high-order correlation scores
          [sᵢ = Σₖ λₖ Πₚ Zₚ[k,i]]. *)
  | Ingest of { views : Mat.t array; model_id : string }
      (** Fold a sample batch into the named model's covariance
          accumulator (no model change until [Refit]).  Creates the model
          entry (cold) if the id is new and valid. *)
  | Refit of { deadline_ms : int; model_id : string }
      (** Warm-started incremental refit from everything ingested into
          that model. *)
  | Swap of { path : string; model_id : string }
      (** Hot-swap the named model from a file. *)
  | Drain of { model_id : string }
      (** [""]: stop accepting work daemon-wide; flush in-flight;
          checkpoint (the PR 8 semantics).  A model id: drain only that
          model — flush its queue, stop its workers, snapshot it — while
          every sibling keeps serving. *)
  | List_models  (** Registry listing, one {!model_info} per model. *)
  | Model_health of { model_id : string }
      (** Full per-model health record, including breaker state. *)

type model_info = {
  mi_id : string;
  mi_version : int;
  mi_r : int;           (** 0 when cold. *)
  mi_breaker : string;  (** ["closed"] / ["open"] / ["half-open"]. *)
  mi_draining : bool;
}

type model_health = {
  mh_id : string;
  mh_version : int;
  mh_r : int;                (** 0 when cold. *)
  mh_dims : int array;       (** Per-view input dims; empty when cold. *)
  mh_queue_depth : int;      (** This model's own bounded queue. *)
  mh_queue_capacity : int;
  mh_workers : int;          (** Live workers (respawns replace the dead). *)
  mh_breaker : string;       (** ["closed"] / ["open"] / ["half-open"]. *)
  mh_retry_after_ms : int;   (** Remaining breaker cooldown; 0 unless open. *)
  mh_failures : int;         (** Consecutive request failures so far. *)
  mh_respawns : int;         (** Workers respawned after crashes. *)
  mh_ingested : int;
  mh_since_fit : int;
  mh_last_refit : string;    (** ["never"], ["installed v3"], ["retained"],
                                 or ["failed: …"]. *)
  mh_draining : bool;
}

type response =
  | R_health of {
      version : int;
      r : int;                 (** 0 when serving cold (no model). *)
      dims : int array;        (** Per-view input dims; empty when cold. *)
      queue_depth : int;
      queue_capacity : int;
      workers : int;
      ingested : int;
      since_fit : int;
      draining : bool;
    }
  | R_matrix of Mat.t
  | R_scores of float array
  | R_ok of { version : int; note : string }
  | R_shed of { depth : int; capacity : int }
      (** Load shed: the target model's bounded queue was full; retry
          later. *)
  | R_deadline of { stage : string; elapsed_ms : int }
      (** The request's budget expired before (or during) compute. *)
  | R_error of { code : string; message : string }
      (** Typed refusal.  [code] is machine-readable: ["no-model"],
          ["unknown-model"], ["bad-request"], ["corrupt"], ["torn"],
          ["version-newer"], ["version-older"], ["refit-failed"],
          ["refit-busy"], ["worker-crash"], ["draining"],
          ["unsupported"]. *)
  | R_unavailable of { model_id : string; retry_after_ms : int }
      (** The named model's circuit breaker is open: the request was
          refused {e immediately} (no queueing, no compute) and the client
          should retry no sooner than [retry_after_ms].  Every other
          model keeps serving. *)
  | R_models of model_info array
  | R_model_health of model_health

val max_frame_bytes : int
(** Refusal threshold for a single frame (64 MiB). *)

val request_to_string : request -> string
val request_of_string : string -> (request, string) result
val response_to_string : response -> string
val response_of_string : string -> (response, string) result

(** {2 Incremental decoding (reactor read path)}

    A {!decoder} accumulates whatever the socket produced — half a header,
    twelve frames, anything — and yields complete frames on demand, so a
    nonblocking reader never needs a blocking [read_exact].  Storage is
    grow-only and compacted in place: a warm connection decodes with no
    per-frame allocation beyond the frame bodies. *)

type decoder

val decoder : unit -> decoder
(** A fresh decoder (one per connection). *)

val decoder_feed : decoder -> bytes -> int -> int -> unit
(** [decoder_feed d src off len] appends [len] bytes of [src] at [off]. *)

val decoder_next : decoder -> [ `Frame of string | `Await | `Oversize of int ]
(** Pull the next complete frame. [`Await]: not enough bytes yet.
    [`Oversize n]: the pending header declares [n > max_frame_bytes] —
    the connection should answer and close (the stream cannot resync). *)

val decoder_buffered : decoder -> int
(** Unconsumed bytes held — [> 0] means a frame is in flight (the
    slow-loris stall detector keys on this). *)

(** {2 Buffered encoding (reactor write path)} *)

val add_frame : Buffer.t -> string -> unit
(** Append one length-prefixed frame to a buffer (client-side pipelining:
    stack many frames, write once). *)

val buffer_response : scratch:Buffer.t -> out:Buffer.t -> response -> unit
(** Encode a response body into [scratch] (cleared first) and append the
    framed bytes to [out].  Both buffers are reused across responses, so a
    warm connection allocates no fresh bytes per response. *)

val buffer_request : Buffer.t -> request -> unit
(** Append one framed request to a buffer. *)

type read_result =
  | Frame of string
  | Closed     (** Peer closed (possibly mid-frame). *)
  | Timeout    (** Deadline passed before a complete frame arrived. *)
  | Oversize of int  (** Declared length above {!max_frame_bytes}. *)

val read_frame : ?timeout_s:float -> Unix.file_descr -> read_result
(** Blocking bounded read of one frame (default timeout 30 s).  With
    {!Robust.Inject.Slow_client} armed, reports [Timeout] immediately —
    the stalled-client simulation. *)

val write_frame : Unix.file_descr -> string -> unit
(** Length-prefix + body, looping over partial writes.  Raises
    [Unix.Unix_error] on a dead peer (callers treat the connection as
    closed). *)

val call : ?timeout_s:float -> Unix.file_descr -> request -> response
(** Client helper (tests, CLI): send one request, await the response.
    Raises [Failure] on close/timeout/malformed reply. *)
