(** The daemon's wire protocol: length-prefixed binary frames over a stream
    socket, one synchronous request/response pair at a time per connection.

    Framing: a u32 little-endian body length followed by the body; the body
    is a [Checkpoint.Wire] field stream (tagged variants, little-endian i64
    fields) — the same primitives, integrity discipline and portability as
    the snapshot format.  Frames above {!max_frame_bytes} are refused
    before any allocation, so a hostile or corrupt length prefix cannot
    OOM the daemon.

    Reads are deadline-bounded ({!read_frame} never blocks past its
    timeout), which is what lets the daemon shed a stalled client — the
    {!Robust.Inject.Slow_client} fault forces exactly that path. *)

type request =
  | Health
  | Transform of { deadline_ms : int; views : Mat.t array }
      (** Project a batch (instances as columns, one matrix per view).
          [deadline_ms]: [< 0] = the server's default deadline, [0] =
          already expired (degenerate probe), [> 0] = that budget. *)
  | Predict of { deadline_ms : int; views : Mat.t array }
      (** Per-instance high-order correlation scores
          [sᵢ = Σₖ λₖ Πₚ Zₚ[k,i]]. *)
  | Ingest of { views : Mat.t array }
      (** Fold a sample batch into the server's covariance accumulator
          (no model change until [Refit]). *)
  | Refit of { deadline_ms : int }
      (** Warm-started incremental refit from everything ingested. *)
  | Swap of { path : string }  (** Hot-swap the model from a file. *)
  | Drain  (** Stop accepting work; flush in-flight; checkpoint. *)

type response =
  | R_health of {
      version : int;
      r : int;                 (** 0 when serving cold (no model). *)
      dims : int array;        (** Per-view input dims; empty when cold. *)
      queue_depth : int;
      queue_capacity : int;
      workers : int;
      ingested : int;
      since_fit : int;
      draining : bool;
    }
  | R_matrix of Mat.t
  | R_scores of float array
  | R_ok of { version : int; note : string }
  | R_shed of { depth : int; capacity : int }
      (** Load shed: the bounded queue was full; retry later. *)
  | R_deadline of { stage : string; elapsed_ms : int }
      (** The request's budget expired before (or during) compute. *)
  | R_error of { code : string; message : string }
      (** Typed refusal.  [code] is machine-readable: ["no-model"],
          ["bad-request"], ["corrupt"], ["torn"], ["version-newer"],
          ["version-older"], ["refit-failed"], ["refit-busy"],
          ["draining"], ["unsupported"]. *)

val max_frame_bytes : int
(** Refusal threshold for a single frame (64 MiB). *)

val request_to_string : request -> string
val request_of_string : string -> (request, string) result
val response_to_string : response -> string
val response_of_string : string -> (response, string) result

type read_result =
  | Frame of string
  | Closed     (** Peer closed (possibly mid-frame). *)
  | Timeout    (** Deadline passed before a complete frame arrived. *)
  | Oversize of int  (** Declared length above {!max_frame_bytes}. *)

val read_frame : ?timeout_s:float -> Unix.file_descr -> read_result
(** Blocking bounded read of one frame (default timeout 30 s).  With
    {!Robust.Inject.Slow_client} armed, reports [Timeout] immediately —
    the stalled-client simulation. *)

val write_frame : Unix.file_descr -> string -> unit
(** Length-prefix + body, looping over partial writes.  Raises
    [Unix.Unix_error] on a dead peer (callers treat the connection as
    closed). *)

val call : ?timeout_s:float -> Unix.file_descr -> request -> response
(** Client helper (tests, CLI): send one request, await the response.
    Raises [Failure] on close/timeout/malformed reply. *)
