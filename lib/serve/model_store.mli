(** Durable fitted-model files for the serving daemon — magic ["TCCM"],
    framed and CRC-checked exactly like solver snapshots (the format is
    {!Checkpoint.Wire} with a different magic and payload schema).

    A model file is the unit of hot swap and of crash recovery: {!save} is
    atomic (temp + rename), and {!load} validates framing, CRC, version
    {e and} model structure/finiteness before handing anything back — a
    torn, corrupt, or version-skewed file maps to the same typed
    {!Checkpoint.load_error}s the snapshot loader uses, so the daemon can
    refuse it precisely and keep serving its current version. *)

val magic : string
(** ["TCCM"]. *)

val version : int
(** Model-file format version (independent of the snapshot format's). *)

val save : path:string -> Tcca.t -> unit
(** Durable atomic write of the full model (means, projections, warm-start
    factors, correlations, solver note) via {!Checkpoint.Wire.write_durable}:
    the temp file is fsynced before the rename and the directory after it,
    so a power loss cannot leave a zero-length or torn file behind a
    valid-looking name.  Raises [Sys_error] if the directory is unwritable.
    With {!Robust.Inject.Torn_model_write} armed, a truncated file lands at
    the final path instead (the crash the protocol prevents), so the next
    {!load} must refuse it. *)

val load : path:string -> (Tcca.t, Checkpoint.load_error) result
(** Never raises on bad content.  Beyond the frame checks, a payload whose
    model is structurally inconsistent or non-finite is [Corrupt] — the
    daemon must never install a poisoned model.  With
    {!Robust.Inject.Torn_swap} armed the read bytes are truncated first
    (simulating a half-copied file at the swap path), so the result is
    [Truncated]. *)
