type task = {
  req : Protocol.request;
  budget : Budget.t;
  deliver : Protocol.response -> unit;
}

type job = Job of task | Stop

type entry = {
  id : string;
  e_mutex : Mutex.t;
  mutable model : Tcca.t option;
  mutable version : int;
  mutable builder : Tcca.Builder.t option;
  mutable ingested : int;
  mutable since_fit : int;
  mutable last_refit : string;
  mutable draining : bool;
  breaker : Breaker.t;
  mutable respawns : int;
  mutable live_workers : int;
  mutable batches : int;
  mutable batched_jobs : int;
  refit_mutex : Mutex.t;
  q_mutex : Mutex.t;
  q_cond : Condition.t;
  queue : job Queue.t;
  mutable threads : Thread.t list;
}

type t = {
  reg_mutex : Mutex.t;
  models : (string, entry) Hashtbl.t;
  root : string option;
  breaker_config : Breaker.config;
}

let mkdir_p dir =
  (* Two levels deep at most (<root>/<id>); no need for a full recursion. *)
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let create ?root ~breaker () =
  Option.iter mkdir_p root;
  {
    reg_mutex = Mutex.create ();
    models = Hashtbl.create 8;
    root;
    breaker_config = breaker;
  }

let id_char_ok c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '.' || c = '_' || c = '-'

let alnum c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let valid_id id =
  let n = String.length id in
  n >= 1 && n <= 64 && alnum id.[0] && String.for_all id_char_ok id

let new_entry t id =
  {
    id;
    e_mutex = Mutex.create ();
    model = None;
    version = 0;
    builder = None;
    ingested = 0;
    since_fit = 0;
    last_refit = "never";
    draining = false;
    breaker = Breaker.create t.breaker_config;
    respawns = 0;
    live_workers = 0;
    batches = 0;
    batched_jobs = 0;
    refit_mutex = Mutex.create ();
    q_mutex = Mutex.create ();
    q_cond = Condition.create ();
    queue = Queue.create ();
    threads = [];
  }

let find t id =
  Mutex.lock t.reg_mutex;
  let e = Hashtbl.find_opt t.models id in
  Mutex.unlock t.reg_mutex;
  e

let find_or_create t id =
  if not (valid_id id) then
    Error (Printf.sprintf "invalid model id %S" id)
  else begin
    Mutex.lock t.reg_mutex;
    let r =
      match Hashtbl.find_opt t.models id with
      | Some e -> (e, false)
      | None ->
        let e = new_entry t id in
        Hashtbl.add t.models id e;
        (e, true)
    in
    Mutex.unlock t.reg_mutex;
    Ok r
  end

let list t =
  Mutex.lock t.reg_mutex;
  let es = Hashtbl.fold (fun _ e acc -> e :: acc) t.models [] in
  Mutex.unlock t.reg_mutex;
  List.sort (fun a b -> compare a.id b.id) es

let model_dir t id =
  match t.root with
  | None -> None
  | Some root ->
    let dir = Filename.concat root id in
    mkdir_p dir;
    Some dir

let snapshot_name v = Printf.sprintf "model-v%06d.tccm" v

let snapshot t e =
  match (model_dir t e.id, e.model) with
  | Some dir, Some model -> (
    let path = Filename.concat dir (snapshot_name e.version) in
    try Model_store.save ~path model
    with Sys_error msg ->
      Robust.warnf "tccad[%s]: snapshot of v%d failed: %s (serving continues)"
        e.id e.version msg)
  | _ -> ()

(* ---- recovery ---------------------------------------------------------- *)

let snapshot_version name =
  try Scanf.sscanf name "model-v%d.tccm%!" (fun v -> Some v)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let load_error_to_string = function
  | Checkpoint.Truncated -> "truncated"
  | Checkpoint.Corrupt what -> Printf.sprintf "corrupt (%s)" what
  | Checkpoint.Version_mismatch { found; expected; _ } ->
    Printf.sprintf "format version %d (expected %d)" found expected

(* Newest snapshot in [dir] that passes full validation; warns per rejected
   file.  [label] names the model in warnings. *)
let recover_dir ~label dir =
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  let candidates =
    Array.to_list files
    |> List.filter_map (fun name ->
           Option.map (fun v -> (v, name)) (snapshot_version name))
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  in
  let rec first_ok = function
    | [] -> None
    | (v, name) :: rest -> (
      let path = Filename.concat dir name in
      match Model_store.load ~path with
      | Ok model -> Some (model, v)
      | Error e ->
        Robust.warnf "tccad[%s]: skipping %s: %s" label name
          (load_error_to_string e);
        first_ok rest)
  in
  match first_ok candidates with
  | Some _ as r -> r
  | None ->
    if candidates <> [] then
      Robust.warnf
        "tccad[%s]: no usable snapshot among %d candidates; cold start" label
        (List.length candidates);
    None

let install t id loaded =
  match find_or_create t id with
  | Error _ -> ()
  | Ok (e, _) -> (
    match loaded with
    | Some (model, v) ->
      Mutex.lock e.e_mutex;
      e.model <- Some model;
      e.version <- v;
      Mutex.unlock e.e_mutex
    | None -> ())

let recover t =
  match t.root with
  | None -> ()
  | Some root ->
    let names = try Sys.readdir root with Sys_error _ -> [||] in
    Array.sort compare names;
    let dirs =
      Array.to_list names
      |> List.filter (fun n ->
             valid_id n
             && try Sys.is_directory (Filename.concat root n)
                with Sys_error _ -> false)
    in
    (* Legacy PR-8 layout: top-level model-v*.tccm files belong to
       "default", unless a default/ subdir exists (which then wins). *)
    let has_legacy =
      Array.exists (fun n -> snapshot_version n <> None) names
    in
    if has_legacy && not (List.mem "default" dirs) then
      install t "default" (recover_dir ~label:"default" root);
    let corrupt_one = Robust.Inject.(active Registry_corrupt_one) in
    List.iteri
      (fun i id ->
        if corrupt_one && i = 0 then begin
          Robust.warnf
            "tccad[%s]: state directory unreadable (injected); cold start" id;
          install t id None
        end
        else install t id (recover_dir ~label:id (Filename.concat root id)))
      dirs
