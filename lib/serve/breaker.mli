(** Per-model circuit breaker: the state machine that turns "this model's
    requests keep failing" into an immediate typed refusal instead of a
    queue full of doomed work.

    Classic three-state breaker, deterministic by construction:

    - {b Closed} — requests flow; [failures] counts {e consecutive}
      failures (a success resets it).  Hitting
      [config.failure_threshold] trips the breaker to Open.
    - {b Open} — every admission is rejected with the remaining cooldown
      ([retry_after_ms]) until [config.open_cooldown_s] has elapsed, then
      the next admission becomes a half-open probe.
    - {b Half-open} — exactly one probe request is in flight at a time
      (single-flight, so re-closing is deterministic in the request
      sequence, not in a thread race); [config.half_open_successes]
      consecutive probe successes re-close the breaker, any probe failure
      re-opens it with a fresh cooldown.

    The module is {e not} thread-safe by itself: the server calls it under
    the owning model's entry lock.  The clock is injected ([?now]) so unit
    tests drive every transition without sleeping. *)

type config = {
  failure_threshold : int;  (** Consecutive failures that trip Closed→Open. *)
  open_cooldown_s : float;  (** Seconds Open rejects before probing. *)
  half_open_successes : int;
      (** Consecutive probe successes that re-close the breaker. *)
}

val default_config : config
(** 5 consecutive failures, 1 s cooldown, 2 probe successes. *)

type state =
  | Closed of { failures : int }
  | Open of { until : float }  (** Absolute [now]-clock time of the next probe. *)
  | Half_open of { successes : int; probing : bool }

type t

val create : ?now:(unit -> float) -> config -> t
(** [now] defaults to [Unix.gettimeofday]; tests inject a fake clock. *)

val state : t -> state

val state_name : t -> string
(** ["closed"] / ["open"] / ["half-open"] — the wire/CLI rendering. *)

val failures : t -> int
(** Consecutive-failure count while Closed, [failure_threshold] while
    Open, [0] while Half-open. *)

type admission =
  | Admit                               (** Closed: serve normally. *)
  | Probe                               (** Half-open: serve, and report the
                                            outcome — it decides the state. *)
  | Reject of { retry_after_ms : int }  (** Open (or a probe already in
                                            flight): refuse immediately. *)

val admit : t -> admission
(** Ask to serve one request now.  May transition Open→Half-open when the
    cooldown has elapsed.  A [Probe] admission marks the single-flight
    probe slot taken until {!record} reports its outcome. *)

val record : t -> ok:bool -> unit
(** Report one served request's outcome.  Closed: success resets the
    consecutive count, failure increments it and trips at the threshold.
    Half-open: the probe's outcome — success counts toward re-closing,
    failure re-opens with a fresh cooldown.  Open: ignored (a straggler
    that was admitted before the trip proves nothing either way). *)

val force_open : t -> cooldown_s:float -> unit
(** Trip to Open unconditionally with the given cooldown — the server's
    lever for structural faults that are not request outcomes (a model
    whose worker-respawn budget is exhausted gets an effectively
    permanent cooldown). *)

val retry_after_ms : t -> int
(** Remaining cooldown while Open (never negative), [0] otherwise. *)
