(** The serving daemon's reactor: a single-threaded [Unix.select] event
    loop owning every connection as a nonblocking fd — per-connection read
    buffers feeding an incremental frame decoder, grow-only write buffers,
    and a completion queue + self-pipe for responses finished on worker
    threads.  Thousands of idle or slow connections cost one fd and a few
    buffers each; a stalled client never occupies a compute worker.

    {b Pipelining.}  A client may stack any number of request frames on
    one connection without waiting; responses come back in request order
    (out-of-order completions park in the connection until their turn).
    Bytes served this way are identical to the same requests sent one at a
    time — ordering is restored before encoding, and dispatch itself is
    {!Server.submit}, the same path as everything else.

    {b Stalls.}  Only a connection that has {e started} a frame and then
    made no progress for [io_timeout_s] is dropped (slow-loris defence);
    idle connections live forever.  With {!Robust.Inject.Slow_client}
    armed, every connection counts as stalled immediately.

    {b Drain.}  {!Server.request_drain} (the SIGTERM handler) wakes the
    reactor through its self-pipe — one nonblocking write, async-signal
    safe — so {!serve_forever} stops accepting within one syscall, not one
    poll tick, flushes in-flight responses (up to a 5 s grace), and shuts
    the engine down. *)

val serve_connection : Server.t -> Unix.file_descr -> unit
(** Serve one already-connected socket until the peer closes, stalls
    mid-frame past [io_timeout_s], or poisons the stream (garbage gets a
    typed ["bad-request"] reply first, oversize frames likewise).  Closes
    the descriptor; never raises.  (A private reactor for one fd — the
    test/bench harness's entry point.) *)

val serve_fds : Server.t -> Unix.file_descr list -> unit
(** One reactor serving several already-connected sockets until all have
    closed — the multi-connection in-process harness. *)

val serve_forever : Server.t -> Unix.sockaddr -> unit
(** Daemon main: bind + listen + accept into the reactor until
    {!Server.request_drain} fires (SIGTERM or a daemon-wide [Drain]), then
    stop accepting, flush, and {!Server.drain_and_stop}.  Unix-domain
    socket paths are unlinked before bind and after close. *)
