(* Three-state circuit breaker.  No internal locking (the server holds the
   owning model's entry lock) and no internal randomness: trips are counted,
   the cooldown is a config constant, and half-open probes are single-flight
   — so every transition is a deterministic function of the request/outcome
   sequence and the injected clock. *)

type config = {
  failure_threshold : int;
  open_cooldown_s : float;
  half_open_successes : int;
}

let default_config = { failure_threshold = 5; open_cooldown_s = 1.0; half_open_successes = 2 }

type state =
  | Closed of { failures : int }
  | Open of { until : float }
  | Half_open of { successes : int; probing : bool }

type t = { cfg : config; now : unit -> float; mutable st : state }

let create ?(now = Unix.gettimeofday) cfg =
  if cfg.failure_threshold < 1 then invalid_arg "Breaker.create: failure_threshold < 1";
  if cfg.half_open_successes < 1 then invalid_arg "Breaker.create: half_open_successes < 1";
  { cfg; now; st = Closed { failures = 0 } }

let state t = t.st

let state_name t =
  match t.st with
  | Closed _ -> "closed"
  | Open _ -> "open"
  | Half_open _ -> "half-open"

let failures t =
  match t.st with
  | Closed { failures } -> failures
  | Open _ -> t.cfg.failure_threshold
  | Half_open _ -> 0

type admission = Admit | Probe | Reject of { retry_after_ms : int }

let remaining_ms t until =
  let left = until -. t.now () in
  if left <= 0. then 0 else int_of_float (ceil (left *. 1000.))

let admit t =
  match t.st with
  | Closed _ -> Admit
  | Open { until } ->
    if t.now () >= until then begin
      (* Cooldown served: this very request is the first half-open probe. *)
      t.st <- Half_open { successes = 0; probing = true };
      Probe
    end
    else Reject { retry_after_ms = max 1 (remaining_ms t until) }
  | Half_open { successes; probing } ->
    if probing then
      (* Single-flight: a second request during a probe cannot add evidence,
         so it waits out (roughly) one more probe round trip. *)
      Reject { retry_after_ms = 1 }
    else begin
      t.st <- Half_open { successes; probing = true };
      Probe
    end

let trip t =
  t.st <- Open { until = t.now () +. t.cfg.open_cooldown_s }

let record t ~ok =
  match t.st with
  | Closed { failures } ->
    if ok then (if failures > 0 then t.st <- Closed { failures = 0 })
    else if failures + 1 >= t.cfg.failure_threshold then trip t
    else t.st <- Closed { failures = failures + 1 }
  | Half_open { successes; probing = _ } ->
    if not ok then trip t
    else if successes + 1 >= t.cfg.half_open_successes then t.st <- Closed { failures = 0 }
    else t.st <- Half_open { successes = successes + 1; probing = false }
  | Open _ -> ()

let force_open t ~cooldown_s = t.st <- Open { until = t.now () +. cooldown_s }

let retry_after_ms t =
  match t.st with
  | Open { until } -> max 1 (remaining_ms t until)
  | Closed _ | Half_open _ -> 0
