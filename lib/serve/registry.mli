(** The multi-model registry: one named serving slot per model, each with
    its own state directory, version counter, refit accumulator, bounded
    job queue, circuit breaker, and health record — so that any fault
    (torn swap, poisoned refit, crashed worker, corrupt state dir) is
    contained to the model that suffered it.

    Division of labour with {!Server}: the registry owns naming, on-disk
    layout, per-model state and recovery; the server owns the concurrency
    discipline built on top (workers, supervision, breaker policy,
    dispatch).  The {!entry} record is therefore deliberately transparent:
    the server mutates it under the documented locks.

    {b Locking.}  [e_mutex] guards an entry's serving state (model,
    version, builder, counters, breaker, worker accounting); [q_mutex] +
    [q_cond] guard its job queue; [refit_mutex] single-flights its refits.
    All three are leaf-level per entry and never held across a fit or a
    transform.  The registry-level [reg_mutex] only guards the id → entry
    table (lookup/insert/list); entry locks are never taken under it.

    {b On-disk layout.}  Each model owns [<root>/<id>/model-v%06d.tccm].
    A PR-8 single-model state dir ([<root>/model-v*.tccm], no subdirs) is
    recovered as the ["default"] model — unless a [<root>/default/]
    directory exists, which then wins. *)

type task = {
  req : Protocol.request;
  budget : Budget.t;
  deliver : Protocol.response -> unit;
      (** Completion callback: invoked exactly once, on whichever thread
          finished the job (a worker, a flush, or the submitter itself for
          refusals).  Must not block and must not raise — the event loop's
          callback just posts to its completion queue. *)
}

type job = Job of task | Stop

type entry = {
  id : string;
  e_mutex : Mutex.t;
  mutable model : Tcca.t option;
  mutable version : int;
  mutable builder : Tcca.Builder.t option;
  mutable ingested : int;
  mutable since_fit : int;
  mutable last_refit : string;
      (** ["never"], ["installed vN"], ["retained"], ["failed: …"]. *)
  mutable draining : bool;  (** Per-model drain; siblings unaffected. *)
  breaker : Breaker.t;
  mutable respawns : int;      (** Workers respawned after crashes. *)
  mutable live_workers : int;  (** Workers currently running. *)
  mutable batches : int;       (** Coalesced GEMM batches executed (≥ 2
                                   requests stacked into one product). *)
  mutable batched_jobs : int;  (** Requests served through those batches. *)
  refit_mutex : Mutex.t;
  q_mutex : Mutex.t;
  q_cond : Condition.t;
  queue : job Queue.t;
  mutable threads : Thread.t list;  (** Every worker ever spawned (dead
                                        ones join instantly). *)
}

type t

val create : ?root:string -> breaker:Breaker.config -> unit -> t
(** An empty registry.  [root] is the state root directory (created if
    missing); without it nothing persists.  Recovery is separate
    ({!recover}) so the server can wire workers to recovered entries. *)

val valid_id : string -> bool
(** Model ids are path- and wire-safe: 1–64 chars from
    [[A-Za-z0-9._-]], first char alphanumeric.  (Rules out [".."], path
    separators, empty, and hidden-file names by construction.) *)

val find : t -> string -> entry option

val find_or_create : t -> string -> (entry * bool, string) result
(** Look up, creating a cold entry when the id is new.  The [bool] is
    [true] iff the entry was just created (the server spawns its workers
    then).  [Error] (a message) on an invalid id — nothing is created. *)

val list : t -> entry list
(** All entries, sorted by id (deterministic listing order). *)

val model_dir : t -> string -> string option
(** [<root>/<id>], created on demand; [None] without a root. *)

val snapshot : t -> entry -> unit
(** Durably write the entry's current model to its own directory as
    [model-v%06d.tccm] (no-op when cold or rootless; a failed write warns
    and continues — serving is never blocked on the disk). *)

val recover : t -> unit
(** Scan the root and populate the registry: each subdirectory with a
    valid id becomes a model, loading its newest snapshot that passes
    full validation; corrupt ones are skipped with warnings and a model
    whose snapshots all fail cold-starts with a warning — {e independently
    per model}, so one rotten state dir never poisons a sibling.  Legacy
    top-level [model-v*.tccm] files recover as ["default"] when no
    [default/] subdirectory exists.  With
    {!Robust.Inject.Registry_corrupt_one} armed, the alphabetically first
    model directory is treated as unreadable (cold start + warning) to
    prove mixed-health recovery end-to-end. *)
