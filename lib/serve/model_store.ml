module Wire = Checkpoint.Wire

let magic = "TCCM"
let version = 1

let add_vec_array b vs =
  Wire.add_int b (Array.length vs);
  Array.iter (Wire.add_f_array b) vs

let get_vec_array c =
  let n = Wire.get_nat c "vector count" in
  Array.init n (fun _ -> Wire.get_f_array c)

let add_mat b (m : Mat.t) =
  Wire.add_int b m.Mat.rows;
  Wire.add_int b m.Mat.cols;
  Wire.add_f_array b m.Mat.data

let get_mat c =
  let rows = Wire.get_nat c "mat rows" in
  let cols = Wire.get_nat c "mat cols" in
  let data = Wire.get_f_array c in
  if Array.length data <> rows * cols then raise (Wire.Decode "mat shape mismatch");
  Mat.unsafe_of_flat ~rows ~cols data

let add_mat_array b ms =
  Wire.add_int b (Array.length ms);
  Array.iter (add_mat b) ms

let get_mat_array c =
  let n = Wire.get_nat c "matrix count" in
  Array.init n (fun _ -> get_mat c)

let encode_parts (p : Tcca.parts) =
  let b = Buffer.create 4096 in
  add_vec_array b p.Tcca.pt_means;
  add_mat_array b p.Tcca.pt_projections;
  add_mat_array b p.Tcca.pt_factors;
  Wire.add_f_array b p.Tcca.pt_correlations;
  Wire.add_string b p.Tcca.pt_note;
  Buffer.contents b

let decode_parts s =
  let c = Wire.cursor s in
  let pt_means = get_vec_array c in
  let pt_projections = get_mat_array c in
  let pt_factors = get_mat_array c in
  let pt_correlations = Wire.get_f_array c in
  let pt_note = Wire.get_string c in
  Wire.expect_end c;
  { Tcca.pt_means; pt_projections; pt_factors; pt_correlations; pt_note }

let save ~path model =
  let bytes = Wire.frame ~magic ~version (encode_parts (Tcca.to_parts model)) in
  if Robust.Inject.(active Torn_model_write) then begin
    (* Power-loss simulation: a torn prefix lands at the *final* path with
       no fsync and no rename — the failure the durable protocol (fsync
       temp, rename, fsync dir) prevents.  The loader must refuse it. *)
    let oc = open_out_bin path in
    output_string oc (String.sub bytes 0 (String.length bytes / 2));
    close_out oc
  end
  else Wire.write_durable ~path bytes

let finite_parts (p : Tcca.parts) =
  Array.for_all (Array.for_all Float.is_finite) p.Tcca.pt_means
  && Array.for_all Mat.all_finite p.Tcca.pt_projections
  && Array.for_all Mat.all_finite p.Tcca.pt_factors
  && Array.for_all Float.is_finite p.Tcca.pt_correlations

let load ~path =
  match Wire.read ~path with
  | Error e -> Error e
  | Ok s ->
    (* [Torn_swap] simulates a half-copied file arriving at the swap path:
       the loader sees a truncated byte string and must refuse it. *)
    let s =
      if Robust.Inject.(active Torn_swap) then String.sub s 0 (String.length s / 2)
      else s
    in
    (match Wire.unframe ~magic ~version s with
    | Error e -> Error e
    | Ok payload -> (
      match decode_parts payload with
      | exception Wire.Decode what -> Error (Checkpoint.Corrupt what)
      | parts ->
        if not (finite_parts parts) then
          Error (Checkpoint.Corrupt "non-finite model values")
        else (
          match Tcca.of_parts parts with
          | model -> Ok model
          | exception Invalid_argument what -> Error (Checkpoint.Corrupt what))))
