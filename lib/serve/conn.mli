(** Per-connection reactor state: incremental decoder, pipelining
    bookkeeping, grow-only output buffer.

    A connection may have any number of requests in flight at once; every
    decoded frame takes a sequence number ({!begin_request}) and whatever
    order the responses complete in ({!complete}), the wire sees them in
    request order — out-of-order completions park until their turn.

    The record is transparent because the reactor owns it outright (flags,
    stall clock); nothing here is thread-safe — all calls happen on the
    reactor thread.  Workers hand responses back through the event loop's
    completion queue, never by touching a connection. *)

type t = {
  fd : Unix.file_descr;
  dec : Protocol.decoder;
  scratch : Buffer.t;   (** Response-body staging; reused every response. *)
  out : Buffer.t;       (** Framed bytes awaiting the socket; grow-only. *)
  mutable out_off : int;      (** Bytes of [out] already written. *)
  mutable next_seq : int;     (** Seq for the next decoded frame. *)
  mutable next_write : int;   (** Seq owed to the wire next. *)
  pending : (int, Protocol.response) Hashtbl.t;
      (** Completed out of order, waiting their turn. *)
  mutable inflight : int;     (** Submitted, not yet completed. *)
  mutable closing : bool;     (** Stop reading; flush, then close. *)
  mutable alive : bool;       (** [false] once the fd is closed. *)
  mutable last_progress : float;  (** Last read byte (stall detection). *)
}

val create : ?now:float -> Unix.file_descr -> t
(** Fresh state for a connected (nonblocking) socket.  [now] seeds the
    stall clock. *)

val fd : t -> Unix.file_descr

val begin_request : t -> int
(** Claim the next sequence number (and count it in flight). *)

val complete : t -> int -> Protocol.response -> unit
(** Deliver the response for a sequence number.  Encodes and appends to
    the output buffer immediately if it is this connection's turn (and
    then any parked successors); parks it otherwise. *)

val flush : chunk:bytes -> t -> [ `Ok | `Closed ]
(** Write as much buffered output as the socket accepts (one [write],
    staged through [chunk]; short writes and [EAGAIN] are fine — call
    again when writable).  [`Closed]: the peer is gone. *)

val unwritten : t -> int

val wants_write : t -> bool
(** Buffered bytes are waiting for the socket. *)

val idle : t -> bool
(** Nothing in flight and nothing buffered. *)

val mid_frame : t -> bool
(** A frame has started arriving but is incomplete — the connection is
    subject to the stall timeout ({!Server.config}[.io_timeout_s]). *)
