(* Length-prefixed frames whose bodies are Checkpoint.Wire field streams —
   the serving protocol deliberately reuses the snapshot format's codec so
   there is exactly one binary-field discipline in the tree.

   Multi-model routing rides on an OPTIONAL trailing [model_id] string on
   every routed request: PR-8-era frames simply end where the old body
   ended, and the decoder maps the absent field to "default" ([Drain]: to
   "" = daemon-wide, preserving the old drain semantics exactly).  New
   fields must therefore only ever be appended, and only decoded through
   [Wire.at_end] probes. *)

module Wire = Checkpoint.Wire

type request =
  | Health
  | Transform of { deadline_ms : int; views : Mat.t array; model_id : string }
  | Predict of { deadline_ms : int; views : Mat.t array; model_id : string }
  | Ingest of { views : Mat.t array; model_id : string }
  | Refit of { deadline_ms : int; model_id : string }
  | Swap of { path : string; model_id : string }
  | Drain of { model_id : string }
  | List_models
  | Model_health of { model_id : string }

type model_info = {
  mi_id : string;
  mi_version : int;
  mi_r : int;
  mi_breaker : string;
  mi_draining : bool;
}

type model_health = {
  mh_id : string;
  mh_version : int;
  mh_r : int;
  mh_dims : int array;
  mh_queue_depth : int;
  mh_queue_capacity : int;
  mh_workers : int;
  mh_breaker : string;
  mh_retry_after_ms : int;
  mh_failures : int;
  mh_respawns : int;
  mh_ingested : int;
  mh_since_fit : int;
  mh_last_refit : string;
  mh_draining : bool;
}

type response =
  | R_health of {
      version : int;
      r : int;
      dims : int array;
      queue_depth : int;
      queue_capacity : int;
      workers : int;
      ingested : int;
      since_fit : int;
      draining : bool;
    }
  | R_matrix of Mat.t
  | R_scores of float array
  | R_ok of { version : int; note : string }
  | R_shed of { depth : int; capacity : int }
  | R_deadline of { stage : string; elapsed_ms : int }
  | R_error of { code : string; message : string }
  | R_unavailable of { model_id : string; retry_after_ms : int }
  | R_models of model_info array
  | R_model_health of model_health

let max_frame_bytes = 64 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Body codec. *)

let add_mat b (m : Mat.t) =
  Wire.add_int b m.Mat.rows;
  Wire.add_int b m.Mat.cols;
  Wire.add_f_array b m.Mat.data

let get_mat c =
  let rows = Wire.get_nat c "mat rows" in
  let cols = Wire.get_nat c "mat cols" in
  let data = Wire.get_f_array c in
  if Array.length data <> rows * cols then raise (Wire.Decode "mat shape mismatch");
  Mat.unsafe_of_flat ~rows ~cols data

let add_views b views =
  Wire.add_int b (Array.length views);
  Array.iter (add_mat b) views

let get_views c =
  let n = Wire.get_nat c "view count" in
  Array.init n (fun _ -> get_mat c)

let add_int_array b a =
  Wire.add_int b (Array.length a);
  Array.iter (Wire.add_int b) a

let get_int_array c =
  let n = Wire.get_nat c "int array length" in
  Array.init n (fun _ -> Wire.get_int c)

(* The wire-compat probe: a PR-8 frame ends exactly where the old body
   ended, so "no bytes left" decodes to the given default model. *)
let get_model_id ?(default = "default") c =
  if Wire.at_end c then default else Wire.get_string c

let request_to_string req =
  let b = Buffer.create 256 in
  (match req with
  | Health -> Wire.add_int b 1
  | Transform { deadline_ms; views; model_id } ->
    Wire.add_int b 2;
    Wire.add_int b deadline_ms;
    add_views b views;
    Wire.add_string b model_id
  | Predict { deadline_ms; views; model_id } ->
    Wire.add_int b 3;
    Wire.add_int b deadline_ms;
    add_views b views;
    Wire.add_string b model_id
  | Ingest { views; model_id } ->
    Wire.add_int b 4;
    add_views b views;
    Wire.add_string b model_id
  | Refit { deadline_ms; model_id } ->
    Wire.add_int b 5;
    Wire.add_int b deadline_ms;
    Wire.add_string b model_id
  | Swap { path; model_id } ->
    Wire.add_int b 6;
    Wire.add_string b path;
    Wire.add_string b model_id
  | Drain { model_id } ->
    Wire.add_int b 7;
    Wire.add_string b model_id
  | List_models -> Wire.add_int b 8
  | Model_health { model_id } ->
    Wire.add_int b 9;
    Wire.add_string b model_id);
  Buffer.contents b

let request_of_cursor c =
  let req =
    match Wire.get_int c with
    | 1 -> Health
    | 2 ->
      let deadline_ms = Wire.get_int c in
      let views = get_views c in
      Transform { deadline_ms; views; model_id = get_model_id c }
    | 3 ->
      let deadline_ms = Wire.get_int c in
      let views = get_views c in
      Predict { deadline_ms; views; model_id = get_model_id c }
    | 4 ->
      let views = get_views c in
      Ingest { views; model_id = get_model_id c }
    | 5 ->
      let deadline_ms = Wire.get_int c in
      Refit { deadline_ms; model_id = get_model_id c }
    | 6 ->
      let path = Wire.get_string c in
      Swap { path; model_id = get_model_id c }
    | 7 ->
      (* An old Drain frame carries nothing: "" = drain the whole daemon,
         exactly what PR-8 clients asked for. *)
      Drain { model_id = get_model_id ~default:"" c }
    | 8 -> List_models
    | 9 -> Model_health { model_id = Wire.get_string c }
    | _ -> raise (Wire.Decode "bad request tag")
  in
  Wire.expect_end c;
  req

let request_of_string s =
  match request_of_cursor (Wire.cursor s) with
  | req -> Ok req
  | exception Wire.Decode what -> Error what

let add_model_info b { mi_id; mi_version; mi_r; mi_breaker; mi_draining } =
  Wire.add_string b mi_id;
  Wire.add_int b mi_version;
  Wire.add_int b mi_r;
  Wire.add_string b mi_breaker;
  Wire.add_bool b mi_draining

let get_model_info c =
  let mi_id = Wire.get_string c in
  let mi_version = Wire.get_int c in
  let mi_r = Wire.get_nat c "model r" in
  let mi_breaker = Wire.get_string c in
  let mi_draining = Wire.get_bool c in
  { mi_id; mi_version; mi_r; mi_breaker; mi_draining }

let add_model_health b h =
  Wire.add_string b h.mh_id;
  Wire.add_int b h.mh_version;
  Wire.add_int b h.mh_r;
  add_int_array b h.mh_dims;
  Wire.add_int b h.mh_queue_depth;
  Wire.add_int b h.mh_queue_capacity;
  Wire.add_int b h.mh_workers;
  Wire.add_string b h.mh_breaker;
  Wire.add_int b h.mh_retry_after_ms;
  Wire.add_int b h.mh_failures;
  Wire.add_int b h.mh_respawns;
  Wire.add_int b h.mh_ingested;
  Wire.add_int b h.mh_since_fit;
  Wire.add_string b h.mh_last_refit;
  Wire.add_bool b h.mh_draining

let get_model_health c =
  let mh_id = Wire.get_string c in
  let mh_version = Wire.get_int c in
  let mh_r = Wire.get_nat c "health r" in
  let mh_dims = get_int_array c in
  let mh_queue_depth = Wire.get_nat c "queue depth" in
  let mh_queue_capacity = Wire.get_nat c "queue capacity" in
  let mh_workers = Wire.get_nat c "workers" in
  let mh_breaker = Wire.get_string c in
  let mh_retry_after_ms = Wire.get_nat c "retry-after" in
  let mh_failures = Wire.get_nat c "failures" in
  let mh_respawns = Wire.get_nat c "respawns" in
  let mh_ingested = Wire.get_nat c "ingested" in
  let mh_since_fit = Wire.get_nat c "since_fit" in
  let mh_last_refit = Wire.get_string c in
  let mh_draining = Wire.get_bool c in
  { mh_id;
    mh_version;
    mh_r;
    mh_dims;
    mh_queue_depth;
    mh_queue_capacity;
    mh_workers;
    mh_breaker;
    mh_retry_after_ms;
    mh_failures;
    mh_respawns;
    mh_ingested;
    mh_since_fit;
    mh_last_refit;
    mh_draining }

let add_response b resp =
  match resp with
  | R_health
      { version;
        r;
        dims;
        queue_depth;
        queue_capacity;
        workers;
        ingested;
        since_fit;
        draining } ->
    Wire.add_int b 1;
    Wire.add_int b version;
    Wire.add_int b r;
    add_int_array b dims;
    Wire.add_int b queue_depth;
    Wire.add_int b queue_capacity;
    Wire.add_int b workers;
    Wire.add_int b ingested;
    Wire.add_int b since_fit;
    Wire.add_bool b draining
  | R_matrix m ->
    Wire.add_int b 2;
    add_mat b m
  | R_scores s ->
    Wire.add_int b 3;
    Wire.add_f_array b s
  | R_ok { version; note } ->
    Wire.add_int b 4;
    Wire.add_int b version;
    Wire.add_string b note
  | R_shed { depth; capacity } ->
    Wire.add_int b 5;
    Wire.add_int b depth;
    Wire.add_int b capacity
  | R_deadline { stage; elapsed_ms } ->
    Wire.add_int b 6;
    Wire.add_string b stage;
    Wire.add_int b elapsed_ms
  | R_error { code; message } ->
    Wire.add_int b 7;
    Wire.add_string b code;
    Wire.add_string b message
  | R_unavailable { model_id; retry_after_ms } ->
    Wire.add_int b 8;
    Wire.add_string b model_id;
    Wire.add_int b retry_after_ms
  | R_models infos ->
    Wire.add_int b 9;
    Wire.add_int b (Array.length infos);
    Array.iter (add_model_info b) infos
  | R_model_health h ->
    Wire.add_int b 10;
    add_model_health b h

let response_to_string resp =
  let b = Buffer.create 256 in
  add_response b resp;
  Buffer.contents b

let response_of_cursor c =
  let resp =
    match Wire.get_int c with
    | 1 ->
      let version = Wire.get_int c in
      let r = Wire.get_nat c "health r" in
      let dims = get_int_array c in
      let queue_depth = Wire.get_nat c "queue depth" in
      let queue_capacity = Wire.get_nat c "queue capacity" in
      let workers = Wire.get_nat c "workers" in
      let ingested = Wire.get_nat c "ingested" in
      let since_fit = Wire.get_nat c "since_fit" in
      let draining = Wire.get_bool c in
      R_health
        { version;
          r;
          dims;
          queue_depth;
          queue_capacity;
          workers;
          ingested;
          since_fit;
          draining }
    | 2 -> R_matrix (get_mat c)
    | 3 -> R_scores (Wire.get_f_array c)
    | 4 ->
      let version = Wire.get_int c in
      let note = Wire.get_string c in
      R_ok { version; note }
    | 5 ->
      let depth = Wire.get_nat c "shed depth" in
      let capacity = Wire.get_nat c "shed capacity" in
      R_shed { depth; capacity }
    | 6 ->
      let stage = Wire.get_string c in
      let elapsed_ms = Wire.get_int c in
      R_deadline { stage; elapsed_ms }
    | 7 ->
      let code = Wire.get_string c in
      let message = Wire.get_string c in
      R_error { code; message }
    | 8 ->
      let model_id = Wire.get_string c in
      let retry_after_ms = Wire.get_nat c "retry-after" in
      R_unavailable { model_id; retry_after_ms }
    | 9 ->
      let n = Wire.get_nat c "model count" in
      R_models (Array.init n (fun _ -> get_model_info c))
    | 10 -> R_model_health (get_model_health c)
    | _ -> raise (Wire.Decode "bad response tag")
  in
  Wire.expect_end c;
  resp

let response_of_string s =
  match response_of_cursor (Wire.cursor s) with
  | resp -> Ok resp
  | exception Wire.Decode what -> Error what

(* ------------------------------------------------------------------ *)
(* Incremental frame decoding — the reactor's read path.  A decoder is a
   grow-only byte accumulator plus a cursor: feed it whatever the socket
   produced (possibly half a header, possibly twelve frames) and pull
   complete frames out one at a time.  Storage is compacted/doubled only
   when a feed does not fit, so a long-lived connection converges on zero
   per-frame allocation beyond the frame bodies themselves. *)

type decoder = {
  mutable d_buf : Bytes.t;
  mutable d_off : int;  (* start of unconsumed bytes *)
  mutable d_end : int;  (* end of valid bytes *)
}

let decoder () = { d_buf = Bytes.create 65536; d_off = 0; d_end = 0 }
let decoder_buffered d = d.d_end - d.d_off

let decoder_feed d src off len =
  if len < 0 || off < 0 || off + len > Bytes.length src then
    invalid_arg "Protocol.decoder_feed";
  let live = decoder_buffered d in
  if len > Bytes.length d.d_buf - d.d_end then
    if live + len <= Bytes.length d.d_buf then begin
      (* Enough total room: slide the live bytes back to the origin. *)
      Bytes.blit d.d_buf d.d_off d.d_buf 0 live;
      d.d_off <- 0;
      d.d_end <- live
    end
    else begin
      let cap = ref (2 * Bytes.length d.d_buf) in
      while live + len > !cap do
        cap := 2 * !cap
      done;
      let nb = Bytes.create !cap in
      Bytes.blit d.d_buf d.d_off nb 0 live;
      d.d_buf <- nb;
      d.d_off <- 0;
      d.d_end <- live
    end;
  Bytes.blit src off d.d_buf d.d_end len;
  d.d_end <- d.d_end + len

let decoder_next d =
  let live = decoder_buffered d in
  if live < 4 then `Await
  else
    let len = Int32.to_int (Bytes.get_int32_le d.d_buf d.d_off) land 0xFFFFFFFF in
    if len > max_frame_bytes then `Oversize len
    else if live < 4 + len then `Await
    else begin
      let body = Bytes.sub_string d.d_buf (d.d_off + 4) len in
      d.d_off <- d.d_off + 4 + len;
      if d.d_off = d.d_end then begin
        d.d_off <- 0;
        d.d_end <- 0
      end;
      `Frame body
    end

(* ------------------------------------------------------------------ *)
(* Buffered frame encoding — the reactor's write path.  Responses are
   encoded straight into per-connection buffers ([scratch] for the body,
   [out] for the framed byte stream): both are grow-only, so a warm
   connection encodes every response without allocating a fresh bytes —
   the regression test in test_event_loop pins this down by counting
   minor words. *)

let add_frame b body =
  let n = String.length body in
  if n > max_frame_bytes then invalid_arg "Protocol.add_frame: frame too large";
  Buffer.add_int32_le b (Int32.of_int n);
  Buffer.add_string b body

let buffer_response ~scratch ~out resp =
  Buffer.clear scratch;
  add_response scratch resp;
  let n = Buffer.length scratch in
  if n > max_frame_bytes then invalid_arg "Protocol.buffer_response: frame too large";
  Buffer.add_int32_le out (Int32.of_int n);
  Buffer.add_buffer out scratch

let buffer_request b req = add_frame b (request_to_string req)

(* ------------------------------------------------------------------ *)
(* Framing over file descriptors. *)

type read_result = Frame of string | Closed | Timeout | Oversize of int

(* Fill [buf.(off .. off+len)] from [fd] before [deadline] (absolute). *)
let rec read_exact fd buf off len ~deadline =
  if len = 0 then `Ok
  else
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0. then `Timeout
    else
      match Unix.select [ fd ] [] [] left with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact fd buf off len ~deadline
      | [], _, _ -> `Timeout
      | _ -> (
        match Unix.read fd buf off len with
        | 0 -> `Closed
        | n -> read_exact fd buf (off + n) (len - n) ~deadline
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact fd buf off len ~deadline)

let read_frame ?(timeout_s = 30.) fd =
  if Robust.Inject.(active Slow_client) then Timeout
  else begin
    let deadline = Unix.gettimeofday () +. timeout_s in
    let hdr = Bytes.create 4 in
    match read_exact fd hdr 0 4 ~deadline with
    | `Closed -> Closed
    | `Timeout -> Timeout
    | `Ok ->
      let len = Int32.to_int (Bytes.get_int32_le hdr 0) land 0xFFFFFFFF in
      if len > max_frame_bytes then Oversize len
      else begin
        let body = Bytes.create len in
        match read_exact fd body 0 len ~deadline with
        | `Closed -> Closed
        | `Timeout -> Timeout
        | `Ok -> Frame (Bytes.unsafe_to_string body)
      end
  end

let write_frame fd body =
  let n = String.length body in
  if n > max_frame_bytes then invalid_arg "Protocol.write_frame: frame too large";
  let msg = Bytes.create (4 + n) in
  Bytes.set_int32_le msg 0 (Int32.of_int n);
  Bytes.blit_string body 0 msg 4 n;
  let total = 4 + n in
  let written = ref 0 in
  while !written < total do
    match Unix.write fd msg !written (total - !written) with
    | k -> written := !written + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let call ?timeout_s fd req =
  write_frame fd (request_to_string req);
  match read_frame ?timeout_s fd with
  | Closed -> failwith "Protocol.call: connection closed"
  | Timeout -> failwith "Protocol.call: timed out"
  | Oversize n -> failwith (Printf.sprintf "Protocol.call: oversize reply (%d bytes)" n)
  | Frame body -> (
    match response_of_string body with
    | Ok resp -> resp
    | Error what -> failwith ("Protocol.call: malformed reply: " ^ what))
