(* Per-connection reactor state: the incremental decoder on the read side,
   a grow-only output buffer on the write side, and the pipelining
   bookkeeping in between.

   Pipelining contract: every decoded frame gets a sequence number in
   arrival order; responses complete in *any* order (different workers,
   different models, refusals inline) and park in [pending] until their
   turn, then promote into [out] — so the bytes on the wire are always the
   responses in request order, whatever the completion order was.

   All mutation happens on the reactor thread (workers hand responses back
   through the event loop's completion queue), so none of this needs a
   lock. *)

type t = {
  fd : Unix.file_descr;
  dec : Protocol.decoder;
  scratch : Buffer.t;  (* response body staging; reused every response *)
  out : Buffer.t;      (* framed bytes awaiting the socket; grow-only *)
  mutable out_off : int;       (* bytes of [out] already written *)
  mutable next_seq : int;      (* seq for the next decoded frame *)
  mutable next_write : int;    (* seq owed to the wire next *)
  pending : (int, Protocol.response) Hashtbl.t;  (* done, out of order *)
  mutable inflight : int;      (* submitted, not yet completed *)
  mutable closing : bool;      (* stop reading; flush, then close *)
  mutable alive : bool;        (* false once the fd is closed *)
  mutable last_progress : float;  (* last read byte (stall detection) *)
}

let create ?(now = Unix.gettimeofday ()) fd =
  { fd;
    dec = Protocol.decoder ();
    scratch = Buffer.create 256;
    out = Buffer.create 4096;
    out_off = 0;
    next_seq = 0;
    next_write = 0;
    pending = Hashtbl.create 8;
    inflight = 0;
    closing = false;
    alive = true;
    last_progress = now }

let fd c = c.fd

let begin_request c =
  let seq = c.next_seq in
  c.next_seq <- seq + 1;
  c.inflight <- c.inflight + 1;
  seq

(* Promote every contiguously-completed response into the output buffer. *)
let rec promote c =
  match Hashtbl.find_opt c.pending c.next_write with
  | None -> ()
  | Some resp ->
    Hashtbl.remove c.pending c.next_write;
    c.next_write <- c.next_write + 1;
    Protocol.buffer_response ~scratch:c.scratch ~out:c.out resp;
    promote c

let complete c seq resp =
  c.inflight <- c.inflight - 1;
  Hashtbl.replace c.pending seq resp;
  promote c

let unwritten c = Buffer.length c.out - c.out_off
let wants_write c = unwritten c > 0
let idle c = c.inflight = 0 && unwritten c = 0
let mid_frame c = Protocol.decoder_buffered c.dec > 0

let flush ~chunk c =
  let n = Int.min (Bytes.length chunk) (unwritten c) in
  if n = 0 then `Ok
  else begin
    Buffer.blit c.out c.out_off chunk 0 n;
    match Unix.write c.fd chunk 0 n with
    | written ->
      c.out_off <- c.out_off + written;
      if unwritten c = 0 then begin
        (* Fully drained: rewind without releasing storage, so a warm
           connection never re-grows its buffer. *)
        Buffer.clear c.out;
        c.out_off <- 0
      end;
      `Ok
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> `Ok
    | exception Unix.Unix_error _ -> `Closed
  end
