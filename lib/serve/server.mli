(** The serving daemon's engine: a bounded-queue worker pool over a live
    TCCA model, robust by construction.

    {b Threading model.}  One OS thread per connection ({!serve_connection})
    plus [workers] compute threads popping a bounded job queue.  Compute
    requests ([Transform]/[Predict]/[Refit]) go through the queue; control
    requests ([Health]/[Ingest]/[Swap]/[Drain]) are answered inline by the
    connection thread.  Numeric kernels stay deterministic under this
    concurrency because [Parallel.parallel_for] falls back to the (bitwise
    identical) sequential path when its domain pool is busy — the
    pool-size-independence contract.

    {b Robustness invariants} (each proven by [test/test_serve.ml]):
    - No request outlives its deadline: every compute request carries a
      {!Budget} and replies [R_deadline] (or a best-so-far model, for
      refits) instead of hanging.
    - A full queue sheds typed [R_shed] replies; the daemon keeps serving.
    - A torn/corrupt/version-skewed hot swap never changes the serving
      version — the swap is validated {e before} installation, so rollback
      is the default, not a recovery.
    - Model-file I/O and refit attempts run under {!Retry} policies with
      deterministic-jitter backoff and typed give-up.
    - Crash recovery: {!create} restarts from the newest valid model file
      in [state_dir], skipping corrupt ones with warnings, degrading to a
      cold start (typed ["no-model"] replies) when none survive. *)

type config = {
  workers : int;
      (** Compute threads.  [0] is allowed (nothing drains the queue —
          test rigs use it to observe shedding). *)
  queue_capacity : int;  (** Bounded queue; overflow sheds. *)
  default_deadline_ms : int;
      (** Deadline applied when a request carries a negative one.
          [0] = expire immediately; negative = unlimited. *)
  io_timeout_s : float;  (** Per-connection frame-read timeout. *)
  state_dir : string option;
      (** Where model snapshots ([model-v%06d.tccm]) land after every
          install and at drain, and where {!create} recovers from. *)
  refit_options : Cp_als.options;  (** Everything but [init] (warm-set). *)
  refit_retry : Retry.policy;
  swap_retry : Retry.policy;
  eps : float;  (** Whitening regularizer for refits. *)
  rank : int;   (** Rank for cold-start refits (live refits keep the
                    serving model's rank). *)
}

val default_config : config
(** [workers = Parallel.num_domains ()], queue 64, deadline 5000 ms, io
    timeout 30 s, no state dir, default ALS options / retry policies,
    eps 1e-2, rank 2. *)

type t

val create : ?model:Tcca.t -> config -> t
(** Build the engine and start its workers.  Without [?model], recovery
    runs against [config.state_dir]: newest valid snapshot wins (its
    version number is adopted), corrupt ones are skipped with warnings,
    and an empty/absent directory means a cold start. *)

val version : t -> int
(** Serving model version: 0 = cold, bumped on every install. *)

val model : t -> Tcca.t option

val draining : t -> bool

val request_drain : t -> unit
(** Flip the drain flag (async-signal-safe: a single atomic store) — the
    SIGTERM handler's body.  New work is refused with ["draining"];
    {!serve_forever} exits its accept loop. *)

val handle : t -> Protocol.request -> Protocol.response
(** Full dispatch for one request — the same path a connection takes,
    including the queue for compute requests (so a caller thread blocks
    until a worker answers, is shed on overflow, etc.).  Exposed for
    in-process tests and benches. *)

val serve_connection : t -> Unix.file_descr -> unit
(** Per-connection loop: framed request/response until the peer closes,
    stalls past [io_timeout_s] (the {!Robust.Inject.Slow_client} path), or
    sends garbage.  Closes the descriptor; never raises. *)

val drain_and_stop : t -> unit
(** Graceful shutdown: refuse new work, let workers flush every queued
    job, stop the workers, snapshot the serving model to [state_dir].
    With [workers = 0], leftover jobs are answered ["draining"] inline. *)

val serve_forever : t -> Unix.sockaddr -> unit
(** Daemon main: bind + listen + accept loop (one thread per connection)
    until {!request_drain} fires (SIGTERM), then {!drain_and_stop}.
    Unix-domain socket paths are unlinked before bind and after close. *)

val snapshot : t -> unit
(** Write the serving model to [state_dir] now (no-op when cold or no
    state dir; a failed write warns and continues). *)
