(** The serving daemon's engine: a {!Registry} of independently supervised
    models, each with its own bounded-queue worker pool, circuit breaker,
    and failure domain.

    {b Threading model.}  One OS thread per connection ({!serve_connection})
    plus [workers] compute threads {e per model}, popping that model's own
    bounded queue.  Compute requests ([Transform]/[Predict]/[Refit]) go
    through the target model's queue; control requests ([Health]/[Ingest]/
    [Swap]/[Drain]/[List_models]/[Model_health]) are answered inline by the
    connection thread.  Numeric kernels stay deterministic under this
    concurrency because [Parallel.parallel_for] falls back to the (bitwise
    identical) sequential path when its domain pool is busy — the
    pool-size-independence contract.

    {b Failure domains} (each proven by [test/test_serve.ml]):
    - A fault targeting one model — torn swap, poisoned refit, crashed
      worker, exhausted respawn budget, tripped breaker, corrupt state
      dir — leaves every sibling's version counter and served projections
      bitwise unchanged.
    - A worker that dies on an uncaught exception answers its in-flight
      request with a typed ["worker-crash"] error, is logged, and is
      respawned — up to [max_respawns] per model; past the budget the
      model's breaker is forced open (effectively permanently) and its
      queue is flushed with [R_unavailable], while other models serve on.
    - [failure_threshold] consecutive request failures (internal errors,
      crashes, deadline expiries) trip the model's breaker: requests are
      refused {e immediately} with [R_unavailable { retry_after_ms }] —
      no queueing, no compute — until the cooldown elapses, then
      deterministic single-flight half-open probes decide whether to
      re-close it.
    - Recovery scans per-model state directories independently: one model
      whose snapshots are all corrupt cold-starts with a warning; the rest
      load their newest valid snapshot.
    - The PR-8 single-model invariants are unchanged per model: deadlines
      ride each job as a {!Budget} created at enqueue, full queues shed
      typed [R_shed], invalid swaps never change the serving version,
      refits are single-flight and warm-started. *)

type config = {
  workers : int;
      (** Compute threads {e per model}.  [0] is allowed (nothing drains
          the queues — test rigs use it to observe shedding). *)
  queue_capacity : int;  (** Per-model bounded queue; overflow sheds. *)
  default_deadline_ms : int;
      (** Deadline applied when a request carries a negative one.
          [0] = expire immediately; negative = unlimited. *)
  io_timeout_s : float;  (** Per-connection frame-read timeout. *)
  state_dir : string option;
      (** State {e root}: each model snapshots to
          [<root>/<id>/model-v%06d.tccm] after every install and at drain,
          and {!create} recovers every model found under it. *)
  refit_options : Cp_als.options;  (** Everything but [init] (warm-set). *)
  refit_retry : Retry.policy;
  swap_retry : Retry.policy;
  eps : float;  (** Whitening regularizer for refits. *)
  rank : int;   (** Rank for cold-start refits (live refits keep the
                    serving model's rank). *)
  breaker : Breaker.config;  (** Per-model circuit breaker thresholds. *)
  max_respawns : int;
      (** Crashed-worker respawn budget per model; past it the model is
          forced unavailable rather than flapping forever. *)
}

val default_config : config
(** [workers = Parallel.num_domains ()] per model, queue 64, deadline
    5000 ms, io timeout 30 s, no state root, default ALS options / retry
    policies, eps 1e-2, rank 2, {!Breaker.default_config}, 4 respawns. *)

type t

val create : ?model:Tcca.t -> config -> t
(** Build the engine: recover every model under [config.state_dir]
    (independently — see {!Registry.recover}), ensure the ["default"]
    model exists, and start each model's workers.  [?model] seeds
    ["default"] at version 1, taking precedence over recovery for that
    model only. *)

val registry : t -> Registry.t
(** The model registry (tests inspect entries through it). *)

val version : t -> int
(** The ["default"] model's version: 0 = cold, bumped on every install. *)

val model : t -> Tcca.t option
(** The ["default"] model. *)

val draining : t -> bool
(** Daemon-wide drain flag (per-model drains don't set it). *)

val request_drain : t -> unit
(** Flip the daemon-wide drain flag (async-signal-safe: a single atomic
    store) — the SIGTERM handler's body.  New work is refused with
    ["draining"]; {!serve_forever} exits its accept loop. *)

val handle : t -> Protocol.request -> Protocol.response
(** Full dispatch for one request — the same path a connection takes,
    including breaker admission and the target model's queue for compute
    requests (so a caller thread blocks until a worker answers, is shed on
    overflow, is rejected while the breaker is open, etc.).  Exposed for
    in-process tests and benches. *)

val serve_connection : t -> Unix.file_descr -> unit
(** Per-connection loop: framed request/response until the peer closes,
    stalls past [io_timeout_s] (the {!Robust.Inject.Slow_client} path), or
    sends garbage.  Closes the descriptor; never raises. *)

val drain_and_stop : t -> unit
(** Graceful daemon shutdown: refuse new work, then drain every model
    (flush its queue, stop its workers, snapshot it). *)

val serve_forever : t -> Unix.sockaddr -> unit
(** Daemon main: bind + listen + accept loop (one thread per connection)
    until {!request_drain} fires (SIGTERM or a daemon-wide [Drain]), then
    {!drain_and_stop}.  Unix-domain socket paths are unlinked before bind
    and after close. *)

val snapshot : t -> unit
(** Snapshot every model to its own state directory now (no-op for cold
    models or without a state root; failed writes warn and continue). *)
