(** The serving daemon's engine: a {!Registry} of independently supervised
    models, each with its own bounded-queue worker pool, circuit breaker,
    and failure domain.

    {b Threading model.}  One {!Event_loop} reactor owns every connection;
    [workers] compute threads {e per model} pop that model's own bounded
    queue.  Compute requests ([Transform]/[Predict]/[Refit]) go through
    the target model's queue; control requests ([Health]/[Ingest]/[Swap]/
    [Drain]/[List_models]/[Model_health]) run on a single control thread
    (via {!submit}) or inline on the caller (via {!handle}), never on a
    compute worker.  Numeric kernels stay deterministic under this
    concurrency because [Parallel.parallel_for] falls back to the (bitwise
    identical) sequential path when its domain pool is busy — the
    pool-size-independence contract.

    {b Micro-batching.}  Workers coalesce compatible [Transform]/[Predict]
    jobs waiting at the head of a model's queue — up to [batch_max]
    requests, lingering up to [batch_window_us] for stragglers when the
    queue runs dry — stacking their instance columns into one matrix and
    projecting with a single GEMM, then scattering columns back per
    request.  Results are {e bitwise identical} to sequential dispatch:
    each output column is an independent ascending-k dot product (the
    packed-kernel contract), so stacking changes throughput, never bits.
    Only shape-identical rectangular requests coalesce; anything else —
    mismatched dims, cold model, expired budget — takes the sequential
    path and fails (or serves) exactly as it always did.

    {b Failure domains} (each proven by [test/test_serve.ml]):
    - A fault targeting one model — torn swap, poisoned refit, crashed
      worker, exhausted respawn budget, tripped breaker, corrupt state
      dir — leaves every sibling's version counter and served projections
      bitwise unchanged.
    - A worker that dies on an uncaught exception answers its in-flight
      request(s) — the whole batch, if it was mid-batch — with a typed
      ["worker-crash"] error, is logged, and is respawned — up to
      [max_respawns] per model; past the budget the model's breaker is
      forced open (effectively permanently) and its queue is flushed with
      [R_unavailable], while other models serve on.
    - [failure_threshold] consecutive request failures (internal errors,
      crashes, deadline expiries) trip the model's breaker: requests are
      refused {e immediately} with [R_unavailable { retry_after_ms }] —
      no queueing, no compute — until the cooldown elapses, then
      deterministic single-flight half-open probes decide whether to
      re-close it.
    - Recovery scans per-model state directories independently: one model
      whose snapshots are all corrupt cold-starts with a warning; the rest
      load their newest valid snapshot.
    - The PR-8 single-model invariants are unchanged per model: deadlines
      ride each job as a {!Budget} created at enqueue, full queues shed
      typed [R_shed], invalid swaps never change the serving version,
      refits are single-flight and warm-started. *)

type config = {
  workers : int;
      (** Compute threads {e per model}.  [0] is allowed (nothing drains
          the queues — test rigs use it to observe shedding). *)
  queue_capacity : int;  (** Per-model bounded queue; overflow sheds. *)
  default_deadline_ms : int;
      (** Deadline applied when a request carries a negative one.
          [0] = expire immediately; negative = unlimited. *)
  io_timeout_s : float;
      (** Mid-frame stall timeout: a connection that has started a frame
          but not finished it within this window is dropped (slow-loris
          defence).  Idle connections (no partial frame) live forever. *)
  state_dir : string option;
      (** State {e root}: each model snapshots to
          [<root>/<id>/model-v%06d.tccm] after every install and at drain,
          and {!create} recovers every model found under it. *)
  refit_options : Cp_als.options;  (** Everything but [init] (warm-set). *)
  refit_retry : Retry.policy;
  swap_retry : Retry.policy;
  eps : float;  (** Whitening regularizer for refits. *)
  rank : int;   (** Rank for cold-start refits (live refits keep the
                    serving model's rank). *)
  breaker : Breaker.config;  (** Per-model circuit breaker thresholds. *)
  max_respawns : int;
      (** Crashed-worker respawn budget per model; past it the model is
          forced unavailable rather than flapping forever. *)
  batch_max : int;
      (** Most requests one GEMM batch may stack ([1] disables
          coalescing). *)
  batch_window_us : int;
      (** How long a worker lingers for stragglers once the queue runs dry
          mid-collection, in microseconds ([0]: take only what is already
          queued — no added latency). *)
}

val default_config : config
(** [workers = Parallel.num_domains ()] per model, queue 64, deadline
    5000 ms, io timeout 30 s, no state root, default ALS options / retry
    policies, eps 1e-2, rank 2, {!Breaker.default_config}, 4 respawns,
    [batch_max = 32], [batch_window_us = 0]. *)

type t

val create : ?model:Tcca.t -> config -> t
(** Build the engine: recover every model under [config.state_dir]
    (independently — see {!Registry.recover}), ensure the ["default"]
    model exists, and start each model's workers plus the control thread.
    [?model] seeds ["default"] at version 1, taking precedence over
    recovery for that model only. *)

val config : t -> config
(** The engine's configuration (the reactor reads [io_timeout_s]). *)

val registry : t -> Registry.t
(** The model registry (tests inspect entries through it). *)

val version : t -> int
(** The ["default"] model's version: 0 = cold, bumped on every install. *)

val model : t -> Tcca.t option
(** The ["default"] model. *)

val batch_stats : t -> string -> (int * int) option
(** [(batches, batched_jobs)] for the named model: coalesced GEMM batches
    executed and requests served through them.  [None] for unknown ids. *)

val draining : t -> bool
(** Daemon-wide drain flag (per-model drains don't set it). *)

val request_drain : t -> unit
(** Flip the daemon-wide drain flag and fire every registered drain hook —
    async-signal-safe (an atomic store plus hooks that are themselves
    signal-safe: the reactor's is a nonblocking pipe write), so this is
    the SIGTERM handler's whole body.  New work is refused with
    ["draining"]; reactors wake immediately instead of on their next poll
    tick. *)

val add_drain_hook : t -> (unit -> unit) -> int
(** Register a hook fired by {!request_drain} (lock-free; the hook must be
    async-signal-safe).  Returns an id for {!remove_drain_hook}. *)

val remove_drain_hook : t -> int -> unit

val handle : t -> Protocol.request -> Protocol.response
(** Full synchronous dispatch for one request — breaker admission and the
    target model's queue for compute requests (so the caller blocks until
    a worker answers, is shed on overflow, is rejected while the breaker
    is open, etc.); control requests run inline.  Exposed for in-process
    tests and benches. *)

val submit : t -> Protocol.request -> (Protocol.response -> unit) -> unit
(** Asynchronous dispatch — the reactor's entry point.  Never blocks the
    caller on compute or control work: refusals (breaker, shed, draining,
    unknown model) invoke the callback on the calling thread before
    returning; accepted compute jobs are answered from a worker thread;
    control requests are answered from the control thread.  The callback
    is invoked exactly once and must not block or raise. *)

val drain_and_stop : t -> unit
(** Graceful daemon shutdown: refuse new work, then drain every model
    (flush its queue — in-flight batches complete, nothing half-answered —
    stop its workers, snapshot it), then stop the control thread. *)

val snapshot : t -> unit
(** Snapshot every model to its own state directory now (no-op for cold
    models or without a state root; failed writes warn and continue). *)
