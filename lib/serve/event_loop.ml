(* The single-reactor event loop.  One thread, one [Unix.select], every
   connection a nonblocking fd with a {!Conn} record: thousands of idle or
   slow clients cost one fd and a few buffers each, and a stalled client
   can never occupy a compute worker — workers only ever see complete,
   decoded requests.

   Data flow per connection:

     readable ─▶ decoder_feed ─▶ decoder_next* ─▶ Server.submit
                                                      │ (worker thread)
     writable ◀─ flush ◀─ Conn.complete ◀─ completion queue + wake pipe

   Workers never touch a connection: their [deliver] callback posts
   (conn, seq, response) to the reactor's completion queue and writes one
   byte to the self-pipe, which is also how {!Server.request_drain} wakes
   the loop from a signal handler — so SIGTERM latency is one syscall, not
   a poll tick.

   Slow-loris policy: only a connection that has {e started} a frame and
   then stalled past [io_timeout_s] is dropped.  Idle connections (no
   partial frame) live forever and cost nothing; pipelined bursts are
   bounded by the queue/shed machinery behind {!Server.submit}, not here. *)

let src = Logs.Src.create "tccad.loop" ~doc:"TCCA serving reactor"

module Log = (val Logs.src_log src : Logs.LOG)

type completion = { cc : Conn.t; cseq : int; cresp : Protocol.response }

type t = {
  server : Server.t;
  comp_mutex : Mutex.t;
  completions : completion Queue.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

let create server =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  { server;
    comp_mutex = Mutex.create ();
    completions = Queue.create ();
    wake_r;
    wake_w }

let destroy t =
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

let wake_byte = Bytes.make 1 '!'

(* Async-signal-safe: a single nonblocking write; EAGAIN means a wake-up
   is already pending, which is all we wanted. *)
let wake t = try ignore (Unix.write t.wake_w wake_byte 0 1) with Unix.Unix_error _ -> ()

(* Wake only on the empty→non-empty transition: the reactor drains the
   whole queue every iteration, so a non-empty queue already has a wake
   byte in flight (or the reactor is awake and about to take it).  Under a
   batched burst this turns ~one pipe write per response into one per
   reactor iteration. *)
let post t cc cseq cresp =
  Mutex.lock t.comp_mutex;
  let was_empty = Queue.is_empty t.completions in
  Queue.push { cc; cseq; cresp } t.completions;
  Mutex.unlock t.comp_mutex;
  if was_empty then wake t

let take_completions t =
  Mutex.lock t.comp_mutex;
  let items = Queue.fold (fun acc x -> x :: acc) [] t.completions in
  Queue.clear t.completions;
  Mutex.unlock t.comp_mutex;
  List.rev items

let bad_request message = Protocol.R_error { code = "bad-request"; message }

(* One decoded frame: claim a seq, dispatch.  Refusals call the callback
   synchronously on this thread — they still go through the completion
   queue, drained later this same iteration, so ordering is uniform. *)
let handle_frame t (c : Conn.t) body =
  let seq = Conn.begin_request c in
  match Protocol.request_of_string body with
  | Error msg ->
    (* The stream itself is fine (framing held) but the body is garbage:
       answer typed, then close — same contract as the blocking server. *)
    c.closing <- true;
    Conn.complete c seq (bad_request msg)
  | Ok req -> Server.submit t.server req (fun resp -> post t c seq resp)

let pump_decoder t (c : Conn.t) =
  let rec go () =
    if not c.closing then
      match Protocol.decoder_next c.dec with
      | `Frame body ->
        handle_frame t c body;
        go ()
      | `Await -> ()
      | `Oversize len ->
        c.closing <- true;
        let seq = Conn.begin_request c in
        Conn.complete c seq
          (bad_request
             (Printf.sprintf "frame length %d exceeds max %d" len
                Protocol.max_frame_bytes))
  in
  go ()

let read_conn t (c : Conn.t) ~chunk ~now =
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> c.closing <- true (* EOF: flush what we owe, then close *)
  | n ->
    c.last_progress <- now;
    Protocol.decoder_feed c.dec chunk 0 n;
    pump_decoder t c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ ->
    (* Hard error (reset, bad fd): nothing useful left to say. *)
    c.closing <- true;
    c.inflight <- 0;
    Buffer.clear c.out;
    c.out_off <- 0

(* The loop proper.  [listen = None]: serve the given fds until each has
   closed (the in-process test/bench harness).  [listen = Some fd]: accept
   until the daemon-wide drain flag flips, then stop accepting, give
   existing connections [drain_grace_s] to flush, and return. *)

let drain_grace_s = 5.0

let run t ~listen fds =
  let chunk = Bytes.create 65536 in
  let io_timeout = (Server.config t.server).Server.io_timeout_s in
  let conns : (Unix.file_descr, Conn.t) Hashtbl.t = Hashtbl.create 64 in
  let add fd =
    Unix.set_nonblock fd;
    Hashtbl.replace conns fd (Conn.create fd)
  in
  List.iter add fds;
  let close_conn (c : Conn.t) =
    if c.alive then begin
      c.alive <- false;
      Hashtbl.remove conns c.fd;
      try Unix.close c.fd with Unix.Unix_error _ -> ()
    end
  in
  let all_conns () = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
  let accepting = ref (listen <> None) in
  let drain_deadline = ref None in
  let rec loop () =
    let now = Unix.gettimeofday () in
    (* The stalled-client simulation stands in for every way a peer can
       wedge a reader: with it armed, every connection is "stalled now". *)
    if Robust.Inject.(active Slow_client) then List.iter close_conn (all_conns ());
    (* Drop real mid-frame stalls; close whatever has finished flushing. *)
    List.iter
      (fun (c : Conn.t) ->
        if Conn.mid_frame c && now -. c.last_progress > io_timeout then begin
          Log.info (fun m -> m "dropping stalled connection (mid-frame %.1fs)"
                               (now -. c.last_progress));
          close_conn c
        end
        else if c.closing && Conn.idle c then close_conn c)
      (all_conns ());
    (* Daemon drain: stop accepting immediately, let live connections
       flush their in-flight responses, close the idle ones. *)
    if Server.draining t.server then begin
      accepting := false;
      (match !drain_deadline with
      | None -> drain_deadline := Some (now +. drain_grace_s)
      | Some _ -> ());
      List.iter (fun c -> if Conn.idle c then close_conn c) (all_conns ())
    end;
    let expired =
      match !drain_deadline with Some d -> now > d | None -> false
    in
    let finished =
      if listen = None then Hashtbl.length conns = 0
      else Server.draining t.server && (Hashtbl.length conns = 0 || expired)
    in
    if finished then List.iter close_conn (all_conns ())
    else begin
      let rds = ref [ t.wake_r ] in
      (match listen with
      | Some lfd when !accepting -> rds := lfd :: !rds
      | _ -> ());
      let wrs = ref [] in
      let busy = ref false in
      Hashtbl.iter
        (fun fd (c : Conn.t) ->
          if not c.closing then rds := fd :: !rds;
          if Conn.wants_write c then wrs := fd :: !wrs;
          if Conn.mid_frame c || c.closing then busy := true)
        conns;
      (* Every productive wake-up — data, completion, accept, drain — is
         event-driven (fd readability or the self-pipe), so a fully idle
         reactor can sleep long ticks.  Only a pending stall deadline or a
         flush-then-close needs a short one. *)
      let tick = if !busy then 0.05 else 0.5 in
      let rd, wr =
        match Unix.select !rds !wrs [] tick with
        | rd, wr, _ -> (rd, wr)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
      in
      let now = Unix.gettimeofday () in
      (* Drain the self-pipe (level-triggered; contents are meaningless). *)
      if List.mem t.wake_r rd then begin
        try
          while Unix.read t.wake_r chunk 0 (Bytes.length chunk) > 0 do
            ()
          done
        with Unix.Unix_error _ -> ()
      end;
      (* Accept everything pending. *)
      (match listen with
      | Some lfd when !accepting && List.mem lfd rd ->
        let rec accept_all () =
          match Unix.accept lfd with
          | fd, _ ->
            add fd;
            accept_all ()
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
            -> ()
        in
        accept_all ()
      | _ -> ());
      (* Reads: feed decoders, dispatch complete frames. *)
      List.iter
        (fun fd ->
          match Hashtbl.find_opt conns fd with
          | Some c when not c.Conn.closing -> read_conn t c ~chunk ~now
          | _ -> ())
        rd;
      (* Completions: promote into each connection's output in order. *)
      List.iter
        (fun { cc; cseq; cresp } ->
          if cc.Conn.alive then Conn.complete cc cseq cresp)
        (take_completions t);
      (* Writes: flush whoever is writable, plus anyone whose output
         appeared just now (their first flush shouldn't wait a tick). *)
      Hashtbl.iter
        (fun fd (c : Conn.t) ->
          if Conn.wants_write c && (List.mem fd wr || not (List.mem fd !wrs))
          then match Conn.flush ~chunk c with `Ok -> () | `Closed -> close_conn c)
        conns;
      loop ()
    end
  in
  loop ()

let serve_fds server fds =
  let t = create server in
  Fun.protect ~finally:(fun () -> destroy t) (fun () -> run t ~listen:None fds)

let serve_connection server fd = serve_fds server [ fd ]

let serve_forever server addr =
  let domain = Unix.domain_of_sockaddr addr in
  let lfd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  (match addr with
  | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | _ -> ());
  Unix.bind lfd addr;
  Unix.listen lfd 128;
  Unix.set_nonblock lfd;
  let t = create server in
  (* SIGTERM → Server.request_drain → this hook → one pipe write: the
     reactor wakes immediately instead of on its next poll tick. *)
  let hook = Server.add_drain_hook server (fun () -> wake t) in
  Fun.protect
    ~finally:(fun () ->
      Server.remove_drain_hook server hook;
      destroy t;
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      match addr with
      | Unix.ADDR_UNIX path -> (
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
      | _ -> ())
    (fun () -> run t ~listen:(Some lfd) []);
  Server.drain_and_stop server
