(* The daemon engine.  Concurrency layout, per model:

     the reactor ({!Event_loop}) or any caller ──▶ submit/handle
            │ control requests → the control thread (Health/Ingest/Swap/…)
            │ compute requests → breaker admission, then enqueue
            ▼                    (bounded, shed on overflow)
     entry queue ◀── entry workers (config.workers threads) ──▶ Transform/
                          │                                     Predict/Refit
                          └─ micro-batcher: compatible Transform/Predict
                             jobs at the queue head coalesce (≤ batch_max,
                             ≤ batch_window_us) into ONE stacked-column
                             GEMM, scattered back per request

   Every model owns its queue, workers, breaker, builder, and state dir —
   its failure domain.  The entry mutex guards the model/version/builder
   cell (plus breaker and worker accounting) and is only ever held for
   O(state) work — never across a fit or a transform, so a model serves at
   its old version while its refit runs, and siblings never wait on it at
   all.  Deadlines ride each job as a [Budget] created at *enqueue* time,
   so time spent queued counts against the request.

   Jobs carry a completion callback instead of a mailbox: the event loop
   submits asynchronously ({!submit}) and gets the response posted back to
   its completion queue; the synchronous {!handle} is a thin wrapper that
   parks the caller on a condition variable until the callback fires.

   Micro-batching is bitwise-exact: stacking request columns into one
   matrix and projecting with a single GEMM yields每 column the same bits
   as projecting it alone, because the packed kernel accumulates each
   output element independently in ascending-k order (the PR-6 contract).
   Requests whose shape does not match the serving model never enter a
   batch — they take the sequential path and fail with the same reply they
   always did.

   Supervision: a worker that dies on an uncaught exception answers its
   in-flight job(s) with a typed "worker-crash" error, records a breaker
   failure, logs, and is respawned — up to [max_respawns]; past the budget
   the last worker's death forces the breaker open (effectively
   permanently) and flushes the queue with [R_unavailable]. *)

let src = Logs.Src.create "tccad" ~doc:"TCCA serving daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  workers : int;
  queue_capacity : int;
  default_deadline_ms : int;
  io_timeout_s : float;
  state_dir : string option;
  refit_options : Cp_als.options;
  refit_retry : Retry.policy;
  swap_retry : Retry.policy;
  eps : float;
  rank : int;
  breaker : Breaker.config;
  max_respawns : int;
  batch_max : int;
  batch_window_us : int;
}

let default_config =
  { workers = Parallel.num_domains ();
    queue_capacity = 64;
    default_deadline_ms = 5000;
    io_timeout_s = 30.;
    state_dir = None;
    refit_options = Cp_als.default_options;
    refit_retry = Retry.default_policy;
    swap_retry = Retry.default_policy;
    eps = 1e-2;
    rank = 2;
    breaker = Breaker.default_config;
    max_respawns = 4;
    batch_max = 32;
    batch_window_us = 0 }

(* The control executor: one thread draining a queue of thunks, so the
   reactor never blocks on a Swap's file I/O or a Drain's thread joins.
   After shutdown ([alive = false], queue drained) thunks run inline on
   the submitting thread instead. *)
type control = {
  c_mutex : Mutex.t;
  c_cond : Condition.t;
  c_queue : (unit -> unit) Queue.t;
  mutable c_alive : bool;
  mutable c_thread : Thread.t option;
}

type t = {
  cfg : config;
  reg : Registry.t;
  drain_flag : bool Atomic.t;
  ctl : control;
  (* Immutable snapshot under an Atomic so {!request_drain} can run the
     hooks from a signal handler without ever taking a lock. *)
  drain_hooks : (int * (unit -> unit)) list Atomic.t;
  hook_seq : int Atomic.t;
}

let config t = t.cfg
let registry t = t.reg
let draining t = Atomic.get t.drain_flag

let add_drain_hook t f =
  let id = Atomic.fetch_and_add t.hook_seq 1 in
  let rec go () =
    let cur = Atomic.get t.drain_hooks in
    if not (Atomic.compare_and_set t.drain_hooks cur ((id, f) :: cur)) then go ()
  in
  go ();
  id

let remove_drain_hook t id =
  let rec go () =
    let cur = Atomic.get t.drain_hooks in
    let next = List.filter (fun (i, _) -> i <> id) cur in
    if not (Atomic.compare_and_set t.drain_hooks cur next) then go ()
  in
  go ()

let request_drain t =
  Atomic.set t.drain_flag true;
  (* Wake every registered reactor immediately (self-pipe writes): drain
     latency is bounded by a syscall, not a poll interval. *)
  List.iter (fun (_, f) -> try f () with _ -> ()) (Atomic.get t.drain_hooks)

let with_entry (e : Registry.entry) f =
  Mutex.lock e.Registry.e_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock e.Registry.e_mutex) f

let default_entry t =
  match Registry.find_or_create t.reg "default" with
  | Ok (e, _) -> e
  | Error _ -> assert false (* "default" is a valid id *)

let version t =
  let e = default_entry t in
  with_entry e (fun () -> e.Registry.version)

let model t =
  let e = default_entry t in
  with_entry e (fun () -> e.Registry.model)

let batch_stats t id =
  match Registry.find t.reg id with
  | None -> None
  | Some e ->
    Some (with_entry e (fun () -> (e.Registry.batches, e.Registry.batched_jobs)))

(* Guardrail events accumulated in Robust's ring (whitening escalations,
   warm-start fallbacks, supervision notices, recovery degradations) are
   shipped to the daemon log in batches — drained, so nothing is ever
   reported twice. *)
let ship_warnings () =
  List.iter (fun w -> Log.warn (fun m -> m "%s" w)) (Robust.drain_warnings ())

(* ------------------------------------------------------------------ *)
(* Deadlines. *)

let budget_of_deadline t deadline_ms =
  let ms = if deadline_ms < 0 then t.cfg.default_deadline_ms else deadline_ms in
  if ms < 0 then Budget.unlimited
  else Budget.create ~wall_seconds:(float_of_int ms /. 1000.) ()

let deadline_reply = function
  | Robust.Deadline_exceeded { stage; elapsed; _ } ->
    Protocol.R_deadline { stage; elapsed_ms = int_of_float (elapsed *. 1000.) }
  | f -> Protocol.R_error { code = "internal"; message = Robust.failure_to_string f }

(* ------------------------------------------------------------------ *)
(* Breaker plumbing.  The breaker judges *served* outcomes: things that
   prove the model's serving path broken (crashes, internal errors, failed
   refits, blown deadlines) count against it; deterministic typed refusals
   (no-model, bad-request, refit-busy) count as successes — the path
   answered exactly as specified; load shedding and admission decisions
   are not outcomes at all. *)

let breaker_outcome = function
  | Protocol.R_deadline _ -> Some false
  | Protocol.R_error { code = "internal" | "worker-crash" | "refit-failed"; _ } ->
    Some false
  | Protocol.R_matrix _ | Protocol.R_scores _ | Protocol.R_ok _ -> Some true
  | Protocol.R_error { code = "no-model" | "bad-request" | "refit-busy"; _ } ->
    Some true
  | _ -> None

let record_breaker (e : Registry.entry) resp =
  match breaker_outcome resp with
  | None -> ()
  | Some ok -> with_entry e (fun () -> Breaker.record e.Registry.breaker ~ok)

(* Record + deliver: every job gets exactly one of these. *)
let answer e (j : Registry.task) resp =
  record_breaker e resp;
  j.Registry.deliver resp

(* ------------------------------------------------------------------ *)
(* Compute handlers (worker side). *)

let transform_reply m views budget ~stage =
  match Budget.expired ~stage ~sweeps:0 budget with
  | Some f -> deadline_reply f
  | None -> (
    match Tcca.transform m views with
    | z -> Protocol.R_matrix z
    | exception Invalid_argument msg ->
      Protocol.R_error { code = "bad-request"; message = msg })

(* Per-instance high-order correlation score: sᵢ = Σₖ λₖ Πₚ Zₚ[k,i] — the
   rank-r canonical polyadic form of ρ(h₁ᵀx₁, …, hₘᵀxₘ) evaluated at
   instance i.  Shared verbatim by the sequential and batched paths: each
   score reads only its own column of the per-view projections, which is
   what makes cross-request stacking bitwise-exact. *)
let scores_of_projections m (zs : Mat.t array) ~off ~n =
  let lambda = Tcca.correlations m in
  let r = Array.length lambda in
  Array.init n (fun i ->
      let s = ref 0. in
      for k = 0 to r - 1 do
        let prod = ref lambda.(k) in
        Array.iter (fun z -> prod := !prod *. Mat.get z k (off + i)) zs;
        s := !s +. !prod
      done;
      !s)

let predict_reply m views budget =
  match Budget.expired ~stage:"serve.predict" ~sweeps:0 budget with
  | Some f -> deadline_reply f
  | None -> (
    match Array.mapi (fun p x -> Tcca.transform_view m p x) views with
    | exception Invalid_argument msg ->
      Protocol.R_error { code = "bad-request"; message = msg }
    | zs ->
      if Array.length views <> Tcca.n_views m then
        Protocol.R_error { code = "bad-request"; message = "view count mismatch" }
      else
        let n = snd (Mat.dims zs.(0)) in
        Protocol.R_scores (scores_of_projections m zs ~off:0 ~n))

let refit_reply t (e : Registry.entry) budget =
  if not (Mutex.try_lock e.Registry.refit_mutex) then
    Protocol.R_error { code = "refit-busy"; message = "another refit is in progress" }
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock e.Registry.refit_mutex)
      (fun () ->
        let live, since, builder =
          with_entry e (fun () -> (e.model, e.since_fit, e.builder))
        in
        let retained () =
          let v =
            with_entry e (fun () ->
                e.last_refit <- "retained";
                e.version)
          in
          Protocol.R_ok
            { version = v;
              note = "no new samples since last fit — serving model retained" }
        in
        match builder with
        (* Nothing new: skip the solve entirely so the reply provably
           serves the bit-identical live model. *)
        | None -> retained ()
        | Some _ when since = 0 -> retained ()
        | Some b -> (
          let attempt () =
            (* Builder folds race with Ingest; finalize under the entry
               lock (O(statistics), not O(fit)). *)
            let raw = with_entry e (fun () -> Tcca.Builder.finalize b) in
            let prep () = Tcca.prepare_of_raw_checked ~eps:t.cfg.eps raw in
            let prepared =
              (* [Refit_nan] reuses the fit path's own covariance-poison
                 guardrail, so the refit failure matrix is the real one. *)
              if Robust.Inject.(active Refit_nan) then
                Robust.Inject.with_stage Robust.Inject.Covariance_nan prep
              else prep ()
            in
            match prepared with
            | Error f -> Error f
            | Ok prepared ->
              let solver, rank =
                match live with
                | Some m -> (Tcca.warm_solver ~options:t.cfg.refit_options m, Tcca.r m)
                | None -> (Tcca.Als t.cfg.refit_options, t.cfg.rank)
              in
              Tcca.fit_prepared_checked ~solver ~budget ~r:rank prepared
          in
          let on_retry ~attempt ~delay err =
            Log.warn (fun m ->
                m "[%s] refit attempt %d failed (%s) — retrying in %.0f ms"
                  e.Registry.id attempt (Robust.failure_to_string err)
                  (delay *. 1000.))
          in
          match Retry.run ~policy:t.cfg.refit_retry ~on_retry attempt with
          | Ok model' ->
            let v =
              with_entry e (fun () ->
                  e.model <- Some model';
                  e.version <- e.version + 1;
                  e.since_fit <- 0;
                  e.last_refit <- Printf.sprintf "installed v%d" e.version;
                  e.version)
            in
            Registry.snapshot t.reg e;
            ship_warnings ();
            Protocol.R_ok
              { version = v; note = "refit installed: " ^ Tcca.solver_info model' }
          | Error gu ->
            ship_warnings ();
            let message =
              Printf.sprintf "%s (gave up after %d attempts, %.0f ms backoff)"
                (Robust.failure_to_string gu.Retry.ga_last_error)
                gu.Retry.ga_attempts
                (gu.Retry.ga_total_delay *. 1000.)
            in
            with_entry e (fun () -> e.last_refit <- "failed: " ^ message);
            Protocol.R_error { code = "refit-failed"; message }))

let no_model = Protocol.R_error { code = "no-model"; message = "serving cold: no model" }

(* A worker raising [Crashed] simulates an abrupt worker death (stack
   overflow, fatal signal in a C stub, …): the exception escapes the
   compute wrapper and kills the thread, exercising supervision. *)
exception Crashed

let compute t (e : Registry.entry) req budget =
  if Robust.Inject.(active Worker_crash) then raise Crashed;
  match req with
  | Protocol.Transform { views; _ } -> (
    match with_entry e (fun () -> e.model) with
    | None -> no_model
    | Some m -> transform_reply m views budget ~stage:"serve.transform")
  | Protocol.Predict { views; _ } -> (
    match with_entry e (fun () -> e.model) with
    | None -> no_model
    | Some m -> predict_reply m views budget)
  | Protocol.Refit _ -> refit_reply t e budget
  | Protocol.Health | Protocol.Ingest _ | Protocol.Swap _ | Protocol.Drain _
  | Protocol.List_models | Protocol.Model_health _ ->
    Protocol.R_error { code = "internal"; message = "control request on compute path" }

let worker_crashed =
  Protocol.R_error
    { code = "worker-crash"; message = "worker died serving this request" }

(* The plain sequential path: one job, exactly the PR-8/9 behavior.  Also
   the fallback for anything the batcher declines. *)
let run_single t (e : Registry.entry) (j : Registry.task) =
  let outcome =
    match compute t e j.Registry.req j.Registry.budget with
    | resp -> Ok resp
    | exception Crashed -> Error ()
    | exception ex ->
      Ok (Protocol.R_error { code = "internal"; message = Printexc.to_string ex })
  in
  match outcome with
  | Ok resp -> answer e j resp
  | Error () ->
    (* The in-flight request gets a typed answer before the thread dies —
       a crash must never leave a client waiting forever. *)
    answer e j worker_crashed;
    raise Crashed

(* ------------------------------------------------------------------ *)
(* Micro-batching.  Compatible Transform/Predict jobs at the queue head
   coalesce into one stacked-column product.  Two jobs are compatible when
   they are the same kind and every view agrees on its row count; a job
   enters a batch at all only if it is "rectangular" (every view has the
   same, nonzero column count) so the scatter offsets are well defined.
   Shape errors never reach the batched path: if the stacked views do not
   exactly match the serving model, every member is replayed through
   {!run_single} and fails with its usual sequential reply. *)

let views_of = function
  | Protocol.Transform { views; _ } | Protocol.Predict { views; _ } -> views
  | _ -> [||]

let batch_kind = function
  | Protocol.Transform _ -> 1
  | Protocol.Predict _ -> 2
  | _ -> 0

(* [Some n] iff every view has exactly [n ≥ 1] columns. *)
let rect_cols views =
  if Array.length views = 0 then None
  else
    let n = snd (Mat.dims views.(0)) in
    if n = 0 then None
    else if Array.for_all (fun v -> snd (Mat.dims v) = n) views then Some n
    else None

let coalescable req = batch_kind req > 0 && rect_cols (views_of req) <> None

let compatible a b =
  batch_kind a = batch_kind b
  && batch_kind a > 0
  &&
  let va = views_of a and vb = views_of b in
  Array.length va = Array.length vb
  && Array.for_all2 (fun x y -> fst (Mat.dims x) = fst (Mat.dims y)) va vb

(* Pop every compatible job sitting behind [first]; with a batching window
   configured, linger (in short naps) for stragglers while the queue is
   empty — but never past the window, never past [batch_max], and never
   once a Stop or an incompatible job reaches the head (drain must flush
   in arrival order, and a batch begun before drain always completes:
   Stop tokens are queued behind real jobs and are never popped here). *)
let collect_batch t (e : Registry.entry) (first : Registry.task) =
  if t.cfg.batch_max <= 1 || not (coalescable first.Registry.req) then [ first ]
  else begin
    let acc = ref [ first ] in
    let count = ref 1 in
    (* Take compatible jobs off the head; true iff the queue is empty
       afterwards (head incompatible → false → stop lingering). *)
    let grab () =
      Mutex.lock e.Registry.q_mutex;
      let rec take () =
        if !count < t.cfg.batch_max then
          match Queue.peek_opt e.Registry.queue with
          | Some (Registry.Job j2)
            when coalescable j2.Registry.req
                 && compatible first.Registry.req j2.Registry.req ->
            ignore (Queue.pop e.Registry.queue);
            acc := j2 :: !acc;
            incr count;
            take ()
          | _ -> ()
      in
      take ();
      let empty = Queue.is_empty e.Registry.queue in
      Mutex.unlock e.Registry.q_mutex;
      empty
    in
    let empty = grab () in
    let window = float_of_int t.cfg.batch_window_us *. 1e-6 in
    if window > 0. && empty && !count < t.cfg.batch_max && not (draining t) then begin
      let deadline = Unix.gettimeofday () +. window in
      let rec linger () =
        let left = deadline -. Unix.gettimeofday () in
        if !count < t.cfg.batch_max && left > 0. && not (draining t) then begin
          Thread.delay (Float.min 50e-6 left);
          if grab () then linger ()
        end
      in
      linger ()
    end;
    List.rev !acc
  end

let batch_cols (j : Registry.task) = snd (Mat.dims (views_of j.Registry.req).(0))

(* ≥ 2 jobs, same kind, per-view rows agree, all rectangular. *)
let process_coalesced t (e : Registry.entry) jobs =
  if Robust.Inject.(active Worker_crash) then begin
    List.iter (fun j -> answer e j worker_crashed) jobs;
    raise Crashed
  end;
  match with_entry e (fun () -> e.model) with
  | None -> List.iter (fun j -> answer e j no_model) jobs
  | Some m ->
    let first_views = views_of (List.hd jobs).Registry.req in
    let shape_ok =
      Array.length first_views = Tcca.n_views m
      && Array.for_all2
           (fun v d -> fst (Mat.dims v) = d)
           first_views (Tcca.view_dims m)
    in
    if not shape_ok then
      (* Doomed shapes replay sequentially so the error replies are the
         exact ones a lone request would have gotten. *)
      List.iter (run_single t e) jobs
    else begin
      let is_transform = batch_kind (List.hd jobs).Registry.req = 1 in
      let stage = if is_transform then "serve.transform" else "serve.predict" in
      let live, dead =
        List.partition_map
          (fun (j : Registry.task) ->
            match Budget.expired ~stage ~sweeps:0 j.Registry.budget with
            | Some f -> Right (j, f)
            | None -> Left j)
          jobs
      in
      List.iter (fun (j, f) -> answer e j (deadline_reply f)) dead;
      match live with
      | [] -> ()
      | [ j ] -> run_single t e j
      | live -> (
        let nb = List.length live in
        let stacked =
          Array.init (Array.length first_views) (fun p ->
              Mat.hcat_list
                (List.map (fun j -> (views_of j.Registry.req).(p)) live))
        in
        let outcome =
          if is_transform then
            match Tcca.transform m stacked with
            | z ->
              Ok
                (fun (j : Registry.task) off n ->
                  ignore j;
                  Protocol.R_matrix (Mat.sub_cols z off n))
            | exception ex -> Error ex
          else
            match Array.mapi (fun p x -> Tcca.transform_view m p x) stacked with
            | zs ->
              Ok
                (fun (j : Registry.task) off n ->
                  ignore j;
                  Protocol.R_scores (scores_of_projections m zs ~off ~n))
            | exception ex -> Error ex
        in
        match outcome with
        | Ok slice ->
          ignore
            (List.fold_left
               (fun off j ->
                 let n = batch_cols j in
                 answer e j (slice j off n);
                 off + n)
               0 live);
          with_entry e (fun () ->
              e.batches <- e.batches + 1;
              e.batched_jobs <- e.batched_jobs + nb)
        | Error ex ->
          (* Shapes were prechecked, so this is genuinely unexpected. *)
          let resp =
            Protocol.R_error { code = "internal"; message = Printexc.to_string ex }
          in
          List.iter (fun j -> answer e j resp) live)
    end

(* ------------------------------------------------------------------ *)
(* Queue, workers, supervision. *)

let unavailable (e : Registry.entry) =
  Protocol.R_unavailable
    { model_id = e.Registry.id;
      retry_after_ms = with_entry e (fun () -> Breaker.retry_after_ms e.breaker) }

let flush_queue (e : Registry.entry) resp_of =
  Mutex.lock e.Registry.q_mutex;
  Queue.iter
    (function
      | Registry.Job j -> j.Registry.deliver (resp_of ())
      | Registry.Stop -> ())
    e.queue;
  Queue.clear e.queue;
  Mutex.unlock e.q_mutex

let worker_loop t (e : Registry.entry) =
  let rec loop () =
    Mutex.lock e.Registry.q_mutex;
    while Queue.is_empty e.queue do
      Condition.wait e.q_cond e.q_mutex
    done;
    let job = Queue.pop e.queue in
    Mutex.unlock e.q_mutex;
    match job with
    | Registry.Stop -> ()
    | Registry.Job j ->
      (match collect_batch t e j with
      | [ lone ] -> run_single t e lone
      | batch -> process_coalesced t e batch);
      loop ()
  in
  loop ()

let rec spawn_worker t (e : Registry.entry) =
  with_entry e (fun () ->
      e.live_workers <- e.live_workers + 1;
      e.threads <- Thread.create (fun () -> supervised_loop t e) () :: e.threads)

(* The supervisor: a crash is logged, the dead worker replaced — with a
   capped budget, so a persistently crashing model converges to "breaker
   open, queue flushed" instead of a respawn storm, and its siblings never
   notice. *)
and supervised_loop t (e : Registry.entry) =
  try worker_loop t e
  with Crashed ->
    let respawn, last =
      with_entry e (fun () ->
          e.live_workers <- e.live_workers - 1;
          let ok =
            e.respawns < t.cfg.max_respawns
            && (not e.draining)
            && not (Atomic.get t.drain_flag)
          in
          if ok then e.respawns <- e.respawns + 1;
          (ok, e.live_workers = 0))
    in
    Robust.warnf "tccad[%s]: worker crashed — %s" e.Registry.id
      (if respawn then "respawning"
       else "respawn budget exhausted; model unavailable");
    if respawn then spawn_worker t e
    else if last then begin
      (* No worker will ever pop this queue again: force the breaker open
         (effectively permanently) and answer everything queued, so no
         client blocks on a dead model. *)
      with_entry e (fun () -> Breaker.force_open e.breaker ~cooldown_s:86400.);
      flush_queue e (fun () -> unavailable e)
    end

let deadline_of = function
  | Protocol.Transform { deadline_ms; _ }
  | Protocol.Predict { deadline_ms; _ }
  | Protocol.Refit { deadline_ms; _ } -> deadline_ms
  | Protocol.Health | Protocol.Ingest _ | Protocol.Swap _ | Protocol.Drain _
  | Protocol.List_models | Protocol.Model_health _ -> -1

(* Asynchronous enqueue: refusals (breaker, shed) are delivered on the
   calling thread; accepted jobs are answered later by a worker. *)
let enqueue_compute t (e : Registry.entry) req deliver =
  (* Admission first: an open breaker answers *before* any queueing, so a
     broken model costs its clients one frame round trip, not a deadline. *)
  let admission = with_entry e (fun () -> Breaker.admit e.Registry.breaker) in
  match admission with
  | Breaker.Reject { retry_after_ms } ->
    deliver (Protocol.R_unavailable { model_id = e.Registry.id; retry_after_ms })
  | Breaker.Probe when Robust.Inject.(active Breaker_probe_fail) ->
    (* Injected probe failure: the half-open probe dies before compute, so
       the breaker must re-open with a fresh cooldown. *)
    with_entry e (fun () -> Breaker.record e.breaker ~ok:false);
    deliver (Protocol.R_error { code = "internal"; message = "injected probe failure" })
  | Breaker.Admit | Breaker.Probe -> (
    let is_probe = admission = Breaker.Probe in
    let budget = budget_of_deadline t (deadline_of req) in
    Mutex.lock e.q_mutex;
    let depth = Queue.length e.queue in
    if depth >= t.cfg.queue_capacity || Robust.Inject.(active Queue_full) then begin
      Mutex.unlock e.q_mutex;
      (* Load shedding: a typed refusal now beats an unbounded queue OOMing
         later; the client owns the retry decision.  A shed *probe* must
         still report an outcome or the single-flight slot stays taken
         forever; overload while half-open reads as "not recovered yet". *)
      if is_probe then with_entry e (fun () -> Breaker.record e.breaker ~ok:false);
      deliver (Protocol.R_shed { depth; capacity = t.cfg.queue_capacity })
    end
    else begin
      Queue.push (Registry.Job { Registry.req; budget; deliver }) e.queue;
      Condition.signal e.q_cond;
      Mutex.unlock e.q_mutex;
      (* Close the admission/death race: if the model's last worker died
         between our admission check and the push, the supervisor's flush
         may have run before our job landed — flush again ourselves so no
         client can wait forever on a queue nothing will ever pop.  (The
         supervisor zeroes [live_workers] *before* it flushes, so one of
         the two flushes is guaranteed to see this job.) *)
      let dead =
        t.cfg.workers > 0
        && with_entry e (fun () ->
               e.live_workers = 0 && Breaker.retry_after_ms e.breaker > 0)
      in
      if dead then flush_queue e (fun () -> unavailable e)
    end)

(* ------------------------------------------------------------------ *)
(* Inline handlers (control side). *)

let queue_depth (e : Registry.entry) =
  Mutex.lock e.Registry.q_mutex;
  let d = Queue.length e.queue in
  Mutex.unlock e.q_mutex;
  d

let health t =
  ship_warnings ();
  (* Single-model-era health: answered with the "default" model's numbers
     so PR-8 monitoring keeps reading sense. *)
  let e = default_entry t in
  let version, r, dims, ingested, since_fit, e_draining =
    with_entry e (fun () ->
        let r, dims =
          match e.model with
          | None -> (0, [||])
          | Some m -> (Tcca.r m, Tcca.view_dims m)
        in
        (e.version, r, dims, e.ingested, e.since_fit, e.draining))
  in
  Protocol.R_health
    { version;
      r;
      dims;
      queue_depth = queue_depth e;
      queue_capacity = t.cfg.queue_capacity;
      workers = t.cfg.workers;
      ingested;
      since_fit;
      draining = draining t || e_draining }

let model_info (e : Registry.entry) =
  with_entry e (fun () ->
      { Protocol.mi_id = e.id;
        mi_version = e.version;
        mi_r = (match e.model with None -> 0 | Some m -> Tcca.r m);
        mi_breaker = Breaker.state_name e.breaker;
        mi_draining = e.draining })

let model_health t (e : Registry.entry) =
  let depth = queue_depth e in
  with_entry e (fun () ->
      let r, dims =
        match e.model with
        | None -> (0, [||])
        | Some m -> (Tcca.r m, Tcca.view_dims m)
      in
      { Protocol.mh_id = e.id;
        mh_version = e.version;
        mh_r = r;
        mh_dims = dims;
        mh_queue_depth = depth;
        mh_queue_capacity = t.cfg.queue_capacity;
        mh_workers = e.live_workers;
        mh_breaker = Breaker.state_name e.breaker;
        mh_retry_after_ms = Breaker.retry_after_ms e.breaker;
        mh_failures = Breaker.failures e.breaker;
        mh_respawns = e.respawns;
        mh_ingested = e.ingested;
        mh_since_fit = e.since_fit;
        mh_last_refit = e.last_refit;
        mh_draining = e.draining })

let ingest (e : Registry.entry) views =
  if Array.length views = 0 then
    Protocol.R_error { code = "bad-request"; message = "empty view array" }
  else
    let outcome =
      with_entry e (fun () ->
          match
            let b =
              match e.builder with
              | Some b -> b
              | None ->
                let dims =
                  match e.model with
                  | Some m -> Tcca.view_dims m
                  | None -> Array.map (fun v -> fst (Mat.dims v)) views
                in
                let b = Tcca.Builder.create ~dims in
                e.builder <- Some b;
                b
            in
            Tcca.Builder.add_batch b views
          with
          | () ->
            let n = snd (Mat.dims views.(0)) in
            e.ingested <- e.ingested + n;
            e.since_fit <- e.since_fit + n;
            Ok (e.version, n, e.ingested)
          | exception Invalid_argument msg -> Error msg)
    in
    match outcome with
    | Ok (version, n, total) ->
      Protocol.R_ok
        { version; note = Printf.sprintf "ingested %d instances (total %d)" n total }
    | Error msg -> Protocol.R_error { code = "bad-request"; message = msg }

let swap t (e : Registry.entry) path =
  match Retry.run ~policy:t.cfg.swap_retry (fun () -> Model_store.load ~path) with
  | Ok model' ->
    (* Validation (framing, CRC, version, structure, finiteness) happened
       before this point, so installation cannot need a rollback: a bad
       file simply never reaches the serving slot. *)
    let v =
      with_entry e (fun () ->
          e.model <- Some model';
          e.version <- e.version + 1;
          e.version)
    in
    Registry.snapshot t.reg e;
    ship_warnings ();
    Protocol.R_ok { version = v; note = "swapped in " ^ path }
  | Error gu ->
    let code =
      match gu.Retry.ga_last_error with
      | Checkpoint.Truncated -> "torn"
      | Checkpoint.Corrupt _ -> "corrupt"
      | Checkpoint.Version_mismatch { direction = Checkpoint.Newer; _ } ->
        "version-newer"
      | Checkpoint.Version_mismatch _ -> "version-older"
    in
    Protocol.R_error
      { code;
        message =
          Printf.sprintf "%s (%d attempts) — serving version %d unchanged"
            (Checkpoint.load_error_to_string gu.Retry.ga_last_error)
            gu.Retry.ga_attempts
            (with_entry e (fun () -> e.version)) }

(* Per-model drain: flush this model's queue through its own workers, stop
   them, snapshot — while every sibling keeps serving untouched. *)
let drain_entry t (e : Registry.entry) =
  let live =
    with_entry e (fun () ->
        e.draining <- true;
        e.live_workers)
  in
  Mutex.lock e.Registry.q_mutex;
  if live = 0 then begin
    (* No workers to flush the queue: answer leftovers inline so no client
       blocks forever on its callback. *)
    Queue.iter
      (function
        | Registry.Job j ->
          j.Registry.deliver
            (Protocol.R_error { code = "draining"; message = "model stopped" })
        | Registry.Stop -> ())
      e.queue;
    Queue.clear e.queue
  end
  else
    (* One Stop per live worker, queued *behind* the real jobs: in-flight
       work flushes — whole batches included — before the workers exit. *)
    for _ = 1 to live do
      Queue.push Registry.Stop e.queue
    done;
  Condition.broadcast e.q_cond;
  Mutex.unlock e.q_mutex;
  List.iter Thread.join e.threads;
  with_entry e (fun () ->
      e.threads <- [];
      e.live_workers <- 0);
  Registry.snapshot t.reg e

(* ------------------------------------------------------------------ *)
(* Routing and dispatch. *)

let unknown_model id =
  Protocol.R_error
    { code = "unknown-model"; message = Printf.sprintf "no model %S in registry" id }

(* Transform/Predict target an existing model; Ingest/Swap/Refit/Drain may
   create one (a cold entry with fresh workers) when the id is new and
   valid — how a second model is born on a live daemon. *)
let resolve t id = Registry.find t.reg id

let resolve_or_create t id =
  match Registry.find_or_create t.reg id with
  | Error msg -> Error (Protocol.R_error { code = "bad-request"; message = msg })
  | Ok (e, created) ->
    if created then
      for _ = 1 to t.cfg.workers do
        spawn_worker t e
      done;
    Ok e

let entry_draining (e : Registry.entry) = with_entry e (fun () -> e.draining)

let model_draining_reply (e : Registry.entry) =
  Protocol.R_error
    { code = "draining";
      message = Printf.sprintf "model %S is draining" e.Registry.id }

(* One routing function behind both {!handle} and {!submit}.  [run_control]
   decides where a control thunk executes (inline for the synchronous
   API, the control thread for the reactor); compute requests resolve and
   enqueue on the calling thread either way — admission and queue push are
   O(1) under leaf mutexes. *)
let dispatch t req ~deliver ~run_control =
  match req with
  | Protocol.Health -> run_control (fun () -> health t)
  | Protocol.List_models ->
    run_control (fun () ->
        Protocol.R_models (Array.of_list (List.map model_info (Registry.list t.reg))))
  | Protocol.Model_health { model_id } ->
    run_control (fun () ->
        match resolve t model_id with
        | None -> unknown_model model_id
        | Some e -> Protocol.R_model_health (model_health t e))
  | Protocol.Drain { model_id = "" } ->
    run_control (fun () ->
        request_drain t;
        Protocol.R_ok { version = version t; note = "draining" })
  | _ when draining t ->
    deliver
      (Protocol.R_error
         { code = "draining"; message = "server is draining — retry elsewhere" })
  | Protocol.Drain { model_id } ->
    run_control (fun () ->
        match resolve t model_id with
        | None -> unknown_model model_id
        | Some e ->
          if entry_draining e then model_draining_reply e
          else begin
            drain_entry t e;
            ship_warnings ();
            Protocol.R_ok
              { version = with_entry e (fun () -> e.version);
                note = Printf.sprintf "model %S drained" model_id }
          end)
  | (Protocol.Transform { model_id; _ } | Protocol.Predict { model_id; _ }) as req
    -> (
    match resolve t model_id with
    | None -> deliver (unknown_model model_id)
    | Some e ->
      if entry_draining e then deliver (model_draining_reply e)
      else enqueue_compute t e req deliver)
  | Protocol.Refit { model_id; _ } -> (
    match resolve_or_create t model_id with
    | Error resp -> deliver resp
    | Ok e ->
      if entry_draining e then deliver (model_draining_reply e)
      else enqueue_compute t e req deliver)
  | Protocol.Ingest { views; model_id } ->
    run_control (fun () ->
        match resolve_or_create t model_id with
        | Error resp -> resp
        | Ok e -> if entry_draining e then model_draining_reply e else ingest e views)
  | Protocol.Swap { path; model_id } ->
    run_control (fun () ->
        match resolve_or_create t model_id with
        | Error resp -> resp
        | Ok e -> if entry_draining e then model_draining_reply e else swap t e path)

(* Control-thread plumbing. *)

let control_loop (c : control) =
  let rec go () =
    Mutex.lock c.c_mutex;
    while Queue.is_empty c.c_queue && c.c_alive do
      Condition.wait c.c_cond c.c_mutex
    done;
    if Queue.is_empty c.c_queue then Mutex.unlock c.c_mutex
    else begin
      let f = Queue.pop c.c_queue in
      Mutex.unlock c.c_mutex;
      (try f () with _ -> ());
      go ()
    end
  in
  go ()

let post_control t f =
  let c = t.ctl in
  Mutex.lock c.c_mutex;
  if c.c_alive then begin
    Queue.push f c.c_queue;
    Condition.signal c.c_cond;
    Mutex.unlock c.c_mutex
  end
  else begin
    (* Post-shutdown (or a test rig that already drained): run inline so
       nothing is ever silently dropped. *)
    Mutex.unlock c.c_mutex;
    try f () with _ -> ()
  end

let stop_control t =
  let c = t.ctl in
  Mutex.lock c.c_mutex;
  c.c_alive <- false;
  Condition.broadcast c.c_cond;
  Mutex.unlock c.c_mutex;
  (match c.c_thread with Some th -> Thread.join th | None -> ());
  c.c_thread <- None

let submit t req deliver =
  dispatch t req ~deliver ~run_control:(fun f ->
      post_control t (fun () -> deliver (f ())))

(* Synchronous dispatch: control inline on the caller, compute through the
   target model's queue with the caller parked on a condition variable —
   exactly the surface PR-8/9 exposed to tests and benches. *)
let handle t req =
  let m = Mutex.create () in
  let cond = Condition.create () in
  let cell = ref None in
  let deliver resp =
    Mutex.lock m;
    cell := Some resp;
    Condition.signal cond;
    Mutex.unlock m
  in
  dispatch t req ~deliver ~run_control:(fun f -> deliver (f ()));
  Mutex.lock m;
  while !cell = None do
    Condition.wait cond m
  done;
  let resp = Option.get !cell in
  Mutex.unlock m;
  resp

(* ------------------------------------------------------------------ *)
(* Lifecycle. *)

let snapshot t = List.iter (Registry.snapshot t.reg) (Registry.list t.reg)

let create ?model cfg =
  let reg = Registry.create ?root:cfg.state_dir ~breaker:cfg.breaker () in
  let ctl =
    { c_mutex = Mutex.create ();
      c_cond = Condition.create ();
      c_queue = Queue.create ();
      c_alive = true;
      c_thread = None }
  in
  let t =
    { cfg;
      reg;
      drain_flag = Atomic.make false;
      ctl;
      drain_hooks = Atomic.make [];
      hook_seq = Atomic.make 0 }
  in
  ctl.c_thread <- Some (Thread.create control_loop ctl);
  Registry.recover reg;
  let d =
    match Registry.find_or_create reg "default" with
    | Ok (e, _) -> e
    | Error _ -> assert false
  in
  (match model with
  | Some m ->
    (* An explicitly provided model seeds "default" at version 1, taking
       precedence over whatever recovery found for that model. *)
    with_entry d (fun () ->
        d.model <- Some m;
        d.version <- 1)
  | None -> ());
  if with_entry d (fun () -> d.model) = None then
    Log.info (fun m ->
        m "starting cold: no default model (transform requests will be refused)");
  List.iter
    (fun e ->
      for _ = 1 to cfg.workers do
        spawn_worker t e
      done)
    (Registry.list reg);
  t

let drain_and_stop t =
  request_drain t;
  List.iter
    (fun e -> if not (entry_draining e) then drain_entry t e)
    (Registry.list t.reg);
  stop_control t;
  ship_warnings ()
