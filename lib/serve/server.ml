(* The daemon engine.  Concurrency layout:

     connection threads (one per socket)  ──inline──▶  Health/Ingest/Swap/Drain
            │ enqueue (bounded, shed on overflow)
            ▼
     job queue ◀── workers (config.workers threads) ──▶ Transform/Predict/Refit

   The state mutex guards the model/version/builder cell and is only ever
   held for O(state) work (reads, installs, builder folds) — never across a
   fit or a transform, so serving continues at the old version while a refit
   runs.  The refit mutex serializes refits (second concurrent refit gets a
   typed "refit-busy").  Deadlines ride each job as a [Budget] created at
   *enqueue* time, so time spent queued counts against the request — a job
   that waits out its deadline in the queue replies [R_deadline] instead of
   computing. *)

let src = Logs.Src.create "tccad" ~doc:"TCCA serving daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  workers : int;
  queue_capacity : int;
  default_deadline_ms : int;
  io_timeout_s : float;
  state_dir : string option;
  refit_options : Cp_als.options;
  refit_retry : Retry.policy;
  swap_retry : Retry.policy;
  eps : float;
  rank : int;
}

let default_config =
  { workers = Parallel.num_domains ();
    queue_capacity = 64;
    default_deadline_ms = 5000;
    io_timeout_s = 30.;
    state_dir = None;
    refit_options = Cp_als.default_options;
    refit_retry = Retry.default_policy;
    swap_retry = Retry.default_policy;
    eps = 1e-2;
    rank = 2 }

type mailbox = {
  mb_mutex : Mutex.t;
  mb_cond : Condition.t;
  mutable mb_resp : Protocol.response option;
}

type job = Job of Protocol.request * Budget.t * mailbox | Stop

type state = {
  mutable model : Tcca.t option;
  mutable version : int;
  mutable builder : Tcca.Builder.t option;
  mutable ingested : int;
  mutable since_fit : int;
}

type t = {
  cfg : config;
  st_mutex : Mutex.t;
  st : state;
  refit_mutex : Mutex.t;
  q_mutex : Mutex.t;
  q_cond : Condition.t;
  queue : job Queue.t;
  drain_flag : bool Atomic.t;
  mutable threads : Thread.t list;
}

let draining t = Atomic.get t.drain_flag
let request_drain t = Atomic.set t.drain_flag true

let with_state t f =
  Mutex.lock t.st_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.st_mutex) f

let version t = with_state t (fun () -> t.st.version)
let model t = with_state t (fun () -> t.st.model)

(* Guardrail events accumulated in Robust's ring (whitening escalations,
   warm-start fallbacks, checkpoint degradations) are shipped to the daemon
   log in batches — drained, so nothing is ever reported twice. *)
let ship_warnings () =
  List.iter (fun w -> Log.warn (fun m -> m "%s" w)) (Robust.drain_warnings ())

(* ------------------------------------------------------------------ *)
(* Deadlines. *)

let budget_of_deadline t deadline_ms =
  let ms = if deadline_ms < 0 then t.cfg.default_deadline_ms else deadline_ms in
  if ms < 0 then Budget.unlimited
  else Budget.create ~wall_seconds:(float_of_int ms /. 1000.) ()

let deadline_reply = function
  | Robust.Deadline_exceeded { stage; elapsed; _ } ->
    Protocol.R_deadline { stage; elapsed_ms = int_of_float (elapsed *. 1000.) }
  | f -> Protocol.R_error { code = "internal"; message = Robust.failure_to_string f }

(* ------------------------------------------------------------------ *)
(* Snapshots and recovery. *)

let snapshot t =
  match t.cfg.state_dir with
  | None -> ()
  | Some dir -> (
    match with_state t (fun () -> (t.st.model, t.st.version)) with
    | None, _ -> ()
    | Some m, v -> (
      let path = Filename.concat dir (Printf.sprintf "model-v%06d.tccm" v) in
      try Model_store.save ~path m
      with Sys_error e ->
        Robust.warnf "tccad: model snapshot %s failed (%s) — continuing unprotected" path
          e))

let recover dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> (None, 0)
  | files ->
    let candidates =
      Array.to_list files
      |> List.filter_map (fun f ->
             match Scanf.sscanf f "model-v%d.tccm%!" (fun v -> v) with
             | v -> Some (v, f)
             | exception _ -> None)
      |> List.sort (fun (a, _) (b, _) -> compare b a)
    in
    let rec try_load = function
      | [] ->
        if candidates <> [] then
          Robust.warnf "tccad: no valid model snapshot in %s — degrading to cold start"
            dir;
        (None, 0)
      | (v, f) :: rest -> (
        let path = Filename.concat dir f in
        match Model_store.load ~path with
        | Ok m -> (Some m, v)
        | Error e ->
          Robust.warnf "tccad: model snapshot %s: %s — skipped" path
            (Checkpoint.load_error_to_string e);
          try_load rest)
    in
    try_load candidates

(* ------------------------------------------------------------------ *)
(* Compute handlers (worker side). *)

let transform_reply m views budget ~stage =
  match Budget.expired ~stage ~sweeps:0 budget with
  | Some f -> deadline_reply f
  | None -> (
    match Tcca.transform m views with
    | z -> Protocol.R_matrix z
    | exception Invalid_argument msg ->
      Protocol.R_error { code = "bad-request"; message = msg })

let predict_reply m views budget =
  match Budget.expired ~stage:"serve.predict" ~sweeps:0 budget with
  | Some f -> deadline_reply f
  | None -> (
    match Array.mapi (fun p x -> Tcca.transform_view m p x) views with
    | exception Invalid_argument msg ->
      Protocol.R_error { code = "bad-request"; message = msg }
    | zs ->
      if Array.length views <> Tcca.n_views m then
        Protocol.R_error { code = "bad-request"; message = "view count mismatch" }
      else begin
        (* Per-instance high-order correlation score: sᵢ = Σₖ λₖ Πₚ Zₚ[k,i]
           — the rank-r canonical polyadic form of ρ(h₁ᵀx₁, …, hₘᵀxₘ)
           evaluated at instance i. *)
        let lambda = Tcca.correlations m in
        let r = Array.length lambda in
        let n = snd (Mat.dims zs.(0)) in
        let scores =
          Array.init n (fun i ->
              let s = ref 0. in
              for k = 0 to r - 1 do
                let prod = ref lambda.(k) in
                Array.iter (fun z -> prod := !prod *. Mat.get z k i) zs;
                s := !s +. !prod
              done;
              !s)
        in
        Protocol.R_scores scores
      end)

let refit_reply t budget =
  if not (Mutex.try_lock t.refit_mutex) then
    Protocol.R_error { code = "refit-busy"; message = "another refit is in progress" }
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.refit_mutex)
      (fun () ->
        let live, since, builder =
          with_state t (fun () -> (t.st.model, t.st.since_fit, t.st.builder))
        in
        let retained =
          Protocol.R_ok
            { version = version t;
              note = "no new samples since last fit — serving model retained" }
        in
        match builder with
        (* Nothing new: skip the solve entirely so the reply provably
           serves the bit-identical live model. *)
        | None -> retained
        | Some _ when since = 0 -> retained
        | Some b -> (
          let attempt () =
            (* Builder folds race with Ingest; finalize under the state
               lock (O(statistics), not O(fit)). *)
            let raw = with_state t (fun () -> Tcca.Builder.finalize b) in
            let prep () = Tcca.prepare_of_raw_checked ~eps:t.cfg.eps raw in
            let prepared =
              (* [Refit_nan] reuses the fit path's own covariance-poison
                 guardrail, so the refit failure matrix is the real one. *)
              if Robust.Inject.(active Refit_nan) then
                Robust.Inject.with_stage Robust.Inject.Covariance_nan prep
              else prep ()
            in
            match prepared with
            | Error f -> Error f
            | Ok prepared ->
              let solver, rank =
                match live with
                | Some m -> (Tcca.warm_solver ~options:t.cfg.refit_options m, Tcca.r m)
                | None -> (Tcca.Als t.cfg.refit_options, t.cfg.rank)
              in
              Tcca.fit_prepared_checked ~solver ~budget ~r:rank prepared
          in
          let on_retry ~attempt ~delay e =
            Log.warn (fun m ->
                m "refit attempt %d failed (%s) — retrying in %.0f ms" attempt
                  (Robust.failure_to_string e) (delay *. 1000.))
          in
          match Retry.run ~policy:t.cfg.refit_retry ~on_retry attempt with
          | Ok model' ->
            let v =
              with_state t (fun () ->
                  t.st.model <- Some model';
                  t.st.version <- t.st.version + 1;
                  t.st.since_fit <- 0;
                  t.st.version)
            in
            snapshot t;
            ship_warnings ();
            Protocol.R_ok
              { version = v; note = "refit installed: " ^ Tcca.solver_info model' }
          | Error gu ->
            ship_warnings ();
            Protocol.R_error
              { code = "refit-failed";
                message =
                  Printf.sprintf "%s (gave up after %d attempts, %.0f ms backoff)"
                    (Robust.failure_to_string gu.Retry.ga_last_error)
                    gu.Retry.ga_attempts
                    (gu.Retry.ga_total_delay *. 1000.) }))

let no_model = Protocol.R_error { code = "no-model"; message = "serving cold: no model" }

let compute t req budget =
  match req with
  | Protocol.Transform { views; _ } -> (
    match model t with
    | None -> no_model
    | Some m -> transform_reply m views budget ~stage:"serve.transform")
  | Protocol.Predict { views; _ } -> (
    match model t with
    | None -> no_model
    | Some m -> predict_reply m views budget)
  | Protocol.Refit _ -> refit_reply t budget
  | Protocol.Health | Protocol.Ingest _ | Protocol.Swap _ | Protocol.Drain ->
    Protocol.R_error { code = "internal"; message = "control request on compute path" }

(* ------------------------------------------------------------------ *)
(* Queue and workers. *)

let fill_mailbox mb resp =
  Mutex.lock mb.mb_mutex;
  mb.mb_resp <- Some resp;
  Condition.signal mb.mb_cond;
  Mutex.unlock mb.mb_mutex

let worker_loop t =
  let rec loop () =
    Mutex.lock t.q_mutex;
    while Queue.is_empty t.queue do
      Condition.wait t.q_cond t.q_mutex
    done;
    let job = Queue.pop t.queue in
    Mutex.unlock t.q_mutex;
    match job with
    | Stop -> ()
    | Job (req, budget, mb) ->
      let resp =
        try compute t req budget
        with e ->
          Protocol.R_error { code = "internal"; message = Printexc.to_string e }
      in
      fill_mailbox mb resp;
      loop ()
  in
  loop ()

let deadline_of = function
  | Protocol.Transform { deadline_ms; _ }
  | Protocol.Predict { deadline_ms; _ }
  | Protocol.Refit { deadline_ms } -> deadline_ms
  | Protocol.Health | Protocol.Ingest _ | Protocol.Swap _ | Protocol.Drain -> -1

let enqueue_compute t req =
  let budget = budget_of_deadline t (deadline_of req) in
  Mutex.lock t.q_mutex;
  let depth = Queue.length t.queue in
  if depth >= t.cfg.queue_capacity || Robust.Inject.(active Queue_full) then begin
    Mutex.unlock t.q_mutex;
    (* Load shedding: a typed refusal now beats an unbounded queue OOMing
       later; the client owns the retry decision. *)
    Protocol.R_shed { depth; capacity = t.cfg.queue_capacity }
  end
  else begin
    let mb = { mb_mutex = Mutex.create (); mb_cond = Condition.create (); mb_resp = None } in
    Queue.push (Job (req, budget, mb)) t.queue;
    Condition.signal t.q_cond;
    Mutex.unlock t.q_mutex;
    Mutex.lock mb.mb_mutex;
    while mb.mb_resp = None do
      Condition.wait mb.mb_cond mb.mb_mutex
    done;
    let resp = Option.get mb.mb_resp in
    Mutex.unlock mb.mb_mutex;
    resp
  end

(* ------------------------------------------------------------------ *)
(* Inline handlers (connection-thread side). *)

let health t =
  ship_warnings ();
  let version, r, dims, ingested, since_fit =
    with_state t (fun () ->
        let r, dims =
          match t.st.model with
          | None -> (0, [||])
          | Some m -> (Tcca.r m, Tcca.view_dims m)
        in
        (t.st.version, r, dims, t.st.ingested, t.st.since_fit))
  in
  Mutex.lock t.q_mutex;
  let queue_depth = Queue.length t.queue in
  Mutex.unlock t.q_mutex;
  Protocol.R_health
    { version;
      r;
      dims;
      queue_depth;
      queue_capacity = t.cfg.queue_capacity;
      workers = t.cfg.workers;
      ingested;
      since_fit;
      draining = draining t }

let ingest t views =
  if Array.length views = 0 then
    Protocol.R_error { code = "bad-request"; message = "empty view array" }
  else
    let outcome =
      with_state t (fun () ->
          match
            let b =
              match t.st.builder with
              | Some b -> b
              | None ->
                let dims =
                  match t.st.model with
                  | Some m -> Tcca.view_dims m
                  | None -> Array.map (fun v -> fst (Mat.dims v)) views
                in
                let b = Tcca.Builder.create ~dims in
                t.st.builder <- Some b;
                b
            in
            Tcca.Builder.add_batch b views
          with
          | () ->
            let n = snd (Mat.dims views.(0)) in
            t.st.ingested <- t.st.ingested + n;
            t.st.since_fit <- t.st.since_fit + n;
            Ok (t.st.version, n, t.st.ingested)
          | exception Invalid_argument msg -> Error msg)
    in
    match outcome with
    | Ok (version, n, total) ->
      Protocol.R_ok
        { version; note = Printf.sprintf "ingested %d instances (total %d)" n total }
    | Error msg -> Protocol.R_error { code = "bad-request"; message = msg }

let swap t path =
  match Retry.run ~policy:t.cfg.swap_retry (fun () -> Model_store.load ~path) with
  | Ok model' ->
    (* Validation (framing, CRC, version, structure, finiteness) happened
       before this point, so installation cannot need a rollback: a bad
       file simply never reaches the serving slot. *)
    let v =
      with_state t (fun () ->
          t.st.model <- Some model';
          t.st.version <- t.st.version + 1;
          t.st.version)
    in
    snapshot t;
    ship_warnings ();
    Protocol.R_ok { version = v; note = "swapped in " ^ path }
  | Error gu ->
    let code =
      match gu.Retry.ga_last_error with
      | Checkpoint.Truncated -> "torn"
      | Checkpoint.Corrupt _ -> "corrupt"
      | Checkpoint.Version_mismatch { direction = Checkpoint.Newer; _ } ->
        "version-newer"
      | Checkpoint.Version_mismatch _ -> "version-older"
    in
    Protocol.R_error
      { code;
        message =
          Printf.sprintf "%s (%d attempts) — serving version %d unchanged"
            (Checkpoint.load_error_to_string gu.Retry.ga_last_error)
            gu.Retry.ga_attempts (version t) }

(* ------------------------------------------------------------------ *)
(* Dispatch. *)

let handle t req =
  match req with
  | Protocol.Health -> health t
  | Protocol.Drain ->
    request_drain t;
    Protocol.R_ok { version = version t; note = "draining" }
  | (Protocol.Transform _ | Protocol.Predict _ | Protocol.Refit _ | Protocol.Ingest _
    | Protocol.Swap _)
    when draining t ->
    Protocol.R_error { code = "draining"; message = "server is draining — retry elsewhere" }
  | (Protocol.Transform _ | Protocol.Predict _ | Protocol.Refit _) as req ->
    enqueue_compute t req
  | Protocol.Ingest { views } -> ingest t views
  | Protocol.Swap { path } -> swap t path

(* ------------------------------------------------------------------ *)
(* Lifecycle. *)

let create ?model cfg =
  (match cfg.state_dir with
  | Some dir when not (Sys.file_exists dir) -> (
    try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ())
  | _ -> ());
  let model, version =
    match model with
    | Some m -> (Some m, 1)
    | None -> (
      match cfg.state_dir with
      | None -> (None, 0)
      | Some dir -> recover dir)
  in
  if Option.is_none model then
    Log.info (fun m -> m "starting cold: no model (transform requests will be refused)");
  let t =
    { cfg;
      st_mutex = Mutex.create ();
      st = { model; version; builder = None; ingested = 0; since_fit = 0 };
      refit_mutex = Mutex.create ();
      q_mutex = Mutex.create ();
      q_cond = Condition.create ();
      queue = Queue.create ();
      drain_flag = Atomic.make false;
      threads = [] }
  in
  t.threads <- List.init cfg.workers (fun _ -> Thread.create worker_loop t);
  t

let serve_connection t fd =
  let reply resp =
    match Protocol.write_frame fd (Protocol.response_to_string resp) with
    | () -> true
    | exception Unix.Unix_error _ -> false
  in
  let rec loop () =
    match Protocol.read_frame ~timeout_s:t.cfg.io_timeout_s fd with
    | Protocol.Closed -> ()
    | Protocol.Timeout ->
      (* Slow client: drop the connection rather than wedge this thread —
         the [Slow_client] fault forces this branch. *)
      Log.warn (fun m -> m "dropping stalled client (no frame in %.1fs)" t.cfg.io_timeout_s)
    | Protocol.Oversize n ->
      ignore
        (reply
           (Protocol.R_error
              { code = "bad-request";
                message = Printf.sprintf "frame of %d bytes exceeds limit" n }))
    | Protocol.Frame body -> (
      match Protocol.request_of_string body with
      | Error what ->
        ignore (reply (Protocol.R_error { code = "bad-request"; message = what }))
      | Ok req -> if reply (handle t req) then loop ())
  in
  (try loop () with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let drain_and_stop t =
  request_drain t;
  Mutex.lock t.q_mutex;
  if t.threads = [] then begin
    (* No workers to flush the queue: answer leftovers inline so no client
       blocks forever on a mailbox. *)
    Queue.iter
      (function
        | Job (_, _, mb) ->
          fill_mailbox mb
            (Protocol.R_error { code = "draining"; message = "server stopped" })
        | Stop -> ())
      t.queue;
    Queue.clear t.queue
  end
  else List.iter (fun _ -> Queue.push Stop t.queue) t.threads;
  Condition.broadcast t.q_cond;
  Mutex.unlock t.q_mutex;
  List.iter Thread.join t.threads;
  t.threads <- [];
  snapshot t;
  ship_warnings ()

let serve_forever t addr =
  let sock = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (match addr with
  | Unix.ADDR_UNIX p when Sys.file_exists p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | _ -> ());
  Unix.bind sock addr;
  Unix.listen sock 64;
  Log.info (fun m -> m "listening (%d workers, queue %d)" t.cfg.workers t.cfg.queue_capacity);
  (* The drain flag is polled between accepts rather than trusted to EINTR:
     with systhreads a SIGTERM can be delivered to any thread, so the
     handler's atomic store is the only reliable signal — a short select
     timeout bounds how long the loop can sit blind to it.  This also lets
     a client-issued [Drain] stop the daemon without needing one more
     connection to wake the accept. *)
  let rec accept_loop () =
    if not (draining t) then (
      match Unix.select [ sock ] [] [] 0.2 with
      | [], _, _ -> accept_loop ()
      | _ :: _, _, _ -> (
        match Unix.accept sock with
        | fd, _ ->
          ignore (Thread.create (fun () -> serve_connection t fd) ());
          accept_loop ()
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          accept_loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ())
  in
  accept_loop ();
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (match addr with
  | Unix.ADDR_UNIX p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | _ -> ());
  drain_and_stop t
