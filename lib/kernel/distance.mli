(** Pairwise distances between instances stored as matrix columns.

    The paper's kernel experiments (Sec. 5.2) use the χ² distance for the
    visual-word histogram view and L2 for the rest. *)

type t =
  | L2        (** Euclidean distance. *)
  | Sq_l2     (** Squared Euclidean — the usual RBF argument. *)
  | Chi2      (** [Σᵢ (xᵢ−yᵢ)² / (xᵢ+yᵢ)], terms with a zero denominator
                  skipped; intended for non-negative histogram features. *)
  | L1

val eval : t -> Vec.t -> Vec.t -> float

val pairwise : t -> Mat.t -> Mat.t
(** [pairwise d x] for [x : d×N] (instances as columns) is the symmetric
    [N×N] distance matrix. *)

val cross : t -> Mat.t -> Mat.t -> Mat.t
(** [cross d a b] is the [N_a × N_b] matrix of distances between columns of
    [a] and columns of [b]. *)

val max_entry : Mat.t -> float
(** Largest entry — the paper's bandwidth [λ = maxᵢⱼ d(xᵢ,xⱼ)]. *)

val max_pairwise : t -> Mat.t -> float
(** [max_pairwise d x = max_entry (pairwise d x)] computed streaming in
    O(N) memory — the bandwidth pass of the Nyström scaling path, where the
    N×N distance matrix is never materialized.  [0.] for fewer than two
    instances. *)

val pairwise_count : unit -> int
(** Number of {!pairwise} sweeps performed by this process so far — test
    instrumentation for pinning that a pipeline (e.g. [Kernel.fit] followed
    by [Kernel.gram]) performs exactly one O(N²·d) pass. *)
