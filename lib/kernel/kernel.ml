type t = Linear | Exp_distance of Distance.t | Rbf of float

type fitted = {
  kind : t;
  train : Mat.t;
  lambda : float option;
  dist : Mat.t option;
      (* The fitted pairwise-distance matrix, kept from the bandwidth pass so
         [gram] never repeats it ([Exp_distance] with [precompute], the
         default).  [None] on the streaming path and for kernels whose [fit]
         needs no pairwise pass. *)
}

let fit ?(precompute = true) kind x =
  match kind with
  | Exp_distance d ->
    (* λ = maxᵢⱼ d(xᵢ,xⱼ); all-identical columns give λ = 0 — fall back to 1
       so the kernel is the constant-1 matrix rather than NaN.  Distances are
       non-negative, so the streaming max equals [max_entry] of the matrix. *)
    if precompute then begin
      let dm = Distance.pairwise d x in
      let lam = Distance.max_entry dm in
      { kind;
        train = Mat.copy x;
        lambda = Some (if lam > 0. then lam else 1.);
        dist = Some dm }
    end
    else begin
      let lam = Distance.max_pairwise d x in
      { kind; train = Mat.copy x; lambda = Some (if lam > 0. then lam else 1.); dist = None }
    end
  | Linear | Rbf _ -> { kind; train = Mat.copy x; lambda = None; dist = None }

let eval_matrix f dist_or_inner =
  match f.kind, f.lambda with
  | Linear, _ -> dist_or_inner
  | Exp_distance _, Some lam -> Mat.map (fun d -> exp (-.d /. lam)) dist_or_inner
  | Rbf gamma, _ -> Mat.map (fun d -> exp (-.gamma *. d)) dist_or_inner
  | Exp_distance _, None -> assert false

let cross f y =
  match f.kind with
  | Linear -> Mat.mul_tn f.train y
  | Exp_distance d -> eval_matrix f (Distance.cross d f.train y)
  | Rbf _ -> eval_matrix f (Distance.cross Distance.Sq_l2 f.train y)

let gram f =
  match f.kind with
  | Linear -> Mat.tgram f.train
  | Exp_distance d ->
    let dm = match f.dist with Some dm -> dm | None -> Distance.pairwise d f.train in
    eval_matrix f dm
  | Rbf _ -> eval_matrix f (Distance.pairwise Distance.Sq_l2 f.train)

let bandwidth f = f.lambda

(* Column/diagonal oracle — the Nyström entry point.  Nothing O(N²) is ever
   formed: a column costs one pass over the training instances, partitioned
   across the pool with per-entry ownership (each slot written once, by one
   chunk), so columns are bitwise identical at any pool size. *)
let oracle f =
  let d_feat, n = Mat.dims f.train in
  let cols = Array.init n (Mat.col f.train) in
  let kval =
    match f.kind, f.lambda with
    | Linear, _ -> fun i j -> Vec.dot cols.(i) cols.(j)
    | Exp_distance dk, Some lam ->
      fun i j -> if i = j then 1. else exp (-.Distance.eval dk cols.(i) cols.(j) /. lam)
    | Rbf gamma, _ ->
      fun i j ->
        if i = j then 1. else exp (-.gamma *. Distance.eval Distance.Sq_l2 cols.(i) cols.(j))
    | Exp_distance _, None -> assert false
  in
  let fill j =
    let out = Array.make n 0. in
    Parallel.parallel_for ~cost:(n * d_feat) ~n (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i) <- kval i j
        done);
    out
  in
  { Pchol.o_dim = n;
    o_diag =
      (fun () ->
        let out = Array.make n 0. in
        Parallel.parallel_for ~cost:(n * d_feat) ~n (fun lo hi ->
            for i = lo to hi - 1 do
              out.(i) <- kval i i
            done);
        out);
    o_column = fill }

let center k =
  let n, m = Mat.dims k in
  if n <> m then invalid_arg "Kernel.center: not square";
  let row_means = Array.init n (fun i -> Vec.mean (Mat.row k i)) in
  let total = Vec.mean row_means in
  Mat.init n n (fun i j -> Mat.get k i j -. row_means.(i) -. row_means.(j) +. total)

let normalize_unit_diag k =
  let n, m = Mat.dims k in
  if n <> m then invalid_arg "Kernel.normalize_unit_diag: not square";
  let d = Array.init n (fun i -> sqrt (Float.max (Mat.get k i i) 1e-300)) in
  Mat.init n n (fun i j -> Mat.get k i j /. (d.(i) *. d.(j)))

let average = function
  | [] -> invalid_arg "Kernel.average: empty list"
  | k :: rest ->
    let sum = List.fold_left Mat.add k rest in
    Mat.scale (1. /. float_of_int (List.length rest + 1)) sum

let is_psd ?(eps = 1e-8) k =
  let eig = Eigen.decompose k in
  let lmax = Float.max (Float.abs eig.Eigen.values.(0)) 1. in
  Array.for_all (fun l -> l >= -.eps *. lmax) eig.Eigen.values
