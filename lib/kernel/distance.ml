type t = L2 | Sq_l2 | Chi2 | L1

let eval kind x y =
  if Array.length x <> Array.length y then invalid_arg "Distance.eval: dimension mismatch";
  match kind with
  | Sq_l2 ->
    let acc = ref 0. in
    for i = 0 to Array.length x - 1 do
      let d = x.(i) -. y.(i) in
      acc := !acc +. (d *. d)
    done;
    !acc
  | L2 ->
    let acc = ref 0. in
    for i = 0 to Array.length x - 1 do
      let d = x.(i) -. y.(i) in
      acc := !acc +. (d *. d)
    done;
    sqrt !acc
  | L1 ->
    let acc = ref 0. in
    for i = 0 to Array.length x - 1 do
      acc := !acc +. Float.abs (x.(i) -. y.(i))
    done;
    !acc
  | Chi2 ->
    let acc = ref 0. in
    for i = 0 to Array.length x - 1 do
      let s = x.(i) +. y.(i) in
      if s > 0. then begin
        let d = x.(i) -. y.(i) in
        acc := !acc +. (d *. d /. s)
      end
    done;
    !acc

(* Both Gram-construction entry points are row-partitioned across the domain
   pool: every output row is owned by exactly one chunk and each entry is an
   independent evaluation, so results are trivially deterministic. *)

let cross kind a b =
  let da, na = Mat.dims a in
  let db, nb = Mat.dims b in
  if da <> db then invalid_arg "Distance.cross: feature dimension mismatch";
  let cols_a = Array.init na (Mat.col a) in
  let cols_b = Array.init nb (Mat.col b) in
  let out = Mat.create na nb in
  Parallel.parallel_for ~cost:(na * nb * da) ~n:na (fun lo hi ->
      for i = lo to hi - 1 do
        for j = 0 to nb - 1 do
          Mat.set out i j (eval kind cols_a.(i) cols_b.(j))
        done
      done);
  out

(* Only the upper triangle is evaluated; the strict lower triangle mirrors
   the stored float, so symmetry is exact by construction.  Rows of the
   triangle have wildly different lengths (row 0 has n entries, row n−1 has
   one), so the parallel index t owns the *pair* of rows t and n−1−t —
   every t costs n+1 evaluations and the pool chunks stay balanced.  Each
   output row is still written by exactly one chunk and every entry is the
   same single [eval] call the sequential loop would make, so the matrix is
   bitwise identical at any pool size. *)
(* Pass counter, for regression tests that pin how many O(N²·d) pairwise
   sweeps a pipeline performs (e.g. Kernel.fit + Kernel.gram must do one). *)
let passes = ref 0
let pairwise_count () = !passes

let pairwise kind x =
  incr passes;
  let d, n = Mat.dims x in
  let cols = Array.init n (Mat.col x) in
  let out = Mat.create n n in
  let half = (n + 1) / 2 in
  Parallel.parallel_for ~cost:(n * n * d / 2) ~n:half (fun lo hi ->
      for t = lo to hi - 1 do
        let fill i =
          for j = i to n - 1 do
            let dist = if i = j then 0. else eval kind cols.(i) cols.(j) in
            Mat.set out i j dist
          done
        in
        fill t;
        let i2 = n - 1 - t in
        if i2 <> t then fill i2
      done);
  (* Mirror pass: row i copies from already-final rows j < i — row
     ownership again, and the mirrored value is the identical float. *)
  Parallel.parallel_for ~cost:(n * n) ~n (fun lo hi ->
      for i = lo to hi - 1 do
        for j = 0 to i - 1 do
          Mat.set out i j (Mat.get out j i)
        done
      done);
  out

let max_entry = Mat.max_abs

(* Streaming bandwidth: the largest pairwise distance in O(N) memory —
   what the Nyström path uses instead of materializing [pairwise].  Max is
   associative and commutative (and exact — no rounding), so the chunked
   reduction is pool-size invariant. *)
let max_pairwise kind x =
  let d, n = Mat.dims x in
  if n < 2 then 0.
  else begin
    let cols = Array.init n (Mat.col x) in
    let half = (n + 1) / 2 in
    Parallel.parallel_for_reduce ~cost:(n * n * d / 2) ~n:half ~init:0.
      ~combine:Float.max (fun lo hi ->
        let best = ref 0. in
        let scan i =
          for j = i + 1 to n - 1 do
            best := Float.max !best (eval kind cols.(i) cols.(j))
          done
        in
        for t = lo to hi - 1 do
          scan t;
          let i2 = n - 1 - t in
          if i2 <> t then scan i2
        done;
        !best)
  end
