type t = L2 | Sq_l2 | Chi2 | L1

let eval kind x y =
  if Array.length x <> Array.length y then invalid_arg "Distance.eval: dimension mismatch";
  match kind with
  | Sq_l2 ->
    let acc = ref 0. in
    for i = 0 to Array.length x - 1 do
      let d = x.(i) -. y.(i) in
      acc := !acc +. (d *. d)
    done;
    !acc
  | L2 ->
    let acc = ref 0. in
    for i = 0 to Array.length x - 1 do
      let d = x.(i) -. y.(i) in
      acc := !acc +. (d *. d)
    done;
    sqrt !acc
  | L1 ->
    let acc = ref 0. in
    for i = 0 to Array.length x - 1 do
      acc := !acc +. Float.abs (x.(i) -. y.(i))
    done;
    !acc
  | Chi2 ->
    let acc = ref 0. in
    for i = 0 to Array.length x - 1 do
      let s = x.(i) +. y.(i) in
      if s > 0. then begin
        let d = x.(i) -. y.(i) in
        acc := !acc +. (d *. d /. s)
      end
    done;
    !acc

(* Both Gram-construction entry points are row-partitioned across the domain
   pool: every output row is owned by exactly one chunk and each entry is an
   independent evaluation, so results are trivially deterministic. *)

let cross kind a b =
  let da, na = Mat.dims a in
  let db, nb = Mat.dims b in
  if da <> db then invalid_arg "Distance.cross: feature dimension mismatch";
  let cols_a = Array.init na (Mat.col a) in
  let cols_b = Array.init nb (Mat.col b) in
  let out = Mat.create na nb in
  Parallel.parallel_for ~cost:(na * nb * da) ~n:na (fun lo hi ->
      for i = lo to hi - 1 do
        for j = 0 to nb - 1 do
          Mat.set out i j (eval kind cols_a.(i) cols_b.(j))
        done
      done);
  out

let pairwise kind x =
  let d, n = Mat.dims x in
  let cols = Array.init n (Mat.col x) in
  let out = Mat.create n n in
  Parallel.parallel_for ~cost:(n * n * d / 2) ~n (fun lo hi ->
      for i = lo to hi - 1 do
        for j = i to n - 1 do
          let dist = if i = j then 0. else eval kind cols.(i) cols.(j) in
          Mat.set out i j dist
        done
      done);
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      Mat.set out i j (Mat.get out j i)
    done
  done;
  out

let max_entry = Mat.max_abs
