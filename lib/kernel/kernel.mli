(** Kernel functions and Gram-matrix utilities.

    The paper's non-linear experiments define, per view,
    [k(xᵢ,xⱼ) = exp(−d(xᵢ,xⱼ)/λ)] with [λ = maxᵢⱼ d(xᵢ,xⱼ)] (Sec. 5.2);
    χ² distance for the bag-of-visual-words view, L2 otherwise. *)

type t =
  | Linear
  | Exp_distance of Distance.t
  (** The paper's kernel: [exp(−d/λ)] with the bandwidth fixed from the
      training data's maximum pairwise distance. *)
  | Rbf of float
  (** Plain [exp(−γ‖x−y‖²)]. *)

type fitted
(** A kernel whose data-dependent parameters (bandwidth, training columns)
    are frozen, so test columns can be embedded consistently. *)

val fit : ?precompute:bool -> t -> Mat.t -> fitted
(** [fit k x] freezes the kernel on training instances (columns of [x]).

    For [Exp_distance] the bandwidth pass already computes every pairwise
    distance; with [precompute] (the default) the distance matrix is kept on
    the fitted kernel so the following {!gram} reuses it — [fit] + [gram] is
    one O(N²·d) pairwise pass, not two.  [~precompute:false] fits the
    bandwidth with a streaming max instead (same λ, O(N) memory, nothing
    N×N retained) — the right mode for the Nyström {!oracle} path. *)

val gram : fitted -> Mat.t
(** [N×N] training Gram matrix. *)

val oracle : fitted -> Pchol.oracle
(** Column/diagonal oracle over the training instances — what
    [Pchol.decompose] consumes on the Nyström scaling path.  A column costs
    one O(N·d) pass (parallel, bitwise-deterministic); nothing N×N is ever
    materialized.  Combine with [fit ~precompute:false] to keep the whole
    fit O(N·d) in memory. *)

val cross : fitted -> Mat.t -> Mat.t
(** [cross f y] is the [N_train × N_y] matrix [k(xᵢ, yⱼ)]. *)

val bandwidth : fitted -> float option
(** The frozen [λ] for [Exp_distance] kernels. *)

(** {1 Gram-matrix utilities} *)

val center : Mat.t -> Mat.t
(** Double centering [K ← HKH], [H = I − 11ᵀ/N] — centering in feature
    space. *)

val normalize_unit_diag : Mat.t -> Mat.t
(** Cosine normalization [Kᵢⱼ / √(Kᵢᵢ Kⱼⱼ)]. *)

val average : Mat.t list -> Mat.t
(** Entry-wise mean — the paper's AVG kernel-combination baseline. *)

val is_psd : ?eps:float -> Mat.t -> bool
(** Spectral test used by the property suite. *)
