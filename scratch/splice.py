import re, sys

bench = open('bench_output.txt').read()

def extract(start_marker, end_marker):
    i = bench.index(start_marker)
    j = bench.index(end_marker, i)
    return bench[i:j].rstrip()

def block(id_):
    start = f">>> {id_} "
    i = bench.index(start)
    i = bench.index("\n", i) + 1
    j = bench.index(f"<<< {id_} ", i)
    return bench[i:j].rstrip()

def fence(text):
    return "```\n" + text + "\n```"

s = open('EXPERIMENTS.md').read()
s = s.replace("<!-- RESULTS:fig3 -->", fence(block("fig3")))
s = s.replace("<!-- RESULTS:fig4 -->", fence(block("fig4")))
s = s.replace("<!-- RESULTS:fig5 -->", fence(block("fig5")))
s = s.replace("<!-- RESULTS:fig6 -->", fence(block("fig6")))
figs = "\n\n".join(block(f) for f in ["fig7","fig8","fig9","fig10"])
s = s.replace("<!-- RESULTS:fig7-10 -->", fence(figs))
s = s.replace("<!-- RESULTS:scal-n -->", fence(block("scal-n")))
abl = "\n\n".join(block(f) for f in ["abl-solver","abl-confound","abl-reg"])
s = s.replace("<!-- RESULTS:ablations -->", fence(abl))
open('EXPERIMENTS.md','w').write(s)
print("spliced")
