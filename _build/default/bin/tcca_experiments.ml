(* Command-line experiment runner.

   dune exec bin/tcca_experiments.exe -- list
   dune exec bin/tcca_experiments.exe -- run fig3 --seeds 5 --paper
   dune exec bin/tcca_experiments.exe -- run fig5 --rs 6,12,24,45,90
   dune exec bin/tcca_experiments.exe -- demo --dataset nuswide --dim 45

   The [run] command regenerates any table/figure of the paper at either the
   quick (default) or paper scale, with every knob overridable; [demo] runs a
   single protocol instance and prints per-method accuracy. *)

open Cmdliner

let ids_doc = String.concat ", " Figures.all_ids

(* ------------------------------------------------------------------ *)
(* run *)

let apply_overrides params ~seeds ~rs ~paper_scale ~pools =
  let params = if paper_scale then Figures.paper else params in
  let params = match seeds with Some s -> { params with Figures.seeds = s } | None -> params in
  let params = match rs with Some g -> { params with Figures.rs = g; rs_kernel = g } | None -> params in
  match pools with
  | Some n ->
    { params with
      Figures.secstr_pool = n;
      ads_pool = n;
      nus_train = n;
      nus_test = n;
      complexity_n = n }
  | None -> params

let run_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT"
           ~doc:(Printf.sprintf "Experiment id: %s (tab1-tab4 alias their figure)." ids_doc))
  in
  let seeds =
    Arg.(value & opt (some int) None & info [ "seeds" ] ~docv:"N" ~doc:"Runs per cell.")
  in
  let rs =
    let int_list = Arg.(list ~sep:',' int) in
    Arg.(value & opt (some int_list) None & info [ "rs" ] ~docv:"R1,R2,.."
           ~doc:"Total-dimension grid for the sweeps.")
  in
  let paper_scale =
    Arg.(value & flag & info [ "paper" ]
           ~doc:"Paper-scale dimensions and pools (hours, not minutes).")
  in
  let pools =
    Arg.(value & opt (some int) None & info [ "pool" ] ~docv:"N"
           ~doc:"Override every dataset pool size.")
  in
  let action id seeds rs paper_scale pools =
    let rs = Option.map Array.of_list rs in
    let params = apply_overrides Figures.quick ~seeds ~rs ~paper_scale ~pools in
    match Figures.run params id with
    | blocks ->
      List.iter print_endline blocks;
      `Ok ()
    | exception Not_found ->
      `Error (false, Printf.sprintf "unknown experiment %S; try: %s" id ids_doc)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Regenerate one of the paper's tables/figures.")
    Term.(ret (const action $ id $ seeds $ rs $ paper_scale $ pools))

(* ------------------------------------------------------------------ *)
(* list *)

let list_cmd =
  let action () =
    List.iter (fun id -> Printf.printf "%-12s %s\n" id (Figures.describe id)) Figures.all_ids
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids.") Term.(const action $ const ())

(* ------------------------------------------------------------------ *)
(* demo *)

let demo_cmd =
  let dataset =
    Arg.(value & opt (enum [ ("secstr", `Secstr); ("ads", `Ads); ("nuswide", `Nuswide) ])
           `Secstr
         & info [ "dataset" ] ~docv:"NAME" ~doc:"secstr | ads | nuswide.")
  in
  let dim =
    Arg.(value & opt int 24 & info [ "dim" ] ~docv:"R" ~doc:"Total subspace dimension.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Run seed.") in
  let paper_scale =
    Arg.(value & flag & info [ "paper" ] ~doc:"Paper-scale feature dimensions.")
  in
  let action dataset dim seed paper_scale =
    (match dataset with
     | `Secstr | `Ads ->
       let world =
         match dataset with
         | `Secstr -> Secstr.world (if paper_scale then Secstr.Paper else Secstr.Quick)
         | _ -> Ads.world (if paper_scale then Ads.Paper else Ads.Quick)
       in
       let config = Linear_protocol.default_config world in
       let st = Linear_protocol.prepare config ~seed in
       let table =
         Tableau.create
           ~title:(Printf.sprintf "RLS protocol, dim=%d, seed=%d" dim seed)
           ~columns:[ "method"; "val acc (%)"; "test acc (%)" ]
       in
       List.iter
         (fun meth ->
           let res = Linear_protocol.run_prepared st meth ~r:dim in
           Tableau.add_row table (Spec.linear_name meth)
             [ res.Linear_protocol.val_acc *. 100.; res.Linear_protocol.test_acc *. 100. ])
         Spec.all_linear;
       Tableau.print table
     | `Nuswide ->
       let world = Nuswide.world (if paper_scale then Nuswide.Paper else Nuswide.Quick) in
       let config = Knn_protocol.default_config world in
       let st = Knn_protocol.prepare config ~seed in
       let table =
         Tableau.create
           ~title:(Printf.sprintf "kNN protocol, dim=%d, seed=%d" dim seed)
           ~columns:[ "method"; "val acc (%)"; "test acc (%)" ]
       in
       List.iter
         (fun meth ->
           let res = Knn_protocol.run_prepared st meth ~r:dim in
           Tableau.add_row table (Spec.linear_name meth)
             [ res.Knn_protocol.val_acc *. 100.; res.Knn_protocol.test_acc *. 100. ])
         Spec.all_linear;
       Tableau.print table)
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run one protocol instance and print per-method accuracy.")
    Term.(const action $ dataset $ dim $ seed $ paper_scale)

let () =
  let doc = "Reproduction harness for 'Tensor CCA for Multi-view Dimension Reduction'" in
  let info = Cmd.info "tcca_experiments" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; list_cmd; demo_cmd ]))
