type options = { pca_dim : int; knn : int; max_instances : int }

let default_options = { pca_dim = 100; knn = 10; max_instances = 5000 }

type prepared = { embeddings : Mat.t array (* N × max_r each *); n : int }

let prepare ?(options = default_options) ?(seed = 23) ~max_r views =
  let m = Array.length views in
  if m < 2 then invalid_arg "Dse.prepare: need at least two views";
  let n = snd (Mat.dims views.(0)) in
  if n > options.max_instances then
    invalid_arg
      (Printf.sprintf
         "Dse.prepare: %d instances exceeds max_instances=%d (transductive N^2 method)" n
         options.max_instances);
  let max_r = min max_r (n - 1) in
  let embeddings =
    Array.mapi
      (fun p x ->
        let reduced = Pca.transform (Pca.fit ~r:options.pca_dim x) x in
        let graph = Graph.knn ~k:options.knn reduced in
        Graph.laplacian_embedding ~seed:(seed + p) ~r:max_r graph)
      views
  in
  { embeddings; n }

let transform_prepared prepared ~r =
  let max_r = snd (Mat.dims prepared.embeddings.(0)) in
  let r = min r max_r in
  (* Laplacian eigenvectors are ordered, so width-r patterns are the leading
     columns; the consensus is the top left singular subspace of their
     concatenation, scaled to unit per-sample variance. *)
  let stacked =
    Mat.hcat_list (Array.to_list (Array.map (fun b -> Mat.sub_cols b 0 r) prepared.embeddings))
  in
  (* Left singular subspace via the small (mr)² Gram eigenproblem:
     Z = B V Σ⁻¹ — never an N×N or O(N·(mr)²·sweeps) Jacobi. *)
  let eig = Eigen.decompose (Mat.tgram stacked) in
  let v = Eigen.top_k eig r in
  let bv = Mat.mul stacked v in
  let z = Mat.create (snd (Mat.dims bv)) prepared.n in
  let scale = sqrt (float_of_int prepared.n) in
  for c = 0 to r - 1 do
    let col = Mat.col bv c in
    let sigma = Float.max (Vec.norm col) 1e-300 in
    Mat.set_row z c (Vec.scale (scale /. sigma) col)
  done;
  z

let fit_transform ?options ?seed ~r views =
  transform_prepared (prepare ?options ?seed ~max_r:r views) ~r
