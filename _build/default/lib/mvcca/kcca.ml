type t = {
  a1 : Mat.t; (* N × r *)
  a2 : Mat.t;
  k1 : Mat.t; (* centered training grams, kept for the train embedding *)
  k2 : Mat.t;
  raw_col_means : Vec.t * Vec.t; (* per-view column means of the raw gram *)
  raw_total_mean : float * float;
  centered : bool;
  correlations : Vec.t;
}

(* Center a cross-kernel block consistently with a double-centered training
   gram: k̃ᵢⱼ = kᵢⱼ − rowmeanᵢ(K) − colmeanⱼ(C) + totalmean(K). *)
let center_cross ~train_col_means ~train_total cross =
  let n, q = Mat.dims cross in
  let cross_col_means = Array.init q (fun j -> Vec.mean (Mat.col cross j)) in
  Mat.init n q (fun i j ->
      Mat.get cross i j -. train_col_means.(i) -. cross_col_means.(j) +. train_total)

let jittered_pls eps k =
  let n, _ = Mat.dims k in
  let k2 = Mat.mul k k in
  let a = Mat.add (Mat.scale eps k) k2 in
  (* K is PSD so K²+εK is PSD; a whisper of jitter guards rank deficiency. *)
  Mat.add_scaled_identity (1e-10 *. (1. +. Mat.trace a /. float_of_int n)) a

let fit ?(eps = 1e-4) ?(center = true) ~r k1_raw k2_raw =
  let n, m1 = Mat.dims k1_raw and n2, m2 = Mat.dims k2_raw in
  if n <> m1 || n2 <> m2 then invalid_arg "Kcca.fit: kernels must be square";
  if n <> n2 then invalid_arg "Kcca.fit: kernel size mismatch";
  if r < 1 then invalid_arg "Kcca.fit: r must be >= 1";
  let r = min r n in
  let col_means k = Array.init n (fun i -> Vec.mean (Mat.row k i)) in
  let cm1 = col_means k1_raw and cm2 = col_means k2_raw in
  let tm1 = Stats.mean cm1 and tm2 = Stats.mean cm2 in
  let k1 = if center then Kernel.center k1_raw else Mat.copy k1_raw in
  let k2 = if center then Kernel.center k2_raw else Mat.copy k2_raw in
  let g1 = Cholesky.decompose (jittered_pls eps k1) in
  let g2 = Cholesky.decompose (jittered_pls eps k2) in
  (* T = G₁⁻¹ (K₁K₂) G₂⁻ᵀ, via two triangular solves. *)
  let k1k2 = Mat.mul k1 k2 in
  let a = Mat.create n n in
  for j = 0 to n - 1 do
    Mat.set_col a j (Cholesky.solve_lower_vec g1 (Mat.col k1k2 j))
  done;
  let t_mat = Mat.create n n in
  for i = 0 to n - 1 do
    (* row i of T solves G₂ tᵀ = (row i of A)ᵀ. *)
    Mat.set_row t_mat i (Cholesky.solve_lower_vec g2 (Mat.row a i))
  done;
  let svd = Svd.decompose t_mat in
  let u, sigma, v = Svd.truncated svd r in
  (* aₚ = Gₚ⁻ᵀ bₚ, i.e. solve Gₚᵀ aₚ = bₚ column-wise. *)
  let a1 = Cholesky.solve_lower_transpose g1 u in
  let a2 = Cholesky.solve_lower_transpose g2 v in
  { a1; a2; k1; k2;
    raw_col_means = (cm1, cm2);
    raw_total_mean = (tm1, tm2);
    centered = center;
    correlations = sigma }

let r t = Array.length t.correlations
let correlations t = Array.copy t.correlations

let transform_train t =
  Mat.vcat (Mat.mul_tn t.a1 t.k1) (Mat.mul_tn t.a2 t.k2)

let transform t c1 c2 =
  let cm1, cm2 = t.raw_col_means and tm1, tm2 = t.raw_total_mean in
  let c1 =
    if t.centered then center_cross ~train_col_means:cm1 ~train_total:tm1 c1 else c1
  in
  let c2 =
    if t.centered then center_cross ~train_col_means:cm2 ~train_total:tm2 c2 else c2
  in
  Mat.vcat (Mat.mul_tn t.a1 c1) (Mat.mul_tn t.a2 c2)

let dual_weights t = (Mat.copy t.a1, Mat.copy t.a2)
