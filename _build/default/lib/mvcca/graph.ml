type t = { adjacency : (int * float) array array; degree : Vec.t }

let n_nodes g = Array.length g.adjacency
let degree g = Array.copy g.degree

let knn ?(k = 10) x =
  let _, n = Mat.dims x in
  if n < 2 then invalid_arg "Graph.knn: need at least two instances";
  let k = min k (n - 1) in
  (* Squared distances via the Gram expansion; O(N²) memory is avoided by
     scanning one row at a time. *)
  let cols = Array.init n (Mat.col x) in
  let norms = Array.map (fun c -> Vec.dot c c) cols in
  let neighbour_sets = Array.make n [||] in
  let mean_knn_dist = ref 0. in
  let dist_row = Array.make n 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      dist_row.(j) <-
        (if i = j then infinity
         else Float.max 0. (norms.(i) +. norms.(j) -. (2. *. Vec.dot cols.(i) cols.(j))))
    done;
    let order = Array.init n (fun j -> j) in
    Array.sort (fun a b -> compare dist_row.(a) dist_row.(b)) order;
    let nearest = Array.sub order 0 k in
    neighbour_sets.(i) <- Array.map (fun j -> (j, dist_row.(j))) nearest;
    Array.iter (fun (_, d2) -> mean_knn_dist := !mean_knn_dist +. sqrt d2) neighbour_sets.(i)
  done;
  let sigma =
    let mean = !mean_knn_dist /. float_of_int (n * k) in
    if mean > 0. then mean else 1.
  in
  let weight d2 = exp (-.d2 /. (2. *. sigma *. sigma)) in
  (* Symmetrize with the max rule via a per-node table. *)
  let tables = Array.init n (fun _ -> Hashtbl.create (2 * k)) in
  let put i j w =
    match Hashtbl.find_opt tables.(i) j with
    | Some w0 when w0 >= w -> ()
    | _ -> Hashtbl.replace tables.(i) j w
  in
  Array.iteri
    (fun i nbrs ->
      Array.iter
        (fun (j, d2) ->
          let w = weight d2 in
          put i j w;
          put j i w)
        nbrs)
    neighbour_sets;
  let adjacency =
    Array.map
      (fun table ->
        let entries = Hashtbl.fold (fun j w acc -> (j, w) :: acc) table [] in
        let arr = Array.of_list entries in
        Array.sort (fun (a, _) (b, _) -> compare a b) arr;
        arr)
      tables
  in
  let degree =
    Array.map (fun nbrs -> Array.fold_left (fun acc (_, w) -> acc +. w) 0. nbrs) adjacency
  in
  { adjacency; degree }

let matvec_normalized_adjacency g y =
  let n = n_nodes g in
  if Array.length y <> n then invalid_arg "Graph.matvec: dimension mismatch";
  let inv_sqrt_deg =
    Array.map (fun d -> if d > 0. then 1. /. sqrt d else 0.) g.degree
  in
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref 0. in
    Array.iter (fun (j, w) -> acc := !acc +. (w *. inv_sqrt_deg.(j) *. y.(j))) g.adjacency.(i);
    out.(i) <- inv_sqrt_deg.(i) *. !acc
  done;
  out

(* Subspace iteration on I + S (spectrum in [0, 2]): the dominant invariant
   subspace of I + S is the smallest-eigenvalue subspace of L = I − S.
   The block is kept as plain column arrays — this loop is the hot path of
   the DSE baseline, and modified Gram–Schmidt over arrays beats a
   Householder QR through Mat accessors by a wide margin. *)
let laplacian_embedding ?(iterations = 60) ?(seed = 17) ~r g =
  let n = n_nodes g in
  if r < 1 then invalid_arg "Graph.laplacian_embedding: r must be >= 1";
  let r = min r (n - 1) in
  let width = min n (r + 3) in
  let rng = Rng.create seed in
  let inv_sqrt_deg = Array.map (fun d -> if d > 0. then 1. /. sqrt d else 0.) g.degree in
  let shifted_matvec y =
    (* (I + S) y with S = D^{-1/2} W D^{-1/2}. *)
    let out = Array.make n 0. in
    for i = 0 to n - 1 do
      let acc = ref 0. in
      Array.iter
        (fun (j, w) -> acc := !acc +. (w *. inv_sqrt_deg.(j) *. Array.unsafe_get y j))
        g.adjacency.(i);
      out.(i) <- y.(i) +. (inv_sqrt_deg.(i) *. !acc)
    done;
    out
  in
  let cols = Array.init width (fun _ -> Array.init n (fun _ -> Rng.gaussian rng)) in
  let mgs () =
    for c = 0 to width - 1 do
      for prev = 0 to c - 1 do
        Vec.axpy_in_place (-.Vec.dot cols.(c) cols.(prev)) cols.(prev) cols.(c)
      done;
      let norm = Vec.norm cols.(c) in
      if norm > 1e-300 then
        for i = 0 to n - 1 do
          cols.(c).(i) <- cols.(c).(i) /. norm
        done
      else cols.(c).(Rng.int rng n) <- 1.
    done
  in
  mgs ();
  for it = 1 to iterations do
    for c = 0 to width - 1 do
      cols.(c) <- shifted_matvec cols.(c)
    done;
    if it mod 6 = 0 || it = iterations then mgs ()
  done;
  (* Rayleigh–Ritz refinement inside the converged block. *)
  let block = Mat.of_cols cols in
  let sq = Mat.of_cols (Array.map shifted_matvec cols) in
  let small = Mat.mul_tn block sq in
  let eig = Eigen.decompose small in
  let rotated = Mat.mul block (Eigen.top_k eig width) in
  (* Drop the trivial top eigenvector (constant direction), keep the next r. *)
  Mat.sub_cols rotated 1 r
