type t = {
  means : Vec.t array;
  projections : Mat.t array; (* dₚ × r *)
  variates : Mat.t;          (* N × r *)
  score : Vec.t;
}

let fit ?(eps = 1e-2) ~r views =
  let m = Array.length views in
  if m < 2 then invalid_arg "Cca_maxvar.fit: need at least two views";
  let n = snd (Mat.dims views.(0)) in
  Array.iter
    (fun v -> if snd (Mat.dims v) <> n then invalid_arg "Cca_maxvar.fit: instance mismatch")
    views;
  if r < 1 then invalid_arg "Cca_maxvar.fit: r must be >= 1";
  let nf = float_of_int n in
  let means = Array.map Mat.row_means views in
  let centered = Array.map2 Mat.sub_col_vec views means in
  (* Ridge-whitened view blocks Yₚ = (Cpp + εI)^{−1/2} Xₚ/√N, so that
     YₚᵀYₚ = Pₚ, the regularized projector onto view p's variate space. *)
  let whitened =
    Array.map
      (fun x ->
        let cov = Mat.add_scaled_identity eps (Mat.scale (1. /. nf) (Mat.gram x)) in
        Mat.scale (1. /. sqrt nf) (Mat.mul (Matfun.inv_sqrt_psd cov) x))
      centered
  in
  let b = Mat.vcat_list (Array.to_list whitened) in
  let total_d = fst (Mat.dims b) in
  let r = min r (min n total_d) in
  (* Top right singular vectors of B via the small (Σdₚ)² Gram eigenproblem. *)
  let eig = Eigen.decompose (Mat.gram b) in
  let u = Eigen.top_k eig r in
  let score = Array.sub eig.Eigen.values 0 r in
  let variates = Mat.create n r in
  for i = 0 to r - 1 do
    let bu = Mat.tmul_vec b (Mat.col u i) in
    let sigma = sqrt (Float.max score.(i) 1e-300) in
    Mat.set_col variates i (Vec.scale (1. /. sigma) bu)
  done;
  (* hₚ⁽ⁱ⁾ = (XₚXₚᵀ + NεI)⁻¹ Xₚ z⁽ⁱ⁾ — the per-view ridge regression onto the
     common variate — rescaled to hᵀC̃pp h = 1 so each canonical variable has
     unit variance (see the matching comment in Cca_ls). *)
  let projections =
    Array.map
      (fun x ->
        let a = Mat.add_scaled_identity (nf *. eps) (Mat.gram x) in
        let h = Cholesky.solve_system a (Mat.mul x variates) in
        let r_cols = snd (Mat.dims h) in
        for i = 0 to r_cols - 1 do
          let hi = Mat.col h i in
          let z_p = Mat.tmul_vec x hi in
          let variance = (Vec.dot z_p z_p /. nf) +. (eps *. Vec.dot hi hi) in
          if variance > 1e-300 then Mat.set_col h i (Vec.scale (1. /. sqrt variance) hi)
        done;
        h)
      centered
  in
  { means; projections; variates; score }

let r t = snd (Mat.dims t.variates)

let transform_view t p x = Mat.mul_tn t.projections.(p) (Mat.sub_col_vec x t.means.(p))

let transform t views =
  if Array.length views <> Array.length t.projections then
    invalid_arg "Cca_maxvar.transform: view count mismatch";
  Mat.vcat_list (Array.to_list (Array.mapi (fun p x -> transform_view t p x) views))

let common_variates t = Mat.copy t.variates
let score t = Array.copy t.score
