(** k-NN similarity graphs and Laplacian-eigenmap embeddings — the per-view
    spectral dimension reduction step of the DSE baseline (Long et al. 2008,
    building on Belkin & Niyogi 2001).

    The graph is sparse (k neighbours per node, symmetrized), so the smallest
    Laplacian eigenvectors are computed by subspace iteration on the shifted
    normalized adjacency [I + D^{−1/2} W D^{−1/2}] with sparse mat-vecs:
    O(N·k·r) per iteration, never materializing an N×N matrix. *)

type t
(** Symmetric weighted graph on N nodes. *)

val knn : ?k:int -> Mat.t -> t
(** [knn ~k x] with instances as columns of [x]; edges to the [k] nearest
    neighbours (Euclidean), heat-kernel weighted with the bandwidth set to
    the mean neighbour distance, then symmetrized (max rule).  Default
    [k = 10]. *)

val n_nodes : t -> int
val degree : t -> Vec.t
val matvec_normalized_adjacency : t -> Vec.t -> Vec.t
(** [S y] with [S = D^{−1/2} W D^{−1/2}] (isolated nodes contribute 0). *)

val laplacian_embedding : ?iterations:int -> ?seed:int -> r:int -> t -> Mat.t
(** [N × r] embedding: eigenvectors of the normalized Laplacian for its
    [r] smallest non-trivial eigenvalues (the constant-direction eigenvector
    is computed and dropped). *)
