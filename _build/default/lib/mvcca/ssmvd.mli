(** SSMVD — structured-sparse multi-view dimension reduction (Han et al.
    2012): learns a low-dimensional consensus representation of multi-view
    data while a structured sparsity-inducing norm (Jenatton et al. 2011)
    over *view groups* lets information be shared by subsets of views
    adaptively.

    Formulation used here (per-view PCA to [pca_dim] first, as in the
    paper's setup): with stacked reduced views [Y ∈ R^{D×N}],

    [min_{W,Z} ‖Y − W Z‖²_F + λ Σ_v ‖W_v‖_F]

    where [W_v] is the block of [W] owned by view [v].  Solved by
    alternating a ridge solve for [Z] with an IRLS (half-quadratic) update
    of each view block — the standard majorizer for group-ℓ2 penalties.
    Like DSE, the method is transductive. *)

type options = {
  pca_dim : int;     (** Per-view PCA target (default 100). *)
  lambda : float;    (** Group-sparsity weight (default 0.1). *)
  max_iter : int;    (** Alternations (default 50). *)
  tol : float;       (** Relative objective-change stop (default 1e-5). *)
}

val default_options : options

val fit_transform : ?options:options -> r:int -> Mat.t array -> Mat.t
(** [r × N] consensus representation of the given instances. *)

val view_weights : ?options:options -> r:int -> Mat.t array -> Vec.t
(** Diagnostic: final [‖W_v‖_F] per view — shows which views the sparse
    consensus actually uses. *)
