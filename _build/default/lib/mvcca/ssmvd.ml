type options = { pca_dim : int; lambda : float; max_iter : int; tol : float }

let default_options = { pca_dim = 100; lambda = 0.1; max_iter = 50; tol = 1e-5 }

type state = {
  y : Mat.t;                 (* D × N stacked reduced views *)
  blocks : (int * int) array; (* (offset, size) of each view's rows in y *)
  w : Mat.t;                 (* D × r *)
  z : Mat.t;                 (* r × N *)
}

let block_norm w (off, size) =
  let acc = ref 0. in
  for i = off to off + size - 1 do
    let row = Mat.row w i in
    acc := !acc +. Vec.dot row row
  done;
  sqrt !acc

let objective options state =
  let residual = Mat.sub state.y (Mat.mul state.w state.z) in
  let fit = Mat.frobenius residual ** 2. in
  let penalty =
    Array.fold_left (fun acc b -> acc +. block_norm state.w b) 0. state.blocks
  in
  fit +. (options.lambda *. penalty)

let solve options views ~r =
  let m = Array.length views in
  if m < 2 then invalid_arg "Ssmvd: need at least two views";
  let n = snd (Mat.dims views.(0)) in
  let reduced = Array.map (fun x -> Pca.transform (Pca.fit ~r:options.pca_dim x) x) views in
  let y = Mat.vcat_list (Array.to_list reduced) in
  let d, _ = Mat.dims y in
  let r = min r (min d n) in
  let blocks =
    let off = ref 0 in
    Array.map
      (fun v ->
        let size = fst (Mat.dims v) in
        let b = (!off, size) in
        off := !off + size;
        b)
      reduced
  in
  (* Init W from the PCA of the stacked representation. *)
  let w = ref (Pca.components (Pca.fit ~center:false ~r y)) in
  let z = ref (Mat.create r n) in
  let state () = { y; blocks; w = !w; z = !z } in
  let prev_obj = ref infinity in
  (try
     for _ = 1 to options.max_iter do
       (* Z step: ridge-free least squares (WᵀW + δI) Z = Wᵀ Y. *)
       let wtw = Mat.add_scaled_identity 1e-10 (Mat.tgram !w) in
       z := Cholesky.solve_system wtw (Mat.mul_tn !w y);
       (* W step (half-quadratic): each view block v solves
          W_v (Z Zᵀ + θ_v I) = Y_v Zᵀ with θ_v = λ / (2 max ‖W_v‖, δ). *)
       let zzt = Mat.gram !z in
       let w' = Mat.create d r in
       Array.iter
         (fun (off, size) ->
           let theta = options.lambda /. (2. *. Float.max (block_norm !w (off, size)) 1e-8) in
           let a = Mat.add_scaled_identity theta zzt in
           let y_v = Mat.sub_rows y off size in
           let rhs = Mat.mul_nt y_v !z in
           (* Solve A Wᵀ = rhsᵀ, i.e. W_v = rhs A⁻¹ with A symmetric. *)
           let wv = Mat.transpose (Cholesky.solve_system a (Mat.transpose rhs)) in
           for i = 0 to size - 1 do
             Mat.set_row w' (off + i) (Mat.row wv i)
           done)
         blocks;
       w := w';
       let obj = objective options (state ()) in
       if Float.abs (!prev_obj -. obj) <= options.tol *. Float.max 1. obj then raise Exit;
       prev_obj := obj
     done
   with Exit -> ());
  state ()

let fit_transform ?(options = default_options) ~r views = (solve options views ~r).z

let view_weights ?(options = default_options) ~r views =
  let state = solve options views ~r in
  Array.map (block_norm state.w) state.blocks
