(** DSE — the distributed spectral embedding baseline (Long, Yu & Zhang,
    SDM 2008): a general model for multi-view unsupervised learning that
    first reduces each view independently and then reconciles the per-view
    patterns into one consensus embedding.

    Pipeline, following the paper's experimental setup (Sec. 5.1):
    + per-view PCA to [pca_dim] dimensions (the paper uses 100),
    + per-view Laplacian-eigenmap embedding [Bₚ ∈ R^{N×r}] ({!Graph}),
    + consensus [Z] minimizing [Σₚ min_{Aₚ} ‖Z Aₚ − Bₚ‖²] over orthonormal
      [Z] — the top left singular vectors of [B₁ | … | Bₘ] — rescaled by √N
      so embedded features have unit per-sample variance.

    The method is transductive: it embeds exactly the instances it was given
    (no out-of-sample projection exists), which is why the paper caps its
    input size — mirrored by [max_instances].  Laplacian eigenvectors are
    nested in [r], so {!prepare} computes them once at [max_r] and
    {!transform_prepared} reuses them for every smaller dimension. *)

type options = {
  pca_dim : int;        (** Per-view PCA target (default 100). *)
  knn : int;            (** Graph neighbourhood size (default 10). *)
  max_instances : int;  (** Refuse larger inputs, as the paper subsamples
                            DSE to 10K (default 5000). *)
}

val default_options : options

type prepared
(** Per-view spectral embeddings of a fixed instance set at width [max_r]. *)

val prepare : ?options:options -> ?seed:int -> max_r:int -> Mat.t array -> prepared
(** Raises [Invalid_argument] beyond [max_instances]. *)

val transform_prepared : prepared -> r:int -> Mat.t
(** [r × N] consensus embedding, [r ≤ max_r]. *)

val fit_transform : ?options:options -> ?seed:int -> r:int -> Mat.t array -> Mat.t
(** [prepare] + [transform_prepared] in one step. *)
