type t = { mean : Vec.t; components : Mat.t; variances : Vec.t }

let fit ?(center = true) ~r x =
  let d, n = Mat.dims x in
  if n = 0 then invalid_arg "Pca.fit: no instances";
  let mean = if center then Mat.row_means x else Array.make d 0. in
  let centered = Mat.sub_col_vec x mean in
  let cov = Mat.scale (1. /. float_of_int n) (Mat.gram centered) in
  let eig = Eigen.decompose cov in
  let keep = min r d in
  { mean;
    components = Eigen.top_k eig keep;
    variances = Array.sub eig.Eigen.values 0 keep }

let transform t x = Mat.mul_tn t.components (Mat.sub_col_vec x t.mean)
let components t = Mat.copy t.components
let explained_variance t = Array.copy t.variances
let mean t = Array.copy t.mean
