(** Principal component analysis.

    Used as the per-view preprocessing step of the DSE and SSMVD baselines
    (the paper reduces each view to 100 dimensions with PCA before running
    them) and as the best one-dimensional representation in CCA-MAXVAR. *)

type t

val fit : ?center:bool -> r:int -> Mat.t -> t
(** Instances as columns; keeps the top [min r d] components. *)

val transform : t -> Mat.t -> Mat.t
(** [r × N] scores. *)

val components : t -> Mat.t
(** [d × r] orthonormal loadings. *)

val explained_variance : t -> Vec.t
(** Eigenvalues of the covariance for the kept components. *)

val mean : t -> Vec.t
