type projector = { project : Mat.t array -> Mat.t }

type t =
  | Projective of { name : string; fit : int -> Mat.t array -> projector }
  | Transductive of { name : string; fit_transform : int -> Mat.t array -> Mat.t }

let name = function Projective { name; _ } | Transductive { name; _ } -> name

let per_view_r ~n_views ~r = max 1 (r / n_views)

let tcca ?eps ?solver () =
  Projective
    { name = "tcca";
      fit =
        (fun r views ->
          let m = Array.length views in
          let model = Tcca.fit ?eps ?solver ~r:(per_view_r ~n_views:m ~r) views in
          { project = Tcca.transform model }) }

let cca_pair ?eps (p, q) =
  Projective
    { name = Printf.sprintf "cca(%d,%d)" p q;
      fit =
        (fun r views ->
          let model = Cca.fit ?eps ~r:(max 1 (r / 2)) views.(p) views.(q) in
          { project = (fun vs -> Cca.transform_concat model vs.(p) vs.(q)) }) }

let cca_ls ?eps () =
  Projective
    { name = "cca-ls";
      fit =
        (fun r views ->
          let m = Array.length views in
          let model = Cca_ls.fit ?eps ~r:(per_view_r ~n_views:m ~r) views in
          { project = Cca_ls.transform model }) }

let cca_maxvar ?eps () =
  Projective
    { name = "cca-maxvar";
      fit =
        (fun r views ->
          let m = Array.length views in
          let model = Cca_maxvar.fit ?eps ~r:(per_view_r ~n_views:m ~r) views in
          { project = Cca_maxvar.transform model }) }

let dse ?options () =
  Transductive
    { name = "dse"; fit_transform = (fun r views -> Dse.fit_transform ?options ~r views) }

let ssmvd ?options () =
  Transductive
    { name = "ssmvd"; fit_transform = (fun r views -> Ssmvd.fit_transform ?options ~r views) }

let single_view p =
  Projective
    { name = Printf.sprintf "view%d" p;
      fit = (fun _r _views -> { project = (fun vs -> Mat.copy vs.(p)) }) }

let concat_views =
  Projective
    { name = "cat";
      fit =
        (fun _r views ->
          (* Freeze the per-view scale on the fitting data. *)
          let scales =
            Array.map
              (fun v ->
                let _, n = Mat.dims v in
                let total = ref 0. in
                for j = 0 to n - 1 do
                  total := !total +. Vec.norm (Mat.col v j)
                done;
                let avg = !total /. float_of_int (max n 1) in
                if avg > 0. then 1. /. avg else 1.)
              views
          in
          { project =
              (fun vs ->
                Mat.vcat_list
                  (Array.to_list (Array.map2 (fun s v -> Mat.scale s v) scales vs))) }) }

let pca_per_view =
  Projective
    { name = "pca-per-view";
      fit =
        (fun r views ->
          let m = Array.length views in
          let rv = per_view_r ~n_views:m ~r in
          let models = Array.map (fun v -> Pca.fit ~r:rv v) views in
          { project =
              (fun vs ->
                Mat.vcat_list (Array.to_list (Array.map2 Pca.transform models vs))) }) }
