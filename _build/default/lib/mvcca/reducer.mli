(** A uniform interface over every dimension-reduction method in the
    comparison, so the experiment harness can treat them interchangeably.

    Two families, exactly as in the paper's protocol:
    - {e projective} methods learn a projection from unlabeled data and can
      then embed any instances (all CCA-family methods, TCCA, baselines);
    - {e transductive} methods (DSE, SSMVD) embed only the instances they
      were fitted on — no out-of-sample projection exists, so the harness
      must fit them on the union of all instances it needs embedded. *)

type projector = { project : Mat.t array -> Mat.t }

type t =
  | Projective of { name : string; fit : int -> Mat.t array -> projector }
      (** [fit r views] learns on (unlabeled) views. *)
  | Transductive of { name : string; fit_transform : int -> Mat.t array -> Mat.t }

val name : t -> string

(** {1 Method constructors}

    Each takes the total target dimension at fit time and splits it per the
    paper's conventions: pairwise CCA produces 2·(r/2) dims, the m-view
    methods m·(r/m), DSE/SSMVD produce r directly. *)

val tcca : ?eps:float -> ?solver:Tcca.solver -> unit -> t
val cca_pair : ?eps:float -> int * int -> t
(** CCA on one pair of views (paper's CCA; pairs enumerated by the harness
    for BST/AVG). *)

val cca_ls : ?eps:float -> unit -> t
val cca_maxvar : ?eps:float -> unit -> t
val dse : ?options:Dse.options -> unit -> t
val ssmvd : ?options:Ssmvd.options -> unit -> t

val single_view : int -> t
(** Raw features of one view (the BSF baseline; view chosen by validation
    in the harness). *)

val concat_views : t
(** Normalized concatenation of all views (the CAT baseline).  Ignores [r]. *)

val pca_per_view : t
(** Per-view PCA to r/m dims then concatenation — a sanity baseline used in
    tests and ablations. *)
