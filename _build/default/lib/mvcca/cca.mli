(** Two-view regularized canonical correlation analysis, after Foster,
    Johnson & Zhang (2008) — the paper's primary baseline.

    With centered views [X₁, X₂] and [C̃pp = Cpp + εI], the canonical pairs
    are the singular triplets of the whitened cross-covariance
    [T = C̃₁₁^{−1/2} C₁₂ C̃₂₂^{−1/2}]: projection [hₚ = C̃pp^{−1/2} uₚ], and
    the singular values are the canonical correlations. *)

type t

val fit : ?eps:float -> r:int -> Mat.t -> Mat.t -> t
(** [fit ~eps ~r x1 x2] on (not necessarily centered) views with instances
    as columns; centering is handled internally and frozen.  [eps] defaults
    to 1e-2, the paper's value for the linear experiments.  [r] is clamped
    to [min d₁ d₂]. *)

val r : t -> int

val correlations : t -> Vec.t
(** Canonical correlations, descending, length [r]. *)

val transform1 : t -> Mat.t -> Mat.t
(** Project view-1 data: [r × N]. *)

val transform2 : t -> Mat.t -> Mat.t

val transform_concat : t -> Mat.t -> Mat.t -> Mat.t
(** Concatenated [2r × N] representation — the paper's "reduce to 2r"
    convention for downstream learners. *)

val projections : t -> Mat.t * Mat.t
(** The [d₁×r] and [d₂×r] projection matrices (whitening included). *)
