(** CCA-LS (Vía, Santamaría & Pérez 2007): the multi-view CCA baseline of
    the paper, reformulating CCA-MAXVAR as coupled least-squares problems
    (paper Eq. 3.3) solved by alternating regression.

    For each component: alternately regress every view onto the current
    common variate ([hₚ ← (XₚXₚᵀ+NεI)⁻¹Xₚz]) and refresh the variate as the
    average prediction ([z ← (1/m)Σₚ Xₚᵀhₚ]), deflating against previous
    variates to enforce the paper's orthogonality constraint
    [z⁽ⁱ⁾ᵀz⁽ʲ⁾ = 0].  Converges to the MAXVAR solution (verified in the
    test suite) without any d×d eigendecomposition. *)

type t

val fit : ?eps:float -> ?max_iter:int -> ?tol:float -> ?seed:int -> r:int -> Mat.t array -> t
(** Defaults: [eps = 1e-2], [max_iter = 120], [tol = 1e-9] (squared variate
    change), [seed = 11] for the variate initialization. *)

val r : t -> int

val transform : t -> Mat.t array -> Mat.t
(** Concatenated [m·r × N] representation. *)

val transform_view : t -> int -> Mat.t -> Mat.t
val common_variates : t -> Mat.t
(** [N_train × r], orthonormal columns. *)

val iterations : t -> int array
(** Alternating iterations spent on each component. *)

(** The *adaptive* variant Vía et al. actually advertise: one coupled
    recursive-least-squares filter per view, updated per sample, so the
    canonical vectors track the leading MAXVAR component of a (possibly
    drifting) stream without ever storing data.

    Per sample: the current common variate estimate is the average
    prediction [z = (1/m)Σₚ hₚᵀxₚ], and every view's filter takes one RLS
    step towards it with forgetting factor [beta].  On stationary streams
    the filters converge to the batch leading component (verified in the
    test suite). *)
module Online : sig
  type t

  val create : ?beta:float -> ?delta:float -> dims:int array -> unit -> t
  (** [beta] is the RLS forgetting factor in (0,1] (default 0.999 — values
      below 1 track drift); [delta] the inverse-covariance init scale
      (default 10). *)

  val step : t -> Vec.t array -> float
  (** Consume one multi-view sample (uncentered; a running mean is
      maintained internally) and return the current variate estimate for
      it. *)

  val samples_seen : t -> int

  val canonical_vectors : t -> Vec.t array
  (** Current per-view filters [hₚ], normalized to unit canonical-variable
      variance under the running statistics. *)

  val transform_view : t -> int -> Mat.t -> Vec.t
  (** Project a view's columns with the current filter (running mean
      subtracted): returns the 1-D canonical variable per instance. *)
end
