(** CCA-MAXVAR (Kettenring 1971): the classical multi-view CCA that finds a
    common variate [z] maximizing the summed squared correlations with every
    view — equivalently, minimizing [Σₚ ‖z − Xₚᵀhₚ‖²] (paper Eq. 3.2).

    Solved exactly: the optimal [z]'s are the top right singular vectors of
    the stacked ridge-whitened data [B = vcat_p (XₚXₚᵀ + NεI)^{−1/2} Xₚ],
    obtained from the (Σdₚ)² eigenproblem of [BBᵀ], so the cost is
    independent of N — unlike the naive N×N formulation the paper calls
    "costly SVD".  Used as a baseline and as the reference solution that
    {!Cca_ls} must agree with. *)

type t

val fit : ?eps:float -> r:int -> Mat.t array -> t
(** Views with instances as columns; centered internally. *)

val r : t -> int

val transform : t -> Mat.t array -> Mat.t
(** Concatenated [m·r × N] representation. *)

val transform_view : t -> int -> Mat.t -> Mat.t
(** Single-view projection, [r × N]. *)

val common_variates : t -> Mat.t
(** The [N_train × r] matrix of optimal common variates [z⁽ⁱ⁾]
    (orthonormal columns). *)

val score : t -> Vec.t
(** Eigenvalues of [Σₚ Pₚ] for the kept components — each lies in [0, m]
    and measures how well all views agree on that variate. *)
