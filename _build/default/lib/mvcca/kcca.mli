(** Two-view kernel CCA (Hardoon, Szedmak & Shawe-Taylor 2004) — the
    baseline of the paper's non-linear experiments (Sec. 5.2).

    With (optionally double-centered) Gram matrices [K₁, K₂] and the PLS
    regularization of Eq. 4.14, dual weights satisfy
    [max a₁ᵀK₁K₂a₂  s.t.  aₚᵀ(Kₚ² + εKₚ)aₚ = 1]; with the Cholesky factor
    [Kₚ² + εKₚ = GₚGₚᵀ] this is the SVD of [G₁⁻¹ K₁K₂ G₂⁻ᵀ]. *)

type t

val fit : ?eps:float -> ?center:bool -> r:int -> Mat.t -> Mat.t -> t
(** [fit ~eps ~r k1 k2] on training Gram matrices.  [center] (default true)
    double-centers the kernels, i.e. centers in feature space.  [eps]
    defaults to 1e-4. *)

val r : t -> int
val correlations : t -> Vec.t

val transform_train : t -> Mat.t
(** [2r × N] concatenated embedding of the training instances
    ([zₚ = Kₚ aₚ]). *)

val transform : t -> Mat.t -> Mat.t -> Mat.t
(** [transform t c1 c2] embeds new instances given their cross-kernel
    columns [cₚ : N_train × N_new] (un-centered; centering is applied
    consistently inside).  Returns [2r × N_new]. *)

val dual_weights : t -> Mat.t * Mat.t
(** The [N × r] dual coefficient matrices [a₁, a₂]. *)
