lib/mvcca/dse.ml: Array Eigen Float Graph Mat Pca Printf Vec
