lib/mvcca/dse.mli: Mat
