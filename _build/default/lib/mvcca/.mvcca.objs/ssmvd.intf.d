lib/mvcca/ssmvd.mli: Mat Vec
