lib/mvcca/tcca.ml: Array Cp_als Cp_rand Hashtbl Kruskal List Mat Matfun Printf Tensor Tensor_power Vec
