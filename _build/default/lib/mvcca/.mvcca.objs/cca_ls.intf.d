lib/mvcca/cca_ls.mli: Mat Vec
