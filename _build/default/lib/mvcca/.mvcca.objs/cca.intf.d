lib/mvcca/cca.mli: Mat Vec
