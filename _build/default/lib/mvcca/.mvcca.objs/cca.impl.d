lib/mvcca/cca.ml: Array Mat Matfun Svd Vec
