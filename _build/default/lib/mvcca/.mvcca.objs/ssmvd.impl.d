lib/mvcca/ssmvd.ml: Array Cholesky Float Mat Pca Vec
