lib/mvcca/graph.ml: Array Eigen Float Hashtbl Mat Rng Vec
