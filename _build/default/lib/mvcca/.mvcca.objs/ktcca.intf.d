lib/mvcca/ktcca.mli: Mat Tcca Vec
