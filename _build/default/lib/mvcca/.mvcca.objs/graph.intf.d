lib/mvcca/graph.mli: Mat Vec
