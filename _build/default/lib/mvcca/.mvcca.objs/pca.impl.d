lib/mvcca/pca.ml: Array Eigen Mat Vec
