lib/mvcca/pca.mli: Mat Vec
