lib/mvcca/reducer.ml: Array Cca Cca_ls Cca_maxvar Dse Mat Pca Printf Ssmvd Tcca Vec
