lib/mvcca/cca_maxvar.ml: Array Cholesky Eigen Float Mat Matfun Vec
