lib/mvcca/cca_ls.ml: Array Cholesky Float Mat Rng Vec
