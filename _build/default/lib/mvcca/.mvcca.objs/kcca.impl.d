lib/mvcca/kcca.ml: Array Cholesky Kernel Mat Stats Svd Vec
