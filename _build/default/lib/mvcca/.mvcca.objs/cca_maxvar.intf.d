lib/mvcca/cca_maxvar.mli: Mat Vec
