lib/mvcca/reducer.mli: Dse Mat Ssmvd Tcca
