lib/mvcca/ktcca.ml: Array Cholesky Cp_als Cp_rand Kernel Kruskal Mat Printf Stats Tcca Tensor Tensor_power Vec
