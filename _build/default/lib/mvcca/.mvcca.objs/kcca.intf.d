lib/mvcca/kcca.mli: Mat Vec
