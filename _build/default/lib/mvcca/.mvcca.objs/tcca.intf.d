lib/mvcca/tcca.mli: Cp_als Cp_rand Mat Tensor Vec
