type t = {
  mean1 : Vec.t;
  mean2 : Vec.t;
  proj1 : Mat.t; (* d1 × r *)
  proj2 : Mat.t;
  correlations : Vec.t;
}

let fit ?(eps = 1e-2) ~r x1 x2 =
  let d1, n1 = Mat.dims x1 and d2, n2 = Mat.dims x2 in
  if n1 <> n2 then invalid_arg "Cca.fit: instance count mismatch";
  if n1 = 0 then invalid_arg "Cca.fit: no instances";
  if r < 1 then invalid_arg "Cca.fit: r must be >= 1";
  let r = min r (min d1 d2) in
  let nf = float_of_int n1 in
  let mean1 = Mat.row_means x1 and mean2 = Mat.row_means x2 in
  let c1 = Mat.sub_col_vec x1 mean1 and c2 = Mat.sub_col_vec x2 mean2 in
  let c11 = Mat.add_scaled_identity eps (Mat.scale (1. /. nf) (Mat.gram c1)) in
  let c22 = Mat.add_scaled_identity eps (Mat.scale (1. /. nf) (Mat.gram c2)) in
  let c12 = Mat.scale (1. /. nf) (Mat.mul_nt c1 c2) in
  let w1 = Matfun.inv_sqrt_psd c11 and w2 = Matfun.inv_sqrt_psd c22 in
  let whitened_cross = Mat.mul w1 (Mat.mul c12 w2) in
  let svd = Svd.decompose whitened_cross in
  let u, sigma, v = Svd.truncated svd r in
  { mean1;
    mean2;
    proj1 = Mat.mul w1 u;
    proj2 = Mat.mul w2 v;
    correlations = sigma }

let r t = Array.length t.correlations
let correlations t = Array.copy t.correlations
let transform1 t x = Mat.mul_tn t.proj1 (Mat.sub_col_vec x t.mean1)
let transform2 t x = Mat.mul_tn t.proj2 (Mat.sub_col_vec x t.mean2)
let transform_concat t x1 x2 = Mat.vcat (transform1 t x1) (transform2 t x2)
let projections t = (Mat.copy t.proj1, Mat.copy t.proj2)
