type t = {
  means : Vec.t array;
  projections : Mat.t array; (* dₚ × r *)
  variates : Mat.t;          (* N × r *)
  iterations : int array;
}

(* The alternating iteration of Vía et al. is
     hₚ ← (XₚXₚᵀ + NεI)⁻¹ Xₚ z,   z ← (1/m) Σₚ Xₚᵀ hₚ  (+ deflation),
   and every iterate z stays in the row space of the stacked views, so the
   whole recursion can be carried on coefficient vectors aₚ with
   z = Σₚ Xₚᵀ aₚ:
     hₚ = C̃pp⁻¹ Σ_q C_pq a_q,   a'ₚ = hₚ / m,
     ⟨z, z'⟩ = N Σ_pq aₚᵀ C_pq a'_q.
   After one O(N·d²) pass for the covariance blocks, iterations are free of
   N — the batch-equivalent of the paper's "adaptive" property. *)
let fit ?(eps = 1e-2) ?(max_iter = 120) ?(tol = 1e-9) ?(seed = 11) ~r views =
  let m = Array.length views in
  if m < 2 then invalid_arg "Cca_ls.fit: need at least two views";
  let n = snd (Mat.dims views.(0)) in
  Array.iter
    (fun v -> if snd (Mat.dims v) <> n then invalid_arg "Cca_ls.fit: instance mismatch")
    views;
  if r < 1 then invalid_arg "Cca_ls.fit: r must be >= 1";
  let nf = float_of_int n in
  let means = Array.map Mat.row_means views in
  let centered = Array.map2 Mat.sub_col_vec views means in
  let dims = Array.map (fun v -> fst (Mat.dims v)) views in
  let r = min r n in
  (* Covariance blocks C_pq = Xₚ Xqᵀ / N (C_qp = C_pqᵀ shared). *)
  let cov = Array.make_matrix m m (Mat.create 1 1) in
  for p = 0 to m - 1 do
    for q = p to m - 1 do
      let c = Mat.scale (1. /. nf) (Mat.mul_nt centered.(p) centered.(q)) in
      cov.(p).(q) <- c;
      if q > p then cov.(q).(p) <- Mat.transpose c
    done
  done;
  let factors =
    Array.init m (fun p -> Cholesky.decompose (Mat.add_scaled_identity eps cov.(p).(p)))
  in
  (* ⟨z_a, z_b⟩/N for coefficient bundles a, b. *)
  let inner a b =
    let acc = ref 0. in
    for p = 0 to m - 1 do
      for q = 0 to m - 1 do
        acc := !acc +. Vec.dot a.(p) (Mat.mul_vec cov.(p).(q) b.(q))
      done
    done;
    !acc
  in
  let rng = Rng.create seed in
  let coeffs = Array.init r (fun _ -> [||]) in
  let hs = Array.map (fun d -> Mat.create d r) dims in
  let iterations = Array.make r 0 in
  let variates = Mat.create n r in
  for i = 0 to r - 1 do
    let a = ref (Array.map (fun d -> Array.init d (fun _ -> Rng.gaussian rng)) dims) in
    let deflate b =
      for j = 0 to i - 1 do
        let cj = coeffs.(j) in
        let proj = inner b cj in
        Array.iteri (fun p bp -> Vec.axpy_in_place (-.proj) cj.(p) bp) b
      done
    in
    let normalize b =
      let norm = sqrt (Float.max (inner b b) 0.) in
      if norm > 1e-300 then Array.map (Vec.scale (1. /. norm)) b else b
    in
    deflate !a;
    a := normalize !a;
    let continue_ = ref true in
    while !continue_ && iterations.(i) < max_iter do
      iterations.(i) <- iterations.(i) + 1;
      let h =
        Array.init m (fun p ->
            let rhs = Array.make dims.(p) 0. in
            for q = 0 to m - 1 do
              Vec.axpy_in_place 1. (Mat.mul_vec cov.(p).(q) !a.(q)) rhs
            done;
            Cholesky.solve_vec factors.(p) rhs)
      in
      let next = Array.map (Vec.scale (1. /. float_of_int m)) h in
      deflate next;
      let next = normalize next in
      let delta = ref 0. in
      Array.iteri
        (fun p np ->
          let d = Vec.sub np !a.(p) in
          delta := !delta +. Vec.dot d d)
        next;
      if !delta < tol then continue_ := false;
      a := next
    done;
    coeffs.(i) <- !a;
    (* Materialize the variate z⁽ⁱ⁾ = Σ_q Xqᵀ a_q (unit norm by construction
       of [normalize] up to the 1/√N scale). *)
    let z = Array.make n 0. in
    Array.iteri (fun q aq -> Vec.axpy_in_place 1. (Mat.tmul_vec centered.(q) aq) z) !a;
    let zn = Vec.norm z in
    Mat.set_col variates i (if zn > 1e-300 then Vec.scale (1. /. zn) z else z);
    (* Final hₚ, rescaled to the constraint hᵀC̃pp h = 1 so every canonical
       variable has unit variance (leaving the raw regression scale makes
       downstream ridge learners collapse to the majority class). *)
    for p = 0 to m - 1 do
      let rhs = Array.make dims.(p) 0. in
      for q = 0 to m - 1 do
        Vec.axpy_in_place 1. (Mat.mul_vec cov.(p).(q) !a.(q)) rhs
      done;
      let h = Cholesky.solve_vec factors.(p) rhs in
      let variance = Vec.dot h (Mat.mul_vec cov.(p).(p) h) +. (eps *. Vec.dot h h) in
      let h = if variance > 1e-300 then Vec.scale (1. /. sqrt variance) h else h in
      Mat.set_col hs.(p) i h
    done
  done;
  { means; projections = hs; variates; iterations }

let r t = snd (Mat.dims t.variates)

let transform_view t p x = Mat.mul_tn t.projections.(p) (Mat.sub_col_vec x t.means.(p))

let transform t views =
  if Array.length views <> Array.length t.projections then
    invalid_arg "Cca_ls.transform: view count mismatch";
  Mat.vcat_list (Array.to_list (Array.mapi (fun p x -> transform_view t p x) views))

let common_variates t = Mat.copy t.variates
let iterations t = Array.copy t.iterations

module Online = struct
  type t = {
    beta : float;
    m : int;
    dims : int array;
    mutable n : int;
    means : Vec.t array;          (* running means *)
    ps : Mat.t array;             (* RLS inverse covariances *)
    hs : Vec.t array;             (* per-view filters *)
    mutable ex2 : float array;    (* running E[(hᵀx)²] per view, for scaling *)
  }

  let create ?(beta = 0.999) ?(delta = 10.) ~dims () =
    let m = Array.length dims in
    if m < 2 then invalid_arg "Cca_ls.Online.create: need at least two views";
    if beta <= 0. || beta > 1. then invalid_arg "Cca_ls.Online.create: beta in (0,1]";
    { beta;
      m;
      dims = Array.copy dims;
      n = 0;
      means = Array.map (fun d -> Vec.create d) dims;
      ps = Array.map (fun d -> Mat.scale delta (Mat.identity d)) dims;
      (* Deterministic non-zero init so the first predictions break symmetry. *)
      hs = Array.map (fun d -> Array.init d (fun i -> 1. /. sqrt (float_of_int (d + i)))) dims;
      ex2 = Array.make m 1. }

  let samples_seen t = t.n

  let step t xs =
    if Array.length xs <> t.m then invalid_arg "Cca_ls.Online.step: view count mismatch";
    Array.iteri
      (fun p x ->
        if Array.length x <> t.dims.(p) then
          invalid_arg "Cca_ls.Online.step: dimension mismatch")
      xs;
    t.n <- t.n + 1;
    let nf = float_of_int t.n in
    (* Running means, then centered copies of this sample. *)
    let centered =
      Array.mapi
        (fun p x ->
          let mean = t.means.(p) in
          Vec.axpy_in_place (1. /. nf) (Vec.sub x mean) mean;
          Vec.sub x mean)
        xs
    in
    (* Current variate estimate: average prediction over views, each scaled
       to unit variance so no view dominates. *)
    let z = ref 0. in
    Array.iteri
      (fun p c ->
        let pred = Vec.dot t.hs.(p) c in
        z := !z +. (pred /. (sqrt t.ex2.(p) +. 1e-12)))
      centered;
    let z = !z /. float_of_int t.m in
    (* One RLS step per view towards z. *)
    Array.iteri
      (fun p c ->
        let pmat = t.ps.(p) in
        let px = Mat.mul_vec pmat c in
        let gain_den = t.beta +. Vec.dot c px in
        let gain = Vec.scale (1. /. gain_den) px in
        let err = z -. Vec.dot t.hs.(p) c in
        Vec.axpy_in_place err gain t.hs.(p);
        (* P ← (P − g (Px)ᵀ)/β *)
        let d = t.dims.(p) in
        for a = 0 to d - 1 do
          for b = 0 to d - 1 do
            Mat.set pmat a b ((Mat.get pmat a b -. (gain.(a) *. px.(b))) /. t.beta)
          done
        done;
        let pred = Vec.dot t.hs.(p) c in
        t.ex2.(p) <- (t.beta *. t.ex2.(p)) +. ((1. -. t.beta) *. pred *. pred))
      centered;
    z

  let canonical_vectors t =
    Array.mapi
      (fun p h ->
        let scale = sqrt t.ex2.(p) +. 1e-12 in
        Vec.scale (1. /. scale) h)
      t.hs

  let transform_view t p x =
    if p < 0 || p >= t.m then invalid_arg "Cca_ls.Online.transform_view: bad view";
    let h = (canonical_vectors t).(p) in
    Mat.tmul_vec (Mat.sub_col_vec x t.means.(p)) h
end
