(** Wall-clock and allocation measurement for the complexity experiments
    (paper Figs. 7–10).

    The paper reports MATLAB [tic/toc] time and process memory; here a run is
    timed with [Unix]-free monotonic-ish wall clock ([Sys.time] counts CPU
    seconds, which on the single-core container equals wall time for our pure
    compute) and memory is the GC's view of allocation during the run plus the
    peak live heap, reported in megabytes. *)

type sample = {
  seconds : float;       (** CPU seconds spent in the thunk. *)
  allocated_mb : float;  (** Total bytes allocated during the thunk, in MB. *)
  live_mb : float;       (** Live heap after the thunk (majors forced), MB. *)
}

val run : (unit -> 'a) -> 'a * sample
(** Execute the thunk once, measuring it. *)

val time : (unit -> 'a) -> float
(** Seconds only. *)
