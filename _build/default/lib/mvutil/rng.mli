(** Deterministic pseudo-random number generation.

    A self-contained xoshiro256++ generator seeded through splitmix64, so that
    every experiment in the reproduction is exactly replayable from a single
    integer seed.  The interface mirrors the small subset of [Random] that the
    library needs, plus the distributions used by the dataset generators. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from any integer seed (including 0). *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a fresh generator from [t], advancing [t]; streams from
    the parent and the child are statistically independent. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : ?mu:float -> ?sigma:float -> t -> float
(** Normal deviate via the Marsaglia polar method. *)

val sign : t -> float
(** Uniformly [+1.] or [-1.]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0 .. n-1]. *)

val choose : t -> int -> int -> int array
(** [choose t k n] draws [k] distinct indices from [0 .. n-1], in random
    order.  Raises [Invalid_argument] if [k > n]. *)
