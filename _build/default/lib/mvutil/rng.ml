(* xoshiro256++ with splitmix64 seeding (Blackman & Vigna).  OCaml's native
   [int] is 63-bit, so all state lives in [int64]. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (int64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 63 bits keeps the draw exactly uniform. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (int64 t) 1 in
    let value = Int64.rem raw bound64 in
    if Int64.sub raw value > Int64.sub (Int64.sub Int64.max_int bound64) 1L then draw ()
    else Int64.to_int value
  in
  draw ()

let uniform t =
  (* 53 high bits -> double in [0,1). *)
  Int64.to_float (Int64.shift_right_logical (int64 t) 11) *. 0x1p-53

let float t bound = uniform t *. bound
let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = uniform t < p
let sign t = if bool t then 1. else -1.

let gaussian ?(mu = 0.) ?(sigma = 1.) t =
  (* Marsaglia polar method; the second deviate is discarded for simplicity
     and determinism of consumption order. *)
  let rec draw () =
    let u = (2. *. uniform t) -. 1. in
    let v = (2. *. uniform t) -. 1. in
    let s = (u *. u) +. (v *. v) in
    if s >= 1. || s = 0. then draw ()
    else u *. sqrt (-2. *. log s /. s)
  in
  mu +. (sigma *. draw ())

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a

let choose t k n =
  if k > n then invalid_arg "Rng.choose: k > n";
  let p = permutation t n in
  Array.sub p 0 k
