(** Small descriptive-statistics helpers used throughout the experiments. *)

val mean : float array -> float
(** Arithmetic mean; raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (denominator [n - 1]); 0 for arrays of length 1. *)

val std : float array -> float
(** Unbiased sample standard deviation. *)

val mean_std : float array -> float * float
(** Both at once. *)

val min : float array -> float
val max : float array -> float

val argmax : float array -> int
(** Index of the first maximal element. *)

val argmin : float array -> int

val median : float array -> float
(** Median (averaging the two middle elements for even lengths). *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient of two equal-length samples. *)

val dot : float array -> float array -> float
val l2_norm : float array -> float
val normalize_l2 : float array -> float array
(** Unit-L2 copy; returns the input copy unchanged when its norm is 0. *)
