type t = {
  title : string;
  columns : string array;
  mutable rows : string array list; (* reversed *)
}

let create ~title ~columns = { title; columns = Array.of_list columns; rows = [] }

let cell_of_float v =
  if Float.is_integer v && Float.abs v < 1e9 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 1000. || (Float.abs v < 0.01 && v <> 0.) then Printf.sprintf "%.3e" v
  else Printf.sprintf "%.4g" v

let add_text_row t label cells =
  let row = Array.of_list (label :: cells) in
  if Array.length row <> Array.length t.columns then
    invalid_arg "Tableau.add_row: cell count does not match columns";
  t.rows <- row :: t.rows

let add_row t label values = add_text_row t label (List.map cell_of_float values)

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.columns in
  let widths = Array.map String.length t.columns in
  let widen row = Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row in
  List.iter widen rows;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let pad i s =
    let w = widths.(i) in
    if i = 0 then Printf.sprintf "%-*s" w s else Printf.sprintf "%*s" w s
  in
  let emit_row row =
    for i = 0 to ncols - 1 do
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (pad i row.(i))
    done;
    Buffer.add_char buf '\n'
  in
  emit_row t.columns;
  let rule = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  Buffer.add_string buf (rule ^ "\n");
  List.iter emit_row rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let series ~title ~xlabel ~x curves =
  let t = create ~title ~columns:(xlabel :: List.map fst curves) in
  Array.iteri
    (fun i xi ->
      let values = List.map (fun (_, ys) -> ys.(i)) curves in
      add_row t (cell_of_float xi) values)
    x;
  render t

let pm mean std = Printf.sprintf "%.2f±%.2f" mean std
