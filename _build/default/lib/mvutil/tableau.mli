(** Plain-text table rendering for the experiment harness.

    The benchmark executable reproduces the paper's tables and figure series
    as aligned text; this module owns all of that formatting so experiments
    only deal in rows of floats. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers.  The first column is treated
    as the row label. *)

val add_row : t -> string -> float list -> unit
(** [add_row t label values] appends one row; [values] must match the number
    of non-label columns. *)

val add_text_row : t -> string -> string list -> unit
(** Row with preformatted cells (e.g. ["62.4±1.3"]). *)

val render : t -> string
(** Render with aligned columns, caption first. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val series :
  title:string -> xlabel:string -> x:float array ->
  (string * float array) list -> string
(** [series ~title ~xlabel ~x curves] renders a figure-style table: one row
    per [x] value, one column per named curve — the textual equivalent of the
    paper's line plots. *)

val pm : float -> float -> string
(** [pm mean std] formats ["mean±std"] with two decimals, as in the paper. *)
