let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty array")

let mean a =
  check_nonempty "Stats.mean" a;
  Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let variance a =
  check_nonempty "Stats.variance" a;
  let n = Array.length a in
  if n = 1 then 0.
  else begin
    let m = mean a in
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. ((x -. m) ** 2.)) a;
    !acc /. float_of_int (n - 1)
  end

let std a = sqrt (variance a)
let mean_std a = (mean a, std a)

let min a =
  check_nonempty "Stats.min" a;
  Array.fold_left Stdlib.min a.(0) a

let max a =
  check_nonempty "Stats.max" a;
  Array.fold_left Stdlib.max a.(0) a

let arg_best better a =
  check_nonempty "Stats.argmax" a;
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if better a.(i) a.(!best) then best := i
  done;
  !best

let argmax a = arg_best ( > ) a
let argmin a = arg_best ( < ) a

let median a =
  check_nonempty "Stats.median" a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n mod 2 = 1 then sorted.(n / 2)
  else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Stats.dot: length mismatch";
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let l2_norm a = sqrt (dot a a)

let normalize_l2 a =
  let n = l2_norm a in
  if n = 0. then Array.copy a else Array.map (fun x -> x /. n) a

let pearson a b =
  if Array.length a <> Array.length b then invalid_arg "Stats.pearson: length mismatch";
  check_nonempty "Stats.pearson" a;
  let ma = mean a and mb = mean b in
  let num = ref 0. and da = ref 0. and db = ref 0. in
  for i = 0 to Array.length a - 1 do
    let xa = a.(i) -. ma and xb = b.(i) -. mb in
    num := !num +. (xa *. xb);
    da := !da +. (xa *. xa);
    db := !db +. (xb *. xb)
  done;
  if !da = 0. || !db = 0. then 0. else !num /. sqrt (!da *. !db)
