type sample = { seconds : float; allocated_mb : float; live_mb : float }

let mb_of_words w = w *. float_of_int (Sys.word_size / 8) /. (1024. *. 1024.)

let run thunk =
  Gc.full_major ();
  let alloc0 = Gc.allocated_bytes () in
  let t0 = Sys.time () in
  let result = thunk () in
  let seconds = Sys.time () -. t0 in
  let allocated = Gc.allocated_bytes () -. alloc0 in
  Gc.full_major ();
  let live = float_of_int (Gc.stat ()).Gc.live_words in
  (result, { seconds; allocated_mb = allocated /. (1024. *. 1024.); live_mb = mb_of_words live })

let time thunk =
  let _, s = run thunk in
  s.seconds
