lib/mvutil/rng.ml: Array Int64
