lib/mvutil/stats.ml: Array Stdlib
