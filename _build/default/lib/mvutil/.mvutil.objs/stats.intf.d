lib/mvutil/stats.mli:
