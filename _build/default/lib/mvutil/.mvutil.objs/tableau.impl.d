lib/mvutil/tableau.ml: Array Buffer Float List Printf String
