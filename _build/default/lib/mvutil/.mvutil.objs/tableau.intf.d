lib/mvutil/tableau.mli:
