lib/mvutil/measure.ml: Gc Sys
