lib/mvutil/measure.mli:
