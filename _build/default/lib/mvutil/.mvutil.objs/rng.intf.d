lib/mvutil/rng.mli:
