(** Hyper-parameter selection on a held-out validation split.

    The paper tunes everything — the subspace dimension, the regularization
    ε over [{10ⁱ}], kNN's k over [{1..10}] — by accuracy on 20% of the test
    (or unlabeled) data.  This module is the generic grid search those
    protocols share. *)

val best : ('a -> float) -> 'a list -> 'a * float
(** [best score candidates] returns the candidate with the highest score
    (first wins ties).  Raises [Invalid_argument] on an empty list. *)

val best_indexed : (int -> float) -> int -> int * float
(** [best_indexed score n] over indices [0 .. n−1]. *)

val log_grid : ?base:float -> int -> int -> float list
(** [log_grid lo hi] is [{baseⁱ | i = lo..hi}] (default base 10) — the
    paper's ε grid is [log_grid (−5) 4]. *)
