let best score = function
  | [] -> invalid_arg "Validate.best: no candidates"
  | first :: rest ->
    List.fold_left
      (fun (arg, s) candidate ->
        let s' = score candidate in
        if s' > s then (candidate, s') else (arg, s))
      (first, score first) rest

let best_indexed score n =
  if n < 1 then invalid_arg "Validate.best_indexed: n must be >= 1";
  best score (List.init n (fun i -> i))

let log_grid ?(base = 10.) lo hi =
  if hi < lo then invalid_arg "Validate.log_grid: empty range";
  List.init (hi - lo + 1) (fun i -> base ** float_of_int (lo + i))
