(** Classification evaluation. The paper's sole criterion is accuracy,
    reported as mean±std over five random labeled/unlabeled choices. *)

val accuracy : int array -> int array -> float
(** [accuracy predicted truth] in [0, 1]. *)

val confusion : n_classes:int -> int array -> int array -> int array array
(** [confusion ~n_classes predicted truth].(truth).(predicted). *)

val error_rate : int array -> int array -> float

val over_runs : (int -> float) -> int -> float * float
(** [over_runs f n_runs] evaluates [f seed_index] for indices [0..n−1] and
    returns (mean, std) — the paper's five-run protocol. *)
