(** Regularized least squares — the paper's base learner for the SecStr and
    Ads experiments (Sec. 5.1):
    [argmin_w (1/Nl) Σ (wᵀxₙ − yₙ)² + γ‖w‖²], with a constant-1 feature
    appended for the bias and γ = 10⁻² by default, following Foster et al.
    Multi-class problems are handled one-vs-rest with ±1 targets. *)

type t

val fit : ?gamma:float -> Mat.t -> int array -> t
(** [fit x labels] with instances as columns of [x] (no bias row — it is
    appended internally).  Labels in [0 .. C−1]. *)

val n_classes : t -> int

val scores : t -> Mat.t -> Mat.t
(** [scores t x] is the [C × N] matrix of one-vs-rest decision values. *)

val predict : t -> Mat.t -> int array
(** Argmax over class scores. *)

val predict_scores : Mat.t -> int array
(** Argmax over an externally averaged score matrix — used by the paper's
    CCA (AVG) strategy, which averages predicted scores over view pairs. *)
