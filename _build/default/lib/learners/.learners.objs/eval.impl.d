lib/learners/eval.ml: Array Stats
