lib/learners/rls.ml: Array Cholesky Mat Preprocess
