lib/learners/knn.ml: Array Float Mat Vec
