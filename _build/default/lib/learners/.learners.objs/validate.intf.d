lib/learners/validate.mli:
