lib/learners/validate.ml: List
