lib/learners/knn.mli: Mat
