lib/learners/eval.mli:
