lib/learners/rls.mli: Mat
