let accuracy predicted truth =
  let n = Array.length truth in
  if Array.length predicted <> n then invalid_arg "Eval.accuracy: length mismatch";
  if n = 0 then invalid_arg "Eval.accuracy: empty";
  let correct = ref 0 in
  for i = 0 to n - 1 do
    if predicted.(i) = truth.(i) then incr correct
  done;
  float_of_int !correct /. float_of_int n

let error_rate predicted truth = 1. -. accuracy predicted truth

let confusion ~n_classes predicted truth =
  let n = Array.length truth in
  if Array.length predicted <> n then invalid_arg "Eval.confusion: length mismatch";
  let table = Array.make_matrix n_classes n_classes 0 in
  for i = 0 to n - 1 do
    table.(truth.(i)).(predicted.(i)) <- table.(truth.(i)).(predicted.(i)) + 1
  done;
  table

let over_runs f n_runs =
  if n_runs < 1 then invalid_arg "Eval.over_runs: need at least one run";
  let results = Array.init n_runs f in
  Stats.mean_std results
