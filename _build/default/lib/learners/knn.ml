type t = { k : int; train : Mat.t; labels : int array; n_classes : int }

let default_k_candidates = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let fit ~k train labels =
  let _, n = Mat.dims train in
  if Array.length labels <> n then invalid_arg "Knn.fit: label count mismatch";
  if k < 1 then invalid_arg "Knn.fit: k must be >= 1";
  if n = 0 then invalid_arg "Knn.fit: no instances";
  { k = min k n;
    train = Mat.copy train;
    labels = Array.copy labels;
    n_classes = 1 + Array.fold_left max 0 labels }

(* Indices of the k smallest distances, nearest first: selection over a
   bounded heap-free array since k ≤ 10 in practice. *)
let k_nearest distances k =
  let n = Array.length distances in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare distances.(i) distances.(j)) order;
  Array.sub order 0 (min k n)

let votes_one t dist_to =
  let counts = Array.make t.n_classes 0. in
  let nearest = k_nearest dist_to t.k in
  Array.iteri
    (fun rank i ->
      (* Unit vote plus a tiny rank bonus so argmax tie-breaks towards the
         nearest neighbour's class. *)
      counts.(t.labels.(i)) <-
        counts.(t.labels.(i)) +. 1. +. (1e-6 /. float_of_int (rank + 1)))
    nearest;
  counts

let distances_to_train t x =
  (* Squared distances via the Gram expansion: ‖a−b‖² = ‖a‖² + ‖b‖² − 2aᵀb. *)
  let _, ntr = Mat.dims t.train in
  let _, nte = Mat.dims x in
  let cross = Mat.mul_tn t.train x in
  let tr_norm = Array.init ntr (fun i -> Vec.dot (Mat.col t.train i) (Mat.col t.train i)) in
  let te_norm = Array.init nte (fun j -> Vec.dot (Mat.col x j) (Mat.col x j)) in
  Mat.init ntr nte (fun i j ->
      Float.max 0. (tr_norm.(i) +. te_norm.(j) -. (2. *. Mat.get cross i j)))

let votes t x =
  let d, _ = Mat.dims t.train in
  let dx, n = Mat.dims x in
  if d <> dx then invalid_arg "Knn.votes: dimension mismatch";
  let dist = distances_to_train t x in
  let out = Mat.create t.n_classes n in
  for j = 0 to n - 1 do
    let counts = votes_one t (Mat.col dist j) in
    Mat.set_col out j counts
  done;
  out

let votes_of_distances ~k ~n_classes labels dist =
  let ntr, nq = Mat.dims dist in
  if Array.length labels <> ntr then invalid_arg "Knn.votes_of_distances: label mismatch";
  let out = Mat.create n_classes nq in
  let counts = Array.make n_classes 0. in
  for j = 0 to nq - 1 do
    Array.fill counts 0 n_classes 0.;
    let nearest = k_nearest (Mat.col dist j) (min k ntr) in
    Array.iteri
      (fun rank i ->
        counts.(labels.(i)) <-
          counts.(labels.(i)) +. 1. +. (1e-6 /. float_of_int (rank + 1)))
      nearest;
    Mat.set_col out j (Array.copy counts)
  done;
  out

let predict_votes v =
  let c, n = Mat.dims v in
  Array.init n (fun j ->
      let best = ref 0 in
      for i = 1 to c - 1 do
        if Mat.get v i j > Mat.get v !best j then best := i
      done;
      !best)

let predict t x = predict_votes (votes t x)
