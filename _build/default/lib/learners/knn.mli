(** k-nearest-neighbour classifier — the paper's base learner for the web
    image annotation experiments (Sec. 5.1.3), with k validated over
    [{1, …, 10}].  Ties are broken towards the nearest neighbour's class. *)

type t

val fit : k:int -> Mat.t -> int array -> t
(** Instances as columns. *)

val predict : t -> Mat.t -> int array
(** Majority vote among the [k] nearest training columns (Euclidean). *)

val votes : t -> Mat.t -> Mat.t
(** [C × N] vote-count matrix — used by the majority-voting combination of
    the paper's CCA (AVG) strategy under kNN. *)

val predict_votes : Mat.t -> int array
(** Argmax over (possibly summed) vote matrices. *)

val votes_of_distances : k:int -> n_classes:int -> int array -> Mat.t -> Mat.t
(** [votes_of_distances ~k ~n_classes labels dist] votes from a precomputed
    [N_train × N_query] distance matrix — used by the kernel experiments,
    where distances come from Gram matrices rather than raw features. *)

val default_k_candidates : int list
(** [1 .. 10], the paper's candidate set. *)
