type t = { weights : Mat.t (* C × (d+1) *); n_classes : int }

let fit ?(gamma = 1e-2) x labels =
  let _, n = Mat.dims x in
  if Array.length labels <> n then invalid_arg "Rls.fit: label count mismatch";
  if n = 0 then invalid_arg "Rls.fit: no instances";
  let n_classes = 1 + Array.fold_left max 0 labels in
  let xb = Preprocess.append_bias x in
  let nf = float_of_int n in
  (* Normal equations (X Xᵀ/N + γI) w_c = X y_c / N with ±1 one-vs-rest
     targets; one factorization shared across classes. *)
  let a = Mat.add_scaled_identity gamma (Mat.scale (1. /. nf) (Mat.gram xb)) in
  let y = Mat.init n n_classes (fun i c -> if labels.(i) = c then 1. else -1.) in
  let rhs = Mat.scale (1. /. nf) (Mat.mul xb y) in
  let w = Cholesky.solve_system a rhs in
  { weights = Mat.transpose w; n_classes }

let n_classes t = t.n_classes

let scores t x = Mat.mul t.weights (Preprocess.append_bias x)

let predict_scores s =
  let c, n = Mat.dims s in
  Array.init n (fun j ->
      let best = ref 0 in
      for i = 1 to c - 1 do
        if Mat.get s i j > Mat.get s !best j then best := i
      done;
      !best)

let predict t x = predict_scores (scores t x)
