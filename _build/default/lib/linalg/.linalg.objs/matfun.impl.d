lib/linalg/matfun.ml: Array Eigen Float Mat Svd
