lib/linalg/eigen.ml: Array Float Mat Vec
