(** Matrix functions on symmetric positive-(semi)definite inputs.

    The central one for the paper is the inverse square root: TCCA whitens the
    covariance tensor with [C̃pp^{-1/2}] (Eq. 4.9), computed spectrally as
    [V diag(λᵢ^{-1/2}) Vᵀ]. *)

val sqrt_psd : Mat.t -> Mat.t
(** Symmetric square root; negative eigenvalues from roundoff are clamped
    to 0. *)

val inv_sqrt_psd : ?floor:float -> Mat.t -> Mat.t
(** Symmetric inverse square root.  Eigenvalues below [floor] (default
    [1e-12] × λ_max) are treated as [floor], making the result a regularized
    pseudo-inverse square root for rank-deficient inputs. *)

val inv_psd : ?floor:float -> Mat.t -> Mat.t
(** Symmetric (pseudo-)inverse through the spectrum. *)

val pinv : ?tol:float -> Mat.t -> Mat.t
(** Moore–Penrose pseudo-inverse of any rectangular matrix via SVD;
    singular values below [tol·σ₀] (default [1e-12]) are dropped. *)

val apply_spectral : (float -> float) -> Mat.t -> Mat.t
(** [apply_spectral f a = V diag(f λᵢ) Vᵀ] for symmetric [a]. *)
