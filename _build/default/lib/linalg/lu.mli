(** LU factorization with partial pivoting, for general square systems.

    Used where SPD structure is not guaranteed (e.g. solving against Khatri–Rao
    Gram matrices inside CP-ALS when factors become ill-conditioned). *)

type t
(** Packed factorization [P A = L U]. *)

exception Singular
(** Raised when a pivot is exactly zero. *)

val decompose : Mat.t -> t
(** Factorize a square matrix.  Raises [Invalid_argument] if not square,
    [Singular] if rank-deficient. *)

val solve_vec : t -> Vec.t -> Vec.t
(** Solve [A x = b]. *)

val solve : t -> Mat.t -> Mat.t
(** Solve [A X = B] column-wise. *)

val det : t -> float
val inverse : t -> Mat.t

val solve_system : Mat.t -> Mat.t -> Mat.t
(** One-shot [decompose]+[solve]. *)
