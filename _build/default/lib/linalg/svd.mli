(** Thin singular value decomposition by the one-sided Jacobi method.

    CCA reduces to the SVD of the whitened cross-covariance matrix
    [C̃₁₁^{-1/2} C₁₂ C̃₂₂^{-1/2}] (and KCCA to its kernel analogue); one-sided
    Jacobi is simple, backward-stable and accurate for small singular values,
    which is exactly what picking the top canonical directions needs. *)

type t = {
  u : Mat.t;      (** [m × k] left singular vectors (columns), [k = min m n]. *)
  sigma : Vec.t;  (** Singular values in descending order, length [k]. *)
  v : Mat.t;      (** [n × k] right singular vectors (columns). *)
}

val decompose : ?max_sweeps:int -> ?eps:float -> Mat.t -> t
(** Thin SVD of any rectangular matrix. *)

val truncated : t -> int -> Mat.t * Vec.t * Mat.t
(** [truncated svd r] keeps the top [r] triplets: [(u_r, sigma_r, v_r)]. *)

val reconstruct : t -> Mat.t
(** [U diag(σ) Vᵀ] — for testing. *)

val nuclear_norm : t -> float
val rank : ?tol:float -> t -> int
(** Numerical rank: count of [σᵢ > tol · σ₀] (default [tol = 1e-10]). *)
