type t = { lu : Mat.t; perm : int array; sign : float }

exception Singular

let decompose a =
  let n, m = Mat.dims a in
  if n <> m then invalid_arg "Lu.decompose: not square";
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Partial pivoting: the largest |entry| in column k, rows k..n-1. *)
    let pivot_row = ref k in
    let pivot_val = ref (Float.abs (Mat.get lu k k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (Mat.get lu i k) in
      if v > !pivot_val then begin
        pivot_val := v;
        pivot_row := i
      end
    done;
    if !pivot_val = 0. then raise Singular;
    if !pivot_row <> k then begin
      let p = !pivot_row in
      for j = 0 to n - 1 do
        let tmp = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu p j);
        Mat.set lu p j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(p);
      perm.(p) <- tmp;
      sign := -. !sign
    end;
    let pivot = Mat.get lu k k in
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /. pivot in
      Mat.set lu i k factor;
      if factor <> 0. then
        for j = k + 1 to n - 1 do
          Mat.set lu i j (Mat.get lu i j -. (factor *. Mat.get lu k j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let solve_vec { lu; perm; _ } b =
  let n, _ = Mat.dims lu in
  if Array.length b <> n then invalid_arg "Lu.solve_vec: dimension mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* Forward substitution with unit-lower L. *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* Back substitution with U. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Mat.get lu i i
  done;
  x

let solve f b =
  let _, ncols = Mat.dims b in
  let n, _ = Mat.dims f.lu in
  let x = Mat.create n ncols in
  for j = 0 to ncols - 1 do
    Mat.set_col x j (solve_vec f (Mat.col b j))
  done;
  x

let det { lu; sign; _ } =
  let n, _ = Mat.dims lu in
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. Mat.get lu i i
  done;
  !d

let inverse f =
  let n, _ = Mat.dims f.lu in
  solve f (Mat.identity n)

let solve_system a b = solve (decompose a) b
