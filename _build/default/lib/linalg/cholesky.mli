(** Cholesky factorization of symmetric positive-definite matrices.

    KTCCA (paper Sec. 4.4) rests on the unique factorization
    [K²pp + εKpp = Lᵀp Lp]; this module provides the lower factor, triangular
    solves, SPD inverses and log-determinants.  Note the paper writes the
    factorization as [LᵀL] with [L] *upper*; we return the conventional lower
    [G] with [A = G Gᵀ], so the paper's [Lp] is our [Gᵀ]. *)

type t
(** The lower factor [G] with [A = G Gᵀ]. *)

exception Not_positive_definite

val decompose : Mat.t -> t
(** Raises [Invalid_argument] on a non-square input,
    [Not_positive_definite] when a pivot is ≤ 0 (up to roundoff). *)

val lower : t -> Mat.t
(** The explicit lower-triangular factor [G]. *)

val solve_vec : t -> Vec.t -> Vec.t
(** Solve [A x = b] via two triangular solves. *)

val solve : t -> Mat.t -> Mat.t
val inverse : t -> Mat.t

val solve_lower_vec : t -> Vec.t -> Vec.t
(** Solve [G y = b] (forward substitution only). *)

val solve_lower_transpose : t -> Mat.t -> Mat.t
(** Solve [Gᵀ Y = B]. *)

val inverse_lower : t -> Mat.t
(** [G⁻¹], explicitly. *)

val log_det : t -> float
(** [log det A]. *)

val solve_system : Mat.t -> Mat.t -> Mat.t
(** One-shot SPD solve. *)
