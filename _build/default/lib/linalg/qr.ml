(* Householder QR: the factored form keeps the reflectors in the lower part of
   [a] plus the [beta] coefficients, in the classic LAPACK layout. *)

type t = { a : Mat.t; beta : float array; m : int; n : int }

let decompose a0 =
  let m, n = Mat.dims a0 in
  if m < n then invalid_arg "Qr.decompose: requires rows >= cols";
  let a = Mat.copy a0 in
  let beta = Array.make n 0. in
  for k = 0 to n - 1 do
    (* Householder vector for column k, rows k..m-1. *)
    let norm = ref 0. in
    for i = k to m - 1 do
      let v = Mat.get a i k in
      norm := !norm +. (v *. v)
    done;
    let norm = sqrt !norm in
    if norm > 0. then begin
      let akk = Mat.get a k k in
      let alpha = if akk >= 0. then -.norm else norm in
      let v0 = akk -. alpha in
      (* v = (v0, a_{k+1..m-1,k}); beta = 2 / vᵀv, stored normalized by v0 so
         the implicit leading entry is 1. *)
      let vtv = ref (v0 *. v0) in
      for i = k + 1 to m - 1 do
        let v = Mat.get a i k in
        vtv := !vtv +. (v *. v)
      done;
      if !vtv > 0. && v0 <> 0. then begin
        for i = k + 1 to m - 1 do
          Mat.set a i k (Mat.get a i k /. v0)
        done;
        beta.(k) <- 2. *. v0 *. v0 /. !vtv;
        Mat.set a k k alpha;
        (* Apply the reflector to the trailing columns. *)
        for j = k + 1 to n - 1 do
          let dot = ref (Mat.get a k j) in
          for i = k + 1 to m - 1 do
            dot := !dot +. (Mat.get a i k *. Mat.get a i j)
          done;
          let s = beta.(k) *. !dot in
          Mat.set a k j (Mat.get a k j -. s);
          for i = k + 1 to m - 1 do
            Mat.set a i j (Mat.get a i j -. (s *. Mat.get a i k))
          done
        done
      end
    end
  done;
  { a; beta; m; n }

(* Apply Qᵀ to a length-m vector in place. *)
let apply_qt { a; beta; m; n } x =
  for k = 0 to n - 1 do
    if beta.(k) <> 0. then begin
      let dot = ref x.(k) in
      for i = k + 1 to m - 1 do
        dot := !dot +. (Mat.get a i k *. x.(i))
      done;
      let s = beta.(k) *. !dot in
      x.(k) <- x.(k) -. s;
      for i = k + 1 to m - 1 do
        x.(i) <- x.(i) -. (s *. Mat.get a i k)
      done
    end
  done

(* Apply Q to a length-m vector in place (reflectors in reverse order). *)
let apply_q { a; beta; m; n } x =
  for k = n - 1 downto 0 do
    if beta.(k) <> 0. then begin
      let dot = ref x.(k) in
      for i = k + 1 to m - 1 do
        dot := !dot +. (Mat.get a i k *. x.(i))
      done;
      let s = beta.(k) *. !dot in
      x.(k) <- x.(k) -. s;
      for i = k + 1 to m - 1 do
        x.(i) <- x.(i) -. (s *. Mat.get a i k)
      done
    end
  done

let q_thin f =
  let q = Mat.create f.m f.n in
  for j = 0 to f.n - 1 do
    let e = Array.make f.m 0. in
    e.(j) <- 1.;
    apply_q f e;
    Mat.set_col q j e
  done;
  q

let r f = Mat.init f.n f.n (fun i j -> if j >= i then Mat.get f.a i j else 0.)

let back_substitute f y =
  let x = Array.make f.n 0. in
  for i = f.n - 1 downto 0 do
    let rii = Mat.get f.a i i in
    if Float.abs rii < 1e-300 then failwith "Qr.solve_ls: singular R";
    let acc = ref y.(i) in
    for j = i + 1 to f.n - 1 do
      acc := !acc -. (Mat.get f.a i j *. x.(j))
    done;
    x.(i) <- !acc /. rii
  done;
  x

let solve_ls f b =
  if Array.length b <> f.m then invalid_arg "Qr.solve_ls: dimension mismatch";
  let y = Array.copy b in
  apply_qt f y;
  back_substitute f y

let least_squares a b =
  let f = decompose a in
  let _, ncols = Mat.dims b in
  let x = Mat.create f.n ncols in
  for j = 0 to ncols - 1 do
    Mat.set_col x j (solve_ls f (Mat.col b j))
  done;
  x

let orthonormalize a = q_thin (decompose a)
