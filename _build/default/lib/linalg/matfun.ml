let apply_spectral f a =
  let { Eigen.values; vectors } = Eigen.decompose a in
  let n, k = Mat.dims vectors in
  let scaled = Mat.init n k (fun i j -> Mat.get vectors i j *. f values.(j)) in
  Mat.mul_nt scaled vectors

let sqrt_psd a = apply_spectral (fun l -> sqrt (Float.max l 0.)) a

let inv_sqrt_psd ?floor a =
  let { Eigen.values; vectors } = Eigen.decompose a in
  let lmax = Float.max values.(0) 0. in
  let fl = match floor with Some f -> f | None -> 1e-12 *. Float.max lmax 1. in
  let n, k = Mat.dims vectors in
  let scaled =
    Mat.init n k (fun i j -> Mat.get vectors i j /. sqrt (Float.max values.(j) fl))
  in
  Mat.mul_nt scaled vectors

let inv_psd ?floor a =
  let { Eigen.values; vectors } = Eigen.decompose a in
  let lmax = Float.max values.(0) 0. in
  let fl = match floor with Some f -> f | None -> 1e-12 *. Float.max lmax 1. in
  let n, k = Mat.dims vectors in
  let scaled = Mat.init n k (fun i j -> Mat.get vectors i j /. Float.max values.(j) fl) in
  Mat.mul_nt scaled vectors

let pinv ?(tol = 1e-12) a =
  let { Svd.u; sigma; v } = Svd.decompose a in
  let s0 = if Array.length sigma = 0 then 0. else sigma.(0) in
  let n, k = Mat.dims v in
  let scaled =
    Mat.init n k (fun i j ->
        if sigma.(j) > tol *. s0 && sigma.(j) > 0. then Mat.get v i j /. sigma.(j) else 0.)
  in
  Mat.mul_nt scaled u
