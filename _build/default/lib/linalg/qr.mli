(** Householder QR factorization.

    Used for least-squares solves (CCA-LS deflation steps) and for
    re-orthonormalizing iterate blocks in the spectral-embedding baseline. *)

type t

val decompose : Mat.t -> t
(** Factor an [m × n] matrix with [m ≥ n] as [A = Q R]. *)

val q_thin : t -> Mat.t
(** The thin [m × n] orthonormal factor. *)

val r : t -> Mat.t
(** The [n × n] upper-triangular factor. *)

val solve_ls : t -> Vec.t -> Vec.t
(** Minimum-residual solution of [A x ≈ b].  Raises [Failure] if [R] is
    numerically singular. *)

val least_squares : Mat.t -> Mat.t -> Mat.t
(** [least_squares a b] solves [min ‖A X − B‖_F] column-wise. *)

val orthonormalize : Mat.t -> Mat.t
(** Orthonormal basis for the column space (thin Q). *)
