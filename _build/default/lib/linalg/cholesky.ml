type t = { g : Mat.t } (* lower triangular, A = G Gᵀ *)

exception Not_positive_definite

let decompose a =
  let n, m = Mat.dims a in
  if n <> m then invalid_arg "Cholesky.decompose: not square";
  let g = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Mat.get g i k *. Mat.get g j k)
      done;
      if i = j then begin
        if !acc <= 0. then raise Not_positive_definite;
        Mat.set g i i (sqrt !acc)
      end
      else Mat.set g i j (!acc /. Mat.get g j j)
    done
  done;
  { g }

let lower { g } = Mat.copy g

let forward g b =
  let n, _ = Mat.dims g in
  let y = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for k = 0 to i - 1 do
      acc := !acc -. (Mat.get g i k *. y.(k))
    done;
    y.(i) <- !acc /. Mat.get g i i
  done;
  y

let backward g y =
  (* solves Gᵀ x = y *)
  let n, _ = Mat.dims g in
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for k = i + 1 to n - 1 do
      acc := !acc -. (Mat.get g k i *. x.(k))
    done;
    x.(i) <- !acc /. Mat.get g i i
  done;
  x

let solve_vec { g } b =
  let n, _ = Mat.dims g in
  if Array.length b <> n then invalid_arg "Cholesky.solve_vec: dimension mismatch";
  backward g (forward g b)

let solve f b =
  let _, ncols = Mat.dims b in
  let n, _ = Mat.dims f.g in
  let x = Mat.create n ncols in
  for j = 0 to ncols - 1 do
    Mat.set_col x j (solve_vec f (Mat.col b j))
  done;
  x

let inverse f =
  let n, _ = Mat.dims f.g in
  solve f (Mat.identity n)

let solve_lower_vec { g } b = forward g b

let solve_lower_transpose f b =
  let _, ncols = Mat.dims b in
  let n, _ = Mat.dims f.g in
  let x = Mat.create n ncols in
  for j = 0 to ncols - 1 do
    Mat.set_col x j (backward f.g (Mat.col b j))
  done;
  x

let inverse_lower f =
  let n, _ = Mat.dims f.g in
  let inv = Mat.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0. in
    e.(j) <- 1.;
    Mat.set_col inv j (forward f.g e)
  done;
  inv

let log_det { g } =
  let n, _ = Mat.dims g in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. log (Mat.get g i i)
  done;
  2. *. !acc

let solve_system a b = solve (decompose a) b
