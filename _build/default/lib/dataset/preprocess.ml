type centering = Vec.t array

let fit_center views = Array.map Mat.row_means views

let apply_center means views =
  if Array.length means <> Array.length views then
    invalid_arg "Preprocess.apply_center: view count mismatch";
  Array.map2 Mat.sub_col_vec views means

let center_views views =
  let means = fit_center views in
  (apply_center means views, means)

let means c = c

let normalize_view_scale v =
  let _, n = Mat.dims v in
  let total = ref 0. in
  for j = 0 to n - 1 do
    total := !total +. Vec.norm (Mat.col v j)
  done;
  let avg = !total /. float_of_int (max n 1) in
  if avg > 0. then Mat.scale (1. /. avg) v else Mat.copy v

let unit_columns v =
  let d, n = Mat.dims v in
  let out = Mat.create d n in
  for j = 0 to n - 1 do
    Mat.set_col out j (Vec.normalize (Mat.col v j))
  done;
  out

let append_bias v =
  let _, n = Mat.dims v in
  Mat.vcat v (Mat.make 1 n 1.)
