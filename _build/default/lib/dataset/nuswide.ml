type scale = Quick | Paper

let name = "nuswide-sim"
let bow_view = 0

let config = function
  | Paper ->
    { Synth.default with
      dims = [| 100; 72; 64 |];
      n_classes = 10;
      shared_topics = 30;
      topics_per_class = 3;
      topic_gain = 1.2;
      active_prob = 0.65;
      background_prob = 0.06;
      features_per_topic = 3;
      pair_confounders = 8;
      confounder_strength = 1.0;
      confounder_prob = 0.4;
      confounder_features = 8;
      clutter_topics = 3;
      clutter_strength = 0.8;
      clutter_prob = 0.25;
      noise = 0.5;
      binary = false }
  | Quick ->
    { Synth.default with
      dims = [| 50; 36; 32 |];
      n_classes = 10;
      shared_topics = 20;
      topics_per_class = 2;
      topic_gain = 1.2;
      active_prob = 0.65;
      background_prob = 0.06;
      features_per_topic = 3;
      pair_confounders = 6;
      confounder_strength = 1.0;
      confounder_prob = 0.4;
      confounder_features = 6;
      clutter_topics = 2;
      clutter_strength = 0.8;
      clutter_prob = 0.25;
      noise = 0.5;
      binary = false }

let world ?(seed = 3003) scale = Synth.make_world ~seed (config scale)
