(** UCI Internet-Advertisements-like benchmark (paper Sec. 5.1.2).

    The original has 3 279 instances with sparse binary term-presence
    features over three URL/caption views (588 / 495 / 472 dims) and a
    skewed ad/non-ad label (≈14% positive).  The simulation keeps the
    binary sparse views and skewed prior; [Paper] scale shrinks dimensions
    to 120/100/90 so the dense covariance tensor fits this container (see
    DESIGN.md substitution 2), [Quick] to 48/40/36. *)

type scale = Quick | Paper

val config : scale -> Synth.config
val world : ?seed:int -> scale -> Synth.world
val name : string
