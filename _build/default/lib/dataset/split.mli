(** Index-level splitting utilities implementing the paper's protocols:
    random labeled subsets, train/test partition, and the 20%-of-test
    validation carve-out used for all hyper-parameter choices (Sec. 5). *)

val partition : Rng.t -> int -> float -> int array * int array
(** [partition rng n fraction] shuffles [0..n−1] and returns
    [(first, rest)] where [first] holds [round (fraction · n)] indices. *)

val labeled_unlabeled : Rng.t -> n:int -> labeled:int -> int array * int array
(** [labeled] random indices vs the rest — the SecStr/Ads protocol
    ("randomly select 100 instances as labeled samples"). *)

val labeled_per_class : Rng.t -> int array -> per_class:int -> int array * int array
(** [labeled_per_class rng labels ~per_class] picks exactly [per_class]
    random instances of each class (the NUS-WIDE protocol); returns
    [(labeled, rest)].  Raises [Invalid_argument] if a class has fewer
    instances than requested. *)

val validation_carveout : Rng.t -> int array -> float -> int array * int array
(** [validation_carveout rng pool fraction] splits an index pool into
    [(validation, evaluation)] — the paper's "twenty percent of the test
    data are used for validation". *)
