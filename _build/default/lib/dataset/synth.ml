type config = {
  dims : int array;
  n_classes : int;
  class_priors : float array option;
  shared_topics : int;
  topics_per_class : int;
  pair_confounders : int;
  confounder_strength : float;
  confounder_prob : float;
  confounder_features : int;
  clutter_topics : int;
  clutter_strength : float;
  clutter_prob : float;
  active_prob : float;
  background_prob : float;
  features_per_topic : int;
  topic_gain : float;
  noise : float;
  binary : bool;
}

let default =
  { dims = [| 40; 40; 40 |];
    n_classes = 2;
    class_priors = None;
    shared_topics = 8;
    topics_per_class = 4;
    pair_confounders = 4;
    confounder_strength = 1.2;
    confounder_prob = 0.35;
    confounder_features = 8;
    clutter_topics = 4;
    clutter_strength = 2.0;
    clutter_prob = 0.3;
    active_prob = 0.75;
    background_prob = 0.08;
    features_per_topic = 6;
    topic_gain = 1.5;
    noise = 0.6;
    binary = true }

(* A loading is a sparse column: (feature index, weight) pairs. *)
type loading = (int * float) array

type world = {
  config : config;
  shared_loadings : loading array array;
      (* shared_loadings.(p).(j): loading of shared topic j in view p *)
  confounder_loadings : (int * int * loading * loading) array;
      (* (p, q, loading in view p, loading in view q) per confounder topic *)
  clutter_loadings : loading array array;
      (* clutter_loadings.(p).(j): class-free single-view structure *)
  class_topics : bool array array;
      (* class_topics.(c).(j): does class c prefer shared topic j *)
}

let make_loading rng pool count gain =
  (* Pick [count] distinct features from the given feature pool. *)
  let count = min count (Array.length pool) in
  let chosen = Rng.choose rng count (Array.length pool) in
  Array.map (fun i -> (pool.(i), gain *. (0.5 +. Rng.uniform rng))) chosen

(* Partition a view's feature indices into disjoint pools for topics,
   confounders and clutter, sized by their loading demand.  Disjointness
   mirrors real BOW data (topic vocabularies barely overlap) and keeps the
   binarization from mixing confounder mass into topic features. *)
let feature_pools rng config dim =
  (* Fixed shares: half the vocabulary for class topics, a third for
     confounders, the rest clutter.  Families without loadings cede their
     share to the topics. *)
  let n_conf = if config.pair_confounders = 0 then 0 else max 1 (dim * 35 / 100) in
  let n_clutter = if config.clutter_topics = 0 then 0 else max 1 (dim * 15 / 100) in
  let n_topics = dim - n_conf - n_clutter in
  let perm = Rng.permutation rng dim in
  ( Array.sub perm 0 n_topics,
    (if n_conf > 0 then Array.sub perm n_topics n_conf else [||]),
    (if n_clutter > 0 then Array.sub perm (n_topics + n_conf) n_clutter
     else Array.sub perm 0 dim) )

let make_world ?(seed = 42) config =
  if Array.length config.dims < 2 then invalid_arg "Synth: need at least two views";
  if config.n_classes < 2 then invalid_arg "Synth: need at least two classes";
  if config.shared_topics < 1 then invalid_arg "Synth: need at least one shared topic";
  let rng = Rng.create seed in
  let m = Array.length config.dims in
  let pools = Array.map (fun d -> feature_pools rng config d) config.dims in
  let topic_pool p = let (t, _, _) = pools.(p) in t in
  let conf_pool p = let (_, c, _) = pools.(p) in c in
  let clutter_pool p = let (_, _, l) = pools.(p) in l in
  let shared_loadings =
    (* Topics get disjoint feature chunks of their pool when it is large
       enough (distinct vocabularies, as in real BOW data) -- this keeps the
       rank-1 terms of the covariance tensor near-orthogonal, which is what
       makes the CP decomposition identifiable. *)
    Array.init m (fun p ->
        let pool = topic_pool p in
        let chunk = Array.length pool / config.shared_topics in
        Array.init config.shared_topics (fun j ->
            if chunk >= 1 then begin
              let slice = Array.sub pool (j * chunk) chunk in
              make_loading rng slice (min config.features_per_topic chunk) config.topic_gain
            end
            else make_loading rng pool config.features_per_topic config.topic_gain))
  in
  let pairs = ref [] in
  for p = 0 to m - 1 do
    for q = p + 1 to m - 1 do
      pairs := (p, q) :: !pairs
    done
  done;
  let confounder_loadings =
    List.concat_map
      (fun (p, q) ->
        List.init config.pair_confounders (fun _ ->
            let lp =
              make_loading rng (conf_pool p) config.confounder_features
                config.confounder_strength
            in
            let lq =
              make_loading rng (conf_pool q) config.confounder_features
                config.confounder_strength
            in
            (p, q, lp, lq)))
      (List.rev !pairs)
    |> Array.of_list
  in
  let clutter_loadings =
    Array.init m (fun p ->
        Array.init config.clutter_topics (fun _ ->
            make_loading rng (clutter_pool p) config.features_per_topic
              config.clutter_strength))
  in
  let class_topics =
    Array.init config.n_classes (fun c ->
        let prefers = Array.make config.shared_topics false in
        for i = 0 to config.topics_per_class - 1 do
          prefers.(((c * config.topics_per_class) + i) mod config.shared_topics) <- true
        done;
        prefers)
  in
  { config; shared_loadings; confounder_loadings; clutter_loadings; class_topics }

let config_of w = w.config

let add_loading intensity loading amplitude =
  Array.iter (fun (f, weight) -> intensity.(f) <- intensity.(f) +. (amplitude *. weight)) loading

let draw_label rng config =
  match config.class_priors with
  | None -> Rng.int rng config.n_classes
  | Some priors ->
    let u = Rng.uniform rng in
    let acc = ref 0. and chosen = ref (config.n_classes - 1) in
    (try
       Array.iteri
         (fun c p ->
           acc := !acc +. p;
           if u < !acc then begin
             chosen := c;
             raise Exit
           end)
         priors
     with Exit -> ());
    !chosen

(* Draw one instance: fill each view's intensity accumulator from active
   topics, then emit either binary Bernoulli features (BOW-style) or
   non-negative continuous ones (histogram-style). *)
let draw_instance w rng label columns n_index =
  let c = w.config in
  let m = Array.length c.dims in
  let intensities = Array.init m (fun p -> Array.make c.dims.(p) 0.) in
  for j = 0 to c.shared_topics - 1 do
    let p_on = if w.class_topics.(label).(j) then c.active_prob else c.background_prob in
    if Rng.bernoulli rng p_on then begin
      let amplitude = 1. +. (0.5 *. Float.abs (Rng.gaussian rng)) in
      for p = 0 to m - 1 do
        add_loading intensities.(p) w.shared_loadings.(p).(j) amplitude
      done
    end
  done;
  Array.iter
    (fun (p, q, lp, lq) ->
      if Rng.bernoulli rng c.confounder_prob then begin
        let amplitude = 1. +. (0.5 *. Float.abs (Rng.gaussian rng)) in
        add_loading intensities.(p) lp amplitude;
        add_loading intensities.(q) lq amplitude
      end)
    w.confounder_loadings;
  (* Per-view clutter: class-free structure visible to exactly one view —
     it inflates within-view variance (polluting PCA/graph-based methods)
     while any cross-view correlation method is blind to it. *)
  for p = 0 to m - 1 do
    Array.iter
      (fun loading ->
        if Rng.bernoulli rng c.clutter_prob then
          add_loading intensities.(p) loading (1. +. (0.5 *. Float.abs (Rng.gaussian rng))))
      w.clutter_loadings.(p)
  done;
  for p = 0 to m - 1 do
    let col = columns.(p).(n_index) in
    if c.binary then begin
      (* Poisson-style firing: P(1) = 1 − (1−p_bg)·exp(−intensity). *)
      let p_bg = Float.min 0.4 (0.04 *. c.noise) in
      for f = 0 to c.dims.(p) - 1 do
        let fire = 1. -. ((1. -. p_bg) *. exp (-.Float.max 0. intensities.(p).(f))) in
        col.(f) <- (if Rng.bernoulli rng fire then 1. else 0.)
      done
    end
    else
      for f = 0 to c.dims.(p) - 1 do
        col.(f) <- Float.max 0. (intensities.(p).(f) +. (c.noise *. Rng.gaussian rng))
      done
  done

let sample_with_labels w rng labels =
  let c = w.config in
  let n = Array.length labels in
  Array.iter
    (fun y -> if y < 0 || y >= c.n_classes then invalid_arg "Synth: label out of range")
    labels;
  let m = Array.length c.dims in
  let columns = Array.init m (fun p -> Array.init n (fun _ -> Array.make c.dims.(p) 0.)) in
  for i = 0 to n - 1 do
    draw_instance w rng labels.(i) columns i
  done;
  let views = Array.init m (fun p -> Mat.of_cols columns.(p)) in
  Multiview.create views (Array.copy labels)

let sample w rng ~n =
  let labels = Array.init n (fun _ -> draw_label rng w.config) in
  sample_with_labels w rng labels

let sample_balanced w rng ~per_class =
  let c = w.config in
  let labels = Array.init (per_class * c.n_classes) (fun i -> i mod c.n_classes) in
  Rng.shuffle_in_place rng labels;
  sample_with_labels w rng labels
