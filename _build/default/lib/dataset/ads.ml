type scale = Quick | Paper

let name = "ads-sim"

let config = function
  | Paper ->
    { Synth.dims = [| 120; 100; 90 |];
      n_classes = 2;
      class_priors = Some [| 0.86; 0.14 |];
      shared_topics = 10;
      topics_per_class = 5;
      topic_gain = 1.0;
      active_prob = 0.4;
      background_prob = 0.08;
      features_per_topic = 4;
      pair_confounders = 8;
      confounder_strength = 1.4;
      confounder_prob = 0.5;
      confounder_features = 12;
      clutter_topics = 5;
      clutter_strength = 1.2;
      clutter_prob = 0.3;
      noise = 0.8;
      binary = true }
  | Quick ->
    { Synth.dims = [| 48; 40; 36 |];
      n_classes = 2;
      class_priors = Some [| 0.86; 0.14 |];
      shared_topics = 8;
      topics_per_class = 4;
      topic_gain = 1.0;
      active_prob = 0.4;
      background_prob = 0.08;
      features_per_topic = 3;
      pair_confounders = 6;
      confounder_strength = 1.4;
      confounder_prob = 0.5;
      confounder_features = 8;
      clutter_topics = 4;
      clutter_strength = 1.2;
      clutter_prob = 0.3;
      noise = 0.8;
      binary = true }

let world ?(seed = 2002) scale = Synth.make_world ~seed (config scale)
