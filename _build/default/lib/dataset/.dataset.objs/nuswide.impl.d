lib/dataset/nuswide.ml: Synth
