lib/dataset/split.ml: Array Float Printf Rng
