lib/dataset/ads.ml: Synth
