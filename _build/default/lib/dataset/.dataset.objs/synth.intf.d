lib/dataset/synth.mli: Multiview Rng
