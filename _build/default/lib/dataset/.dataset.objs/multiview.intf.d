lib/dataset/multiview.mli: Mat
