lib/dataset/ads.mli: Synth
