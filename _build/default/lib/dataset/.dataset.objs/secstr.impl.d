lib/dataset/secstr.ml: Synth
