lib/dataset/synth.ml: Array Float List Mat Multiview Rng
