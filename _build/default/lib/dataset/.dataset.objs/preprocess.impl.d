lib/dataset/preprocess.ml: Array Mat Vec
