lib/dataset/multiview.ml: Array Mat
