lib/dataset/nuswide.mli: Synth
