lib/dataset/split.mli: Rng
