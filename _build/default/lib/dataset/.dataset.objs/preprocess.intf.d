lib/dataset/preprocess.mli: Mat Vec
