lib/dataset/secstr.mli: Synth
