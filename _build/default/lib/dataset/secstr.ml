type scale = Quick | Paper

let name = "secstr-sim"

(* Knob choices (see DESIGN.md §1 and EXPERIMENTS.md): sparse skewed topics
   carry the class signal in all three context windows; pairwise confounders
   are stronger than topics in pairwise canonical correlation (they load on
   more features), so pairwise CCA spends leading directions on them while
   the covariance tensor is blind to them; per-view clutter pollutes the
   purely unsupervised baselines. *)
let config = function
  | Paper ->
    { Synth.default with
      dims = [| 105; 105; 105 |];
      n_classes = 2;
      shared_topics = 12;
      topics_per_class = 6;
      topic_gain = 0.9;
      active_prob = 0.35;
      background_prob = 0.08;
      features_per_topic = 4;
      pair_confounders = 10;
      confounder_strength = 1.6;
      confounder_prob = 0.5;
      confounder_features = 16;
      clutter_topics = 6;
      clutter_strength = 1.4;
      clutter_prob = 0.35;
      noise = 1.0;
      binary = true }
  | Quick ->
    { Synth.default with
      dims = [| 60; 60; 60 |];
      n_classes = 2;
      shared_topics = 10;
      topics_per_class = 5;
      topic_gain = 0.9;
      active_prob = 0.35;
      background_prob = 0.08;
      features_per_topic = 4;
      pair_confounders = 8;
      confounder_strength = 1.6;
      confounder_prob = 0.5;
      confounder_features = 12;
      clutter_topics = 5;
      clutter_strength = 1.4;
      clutter_prob = 0.35;
      noise = 1.0;
      binary = true }

let world ?(seed = 1001) scale = Synth.make_world ~seed (config scale)
