(** SecStr-like protein secondary-structure benchmark (paper Sec. 5.1.1).

    The original SecStr task predicts secondary structure from a 15-position
    amino-acid window, one-hot encoded (15×21 = 315 binary features), split
    into left-context / center / right-context views of 105 dims each.  The
    simulated world keeps the three-view 105-dim binary layout ([Paper]
    scale) or a 40-dim-per-view shrunk version ([Quick]) and a binary label,
    with class topics playing the role of structure-indicative residue
    patterns that manifest in all three context windows. *)

type scale = Quick | Paper

val config : scale -> Synth.config
val world : ?seed:int -> scale -> Synth.world
val name : string
