let partition rng n fraction =
  if fraction < 0. || fraction > 1. then invalid_arg "Split.partition: bad fraction";
  let perm = Rng.permutation rng n in
  let k = int_of_float (Float.round (fraction *. float_of_int n)) in
  (Array.sub perm 0 k, Array.sub perm k (n - k))

let labeled_unlabeled rng ~n ~labeled =
  if labeled > n then invalid_arg "Split.labeled_unlabeled: more labeled than instances";
  let perm = Rng.permutation rng n in
  (Array.sub perm 0 labeled, Array.sub perm labeled (n - labeled))

let labeled_per_class rng labels ~per_class =
  let n = Array.length labels in
  let n_classes = 1 + Array.fold_left max 0 labels in
  let by_class = Array.make n_classes [] in
  (* Iterate a shuffled order so the per-class picks are random. *)
  let perm = Rng.permutation rng n in
  Array.iter (fun i -> by_class.(labels.(i)) <- i :: by_class.(labels.(i))) perm;
  let chosen = ref [] and rest = ref [] in
  Array.iteri
    (fun c members ->
      let members = Array.of_list members in
      if Array.length members < per_class then
        invalid_arg
          (Printf.sprintf "Split.labeled_per_class: class %d has only %d instances" c
             (Array.length members));
      Array.iteri
        (fun k i -> if k < per_class then chosen := i :: !chosen else rest := i :: !rest)
        members)
    by_class;
  let chosen = Array.of_list !chosen and rest = Array.of_list !rest in
  Rng.shuffle_in_place rng chosen;
  Rng.shuffle_in_place rng rest;
  (chosen, rest)

let validation_carveout rng pool fraction =
  let pool = Array.copy pool in
  Rng.shuffle_in_place rng pool;
  let k = int_of_float (Float.round (fraction *. float_of_int (Array.length pool))) in
  (Array.sub pool 0 k, Array.sub pool k (Array.length pool - k))
