type t = { views : Mat.t array; labels : int array }

let create views labels =
  if Array.length views = 0 then invalid_arg "Multiview.create: no views";
  let n = snd (Mat.dims views.(0)) in
  Array.iter
    (fun v -> if snd (Mat.dims v) <> n then invalid_arg "Multiview.create: instance count mismatch")
    views;
  if Array.length labels <> n then invalid_arg "Multiview.create: label count mismatch";
  { views; labels }

let n_instances t = snd (Mat.dims t.views.(0))
let n_views t = Array.length t.views
let dims t = Array.map (fun v -> fst (Mat.dims v)) t.views

let n_classes t = 1 + Array.fold_left max 0 t.labels

let views_of t idx = Array.map (fun v -> Mat.select_cols v idx) t.views

let select t idx =
  { views = views_of t idx; labels = Array.map (fun i -> t.labels.(i)) idx }

let concat_features t = Mat.vcat_list (Array.to_list t.views)

let instances_per_class t =
  let counts = Array.make (n_classes t) 0 in
  Array.iter (fun y -> counts.(y) <- counts.(y) + 1) t.labels;
  counts
