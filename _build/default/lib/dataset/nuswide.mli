(** NUS-WIDE-mammal-like web image annotation benchmark (paper Secs. 5.1.3
    and 5.2).

    The original subset has 11 189 images of 10 mammal concepts with three
    visual views: 500-d SIFT bag-of-visual-words, 144-d color correlogram,
    128-d wavelet texture — non-negative histogram-style features.  The
    simulation keeps 10 classes and three non-negative continuous views,
    scaled to 100/72/64 dims ([Paper]) or 50/36/32 ([Quick]).  View 0 plays
    the BoW role (the χ² kernel is applied to it in the non-linear
    experiments). *)

type scale = Quick | Paper

val config : scale -> Synth.config
val world : ?seed:int -> scale -> Synth.world
val name : string

val bow_view : int
(** Index of the view treated as the visual-word histogram (χ² kernel). *)
