(** A labeled multi-view sample: one feature matrix per view, instances as
    columns, plus an integer class label per instance. *)

type t = {
  views : Mat.t array;   (** [views.(p)] is [dₚ × N]; all share the same N. *)
  labels : int array;    (** Length N; classes are [0 .. n_classes−1]. *)
}

val create : Mat.t array -> int array -> t
(** Validates that all views and the label vector agree on N. *)

val n_instances : t -> int
val n_views : t -> int
val dims : t -> int array
val n_classes : t -> int
(** [1 + max label]. *)

val select : t -> int array -> t
(** Instance subset (columns and labels), in the given order. *)

val views_of : t -> int array -> Mat.t array
(** Like [select] but without labels. *)

val concat_features : t -> Mat.t
(** Stack all views vertically: the CAT baseline's input. *)

val instances_per_class : t -> int array
