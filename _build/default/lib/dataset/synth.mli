(** Synthetic multi-view generator standing in for the paper's datasets.

    Why this design reproduces the paper's behaviour (see DESIGN.md §1):

    - The class signal lives in sparse, *skewed* shared topics that load on
      every view.  Skewness matters: the order-3 covariance tensor of any
      symmetric (e.g. Gaussian) latent vanishes in expectation, so TCCA would
      have nothing to find.  Centered sparse Bernoulli activations — the
      structure of the paper's binary BOW features — have non-zero third
      cross-moments, which is precisely the high-order statistic TCCA
      exploits.
    - Class-free *clutter topics* load on exactly one view each: they
      dominate within-view variance, so purely unsupervised structure
      finders (PCA, spectral embeddings — the DSE/SSMVD substrate, and the
      CAT baseline's feature space) chase them, while every cross-view
      correlation method is blind to them by construction.
    - Class-independent *pairwise confounders* load on exactly two views.
      They create strong pairwise correlation with no label information, so
      pairwise methods (CCA, CCA-LS, CCA-MAXVAR) spend canonical directions
      on them, while the 3-way covariance tensor is blind to them (their
      expectation against the third, independent view is zero after
      centering).  [confounder_strength] is the ablation knob.
    - Per-view noise and high ambient dimension reproduce the CAT/BSF
      over-fitting behaviour at 100 labeled instances. *)

type config = {
  dims : int array;           (** Feature dimension of each view. *)
  n_classes : int;
  class_priors : float array option;
      (** Class sampling distribution; uniform when [None]. *)
  shared_topics : int;        (** Latent topics loading on all views. *)
  topics_per_class : int;     (** Topics each class prefers. *)
  pair_confounders : int;     (** Topics per view pair, class-independent. *)
  confounder_strength : float;(** Loading scale of pair confounders;
                                  0 disables them. *)
  confounder_prob : float;    (** Activation probability of a confounder. *)
  confounder_features : int;  (** Loading sparsity of confounders — more
                                  features average out feature noise and
                                  raise their pairwise canonical
                                  correlation above the topics'. *)
  clutter_topics : int;       (** Class-free single-view topics per view. *)
  clutter_strength : float;   (** Their loading scale. *)
  clutter_prob : float;       (** Their activation probability. *)
  active_prob : float;        (** P(topic on | class prefers it). *)
  background_prob : float;    (** P(topic on | class does not prefer it). *)
  features_per_topic : int;   (** Loading sparsity. *)
  topic_gain : float;         (** Loading amplitude of shared topics. *)
  noise : float;              (** Feature noise scale. *)
  binary : bool;              (** Binarize outputs (BOW-style views). *)
}

val default : config
(** A small three-view binary world: 3×40 dims, 2 classes — the quickstart
    example's data. *)

type world
(** Frozen loadings and class→topic assignments; instances drawn from a
    world are i.i.d. *)

val make_world : ?seed:int -> config -> world
val config_of : world -> config

val sample : world -> Rng.t -> n:int -> Multiview.t
(** [n] i.i.d. instances with labels drawn from the class prior. *)

val sample_balanced : world -> Rng.t -> per_class:int -> Multiview.t
(** Exactly [per_class] instances of every class, shuffled. *)

val sample_with_labels : world -> Rng.t -> int array -> Multiview.t
(** Instances with the given label sequence. *)
