(** Feature preprocessing applied before dimension-reduction methods.

    CCA-family methods assume centered views (paper Sec. 4.2); the CAT
    baseline normalizes each view's features before concatenation
    (Sec. 5.1). *)

type centering
(** Per-view means frozen on the fitting data. *)

val fit_center : Mat.t array -> centering
val apply_center : centering -> Mat.t array -> Mat.t array
(** Subtract the frozen means from (possibly different) data. *)

val center_views : Mat.t array -> Mat.t array * centering
(** Convenience: fit and apply on the same data. *)

val means : centering -> Vec.t array

val normalize_view_scale : Mat.t -> Mat.t
(** Divide a view by its average column norm, so concatenated views
    contribute comparably (the CAT baseline's normalization). *)

val unit_columns : Mat.t -> Mat.t
(** L2-normalize every instance column (zero columns left as-is). *)

val append_bias : Mat.t -> Mat.t
(** Add a constant-1 feature row — the RLS bias term of Sec. 5.1. *)
