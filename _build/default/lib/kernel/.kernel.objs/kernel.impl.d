lib/kernel/kernel.ml: Array Distance Eigen Float List Mat Vec
