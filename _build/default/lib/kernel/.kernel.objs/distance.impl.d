lib/kernel/distance.ml: Array Float Mat
