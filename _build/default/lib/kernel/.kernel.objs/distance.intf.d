lib/kernel/distance.mli: Mat Vec
