lib/kernel/kernel.mli: Distance Mat
