type t = Linear | Exp_distance of Distance.t | Rbf of float

type fitted = { kind : t; train : Mat.t; lambda : float option }

let fit kind x =
  let lambda =
    match kind with
    | Exp_distance d ->
      let lam = Distance.max_entry (Distance.pairwise d x) in
      (* All-identical columns give λ = 0; fall back to 1 so the kernel is
         the constant-1 matrix rather than NaN. *)
      Some (if lam > 0. then lam else 1.)
    | Linear | Rbf _ -> None
  in
  { kind; train = Mat.copy x; lambda }

let eval_matrix f dist_or_inner =
  match f.kind, f.lambda with
  | Linear, _ -> dist_or_inner
  | Exp_distance _, Some lam -> Mat.map (fun d -> exp (-.d /. lam)) dist_or_inner
  | Rbf gamma, _ -> Mat.map (fun d -> exp (-.gamma *. d)) dist_or_inner
  | Exp_distance _, None -> assert false

let cross f y =
  match f.kind with
  | Linear -> Mat.mul_tn f.train y
  | Exp_distance d -> eval_matrix f (Distance.cross d f.train y)
  | Rbf _ -> eval_matrix f (Distance.cross Distance.Sq_l2 f.train y)

let gram f =
  match f.kind with
  | Linear -> Mat.tgram f.train
  | Exp_distance d -> eval_matrix f (Distance.pairwise d f.train)
  | Rbf _ -> eval_matrix f (Distance.pairwise Distance.Sq_l2 f.train)

let bandwidth f = f.lambda

let center k =
  let n, m = Mat.dims k in
  if n <> m then invalid_arg "Kernel.center: not square";
  let row_means = Array.init n (fun i -> Vec.mean (Mat.row k i)) in
  let total = Vec.mean row_means in
  Mat.init n n (fun i j -> Mat.get k i j -. row_means.(i) -. row_means.(j) +. total)

let normalize_unit_diag k =
  let n, m = Mat.dims k in
  if n <> m then invalid_arg "Kernel.normalize_unit_diag: not square";
  let d = Array.init n (fun i -> sqrt (Float.max (Mat.get k i i) 1e-300)) in
  Mat.init n n (fun i j -> Mat.get k i j /. (d.(i) *. d.(j)))

let average = function
  | [] -> invalid_arg "Kernel.average: empty list"
  | k :: rest ->
    let sum = List.fold_left Mat.add k rest in
    Mat.scale (1. /. float_of_int (List.length rest + 1)) sum

let is_psd ?(eps = 1e-8) k =
  let eig = Eigen.decompose k in
  let lmax = Float.max (Float.abs eig.Eigen.values.(0)) 1. in
  Array.for_all (fun l -> l >= -.eps *. lmax) eig.Eigen.values
