(* Column index of the (i_0, …, i_{m-1}) entry in the mode-k unfolding:
   j = Σ_{q≠k} i_q · J_q with J_q = Π_{p<q, p≠k} dims.(p)  (lowest mode
   fastest, Kolda & Bader, "Tensor Decompositions and Applications"). *)

let col_strides dims k =
  let m = Array.length dims in
  let j = Array.make m 0 in
  let acc = ref 1 in
  for q = 0 to m - 1 do
    if q <> k then begin
      j.(q) <- !acc;
      acc := !acc * dims.(q)
    end
  done;
  j

let unfold (a : Tensor.t) k =
  let m = Tensor.order a in
  if k < 0 || k >= m then invalid_arg "Unfold.unfold: bad mode";
  let dims = a.Tensor.dims in
  let ncols = Tensor.size a / dims.(k) in
  let out = Mat.create dims.(k) ncols in
  let jstr = col_strides dims k in
  let idx = Array.make m 0 in
  let n = Tensor.size a in
  let strides = a.Tensor.strides in
  for flat = 0 to n - 1 do
    let rem = ref flat in
    for q = 0 to m - 1 do
      idx.(q) <- !rem / strides.(q);
      rem := !rem mod strides.(q)
    done;
    let col = ref 0 in
    for q = 0 to m - 1 do
      if q <> k then col := !col + (idx.(q) * jstr.(q))
    done;
    Mat.set out idx.(k) !col a.Tensor.data.(flat)
  done;
  out

let refold mat dims k =
  let m = Array.length dims in
  if k < 0 || k >= m then invalid_arg "Unfold.refold: bad mode";
  let rows, cols = Mat.dims mat in
  if rows <> dims.(k) || cols * rows <> Array.fold_left ( * ) 1 dims then
    invalid_arg "Unfold.refold: shape mismatch";
  let jstr = col_strides dims k in
  Tensor.init dims (fun idx ->
      let col = ref 0 in
      for q = 0 to m - 1 do
        if q <> k then col := !col + (idx.(q) * jstr.(q))
      done;
      Mat.get mat idx.(k) !col)

let mode_product_via_unfold a k u =
  let dims = Array.copy a.Tensor.dims in
  let j, _ = Mat.dims u in
  let unfolded = unfold a k in
  let product = Mat.mul u unfolded in
  dims.(k) <- j;
  refold product dims k
