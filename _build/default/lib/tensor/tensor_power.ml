let decompose ?max_iter ?tol ~rank x =
  if rank < 1 then invalid_arg "Tensor_power.decompose: rank must be >= 1";
  let m = Tensor.order x in
  let residual = ref (Tensor.copy x) in
  let weights = Array.make rank 0. in
  let dims = Array.init m (Tensor.dim x) in
  let factors = Array.map (fun d -> Mat.create d rank) dims in
  for c = 0 to rank - 1 do
    let { Hopm.sigma; vectors; _ } = Hopm.rank1 ?max_iter ?tol ~seed:(c + 1) !residual in
    weights.(c) <- sigma;
    Array.iteri (fun k u -> Mat.set_col factors.(k) c u) vectors;
    Tensor.add_outer_in_place !residual (-.sigma) vectors
  done;
  { Kruskal.weights; factors }
