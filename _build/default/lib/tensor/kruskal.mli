(** Kruskal (CP) form: a tensor expressed as a weighted sum of rank-1 terms
    [Σ_k λ⁽ᵏ⁾ u₁⁽ᵏ⁾ ∘ u₂⁽ᵏ⁾ ∘ … ∘ uₘ⁽ᵏ⁾] — exactly the decomposition TCCA
    applies to the whitened covariance tensor (paper Fig. 2). *)

type t = {
  weights : Vec.t;        (** λ, length r. *)
  factors : Mat.t array;  (** One [dₚ × r] matrix per mode; columns are the
                              rank-1 components [uₚ⁽ᵏ⁾]. *)
}

val rank : t -> int
val order : t -> int

val validate : t -> unit
(** Raises [Invalid_argument] unless all factors share the weight count. *)

val to_tensor : t -> Tensor.t
(** Materialize the full tensor. *)

val normalize : t -> t
(** Rescale every factor column to unit norm, absorbing norms (and signs, kept
    on the weight) into [weights]; components are then sorted by descending
    |weight|. *)

val fit : t -> Tensor.t -> float
(** Relative fit [1 − ‖X − X̂‖_F / ‖X‖_F], computed without materializing
    [X̂] (uses the factor Gram identity for [‖X̂‖²] and multilinear forms for
    [⟨X, X̂⟩]). *)

val component : t -> int -> Vec.t array
(** [component t k] is the k-th rank-1 term's factor vectors. *)
