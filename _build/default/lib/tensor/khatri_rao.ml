let product a b =
  let ia, ka = Mat.dims a in
  let jb, kb = Mat.dims b in
  if ka <> kb then invalid_arg "Khatri_rao.product: column count mismatch";
  Mat.init (ia * jb) ka (fun row k ->
      let i = row / jb and j = row mod jb in
      Mat.get a i k *. Mat.get b j k)

let chain = function
  | [] -> invalid_arg "Khatri_rao.chain: empty list"
  | u :: rest -> List.fold_left (fun acc v -> product v acc) u rest

let chain_excluding us k =
  let factors = ref [] in
  for q = Array.length us - 1 downto 0 do
    if q <> k then factors := us.(q) :: !factors
  done;
  chain !factors

let gram_hadamard_excluding us k =
  let r =
    match Array.length us with
    | 0 -> invalid_arg "Khatri_rao.gram_hadamard_excluding: empty"
    | _ -> snd (Mat.dims us.(0))
  in
  let acc = ref (Mat.make r r 1.) in
  Array.iteri (fun q u -> if q <> k then acc := Mat.map2 ( *. ) !acc (Mat.tgram u)) us;
  !acc
