(** Mode-k matricization (Kolda–Bader convention).

    [unfold a k] is the [dims.(k) × Π_{q≠k} dims.(q)] matrix whose columns are
    the mode-k fibers of [a], ordered so that the *lowest* remaining mode
    varies fastest.  This is the ordering under which the CP model reads
    [X₍ₖ₎ = Uₖ diag(λ) (U_m ⊙ … ⊙ U_{k+1} ⊙ U_{k−1} ⊙ … ⊙ U₁)ᵀ]
    with [⊙] the Khatri–Rao product of {!Khatri_rao}. *)

val unfold : Tensor.t -> int -> Mat.t

val refold : Mat.t -> int array -> int -> Tensor.t
(** [refold m dims k] inverts [unfold] for a tensor of shape [dims]. *)

val mode_product_via_unfold : Tensor.t -> int -> Mat.t -> Tensor.t
(** Reference implementation of the k-mode product as [refold (U · unfold)]
    (paper Eq. 4.3); used to cross-check {!Tensor.mode_product} in tests. *)
