lib/tensor/cp_rand.ml: Array Cholesky Eigen Float Kruskal Mat Rng Tensor Unfold Vec
