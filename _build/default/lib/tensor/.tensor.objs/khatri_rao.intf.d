lib/tensor/khatri_rao.mli: Mat
