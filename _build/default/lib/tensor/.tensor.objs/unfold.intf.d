lib/tensor/unfold.mli: Mat Tensor
