lib/tensor/cp_als.mli: Kruskal Mat Tensor
