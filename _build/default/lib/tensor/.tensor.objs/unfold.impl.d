lib/tensor/unfold.ml: Array Mat Tensor
