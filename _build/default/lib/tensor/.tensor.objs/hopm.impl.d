lib/tensor/hopm.ml: Array Eigen Float Mat Rng Tensor Unfold Vec
