lib/tensor/tensor_power.ml: Array Hopm Kruskal Mat Tensor
