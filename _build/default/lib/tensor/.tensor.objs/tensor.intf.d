lib/tensor/tensor.mli: Format Mat Vec
