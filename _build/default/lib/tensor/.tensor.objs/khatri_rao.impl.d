lib/tensor/khatri_rao.ml: Array List Mat
