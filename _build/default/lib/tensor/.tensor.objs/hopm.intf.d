lib/tensor/hopm.mli: Tensor Vec
