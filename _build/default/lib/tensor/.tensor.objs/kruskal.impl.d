lib/tensor/kruskal.ml: Array Float Mat Tensor Vec
