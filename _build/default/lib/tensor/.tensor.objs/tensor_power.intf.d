lib/tensor/tensor_power.mli: Kruskal Tensor
