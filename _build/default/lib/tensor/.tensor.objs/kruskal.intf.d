lib/tensor/kruskal.mli: Mat Tensor Vec
