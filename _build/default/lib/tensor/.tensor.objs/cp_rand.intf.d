lib/tensor/cp_rand.mli: Kruskal Tensor
