lib/tensor/cp_als.ml: Array Cholesky Eigen Float Khatri_rao Kruskal List Mat Matfun Rng Tensor Unfold Vec
