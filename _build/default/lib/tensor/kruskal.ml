type t = { weights : Vec.t; factors : Mat.t array }

let rank t = Array.length t.weights
let order t = Array.length t.factors

let validate t =
  let r = rank t in
  if r = 0 then invalid_arg "Kruskal: empty decomposition";
  Array.iter
    (fun u -> if snd (Mat.dims u) <> r then invalid_arg "Kruskal: factor rank mismatch")
    t.factors

let component t k = Array.map (fun u -> Mat.col u k) t.factors

let to_tensor t =
  validate t;
  let dims = Array.map (fun u -> fst (Mat.dims u)) t.factors in
  let out = Tensor.create dims in
  for k = 0 to rank t - 1 do
    Tensor.add_outer_in_place out t.weights.(k) (component t k)
  done;
  out

let normalize t =
  validate t;
  let r = rank t in
  let weights = Array.copy t.weights in
  let factors =
    Array.map
      (fun u ->
        let u = Mat.copy u in
        for k = 0 to r - 1 do
          let col = Mat.col u k in
          let n = Vec.norm col in
          if n > 0. then begin
            Mat.set_col u k (Vec.scale (1. /. n) col);
            weights.(k) <- weights.(k) *. n
          end
        done;
        u)
      t.factors
  in
  (* Sort components by |weight| descending. *)
  let ordering = Array.init r (fun i -> i) in
  Array.sort (fun i j -> compare (Float.abs weights.(j)) (Float.abs weights.(i))) ordering;
  { weights = Array.map (fun i -> weights.(i)) ordering;
    factors = Array.map (fun u -> Mat.select_cols u ordering) factors }

let fit t x =
  validate t;
  (* ‖X − X̂‖² = ‖X‖² − 2⟨X, X̂⟩ + ‖X̂‖², with
     ⟨X, X̂⟩ = Σ_k λₖ · X ×₁ u₁⁽ᵏ⁾ᵀ …   and
     ‖X̂‖²  = λᵀ (⊛_p UₚᵀUₚ) λ. *)
  let norm_x2 = Tensor.inner x x in
  let r = rank t in
  let cross = ref 0. in
  for k = 0 to r - 1 do
    cross := !cross +. (t.weights.(k) *. Tensor.multilinear_form x (component t k))
  done;
  let gram = ref (Mat.make r r 1.) in
  Array.iter (fun u -> gram := Mat.map2 ( *. ) !gram (Mat.tgram u)) t.factors;
  let norm_xhat2 = Vec.dot t.weights (Mat.mul_vec !gram t.weights) in
  let err2 = Float.max 0. (norm_x2 -. (2. *. !cross) +. norm_xhat2) in
  if norm_x2 = 0. then 0. else 1. -. sqrt (err2 /. norm_x2)
