(** Khatri–Rao (column-wise Kronecker) products. *)

val product : Mat.t -> Mat.t -> Mat.t
(** [product a b] for [a : I×K] and [b : J×K] is the [(I·J)×K] matrix whose
    column [k] is [a_k ⊗ b_k]; row index [i·J + j], i.e. [b]'s index varies
    fastest. *)

val chain : Mat.t list -> Mat.t
(** [chain [u1; …; un]] is [uₙ ⊙ … ⊙ u₁] — the *first* matrix's row index
    varies fastest, matching {!Unfold.unfold}'s column ordering.  Raises
    [Invalid_argument] on an empty list. *)

val chain_excluding : Mat.t array -> int -> Mat.t
(** [chain_excluding us k] is [chain] over all factors except index [k] —
    the matrix that multiplies [Uₖ] in the CP normal equations. *)

val gram_hadamard_excluding : Mat.t array -> int -> Mat.t
(** [⊛_{q≠k} (U_qᵀ U_q)]: the Gram matrix of [chain_excluding us k], computed
    in O(Σ d r²) instead of materializing the Khatri–Rao product. *)
