(** Higher-order power method (HOPM) for the best rank-1 tensor approximation
    (De Lathauwer, De Moor & Vandewalle 2000b) — one of the alternative
    solvers the paper mentions for problem (4.10).

    Iterates [uₖ ← X ×_{q≠k} u_qᵀ / ‖·‖] until the generalized Rayleigh
    quotient [σ = X ×₁u₁ᵀ…×ₘuₘᵀ] stabilizes. *)

type result = {
  sigma : float;           (** The rank-1 weight (the canonical correlation). *)
  vectors : Vec.t array;   (** Unit vectors, one per mode. *)
  iterations : int;
  converged : bool;
}

val rank1 : ?max_iter:int -> ?tol:float -> ?seed:int -> Tensor.t -> result
(** Defaults: [max_iter = 200], [tol = 1e-10].  Initialized from the leading
    eigenvector of each unfolding Gram (deterministic); [seed] only matters
    for the degenerate all-zero tensor. *)
