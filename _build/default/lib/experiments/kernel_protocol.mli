(** The non-linear (kernel) protocol of paper Sec. 5.2 / Fig. 6 / Table 4.

    A small subset of the image-annotation world (the paper uses 500
    samples): per-view kernels [k(x,y) = exp(−d(x,y)/λ)], [λ = max d], with
    the χ² distance on the bag-of-visual-words view and L2 elsewhere.
    [per_class] labeled instances; 20% of the rest for validation
    (choosing k for kNN and, via the sweep driver, the dimension); the rest
    for evaluation.  Everything is transductive on the subset, matching the
    paper. *)

type config = {
  world : Synth.world;
  n_subset : int;            (** Paper: 500. *)
  per_class : int;
  val_fraction : float;
  eps : float;               (** PLS regularizer of Eq. 4.14. *)
  bow_view : int;            (** View that gets the χ² distance. *)
}

val default_config : ?per_class:int -> ?n_subset:int -> Synth.world -> config

type result = { val_acc : float; test_acc : float; chosen_k : int }

val run : config -> Spec.kernel_method -> r:int -> seed:int -> result

val build_kernels : config -> Multiview.t -> Mat.t array
(** The per-view Gram matrices of the paper (exposed for benches/tests). *)

type state
(** One seed's subset, kernels and splits (KTCCA's whitened tensor is
    memoized inside). *)

val prepare : config -> seed:int -> state
val run_prepared : state -> Spec.kernel_method -> r:int -> result
