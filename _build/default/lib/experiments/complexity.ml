type cost = { r : int; seconds : float; alloc_mb : float }
type curve = { label : string; costs : cost array }

let measure_fit thunk =
  let _, sample = Measure.run thunk in
  (sample.Measure.seconds, sample.Measure.allocated_mb +. sample.Measure.live_mb)

let linear_fit_thunk ~eps ~cap views meth ~r =
  let m = Array.length views in
  match (meth : Spec.linear_method) with
  | Spec.Bsf -> fun () -> ignore (Mat.copy views.(0))
  | Spec.Cat ->
    fun () ->
      ignore (Mat.vcat_list (Array.to_list (Array.map Preprocess.normalize_view_scale views)))
  | Spec.Cca_bst | Spec.Cca_avg ->
    fun () ->
      (* Both fit all m(m−1)/2 pairwise models. *)
      List.iter
        (fun (p, q) -> ignore (Cca.fit ~eps ~r:(max 1 (r / 2)) views.(p) views.(q)))
        (Spec.view_pairs m)
  | Spec.Cca_ls -> fun () -> ignore (Cca_ls.fit ~eps ~r:(max 1 (r / m)) views)
  | Spec.Tcca -> fun () -> ignore (Tcca.fit ~eps ~r:(max 1 (r / m)) views)
  | Spec.Dse ->
    let capped = Array.map (fun v -> Mat.sub_cols v 0 (min cap (snd (Mat.dims v)))) views in
    fun () -> ignore (Dse.fit_transform ~r capped)
  | Spec.Ssmvd ->
    let capped = Array.map (fun v -> Mat.sub_cols v 0 (min cap (snd (Mat.dims v)))) views in
    fun () -> ignore (Ssmvd.fit_transform ~r capped)

let linear_costs ~world ~n ~eps ~methods ~rs ~seed =
  let rng = Rng.create (0xC057 + seed) in
  let data = Synth.sample world rng ~n in
  let views = data.Multiview.views in
  List.map
    (fun meth ->
      let costs =
        Array.map
          (fun r ->
            let seconds, alloc_mb =
              measure_fit (linear_fit_thunk ~eps ~cap:2000 views meth ~r)
            in
            { r; seconds; alloc_mb })
          rs
      in
      { label = Spec.linear_name meth; costs })
    methods

let kernel_fit_thunk ~eps kernels meth ~r =
  let m = Array.length kernels in
  match (meth : Spec.kernel_method) with
  | Spec.Bsk -> fun () -> ignore (Array.map Mat.copy kernels)
  | Spec.Kavg ->
    fun () ->
      ignore (Kernel.average (Array.to_list (Array.map Kernel.normalize_unit_diag kernels)))
  | Spec.Kcca_bst | Spec.Kcca_avg ->
    fun () ->
      List.iter
        (fun (p, q) -> ignore (Kcca.fit ~eps ~r:(max 1 (r / 2)) kernels.(p) kernels.(q)))
        (Spec.view_pairs m)
  | Spec.Ktcca ->
    let solver = Tcca.Als { Cp_als.default_options with max_iter = 30; tol = 1e-4 } in
    fun () -> ignore (Ktcca.fit ~eps ~solver ~r:(max 1 (r / m)) kernels)

let kernel_costs ~world ~n ~eps ~bow_view ~methods ~rs ~seed =
  let rng = Rng.create (0xC058 + seed) in
  let data = Synth.sample world rng ~n in
  let kernels =
    Array.mapi
      (fun p view ->
        let dist = if p = bow_view then Distance.Chi2 else Distance.L2 in
        Kernel.gram (Kernel.fit (Kernel.Exp_distance dist) view))
      data.Multiview.views
  in
  List.map
    (fun meth ->
      let costs =
        Array.map
          (fun r ->
            let seconds, alloc_mb = measure_fit (kernel_fit_thunk ~eps kernels meth ~r) in
            { r; seconds; alloc_mb })
          rs
      in
      { label = Spec.kernel_name meth; costs })
    methods

let cost_figure ~title ~value curves =
  match curves with
  | [] -> invalid_arg "Complexity: no curves"
  | first :: _ ->
    let x = Array.map (fun c -> float_of_int c.r) first.costs in
    Tableau.series ~title ~xlabel:"dim" ~x
      (List.map (fun c -> (c.label, Array.map value c.costs)) curves)

let time_figure ~title curves = cost_figure ~title ~value:(fun c -> c.seconds) curves
let memory_figure ~title curves = cost_figure ~title ~value:(fun c -> c.alloc_mb) curves

let n_scaling ~world ~ns ~r ~eps ~dse_cap =
  let t =
    Tableau.create
      ~title:
        (Printf.sprintf "Fit seconds vs sample size (r = %d); nan = beyond the method's cap" r)
      ~columns:[ "N"; "CCA (pair)"; "CCA-LS"; "TCCA"; "DSE"; "SSMVD" ]
  in
  let rng = Rng.create 0x5CA1E in
  Array.iter
    (fun n ->
      let data = Synth.sample world rng ~n in
      let views = data.Multiview.views in
      let time f = Measure.time (fun () -> ignore (f ())) in
      let cca = time (fun () -> Cca.fit ~eps ~r views.(0) views.(1)) in
      let ccals = time (fun () -> Cca_ls.fit ~eps ~r views) in
      let tcca = time (fun () -> Tcca.fit ~eps ~r views) in
      let dse = if n <= dse_cap then time (fun () -> Dse.fit_transform ~r views) else nan in
      let ssmvd = if n <= dse_cap then time (fun () -> Ssmvd.fit_transform ~r views) else nan in
      Tableau.add_row t (string_of_int n) [ cca; ccals; tcca; dse; ssmvd ])
    ns;
  Tableau.render t
