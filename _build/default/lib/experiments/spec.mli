(** Method identifiers for the paper's comparisons. *)

(** The eight linear methods of Figs. 3–5 / Tables 1–3. *)
type linear_method =
  | Bsf       (** Best single-view features (chosen on validation). *)
  | Cat       (** Normalized concatenation of all views. *)
  | Cca_bst   (** Best two-view CCA pair (chosen on validation). *)
  | Cca_avg   (** Score/vote averaging over all view pairs. *)
  | Cca_ls    (** Multi-view CCA of Vía et al. 2007. *)
  | Dse       (** Long et al. 2008. *)
  | Ssmvd     (** Han et al. 2012. *)
  | Tcca      (** The paper's method. *)

val all_linear : linear_method list
val linear_name : linear_method -> string
(** Paper spelling: "BSF", "CAT", "CCA (BST)", … *)

(** The five kernel methods of Fig. 6 / Table 4. *)
type kernel_method =
  | Bsk        (** Best single-view kernel. *)
  | Kavg       (** Averaged normalized kernels. *)
  | Kcca_bst
  | Kcca_avg
  | Ktcca

val all_kernel : kernel_method list
val kernel_name : kernel_method -> string

val view_pairs : int -> (int * int) list
(** All unordered view pairs, the m(m−1)/2 subsets of the paper. *)
