lib/experiments/ablations.ml: Array Cp_als Cp_rand Hopm Kruskal Linear_protocol Mat Measure Multiview Printf Rng Spec Stats Synth Tableau Tcca Tensor_power
