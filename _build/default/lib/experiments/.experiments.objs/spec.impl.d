lib/experiments/spec.ml: List
