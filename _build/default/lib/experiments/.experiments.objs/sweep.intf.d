lib/experiments/sweep.mli:
