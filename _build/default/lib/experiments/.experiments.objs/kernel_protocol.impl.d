lib/experiments/kernel_protocol.ml: Array Cp_als Distance Eval Float Hashtbl Kcca Kernel Knn Ktcca List Mat Multiview Rng Spec Split Synth Tcca Validate
