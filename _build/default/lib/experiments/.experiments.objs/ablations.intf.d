lib/experiments/ablations.mli: Synth
