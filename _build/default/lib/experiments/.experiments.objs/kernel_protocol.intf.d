lib/experiments/kernel_protocol.mli: Mat Multiview Spec Synth
