lib/experiments/knn_protocol.mli: Spec Synth
