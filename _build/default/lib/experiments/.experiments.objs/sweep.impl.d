lib/experiments/sweep.ml: Array List Stats Tableau
