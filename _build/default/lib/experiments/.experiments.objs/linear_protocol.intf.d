lib/experiments/linear_protocol.mli: Spec Synth
