lib/experiments/spec.mli:
