lib/experiments/linear_protocol.ml: Array Cca Cca_ls Dse Eval List Mat Multiview Preprocess Rls Rng Spec Split Ssmvd Synth Tcca
