lib/experiments/figures.mli:
