lib/experiments/complexity.ml: Array Cca Cca_ls Cp_als Distance Dse Kcca Kernel Ktcca List Mat Measure Multiview Preprocess Printf Rng Spec Ssmvd Synth Tableau Tcca
