lib/experiments/knn_protocol.ml: Array Cca Cca_ls Dse Eval Hashtbl Knn List Mat Multiview Rng Spec Split Ssmvd Synth Tcca Validate Vec
