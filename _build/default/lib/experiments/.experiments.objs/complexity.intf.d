lib/experiments/complexity.mli: Spec Synth
