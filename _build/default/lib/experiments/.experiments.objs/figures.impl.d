lib/experiments/figures.ml: Ablations Ads Complexity Kernel_protocol Knn_protocol Linear_protocol List Nuswide Printf Secstr Spec Sweep Tableau
