type config = {
  world : Synth.world;
  n_subset : int;
  per_class : int;
  val_fraction : float;
  eps : float;
  bow_view : int;
}

let default_config ?(per_class = 6) ?(n_subset = 500) world =
  { world; n_subset; per_class; val_fraction = 0.2; eps = 1e-1; bow_view = 0 }

type result = { val_acc : float; test_acc : float; chosen_k : int }

let build_kernels config data =
  Array.mapi
    (fun p view ->
      let dist = if p = config.bow_view then Distance.Chi2 else Distance.L2 in
      Kernel.gram (Kernel.fit (Kernel.Exp_distance dist) view))
    data.Multiview.views

(* The paper optimizes the kernel regularization over {10^i} on validation;
   a short grid keeps the N^3 tensor work tractable (1e-2 and below never won
   validation in calibration runs). *)
let eps_grid = [ 1e-1; 1. ]

(* The S tensor is mostly estimation noise at these subset sizes: a tightly
   capped ALS reaches its plateau fit in well under 30 sweeps. *)
let ktcca_solver = Tcca.Als { Cp_als.default_options with max_iter = 30; tol = 1e-4 }

type state = {
  config : config;
  data : Multiview.t;
  kernels : Mat.t array;
  mutable ktcca_raw : Ktcca.raw option;
  ktcca_prepared : (float, Ktcca.prepared) Hashtbl.t;
  labeled_idx : int array;
  val_idx : int array;
  eval_idx : int array;
  y_labeled : int array;
  y_val : int array;
  y_eval : int array;
}

let prepare config ~seed =
  let rng = Rng.create (0xBEEF5 + (seed * 6007)) in
  (* Balanced subset so every concept has enough instances for the labeled
     draw even at small N (the paper's 500-sample subset spans all 10
     concepts). *)
  let n_classes = (Synth.config_of config.world).Synth.n_classes in
  let data =
    Synth.sample_balanced config.world rng ~per_class:(max 1 (config.n_subset / n_classes))
  in
  let labeled_idx, rest =
    Split.labeled_per_class rng data.Multiview.labels ~per_class:config.per_class
  in
  let val_idx, eval_idx = Split.validation_carveout rng rest config.val_fraction in
  let label_of = Array.map (fun i -> data.Multiview.labels.(i)) in
  { config;
    data;
    kernels = build_kernels config data;
    ktcca_raw = None;
    ktcca_prepared = Hashtbl.create 4;
    labeled_idx;
    val_idx;
    eval_idx;
    y_labeled = label_of labeled_idx;
    y_val = label_of val_idx;
    y_eval = label_of eval_idx }

(* kNN from a kernel: d²(i,j) = k(i,i) + k(j,j) − 2k(i,j). *)
let kernel_distances k rows cols =
  Mat.init (Array.length rows) (Array.length cols) (fun a b ->
      let i = rows.(a) and j = cols.(b) in
      Float.max 0. (Mat.get k i i +. Mat.get k j j -. (2. *. Mat.get k i j)))

let eval_from_distances st ~dist_val ~dist_eval =
  let n_classes = Multiview.n_classes st.data in
  let pick k =
    let votes = Knn.votes_of_distances ~k ~n_classes st.y_labeled dist_val in
    Eval.accuracy (Knn.predict_votes votes) st.y_val
  in
  let k, val_acc = Validate.best pick Knn.default_k_candidates in
  let votes = Knn.votes_of_distances ~k ~n_classes st.y_labeled dist_eval in
  { val_acc;
    test_acc = Eval.accuracy (Knn.predict_votes votes) st.y_eval;
    chosen_k = k }

let eval_kernel_direct st k =
  eval_from_distances st
    ~dist_val:(kernel_distances k st.labeled_idx st.val_idx)
    ~dist_eval:(kernel_distances k st.labeled_idx st.eval_idx)

let best_by_val results =
  match results with
  | [] -> invalid_arg "Kernel_protocol: no candidates"
  | first :: rest ->
    List.fold_left (fun best r -> if r.val_acc > best.val_acc then r else best) first rest

let run_bsk st = best_by_val (Array.to_list (Array.map (eval_kernel_direct st) st.kernels))

let run_kavg st =
  let normalized = Array.map Kernel.normalize_unit_diag st.kernels in
  eval_kernel_direct st (Kernel.average (Array.to_list normalized))

(* Embedding-based evaluation: Euclidean kNN inside the learned subspace. *)
let eval_embedding st z =
  let train_z = Mat.select_cols z st.labeled_idx in
  let val_z = Mat.select_cols z st.val_idx in
  let eval_z = Mat.select_cols z st.eval_idx in
  let pick k =
    let model = Knn.fit ~k train_z st.y_labeled in
    Eval.accuracy (Knn.predict model val_z) st.y_val
  in
  let k, val_acc = Validate.best pick Knn.default_k_candidates in
  let model = Knn.fit ~k train_z st.y_labeled in
  { val_acc;
    test_acc = Eval.accuracy (Knn.predict model eval_z) st.y_eval;
    chosen_k = k }

let kcca_embedding st ~eps ~r (p, q) =
  let model = Kcca.fit ~eps ~r:(max 1 (r / 2)) st.kernels.(p) st.kernels.(q) in
  Kcca.transform_train model

(* Per pair: choose eps on validation; return evaluation + embedding. *)
let kcca_pair_best_eps st ~r pair =
  let candidates =
    List.map
      (fun eps ->
        let z = kcca_embedding st ~eps ~r pair in
        (eval_embedding st z, z))
      eps_grid
  in
  List.fold_left
    (fun ((best, _) as acc) ((res, _) as cand) -> if res.val_acc > best.val_acc then cand else acc)
    (List.hd candidates) (List.tl candidates)

let run_kcca_bst st ~r =
  let pairs = Spec.view_pairs (Array.length st.kernels) in
  best_by_val (List.map (fun pair -> fst (kcca_pair_best_eps st ~r pair)) pairs)

let run_kcca_avg st ~r =
  let pairs = Spec.view_pairs (Array.length st.kernels) in
  let votes =
    List.map
      (fun pair ->
        let _, z = kcca_pair_best_eps st ~r pair in
        let train_z = Mat.select_cols z st.labeled_idx in
        let val_z = Mat.select_cols z st.val_idx in
        let eval_z = Mat.select_cols z st.eval_idx in
        let pick k =
          let model = Knn.fit ~k train_z st.y_labeled in
          Eval.accuracy (Knn.predict model val_z) st.y_val
        in
        let k, _ = Validate.best pick Knn.default_k_candidates in
        let model = Knn.fit ~k train_z st.y_labeled in
        (Knn.votes model val_z, Knn.votes model eval_z, k))
      pairs
  in
  let sum side =
    match votes with
    | [] -> invalid_arg "Kernel_protocol.run_kcca_avg: no pairs"
    | first :: rest -> List.fold_left (fun acc v -> Mat.add acc (side v)) (side first) rest
  in
  let first3 (a, _, _) = a and second3 (_, b, _) = b in
  { val_acc = Eval.accuracy (Knn.predict_votes (sum first3)) st.y_val;
    test_acc = Eval.accuracy (Knn.predict_votes (sum second3)) st.y_eval;
    chosen_k = (match votes with (_, _, k) :: _ -> k | [] -> 1) }

let run_ktcca st ~r =
  let m = Array.length st.kernels in
  let raw =
    match st.ktcca_raw with
    | Some raw -> raw
    | None ->
      let raw = Ktcca.prepare_raw st.kernels in
      st.ktcca_raw <- Some raw;
      raw
  in
  let prepared_for eps =
    match Hashtbl.find_opt st.ktcca_prepared eps with
    | Some p -> p
    | None ->
      let p = Ktcca.prepare_of_raw ~eps raw in
      Hashtbl.replace st.ktcca_prepared eps p;
      p
  in
  best_by_val
    (List.map
       (fun eps ->
         let model = Ktcca.fit_prepared ~solver:ktcca_solver ~r:(max 1 (r / m)) (prepared_for eps) in
         eval_embedding st (Ktcca.transform_train model))
       eps_grid)

let run_prepared st meth ~r =
  match (meth : Spec.kernel_method) with
  | Spec.Bsk -> run_bsk st
  | Spec.Kavg -> run_kavg st
  | Spec.Kcca_bst -> run_kcca_bst st ~r
  | Spec.Kcca_avg -> run_kcca_avg st ~r
  | Spec.Ktcca -> run_ktcca st ~r

let run config meth ~r ~seed = run_prepared (prepare config ~seed) meth ~r
