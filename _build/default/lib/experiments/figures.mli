(** Experiment registry: every table and figure of the paper's Section 5,
    plus the ablations, addressable by id.

    Ids: [fig3] (+Table 1), [fig4] (+Table 2), [fig5] (+Table 3),
    [fig6] (+Table 4), [fig7]–[fig10] (complexity), [abl-solver],
    [abl-confound], [abl-reg].  Table ids ([tab1]–[tab4]) alias their figure
    since both come from the same sweep.

    Each experiment renders one or more text blocks (figure series as
    aligned tables, tables in the paper's mean±std format). *)

type params = {
  seeds : int;              (** Runs per cell (paper: 5). *)
  rs : int array;           (** Total-dimension grid for the linear sweeps. *)
  rs_kernel : int array;
  paper_scale : bool;       (** Dataset dimensions: Quick vs Paper scale. *)
  secstr_pool : int;        (** The "84K instances" analog. *)
  secstr_extra : int;       (** The "1.3M unlabeled" analog (extra fit-only
                                instances added on top of the pool). *)
  ads_pool : int;
  nus_train : int;
  nus_test : int;
  kernel_subset : int;      (** Paper: 500. *)
  complexity_n : int;       (** Pool size for Figs. 7–9. *)
}

val quick : params
(** Small dimensions and pools: the whole suite runs in minutes —
    what [bench/main.exe] uses. *)

val paper : params
(** Paper-scale dimensions (subject to DESIGN.md substitutions); hours. *)

val all_ids : string list

val describe : string -> string
(** One-line description of an experiment id.  Raises [Not_found] on an
    unknown id. *)

val run : params -> string -> string list
(** Render the blocks of one experiment id.  Raises [Not_found] on an
    unknown id. *)
