(** Drives (method × dimension × seed) sweeps and renders the paper's
    figures (accuracy-vs-dimension curves) and tables (accuracy at the
    validation-chosen best dimension, mean±std over seeds). *)

type point = {
  r : int;
  val_mean : float;
  val_std : float;
  test_mean : float;
  test_std : float;
}

type curve = { label : string; points : point array }

val sweep :
  run:('m -> r:int -> seed:int -> float * float) ->
  label:('m -> string) ->
  methods:'m list -> rs:int array -> seeds:int -> curve list
(** [run] returns [(val_acc, test_acc)]; seeds are [0 .. seeds−1]. *)

val sweep_prepared :
  prepare:(seed:int -> 'state) ->
  run:('state -> 'm -> r:int -> float * float) ->
  label:('m -> string) ->
  methods:'m list -> rs:int array -> seeds:int -> curve list
(** Like [sweep], but one prepared state per seed is shared across all
    (method, dimension) cells — the protocols' pools and memoized tensors. *)

val figure : title:string -> curve list -> string
(** Textual figure: one row per dimension, one column per method (test
    accuracy), matching the paper's plots. *)

val table : title:string -> curve list -> string
(** Paper-style table: per method, the test accuracy (mean±std, in %) at the
    dimension with the best mean validation accuracy. *)

val best_point : curve -> point
(** The validation-selected point of a curve. *)
