(** The NUS-WIDE web-image-annotation protocol (paper Sec. 5.1.3).

    Per run: draw a training pool and a test set; pick [per_class] labeled
    instances per concept from the training pool; fit subspaces on the whole
    training pool (unlabeled); classify with kNN, k chosen on the 20%
    validation carve-out of the test set (candidates 1..10); CCA (AVG)
    combines pairs by majority voting (summed vote matrices).  DSE/SSMVD are
    transductive, so they embed labeled ∪ validation ∪ test jointly. *)

type config = {
  world : Synth.world;
  n_train : int;
  n_test : int;
  per_class : int;           (** 4, 6 or 8 in the paper. *)
  val_fraction : float;
  eps : float;
  transductive_cap : int;
}

val default_config : ?per_class:int -> Synth.world -> config
(** n_train = 1200, n_test = 1200, per_class defaults to 6. *)

type result = { val_acc : float; test_acc : float; chosen_k : int }

type state
(** One seed's sampled pools and splits, shared across methods and
    dimensions (the TCCA whitened tensor is memoized inside). *)

val prepare : config -> seed:int -> state
val run_prepared : state -> Spec.linear_method -> r:int -> result

val run : config -> Spec.linear_method -> r:int -> seed:int -> result
