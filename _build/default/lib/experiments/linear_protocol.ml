type config = {
  world : Synth.world;
  n_pool : int;
  n_extra_unlabeled : int;
  n_labeled : int;
  val_fraction : float;
  eps : float;
  rls_gamma : float;
  transductive_cap : int;
}

let default_config world =
  { world;
    n_pool = 2000;
    n_extra_unlabeled = 0;
    n_labeled = 100;
    val_fraction = 0.2;
    eps = 1e-2;
    rls_gamma = 1e-2;
    transductive_cap = 2500 }

type result = { val_acc : float; test_acc : float }

(* Everything one run needs: the pool with its three index sets, plus the
   (pool + extra unlabeled) views subspaces are fitted on. *)
type state = {
  config : config;
  pool : Multiview.t;
  fit_views : Mat.t array;
  labeled_idx : int array;
  val_idx : int array;
  test_idx : int array;
  y_labeled : int array;
  y_val : int array;
  y_test : int array;
  mutable tcca_prepared : Tcca.prepared option;
  mutable dse_prepared : (int * Dse.prepared) option; (* (max_r, prepared) *)
}

let prepare config ~seed =
  let rng = Rng.create (0x51EED + (seed * 9973)) in
  let pool = Synth.sample config.world rng ~n:config.n_pool in
  let labeled_idx, rest =
    Split.labeled_unlabeled rng ~n:config.n_pool ~labeled:config.n_labeled
  in
  let val_idx, test_idx = Split.validation_carveout rng rest config.val_fraction in
  let fit_views =
    if config.n_extra_unlabeled = 0 then pool.Multiview.views
    else begin
      let extra = Synth.sample config.world rng ~n:config.n_extra_unlabeled in
      Array.map2 Mat.hcat pool.Multiview.views extra.Multiview.views
    end
  in
  let label_of = Array.map (fun i -> pool.Multiview.labels.(i)) in
  { config;
    pool;
    fit_views;
    labeled_idx;
    val_idx;
    test_idx;
    y_labeled = label_of labeled_idx;
    y_val = label_of val_idx;
    y_test = label_of test_idx;
    tcca_prepared = None;
    dse_prepared = None }

(* Train RLS on an embedding aligned with the pool's columns and evaluate. *)
let eval_embedding st z =
  let model =
    Rls.fit ~gamma:st.config.rls_gamma (Mat.select_cols z st.labeled_idx) st.y_labeled
  in
  let acc idx y = Eval.accuracy (Rls.predict model (Mat.select_cols z idx)) y in
  { val_acc = acc st.val_idx st.y_val; test_acc = acc st.test_idx st.y_test }

(* Scores (C × N_subset) of an RLS trained on an embedding, for AVG. *)
let scores_of_embedding st z =
  let model =
    Rls.fit ~gamma:st.config.rls_gamma (Mat.select_cols z st.labeled_idx) st.y_labeled
  in
  ( Rls.scores model (Mat.select_cols z st.val_idx),
    Rls.scores model (Mat.select_cols z st.test_idx) )

let best_by_val results =
  match results with
  | [] -> invalid_arg "Linear_protocol: no candidates"
  | first :: rest ->
    List.fold_left (fun best r -> if r.val_acc > best.val_acc then r else best) first rest

let run_bsf st =
  let m = Array.length st.pool.Multiview.views in
  best_by_val
    (List.init m (fun p -> eval_embedding st st.pool.Multiview.views.(p)))

let run_cat st =
  (* Per-view scale normalization frozen on the pool. *)
  let scaled = Array.map Preprocess.normalize_view_scale st.pool.Multiview.views in
  eval_embedding st (Mat.vcat_list (Array.to_list scaled))

let cca_pair_embedding st ~r (p, q) =
  let model =
    Cca.fit ~eps:st.config.eps ~r:(max 1 (r / 2)) st.fit_views.(p) st.fit_views.(q)
  in
  Cca.transform_concat model st.pool.Multiview.views.(p) st.pool.Multiview.views.(q)

let run_cca_bst st ~r =
  let pairs = Spec.view_pairs (Array.length st.pool.Multiview.views) in
  best_by_val (List.map (fun pair -> eval_embedding st (cca_pair_embedding st ~r pair)) pairs)

let run_cca_avg st ~r =
  let pairs = Spec.view_pairs (Array.length st.pool.Multiview.views) in
  let scores = List.map (fun pair -> scores_of_embedding st (cca_pair_embedding st ~r pair)) pairs in
  let sum side = List.fold_left Mat.add (side (List.hd scores)) (List.map side (List.tl scores)) in
  let val_scores = sum fst and test_scores = sum snd in
  { val_acc = Eval.accuracy (Rls.predict_scores val_scores) st.y_val;
    test_acc = Eval.accuracy (Rls.predict_scores test_scores) st.y_test }

let run_cca_ls st ~r =
  let m = Array.length st.fit_views in
  let model = Cca_ls.fit ~eps:st.config.eps ~r:(max 1 (r / m)) st.fit_views in
  eval_embedding st (Cca_ls.transform model st.pool.Multiview.views)

let run_tcca st ~r =
  let m = Array.length st.fit_views in
  let prepared =
    match st.tcca_prepared with
    | Some p -> p
    | None ->
      let p = Tcca.prepare ~eps:st.config.eps st.fit_views in
      st.tcca_prepared <- Some p;
      p
  in
  let model = Tcca.fit_prepared ~r:(max 1 (r / m)) prepared in
  eval_embedding st (Tcca.transform model st.pool.Multiview.views)

(* Transductive methods embed a capped subset of the pool: all labeled and
   validation instances are kept, test instances fill the remaining budget
   (the paper likewise runs DSE on a 10K subset of SecStr). *)
let run_transductive st ~r fit_transform =
  let cap = st.config.transductive_cap in
  let n_keep_test =
    max 0 (min (Array.length st.test_idx)
             (cap - Array.length st.labeled_idx - Array.length st.val_idx))
  in
  let test_kept = Array.sub st.test_idx 0 n_keep_test in
  let subset = Array.concat [ st.labeled_idx; st.val_idx; test_kept ] in
  let z = fit_transform ~r (Multiview.views_of st.pool subset) in
  (* Positions of each index group inside the subset embedding. *)
  let nl = Array.length st.labeled_idx and nv = Array.length st.val_idx in
  let train_pos = Array.init nl (fun i -> i) in
  let val_pos = Array.init nv (fun i -> nl + i) in
  let test_pos = Array.init n_keep_test (fun i -> nl + nv + i) in
  let model = Rls.fit ~gamma:st.config.rls_gamma (Mat.select_cols z train_pos) st.y_labeled in
  let acc pos y = Eval.accuracy (Rls.predict model (Mat.select_cols z pos)) y in
  { val_acc = acc val_pos st.y_val;
    test_acc = acc test_pos (Array.sub st.y_test 0 n_keep_test) }

let run_prepared st meth ~r =
  match (meth : Spec.linear_method) with
  | Spec.Bsf -> run_bsf st
  | Spec.Cat -> run_cat st
  | Spec.Cca_bst -> run_cca_bst st ~r
  | Spec.Cca_avg -> run_cca_avg st ~r
  | Spec.Cca_ls -> run_cca_ls st ~r
  | Spec.Tcca -> run_tcca st ~r
  | Spec.Dse ->
    run_transductive st ~r (fun ~r views ->
        (* Laplacian embeddings are nested in r: prepare once per state at a
           width covering the sweep, then slice. *)
        let prepared =
          match st.dse_prepared with
          | Some (cap, p) when r <= cap -> p
          | _ ->
            let cap = max r 96 in
            let p = Dse.prepare ~max_r:cap views in
            st.dse_prepared <- Some (cap, p);
            p
        in
        Dse.transform_prepared prepared ~r)
  | Spec.Ssmvd -> run_transductive st ~r (fun ~r views -> Ssmvd.fit_transform ~r views)

let run config meth ~r ~seed = run_prepared (prepare config ~seed) meth ~r
