type params = {
  seeds : int;
  rs : int array;
  rs_kernel : int array;
  paper_scale : bool;
  secstr_pool : int;
  secstr_extra : int;
  ads_pool : int;
  nus_train : int;
  nus_test : int;
  kernel_subset : int;
  complexity_n : int;
}

let quick =
  { seeds = 3;
    rs = [| 6; 12; 24; 45; 90 |];
    rs_kernel = [| 6; 12; 24; 45 |];
    paper_scale = false;
    secstr_pool = 1500;
    secstr_extra = 60000;
    ads_pool = 1500;
    nus_train = 1000;
    nus_test = 1000;
    kernel_subset = 160;
    complexity_n = 1000 }

let paper =
  { seeds = 5;
    rs = [| 6; 12; 30; 60; 120; 210; 300 |];
    rs_kernel = [| 6; 12; 30; 60; 120; 210; 300 |];
    paper_scale = true;
    secstr_pool = 8000;
    secstr_extra = 300000;
    ads_pool = 3000;
    nus_train = 5000;
    nus_test = 5000;
    kernel_subset = 500;
    complexity_n = 4000 }

let secstr_world p = Secstr.world (if p.paper_scale then Secstr.Paper else Secstr.Quick)
let ads_world p = Ads.world (if p.paper_scale then Ads.Paper else Ads.Quick)
let nus_world p = Nuswide.world (if p.paper_scale then Nuswide.Paper else Nuswide.Quick)

let linear_sweep config p =
  Sweep.sweep_prepared
    ~prepare:(fun ~seed -> Linear_protocol.prepare config ~seed)
    ~run:(fun st meth ~r ->
      let res = Linear_protocol.run_prepared st meth ~r in
      (res.Linear_protocol.val_acc, res.Linear_protocol.test_acc))
    ~label:Spec.linear_name ~methods:Spec.all_linear ~rs:p.rs ~seeds:p.seeds

let knn_sweep config p =
  Sweep.sweep_prepared
    ~prepare:(fun ~seed -> Knn_protocol.prepare config ~seed)
    ~run:(fun st meth ~r ->
      let res = Knn_protocol.run_prepared st meth ~r in
      (res.Knn_protocol.val_acc, res.Knn_protocol.test_acc))
    ~label:Spec.linear_name ~methods:Spec.all_linear ~rs:p.rs ~seeds:p.seeds

let kernel_sweep config p =
  Sweep.sweep_prepared
    ~prepare:(fun ~seed -> Kernel_protocol.prepare config ~seed)
    ~run:(fun st meth ~r ->
      let res = Kernel_protocol.run_prepared st meth ~r in
      (res.Kernel_protocol.val_acc, res.Kernel_protocol.test_acc))
    ~label:Spec.kernel_name ~methods:Spec.all_kernel ~rs:p.rs_kernel ~seeds:p.seeds

(* Fig. 3 + Table 1: SecStr, small and large unlabeled sets. *)
let fig3 p =
  let world = secstr_world p in
  let base = Linear_protocol.default_config world in
  let small = { base with Linear_protocol.n_pool = p.secstr_pool } in
  let large = { small with Linear_protocol.n_extra_unlabeled = p.secstr_extra } in
  let curves_small = linear_sweep small p in
  let curves_large = linear_sweep large p in
  let panel name curves =
    Sweep.figure ~title:(Printf.sprintf "Fig. 3 (%s): SecStr-sim accuracy vs dimension" name)
      curves
  in
  let table =
    let t =
      Tableau.create
        ~title:"Table 1: SecStr-sim accuracy (%) at validation-chosen dimension"
        ~columns:[ "method"; Printf.sprintf "unlabeled=%d" p.secstr_pool;
                   Printf.sprintf "unlabeled=%d" (p.secstr_pool + p.secstr_extra) ]
    in
    List.iter2
      (fun cs cl ->
        let ps = Sweep.best_point cs and pl = Sweep.best_point cl in
        Tableau.add_text_row t cs.Sweep.label
          [ Tableau.pm (ps.Sweep.test_mean *. 100.) (ps.Sweep.test_std *. 100.);
            Tableau.pm (pl.Sweep.test_mean *. 100.) (pl.Sweep.test_std *. 100.) ])
      curves_small curves_large;
    Tableau.render t
  in
  [ panel (Printf.sprintf "%d unlabeled" p.secstr_pool) curves_small;
    panel (Printf.sprintf "%d unlabeled" (p.secstr_pool + p.secstr_extra)) curves_large;
    table ]

(* Fig. 4 + Table 2: Ads. *)
let fig4 p =
  let world = ads_world p in
  let config =
    { (Linear_protocol.default_config world) with Linear_protocol.n_pool = p.ads_pool }
  in
  let curves = linear_sweep config p in
  [ Sweep.figure ~title:"Fig. 4: Ads-sim accuracy vs dimension" curves;
    Sweep.table ~title:"Table 2: Ads-sim accuracy (%) at validation-chosen dimension" curves ]

(* Fig. 5 + Table 3: NUS-WIDE, three label budgets. *)
let fig5 p =
  let world = nus_world p in
  let budgets = [ 4; 6; 8 ] in
  let per_budget =
    List.map
      (fun per_class ->
        let config =
          { (Knn_protocol.default_config ~per_class world) with
            Knn_protocol.n_train = p.nus_train;
            n_test = p.nus_test }
        in
        (per_class, knn_sweep config p))
      budgets
  in
  let panels =
    List.map
      (fun (per_class, curves) ->
        Sweep.figure
          ~title:
            (Printf.sprintf "Fig. 5 (%d labeled/concept): NUS-WIDE-sim accuracy vs dimension"
               per_class)
          curves)
      per_budget
  in
  let table =
    let t =
      Tableau.create
        ~title:"Table 3: NUS-WIDE-sim accuracy (%) at validation-chosen dimension"
        ~columns:[ "method"; "#labeled=4"; "#labeled=6"; "#labeled=8" ]
    in
    (match per_budget with
     | (_, first) :: _ ->
       List.iteri
         (fun mi curve ->
           let cell (_, curves) =
             let pnt = Sweep.best_point (List.nth curves mi) in
             Tableau.pm (pnt.Sweep.test_mean *. 100.) (pnt.Sweep.test_std *. 100.)
           in
           Tableau.add_text_row t curve.Sweep.label (List.map cell per_budget))
         first
     | [] -> ());
    Tableau.render t
  in
  panels @ [ table ]

(* Fig. 6 + Table 4: kernel methods on the small subset. *)
let fig6 p =
  let world = nus_world p in
  let budgets = [ 4; 6; 8 ] in
  let per_budget =
    List.map
      (fun per_class ->
        let config = Kernel_protocol.default_config ~per_class ~n_subset:p.kernel_subset world in
        (per_class, kernel_sweep config p))
      budgets
  in
  let panels =
    List.map
      (fun (per_class, curves) ->
        Sweep.figure
          ~title:
            (Printf.sprintf
               "Fig. 6 (%d labeled/concept, N=%d): kernel methods accuracy vs dimension"
               per_class p.kernel_subset)
          curves)
      per_budget
  in
  let table =
    let t =
      Tableau.create
        ~title:"Table 4: NUS-WIDE-sim kernel-method accuracy (%) at best dimension"
        ~columns:[ "method"; "#labeled=4"; "#labeled=6"; "#labeled=8" ]
    in
    (match per_budget with
     | (_, first) :: _ ->
       List.iteri
         (fun mi curve ->
           let cell (_, curves) =
             let pnt = Sweep.best_point (List.nth curves mi) in
             Tableau.pm (pnt.Sweep.test_mean *. 100.) (pnt.Sweep.test_std *. 100.)
           in
           Tableau.add_text_row t curve.Sweep.label (List.map cell per_budget))
         first
     | [] -> ());
    Tableau.render t
  in
  panels @ [ table ]

let linear_complexity ~title world p =
  let curves =
    Complexity.linear_costs ~world ~n:p.complexity_n ~eps:1e-2 ~methods:Spec.all_linear
      ~rs:p.rs ~seed:0
  in
  [ Complexity.time_figure ~title:(title ^ " — time (s)") curves;
    Complexity.memory_figure ~title:(title ^ " — memory (MB allocated)") curves ]

let fig7 p = linear_complexity ~title:"Fig. 7: SecStr-sim cost vs dimension" (secstr_world p) p
let fig8 p = linear_complexity ~title:"Fig. 8: Ads-sim cost vs dimension" (ads_world p) p
let fig9 p = linear_complexity ~title:"Fig. 9: NUS-WIDE-sim cost vs dimension" (nus_world p) p

let fig10 p =
  let curves =
    Complexity.kernel_costs ~world:(nus_world p) ~n:p.kernel_subset ~eps:1e-4
      ~bow_view:Nuswide.bow_view ~methods:Spec.all_kernel ~rs:p.rs_kernel ~seed:0
  in
  [ Complexity.time_figure ~title:"Fig. 10: kernel-method cost vs dimension — time (s)" curves;
    Complexity.memory_figure
      ~title:"Fig. 10: kernel-method cost vs dimension — memory (MB allocated)" curves ]

let scal_n p =
  let ns =
    if p.paper_scale then [| 1000; 4000; 16000; 64000; 256000 |]
    else [| 500; 1000; 2000; 4000; 8000; 16000 |]
  in
  [ Complexity.n_scaling ~world:(secstr_world p) ~ns ~r:9 ~eps:1e-2 ~dse_cap:2500 ]

let abl_solver p =
  [ Ablations.solver_comparison ~world:(secstr_world p) ~n:p.complexity_n ~eps:1e-2
      ~rs:[| 1; 2; 5; 10; 20 |] ~seed:0 ]

let abl_confound p =
  [ Ablations.confounder_sweep
      ~base:(Secstr.config (if p.paper_scale then Secstr.Paper else Secstr.Quick))
      ~strengths:[| 0.; 0.6; 1.2; 1.8; 2.4 |]
      ~r:45 ~seeds:p.seeds ]

let abl_reg p =
  [ Ablations.eps_sweep ~world:(secstr_world p)
      ~epsilons:[| 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. |]
      ~r:45 ~seeds:p.seeds ]

let registry =
  [ ("fig3", ("Fig. 3 + Table 1: SecStr-sim accuracy vs dimension, two unlabeled sizes", fig3));
    ("fig4", ("Fig. 4 + Table 2: Ads-sim accuracy vs dimension", fig4));
    ("fig5", ("Fig. 5 + Table 3: NUS-WIDE-sim accuracy vs dimension, 4/6/8 labels", fig5));
    ("fig6", ("Fig. 6 + Table 4: kernel methods on the small subset", fig6));
    ("fig7", ("Fig. 7: time and memory vs dimension, SecStr-sim", fig7));
    ("fig8", ("Fig. 8: time and memory vs dimension, Ads-sim", fig8));
    ("fig9", ("Fig. 9: time and memory vs dimension, NUS-WIDE-sim", fig9));
    ("fig10", ("Fig. 10: time and memory vs dimension, kernel methods", fig10));
    ("scal-n", ("Sec. 5.3 claim: fit time vs sample size (TCCA vs transductive baselines)", scal_n));
    ("abl-solver", ("Ablation: ALS vs randomized ALS vs HOPM vs power deflation", abl_solver));
    ("abl-confound", ("Ablation: pairwise-confounder strength (TCCA vs CCA-LS)", abl_confound));
    ("abl-reg", ("Ablation: regularization eps sweep for TCCA", abl_reg)) ]

let alias = [ ("tab1", "fig3"); ("tab2", "fig4"); ("tab3", "fig5"); ("tab4", "fig6") ]

let resolve id = match List.assoc_opt id alias with Some target -> target | None -> id

let all_ids = List.map fst registry

let describe id = fst (List.assoc (resolve id) registry)

let run p id = (snd (List.assoc (resolve id) registry)) p
