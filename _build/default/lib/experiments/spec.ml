type linear_method = Bsf | Cat | Cca_bst | Cca_avg | Cca_ls | Dse | Ssmvd | Tcca

let all_linear = [ Bsf; Cat; Cca_bst; Cca_avg; Cca_ls; Dse; Ssmvd; Tcca ]

let linear_name = function
  | Bsf -> "BSF"
  | Cat -> "CAT"
  | Cca_bst -> "CCA (BST)"
  | Cca_avg -> "CCA (AVG)"
  | Cca_ls -> "CCA-LS"
  | Dse -> "DSE"
  | Ssmvd -> "SSMVD"
  | Tcca -> "TCCA"

type kernel_method = Bsk | Kavg | Kcca_bst | Kcca_avg | Ktcca

let all_kernel = [ Bsk; Kavg; Kcca_bst; Kcca_avg; Ktcca ]

let kernel_name = function
  | Bsk -> "BSK"
  | Kavg -> "AVG"
  | Kcca_bst -> "KCCA (BST)"
  | Kcca_avg -> "KCCA (AVG)"
  | Ktcca -> "KTCCA"

let view_pairs m =
  let pairs = ref [] in
  for p = 0 to m - 1 do
    for q = p + 1 to m - 1 do
      pairs := (p, q) :: !pairs
    done
  done;
  List.rev !pairs
