(** Computational-cost experiments (paper Figs. 7–10): fit time and memory
    versus the dimension of the common subspace, per method.

    Time is CPU seconds of the subspace fit (the paper's dominant cost);
    memory is bytes allocated during the fit plus the live heap after it —
    see {!Measure}.  Classification cost is excluded, as it is identical
    across methods at equal dimension. *)

type cost = { r : int; seconds : float; alloc_mb : float }

type curve = { label : string; costs : cost array }

val linear_costs :
  world:Synth.world -> n:int -> eps:float ->
  methods:Spec.linear_method list -> rs:int array -> seed:int -> curve list
(** Cost of fitting each method's subspace on an [n]-instance pool
    (BSF/CAT measure their embedding step; DSE/SSMVD their transductive
    fit). *)

val kernel_costs :
  world:Synth.world -> n:int -> eps:float -> bow_view:int ->
  methods:Spec.kernel_method list -> rs:int array -> seed:int -> curve list
(** Fig. 10: kernel construction is shared and excluded; the cost measured
    is each method's fit on the Gram matrices. *)

val time_figure : title:string -> curve list -> string
val memory_figure : title:string -> curve list -> string

val n_scaling :
  world:Synth.world -> ns:int array -> r:int -> eps:float -> dse_cap:int -> string
(** Sec. 5.3's large-N claim: fit seconds per method as the sample size
    grows.  TCCA's cost flattens after its single accumulation pass (and the
    pass itself is linear), while the transductive baselines hit their N²
    wall — DSE/SSMVD are measured only up to [dse_cap] and reported as
    [nan] beyond it, exactly like the paper's "No Attempt" cells. *)
