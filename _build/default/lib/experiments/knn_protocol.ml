type config = {
  world : Synth.world;
  n_train : int;
  n_test : int;
  per_class : int;
  val_fraction : float;
  eps : float;
  transductive_cap : int;
}

let default_config ?(per_class = 6) world =
  { world;
    n_train = 1200;
    n_test = 1200;
    per_class;
    val_fraction = 0.2;
    eps = 1e-2;
    transductive_cap = 2500 }

type result = { val_acc : float; test_acc : float; chosen_k : int }

type state = {
  config : config;
  train : Multiview.t;
  labeled_idx : int array;
  y_labeled : int array;
  test_val : Multiview.t;   (* validation slice of the test set *)
  test_eval : Multiview.t;  (* evaluation slice *)
  mutable tcca_raw : Tcca.raw option;
  tcca_prepared : (float, Tcca.prepared) Hashtbl.t; (* keyed by eps *)
  mutable dse_prepared : (int * Dse.prepared) option;
}

(* The paper tunes the regularization over {10^i} on validation for the
   image-annotation experiments; this is the grid shared by every
   CCA-family method here. *)
let eps_grid = [ 1e-3; 1e-2; 1e-1; 1.; 10. ]

let prepare config ~seed =
  let rng = Rng.create (0xA11CE + (seed * 7919)) in
  let train = Synth.sample config.world rng ~n:config.n_train in
  let test = Synth.sample config.world rng ~n:config.n_test in
  let labeled_idx, _ =
    Split.labeled_per_class rng train.Multiview.labels ~per_class:config.per_class
  in
  let all_test = Array.init config.n_test (fun i -> i) in
  let val_idx, eval_idx = Split.validation_carveout rng all_test config.val_fraction in
  { config;
    train;
    labeled_idx;
    y_labeled = Array.map (fun i -> train.Multiview.labels.(i)) labeled_idx;
    test_val = Multiview.select test val_idx;
    test_eval = Multiview.select test eval_idx;
    tcca_raw = None;
    tcca_prepared = Hashtbl.create 8;
    dse_prepared = None }

(* Choose k on validation, then report both accuracies at that k. *)
let eval_knn st ~train_z ~val_z ~eval_z =
  let pick k =
    let model = Knn.fit ~k train_z st.y_labeled in
    Eval.accuracy (Knn.predict model val_z) st.test_val.Multiview.labels
  in
  let k, val_acc = Validate.best pick Knn.default_k_candidates in
  let model = Knn.fit ~k train_z st.y_labeled in
  let test_acc = Eval.accuracy (Knn.predict model eval_z) st.test_eval.Multiview.labels in
  { val_acc; test_acc; chosen_k = k }

(* An embedder maps any views to the common subspace. *)
let eval_projective st project =
  let train_z = project (Multiview.views_of st.train st.labeled_idx) in
  let val_z = project st.test_val.Multiview.views in
  let eval_z = project st.test_eval.Multiview.views in
  eval_knn st ~train_z ~val_z ~eval_z

let best_by_val results =
  match results with
  | [] -> invalid_arg "Knn_protocol: no candidates"
  | first :: rest ->
    List.fold_left (fun best r -> if r.val_acc > best.val_acc then r else best) first rest

let run_bsf st =
  let m = Multiview.n_views st.train in
  best_by_val (List.init m (fun p -> eval_projective st (fun views -> Mat.copy views.(p))))

let view_scales views =
  Array.map
    (fun v ->
      let _, n = Mat.dims v in
      let total = ref 0. in
      for j = 0 to n - 1 do
        total := !total +. Vec.norm (Mat.col v j)
      done;
      let avg = !total /. float_of_int (max n 1) in
      if avg > 0. then 1. /. avg else 1.)
    views

let run_cat st =
  (* Per-view scales frozen on the training pool. *)
  let scales = view_scales st.train.Multiview.views in
  let project views =
    Mat.vcat_list (Array.to_list (Array.map2 (fun s v -> Mat.scale s v) scales views))
  in
  eval_projective st project

let cca_pair_project st ~eps ~r (p, q) =
  let model =
    Cca.fit ~eps ~r:(max 1 (r / 2)) st.train.Multiview.views.(p) st.train.Multiview.views.(q)
  in
  fun views -> Cca.transform_concat model views.(p) views.(q)

(* For one pair, pick eps on validation; return the winning projector's
   evaluation and its projector for reuse. *)
let cca_pair_best_eps st ~r pair =
  let candidates =
    List.map
      (fun eps ->
        let project = cca_pair_project st ~eps ~r pair in
        (eval_projective st project, project))
      eps_grid
  in
  List.fold_left
    (fun ((best, _) as acc) ((res, _) as cand) -> if res.val_acc > best.val_acc then cand else acc)
    (List.hd candidates) (List.tl candidates)

let run_cca_bst st ~r =
  let pairs = Spec.view_pairs (Multiview.n_views st.train) in
  best_by_val (List.map (fun pair -> fst (cca_pair_best_eps st ~r pair)) pairs)

(* CCA (AVG) under kNN: per-pair majority voting with summed vote matrices,
   k chosen per pair on validation, as the paper's "majority voting
   strategy". *)
let run_cca_avg st ~r =
  let pairs = Spec.view_pairs (Multiview.n_views st.train) in
  let vote_matrices =
    List.map
      (fun pair ->
        let _, project = cca_pair_best_eps st ~r pair in
        let train_z = project (Multiview.views_of st.train st.labeled_idx) in
        let val_z = project st.test_val.Multiview.views in
        let eval_z = project st.test_eval.Multiview.views in
        let pick k =
          let model = Knn.fit ~k train_z st.y_labeled in
          Eval.accuracy (Knn.predict model val_z) st.test_val.Multiview.labels
        in
        let k, _ = Validate.best pick Knn.default_k_candidates in
        let model = Knn.fit ~k train_z st.y_labeled in
        (Knn.votes model val_z, Knn.votes model eval_z, k))
      pairs
  in
  let sum side =
    match vote_matrices with
    | [] -> invalid_arg "Knn_protocol.run_cca_avg: no pairs"
    | first :: rest -> List.fold_left (fun acc v -> Mat.add acc (side v)) (side first) rest
  in
  let first3 (a, _, _) = a and second3 (_, b, _) = b in
  let val_votes = sum first3 and eval_votes = sum second3 in
  { val_acc = Eval.accuracy (Knn.predict_votes val_votes) st.test_val.Multiview.labels;
    test_acc = Eval.accuracy (Knn.predict_votes eval_votes) st.test_eval.Multiview.labels;
    chosen_k = (match vote_matrices with (_, _, k) :: _ -> k | [] -> 1) }

let run_cca_ls st ~r =
  let m = Multiview.n_views st.train in
  best_by_val
    (List.map
       (fun eps ->
         let model = Cca_ls.fit ~eps ~r:(max 1 (r / m)) st.train.Multiview.views in
         eval_projective st (Cca_ls.transform model))
       eps_grid)

let run_tcca st ~r =
  let m = Multiview.n_views st.train in
  let raw =
    match st.tcca_raw with
    | Some raw -> raw
    | None ->
      let raw = Tcca.prepare_raw st.train.Multiview.views in
      st.tcca_raw <- Some raw;
      raw
  in
  let prepared_for eps =
    match Hashtbl.find_opt st.tcca_prepared eps with
    | Some p -> p
    | None ->
      let p = Tcca.prepare_of_raw ~eps raw in
      Hashtbl.replace st.tcca_prepared eps p;
      p
  in
  best_by_val
    (List.map
       (fun eps ->
         let model = Tcca.fit_prepared ~r:(max 1 (r / m)) (prepared_for eps) in
         eval_projective st (Tcca.transform model))
       eps_grid)

(* Transductive: embed labeled ∪ validation ∪ evaluation instances jointly,
   then run kNN inside the embedding. *)
let run_transductive st ~r fit_transform =
  let labeled_views = Multiview.views_of st.train st.labeled_idx in
  let nl = Array.length st.labeled_idx in
  let nv = Multiview.n_instances st.test_val in
  let ne = Multiview.n_instances st.test_eval in
  let budget = st.config.transductive_cap - nl - nv in
  let ne_kept = max 0 (min ne budget) in
  let eval_views =
    Array.map (fun v -> Mat.sub_cols v 0 ne_kept) st.test_eval.Multiview.views
  in
  let joint =
    Array.init (Array.length labeled_views) (fun p ->
        Mat.hcat_list [ labeled_views.(p); st.test_val.Multiview.views.(p); eval_views.(p) ])
  in
  let z = fit_transform ~r joint in
  let slice off n = Mat.select_cols z (Array.init n (fun i -> off + i)) in
  let train_z = slice 0 nl in
  let val_z = slice nl nv in
  let eval_z = slice (nl + nv) ne_kept in
  let pick k =
    let model = Knn.fit ~k train_z st.y_labeled in
    Eval.accuracy (Knn.predict model val_z) st.test_val.Multiview.labels
  in
  let k, val_acc = Validate.best pick Knn.default_k_candidates in
  let model = Knn.fit ~k train_z st.y_labeled in
  let y_eval = Array.sub st.test_eval.Multiview.labels 0 ne_kept in
  { val_acc;
    test_acc = Eval.accuracy (Knn.predict model eval_z) y_eval;
    chosen_k = k }

let run_prepared st meth ~r =
  match (meth : Spec.linear_method) with
  | Spec.Bsf -> run_bsf st
  | Spec.Cat -> run_cat st
  | Spec.Cca_bst -> run_cca_bst st ~r
  | Spec.Cca_avg -> run_cca_avg st ~r
  | Spec.Cca_ls -> run_cca_ls st ~r
  | Spec.Tcca -> run_tcca st ~r
  | Spec.Dse ->
    run_transductive st ~r (fun ~r views ->
        let prepared =
          match st.dse_prepared with
          | Some (cap, p) when r <= cap -> p
          | _ ->
            let cap = max r 96 in
            let p = Dse.prepare ~max_r:cap views in
            st.dse_prepared <- Some (cap, p);
            p
        in
        Dse.transform_prepared prepared ~r)
  | Spec.Ssmvd -> run_transductive st ~r (fun ~r views -> Ssmvd.fit_transform ~r views)

let run config meth ~r ~seed = run_prepared (prepare config ~seed) meth ~r
