(** The SecStr / Ads experimental protocol (paper Secs. 5.1.1–5.1.2).

    Per run (seed): draw a pool of instances, pick [n_labeled] at random,
    carve 20% of the remainder for validation and evaluate transductively on
    the rest with an RLS classifier (γ = 10⁻²).  Subspaces are fitted on the
    whole pool plus, optionally, [n_extra_unlabeled] additional unlabeled
    instances (the paper's 84K → 1.3M axis).  Transductive baselines
    (DSE/SSMVD) are fitted on the pool capped at [transductive_cap], as the
    paper caps DSE at 10K. *)

type config = {
  world : Synth.world;
  n_pool : int;
  n_extra_unlabeled : int;
  n_labeled : int;
  val_fraction : float;      (** 0.2 in the paper. *)
  eps : float;               (** CCA/TCCA regularizer (paper: 1e-2). *)
  rls_gamma : float;         (** Paper: 1e-2. *)
  transductive_cap : int;
}

val default_config : Synth.world -> config
(** n_pool = 2000, no extra unlabeled, 100 labeled, 20% validation,
    ε = γ = 1e-2, cap = 2500. *)

type result = { val_acc : float; test_acc : float }

type state
(** One seed's sampled pool and splits, shared across methods and
    dimensions; the TCCA whitened tensor is memoized inside so dimension
    sweeps only repeat the CP decomposition. *)

val prepare : config -> seed:int -> state
val run_prepared : state -> Spec.linear_method -> r:int -> result

val run : config -> Spec.linear_method -> r:int -> seed:int -> result
(** One (method, total-dimension, seed) cell of a figure.  [r] is the total
    dimension of the final representation (split across views per method
    convention); ignored by BSF/CAT. *)
