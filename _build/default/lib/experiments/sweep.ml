type point = {
  r : int;
  val_mean : float;
  val_std : float;
  test_mean : float;
  test_std : float;
}

type curve = { label : string; points : point array }

let sweep_prepared ~prepare ~run ~label ~methods ~rs ~seeds =
  let methods = Array.of_list methods in
  let n_methods = Array.length methods in
  let n_rs = Array.length rs in
  (* results.(method).(r_index).(seed) *)
  let vals = Array.init n_methods (fun _ -> Array.make_matrix n_rs seeds 0.) in
  let tests = Array.init n_methods (fun _ -> Array.make_matrix n_rs seeds 0.) in
  for seed = 0 to seeds - 1 do
    let state = prepare ~seed in
    Array.iteri
      (fun mi meth ->
        Array.iteri
          (fun ri r ->
            let v, t = run state meth ~r in
            vals.(mi).(ri).(seed) <- v;
            tests.(mi).(ri).(seed) <- t)
          rs)
      methods
  done;
  Array.to_list
    (Array.mapi
       (fun mi meth ->
         let points =
           Array.mapi
             (fun ri r ->
               let val_mean, val_std = Stats.mean_std vals.(mi).(ri) in
               let test_mean, test_std = Stats.mean_std tests.(mi).(ri) in
               { r; val_mean; val_std; test_mean; test_std })
             rs
         in
         { label = label meth; points })
       methods)

let sweep ~run ~label ~methods ~rs ~seeds =
  sweep_prepared
    ~prepare:(fun ~seed -> seed)
    ~run:(fun seed meth ~r -> run meth ~r ~seed)
    ~label ~methods ~rs ~seeds

let figure ~title curves =
  match curves with
  | [] -> invalid_arg "Sweep.figure: no curves"
  | first :: _ ->
    let x = Array.map (fun p -> float_of_int p.r) first.points in
    Tableau.series ~title ~xlabel:"dim"
      ~x
      (List.map (fun c -> (c.label, Array.map (fun p -> p.test_mean *. 100.) c.points)) curves)

let best_point curve =
  Array.fold_left
    (fun best p -> if p.val_mean > best.val_mean then p else best)
    curve.points.(0) curve.points

let table ~title curves =
  let t = Tableau.create ~title ~columns:[ "method"; "best dim"; "accuracy (%)" ] in
  List.iter
    (fun c ->
      let p = best_point c in
      Tableau.add_text_row t c.label
        [ string_of_int p.r; Tableau.pm (p.test_mean *. 100.) (p.test_std *. 100.) ])
    curves;
  Tableau.render t
