(** Ablation studies on design choices the paper discusses but does not
    isolate experimentally.

    - {e Solver}: Sec. 4.3 remarks that ALS "performs the best" among ALS,
      HOPM and the tensor power method — quantified here by rank-r fit
      quality and runtime on the whitened covariance tensor.
    - {e High-order signal}: Fig. 1's claim that pairwise methods discard
      3-way-only information — quantified by sweeping the strength of the
      pairwise confounders the tensor is blind to (DESIGN.md §1).
    - {e Regularization}: the ε of Eq. 4.8, swept on a log grid. *)

val solver_comparison :
  world:Synth.world -> n:int -> eps:float -> rs:int array -> seed:int -> string
(** Table: per rank, CP fit and seconds for ALS / HOPM-rank-1-repeat / power
    deflation on the same whitened tensor. *)

val confounder_sweep :
  base:Synth.config -> strengths:float array -> r:int -> seeds:int -> string
(** Table: TCCA vs CCA-LS test accuracy as the pairwise-confounder loading
    scale grows. *)

val eps_sweep :
  world:Synth.world -> epsilons:float array -> r:int -> seeds:int -> string
(** Table: TCCA test accuracy per regularization value. *)
