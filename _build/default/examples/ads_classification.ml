(* Internet advertisement classification, after the paper's Ads experiment
   (Sec. 5.1.2): a skewed binary task (≈14% positives) over three sparse
   binary term-presence views.  Compares every method of Fig. 4 at one
   dimension, using the shared experiment harness.

   Run:  dune exec examples/ads_classification.exe *)

let () =
  let world = Ads.world Ads.Quick in
  let config =
    { (Linear_protocol.default_config world) with
      Linear_protocol.n_pool = 1200;
      n_extra_unlabeled = 8000 }
  in
  Printf.printf "Ads-sim: one protocol run per method (dim = 24, seed = 0)\n\n";
  let st = Linear_protocol.prepare config ~seed:0 in
  let table =
    Tableau.create ~title:"Ads-sim, 100 labeled instances"
      ~columns:[ "method"; "validation acc"; "test acc" ]
  in
  List.iter
    (fun meth ->
      let res = Linear_protocol.run_prepared st meth ~r:24 in
      Tableau.add_row table (Spec.linear_name meth)
        [ res.Linear_protocol.val_acc *. 100.; res.Linear_protocol.test_acc *. 100. ])
    Spec.all_linear;
  Tableau.print table;
  print_endline "Note: the majority class alone scores ~86% on this skewed task;";
  print_endline "the dimension-reduction methods matter in the last few points.";
  print_endline "For the full dimension sweep run:  dune exec bench/main.exe fig4"
