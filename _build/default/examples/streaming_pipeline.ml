(* Streaming / large-N usage (paper Sec. 4.5): TCCA's fit statistics are
   accumulated in a single pass over instances, so arbitrarily large
   unlabeled pools can be consumed batch by batch without ever materializing
   them — and Vía et al.'s adaptive CCA-LS tracks the leading component
   sample by sample with constant memory.

   Run:  dune exec examples/streaming_pipeline.exe *)

let () =
  let world = Secstr.world Secstr.Quick in
  let rng = Rng.create 31 in
  let dims = (Synth.config_of world).Synth.dims in

  (* --- TCCA over a stream of batches -------------------------------- *)
  let builder = Tcca.Builder.create ~dims in
  let batches = 30 and batch_size = 2000 in
  for _ = 1 to batches do
    let batch = Synth.sample world rng ~n:batch_size in
    Tcca.Builder.add_batch builder batch.Multiview.views
  done;
  Printf.printf "absorbed %d instances in %d batches (memory: one %dx%dx%d tensor)\n%!"
    (Tcca.Builder.count builder) batches dims.(0) dims.(1) dims.(2);

  let model = Tcca.fit_prepared ~r:8 (Tcca.prepare_of_raw ~eps:1e-2 (Tcca.Builder.finalize builder)) in

  (* Classify a labeled set in the streamed subspace. *)
  let labeled = Synth.sample world rng ~n:100 in
  let test = Synth.sample world rng ~n:1000 in
  let rls = Rls.fit (Tcca.transform model labeled.Multiview.views) labeled.Multiview.labels in
  let acc =
    Eval.accuracy (Rls.predict rls (Tcca.transform model test.Multiview.views))
      test.Multiview.labels
  in
  Printf.printf "TCCA subspace from the stream: test accuracy %.3f\n\n%!" acc;

  (* --- adaptive CCA-LS, one sample at a time ------------------------- *)
  let online = Cca_ls.Online.create ~dims () in
  let track = Synth.sample world rng ~n:4000 in
  for i = 0 to 3999 do
    let xs = Array.map (fun v -> Mat.col v i) track.Multiview.views in
    ignore (Cca_ls.Online.step online xs)
  done;
  let fresh = Synth.sample world rng ~n:500 in
  let z0 = Cca_ls.Online.transform_view online 0 fresh.Multiview.views.(0) in
  let z1 = Cca_ls.Online.transform_view online 1 fresh.Multiview.views.(1) in
  Printf.printf
    "adaptive CCA-LS after %d samples: cross-view correlation of fresh projections %.3f\n"
    (Cca_ls.Online.samples_seen online)
    (Float.abs (Stats.pearson z0 z1))
