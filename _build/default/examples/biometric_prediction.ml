(* Biometric structure prediction, after the paper's SecStr experiment
   (Sec. 5.1.1): a binary protein-window task with three context views,
   transductive evaluation, 100 labeled instances and a large unlabeled pool
   used only to estimate the common subspace.

   The example walks the full protocol once for TCCA and its strongest
   pairwise rival, and then shows Table 1's trend: TCCA keeps improving as
   more unlabeled data refines the covariance tensor.

   Run:  dune exec examples/biometric_prediction.exe *)

let accuracy_of ~labeled_idx ~test_idx ~labels z =
  let pick idx = Array.map (fun i -> labels.(i)) idx in
  let model = Rls.fit ~gamma:1e-2 (Mat.select_cols z labeled_idx) (pick labeled_idx) in
  Eval.accuracy (Rls.predict model (Mat.select_cols z test_idx)) (pick test_idx)

let () =
  let world = Secstr.world Secstr.Quick in
  let rng = Rng.create 2024 in

  (* The "84K instances" analog: a pool we evaluate on transductively. *)
  let pool = Synth.sample world rng ~n:1500 in
  let labeled_idx, rest = Split.labeled_unlabeled rng ~n:1500 ~labeled:100 in
  let _validation, test_idx = Split.validation_carveout rng rest 0.2 in
  let labels = pool.Multiview.labels in

  Printf.printf "SecStr-sim: 3 views × %d dims, %d labeled, %d test instances\n\n"
    (Multiview.dims pool).(0) (Array.length labeled_idx) (Array.length test_idx);

  Printf.printf "%-12s %-10s %s\n" "unlabeled" "method" "accuracy";
  List.iter
    (fun extra ->
      (* Extra unlabeled instances participate only in subspace fitting. *)
      let extra_data = Synth.sample world rng ~n:extra in
      let fit_views =
        if extra = 0 then pool.Multiview.views
        else Array.map2 Mat.hcat pool.Multiview.views extra_data.Multiview.views
      in
      let tcca = Tcca.fit ~eps:1e-2 ~r:8 fit_views in
      let acc_tcca =
        accuracy_of ~labeled_idx ~test_idx ~labels (Tcca.transform tcca pool.Multiview.views)
      in
      let ccals = Cca_ls.fit ~eps:1e-2 ~r:8 fit_views in
      let acc_ls =
        accuracy_of ~labeled_idx ~test_idx ~labels (Cca_ls.transform ccals pool.Multiview.views)
      in
      Printf.printf "%-12d %-10s %.3f\n" (1500 + extra) "TCCA" acc_tcca;
      Printf.printf "%-12d %-10s %.3f\n%!" (1500 + extra) "CCA-LS" acc_ls)
    [ 0; 10_000; 60_000 ];

  print_newline ();
  print_endline
    "TCCA's high-order statistics need more unlabeled data than pairwise";
  print_endline
    "correlations do, and keep paying off as the pool grows (paper Table 1)."
