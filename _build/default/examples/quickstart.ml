(* Quickstart: three-view dimension reduction with TCCA.

   Generates a small synthetic three-view dataset (sparse binary views driven
   by shared topics plus pairwise confounders), learns a common subspace on
   unlabeled data with TCCA, and trains a tiny RLS classifier on 100 labeled
   instances in that subspace.  Compares against feature concatenation (CAT)
   and two-view CCA to show why the tensor view helps.

   Run:  dune exec examples/quickstart.exe *)

let () =
  let world = Synth.make_world ~seed:42 Synth.default in
  let rng = Rng.create 7 in

  (* 2000 unlabeled instances to estimate the common subspace, 100 labeled
     ones for the classifier, 1000 fresh ones for testing. *)
  let unlabeled = Synth.sample world rng ~n:2000 in
  let labeled = Synth.sample world rng ~n:100 in
  let test = Synth.sample world rng ~n:1000 in

  let accuracy_with transform =
    let train_z = transform labeled.Multiview.views in
    let test_z = transform test.Multiview.views in
    let model = Rls.fit train_z labeled.Multiview.labels in
    Eval.accuracy (Rls.predict model test_z) test.Multiview.labels
  in

  (* TCCA: fit on the unlabeled pool, keep r = 10 canonical directions per
     view; the representation is the 3·10-dim concatenation of the projected
     views. *)
  let tcca = Tcca.fit ~eps:1e-2 ~r:10 unlabeled.Multiview.views in
  Printf.printf "TCCA %s\n" (Tcca.solver_info tcca);
  Printf.printf "top canonical correlations: %s\n"
    (String.concat ", "
       (List.map (Printf.sprintf "%.3f")
          (Array.to_list (Array.sub (Tcca.correlations tcca) 0 5))));

  let acc_tcca = accuracy_with (Tcca.transform tcca) in

  (* Baseline 1: plain concatenation of all features. *)
  let acc_cat = accuracy_with (fun views -> Mat.vcat_list (Array.to_list views)) in

  (* Baseline 2: two-view CCA on views 0 and 1 (the classic approach). *)
  let cca = Cca.fit ~eps:1e-2 ~r:15 unlabeled.Multiview.views.(0) unlabeled.Multiview.views.(1) in
  let acc_cca =
    accuracy_with (fun views -> Cca.transform_concat cca views.(0) views.(1))
  in

  Printf.printf "\naccuracy on 1000 held-out instances (100 labeled):\n";
  Printf.printf "  CAT  (concatenate everything) : %.3f\n" acc_cat;
  Printf.printf "  CCA  (views 0+1 only)         : %.3f\n" acc_cca;
  Printf.printf "  TCCA (all views, tensor)      : %.3f\n" acc_tcca
