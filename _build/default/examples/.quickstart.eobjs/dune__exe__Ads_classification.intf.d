examples/ads_classification.mli:
