examples/quickstart.mli:
