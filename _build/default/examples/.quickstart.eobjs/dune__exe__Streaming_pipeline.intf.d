examples/streaming_pipeline.mli:
