examples/image_annotation.ml: Kernel_protocol Knn_protocol List Nuswide Printf Spec Tableau
