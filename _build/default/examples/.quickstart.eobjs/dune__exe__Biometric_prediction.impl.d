examples/biometric_prediction.ml: Array Cca_ls Eval List Mat Multiview Printf Rls Rng Secstr Split Synth Tcca
