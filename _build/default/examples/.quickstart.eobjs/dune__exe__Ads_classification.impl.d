examples/ads_classification.ml: Ads Linear_protocol List Printf Spec Tableau
