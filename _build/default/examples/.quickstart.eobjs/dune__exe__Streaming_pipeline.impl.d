examples/streaming_pipeline.ml: Array Cca_ls Eval Float Mat Multiview Printf Rls Rng Secstr Stats Synth Tcca
