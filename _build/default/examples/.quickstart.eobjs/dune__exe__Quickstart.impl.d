examples/quickstart.ml: Array Cca Eval List Mat Multiview Printf Rls Rng String Synth Tcca
