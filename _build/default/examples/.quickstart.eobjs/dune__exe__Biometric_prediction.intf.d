examples/biometric_prediction.mli:
