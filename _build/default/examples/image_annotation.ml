(* Web image annotation, after the paper's NUS-WIDE experiments: a 10-class
   kNN task over three histogram-style visual views (Sec. 5.1.3), plus the
   non-linear variant on a small subset with per-view kernels (Sec. 5.2).

   Run:  dune exec examples/image_annotation.exe *)

let linear_part () =
  let world = Nuswide.world Nuswide.Quick in
  let config =
    { (Knn_protocol.default_config ~per_class:6 world) with
      Knn_protocol.n_train = 800;
      n_test = 800 }
  in
  let st = Knn_protocol.prepare config ~seed:0 in
  let table =
    Tableau.create ~title:"NUS-WIDE-sim, kNN, 6 labeled images per concept (dim = 45)"
      ~columns:[ "method"; "test acc (%)"; "chosen k" ]
  in
  List.iter
    (fun meth ->
      let res = Knn_protocol.run_prepared st meth ~r:45 in
      Tableau.add_text_row table (Spec.linear_name meth)
        [ Printf.sprintf "%.2f" (res.Knn_protocol.test_acc *. 100.);
          string_of_int res.Knn_protocol.chosen_k ])
    Spec.all_linear;
  Tableau.print table

let kernel_part () =
  (* The small-sample non-linear setting: χ² kernel on the bag-of-visual-
     words view, L2 kernels elsewhere, everything transductive on a small
     subset. *)
  let world = Nuswide.world Nuswide.Quick in
  let config = Kernel_protocol.default_config ~per_class:6 ~n_subset:200 world in
  let st = Kernel_protocol.prepare config ~seed:0 in
  let table =
    Tableau.create ~title:"Kernel methods on a 200-image subset (dim = 24)"
      ~columns:[ "method"; "test acc (%)" ]
  in
  List.iter
    (fun meth ->
      let res = Kernel_protocol.run_prepared st meth ~r:24 in
      Tableau.add_text_row table (Spec.kernel_name meth)
        [ Printf.sprintf "%.2f" (res.Kernel_protocol.test_acc *. 100.) ])
    Spec.all_kernel;
  Tableau.print table

let () =
  linear_part ();
  kernel_part ();
  print_endline "Full sweeps: dune exec bench/main.exe fig5  (and fig6 for kernels)"
