test/test_unfold.ml: Alcotest Array Khatri_rao Mat Printf Tensor Test_support Unfold
