test/test_tcca.mli:
