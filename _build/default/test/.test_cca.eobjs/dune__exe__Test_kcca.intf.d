test/test_kcca.mli:
