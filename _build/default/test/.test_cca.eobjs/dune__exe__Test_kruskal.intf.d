test/test_kruskal.mli:
