test/test_vec.ml: Alcotest Array Float Mat QCheck2 Test_support Vec
