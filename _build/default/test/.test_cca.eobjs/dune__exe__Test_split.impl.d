test/test_split.ml: Alcotest Array Hashtbl Rng Split Test_support
