test/test_knn.ml: Alcotest Array Distance Eval Float Knn Mat Rng Test_support Vec
