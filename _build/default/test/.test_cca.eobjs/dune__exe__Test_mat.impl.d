test/test_mat.ml: Alcotest Array Float Mat QCheck2 Test_support
