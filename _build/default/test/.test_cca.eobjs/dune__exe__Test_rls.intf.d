test/test_rls.mli:
