test/test_cca.ml: Alcotest Array Cca Float Mat Rng Stats Test_support Vec
