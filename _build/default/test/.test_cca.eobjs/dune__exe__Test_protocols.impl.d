test/test_protocols.ml: Alcotest Array Kernel_protocol Knn Knn_protocol Linear_protocol List Printf Spec Stats String Sweep Synth Test_support
