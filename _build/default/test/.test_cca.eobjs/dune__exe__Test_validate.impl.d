test/test_validate.ml: Alcotest Float List Test_support Validate
