test/test_hopm.ml: Alcotest Array Float Hopm Kruskal Mat Printf Svd Tensor Tensor_power Test_support Vec
