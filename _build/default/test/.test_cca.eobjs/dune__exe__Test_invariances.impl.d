test/test_invariances.ml: Alcotest Array Cca Float Kcca Kernel Mat Rng Stats Tcca Test_support
