test/test_pca.ml: Alcotest Array Float Mat Pca Rng Test_support Vec
