test/test_measure.ml: Alcotest Array List Measure Printf
