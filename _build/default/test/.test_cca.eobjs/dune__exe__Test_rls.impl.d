test/test_rls.ml: Alcotest Array Eval Mat Rls Rng Test_support
