test/test_cca_ls.mli:
