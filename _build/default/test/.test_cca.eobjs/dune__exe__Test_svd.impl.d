test/test_svd.ml: Alcotest Array Eigen Float Mat Printf Svd Test_support Vec
