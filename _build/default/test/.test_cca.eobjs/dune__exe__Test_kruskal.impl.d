test/test_kruskal.ml: Alcotest Array Float Kruskal Mat Tensor Test_support Vec
