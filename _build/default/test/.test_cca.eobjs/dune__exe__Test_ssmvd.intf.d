test/test_ssmvd.mli:
