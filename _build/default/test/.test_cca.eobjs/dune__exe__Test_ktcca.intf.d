test/test_ktcca.mli:
