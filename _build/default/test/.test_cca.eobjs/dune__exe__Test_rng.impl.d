test/test_rng.ml: Alcotest Array Float Printf Rng Stats Test_support
