test/test_stats.ml: Alcotest Array Float QCheck2 Rng Stats Test_support
