test/test_synth.ml: Alcotest Array Eval Mat Multiview Preprocess Printf Rls Rng Synth Tcca Tensor Test_support
