test/test_matfun.ml: Alcotest Array Float Lu Mat Matfun Test_support
