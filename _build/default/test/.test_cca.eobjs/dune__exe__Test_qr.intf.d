test/test_qr.mli:
