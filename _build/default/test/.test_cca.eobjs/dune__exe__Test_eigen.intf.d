test/test_eigen.mli:
