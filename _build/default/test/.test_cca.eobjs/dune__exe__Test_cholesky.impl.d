test/test_cholesky.ml: Alcotest Array Cholesky Lu Mat Test_support Vec
