test/test_hopm.mli:
