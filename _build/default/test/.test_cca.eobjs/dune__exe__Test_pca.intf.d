test/test_pca.mli:
