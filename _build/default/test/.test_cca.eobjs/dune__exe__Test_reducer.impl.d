test/test_reducer.ml: Alcotest Array List Mat Multiview Printf Reducer Rng Synth Test_support
