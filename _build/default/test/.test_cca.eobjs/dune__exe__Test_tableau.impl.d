test/test_tableau.ml: Alcotest List String Tableau
