test/test_invariances.mli:
