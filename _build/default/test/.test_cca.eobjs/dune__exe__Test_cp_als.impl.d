test/test_cp_als.ml: Alcotest Array Cp_als Float Khatri_rao Kruskal Mat Printf Tensor Test_support Unfold Vec
