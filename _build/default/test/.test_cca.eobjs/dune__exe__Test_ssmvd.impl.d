test/test_ssmvd.ml: Alcotest Array Eval Knn Mat Rng Ssmvd Test_support Vec
