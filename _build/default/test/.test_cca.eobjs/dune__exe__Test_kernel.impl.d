test/test_kernel.ml: Alcotest Distance Float Kernel List Mat Test_support Vec
