test/test_dse.ml: Alcotest Array Dse Eval Knn Mat Rng Test_support Vec
