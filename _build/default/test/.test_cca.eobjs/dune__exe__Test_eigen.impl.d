test/test_eigen.ml: Alcotest Array Eigen Float Mat Printf Test_support Vec
