test/test_eval.ml: Alcotest Array Eval Rng Test_support
