test/test_cp_rand.ml: Alcotest Array Cp_als Cp_rand Float Kruskal Mat Printf Tensor Test_support Vec
