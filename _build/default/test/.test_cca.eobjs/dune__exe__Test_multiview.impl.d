test/test_multiview.ml: Alcotest Array Mat Multiview Test_support
