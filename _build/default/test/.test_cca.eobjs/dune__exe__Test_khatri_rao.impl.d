test/test_khatri_rao.ml: Alcotest Array Float Khatri_rao Kruskal Mat Printf QCheck2 Test_support Unfold Vec
