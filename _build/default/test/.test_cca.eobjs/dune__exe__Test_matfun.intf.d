test/test_matfun.mli:
