test/test_unfold.mli:
