test/test_qr.ml: Alcotest Float Mat QCheck2 Qr Test_support Vec
