test/test_cca_maxvar.ml: Alcotest Array Cca Cca_maxvar Float Mat Rng Stats Test_support
