test/test_tableau.mli:
