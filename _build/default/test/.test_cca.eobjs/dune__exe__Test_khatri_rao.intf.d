test/test_khatri_rao.mli:
