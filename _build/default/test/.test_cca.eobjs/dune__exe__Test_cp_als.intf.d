test/test_cp_als.mli:
