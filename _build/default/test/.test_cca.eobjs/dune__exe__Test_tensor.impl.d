test/test_tensor.ml: Alcotest Array Float Mat Printf QCheck2 Tensor Test_support Unfold Vec
