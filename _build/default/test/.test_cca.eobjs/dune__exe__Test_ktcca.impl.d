test/test_ktcca.ml: Alcotest Array Distance Eval Float Kcca Kernel Knn Ktcca Mat Printf Rng Stats Test_support
