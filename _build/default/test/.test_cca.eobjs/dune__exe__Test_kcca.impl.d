test/test_kcca.ml: Alcotest Array Distance Eval Float Kcca Kernel Knn Mat Rng Test_support
