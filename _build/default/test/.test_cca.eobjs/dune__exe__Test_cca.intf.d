test/test_cca.mli:
