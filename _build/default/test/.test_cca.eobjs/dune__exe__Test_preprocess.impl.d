test/test_preprocess.ml: Alcotest Array Mat Preprocess Test_support Vec
