test/test_cp_rand.mli:
