test/test_cca_ls.ml: Alcotest Array Cca_ls Cca_maxvar Float Mat Printf Rng Stats Sys Test_support Vec
