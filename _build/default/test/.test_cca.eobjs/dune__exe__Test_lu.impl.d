test/test_lu.ml: Alcotest Float Lu Mat QCheck2 Test_support Vec
