test/test_cholesky.mli:
