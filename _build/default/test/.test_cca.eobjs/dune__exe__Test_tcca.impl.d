test/test_tcca.ml: Alcotest Array Cca Float Mat Preprocess Printf Rng Stats Tcca Tensor Test_support Vec
