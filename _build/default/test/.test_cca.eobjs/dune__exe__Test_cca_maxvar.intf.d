test/test_cca_maxvar.mli:
