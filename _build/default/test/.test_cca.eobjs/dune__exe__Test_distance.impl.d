test/test_distance.ml: Alcotest Array Distance Float Mat QCheck2 Test_support
