test/test_graph.ml: Alcotest Array Eval Float Graph Knn Mat Rng Test_support Vec
