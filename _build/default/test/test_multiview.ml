open Test_support

let sample () =
  let r = rng () in
  Multiview.create [| random_mat r 3 5; random_mat r 2 5 |] [| 0; 1; 0; 1; 1 |]

let test_accessors () =
  let t = sample () in
  Alcotest.(check int) "instances" 5 (Multiview.n_instances t);
  Alcotest.(check int) "views" 2 (Multiview.n_views t);
  Alcotest.(check (array int)) "dims" [| 3; 2 |] (Multiview.dims t);
  Alcotest.(check int) "classes" 2 (Multiview.n_classes t);
  Alcotest.(check (array int)) "per class" [| 2; 3 |] (Multiview.instances_per_class t)

let test_select () =
  let t = sample () in
  let s = Multiview.select t [| 4; 0 |] in
  Alcotest.(check int) "subset size" 2 (Multiview.n_instances s);
  Alcotest.(check (array int)) "labels follow" [| 1; 0 |] s.Multiview.labels;
  check_vec "columns follow" (Mat.col t.Multiview.views.(0) 4) (Mat.col s.Multiview.views.(0) 0)

let test_concat () =
  let t = sample () in
  let c = Multiview.concat_features t in
  Alcotest.(check (pair int int)) "stacked" (5, 5) (Mat.dims c);
  check_vec "first view on top" (Mat.col t.Multiview.views.(0) 2) (Array.sub (Mat.col c 2) 0 3)

let test_validation () =
  let r = rng () in
  Alcotest.check_raises "instance mismatch"
    (Invalid_argument "Multiview.create: instance count mismatch") (fun () ->
      ignore (Multiview.create [| random_mat r 3 5; random_mat r 2 4 |] (Array.make 5 0)));
  Alcotest.check_raises "label mismatch"
    (Invalid_argument "Multiview.create: label count mismatch") (fun () ->
      ignore (Multiview.create [| random_mat r 3 5 |] (Array.make 4 0)));
  Alcotest.check_raises "no views" (Invalid_argument "Multiview.create: no views") (fun () ->
      ignore (Multiview.create [||] [||]))

let () =
  Alcotest.run "multiview"
    [ ( "container",
        [ Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "validation" `Quick test_validation ] ) ]
