open Test_support

let shared_signal_views r ~m ~n ~noise =
  Array.init m (fun p ->
      ignore p;
      Mat.create 4 n)
  |> fun views ->
  for j = 0 to n - 1 do
    let s = Rng.gaussian r in
    Array.iter
      (fun v ->
        Mat.set v 0 j (s +. (noise *. Rng.gaussian r));
        for i = 1 to 3 do
          Mat.set v i j (Rng.gaussian r)
        done)
      views
  done;
  views

let test_finds_common_variate () =
  let r = rng () in
  let views = shared_signal_views r ~m:3 ~n:1500 ~noise:0.2 in
  let model = Cca_maxvar.fit ~eps:1e-3 ~r:1 views in
  (* The common variate must track the shared signal: check agreement of the
     three per-view projections. *)
  let z0 = Mat.row (Cca_maxvar.transform_view model 0 views.(0)) 0 in
  let z1 = Mat.row (Cca_maxvar.transform_view model 1 views.(1)) 0 in
  check_true "views agree" (Float.abs (Stats.pearson z0 z1) > 0.9)

let test_variates_orthonormal () =
  let r = rng () in
  let views = shared_signal_views r ~m:3 ~n:300 ~noise:0.5 in
  let model = Cca_maxvar.fit ~r:3 views in
  let z = Cca_maxvar.common_variates model in
  check_mat ~eps:1e-6 "zᵀz = I" (Mat.identity 3) (Mat.tgram z)

let test_score_bounds () =
  (* Each eigenvalue of Σ Pₚ lies in [0, m]. *)
  let r = rng () in
  let views = shared_signal_views r ~m:3 ~n:400 ~noise:0.4 in
  let model = Cca_maxvar.fit ~r:4 views in
  Array.iter
    (fun s -> check_true "score in [0, m]" (s >= -1e-9 && s <= 3.0001))
    (Cca_maxvar.score model)

let test_scores_sorted () =
  let r = rng () in
  let views = shared_signal_views r ~m:3 ~n:400 ~noise:0.4 in
  let s = Cca_maxvar.score (Cca_maxvar.fit ~r:4 views) in
  for i = 1 to Array.length s - 1 do
    check_true "descending" (s.(i) <= s.(i - 1) +. 1e-9)
  done

let test_transform_shape () =
  let r = rng () in
  let views = shared_signal_views r ~m:3 ~n:100 ~noise:0.4 in
  let model = Cca_maxvar.fit ~r:2 views in
  Alcotest.(check (pair int int)) "m·r rows" (6, 100) (Mat.dims (Cca_maxvar.transform model views))

let test_two_views_matches_cca () =
  (* With two views, MAXVAR's leading variate must correlate with the CCA
     canonical pair almost perfectly. *)
  let r = rng () in
  let views = shared_signal_views r ~m:2 ~n:2000 ~noise:0.2 in
  let maxvar = Cca_maxvar.fit ~eps:1e-3 ~r:1 views in
  let cca = Cca.fit ~eps:1e-3 ~r:1 views.(0) views.(1) in
  let z_mv = Mat.row (Cca_maxvar.transform_view maxvar 0 views.(0)) 0 in
  let z_cca = Mat.row (Cca.transform1 cca views.(0)) 0 in
  check_true "agrees with CCA" (Float.abs (Stats.pearson z_mv z_cca) > 0.99)

let test_errors () =
  let r = rng () in
  Alcotest.check_raises "one view" (Invalid_argument "Cca_maxvar.fit: need at least two views")
    (fun () -> ignore (Cca_maxvar.fit ~r:1 [| random_mat r 2 5 |]))

let () =
  Alcotest.run "cca_maxvar"
    [ ( "solution",
        [ Alcotest.test_case "common variate" `Quick test_finds_common_variate;
          Alcotest.test_case "orthonormal variates" `Quick test_variates_orthonormal;
          Alcotest.test_case "score bounds" `Quick test_score_bounds;
          Alcotest.test_case "scores sorted" `Quick test_scores_sorted;
          Alcotest.test_case "two views = CCA" `Quick test_two_views_matches_cca ] );
      ( "interface",
        [ Alcotest.test_case "shape" `Quick test_transform_shape;
          Alcotest.test_case "errors" `Quick test_errors ] ) ]
