open Test_support

let test_sqrt_known () =
  let a = Mat.diag_of_vec [| 4.; 9. |] in
  check_mat ~eps:1e-10 "sqrt diag" (Mat.diag_of_vec [| 2.; 3. |]) (Matfun.sqrt_psd a)

let test_sqrt_squares () =
  let r = rng () in
  for _ = 1 to 8 do
    let a = random_spd r 6 in
    let s = Matfun.sqrt_psd a in
    check_mat ~eps:1e-7 "S·S = A" a (Mat.mul s s);
    check_true "sqrt symmetric" (Mat.is_symmetric ~eps:1e-8 s)
  done

let test_inv_sqrt_whitens () =
  let r = rng () in
  let a = random_spd r 7 in
  let w = Matfun.inv_sqrt_psd a in
  check_mat ~eps:1e-6 "W A W = I" (Mat.identity 7) (Mat.mul w (Mat.mul a w))

let test_inv_psd () =
  let r = rng () in
  let a = random_spd r 6 in
  check_mat ~eps:1e-7 "A⁻¹A = I" (Mat.identity 6) (Mat.mul (Matfun.inv_psd a) a)

let test_inv_sqrt_floor () =
  (* Rank-deficient input must not blow up thanks to the eigenvalue floor. *)
  let a = Mat.of_arrays [| [| 1.; 1. |]; [| 1.; 1. |] |] in
  let w = Matfun.inv_sqrt_psd a in
  check_true "finite" (Array.for_all Float.is_finite (Mat.row w 0));
  check_true "finite" (Array.for_all Float.is_finite (Mat.row w 1))

let test_pinv_square () =
  let r = rng () in
  let a = Mat.add_scaled_identity 1. (random_mat r 5 5) in
  check_mat ~eps:1e-7 "pinv = inverse when invertible" (Lu.inverse (Lu.decompose a))
    (Matfun.pinv a)

let test_pinv_moore_penrose () =
  let r = rng () in
  let a = random_mat r 7 4 in
  let p = Matfun.pinv a in
  (* A A⁺ A = A and A⁺ A A⁺ = A⁺. *)
  check_mat ~eps:1e-7 "A A+ A = A" a (Mat.mul a (Mat.mul p a));
  check_mat ~eps:1e-7 "A+ A A+ = A+" p (Mat.mul p (Mat.mul a p));
  check_true "A A+ symmetric" (Mat.is_symmetric ~eps:1e-7 (Mat.mul a p));
  check_true "A+ A symmetric" (Mat.is_symmetric ~eps:1e-7 (Mat.mul p a))

let test_pinv_rank_deficient () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  let p = Matfun.pinv a in
  check_mat ~eps:1e-8 "A A+ A = A (singular)" a (Mat.mul a (Mat.mul p a))

let test_apply_spectral () =
  let r = rng () in
  let a = random_spd r 5 in
  check_mat ~eps:1e-7 "identity function" a (Matfun.apply_spectral (fun l -> l) a);
  let sq = Matfun.apply_spectral (fun l -> l *. l) a in
  check_mat ~eps:1e-6 "square function = A·A" (Mat.mul a a) sq

let prop_inv_sqrt_spd =
  qtest ~count:40 "inv_sqrt output symmetric" gen_spd (fun a ->
      Mat.is_symmetric ~eps:1e-7 (Matfun.inv_sqrt_psd a))

let prop_whitening =
  qtest ~count:40 "whitening property" gen_spd (fun a ->
      let n = fst (Mat.dims a) in
      let w = Matfun.inv_sqrt_psd a in
      Mat.equal ~eps:1e-5 (Mat.identity n) (Mat.mul w (Mat.mul a w)))

let () =
  Alcotest.run "matfun"
    [ ( "sqrt",
        [ Alcotest.test_case "known" `Quick test_sqrt_known;
          Alcotest.test_case "squares" `Quick test_sqrt_squares;
          Alcotest.test_case "inv sqrt whitens" `Quick test_inv_sqrt_whitens;
          Alcotest.test_case "floor" `Quick test_inv_sqrt_floor;
          Alcotest.test_case "inv psd" `Quick test_inv_psd ] );
      ( "pinv",
        [ Alcotest.test_case "square" `Quick test_pinv_square;
          Alcotest.test_case "moore-penrose" `Quick test_pinv_moore_penrose;
          Alcotest.test_case "rank deficient" `Quick test_pinv_rank_deficient;
          Alcotest.test_case "apply spectral" `Quick test_apply_spectral ] );
      ("properties", [ prop_inv_sqrt_spd; prop_whitening ]) ]
