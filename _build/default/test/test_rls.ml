open Test_support

(* Linearly separable blobs along the first coordinate. *)
let blobs r ~n =
  let x =
    Mat.init 3 n (fun i j ->
        let label = if j mod 2 = 0 then 1. else -1. in
        if i = 0 then (2. *. label) +. (0.3 *. Rng.gaussian r) else Rng.gaussian r)
  in
  let y = Array.init n (fun j -> j mod 2) in
  (x, y)

let test_separable () =
  let r = rng () in
  let x, y = blobs r ~n:100 in
  let model = Rls.fit x y in
  Alcotest.(check int) "classes" 2 (Rls.n_classes model);
  check_float "train accuracy" 1. (Eval.accuracy (Rls.predict model x) y)

let test_generalizes () =
  let r = rng () in
  let x, y = blobs r ~n:200 in
  let xt, yt = blobs r ~n:200 in
  let model = Rls.fit x y in
  check_true "test accuracy > 0.95" (Eval.accuracy (Rls.predict model xt) yt > 0.95)

let test_bias_handles_offset () =
  (* Classes split at x = 10, far from the origin: only works with a bias. *)
  let r = rng () in
  let n = 120 in
  let y = Array.init n (fun j -> j mod 2) in
  let x =
    Mat.init 1 n (fun _ j -> 10. +. (if y.(j) = 0 then -0.5 else 0.5) +. (0.1 *. Rng.gaussian r))
  in
  let model = Rls.fit x y in
  check_true "offset separated" (Eval.accuracy (Rls.predict model x) y > 0.95)

let test_multiclass () =
  let r = rng () in
  let n = 150 in
  let y = Array.init n (fun j -> j mod 3) in
  let x =
    Mat.init 3 n (fun i j -> (if i = y.(j) then 3. else 0.) +. (0.4 *. Rng.gaussian r))
  in
  let model = Rls.fit x y in
  Alcotest.(check int) "3 classes" 3 (Rls.n_classes model);
  check_true "multiclass accuracy" (Eval.accuracy (Rls.predict model x) y > 0.95)

let test_scores_shape () =
  let r = rng () in
  let x, y = blobs r ~n:40 in
  let model = Rls.fit x y in
  Alcotest.(check (pair int int)) "C × N" (2, 40) (Mat.dims (Rls.scores model x))

let test_score_averaging () =
  (* predict_scores over a summed score matrix = the AVG combination rule. *)
  let r = rng () in
  let x, y = blobs r ~n:60 in
  let m1 = Rls.fit x y and m2 = Rls.fit x y in
  let s = Mat.add (Rls.scores m1 x) (Rls.scores m2 x) in
  Alcotest.(check (array int)) "same as single model" (Rls.predict m1 x) (Rls.predict_scores s)

let test_strong_regularization_shrinks () =
  (* Huge gamma shrinks the decision values towards zero (argmax itself is
     scale invariant, so accuracy need not collapse). *)
  let r = rng () in
  let n = 90 in
  let y = Array.init n (fun j -> if j mod 3 = 0 then 1 else 0) in
  let x = Mat.init 2 n (fun _ j -> float_of_int y.(j) +. (0.1 *. Rng.gaussian r)) in
  let weak = Rls.fit ~gamma:1e-3 x y in
  let strong = Rls.fit ~gamma:1e6 x y in
  let magnitude m = Mat.max_abs (Rls.scores m x) in
  check_true "scores shrink" (magnitude strong < 1e-3 *. magnitude weak)

let test_errors () =
  Alcotest.check_raises "label mismatch" (Invalid_argument "Rls.fit: label count mismatch")
    (fun () -> ignore (Rls.fit (Mat.create 2 3) [| 0 |]))

let () =
  Alcotest.run "rls"
    [ ( "fitting",
        [ Alcotest.test_case "separable" `Quick test_separable;
          Alcotest.test_case "generalizes" `Quick test_generalizes;
          Alcotest.test_case "bias" `Quick test_bias_handles_offset;
          Alcotest.test_case "multiclass" `Quick test_multiclass ] );
      ( "scores",
        [ Alcotest.test_case "shape" `Quick test_scores_shape;
          Alcotest.test_case "averaging" `Quick test_score_averaging;
          Alcotest.test_case "regularization" `Quick test_strong_regularization_shrinks ] );
      ("errors", [ Alcotest.test_case "mismatch" `Quick test_errors ]) ]
