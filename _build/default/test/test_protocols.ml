(* Protocol-level tests on miniature worlds: results must be deterministic
   per seed, vary across seeds, and every method must run end to end. *)

open Test_support

let tiny_world () =
  Synth.make_world ~seed:21
    { Synth.default with
      Synth.dims = [| 16; 16; 16 |];
      shared_topics = 4;
      topics_per_class = 2;
      features_per_topic = 3;
      pair_confounders = 2;
      clutter_topics = 1;
      clutter_strength = 1.0 }

let linear_config () =
  { (Linear_protocol.default_config (tiny_world ())) with
    Linear_protocol.n_pool = 300;
    n_labeled = 40;
    transductive_cap = 300 }

let test_linear_all_methods_run () =
  let config = linear_config () in
  let st = Linear_protocol.prepare config ~seed:0 in
  List.iter
    (fun meth ->
      let res = Linear_protocol.run_prepared st meth ~r:6 in
      let name = Spec.linear_name meth in
      check_true (name ^ " val in [0,1]")
        (res.Linear_protocol.val_acc >= 0. && res.Linear_protocol.val_acc <= 1.);
      check_true (name ^ " test in [0,1]")
        (res.Linear_protocol.test_acc >= 0. && res.Linear_protocol.test_acc <= 1.))
    Spec.all_linear

let test_linear_deterministic () =
  let config = linear_config () in
  let a = Linear_protocol.run config Spec.Tcca ~r:6 ~seed:3 in
  let b = Linear_protocol.run config Spec.Tcca ~r:6 ~seed:3 in
  check_float "same seed, same result" a.Linear_protocol.test_acc b.Linear_protocol.test_acc

let test_linear_seed_variation () =
  let config = linear_config () in
  let accs =
    List.init 4 (fun seed -> (Linear_protocol.run config Spec.Cat ~r:6 ~seed).Linear_protocol.test_acc)
  in
  check_true "seeds differ" (List.length (List.sort_uniq compare accs) > 1)

let test_linear_beats_chance () =
  let config = linear_config () in
  let accs =
    Array.init 2 (fun seed ->
        let st = Linear_protocol.prepare config ~seed in
        (Linear_protocol.run_prepared st Spec.Tcca ~r:9).Linear_protocol.test_acc)
  in
  check_true
    (Printf.sprintf "TCCA beats chance (%.3f)" (Stats.mean accs))
    (Stats.mean accs > 0.55)

let test_knn_protocol_runs () =
  let world = tiny_world () in
  let config =
    { (Knn_protocol.default_config ~per_class:5 world) with
      Knn_protocol.n_train = 200;
      n_test = 200;
      transductive_cap = 300 }
  in
  let st = Knn_protocol.prepare config ~seed:0 in
  List.iter
    (fun meth ->
      let res = Knn_protocol.run_prepared st meth ~r:6 in
      check_true
        (Spec.linear_name meth ^ " k in candidates")
        (List.mem res.Knn_protocol.chosen_k Knn.default_k_candidates))
    Spec.all_linear

let test_kernel_protocol_runs () =
  let world = tiny_world () in
  let config = Kernel_protocol.default_config ~per_class:5 ~n_subset:60 world in
  let st = Kernel_protocol.prepare config ~seed:0 in
  List.iter
    (fun meth ->
      let res = Kernel_protocol.run_prepared st meth ~r:6 in
      check_true
        (Spec.kernel_name meth ^ " in [0,1]")
        (res.Kernel_protocol.test_acc >= 0. && res.Kernel_protocol.test_acc <= 1.))
    Spec.all_kernel

let test_sweep_structure () =
  let config = linear_config () in
  let curves =
    Sweep.sweep_prepared
      ~prepare:(fun ~seed -> Linear_protocol.prepare config ~seed)
      ~run:(fun st meth ~r ->
        let res = Linear_protocol.run_prepared st meth ~r in
        (res.Linear_protocol.val_acc, res.Linear_protocol.test_acc))
      ~label:Spec.linear_name
      ~methods:[ Spec.Cat; Spec.Tcca ]
      ~rs:[| 3; 6 |] ~seeds:2
  in
  Alcotest.(check int) "two curves" 2 (List.length curves);
  List.iter
    (fun c ->
      Alcotest.(check int) "two points" 2 (Array.length c.Sweep.points);
      Array.iter
        (fun p -> check_true "std >= 0" (p.Sweep.test_std >= 0.))
        c.Sweep.points)
    curves;
  (* Figure and table render without raising. *)
  check_true "figure renders" (String.length (Sweep.figure ~title:"t" curves) > 0);
  check_true "table renders" (String.length (Sweep.table ~title:"t" curves) > 0)

let test_four_view_protocol () =
  (* Nothing in the pipeline is specialized to three views: a 4-view world
     must run end to end (4-way covariance tensor, 6 CCA pairs, …). *)
  let world =
    Synth.make_world ~seed:31
      { Synth.default with
        Synth.dims = [| 10; 10; 10; 10 |];
        shared_topics = 4;
        topics_per_class = 2;
        features_per_topic = 3;
        pair_confounders = 1;
        clutter_topics = 1;
        clutter_strength = 1.0 }
  in
  let config =
    { (Linear_protocol.default_config world) with
      Linear_protocol.n_pool = 250;
      n_labeled = 40;
      transductive_cap = 250 }
  in
  let st = Linear_protocol.prepare config ~seed:0 in
  List.iter
    (fun meth ->
      let res = Linear_protocol.run_prepared st meth ~r:8 in
      check_true
        (Spec.linear_name meth ^ " (4 views) in [0,1]")
        (res.Linear_protocol.test_acc >= 0. && res.Linear_protocol.test_acc <= 1.))
    Spec.all_linear

let test_spec_pairs () =
  Alcotest.(check (list (pair int int))) "3 views" [ (0, 1); (0, 2); (1, 2) ] (Spec.view_pairs 3);
  Alcotest.(check (list (pair int int))) "2 views" [ (0, 1) ] (Spec.view_pairs 2)

let () =
  Alcotest.run "protocols"
    [ ( "linear",
        [ Alcotest.test_case "all methods" `Slow test_linear_all_methods_run;
          Alcotest.test_case "deterministic" `Quick test_linear_deterministic;
          Alcotest.test_case "seed variation" `Quick test_linear_seed_variation;
          Alcotest.test_case "beats chance" `Quick test_linear_beats_chance ] );
      ( "knn + kernel",
        [ Alcotest.test_case "knn protocol" `Slow test_knn_protocol_runs;
          Alcotest.test_case "kernel protocol" `Slow test_kernel_protocol_runs ] );
      ( "sweep",
        [ Alcotest.test_case "structure" `Quick test_sweep_structure;
          Alcotest.test_case "pairs" `Quick test_spec_pairs ] );
      ( "generality",
        [ Alcotest.test_case "four views" `Slow test_four_view_protocol ] ) ]
