open Test_support

(* Two views with a shared non-linear (radial) structure. *)
let ring_views r ~n =
  let x1 = Mat.create 2 n and x2 = Mat.create 2 n in
  for j = 0 to n - 1 do
    let radius = if j mod 2 = 0 then 1. else 3. in
    let a1 = Rng.float r (2. *. Float.pi) and a2 = Rng.float r (2. *. Float.pi) in
    Mat.set x1 0 j ((radius *. cos a1) +. (0.1 *. Rng.gaussian r));
    Mat.set x1 1 j ((radius *. sin a1) +. (0.1 *. Rng.gaussian r));
    Mat.set x2 0 j ((radius *. cos a2) +. (0.1 *. Rng.gaussian r));
    Mat.set x2 1 j ((radius *. sin a2) +. (0.1 *. Rng.gaussian r))
  done;
  (x1, x2, Array.init n (fun j -> j mod 2))

let grams r ~n =
  let x1, x2, labels = ring_views r ~n in
  let k1 = Kernel.gram (Kernel.fit (Kernel.Exp_distance Distance.L2) x1) in
  let k2 = Kernel.gram (Kernel.fit (Kernel.Exp_distance Distance.L2) x2) in
  (k1, k2, labels)

let test_correlations_bounded () =
  let r = rng () in
  let k1, k2, _ = grams r ~n:60 in
  let model = Kcca.fit ~eps:1e-2 ~r:5 k1 k2 in
  Array.iter
    (fun rho -> check_true "in [0, 1.01]" (rho >= 0. && rho <= 1.01))
    (Kcca.correlations model)

let test_nonlinear_structure_found () =
  (* Radius is invisible to linear CCA on these coordinates, but the RBF-like
     kernel exposes it: KCCA embedding should separate the rings. *)
  let r = rng () in
  let k1, k2, labels = grams r ~n:120 in
  let model = Kcca.fit ~eps:1e-2 ~r:4 k1 k2 in
  let z = Kcca.transform_train model in
  let knn = Knn.fit ~k:3 z labels in
  check_true "rings separated" (Eval.accuracy (Knn.predict knn z) labels > 0.9)

let test_transform_shapes () =
  let r = rng () in
  let k1, k2, _ = grams r ~n:40 in
  let model = Kcca.fit ~r:3 k1 k2 in
  Alcotest.(check int) "r" 3 (Kcca.r model);
  Alcotest.(check (pair int int)) "2r × N" (6, 40) (Mat.dims (Kcca.transform_train model));
  let a1, a2 = Kcca.dual_weights model in
  Alcotest.(check (pair int int)) "duals" (40, 3) (Mat.dims a1);
  Alcotest.(check (pair int int)) "duals" (40, 3) (Mat.dims a2)

let test_out_of_sample_matches_train () =
  (* Embedding the training columns through the cross-kernel path must match
     transform_train. *)
  let r = rng () in
  let x1, x2, _ = ring_views r ~n:50 in
  let f1 = Kernel.fit (Kernel.Exp_distance Distance.L2) x1 in
  let f2 = Kernel.fit (Kernel.Exp_distance Distance.L2) x2 in
  let model = Kcca.fit ~eps:1e-2 ~r:3 (Kernel.gram f1) (Kernel.gram f2) in
  let via_cross = Kcca.transform model (Kernel.cross f1 x1) (Kernel.cross f2 x2) in
  check_mat ~eps:1e-8 "train = cross(train)" (Kcca.transform_train model) via_cross

let test_errors () =
  Alcotest.check_raises "not square" (Invalid_argument "Kcca.fit: kernels must be square")
    (fun () -> ignore (Kcca.fit ~r:1 (Mat.create 3 2) (Mat.create 3 3)));
  Alcotest.check_raises "size mismatch" (Invalid_argument "Kcca.fit: kernel size mismatch")
    (fun () -> ignore (Kcca.fit ~r:1 (Mat.identity 3) (Mat.identity 4)))

let () =
  Alcotest.run "kcca"
    [ ( "statistics",
        [ Alcotest.test_case "bounded" `Quick test_correlations_bounded;
          Alcotest.test_case "nonlinear structure" `Quick test_nonlinear_structure_found ] );
      ( "interface",
        [ Alcotest.test_case "shapes" `Quick test_transform_shapes;
          Alcotest.test_case "out of sample" `Quick test_out_of_sample_matches_train;
          Alcotest.test_case "errors" `Quick test_errors ] ) ]
