open Test_support

let test_best () =
  let arg, score = Validate.best (fun x -> -.Float.abs (x -. 3.)) [ 1.; 2.; 3.; 4. ] in
  check_float "argmax" 3. arg;
  check_float "score" 0. score

let test_best_first_wins_ties () =
  let arg, _ = Validate.best (fun _ -> 1.) [ 10; 20; 30 ] in
  Alcotest.(check int) "first" 10 arg

let test_best_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Validate.best: no candidates") (fun () ->
      ignore (Validate.best (fun _ -> 0.) ([] : int list)))

let test_best_indexed () =
  let idx, score = Validate.best_indexed (fun i -> float_of_int (-abs (i - 2))) 5 in
  Alcotest.(check int) "index" 2 idx;
  check_float "score" 0. score

let test_log_grid () =
  let g = Validate.log_grid (-2) 1 in
  Alcotest.(check int) "length" 4 (List.length g);
  check_float ~eps:1e-12 "first" 0.01 (List.nth g 0);
  check_float ~eps:1e-12 "last" 10. (List.nth g 3)

let test_log_grid_base () =
  let g = Validate.log_grid ~base:2. 0 3 in
  check_float "2^3" 8. (List.nth g 3)

let test_log_grid_invalid () =
  Alcotest.check_raises "empty range" (Invalid_argument "Validate.log_grid: empty range")
    (fun () -> ignore (Validate.log_grid 3 1))

let () =
  Alcotest.run "validate"
    [ ( "selection",
        [ Alcotest.test_case "best" `Quick test_best;
          Alcotest.test_case "ties" `Quick test_best_first_wins_ties;
          Alcotest.test_case "empty" `Quick test_best_empty;
          Alcotest.test_case "indexed" `Quick test_best_indexed ] );
      ( "grids",
        [ Alcotest.test_case "log grid" `Quick test_log_grid;
          Alcotest.test_case "base" `Quick test_log_grid_base;
          Alcotest.test_case "invalid" `Quick test_log_grid_invalid ] ) ]
