open Test_support

let test_reconstruction () =
  let r = rng () in
  for _ = 1 to 10 do
    let a = random_mat r 8 5 in
    let f = Qr.decompose a in
    check_mat ~eps:1e-8 "Q·R = A" a (Mat.mul (Qr.q_thin f) (Qr.r f))
  done

let test_q_orthonormal () =
  let r = rng () in
  let a = random_mat r 9 4 in
  let q = Qr.q_thin (Qr.decompose a) in
  check_mat ~eps:1e-8 "QᵀQ = I" (Mat.identity 4) (Mat.tgram q)

let test_r_upper_triangular () =
  let rg = rng () in
  let a = random_mat rg 6 6 in
  let r = Qr.r (Qr.decompose a) in
  for i = 0 to 5 do
    for j = 0 to i - 1 do
      check_float "lower zero" 0. (Mat.get r i j)
    done
  done

let test_least_squares_exact () =
  (* Consistent system: LS must recover the exact solution. *)
  let r = rng () in
  let a = random_mat r 8 4 in
  let x_true = random_vec r 4 in
  let b = Mat.mul_vec a x_true in
  let x = Qr.solve_ls (Qr.decompose a) b in
  check_vec ~eps:1e-8 "exact recovery" x_true x

let test_least_squares_normal_equations () =
  (* LS residual must be orthogonal to the column space. *)
  let r = rng () in
  let a = random_mat r 10 3 in
  let b = random_vec r 10 in
  let x = Qr.solve_ls (Qr.decompose a) b in
  let residual = Vec.sub (Mat.mul_vec a x) b in
  let against = Mat.tmul_vec a residual in
  check_true "AᵀR = 0" (Vec.norm against < 1e-8)

let test_wide_rejected () =
  Alcotest.check_raises "wide rejected"
    (Invalid_argument "Qr.decompose: requires rows >= cols") (fun () ->
      ignore (Qr.decompose (Mat.create 2 3)))

let test_orthonormalize () =
  let r = rng () in
  let q = Qr.orthonormalize (random_mat r 12 5) in
  check_mat ~eps:1e-8 "orthonormal" (Mat.identity 5) (Mat.tgram q)

let test_least_squares_matrix () =
  let r = rng () in
  let a = random_mat r 7 3 in
  let x_true = random_mat r 3 2 in
  let b = Mat.mul a x_true in
  check_mat ~eps:1e-8 "matrix LS" x_true (Qr.least_squares a b)

let prop_preserves_norms =
  qtest ~count:50 "‖Qx‖ = ‖x‖ for Q columns combinations"
    QCheck2.Gen.(
      pair (int_range 2 8) (int_range 1 4) >>= fun (m, n) ->
      let n = min m n in
      pair
        (array_size (return (m * n)) (float_range (-3.) 3.))
        (array_size (return n) (float_range (-3.) 3.))
      >|= fun (a, x) -> (Mat.unsafe_of_flat ~rows:m ~cols:n a, x))
    (fun (a, x) ->
      let q = Qr.orthonormalize a in
      (* Orthonormalization can produce fewer effective directions when a is
         rank deficient, but Q is always orthonormal, so norms are preserved. *)
      Float.abs (Vec.norm (Mat.mul_vec q x) -. Vec.norm x) < 1e-6 *. (1. +. Vec.norm x))

let () =
  Alcotest.run "qr"
    [ ( "factorization",
        [ Alcotest.test_case "reconstruction" `Quick test_reconstruction;
          Alcotest.test_case "orthonormal Q" `Quick test_q_orthonormal;
          Alcotest.test_case "triangular R" `Quick test_r_upper_triangular;
          Alcotest.test_case "orthonormalize" `Quick test_orthonormalize ] );
      ( "least squares",
        [ Alcotest.test_case "exact" `Quick test_least_squares_exact;
          Alcotest.test_case "normal equations" `Quick test_least_squares_normal_equations;
          Alcotest.test_case "matrix rhs" `Quick test_least_squares_matrix ] );
      ("errors", [ Alcotest.test_case "wide" `Quick test_wide_rejected ]);
      ("properties", [ prop_preserves_norms ]) ]
