open Test_support

let sample_views () =
  let w = Synth.make_world ~seed:3 Synth.default in
  let data = Synth.sample w (rng ()) ~n:300 in
  data.Multiview.views

let fit_and_project reducer ~r views =
  match reducer with
  | Reducer.Projective { fit; _ } -> (fit r views).Reducer.project views
  | Reducer.Transductive { fit_transform; _ } -> fit_transform r views

let test_names () =
  Alcotest.(check string) "tcca" "tcca" (Reducer.name (Reducer.tcca ()));
  Alcotest.(check string) "cca pair" "cca(0,2)" (Reducer.name (Reducer.cca_pair (0, 2)));
  Alcotest.(check string) "dse" "dse" (Reducer.name (Reducer.dse ()));
  Alcotest.(check string) "cat" "cat" (Reducer.name Reducer.concat_views)

let test_projective_shapes () =
  let views = sample_views () in
  let cases =
    [ (Reducer.tcca (), 12, 12);        (* 3 views × 4 *)
      (Reducer.cca_ls (), 12, 12);
      (Reducer.cca_maxvar (), 12, 12);
      (Reducer.cca_pair (0, 1), 12, 12) (* 2 × 6 *) ]
  in
  List.iter
    (fun (reducer, r, expected_rows) ->
      let z = fit_and_project reducer ~r views in
      Alcotest.(check int)
        (Printf.sprintf "%s rows" (Reducer.name reducer))
        expected_rows (fst (Mat.dims z));
      Alcotest.(check int) "cols" 300 (snd (Mat.dims z)))
    cases

let test_transductive_shapes () =
  let views = sample_views () in
  List.iter
    (fun reducer ->
      let z = fit_and_project reducer ~r:6 views in
      Alcotest.(check (pair int int))
        (Reducer.name reducer)
        (6, 300) (Mat.dims z))
    [ Reducer.dse (); Reducer.ssmvd () ]

let test_single_view () =
  let views = sample_views () in
  let z = fit_and_project (Reducer.single_view 1) ~r:99 views in
  check_mat "identity on view 1" views.(1) z

let test_concat () =
  let views = sample_views () in
  let z = fit_and_project Reducer.concat_views ~r:1 views in
  Alcotest.(check int) "all features stacked" 120 (fst (Mat.dims z))

let test_pca_per_view () =
  let views = sample_views () in
  let z = fit_and_project Reducer.pca_per_view ~r:9 views in
  Alcotest.(check (pair int int)) "3 × 3" (9, 300) (Mat.dims z)

let test_projector_generalizes () =
  (* A projector fitted on one set embeds a different set consistently. *)
  let w = Synth.make_world ~seed:3 Synth.default in
  let fit_data = Synth.sample w (rng ()) ~n:300 in
  let new_data = Synth.sample w (Rng.create 99) ~n:40 in
  match Reducer.tcca () with
  | Reducer.Projective { fit; _ } ->
    let projector = fit 6 fit_data.Multiview.views in
    let z = projector.Reducer.project new_data.Multiview.views in
    Alcotest.(check (pair int int)) "new data embedded" (6, 40) (Mat.dims z)
  | Reducer.Transductive _ -> Alcotest.fail "tcca should be projective"

let () =
  Alcotest.run "reducer"
    [ ( "interface",
        [ Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "projective shapes" `Quick test_projective_shapes;
          Alcotest.test_case "transductive shapes" `Quick test_transductive_shapes;
          Alcotest.test_case "single view" `Quick test_single_view;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "pca per view" `Quick test_pca_per_view;
          Alcotest.test_case "generalization" `Quick test_projector_generalizes ] ) ]
