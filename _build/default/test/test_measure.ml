let check_true msg condition = Alcotest.(check bool) msg true condition

let test_returns_value () =
  let v, _ = Measure.run (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk result" 42 v

let test_time_nonnegative () =
  let _, s = Measure.run (fun () -> ()) in
  check_true "seconds >= 0" (s.Measure.seconds >= 0.);
  check_true "alloc >= 0" (s.Measure.allocated_mb >= 0.);
  check_true "live >= 0" (s.Measure.live_mb > 0.)

let test_allocation_tracked () =
  (* Allocating ~8 MB must show up in the allocation counter. *)
  let _, s =
    Measure.run (fun () ->
        let keep = ref [] in
        for _ = 1 to 10 do
          keep := Array.make 100_000 0. :: !keep
        done;
        List.length !keep)
  in
  check_true
    (Printf.sprintf "8MB visible (got %.1f MB)" s.Measure.allocated_mb)
    (s.Measure.allocated_mb > 6.)

let test_busy_work_takes_time () =
  let t = Measure.time (fun () ->
      let acc = ref 0. in
      for i = 1 to 3_000_000 do
        acc := !acc +. sqrt (float_of_int i)
      done;
      !acc)
  in
  check_true "measurable time" (t > 0.)

let () =
  Alcotest.run "measure"
    [ ( "sampling",
        [ Alcotest.test_case "value" `Quick test_returns_value;
          Alcotest.test_case "non-negative" `Quick test_time_nonnegative;
          Alcotest.test_case "allocation" `Quick test_allocation_tracked;
          Alcotest.test_case "time" `Quick test_busy_work_takes_time ] ) ]
