open Test_support

let test_center_views () =
  let r = rng () in
  let views = [| random_mat r 4 20; random_mat r 3 20 |] in
  let centered, _ = Preprocess.center_views views in
  Array.iter
    (fun v ->
      Array.iter (fun m -> check_float ~eps:1e-10 "zero row mean" 0. m) (Mat.row_means v))
    centered

let test_center_frozen () =
  (* Means frozen on one set are applied verbatim to another. *)
  let r = rng () in
  let train = [| random_mat r 3 10 |] in
  let test = [| random_mat r 3 6 |] in
  let centering = Preprocess.fit_center train in
  let test_centered = Preprocess.apply_center centering test in
  let means = Preprocess.means centering in
  check_mat ~eps:1e-12 "subtraction" (Mat.sub_col_vec test.(0) means.(0)) test_centered.(0)

let test_normalize_view_scale () =
  let r = rng () in
  let v = random_mat r 5 12 in
  let nv = Preprocess.normalize_view_scale v in
  let _, n = Mat.dims nv in
  let total = ref 0. in
  for j = 0 to n - 1 do
    total := !total +. Vec.norm (Mat.col nv j)
  done;
  check_float ~eps:1e-9 "mean column norm 1" 1. (!total /. float_of_int n)

let test_normalize_zero_view () =
  let z = Mat.create 3 4 in
  check_mat "zero view unchanged" z (Preprocess.normalize_view_scale z)

let test_unit_columns () =
  let r = rng () in
  let v = random_mat r 4 8 in
  let u = Preprocess.unit_columns v in
  for j = 0 to 7 do
    check_float ~eps:1e-10 "unit column" 1. (Vec.norm (Mat.col u j))
  done

let test_append_bias () =
  let r = rng () in
  let v = random_mat r 3 5 in
  let b = Preprocess.append_bias v in
  Alcotest.(check (pair int int)) "one extra row" (4, 5) (Mat.dims b);
  check_vec "bias row ones" [| 1.; 1.; 1.; 1.; 1. |] (Mat.row b 3)

let () =
  Alcotest.run "preprocess"
    [ ( "centering",
        [ Alcotest.test_case "center views" `Quick test_center_views;
          Alcotest.test_case "frozen means" `Quick test_center_frozen ] );
      ( "scaling",
        [ Alcotest.test_case "view scale" `Quick test_normalize_view_scale;
          Alcotest.test_case "zero view" `Quick test_normalize_zero_view;
          Alcotest.test_case "unit columns" `Quick test_unit_columns;
          Alcotest.test_case "bias" `Quick test_append_bias ] ) ]
