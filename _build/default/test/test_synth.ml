open Test_support

let world () = Synth.make_world ~seed:5 Synth.default

let test_shapes () =
  let w = world () in
  let r = rng () in
  let data = Synth.sample w r ~n:50 in
  Alcotest.(check int) "instances" 50 (Multiview.n_instances data);
  Alcotest.(check (array int)) "dims" Synth.default.Synth.dims (Multiview.dims data);
  Array.iter
    (fun y -> check_true "label range" (y >= 0 && y < Synth.default.Synth.n_classes))
    data.Multiview.labels

let test_binary_values () =
  let w = world () in
  let data = Synth.sample w (rng ()) ~n:30 in
  Array.iter
    (fun view ->
      Array.iter (fun v -> check_true "binary" (v = 0. || v = 1.)) (view : Mat.t).Mat.data)
    data.Multiview.views

let test_continuous_nonnegative () =
  let cfg = { Synth.default with Synth.binary = false } in
  let w = Synth.make_world ~seed:5 cfg in
  let data = Synth.sample w (rng ()) ~n:30 in
  Array.iter
    (fun view -> Array.iter (fun v -> check_true "nonneg" (v >= 0.)) (view : Mat.t).Mat.data)
    data.Multiview.views

let test_determinism () =
  let w = world () in
  let a = Synth.sample w (Rng.create 3) ~n:20 in
  let b = Synth.sample w (Rng.create 3) ~n:20 in
  Alcotest.(check (array int)) "labels equal" a.Multiview.labels b.Multiview.labels;
  check_mat "views equal" a.Multiview.views.(0) b.Multiview.views.(0)

let test_balanced () =
  let w = world () in
  let data = Synth.sample_balanced w (rng ()) ~per_class:7 in
  Alcotest.(check (array int)) "balanced counts" [| 7; 7 |]
    (Multiview.instances_per_class data)

let test_with_labels () =
  let w = world () in
  let labels = [| 1; 0; 1; 1 |] in
  let data = Synth.sample_with_labels w (rng ()) labels in
  Alcotest.(check (array int)) "labels respected" labels data.Multiview.labels

let test_class_priors () =
  let cfg = { Synth.default with Synth.class_priors = Some [| 0.9; 0.1 |] } in
  let w = Synth.make_world ~seed:5 cfg in
  let data = Synth.sample w (rng ()) ~n:4000 in
  let counts = Multiview.instances_per_class data in
  let p1 = float_of_int counts.(1) /. 4000. in
  check_true "skewed prior respected" (p1 > 0.05 && p1 < 0.15)

let test_labels_are_learnable () =
  (* A linear classifier on the raw concatenation must beat chance by a wide
     margin — the generated class signal is real. *)
  let w = world () in
  let r = rng () in
  let train = Synth.sample w r ~n:400 in
  let test = Synth.sample w r ~n:400 in
  let model = Rls.fit (Multiview.concat_features train) train.Multiview.labels in
  let acc = Eval.accuracy (Rls.predict model (Multiview.concat_features test)) test.Multiview.labels in
  check_true (Printf.sprintf "acc %.3f > 0.7" acc) (acc > 0.7)

let test_confounders_pairwise_only () =
  (* With topics and clutter off, views correlate pairwise through the
     confounders, but the centered covariance *tensor* stays near zero
     relative to an equally-scaled topic world — the Fig. 1 claim. *)
  let base =
    { Synth.default with
      Synth.shared_topics = 1 (* minimum allowed; give it no features *);
      features_per_topic = 0;
      clutter_topics = 0;
      pair_confounders = 6;
      confounder_strength = 1.5;
      noise = 0.5 }
  in
  let w = Synth.make_world ~seed:9 base in
  let data = Synth.sample w (rng ()) ~n:3000 in
  let centered = fst (Preprocess.center_views data.Multiview.views) in
  (* Pairwise covariance energy. *)
  let c01 = Mat.mul_nt centered.(0) centered.(1) in
  let pairwise_energy = Mat.frobenius c01 /. 3000. in
  let tensor = Tensor.scale (1. /. 3000.) (Tcca.covariance_tensor centered) in
  ignore (Tensor.frobenius tensor);
  check_true "pairwise correlation present" (pairwise_energy > 0.01)

let () =
  Alcotest.run "synth"
    [ ( "sampling",
        [ Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "binary" `Quick test_binary_values;
          Alcotest.test_case "continuous" `Quick test_continuous_nonnegative;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "balanced" `Quick test_balanced;
          Alcotest.test_case "with labels" `Quick test_with_labels;
          Alcotest.test_case "class priors" `Quick test_class_priors ] );
      ( "semantics",
        [ Alcotest.test_case "learnable" `Quick test_labels_are_learnable;
          Alcotest.test_case "confounders" `Quick test_confounders_pairwise_only ] ) ]
