open Test_support

let test_unfold_shape () =
  let r = rng () in
  let a = random_tensor r [| 3; 4; 5 |] in
  Alcotest.(check (pair int int)) "mode 0" (3, 20) (Mat.dims (Unfold.unfold a 0));
  Alcotest.(check (pair int int)) "mode 1" (4, 15) (Mat.dims (Unfold.unfold a 1));
  Alcotest.(check (pair int int)) "mode 2" (5, 12) (Mat.dims (Unfold.unfold a 2))

let test_unfold_known () =
  (* Kolda & Bader's running example ordering: lowest remaining mode varies
     fastest along columns. *)
  let a =
    Tensor.init [| 2; 2; 2 |] (fun idx ->
        float_of_int ((idx.(0) * 1) + (idx.(1) * 2) + (idx.(2) * 4)))
  in
  let u0 = Unfold.unfold a 0 in
  (* Columns of mode-0 unfolding enumerate (i1, i2) with i1 fastest:
     (0,0) (1,0) (0,1) (1,1). *)
  check_vec "row 0" [| 0.; 2.; 4.; 6. |] (Mat.row u0 0);
  check_vec "row 1" [| 1.; 3.; 5.; 7. |] (Mat.row u0 1)

let test_refold_roundtrip () =
  let r = rng () in
  for mode = 0 to 2 do
    let a = random_tensor r [| 3; 4; 2 |] in
    let back = Unfold.refold (Unfold.unfold a mode) [| 3; 4; 2 |] mode in
    check_tensor ~eps:1e-12 (Printf.sprintf "roundtrip mode %d" mode) a back
  done

let test_unfold_preserves_norm () =
  let r = rng () in
  let a = random_tensor r [| 2; 5; 3 |] in
  for mode = 0 to 2 do
    check_float ~eps:1e-9 "frobenius preserved" (Tensor.frobenius a)
      (Mat.frobenius (Unfold.unfold a mode))
  done

let test_rank1_unfolding_structure () =
  (* For a rank-1 tensor x∘y∘z, the mode-0 unfolding is x·(z⊗y)ᵀ — i.e.
     exactly the Khatri-Rao/vec structure CP-ALS relies on. *)
  let x = [| 1.; 2. |] and y = [| 3.; 4.; 5. |] and z = [| 6.; 7. |] in
  let t = Tensor.outer [| x; y; z |] in
  let u0 = Unfold.unfold t 0 in
  let kr = Khatri_rao.chain [ Mat.of_cols [| y |]; Mat.of_cols [| z |] ] in
  let expected = Mat.mul_nt (Mat.of_cols [| x |]) kr in
  check_mat ~eps:1e-10 "X(0) = x (z ⊙ y)ᵀ" expected u0

let test_order2_matches_matrix () =
  (* An order-2 tensor's mode-0 unfolding is the matrix itself. *)
  let r = rng () in
  let m = random_mat r 3 4 in
  let t = Tensor.init [| 3; 4 |] (fun idx -> Mat.get m idx.(0) idx.(1)) in
  check_mat ~eps:1e-12 "mode-0 is matrix" m (Unfold.unfold t 0);
  check_mat ~eps:1e-12 "mode-1 is transpose" (Mat.transpose m) (Unfold.unfold t 1)

let prop_roundtrip =
  qtest ~count:40 "unfold/refold roundtrip" gen_tensor3 (fun a ->
      let dims = Array.init 3 (Tensor.dim a) in
      let ok = ref true in
      for mode = 0 to 2 do
        if not (Tensor.equal ~eps:1e-10 a (Unfold.refold (Unfold.unfold a mode) dims mode))
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "unfold"
    [ ( "unfold",
        [ Alcotest.test_case "shapes" `Quick test_unfold_shape;
          Alcotest.test_case "known ordering" `Quick test_unfold_known;
          Alcotest.test_case "norm preserved" `Quick test_unfold_preserves_norm;
          Alcotest.test_case "order 2" `Quick test_order2_matches_matrix ] );
      ( "refold",
        [ Alcotest.test_case "roundtrip" `Quick test_refold_roundtrip;
          Alcotest.test_case "rank-1 structure" `Quick test_rank1_unfolding_structure ] );
      ("properties", [ prop_roundtrip ]) ]
