open Test_support

let shared_signal_views r ~m ~n ~noise =
  let views = Array.init m (fun _ -> Mat.create 4 n) in
  for j = 0 to n - 1 do
    let s = Rng.gaussian r in
    Array.iter
      (fun v ->
        Mat.set v 0 j (s +. (noise *. Rng.gaussian r));
        for i = 1 to 3 do
          Mat.set v i j (Rng.gaussian r)
        done)
      views
  done;
  views

let two_signal_views r ~n =
  (* Two shared signals of clearly different strengths, so the leading two
     MAXVAR eigenvalues are well separated and the variates identifiable. *)
  let views = Array.init 3 (fun _ -> Mat.create 4 n) in
  for j = 0 to n - 1 do
    let s1 = Rng.gaussian r and s2 = Rng.gaussian r in
    Array.iter
      (fun v ->
        Mat.set v 0 j (s1 +. (0.2 *. Rng.gaussian r));
        Mat.set v 1 j (s2 +. (0.8 *. Rng.gaussian r));
        Mat.set v 2 j (Rng.gaussian r);
        Mat.set v 3 j (Rng.gaussian r))
      views
  done;
  views

let test_equivalent_to_maxvar () =
  (* The paper (Via et al.) proves CCA-LS solves the MAXVAR problem: the
     identifiable variates must match the exact eigendecomposition solution. *)
  let r = rng () in
  let views = two_signal_views r ~n:600 in
  let ls = Cca_ls.fit ~eps:1e-2 ~max_iter:500 ~r:2 views in
  let mv = Cca_maxvar.fit ~eps:1e-2 ~r:2 views in
  let zl = Cca_ls.common_variates ls and zm = Cca_maxvar.common_variates mv in
  for i = 0 to 1 do
    check_true
      (Printf.sprintf "variate %d matches MAXVAR" i)
      (Float.abs (Stats.pearson (Mat.col zl i) (Mat.col zm i)) > 0.99)
  done

let test_variates_orthogonal () =
  let r = rng () in
  let views = shared_signal_views r ~m:3 ~n:300 ~noise:0.5 in
  let z = Cca_ls.common_variates (Cca_ls.fit ~r:4 views) in
  check_mat ~eps:1e-6 "orthonormal variates" (Mat.identity 4) (Mat.tgram z)

let test_unit_variance_projections () =
  (* The rescaled constraint hᵀC̃pp h = 1 gives unit-variance canonical
     variables — the fix that keeps downstream ridge learners alive. *)
  let r = rng () in
  let views = shared_signal_views r ~m:3 ~n:2000 ~noise:0.4 in
  let ls = Cca_ls.fit ~eps:1e-2 ~r:2 views in
  let z = Cca_ls.transform_view ls 0 views.(0) in
  let row = Mat.row z 0 in
  check_float ~eps:0.1 "unit variance" 1. (Vec.dot row row /. 2000.)

let test_transform_shape () =
  let r = rng () in
  let views = shared_signal_views r ~m:3 ~n:80 ~noise:0.5 in
  let ls = Cca_ls.fit ~r:2 views in
  Alcotest.(check int) "r" 2 (Cca_ls.r ls);
  Alcotest.(check (pair int int)) "m·r × N" (6, 80) (Mat.dims (Cca_ls.transform ls views))

let test_iterations_reported () =
  let r = rng () in
  let views = shared_signal_views r ~m:2 ~n:100 ~noise:0.5 in
  let ls = Cca_ls.fit ~max_iter:50 ~r:2 views in
  Array.iter
    (fun it -> check_true "1 <= iters <= max" (it >= 1 && it <= 50))
    (Cca_ls.iterations ls)

let test_deterministic_given_seed () =
  let r1 = rng () and r2 = rng () in
  let v1 = shared_signal_views r1 ~m:2 ~n:100 ~noise:0.3 in
  let v2 = shared_signal_views r2 ~m:2 ~n:100 ~noise:0.3 in
  let a = Cca_ls.common_variates (Cca_ls.fit ~seed:4 ~r:2 v1) in
  let b = Cca_ls.common_variates (Cca_ls.fit ~seed:4 ~r:2 v2) in
  check_mat ~eps:1e-12 "same inputs + seed = same result" a b

let test_large_n_independence () =
  (* The covariance-space iteration must handle big N cheaply: 50K instances
     should fit in well under a second per component. *)
  let r = rng () in
  let views = shared_signal_views r ~m:3 ~n:50_000 ~noise:0.2 in
  let t0 = Sys.time () in
  let ls = Cca_ls.fit ~r:2 views in
  let elapsed = Sys.time () -. t0 in
  check_true (Printf.sprintf "fast on 50K (%.2fs)" elapsed) (elapsed < 5.);
  let z0 = Mat.row (Cca_ls.transform_view ls 0 views.(0)) 0 in
  let z1 = Mat.row (Cca_ls.transform_view ls 1 views.(1)) 0 in
  check_true "still correct" (Float.abs (Stats.pearson z0 z1) > 0.9)

let test_errors () =
  let r = rng () in
  Alcotest.check_raises "one view" (Invalid_argument "Cca_ls.fit: need at least two views")
    (fun () -> ignore (Cca_ls.fit ~r:1 [| random_mat r 2 5 |]))


(* ------------------------------------------------------------------ *)
(* Online (adaptive) variant. *)

let online_views r ~n =
  (* A strong shared signal in coordinate 0 of both views. *)
  Array.init n (fun _ ->
      let s = Rng.gaussian r in
      [| [| s +. (0.2 *. Rng.gaussian r); Rng.gaussian r; Rng.gaussian r |];
         [| s +. (0.2 *. Rng.gaussian r); Rng.gaussian r |] |])

let test_online_converges_to_batch () =
  let r = rng () in
  let samples = online_views r ~n:3000 in
  let online = Cca_ls.Online.create ~dims:[| 3; 2 |] () in
  Array.iter (fun xs -> ignore (Cca_ls.Online.step online xs)) samples;
  Alcotest.(check int) "samples counted" 3000 (Cca_ls.Online.samples_seen online);
  (* Compare against the batch leading component on the same data. *)
  let views =
    [| Mat.of_cols (Array.map (fun s -> s.(0)) samples);
       Mat.of_cols (Array.map (fun s -> s.(1)) samples) |]
  in
  let batch = Cca_ls.fit ~eps:1e-3 ~r:1 views in
  let z_online = Cca_ls.Online.transform_view online 0 views.(0) in
  let z_batch = Mat.row (Cca_ls.transform_view batch 0 views.(0)) 0 in
  check_true "online tracks batch leading component"
    (Float.abs (Stats.pearson z_online z_batch) > 0.95)

let test_online_generalizes () =
  (* The converged filter projects *fresh* stationary data into correlated
     coordinates — it learned the shared direction, not the samples. *)
  let r = rng () in
  let online = Cca_ls.Online.create ~dims:[| 3; 2 |] () in
  Array.iter (fun xs -> ignore (Cca_ls.Online.step online xs)) (online_views r ~n:3000);
  let fresh = online_views r ~n:400 in
  let views =
    [| Mat.of_cols (Array.map (fun s -> s.(0)) fresh);
       Mat.of_cols (Array.map (fun s -> s.(1)) fresh) |]
  in
  let z0 = Cca_ls.Online.transform_view online 0 views.(0) in
  let z1 = Cca_ls.Online.transform_view online 1 views.(1) in
  check_true "fresh projections correlate" (Float.abs (Stats.pearson z0 z1) > 0.9)

let test_online_errors () =
  Alcotest.check_raises "one view"
    (Invalid_argument "Cca_ls.Online.create: need at least two views") (fun () ->
      ignore (Cca_ls.Online.create ~dims:[| 3 |] ()));
  let o = Cca_ls.Online.create ~dims:[| 2; 2 |] () in
  Alcotest.check_raises "bad sample"
    (Invalid_argument "Cca_ls.Online.step: dimension mismatch") (fun () ->
      ignore (Cca_ls.Online.step o [| [| 1. |]; [| 1.; 2. |] |]))

let () =
  Alcotest.run "cca_ls"
    [ ( "equivalence",
        [ Alcotest.test_case "matches MAXVAR" `Quick test_equivalent_to_maxvar;
          Alcotest.test_case "orthogonal variates" `Quick test_variates_orthogonal;
          Alcotest.test_case "unit variance" `Quick test_unit_variance_projections ] );
      ( "interface",
        [ Alcotest.test_case "shape" `Quick test_transform_shape;
          Alcotest.test_case "iterations" `Quick test_iterations_reported;
          Alcotest.test_case "determinism" `Quick test_deterministic_given_seed;
          Alcotest.test_case "large N" `Quick test_large_n_independence;
          Alcotest.test_case "errors" `Quick test_errors ] );
      ( "online",
        [ Alcotest.test_case "converges to batch" `Quick test_online_converges_to_batch;
          Alcotest.test_case "generalizes" `Quick test_online_generalizes;
          Alcotest.test_case "errors" `Quick test_online_errors ] ) ]
