(* Cross-module invariance tests: properties of the *methods* (not the
   numerics) that the paper's theory implies. *)

open Test_support

let three_views r ~n ~noise =
  let views = Array.init 3 (fun _ -> Mat.create 4 n) in
  for j = 0 to n - 1 do
    let s = -.log (Float.max 1e-12 (Rng.uniform r)) -. 1. in
    Array.iter
      (fun v ->
        Mat.set v 0 j (s +. (noise *. Rng.gaussian r));
        for i = 1 to 3 do
          Mat.set v i j (Rng.gaussian r)
        done)
      views
  done;
  views

let embedding_correlation z1 z2 =
  Float.abs (Stats.pearson (Mat.row z1 0) (Mat.row z2 0))

let test_tcca_view_permutation_invariance () =
  (* Reordering the views must not change what is learned, only the block
     order of the concatenated representation. *)
  let r = rng () in
  let views = three_views r ~n:800 ~noise:0.4 in
  let permuted = [| views.(2); views.(0); views.(1) |] in
  let a = Tcca.fit ~eps:1e-2 ~r:1 views in
  let b = Tcca.fit ~eps:1e-2 ~r:1 permuted in
  (* View 0's projection under [a] must match view 0's projection under [b]
     (where it sits at position 1). *)
  let za = Tcca.transform_view a 0 views.(0) in
  let zb = Tcca.transform_view b 1 views.(0) in
  check_true "same canonical variable" (embedding_correlation za zb > 0.999)

let test_tcca_instance_permutation_invariance () =
  (* Shuffling instances permutes the embedding columns and changes nothing
     else. *)
  let r = rng () in
  let views = three_views r ~n:300 ~noise:0.4 in
  let perm = Rng.permutation r 300 in
  let shuffled = Array.map (fun v -> Mat.select_cols v perm) views in
  let a = Tcca.fit ~eps:1e-2 ~r:2 views in
  let b = Tcca.fit ~eps:1e-2 ~r:2 shuffled in
  let za = Tcca.transform a views in
  let zb = Tcca.transform b shuffled in
  (* Compare a column of [a] with its shuffled position in [b]; the CP sign
     indeterminacy allows a global flip per component, so compare |corr| of
     full rows instead of entries. *)
  let za_shuffled = Mat.select_cols za perm in
  check_true "row 0 matches up to sign"
    (Float.abs (Stats.pearson (Mat.row za_shuffled 0) (Mat.row zb 0)) > 0.999)

let test_tcca_translation_invariance () =
  (* The model centers internally, so shifting every instance by a constant
     vector changes nothing. *)
  let r = rng () in
  let views = three_views r ~n:600 ~noise:0.4 in
  let shift = Array.map (fun v -> Mat.map (fun x -> x +. 5.) v) views in
  let a = Tcca.fit ~eps:1e-2 ~r:1 views in
  let b = Tcca.fit ~eps:1e-2 ~r:1 shift in
  check_vec ~eps:1e-6 "correlations unchanged" (Tcca.correlations a) (Tcca.correlations b);
  check_true "embedding unchanged"
    (embedding_correlation (Tcca.transform_view a 0 views.(0))
       (Tcca.transform_view b 0 shift.(0))
    > 0.9999)

let test_tcca_scaling_robustness () =
  (* Rescaling one view is absorbed by whitening (up to the ε floor). *)
  let r = rng () in
  let views = three_views r ~n:2000 ~noise:0.3 in
  let scaled = [| Mat.scale 10. views.(0); views.(1); views.(2) |] in
  let a = Tcca.fit ~eps:1e-4 ~r:1 views in
  let b = Tcca.fit ~eps:1e-4 ~r:1 scaled in
  check_true "projection direction stable"
    (embedding_correlation (Tcca.transform_view a 0 views.(0))
       (Tcca.transform_view b 0 scaled.(0))
    > 0.99)

let test_cca_vs_tcca_rank1_correlation_bound () =
  (* For m = 2 the TCCA weight equals the top CCA correlation; for m = 3 the
     3-way correlation of any triple cannot exceed the per-pair structure by
     orders of magnitude — sanity bound: λ₀ ≤ √N scale, here just finite and
     positive for correlated data. *)
  let r = rng () in
  let views = three_views r ~n:1500 ~noise:0.3 in
  let t = Tcca.fit ~eps:1e-2 ~r:1 views in
  let lambda = (Tcca.correlations t).(0) in
  check_true "positive, finite" (Float.is_finite lambda && Float.abs lambda > 0.01)

let test_kernel_linear_kcca_matches_cca () =
  (* KCCA with the *linear* kernel must agree with primal CCA on the same
     data (dual vs primal formulations of one problem). *)
  let r = rng () in
  let views = three_views r ~n:200 ~noise:0.3 in
  let x1 = views.(0) and x2 = views.(1) in
  let cca = Cca.fit ~eps:1e-6 ~r:1 x1 x2 in
  let k1 = Kernel.gram (Kernel.fit Kernel.Linear x1) in
  let k2 = Kernel.gram (Kernel.fit Kernel.Linear x2) in
  let kcca = Kcca.fit ~eps:1e-6 ~r:1 k1 k2 in
  let z_primal = Mat.row (Cca.transform1 cca x1) 0 in
  let z_dual = Mat.row (Kcca.transform_train kcca) 0 in
  check_true "primal = dual" (Float.abs (Stats.pearson z_primal z_dual) > 0.99)

let test_reducers_embed_consistently_across_calls () =
  (* Projective models are pure: transforming twice gives identical output. *)
  let r = rng () in
  let views = three_views r ~n:300 ~noise:0.4 in
  let model = Tcca.fit ~r:2 views in
  check_mat ~eps:1e-15 "idempotent transform" (Tcca.transform model views)
    (Tcca.transform model views)

let test_whitened_tensor_unit_scale () =
  (* After whitening with tiny ε, every mode's "marginal covariance" of the
     tensor is bounded: the multilinear form at unit vectors is a valid
     correlation-like quantity (|ρ| ≤ ~1 for strongly shared signal). *)
  let r = rng () in
  let views = three_views r ~n:5000 ~noise:0.2 in
  let m = Tcca.whitened_tensor ~eps:1e-6 views in
  let t = Tcca.fit ~eps:1e-6 ~r:1 views in
  ignore m;
  let lambda = Float.abs (Tcca.correlations t).(0) in
  (* For three near-identical unit-variance variables, Σ z³/N ≈ E[z³] of a
     skewed unit variable — finite and modest. *)
  check_true "lambda in a plausible range" (lambda > 0.05 && lambda < 10.)

let () =
  Alcotest.run "invariances"
    [ ( "tcca",
        [ Alcotest.test_case "view permutation" `Quick test_tcca_view_permutation_invariance;
          Alcotest.test_case "instance permutation" `Quick
            test_tcca_instance_permutation_invariance;
          Alcotest.test_case "translation" `Quick test_tcca_translation_invariance;
          Alcotest.test_case "per-view scaling" `Quick test_tcca_scaling_robustness;
          Alcotest.test_case "rank-1 sanity" `Quick test_cca_vs_tcca_rank1_correlation_bound;
          Alcotest.test_case "idempotent transform" `Quick
            test_reducers_embed_consistently_across_calls;
          Alcotest.test_case "whitened scale" `Quick test_whitened_tensor_unit_scale ] );
      ( "dual/primal",
        [ Alcotest.test_case "linear KCCA = CCA" `Quick test_kernel_linear_kcca_matches_cca ] ) ]
