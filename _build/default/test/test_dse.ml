open Test_support

(* Multi-view blobs: shared cluster structure across two views. *)
let blob_views r ~per_blob =
  let n = 2 * per_blob in
  let mk offset =
    Mat.init 3 n (fun i j ->
        let c = if j < per_blob then 0. else offset in
        (if i = 0 then c else 0.) +. (0.4 *. Rng.gaussian r))
  in
  ([| mk 15.; mk (-12.) |], Array.init n (fun j -> if j < per_blob then 0 else 1))

let test_shapes () =
  let r = rng () in
  let views, _ = blob_views r ~per_blob:20 in
  let z = Dse.fit_transform ~r:3 views in
  Alcotest.(check (pair int int)) "r × N" (3, 40) (Mat.dims z)

let test_separates_clusters () =
  let r = rng () in
  let views, labels = blob_views r ~per_blob:25 in
  let z = Dse.fit_transform ~r:2 views in
  (* 1-NN in the embedding should classify the blobs almost perfectly. *)
  let model = Knn.fit ~k:3 z labels in
  check_true "clusters separated" (Eval.accuracy (Knn.predict model z) labels > 0.95)

let test_prepared_nested () =
  (* transform_prepared at smaller r = leading columns of the same basis —
     slicing must not change results across calls. *)
  let r = rng () in
  let views, _ = blob_views r ~per_blob:15 in
  let prepared = Dse.prepare ~max_r:5 views in
  let z3 = Dse.transform_prepared prepared ~r:3 in
  let z3' = Dse.transform_prepared prepared ~r:3 in
  check_mat ~eps:1e-12 "deterministic" z3 z3'

let test_scale () =
  (* Embedded coordinates have ~unit per-sample scale (√N rescaling). *)
  let r = rng () in
  let views, _ = blob_views r ~per_blob:25 in
  let z = Dse.fit_transform ~r:2 views in
  let row = Mat.row z 0 in
  check_float ~eps:0.2 "unit variance scale" 1. (Vec.dot row row /. 50.)

let test_max_instances_guard () =
  let r = rng () in
  let views = [| random_mat r 2 30; random_mat r 2 30 |] in
  let options = { Dse.default_options with Dse.max_instances = 10 } in
  Alcotest.check_raises "guard"
    (Invalid_argument
       "Dse.prepare: 30 instances exceeds max_instances=10 (transductive N^2 method)")
    (fun () -> ignore (Dse.prepare ~options ~max_r:2 views))

let () =
  Alcotest.run "dse"
    [ ( "embedding",
        [ Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "separates clusters" `Quick test_separates_clusters;
          Alcotest.test_case "prepared" `Quick test_prepared_nested;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "guard" `Quick test_max_instances_guard ] ) ]
