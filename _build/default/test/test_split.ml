open Test_support

let no_overlap a b =
  let seen = Hashtbl.create 16 in
  Array.iter (fun i -> Hashtbl.replace seen i ()) a;
  Array.for_all (fun i -> not (Hashtbl.mem seen i)) b

let covers_all n a b =
  let seen = Array.make n false in
  Array.iter (fun i -> seen.(i) <- true) a;
  Array.iter (fun i -> seen.(i) <- true) b;
  Array.for_all (fun x -> x) seen

let test_partition () =
  let r = rng () in
  let a, b = Split.partition r 100 0.3 in
  Alcotest.(check int) "30%" 30 (Array.length a);
  Alcotest.(check int) "rest" 70 (Array.length b);
  check_true "disjoint" (no_overlap a b);
  check_true "complete" (covers_all 100 a b)

let test_partition_extremes () =
  let r = rng () in
  let a, b = Split.partition r 10 0. in
  Alcotest.(check int) "empty first" 0 (Array.length a);
  Alcotest.(check int) "all second" 10 (Array.length b);
  let a, b = Split.partition r 10 1. in
  Alcotest.(check int) "all first" 10 (Array.length a);
  Alcotest.(check int) "empty second" 0 (Array.length b)

let test_labeled_unlabeled () =
  let r = rng () in
  let labeled, rest = Split.labeled_unlabeled r ~n:50 ~labeled:10 in
  Alcotest.(check int) "labeled" 10 (Array.length labeled);
  Alcotest.(check int) "rest" 40 (Array.length rest);
  check_true "disjoint" (no_overlap labeled rest);
  check_true "complete" (covers_all 50 labeled rest)

let test_labeled_per_class () =
  let r = rng () in
  let labels = Array.init 60 (fun i -> i mod 3) in
  let chosen, rest = Split.labeled_per_class r labels ~per_class:4 in
  Alcotest.(check int) "4 per class × 3" 12 (Array.length chosen);
  let counts = Array.make 3 0 in
  Array.iter (fun i -> counts.(labels.(i)) <- counts.(labels.(i)) + 1) chosen;
  Alcotest.(check (array int)) "exactly 4 each" [| 4; 4; 4 |] counts;
  check_true "disjoint" (no_overlap chosen rest);
  check_true "complete" (covers_all 60 chosen rest)

let test_labeled_per_class_insufficient () =
  let r = rng () in
  let labels = [| 0; 0; 1 |] in
  Alcotest.check_raises "class too small"
    (Invalid_argument "Split.labeled_per_class: class 1 has only 1 instances") (fun () ->
      ignore (Split.labeled_per_class r labels ~per_class:2))

let test_validation_carveout () =
  let r = rng () in
  let pool = Array.init 40 (fun i -> i * 2) in
  let v, e = Split.validation_carveout r pool 0.25 in
  Alcotest.(check int) "25%" 10 (Array.length v);
  Alcotest.(check int) "eval" 30 (Array.length e);
  check_true "disjoint" (no_overlap v e);
  (* Only pool members appear. *)
  Array.iter (fun i -> check_true "from pool" (i mod 2 = 0 && i < 80)) (Array.append v e)

let test_randomness_across_seeds () =
  let a, _ = Split.labeled_unlabeled (Rng.create 1) ~n:100 ~labeled:10 in
  let b, _ = Split.labeled_unlabeled (Rng.create 2) ~n:100 ~labeled:10 in
  check_true "different draws" (a <> b)

let () =
  Alcotest.run "split"
    [ ( "partitions",
        [ Alcotest.test_case "partition" `Quick test_partition;
          Alcotest.test_case "extremes" `Quick test_partition_extremes;
          Alcotest.test_case "labeled/unlabeled" `Quick test_labeled_unlabeled;
          Alcotest.test_case "per class" `Quick test_labeled_per_class;
          Alcotest.test_case "insufficient" `Quick test_labeled_per_class_insufficient;
          Alcotest.test_case "validation" `Quick test_validation_carveout;
          Alcotest.test_case "seeds differ" `Quick test_randomness_across_seeds ] ) ]
