open Test_support

let test_create_get_set () =
  let t = Tensor.create [| 2; 3 |] in
  check_float "zero init" 0. (Tensor.get t [| 1; 2 |]);
  Tensor.set t [| 1; 2 |] 5.;
  check_float "set/get" 5. (Tensor.get t [| 1; 2 |]);
  Alcotest.(check int) "order" 2 (Tensor.order t);
  Alcotest.(check int) "size" 6 (Tensor.size t);
  Alcotest.(check int) "dim" 3 (Tensor.dim t 1)

let test_init_indexing () =
  let t =
    Tensor.init [| 2; 3; 4 |] (fun idx ->
        float_of_int ((idx.(0) * 100) + (idx.(1) * 10) + idx.(2)))
  in
  check_float "element" 123. (Tensor.get t [| 1; 2; 3 |]);
  check_float "first" 0. (Tensor.get t [| 0; 0; 0 |])

let test_bounds () =
  let t = Tensor.create [| 2; 2 |] in
  Alcotest.check_raises "oob" (Invalid_argument "Tensor: index out of bounds") (fun () ->
      ignore (Tensor.get t [| 0; 2 |]));
  Alcotest.check_raises "arity" (Invalid_argument "Tensor: index arity mismatch") (fun () ->
      ignore (Tensor.get t [| 0 |]))

let test_outer_known () =
  let t = Tensor.outer [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5. |] |] in
  check_float "entry (0,0,0)" 15. (Tensor.get t [| 0; 0; 0 |]);
  check_float "entry (1,1,0)" 40. (Tensor.get t [| 1; 1; 0 |]);
  check_float "entry (0,1,0)" 20. (Tensor.get t [| 0; 1; 0 |])

let test_add_outer_accumulates () =
  let t = Tensor.create [| 2; 2 |] in
  Tensor.add_outer_in_place t 2. [| [| 1.; 0. |]; [| 0.; 1. |] |];
  Tensor.add_outer_in_place t 3. [| [| 0.; 1. |]; [| 1.; 0. |] |];
  check_float "(0,1)" 2. (Tensor.get t [| 0; 1 |]);
  check_float "(1,0)" 3. (Tensor.get t [| 1; 0 |]);
  check_float "(0,0)" 0. (Tensor.get t [| 0; 0 |])

let test_algebra () =
  let r = rng () in
  let a = random_tensor r [| 3; 2; 2 |] and b = random_tensor r [| 3; 2; 2 |] in
  check_tensor ~eps:1e-12 "a+b-b = a" a (Tensor.sub (Tensor.add a b) b);
  check_tensor ~eps:1e-12 "2a = a+a" (Tensor.add a a) (Tensor.scale 2. a);
  let c = Tensor.copy a in
  Tensor.scale_in_place 3. c;
  check_tensor ~eps:1e-12 "scale_in_place" (Tensor.scale 3. a) c

let test_inner_frobenius () =
  let r = rng () in
  let a = random_tensor r [| 2; 3; 2 |] in
  check_float ~eps:1e-10 "‖a‖² = <a,a>" (Tensor.inner a a) (Tensor.frobenius a ** 2.)

let test_mode_product_identity () =
  let r = rng () in
  let a = random_tensor r [| 3; 4; 2 |] in
  check_tensor ~eps:1e-12 "I along mode 1" a (Tensor.mode_product a 1 (Mat.identity 4))

let test_mode_product_vs_unfold () =
  (* Cross-check the direct implementation against the unfold-based one
     (paper Eq. 4.3). *)
  let r = rng () in
  for mode = 0 to 2 do
    let a = random_tensor r [| 3; 4; 5 |] in
    let u = random_mat r 6 (Tensor.dim a mode) in
    check_tensor ~eps:1e-9
      (Printf.sprintf "mode %d" mode)
      (Unfold.mode_product_via_unfold a mode u)
      (Tensor.mode_product a mode u)
  done

let test_mode_products_chain () =
  let r = rng () in
  let a = random_tensor r [| 2; 3; 4 |] in
  let us = [| random_mat r 2 2; random_mat r 5 3; random_mat r 3 4 |] in
  let direct = Tensor.mode_products a us in
  let manual =
    Tensor.mode_product
      (Tensor.mode_product (Tensor.mode_product a 0 us.(0)) 1 us.(1))
      2 us.(2)
  in
  check_tensor ~eps:1e-9 "chain = sequential" manual direct

let test_mode_products_commute () =
  let r = rng () in
  let a = random_tensor r [| 3; 4; 2 |] in
  let u0 = random_mat r 2 3 and u2 = random_mat r 5 2 in
  let ab = Tensor.mode_product (Tensor.mode_product a 0 u0) 2 u2 in
  let ba = Tensor.mode_product (Tensor.mode_product a 2 u2) 0 u0 in
  check_tensor ~eps:1e-9 "commute" ab ba

let test_contract_vec () =
  let r = rng () in
  let a = random_tensor r [| 3; 4; 2 |] in
  let h = random_vec r 4 in
  let c = Tensor.contract_vec a 1 h in
  Alcotest.(check int) "order drops" 2 (Tensor.order c);
  let expected = ref 0. in
  for j = 0 to 3 do
    expected := !expected +. (Tensor.get a [| 2; j; 1 |] *. h.(j))
  done;
  check_float ~eps:1e-10 "entry" !expected (Tensor.get c [| 2; 1 |])

let test_multilinear_form_theorem1 () =
  (* Theorem 1: Σₙ Πₚ zₚ(n) = C ×₁h₁ᵀ …×ₘhₘᵀ for C = Σₙ x₁ₙ∘x₂ₙ∘x₃ₙ. *)
  let r = rng () in
  let n = 12 in
  let views = Array.init 3 (fun _ -> random_mat r 4 n) in
  let hs = Array.init 3 (fun _ -> random_vec r 4) in
  let c = Tensor.create [| 4; 4; 4 |] in
  for i = 0 to n - 1 do
    Tensor.add_outer_in_place c 1. (Array.map (fun v -> Mat.col v i) views)
  done;
  let lhs = ref 0. in
  for i = 0 to n - 1 do
    let prod = ref 1. in
    for p = 0 to 2 do
      prod := !prod *. Vec.dot (Mat.col views.(p) i) hs.(p)
    done;
    lhs := !lhs +. !prod
  done;
  check_float ~eps:1e-8 "Theorem 1" !lhs (Tensor.multilinear_form c hs)

let test_multilinear_form_rank1 () =
  let r = rng () in
  let x = random_vec r 3 and y = random_vec r 4 and z = random_vec r 2 in
  let h1 = random_vec r 3 and h2 = random_vec r 4 and h3 = random_vec r 2 in
  let t = Tensor.outer [| x; y; z |] in
  check_float ~eps:1e-10 "factorizes"
    (Vec.dot x h1 *. Vec.dot y h2 *. Vec.dot z h3)
    (Tensor.multilinear_form t [| h1; h2; h3 |])

let prop_outer_frobenius =
  qtest ~count:50 "‖x∘y∘z‖ = ‖x‖‖y‖‖z‖"
    QCheck2.Gen.(triple gen_vec gen_vec gen_vec)
    (fun (x, y, z) ->
      QCheck2.assume (Array.length x > 0 && Array.length y > 0 && Array.length z > 0);
      let t = Tensor.outer [| x; y; z |] in
      Float.abs (Tensor.frobenius t -. (Vec.norm x *. Vec.norm y *. Vec.norm z)) < 1e-5)

let prop_mode_product_linear =
  qtest ~count:40 "mode product linear in tensor" gen_tensor3 (fun a ->
      let d0 = Tensor.dim a 0 in
      let u = Mat.init 2 d0 (fun i j -> float_of_int (i + j)) in
      let lhs = Tensor.mode_product (Tensor.scale 2. a) 0 u in
      let rhs = Tensor.scale 2. (Tensor.mode_product a 0 u) in
      Tensor.equal ~eps:1e-7 lhs rhs)

let () =
  Alcotest.run "tensor"
    [ ( "basics",
        [ Alcotest.test_case "create/get/set" `Quick test_create_get_set;
          Alcotest.test_case "init indexing" `Quick test_init_indexing;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "algebra" `Quick test_algebra;
          Alcotest.test_case "inner/frobenius" `Quick test_inner_frobenius ] );
      ( "outer products",
        [ Alcotest.test_case "outer known" `Quick test_outer_known;
          Alcotest.test_case "accumulate" `Quick test_add_outer_accumulates ] );
      ( "mode products",
        [ Alcotest.test_case "identity" `Quick test_mode_product_identity;
          Alcotest.test_case "vs unfold" `Quick test_mode_product_vs_unfold;
          Alcotest.test_case "chain" `Quick test_mode_products_chain;
          Alcotest.test_case "commute" `Quick test_mode_products_commute;
          Alcotest.test_case "contract" `Quick test_contract_vec ] );
      ( "multilinear forms",
        [ Alcotest.test_case "Theorem 1" `Quick test_multilinear_form_theorem1;
          Alcotest.test_case "rank-1" `Quick test_multilinear_form_rank1 ] );
      ("properties", [ prop_outer_frobenius; prop_mode_product_linear ]) ]
