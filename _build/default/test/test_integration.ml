(* End-to-end integration tests: the full pipeline on the three simulated
   benchmarks at miniature scale, plus the headline scientific claims the
   reproduction rests on. *)

open Test_support

let test_secstr_pipeline () =
  let world = Secstr.world ~seed:1 Secstr.Quick in
  let config =
    { (Linear_protocol.default_config world) with
      Linear_protocol.n_pool = 600;
      n_extra_unlabeled = 2000 }
  in
  let st = Linear_protocol.prepare config ~seed:0 in
  let tcca = Linear_protocol.run_prepared st Spec.Tcca ~r:12 in
  let bsf = Linear_protocol.run_prepared st Spec.Bsf ~r:12 in
  check_true "TCCA above chance" (tcca.Linear_protocol.test_acc > 0.52);
  check_true "BSF sane" (bsf.Linear_protocol.test_acc > 0.45)

let test_nuswide_pipeline_tcca_wins () =
  (* The reproduction's headline: on the 10-class kNN task TCCA beats the
     pairwise CCA variants at a moderate dimension. *)
  let world = Nuswide.world Nuswide.Quick in
  let config =
    { (Knn_protocol.default_config ~per_class:6 world) with
      Knn_protocol.n_train = 700;
      n_test = 700 }
  in
  let mean_acc meth =
    let accs =
      Array.init 2 (fun seed ->
          let st = Knn_protocol.prepare config ~seed in
          (Knn_protocol.run_prepared st meth ~r:45).Knn_protocol.test_acc)
    in
    Stats.mean accs
  in
  let tcca = mean_acc Spec.Tcca in
  let cca_bst = mean_acc Spec.Cca_bst in
  check_true "TCCA above chance ×2" (tcca > 0.2);
  check_true
    (Printf.sprintf "TCCA (%.3f) >= CCA BST (%.3f) - slack" tcca cca_bst)
    (tcca >= cca_bst -. 0.02)

let test_more_unlabeled_helps_tcca () =
  (* Table 1's trend: TCCA's accuracy improves (or at least does not degrade)
     with more unlabeled data for the covariance tensor. *)
  let world = Secstr.world Secstr.Quick in
  let run extra =
    let config =
      { (Linear_protocol.default_config world) with
        Linear_protocol.n_pool = 800;
        n_extra_unlabeled = extra }
    in
    let accs =
      Array.init 2 (fun seed ->
          (Linear_protocol.run config Spec.Tcca ~r:24 ~seed).Linear_protocol.test_acc)
    in
    Stats.mean accs
  in
  let small = run 0 and large = run 8000 in
  check_true
    (Printf.sprintf "more unlabeled helps (%.3f -> %.3f)" small large)
    (large >= small -. 0.03)

let test_tensor_blind_to_pairwise_confounders () =
  (* Fig. 1's claim, stated on estimators: strengthening pairwise-only
     confounders inflates pairwise covariance energy but barely moves the
     3-way covariance tensor. *)
  let base = { (Secstr.config Secstr.Quick) with Synth.dims = [| 24; 24; 24 |] } in
  let energy strength =
    let cfg = { base with Synth.confounder_strength = strength } in
    let world = Synth.make_world ~seed:4 cfg in
    let data = Synth.sample world (Rng.create 8) ~n:20000 in
    let centered = fst (Preprocess.center_views data.Multiview.views) in
    let pair = Mat.frobenius (Mat.scale (1. /. 20000.) (Mat.mul_nt centered.(0) centered.(1))) in
    let tensor = Tensor.frobenius (Tcca.covariance_tensor centered) in
    (pair, tensor)
  in
  let p0, t0 = energy 0. in
  let p2, t2 = energy 2.5 in
  let pair_growth = p2 /. p0 and tensor_growth = t2 /. t0 in
  check_true
    (Printf.sprintf "pairwise grows faster (pair ×%.2f vs tensor ×%.2f)" pair_growth
       tensor_growth)
    (pair_growth > tensor_growth)

let test_quickstart_story () =
  (* The README example, in miniature: TCCA-transformed features support a
     better classifier than raw concatenation. *)
  let world = Synth.make_world ~seed:42 Synth.default in
  let r = Rng.create 7 in
  let unlabeled = Synth.sample world r ~n:800 in
  let labeled = Synth.sample world r ~n:80 in
  let test = Synth.sample world r ~n:500 in
  let tcca = Tcca.fit ~r:8 unlabeled.Multiview.views in
  let acc transform =
    let model = Rls.fit (transform labeled.Multiview.views) labeled.Multiview.labels in
    Eval.accuracy (Rls.predict model (transform test.Multiview.views)) test.Multiview.labels
  in
  let acc_tcca = acc (Tcca.transform tcca) in
  check_true (Printf.sprintf "TCCA pipeline works (%.3f)" acc_tcca) (acc_tcca > 0.6)

let test_figures_registry () =
  List.iter
    (fun id -> check_true (id ^ " described") (String.length (Figures.describe id) > 0))
    Figures.all_ids;
  (* Table aliases resolve. *)
  List.iter
    (fun id -> check_true (id ^ " alias") (String.length (Figures.describe id) > 0))
    [ "tab1"; "tab2"; "tab3"; "tab4" ]

let test_figures_run_smoke () =
  (* Drive the whole registry end to end at miniature scale: every id must
     render non-empty blocks without raising. *)
  let params =
    { Figures.quick with
      Figures.seeds = 1;
      rs = [| 4; 8 |];
      rs_kernel = [| 4; 8 |];
      secstr_pool = 200;
      secstr_extra = 300;
      ads_pool = 200;
      nus_train = 400;
      nus_test = 400;
      kernel_subset = 100;
      complexity_n = 150 }
  in
  List.iter
    (fun id ->
      if id <> "scal-n" then begin
        (* scal-n has its own fixed N grid and is covered by the bench. *)
        let blocks = Figures.run params id in
        check_true (id ^ " produced output") (List.length blocks > 0);
        List.iter (fun b -> check_true (id ^ " non-empty") (String.length b > 0)) blocks
      end)
    Figures.all_ids

let test_ablation_smoke () =
  let world =
    Synth.make_world ~seed:2
      { Synth.default with Synth.dims = [| 12; 12; 12 |]; shared_topics = 3; topics_per_class = 2 }
  in
  let out = Ablations.solver_comparison ~world ~n:300 ~eps:1e-2 ~rs:[| 1; 2 |] ~seed:0 in
  check_true "solver table renders" (String.length out > 0)

let test_complexity_smoke () =
  let world =
    Synth.make_world ~seed:2
      { Synth.default with Synth.dims = [| 12; 12; 12 |]; shared_topics = 3; topics_per_class = 2 }
  in
  let curves =
    Complexity.linear_costs ~world ~n:200 ~eps:1e-2 ~methods:[ Spec.Cat; Spec.Tcca ]
      ~rs:[| 3; 6 |] ~seed:0
  in
  Alcotest.(check int) "two curves" 2 (List.length curves);
  List.iter
    (fun c ->
      Array.iter
        (fun cost ->
          check_true "time >= 0" (cost.Complexity.seconds >= 0.);
          check_true "alloc >= 0" (cost.Complexity.alloc_mb >= 0.))
        c.Complexity.costs)
    curves;
  check_true "figures render"
    (String.length (Complexity.time_figure ~title:"t" curves) > 0
    && String.length (Complexity.memory_figure ~title:"m" curves) > 0)

let () =
  Alcotest.run "integration"
    [ ( "pipelines",
        [ Alcotest.test_case "secstr" `Slow test_secstr_pipeline;
          Alcotest.test_case "nuswide tcca wins" `Slow test_nuswide_pipeline_tcca_wins;
          Alcotest.test_case "quickstart" `Quick test_quickstart_story ] );
      ( "claims",
        [ Alcotest.test_case "unlabeled helps" `Slow test_more_unlabeled_helps_tcca;
          Alcotest.test_case "tensor blind to confounders" `Slow
            test_tensor_blind_to_pairwise_confounders ] );
      ( "harness",
        [ Alcotest.test_case "registry" `Quick test_figures_registry;
          Alcotest.test_case "full registry smoke" `Slow test_figures_run_smoke;
          Alcotest.test_case "ablation smoke" `Quick test_ablation_smoke;
          Alcotest.test_case "complexity smoke" `Quick test_complexity_smoke ] ) ]
