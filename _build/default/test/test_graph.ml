open Test_support

(* Two well-separated blobs of points in 2D. *)
let blobs r ~per_blob =
  Mat.init 2 (2 * per_blob) (fun i j ->
      let center = if j < per_blob then 0. else 20. in
      (if i = 0 then center else 0.) +. (0.5 *. Rng.gaussian r))

let test_knn_structure () =
  let r = rng () in
  let x = blobs r ~per_blob:20 in
  let g = Graph.knn ~k:3 x in
  Alcotest.(check int) "node count" 40 (Graph.n_nodes g);
  Array.iter (fun d -> check_true "positive degree" (d > 0.)) (Graph.degree g)

let test_matvec_symmetric_operator () =
  (* S = D^{-1/2} W D^{-1/2} is symmetric: ⟨Sx, y⟩ = ⟨x, Sy⟩. *)
  let r = rng () in
  let x = blobs r ~per_blob:15 in
  let g = Graph.knn ~k:4 x in
  let u = random_vec r 30 and v = random_vec r 30 in
  check_float ~eps:1e-9 "self-adjoint" (Vec.dot (Graph.matvec_normalized_adjacency g u) v)
    (Vec.dot u (Graph.matvec_normalized_adjacency g v))

let test_spectral_radius () =
  (* ‖S‖ ≤ 1 for the normalized adjacency. *)
  let r = rng () in
  let x = blobs r ~per_blob:15 in
  let g = Graph.knn ~k:4 x in
  let y = ref (Vec.normalize (random_vec r 30)) in
  for _ = 1 to 30 do
    y := Vec.normalize (Graph.matvec_normalized_adjacency g !y)
  done;
  let sy = Graph.matvec_normalized_adjacency g !y in
  check_true "largest eigenvalue <= 1" (Vec.norm sy <= 1. +. 1e-6)

let test_embedding_separates_blobs () =
  (* Laplacian eigenmap of two disconnected-ish blobs: the leading
     non-trivial coordinate separates them linearly. *)
  let r = rng () in
  let x = blobs r ~per_blob:25 in
  let g = Graph.knn ~k:5 x in
  let e = Graph.laplacian_embedding ~r:2 g in
  Alcotest.(check (pair int int)) "shape" (50, 2) (Mat.dims e);
  (* The separating direction may be any rotation within the top eigenspace,
     so check separability with a tiny kNN instead of one coordinate. *)
  let labels = Array.init 50 (fun j -> if j < 25 then 0 else 1) in
  let z = Mat.transpose e in
  let model = Knn.fit ~k:3 z labels in
  check_true "blobs separated" (Eval.accuracy (Knn.predict model z) labels > 0.95)

let test_embedding_orthogonalish () =
  let r = rng () in
  let x = blobs r ~per_blob:25 in
  let g = Graph.knn ~k:5 x in
  let e = Graph.laplacian_embedding ~r:3 g in
  (* Columns should be near-orthogonal (they are distinct eigenvectors). *)
  let gram = Mat.tgram e in
  for i = 0 to 2 do
    for j = i + 1 to 2 do
      check_true "near orthogonal" (Float.abs (Mat.get gram i j) < 0.1)
    done
  done

let test_r_clamped () =
  let r = rng () in
  let x = random_mat r 2 8 in
  let g = Graph.knn ~k:2 x in
  let e = Graph.laplacian_embedding ~r:20 g in
  check_true "r at most n-1" (snd (Mat.dims e) <= 7)

let () =
  Alcotest.run "graph"
    [ ( "construction",
        [ Alcotest.test_case "knn" `Quick test_knn_structure;
          Alcotest.test_case "self-adjoint" `Quick test_matvec_symmetric_operator;
          Alcotest.test_case "spectral radius" `Quick test_spectral_radius ] );
      ( "embedding",
        [ Alcotest.test_case "separates blobs" `Quick test_embedding_separates_blobs;
          Alcotest.test_case "orthogonal" `Quick test_embedding_orthogonalish;
          Alcotest.test_case "clamping" `Quick test_r_clamped ] ) ]
