open Test_support

let test_basic_algebra () =
  let x = [| 1.; 2.; 3. |] and y = [| 4.; 5.; 6. |] in
  check_vec "add" [| 5.; 7.; 9. |] (Vec.add x y);
  check_vec "sub" [| -3.; -3.; -3. |] (Vec.sub x y);
  check_vec "scale" [| 2.; 4.; 6. |] (Vec.scale 2. x);
  check_vec "axpy" [| 6.; 9.; 12. |] (Vec.axpy 2. x y);
  check_vec "hadamard" [| 4.; 10.; 18. |] (Vec.mul_elem x y);
  check_float "dot" 32. (Vec.dot x y)

let test_axpy_in_place () =
  let x = [| 1.; 2. |] and y = [| 10.; 20. |] in
  Vec.axpy_in_place 3. x y;
  check_vec "y <- 3x+y" [| 13.; 26. |] y;
  check_vec "x untouched" [| 1.; 2. |] x

let test_norms () =
  let v = [| 3.; -4. |] in
  check_float "l2" 5. (Vec.norm v);
  check_float "l1" 7. (Vec.norm1 v);
  check_float "linf" 4. (Vec.norm_inf v)

let test_normalize () =
  check_float ~eps:1e-12 "unit" 1. (Vec.norm (Vec.normalize [| 1.; 2.; 2. |]));
  check_vec "zero unchanged" [| 0.; 0. |] (Vec.normalize [| 0.; 0. |])

let test_center () =
  let c = Vec.center [| 1.; 2.; 3. |] in
  check_float ~eps:1e-12 "zero mean" 0. (Vec.mean c);
  check_vec "values" [| -1.; 0.; 1. |] c

let test_outer () =
  let o = Vec.outer [| 1.; 2. |] [| 3.; 4. |] in
  check_mat "rank-1" (Mat.of_arrays [| [| 3.; 4. |]; [| 6.; 8. |] |]) (Mat.of_arrays o)

let test_dimension_mismatch () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Vec.dot: dimension mismatch")
    (fun () -> ignore (Vec.dot [| 1. |] [| 1.; 2. |]))

let test_map2 () =
  check_vec "map2" [| 5.; 8. |] (Vec.map2 (fun a b -> a *. b) [| 1.; 2. |] [| 5.; 4. |])

let prop_cauchy_schwarz =
  qtest "|<x,y>| <= |x||y|"
    QCheck2.Gen.(pair gen_vec gen_vec)
    (fun (x, y) ->
      let n = min (Array.length x) (Array.length y) in
      QCheck2.assume (n > 0);
      let x = Array.sub x 0 n and y = Array.sub y 0 n in
      Float.abs (Vec.dot x y) <= (Vec.norm x *. Vec.norm y) +. 1e-6)

let prop_triangle =
  qtest "triangle inequality"
    QCheck2.Gen.(pair gen_vec gen_vec)
    (fun (x, y) ->
      let n = min (Array.length x) (Array.length y) in
      QCheck2.assume (n > 0);
      let x = Array.sub x 0 n and y = Array.sub y 0 n in
      Vec.norm (Vec.add x y) <= Vec.norm x +. Vec.norm y +. 1e-6)

let prop_norm_scale =
  qtest "‖a·x‖ = |a|·‖x‖"
    QCheck2.Gen.(pair (float_range (-5.) 5.) gen_vec)
    (fun (a, x) ->
      QCheck2.assume (Array.length x > 0);
      Float.abs (Vec.norm (Vec.scale a x) -. (Float.abs a *. Vec.norm x)) < 1e-6)

let prop_outer_rank1 =
  qtest "outer product entries"
    QCheck2.Gen.(pair gen_vec gen_vec)
    (fun (x, y) ->
      QCheck2.assume (Array.length x > 0 && Array.length y > 0);
      let o = Vec.outer x y in
      let ok = ref true in
      Array.iteri
        (fun i row ->
          Array.iteri (fun j v -> if Float.abs (v -. (x.(i) *. y.(j))) > 1e-9 then ok := false) row)
        o;
      !ok)

let () =
  Alcotest.run "vec"
    [ ( "algebra",
        [ Alcotest.test_case "basic" `Quick test_basic_algebra;
          Alcotest.test_case "axpy in place" `Quick test_axpy_in_place;
          Alcotest.test_case "map2" `Quick test_map2;
          Alcotest.test_case "mismatch" `Quick test_dimension_mismatch ] );
      ( "norms",
        [ Alcotest.test_case "norms" `Quick test_norms;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "center" `Quick test_center;
          Alcotest.test_case "outer" `Quick test_outer ] );
      ( "properties",
        [ prop_cauchy_schwarz; prop_triangle; prop_norm_scale; prop_outer_rank1 ] ) ]
