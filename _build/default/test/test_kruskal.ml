open Test_support

let rank2 r =
  { Kruskal.weights = [| 2.; -1. |];
    factors = [| random_mat r 3 2; random_mat r 4 2; random_mat r 2 2 |] }

let test_to_tensor_rank1 () =
  let x = [| 1.; 2. |] and y = [| 3.; 4.; 5. |] in
  let k = { Kruskal.weights = [| 2. |]; factors = [| Mat.of_cols [| x |]; Mat.of_cols [| y |] |] } in
  check_tensor ~eps:1e-12 "2·x∘y" (Tensor.scale 2. (Tensor.outer [| x; y |])) (Kruskal.to_tensor k)

let test_to_tensor_additive () =
  let r = rng () in
  let k = rank2 r in
  let t = Kruskal.to_tensor k in
  let single i =
    Kruskal.to_tensor
      { Kruskal.weights = [| k.Kruskal.weights.(i) |];
        factors = Array.map (fun u -> Mat.sub_cols u i 1) k.Kruskal.factors }
  in
  check_tensor ~eps:1e-10 "sum of rank-1 terms" (Tensor.add (single 0) (single 1)) t

let test_normalize () =
  let r = rng () in
  let k = Kruskal.normalize (rank2 r) in
  Array.iter
    (fun u ->
      for c = 0 to 1 do
        check_float ~eps:1e-10 "unit column" 1. (Vec.norm (Mat.col u c))
      done)
    k.Kruskal.factors;
  check_true "sorted by |weight|"
    (Float.abs k.Kruskal.weights.(0) >= Float.abs k.Kruskal.weights.(1))

let test_normalize_preserves_tensor () =
  let r = rng () in
  let k = rank2 r in
  check_tensor ~eps:1e-9 "same tensor" (Kruskal.to_tensor k)
    (Kruskal.to_tensor (Kruskal.normalize k))

let test_fit_exact () =
  let r = rng () in
  let k = rank2 r in
  let t = Kruskal.to_tensor k in
  check_float ~eps:1e-7 "perfect fit" 1. (Kruskal.fit k t)

let test_fit_formula_matches_direct () =
  let r = rng () in
  let k = rank2 r in
  let x = random_tensor r [| 3; 4; 2 |] in
  let direct =
    1. -. (Tensor.frobenius (Tensor.sub x (Kruskal.to_tensor k)) /. Tensor.frobenius x)
  in
  check_float ~eps:1e-8 "fit without materialization" direct (Kruskal.fit k x)

let test_component () =
  let r = rng () in
  let k = rank2 r in
  let c1 = Kruskal.component k 1 in
  check_vec "component vectors" (Mat.col k.Kruskal.factors.(0) 1) c1.(0)

let test_validate_rejects () =
  let bad =
    { Kruskal.weights = [| 1.; 2. |]; factors = [| Mat.create 3 1 |] }
  in
  Alcotest.check_raises "rank mismatch" (Invalid_argument "Kruskal: factor rank mismatch")
    (fun () -> Kruskal.validate bad)

let () =
  Alcotest.run "kruskal"
    [ ( "materialization",
        [ Alcotest.test_case "rank-1" `Quick test_to_tensor_rank1;
          Alcotest.test_case "additive" `Quick test_to_tensor_additive;
          Alcotest.test_case "component" `Quick test_component ] );
      ( "normalize",
        [ Alcotest.test_case "unit columns + sort" `Quick test_normalize;
          Alcotest.test_case "tensor preserved" `Quick test_normalize_preserves_tensor ] );
      ( "fit",
        [ Alcotest.test_case "exact" `Quick test_fit_exact;
          Alcotest.test_case "formula" `Quick test_fit_formula_matches_direct ] );
      ("errors", [ Alcotest.test_case "validate" `Quick test_validate_rejects ]) ]
