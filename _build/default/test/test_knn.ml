open Test_support

let clusters r ~n =
  let y = Array.init n (fun j -> j mod 3) in
  let x =
    Mat.init 2 n (fun i j ->
        let cx = [| 0.; 5.; 10. |].(y.(j)) in
        (if i = 0 then cx else 0.) +. (0.3 *. Rng.gaussian r))
  in
  (x, y)

let test_nearest_neighbour () =
  let train = Mat.of_cols [| [| 0.; 0. |]; [| 10.; 10. |] |] in
  let model = Knn.fit ~k:1 train [| 0; 1 |] in
  let queries = Mat.of_cols [| [| 1.; 1. |]; [| 9.; 9. |] |] in
  Alcotest.(check (array int)) "1-NN" [| 0; 1 |] (Knn.predict model queries)

let test_majority_vote () =
  (* Two close class-0 points outvote one closest class-1 point at k=3. *)
  let train = Mat.of_cols [| [| 0. |]; [| 2. |]; [| 2.2 |] |] in
  let model = Knn.fit ~k:3 train [| 1; 0; 0 |] in
  Alcotest.(check (array int)) "majority" [| 0 |] (Knn.predict model (Mat.of_cols [| [| 1. |] |]))

let test_tie_breaks_to_nearest () =
  (* k=2 with one vote each: the nearer neighbour's class must win. *)
  let train = Mat.of_cols [| [| 0. |]; [| 3. |] |] in
  let model = Knn.fit ~k:2 train [| 0; 1 |] in
  Alcotest.(check (array int)) "tie -> nearest" [| 0 |]
    (Knn.predict model (Mat.of_cols [| [| 1. |] |]))

let test_clusters () =
  let r = rng () in
  let x, y = clusters r ~n:90 in
  let xt, yt = clusters r ~n:90 in
  let model = Knn.fit ~k:5 x y in
  check_true "cluster accuracy" (Eval.accuracy (Knn.predict model xt) yt > 0.95)

let test_votes_shape () =
  let r = rng () in
  let x, y = clusters r ~n:30 in
  let v = Knn.votes (Knn.fit ~k:5 x y) x in
  Alcotest.(check (pair int int)) "C × N" (3, 30) (Mat.dims v);
  (* Each column's votes total k (up to the tiny tie-break bonus). *)
  for j = 0 to 29 do
    check_true "vote mass ~ k" (Float.abs (Vec.sum (Mat.col v j) -. 5.) < 0.01)
  done

let test_vote_summing () =
  (* Summed votes from two models = ensemble majority voting. *)
  let r = rng () in
  let x, y = clusters r ~n:60 in
  let v1 = Knn.votes (Knn.fit ~k:3 x y) x in
  let v2 = Knn.votes (Knn.fit ~k:7 x y) x in
  let combined = Knn.predict_votes (Mat.add v1 v2) in
  check_true "ensemble sane" (Eval.accuracy combined y > 0.9)

let test_votes_of_distances () =
  (* Precomputed distances must reproduce feature-space kNN exactly. *)
  let r = rng () in
  let x, y = clusters r ~n:40 in
  let q, _ = clusters r ~n:20 in
  let model = Knn.fit ~k:4 x y in
  let dist = Distance.cross Distance.Sq_l2 x q in
  let votes = Knn.votes_of_distances ~k:4 ~n_classes:3 y dist in
  Alcotest.(check (array int)) "same predictions" (Knn.predict model q)
    (Knn.predict_votes votes)

let test_k_clamped () =
  let train = Mat.of_cols [| [| 0. |]; [| 1. |] |] in
  let model = Knn.fit ~k:10 train [| 0; 1 |] in
  (* Must not crash with k > n. *)
  Alcotest.(check int) "prediction count" 1
    (Array.length (Knn.predict model (Mat.of_cols [| [| 0.4 |] |])))

let test_errors () =
  Alcotest.check_raises "k < 1" (Invalid_argument "Knn.fit: k must be >= 1") (fun () ->
      ignore (Knn.fit ~k:0 (Mat.create 2 2) [| 0; 1 |]))

let () =
  Alcotest.run "knn"
    [ ( "prediction",
        [ Alcotest.test_case "nearest" `Quick test_nearest_neighbour;
          Alcotest.test_case "majority" `Quick test_majority_vote;
          Alcotest.test_case "tie break" `Quick test_tie_breaks_to_nearest;
          Alcotest.test_case "clusters" `Quick test_clusters;
          Alcotest.test_case "k clamped" `Quick test_k_clamped ] );
      ( "votes",
        [ Alcotest.test_case "shape" `Quick test_votes_shape;
          Alcotest.test_case "summing" `Quick test_vote_summing;
          Alcotest.test_case "from distances" `Quick test_votes_of_distances ] );
      ("errors", [ Alcotest.test_case "bad k" `Quick test_errors ]) ]
