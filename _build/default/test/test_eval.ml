open Test_support

let test_accuracy () =
  check_float "all correct" 1. (Eval.accuracy [| 0; 1; 2 |] [| 0; 1; 2 |]);
  check_float "none correct" 0. (Eval.accuracy [| 1; 2; 0 |] [| 0; 1; 2 |]);
  check_float "half" 0.5 (Eval.accuracy [| 0; 1 |] [| 0; 0 |]);
  check_float "error rate" 0.5 (Eval.error_rate [| 0; 1 |] [| 0; 0 |])

let test_accuracy_errors () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Eval.accuracy: length mismatch")
    (fun () -> ignore (Eval.accuracy [| 0 |] [| 0; 1 |]));
  Alcotest.check_raises "empty" (Invalid_argument "Eval.accuracy: empty") (fun () ->
      ignore (Eval.accuracy [||] [||]))

let test_confusion () =
  let c = Eval.confusion ~n_classes:2 [| 0; 1; 1; 0 |] [| 0; 0; 1; 1 |] in
  Alcotest.(check int) "tp0" 1 c.(0).(0);
  Alcotest.(check int) "0 predicted 1" 1 c.(0).(1);
  Alcotest.(check int) "1 predicted 0" 1 c.(1).(0);
  Alcotest.(check int) "tp1" 1 c.(1).(1)

let test_confusion_totals () =
  let r = rng () in
  let n = 50 in
  let pred = Array.init n (fun _ -> Rng.int r 3) in
  let truth = Array.init n (fun _ -> Rng.int r 3) in
  let c = Eval.confusion ~n_classes:3 pred truth in
  let total = Array.fold_left (fun acc row -> Array.fold_left ( + ) acc row) 0 c in
  Alcotest.(check int) "mass preserved" n total

let test_over_runs () =
  let mean, std = Eval.over_runs (fun i -> float_of_int i) 3 in
  check_float "mean" 1. mean;
  check_float "std" 1. std

let () =
  Alcotest.run "eval"
    [ ( "accuracy",
        [ Alcotest.test_case "basic" `Quick test_accuracy;
          Alcotest.test_case "errors" `Quick test_accuracy_errors ] );
      ( "confusion",
        [ Alcotest.test_case "entries" `Quick test_confusion;
          Alcotest.test_case "totals" `Quick test_confusion_totals ] );
      ("runs", [ Alcotest.test_case "over_runs" `Quick test_over_runs ]) ]
