open Test_support

(* Two views sharing a latent signal in known directions. *)
let correlated_views r ~n ~noise =
  let x1 = Mat.create 4 n and x2 = Mat.create 3 n in
  for j = 0 to n - 1 do
    let s = Rng.gaussian r in
    Mat.set x1 0 j (s +. (noise *. Rng.gaussian r));
    Mat.set x1 1 j (Rng.gaussian r);
    Mat.set x1 2 j (Rng.gaussian r);
    Mat.set x1 3 j (Rng.gaussian r);
    Mat.set x2 0 j (Rng.gaussian r);
    Mat.set x2 1 j (s +. (noise *. Rng.gaussian r));
    Mat.set x2 2 j (Rng.gaussian r)
  done;
  (x1, x2)

let test_finds_shared_signal () =
  let r = rng () in
  let x1, x2 = correlated_views r ~n:2000 ~noise:0.1 in
  let cca = Cca.fit ~eps:1e-3 ~r:2 x1 x2 in
  let rho = Cca.correlations cca in
  check_true "strong first correlation" (rho.(0) > 0.9);
  check_true "weak second" (rho.(1) < 0.3);
  (* The canonical variables of the two views are themselves correlated. *)
  let z1 = Cca.transform1 cca x1 and z2 = Cca.transform2 cca x2 in
  check_true "projected correlation"
    (Float.abs (Stats.pearson (Mat.row z1 0) (Mat.row z2 0)) > 0.9)

let test_correlations_bounded () =
  let r = rng () in
  let x1 = random_mat r 5 100 and x2 = random_mat r 4 100 in
  let cca = Cca.fit ~r:4 x1 x2 in
  Array.iter (fun rho -> check_true "in [0,1+eps]" (rho >= 0. && rho <= 1.01))
    (Cca.correlations cca)

let test_independent_views_low_correlation () =
  let r = rng () in
  let x1 = random_mat r 4 3000 and x2 = random_mat r 4 3000 in
  let cca = Cca.fit ~eps:1e-2 ~r:2 x1 x2 in
  check_true "independent ⇒ low rho" ((Cca.correlations cca).(0) < 0.2)

let test_invariance_to_affine_transform () =
  (* CCA correlations are invariant under invertible linear maps per view. *)
  let r = rng () in
  let x1, x2 = correlated_views r ~n:1500 ~noise:0.3 in
  let a = Mat.add_scaled_identity 0.8 (random_mat r 4 4) in
  let x1t = Mat.mul a x1 in
  let rho = Cca.correlations (Cca.fit ~eps:1e-6 ~r:2 x1 x2) in
  let rho' = Cca.correlations (Cca.fit ~eps:1e-6 ~r:2 x1t x2) in
  check_float ~eps:0.02 "invariant leading rho" rho.(0) rho'.(0)

let test_transform_shapes () =
  let r = rng () in
  let x1, x2 = correlated_views r ~n:50 ~noise:0.5 in
  let cca = Cca.fit ~r:2 x1 x2 in
  Alcotest.(check int) "r" 2 (Cca.r cca);
  Alcotest.(check (pair int int)) "z1" (2, 50) (Mat.dims (Cca.transform1 cca x1));
  Alcotest.(check (pair int int)) "concat" (4, 50) (Mat.dims (Cca.transform_concat cca x1 x2))

let test_unit_variance_canonical_variables () =
  let r = rng () in
  let x1, x2 = correlated_views r ~n:3000 ~noise:0.3 in
  let cca = Cca.fit ~eps:1e-4 ~r:2 x1 x2 in
  let z1 = Cca.transform1 cca x1 in
  let row = Mat.row z1 0 in
  check_float ~eps:0.08 "unit variance" 1. (Vec.dot row row /. 3000.)

let test_r_clamped () =
  let r = rng () in
  let x1 = random_mat r 3 40 and x2 = random_mat r 5 40 in
  Alcotest.(check int) "clamped to min d" 3 (Cca.r (Cca.fit ~r:10 x1 x2))

let test_errors () =
  let r = rng () in
  Alcotest.check_raises "instance mismatch" (Invalid_argument "Cca.fit: instance count mismatch")
    (fun () -> ignore (Cca.fit ~r:1 (random_mat r 2 5) (random_mat r 2 6)))

let () =
  Alcotest.run "cca"
    [ ( "statistics",
        [ Alcotest.test_case "shared signal" `Quick test_finds_shared_signal;
          Alcotest.test_case "bounded" `Quick test_correlations_bounded;
          Alcotest.test_case "independence" `Quick test_independent_views_low_correlation;
          Alcotest.test_case "affine invariance" `Quick test_invariance_to_affine_transform;
          Alcotest.test_case "unit variance" `Quick test_unit_variance_canonical_variables ] );
      ( "interface",
        [ Alcotest.test_case "shapes" `Quick test_transform_shapes;
          Alcotest.test_case "clamping" `Quick test_r_clamped;
          Alcotest.test_case "errors" `Quick test_errors ] ) ]
