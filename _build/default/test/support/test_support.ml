(* Shared helpers for the alcotest/qcheck suites. *)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let check_true msg condition = Alcotest.(check bool) msg true condition

let check_mat ?(eps = 1e-9) msg expected actual =
  if not (Mat.equal ~eps expected actual) then
    Alcotest.failf "%s:@ expected@ %a@ got@ %a" msg Mat.pp expected Mat.pp actual

let check_vec ?(eps = 1e-9) msg expected actual =
  if not (Vec.equal ~eps expected actual) then
    Alcotest.failf "%s: vectors differ beyond %g" msg eps

let check_tensor ?(eps = 1e-9) msg expected actual =
  if not (Tensor.equal ~eps expected actual) then Alcotest.failf "%s: tensors differ" msg

(* Deterministic random inputs for tests. *)
let rng () = Rng.create 0xC0FFEE

let random_vec rng n = Array.init n (fun _ -> Rng.gaussian rng)
let random_mat rng rows cols = Mat.init rows cols (fun _ _ -> Rng.gaussian rng)

let random_spd rng n =
  (* AᵀA + I is comfortably positive definite. *)
  let a = random_mat rng n n in
  Mat.add_scaled_identity 1. (Mat.tgram a)

let random_tensor rng dims = Tensor.init dims (fun _ -> Rng.gaussian rng)

let random_orthonormal rng n k = Qr.orthonormalize (random_mat rng n k)

(* qcheck generators; sizes kept small so property tests stay fast. *)
let small_dim = QCheck2.Gen.int_range 1 8

let gen_vec =
  QCheck2.Gen.(small_dim >>= fun n -> array_size (return n) (float_range (-10.) 10.))

let gen_mat =
  QCheck2.Gen.(
    pair (int_range 1 8) (int_range 1 8) >>= fun (r, c) ->
    array_size (return (r * c)) (float_range (-10.) 10.) >|= fun data ->
    Mat.unsafe_of_flat ~rows:r ~cols:c data)

let gen_square_mat =
  QCheck2.Gen.(
    int_range 1 8 >>= fun n ->
    array_size (return (n * n)) (float_range (-10.) 10.) >|= fun data ->
    Mat.unsafe_of_flat ~rows:n ~cols:n data)

let gen_spd =
  QCheck2.Gen.(gen_square_mat >|= fun a -> Mat.add_scaled_identity 1. (Mat.tgram a))

let gen_tensor3 =
  QCheck2.Gen.(
    triple (int_range 1 5) (int_range 1 5) (int_range 1 5) >>= fun (a, b, c) ->
    array_size (return (a * b * c)) (float_range (-5.) 5.) >|= fun data ->
    Tensor.of_flat [| a; b; c |] data)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
