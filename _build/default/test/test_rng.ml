open Test_support

let test_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let different = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then different := true
  done;
  check_true "different seeds give different streams" !different

let test_zero_seed () =
  (* splitmix seeding must not map seed 0 to a degenerate all-zero state. *)
  let r = Rng.create 0 in
  let all_zero = ref true in
  for _ = 1 to 8 do
    if Rng.int64 r <> 0L then all_zero := false
  done;
  check_true "seed 0 is not degenerate" (not !all_zero)

let test_int_bounds () =
  let r = rng () in
  for _ = 1 to 10_000 do
    let v = Rng.int r 7 in
    check_true "0 <= v < 7" (v >= 0 && v < 7)
  done

let test_int_uniformity () =
  let r = rng () in
  let counts = Array.make 5 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let v = Rng.int r 5 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = float_of_int draws /. 5. in
      check_true
        (Printf.sprintf "bucket %d within 5%% of uniform (%d)" i c)
        (Float.abs (float_of_int c -. expected) < 0.05 *. expected))
    counts

let test_int_invalid () =
  let r = rng () in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_uniform_range () =
  let r = rng () in
  for _ = 1 to 10_000 do
    let v = Rng.uniform r in
    check_true "uniform in [0,1)" (v >= 0. && v < 1.)
  done

let test_uniform_mean () =
  let r = rng () in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.uniform r
  done;
  check_float ~eps:0.01 "mean ~ 0.5" 0.5 (!sum /. float_of_int n)

let test_gaussian_moments () =
  let r = rng () in
  let n = 100_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian r) in
  let mean, std = Stats.mean_std samples in
  check_float ~eps:0.02 "gaussian mean ~ 0" 0. mean;
  check_float ~eps:0.02 "gaussian std ~ 1" 1. std

let test_gaussian_params () =
  let r = rng () in
  let n = 50_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian ~mu:3. ~sigma:2. r) in
  let mean, std = Stats.mean_std samples in
  check_float ~eps:0.05 "mu" 3. mean;
  check_float ~eps:0.05 "sigma" 2. std

let test_bernoulli () =
  let r = rng () in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  check_float ~eps:0.01 "p=0.3" 0.3 (float_of_int !hits /. float_of_int n)

let test_permutation_is_permutation () =
  let r = rng () in
  for n = 1 to 30 do
    let p = Rng.permutation r n in
    let seen = Array.make n false in
    Array.iter (fun i -> seen.(i) <- true) p;
    check_true "all indices present" (Array.for_all (fun b -> b) seen)
  done

let test_choose () =
  let r = rng () in
  let chosen = Rng.choose r 5 20 in
  Alcotest.(check int) "count" 5 (Array.length chosen);
  let sorted = Array.copy chosen in
  Array.sort compare sorted;
  for i = 1 to 4 do
    check_true "distinct" (sorted.(i) <> sorted.(i - 1))
  done;
  Array.iter (fun i -> check_true "in range" (i >= 0 && i < 20)) chosen

let test_choose_invalid () =
  let r = rng () in
  Alcotest.check_raises "k > n rejected" (Invalid_argument "Rng.choose: k > n") (fun () ->
      ignore (Rng.choose r 5 3))

let test_split_independence () =
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  (* Child and parent streams should differ. *)
  let differ = ref false in
  for _ = 1 to 10 do
    if Rng.int64 parent <> Rng.int64 child then differ := true
  done;
  check_true "split streams differ" !differ

let test_copy_preserves_stream () =
  let a = rng () in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  for _ = 1 to 20 do
    Alcotest.(check int64) "copies agree" (Rng.int64 a) (Rng.int64 b)
  done

let test_sign () =
  let r = rng () in
  let pos = ref 0 and n = 20_000 in
  for _ = 1 to n do
    let s = Rng.sign r in
    check_true "sign is ±1" (s = 1. || s = -1.);
    if s > 0. then incr pos
  done;
  check_float ~eps:0.02 "balanced" 0.5 (float_of_int !pos /. float_of_int n)

let () =
  Alcotest.run "rng"
    [ ( "stream",
        [ Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "zero seed" `Quick test_zero_seed;
          Alcotest.test_case "split independence" `Quick test_split_independence;
          Alcotest.test_case "copy" `Quick test_copy_preserves_stream ] );
      ( "distributions",
        [ Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "uniform range" `Quick test_uniform_range;
          Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "gaussian params" `Quick test_gaussian_params;
          Alcotest.test_case "bernoulli" `Quick test_bernoulli;
          Alcotest.test_case "sign" `Quick test_sign ] );
      ( "combinatorics",
        [ Alcotest.test_case "permutation" `Quick test_permutation_is_permutation;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "choose invalid" `Quick test_choose_invalid ] ) ]
