open Test_support

let test_solve_known () =
  (* 2x + y = 5, x + 3y = 10 -> x = 1, y = 3. *)
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Lu.solve_vec (Lu.decompose a) [| 5.; 10. |] in
  check_vec ~eps:1e-12 "solution" [| 1.; 3. |] x

let test_det_known () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_float ~eps:1e-12 "det" (-2.) (Lu.det (Lu.decompose a));
  check_float ~eps:1e-12 "det identity" 1. (Lu.det (Lu.decompose (Mat.identity 5)))

let test_det_permutation_sign () =
  (* Swapping two rows of I flips the determinant sign. *)
  let p = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_float ~eps:1e-12 "det swap" (-1.) (Lu.det (Lu.decompose p))

let test_inverse_roundtrip () =
  let r = rng () in
  for _ = 1 to 10 do
    let a = Mat.add_scaled_identity 0.5 (random_mat r 6 6) in
    let inv = Lu.inverse (Lu.decompose a) in
    check_mat ~eps:1e-8 "A·A⁻¹ = I" (Mat.identity 6) (Mat.mul a inv)
  done

let test_singular () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular raises" Lu.Singular (fun () -> ignore (Lu.decompose a))

let test_not_square () =
  Alcotest.check_raises "not square" (Invalid_argument "Lu.decompose: not square")
    (fun () -> ignore (Lu.decompose (Mat.create 2 3)))

let test_solve_matrix () =
  let r = rng () in
  let a = Mat.add_scaled_identity 1. (random_mat r 5 5) in
  let b = random_mat r 5 3 in
  let x = Lu.solve_system a b in
  check_mat ~eps:1e-8 "AX = B" b (Mat.mul a x)

let test_pivoting_needed () =
  (* Leading zero pivot forces a row exchange. *)
  let a = Mat.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Lu.solve_vec (Lu.decompose a) [| 2.; 3. |] in
  check_vec ~eps:1e-12 "pivoted solve" [| 3.; 2. |] x

let prop_solve_residual =
  qtest ~count:60 "‖Ax − b‖ small"
    QCheck2.Gen.(
      int_range 1 7 >>= fun n ->
      pair
        (array_size (return (n * n)) (float_range (-3.) 3.))
        (array_size (return n) (float_range (-3.) 3.))
      >|= fun (a, b) -> (Mat.add_scaled_identity 4. (Mat.unsafe_of_flat ~rows:n ~cols:n a), b))
    (fun (a, b) ->
      let x = Lu.solve_vec (Lu.decompose a) b in
      Vec.norm (Vec.sub (Mat.mul_vec a x) b) < 1e-6 *. (1. +. Vec.norm b))

let prop_det_transpose =
  qtest ~count:60 "det(A) = det(Aᵀ)" gen_square_mat (fun a ->
      match (Lu.decompose a, Lu.decompose (Mat.transpose a)) with
      | fa, fat ->
        let da = Lu.det fa and dat = Lu.det fat in
        Float.abs (da -. dat) <= 1e-6 *. (1. +. Float.abs da)
      | exception Lu.Singular -> true)

let () =
  Alcotest.run "lu"
    [ ( "solve",
        [ Alcotest.test_case "known system" `Quick test_solve_known;
          Alcotest.test_case "matrix rhs" `Quick test_solve_matrix;
          Alcotest.test_case "pivoting" `Quick test_pivoting_needed;
          Alcotest.test_case "inverse roundtrip" `Quick test_inverse_roundtrip ] );
      ( "determinant",
        [ Alcotest.test_case "known" `Quick test_det_known;
          Alcotest.test_case "permutation sign" `Quick test_det_permutation_sign ] );
      ( "errors",
        [ Alcotest.test_case "singular" `Quick test_singular;
          Alcotest.test_case "not square" `Quick test_not_square ] );
      ("properties", [ prop_solve_residual; prop_det_transpose ]) ]
