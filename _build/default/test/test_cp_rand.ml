open Test_support

let separated_rank2 () =
  let u1 = Mat.of_cols [| [| 1.; 0.; 0. |]; [| 0.; 1.; 0. |] |] in
  let u2 = Mat.of_cols [| [| 0.; 1.; 0.; 0. |]; [| 0.; 0.; 1.; 0. |] |] in
  let u3 = Mat.of_cols [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  { Kruskal.weights = [| 5.; 2. |]; factors = [| u1; u2; u3 |] }

let test_exact_recovery () =
  let truth = separated_rank2 () in
  let t = Kruskal.to_tensor truth in
  let k, info = Cp_rand.decompose ~rank:2 t in
  check_true "converged" info.Cp_rand.converged;
  check_float ~eps:1e-4 "true fit" 1. (Kruskal.fit k t);
  check_float ~eps:1e-3 "weights" 5. (Float.abs k.Kruskal.weights.(0))

let test_rank1_recovery () =
  let r = rng () in
  let xs =
    [| Vec.normalize (random_vec r 6);
       Vec.normalize (random_vec r 5);
       Vec.normalize (random_vec r 4) |]
  in
  let t = Tensor.scale 3. (Tensor.outer xs) in
  let k, _ = Cp_rand.decompose ~rank:1 t in
  check_float ~eps:1e-3 "weight" 3. (Float.abs k.Kruskal.weights.(0));
  Array.iteri
    (fun p u ->
      check_true
        (Printf.sprintf "direction %d" p)
        (Float.abs (Vec.dot (Mat.col u 0) xs.(p)) > 0.999))
    k.Kruskal.factors

let test_agrees_with_full_als () =
  (* On a noisy low-rank tensor the sampled solver should land on the same
     dominant component as full ALS. *)
  let r = rng () in
  let truth = separated_rank2 () in
  let noise = Tensor.scale 0.02 (random_tensor r [| 3; 4; 2 |]) in
  let t = Tensor.add (Kruskal.to_tensor truth) noise in
  let k_full, _ = Cp_als.decompose ~rank:2 t in
  let k_rand, _ = Cp_rand.decompose ~rank:2 t in
  let lead k = Kruskal.component k 0 in
  Array.iteri
    (fun p v ->
      check_true
        (Printf.sprintf "lead component agrees (view %d)" p)
        (Float.abs (Vec.dot v (lead k_full).(p)) > 0.99))
    (lead k_rand)

let test_sampled_fit_reasonable () =
  let truth = separated_rank2 () in
  let t = Kruskal.to_tensor truth in
  let _, info = Cp_rand.decompose ~rank:2 t in
  check_true "sampled fit near 1" (info.Cp_rand.sampled_fit > 0.99)

let test_deterministic () =
  let r = rng () in
  let t = random_tensor r [| 4; 4; 4 |] in
  let a, _ = Cp_rand.decompose ~rank:2 t in
  let b, _ = Cp_rand.decompose ~rank:2 t in
  check_vec ~eps:1e-12 "same seed, same weights" a.Kruskal.weights b.Kruskal.weights

let test_invalid_rank () =
  Alcotest.check_raises "rank 0" (Invalid_argument "Cp_rand.decompose: rank must be >= 1")
    (fun () -> ignore (Cp_rand.decompose ~rank:0 (Tensor.create [| 2; 2 |])))

let test_sample_override () =
  let truth = separated_rank2 () in
  let t = Kruskal.to_tensor truth in
  let options = { Cp_rand.default_options with samples_per_mode = Some 16 } in
  let k, _ = Cp_rand.decompose ~options ~rank:2 t in
  Alcotest.(check int) "rank kept" 2 (Kruskal.rank k)

let () =
  Alcotest.run "cp_rand"
    [ ( "recovery",
        [ Alcotest.test_case "rank-2 exact" `Quick test_exact_recovery;
          Alcotest.test_case "rank-1" `Quick test_rank1_recovery;
          Alcotest.test_case "agrees with ALS" `Quick test_agrees_with_full_als;
          Alcotest.test_case "sampled fit" `Quick test_sampled_fit_reasonable ] );
      ( "interface",
        [ Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "invalid rank" `Quick test_invalid_rank;
          Alcotest.test_case "sample override" `Quick test_sample_override ] ) ]
