open Test_support

let test_mean () =
  check_float "mean" 2. (Stats.mean [| 1.; 2.; 3. |]);
  check_float "singleton" 5. (Stats.mean [| 5. |])

let test_mean_empty () =
  Alcotest.check_raises "empty rejected" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_variance () =
  (* Unbiased: var([1;2;3]) = 1. *)
  check_float "variance" 1. (Stats.variance [| 1.; 2.; 3. |]);
  check_float "constant" 0. (Stats.variance [| 4.; 4.; 4. |]);
  check_float "single" 0. (Stats.variance [| 7. |])

let test_std_known () =
  check_float ~eps:1e-12 "std of [0;2]" (sqrt 2.) (Stats.std [| 0.; 2. |])

let test_min_max () =
  let a = [| 3.; -1.; 4.; 1.; 5. |] in
  check_float "min" (-1.) (Stats.min a);
  check_float "max" 5. (Stats.max a)

let test_argmax_argmin () =
  let a = [| 3.; -1.; 4.; 4.; -1. |] in
  Alcotest.(check int) "argmax first maximal" 2 (Stats.argmax a);
  Alcotest.(check int) "argmin first minimal" 1 (Stats.argmin a)

let test_median () =
  check_float "odd" 2. (Stats.median [| 3.; 1.; 2. |]);
  check_float "even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |])

let test_pearson_perfect () =
  let x = [| 1.; 2.; 3.; 4. |] in
  check_float ~eps:1e-12 "corr(x,x)=1" 1. (Stats.pearson x x);
  check_float ~eps:1e-12 "corr(x,-x)=-1" (-1.)
    (Stats.pearson x (Array.map (fun v -> -.v) x));
  check_float ~eps:1e-12 "affine invariance" 1.
    (Stats.pearson x (Array.map (fun v -> (3. *. v) +. 7.) x))

let test_pearson_constant () =
  check_float "constant input gives 0" 0. (Stats.pearson [| 1.; 1. |] [| 2.; 3. |])

let test_pearson_independent () =
  let r = rng () in
  let n = 20_000 in
  let x = Array.init n (fun _ -> Rng.gaussian r) in
  let y = Array.init n (fun _ -> Rng.gaussian r) in
  check_true "independent ~ 0" (Float.abs (Stats.pearson x y) < 0.05)

let test_dot_norm () =
  check_float "dot" 11. (Stats.dot [| 1.; 2. |] [| 3.; 4. |]);
  check_float "l2" 5. (Stats.l2_norm [| 3.; 4. |])

let test_normalize () =
  let v = Stats.normalize_l2 [| 3.; 4. |] in
  check_float ~eps:1e-12 "unit norm" 1. (Stats.l2_norm v);
  let z = Stats.normalize_l2 [| 0.; 0. |] in
  check_float "zero stays zero" 0. (Stats.l2_norm z)

let prop_mean_bounds =
  qtest "mean between min and max" gen_vec (fun a ->
      QCheck2.assume (Array.length a > 0);
      let m = Stats.mean a in
      m >= Stats.min a -. 1e-9 && m <= Stats.max a +. 1e-9)

let prop_variance_nonneg =
  qtest "variance non-negative" gen_vec (fun a ->
      QCheck2.assume (Array.length a > 0);
      Stats.variance a >= -1e-12)

let prop_pearson_range =
  qtest "pearson in [-1,1]"
    QCheck2.Gen.(pair gen_vec gen_vec)
    (fun (a, b) ->
      let n = min (Array.length a) (Array.length b) in
      QCheck2.assume (n > 1);
      let a = Array.sub a 0 n and b = Array.sub b 0 n in
      let r = Stats.pearson a b in
      r >= -1.0000001 && r <= 1.0000001)

let () =
  Alcotest.run "stats"
    [ ( "descriptive",
        [ Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "mean empty" `Quick test_mean_empty;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "std known" `Quick test_std_known;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "argmax/argmin" `Quick test_argmax_argmin;
          Alcotest.test_case "median" `Quick test_median ] );
      ( "correlation",
        [ Alcotest.test_case "pearson perfect" `Quick test_pearson_perfect;
          Alcotest.test_case "pearson constant" `Quick test_pearson_constant;
          Alcotest.test_case "pearson independent" `Quick test_pearson_independent;
          Alcotest.test_case "dot/norm" `Quick test_dot_norm;
          Alcotest.test_case "normalize" `Quick test_normalize ] );
      ("properties", [ prop_mean_bounds; prop_variance_nonneg; prop_pearson_range ]) ]
