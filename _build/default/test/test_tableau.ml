let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  go 0

let test_render () =
  let t = Tableau.create ~title:"demo" ~columns:[ "name"; "a"; "b" ] in
  Tableau.add_row t "row1" [ 1.; 2.5 ];
  Tableau.add_text_row t "row2" [ "x"; "y" ];
  let s = Tableau.render t in
  Alcotest.(check bool) "title" true (contains s "== demo ==");
  Alcotest.(check bool) "row label" true (contains s "row1");
  Alcotest.(check bool) "text cell" true (contains s "y");
  Alcotest.(check bool) "number" true (contains s "2.5")

let test_row_validation () =
  let t = Tableau.create ~title:"t" ~columns:[ "name"; "a" ] in
  Alcotest.check_raises "bad width"
    (Invalid_argument "Tableau.add_row: cell count does not match columns") (fun () ->
      Tableau.add_row t "r" [ 1.; 2. ])

let test_series () =
  let s =
    Tableau.series ~title:"fig" ~xlabel:"dim" ~x:[| 1.; 2. |]
      [ ("m1", [| 0.5; 0.6 |]); ("m2", [| 0.7; 0.8 |]) ]
  in
  Alcotest.(check bool) "columns" true (contains s "m1" && contains s "m2");
  Alcotest.(check bool) "x values" true (contains s "1" && contains s "2")

let test_pm () = Alcotest.(check string) "format" "62.36±1.27" (Tableau.pm 62.36 1.27)

let test_alignment () =
  let t = Tableau.create ~title:"a" ~columns:[ "n"; "value" ] in
  Tableau.add_row t "short" [ 1. ];
  Tableau.add_row t "much-longer-label" [ 2. ];
  let lines = String.split_on_char '\n' (Tableau.render t) in
  (* All data lines share the same width. *)
  let widths =
    List.filter_map
      (fun l -> if String.length l > 0 && l.[0] <> '=' then Some (String.length l) else None)
      lines
  in
  match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "aligned" w w') rest
  | [] -> Alcotest.fail "no lines"

let () =
  Alcotest.run "tableau"
    [ ( "rendering",
        [ Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "validation" `Quick test_row_validation;
          Alcotest.test_case "series" `Quick test_series;
          Alcotest.test_case "pm" `Quick test_pm;
          Alcotest.test_case "alignment" `Quick test_alignment ] ) ]
