open Test_support

let test_known () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let kr = Khatri_rao.product a b in
  (* Column k is a_k ⊗ b_k with b's index fastest. *)
  check_mat "khatri-rao"
    (Mat.of_arrays
       [| [| 5.; 12. |]; [| 7.; 16. |]; [| 15.; 24. |]; [| 21.; 32. |] |])
    kr

let test_shapes () =
  let r = rng () in
  let a = random_mat r 3 4 and b = random_mat r 5 4 in
  Alcotest.(check (pair int int)) "shape" (15, 4) (Mat.dims (Khatri_rao.product a b))

let test_mismatch () =
  Alcotest.check_raises "column mismatch"
    (Invalid_argument "Khatri_rao.product: column count mismatch") (fun () ->
      ignore (Khatri_rao.product (Mat.create 2 3) (Mat.create 2 4)))

let test_chain_order () =
  (* chain [u1; u2] = u2 ⊙ u1: u1's index varies fastest. *)
  let u1 = Mat.of_cols [| [| 1.; 2. |] |] in
  let u2 = Mat.of_cols [| [| 3.; 4. |] |] in
  let c = Khatri_rao.chain [ u1; u2 ] in
  check_vec "ordering" [| 3.; 6.; 4.; 8. |] (Mat.col c 0)

let test_chain_excluding () =
  let r = rng () in
  let us = [| random_mat r 2 3; random_mat r 4 3; random_mat r 5 3 |] in
  let ex1 = Khatri_rao.chain_excluding us 1 in
  Alcotest.(check (pair int int)) "shape skips mode 1" (10, 3) (Mat.dims ex1);
  check_mat ~eps:1e-12 "matches manual chain"
    (Khatri_rao.chain [ us.(0); us.(2) ])
    ex1

let test_gram_hadamard () =
  (* Gram of the KR chain equals the Hadamard product of factor Grams. *)
  let r = rng () in
  let us = [| random_mat r 3 4; random_mat r 5 4; random_mat r 2 4 |] in
  for k = 0 to 2 do
    let kr = Khatri_rao.chain_excluding us k in
    check_mat ~eps:1e-8
      (Printf.sprintf "gram identity (mode %d)" k)
      (Mat.tgram kr)
      (Khatri_rao.gram_hadamard_excluding us k)
  done

let test_cp_consistency () =
  (* For a rank-2 CP tensor, X(k) = U_k diag(λ) (⊙_{q≠k} U_q)ᵀ. *)
  let r = rng () in
  let factors = [| random_mat r 3 2; random_mat r 4 2; random_mat r 2 2 |] in
  let weights = [| 1.5; -0.7 |] in
  let t = Kruskal.to_tensor { Kruskal.weights; factors } in
  for k = 0 to 2 do
    let kr = Khatri_rao.chain_excluding factors k in
    let scaled =
      Mat.init (fst (Mat.dims factors.(k))) 2 (fun i j ->
          Mat.get factors.(k) i j *. weights.(j))
    in
    check_mat ~eps:1e-9
      (Printf.sprintf "unfolding identity (mode %d)" k)
      (Mat.mul_nt scaled kr) (Unfold.unfold t k)
  done

let prop_kr_column_norms =
  qtest ~count:40 "KR column norms multiply"
    QCheck2.Gen.(pair gen_vec gen_vec)
    (fun (x, y) ->
      QCheck2.assume (Array.length x > 0 && Array.length y > 0);
      let a = Mat.of_cols [| x |] and b = Mat.of_cols [| y |] in
      let kr = Khatri_rao.product a b in
      Float.abs (Vec.norm (Mat.col kr 0) -. (Vec.norm x *. Vec.norm y)) < 1e-6)

let () =
  Alcotest.run "khatri_rao"
    [ ( "product",
        [ Alcotest.test_case "known" `Quick test_known;
          Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "mismatch" `Quick test_mismatch ] );
      ( "chains",
        [ Alcotest.test_case "ordering" `Quick test_chain_order;
          Alcotest.test_case "excluding" `Quick test_chain_excluding;
          Alcotest.test_case "gram hadamard" `Quick test_gram_hadamard;
          Alcotest.test_case "CP unfolding identity" `Quick test_cp_consistency ] );
      ("properties", [ prop_kr_column_norms ]) ]
