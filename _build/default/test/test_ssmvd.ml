open Test_support

let blob_views r ~per_blob =
  let n = 2 * per_blob in
  let mk offset =
    Mat.init 4 n (fun i j ->
        let c = if j < per_blob then 0. else offset in
        (if i = 0 then c else 0.) +. (0.4 *. Rng.gaussian r))
  in
  ([| mk 10.; mk (-8.) |], Array.init n (fun j -> if j < per_blob then 0 else 1))

let test_shapes () =
  let r = rng () in
  let views, _ = blob_views r ~per_blob:20 in
  let z = Ssmvd.fit_transform ~r:3 views in
  Alcotest.(check (pair int int)) "r × N" (3, 40) (Mat.dims z)

let test_consensus_separates () =
  let r = rng () in
  let views, labels = blob_views r ~per_blob:25 in
  let z = Ssmvd.fit_transform ~r:2 views in
  let model = Knn.fit ~k:3 z labels in
  check_true "clusters separated" (Eval.accuracy (Knn.predict model z) labels > 0.9)

let test_view_weights_sparsity () =
  (* One informative view, one pure-noise view: the group norm of the noise
     view should be (relatively) suppressed by the ℓ2,1 penalty. *)
  let r = rng () in
  let n = 60 in
  let signal =
    Mat.init 4 n (fun i j ->
        (if i = 0 && j < 30 then 8. else 0.) +. (0.3 *. Rng.gaussian r))
  in
  let noise = Mat.init 4 n (fun _ _ -> 0.3 *. Rng.gaussian r) in
  let weights =
    Ssmvd.view_weights
      ~options:{ Ssmvd.default_options with Ssmvd.lambda = 1.0 }
      ~r:2 [| signal; noise |]
  in
  check_true "informative view dominates" (weights.(0) > weights.(1))

let test_lambda_shrinks () =
  (* Stronger sparsity weight shrinks the total group norm. *)
  let r = rng () in
  let views, _ = blob_views r ~per_blob:20 in
  let total lambda =
    Vec.sum (Ssmvd.view_weights ~options:{ Ssmvd.default_options with Ssmvd.lambda } ~r:2 views)
  in
  check_true "monotone shrinkage" (total 10. <= total 0.01 +. 1e-6)

let test_deterministic () =
  let r1 = rng () and r2 = rng () in
  let v1, _ = blob_views r1 ~per_blob:15 in
  let v2, _ = blob_views r2 ~per_blob:15 in
  check_mat ~eps:1e-9 "same input, same output" (Ssmvd.fit_transform ~r:2 v1)
    (Ssmvd.fit_transform ~r:2 v2)

let () =
  Alcotest.run "ssmvd"
    [ ( "consensus",
        [ Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "separates" `Quick test_consensus_separates;
          Alcotest.test_case "view weights" `Quick test_view_weights_sparsity;
          Alcotest.test_case "lambda" `Quick test_lambda_shrinks;
          Alcotest.test_case "deterministic" `Quick test_deterministic ] ) ]
