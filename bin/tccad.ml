(* The serving daemon and its client.

   dune exec bin/tccad.exe -- serve --listen unix:/tmp/tccad.sock --state-dir /tmp/tccad
   dune exec bin/tccad.exe -- serve --model m.tccm --listen tcp:7070 --workers 4
   dune exec bin/tccad.exe -- health  --connect unix:/tmp/tccad.sock
   dune exec bin/tccad.exe -- list-models --connect unix:/tmp/tccad.sock
   dune exec bin/tccad.exe -- ingest  --connect unix:/tmp/tccad.sock --model a --seed 1 -n 200 --views 3 --dim 12
   dune exec bin/tccad.exe -- refit   --connect unix:/tmp/tccad.sock --model a
   dune exec bin/tccad.exe -- transform --connect unix:/tmp/tccad.sock --model a --seed 7 -n 16
   dune exec bin/tccad.exe -- swap    --connect unix:/tmp/tccad.sock --model b /path/model.tccm
   dune exec bin/tccad.exe -- drain   --connect unix:/tmp/tccad.sock [--model a]

   Every client subcommand targets one model of the daemon's registry via
   --model (default "default", the PR-8 single-model slot); drain without
   --model stops the whole daemon.  The client generates deterministic
   synthetic views from a seed (same generator as tcca_experiments fit), so
   two [transform --seed S] calls against the same model print
   byte-identical output — the property the daemon kill-and-resume CI check
   asserts, per model. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Addresses: unix:PATH or tcp:PORT (loopback). *)

let sockaddr_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
    Ok (Unix.ADDR_UNIX (String.sub s (i + 1) (String.length s - i - 1)))
  | Some i when String.sub s 0 i = "tcp" -> (
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some port when port > 0 && port < 65536 ->
      Ok (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
    | _ -> Error (`Msg "tcp address needs a port number"))
  | _ -> Error (`Msg "address must be unix:PATH or tcp:PORT")

let addr_conv =
  let parse s = sockaddr_of_string s in
  let print ppf = function
    | Unix.ADDR_UNIX p -> Format.fprintf ppf "unix:%s" p
    | Unix.ADDR_INET (_, port) -> Format.fprintf ppf "tcp:%d" port
  in
  Arg.conv (parse, print)

(* ------------------------------------------------------------------ *)
(* serve *)

let setup_logs () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Info)

let serve_cmd =
  let model =
    Arg.(value & opt (some string) None & info [ "model" ] ~docv:"FILE"
           ~doc:"Model file (TCCM) to serve as \"default\"; otherwise recover from --state-dir.")
  in
  let listen =
    Arg.(value & opt addr_conv (Unix.ADDR_UNIX "/tmp/tccad.sock")
         & info [ "listen" ] ~docv:"ADDR" ~doc:"unix:PATH or tcp:PORT.")
  in
  let state_dir =
    Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR"
           ~doc:"State root (one subdirectory per model; created if missing).")
  in
  let workers =
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N"
           ~doc:"Compute threads per model (default: the domain-pool size).")
  in
  let queue =
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N"
           ~doc:"Per-model request-queue capacity.")
  in
  let deadline =
    Arg.(value & opt int 5000 & info [ "default-deadline-ms" ] ~docv:"MS"
           ~doc:"Deadline for requests that do not carry one (negative = unlimited).")
  in
  let io_timeout =
    Arg.(value & opt float 30. & info [ "io-timeout" ] ~docv:"S"
           ~doc:"Per-connection frame-read timeout.")
  in
  let refit_iters =
    Arg.(value & opt int 100 & info [ "refit-iters" ] ~docv:"K" ~doc:"Max ALS sweeps per refit.")
  in
  let refit_tol =
    Arg.(value & opt float 1e-6 & info [ "refit-tol" ] ~docv:"T" ~doc:"Refit ALS tolerance.")
  in
  let eps =
    Arg.(value & opt float 1e-2 & info [ "eps" ] ~docv:"E" ~doc:"Whitening regularizer.")
  in
  let rank =
    Arg.(value & opt int 4 & info [ "rank" ] ~docv:"R" ~doc:"Rank for cold-start refits.")
  in
  let breaker_failures =
    Arg.(value & opt int 5 & info [ "breaker-failures" ] ~docv:"N"
           ~doc:"Consecutive failures that trip a model's circuit breaker.")
  in
  let breaker_cooldown =
    Arg.(value & opt int 1000 & info [ "breaker-cooldown-ms" ] ~docv:"MS"
           ~doc:"Open-breaker cooldown before half-open probes.")
  in
  let max_respawns =
    Arg.(value & opt int 4 & info [ "max-respawns" ] ~docv:"N"
           ~doc:"Crashed-worker respawn budget per model.")
  in
  let batch_max =
    Arg.(value & opt int 32 & info [ "batch-max" ] ~docv:"N"
           ~doc:"Most concurrent transform/predict requests one GEMM \
                 micro-batch may stack (1 disables coalescing).")
  in
  let batch_window =
    Arg.(value & opt int 0 & info [ "batch-window-us" ] ~docv:"US"
           ~doc:"How long a worker lingers for batch stragglers once its \
                 queue runs dry, in microseconds (0: no added latency).")
  in
  let action model listen state_dir workers queue deadline io_timeout refit_iters
      refit_tol eps rank breaker_failures breaker_cooldown max_respawns batch_max
      batch_window =
    setup_logs ();
    let cfg =
      { Server.default_config with
        workers = (match workers with Some w -> w | None -> Server.default_config.Server.workers);
        queue_capacity = queue;
        default_deadline_ms = deadline;
        io_timeout_s = io_timeout;
        state_dir;
        refit_options = { Cp_als.default_options with max_iter = refit_iters; tol = refit_tol };
        eps;
        rank;
        breaker =
          { Breaker.default_config with
            failure_threshold = breaker_failures;
            open_cooldown_s = float_of_int breaker_cooldown /. 1000. };
        max_respawns;
        batch_max;
        batch_window_us = batch_window }
    in
    match
      match model with
      | None -> Ok None
      | Some path -> (
        match Model_store.load ~path with
        | Ok m -> Ok (Some m)
        | Error e -> Error (Checkpoint.load_error_to_string e))
    with
    | Error msg -> `Error (false, "--model: " ^ msg)
    | Ok model ->
      let t = Server.create ?model cfg in
      (* Graceful drain on SIGTERM/SIGINT: flip the (atomic) drain flag and
         fire the drain hooks — the reactor's hook is one self-pipe write,
         so it wakes immediately, flushes in-flight work and snapshots
         before exiting. *)
      let handler = Sys.Signal_handle (fun _ -> Server.request_drain t) in
      Sys.set_signal Sys.sigterm handler;
      Sys.set_signal Sys.sigint handler;
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      Event_loop.serve_forever t listen;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the serving daemon.")
    Term.(ret
            (const action $ model $ listen $ state_dir $ workers $ queue $ deadline
             $ io_timeout $ refit_iters $ refit_tol $ eps $ rank $ breaker_failures
             $ breaker_cooldown $ max_respawns $ batch_max $ batch_window))

(* ------------------------------------------------------------------ *)
(* client plumbing *)

let connect_arg =
  Arg.(value & opt addr_conv (Unix.ADDR_UNIX "/tmp/tccad.sock")
       & info [ "connect" ] ~docv:"ADDR" ~doc:"Daemon address (unix:PATH or tcp:PORT).")

let model_arg =
  Arg.(value & opt string "default" & info [ "model" ] ~docv:"ID"
       ~doc:"Target model id in the daemon's registry.")

let with_conn addr f =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd addr;
      f fd)

(* Same generator as tcca_experiments' fit harness: a shared 4-dim latent
   signal plus per-view noise, a pure function of (views, dim, n, seed). *)
let synth_views ~views ~dim ~n ~seed =
  let rng = Rng.create seed in
  let latent = Mat.init 4 n (fun _ _ -> Rng.gaussian rng) in
  let out = Array.make views (Mat.create 0 0) in
  for p = 0 to views - 1 do
    let mix = Mat.init dim 4 (fun _ _ -> Rng.gaussian rng) in
    let noise = Mat.init dim n (fun _ _ -> 0.5 *. Rng.gaussian rng) in
    out.(p) <- Mat.add (Mat.mul mix latent) noise
  done;
  out

let synth_from_dims ~dims ~n ~seed =
  (* Per-view dims may differ after a swap; generate at the max and slice.
     (All in-tree models use homogeneous dims, where this is exact.) *)
  let views = Array.length dims in
  let dmax = Array.fold_left max 1 dims in
  let full = synth_views ~views ~dim:dmax ~n ~seed in
  Array.map2 (fun v d -> Mat.init d n (fun i j -> Mat.get v i j)) full dims

let fetch_dims fd ~model_id =
  match Protocol.call fd (Protocol.Model_health { model_id }) with
  | Protocol.R_model_health { mh_dims; _ } when Array.length mh_dims > 0 -> Ok mh_dims
  | Protocol.R_model_health _ ->
    Error (Printf.sprintf "model %S is cold: no dims to generate against" model_id)
  | Protocol.R_error { code; message } ->
    Error (Printf.sprintf "[%s] %s" code message)
  | _ -> Error "unexpected model-health reply"

let print_response = function
  | Protocol.R_health
      { version; r; dims; queue_depth; queue_capacity; workers; ingested; since_fit;
        draining } ->
    Printf.printf "version %d  r %d  dims [%s]  queue %d/%d  workers %d  ingested %d  since-fit %d  draining %b\n"
      version r
      (String.concat ";" (Array.to_list (Array.map string_of_int dims)))
      queue_depth queue_capacity workers ingested since_fit draining;
    `Ok ()
  | Protocol.R_matrix m ->
    Printf.printf "matrix %d %d\n" m.Mat.rows m.Mat.cols;
    Array.iter (fun v -> Printf.printf "%.17g\n" v) m.Mat.data;
    `Ok ()
  | Protocol.R_scores s ->
    Printf.printf "scores %d\n" (Array.length s);
    Array.iter (fun v -> Printf.printf "%.17g\n" v) s;
    `Ok ()
  | Protocol.R_ok { version; note } ->
    Printf.printf "ok version %d: %s\n" version note;
    `Ok ()
  | Protocol.R_shed { depth; capacity } ->
    `Error (false, Printf.sprintf "shed: queue %d/%d full — retry later" depth capacity)
  | Protocol.R_deadline { stage; elapsed_ms } ->
    `Error (false, Printf.sprintf "deadline exceeded at %s after %d ms" stage elapsed_ms)
  | Protocol.R_unavailable { model_id; retry_after_ms } ->
    `Error
      ( false,
        Printf.sprintf "unavailable: model %S breaker open — retry in %d ms" model_id
          retry_after_ms )
  | Protocol.R_models infos ->
    Array.iter
      (fun { Protocol.mi_id; mi_version; mi_r; mi_breaker; mi_draining } ->
        Printf.printf "%s version %d r %d breaker %s draining %b\n" mi_id mi_version
          mi_r mi_breaker mi_draining)
      infos;
    `Ok ()
  | Protocol.R_model_health h ->
    Printf.printf
      "model %s  version %d  r %d  dims [%s]  queue %d/%d  workers %d  breaker %s  \
       retry-after %d ms  failures %d  respawns %d  ingested %d  since-fit %d  \
       last-refit %s  draining %b\n"
      h.Protocol.mh_id h.Protocol.mh_version h.Protocol.mh_r
      (String.concat ";" (Array.to_list (Array.map string_of_int h.Protocol.mh_dims)))
      h.Protocol.mh_queue_depth h.Protocol.mh_queue_capacity h.Protocol.mh_workers
      h.Protocol.mh_breaker h.Protocol.mh_retry_after_ms h.Protocol.mh_failures
      h.Protocol.mh_respawns h.Protocol.mh_ingested h.Protocol.mh_since_fit
      h.Protocol.mh_last_refit h.Protocol.mh_draining;
    `Ok ()
  | Protocol.R_error { code; message } ->
    `Error (false, Printf.sprintf "error [%s]: %s" code message)

(* ------------------------------------------------------------------ *)
(* health: per-model table, non-zero exit iff any breaker is open. *)

let health_cmd =
  let action connect =
    try
      with_conn connect (fun fd ->
          match Protocol.call fd Protocol.List_models with
          | Protocol.R_models infos ->
            let healths =
              Array.to_list infos
              |> List.filter_map (fun { Protocol.mi_id; _ } ->
                     match
                       Protocol.call fd (Protocol.Model_health { model_id = mi_id })
                     with
                     | Protocol.R_model_health h -> Some h
                     | _ -> None)
            in
            Printf.printf "%-16s %-9s %7s %3s %7s %7s %8s %9s %8s  %s\n" "MODEL"
              "BREAKER" "VERSION" "R" "QUEUE" "WORKERS" "INGESTED" "SINCE-FIT"
              "RESPAWNS" "LAST-REFIT";
            List.iter
              (fun h ->
                Printf.printf "%-16s %-9s %7d %3d %3d/%-3d %7d %8d %9d %8d  %s%s\n"
                  h.Protocol.mh_id h.Protocol.mh_breaker h.Protocol.mh_version
                  h.Protocol.mh_r h.Protocol.mh_queue_depth
                  h.Protocol.mh_queue_capacity h.Protocol.mh_workers
                  h.Protocol.mh_ingested h.Protocol.mh_since_fit
                  h.Protocol.mh_respawns h.Protocol.mh_last_refit
                  (if h.Protocol.mh_draining then "  [draining]" else ""))
              healths;
            let open_models =
              List.filter (fun h -> h.Protocol.mh_breaker = "open") healths
            in
            if open_models = [] then `Ok ()
            else
              `Error
                ( false,
                  Printf.sprintf "breaker open: %s"
                    (String.concat ", "
                       (List.map (fun h -> h.Protocol.mh_id) open_models)) )
          | resp -> print_response resp)
    with Unix.Unix_error (e, _, _) -> `Error (false, "connect: " ^ Unix.error_message e)
       | Failure msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:"Per-model health table; exits non-zero iff any circuit breaker is open.")
    Term.(ret (const action $ connect_arg))

let list_models_cmd =
  let action connect =
    try with_conn connect (fun fd -> print_response (Protocol.call fd Protocol.List_models))
    with Unix.Unix_error (e, _, _) -> `Error (false, "connect: " ^ Unix.error_message e)
       | Failure msg -> `Error (false, msg)
  in
  Cmd.v (Cmd.info "list-models" ~doc:"List the models in the daemon's registry.")
    Term.(ret (const action $ connect_arg))

let model_health_cmd =
  let action connect model_id =
    try
      with_conn connect (fun fd ->
          print_response (Protocol.call fd (Protocol.Model_health { model_id })))
    with Unix.Unix_error (e, _, _) -> `Error (false, "connect: " ^ Unix.error_message e)
       | Failure msg -> `Error (false, msg)
  in
  Cmd.v (Cmd.info "model-health" ~doc:"Full health record for one model.")
    Term.(ret (const action $ connect_arg $ model_arg))

let drain_cmd =
  let model =
    Arg.(value & opt string "" & info [ "model" ] ~docv:"ID"
         ~doc:"Drain only this model (its siblings keep serving); without it, \
               drain and stop the whole daemon.")
  in
  let action connect model_id =
    try
      with_conn connect (fun fd ->
          print_response (Protocol.call fd (Protocol.Drain { model_id })))
    with Unix.Unix_error (e, _, _) -> `Error (false, "connect: " ^ Unix.error_message e)
       | Failure msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "drain" ~doc:"Drain one model, or the whole daemon without --model.")
    Term.(ret (const action $ connect_arg $ model))

let swap_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let action connect model_id path =
    try
      with_conn connect (fun fd ->
          print_response (Protocol.call fd (Protocol.Swap { path; model_id })))
    with Unix.Unix_error (e, _, _) -> `Error (false, "connect: " ^ Unix.error_message e)
       | Failure msg -> `Error (false, msg)
  in
  Cmd.v (Cmd.info "swap" ~doc:"Hot-swap one model from a file.")
    Term.(ret (const action $ connect_arg $ model_arg $ path))

let refit_cmd =
  let deadline =
    Arg.(value & opt int (-1) & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Refit deadline (negative = server default).")
  in
  let action connect model_id deadline_ms =
    try
      with_conn connect (fun fd ->
          print_response
            (Protocol.call ~timeout_s:600. fd (Protocol.Refit { deadline_ms; model_id })))
    with Unix.Unix_error (e, _, _) -> `Error (false, "connect: " ^ Unix.error_message e)
       | Failure msg -> `Error (false, msg)
  in
  Cmd.v (Cmd.info "refit" ~doc:"Warm-started incremental refit from ingested samples.")
    Term.(ret (const action $ connect_arg $ model_arg $ deadline))

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Data seed.")
let n_arg = Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"Instances.")

let ingest_cmd =
  let views =
    Arg.(value & opt (some int) None & info [ "views" ] ~docv:"M"
           ~doc:"View count (required when the model is cold).")
  in
  let dim =
    Arg.(value & opt (some int) None & info [ "dim" ] ~docv:"D"
           ~doc:"Per-view dimension (required when the model is cold).")
  in
  let action connect model_id seed n views dim =
    try
      with_conn connect (fun fd ->
          let dims =
            match (views, dim) with
            | Some m, Some d -> Ok (Array.make m d)
            | _ -> fetch_dims fd ~model_id
          in
          match dims with
          | Error msg -> `Error (false, msg ^ " (pass --views and --dim)")
          | Ok dims ->
            let batch = synth_from_dims ~dims ~n ~seed in
            print_response
              (Protocol.call fd (Protocol.Ingest { views = batch; model_id })))
    with Unix.Unix_error (e, _, _) -> `Error (false, "connect: " ^ Unix.error_message e)
       | Failure msg -> `Error (false, msg)
  in
  Cmd.v (Cmd.info "ingest" ~doc:"Ingest a deterministic synthetic sample batch.")
    Term.(ret (const action $ connect_arg $ model_arg $ seed_arg $ n_arg $ views $ dim))

let batch_query_cmd name doc mk =
  let deadline =
    Arg.(value & opt int (-1) & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Request deadline (negative = server default).")
  in
  let action connect model_id seed n deadline_ms =
    try
      with_conn connect (fun fd ->
          match fetch_dims fd ~model_id with
          | Error msg -> `Error (false, msg)
          | Ok dims ->
            let batch = synth_from_dims ~dims ~n ~seed in
            print_response (Protocol.call fd (mk ~deadline_ms ~views:batch ~model_id)))
    with Unix.Unix_error (e, _, _) -> `Error (false, "connect: " ^ Unix.error_message e)
       | Failure msg -> `Error (false, msg)
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(ret (const action $ connect_arg $ model_arg $ seed_arg $ n_arg $ deadline))

let transform_cmd =
  batch_query_cmd "transform" "Project a deterministic synthetic batch (%.17g output)."
    (fun ~deadline_ms ~views ~model_id -> Protocol.Transform { deadline_ms; views; model_id })

let predict_cmd =
  batch_query_cmd "predict" "Score a deterministic synthetic batch (%.17g output)."
    (fun ~deadline_ms ~views ~model_id -> Protocol.Predict { deadline_ms; views; model_id })

(* ------------------------------------------------------------------ *)
(* load: multi-connection pipelined load generator.

   Opens C connections, writes every request frame up front (full
   pipelining), then reads the responses back — verifying each response
   body is byte-identical to a sequentially-obtained reference for the
   same request, in request order.  Requests cycle through 4 variants
   (different seed and column count) so an ordering bug cannot hide.
   With --stall-connections, K extra sockets send half a frame header and
   then stall — the slow-loris probe; --stall-wait asserts the daemon
   drops them while the load traffic above stays byte-perfect. *)

let load_cmd =
  let connections =
    Arg.(value & opt int 32 & info [ "connections" ] ~docv:"C"
           ~doc:"Concurrent client connections.")
  in
  let per_conn =
    Arg.(value & opt int 64 & info [ "per-conn" ] ~docv:"N"
           ~doc:"Pipelined requests per connection.")
  in
  let stall =
    Arg.(value & opt int 0 & info [ "stall-connections" ] ~docv:"K"
           ~doc:"Extra connections that send half a frame header and stall \
                 (slow-loris probe).")
  in
  let stall_wait =
    Arg.(value & opt float 0. & info [ "stall-wait" ] ~docv:"S"
           ~doc:"After the load completes, wait up to S seconds for the \
                 daemon to drop the stalled connections; exit non-zero if \
                 it keeps any (0: just close them).")
  in
  let action connect model_id seed n connections per_conn stall stall_wait =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let write_all fd s =
      let b = Bytes.unsafe_of_string s in
      let len = Bytes.length b in
      let off = ref 0 in
      while !off < len do
        off := !off + Unix.write fd b !off (len - !off)
      done
    in
    let connect_fd () =
      let fd = Unix.socket (Unix.domain_of_sockaddr connect) Unix.SOCK_STREAM 0 in
      Unix.connect fd connect;
      fd
    in
    try
      (* Reference pass: one sequential connection captures the expected
         bytes for each request variant. *)
      let variants = 4 in
      let reqs, refs =
        with_conn connect (fun fd ->
            match fetch_dims fd ~model_id with
            | Error msg -> Error msg
            | Ok dims ->
              let reqs =
                Array.init variants (fun v ->
                    Protocol.Transform
                      { deadline_ms = -1;
                        views = synth_from_dims ~dims ~n:(n + v) ~seed:(seed + v);
                        model_id })
              in
              let refs =
                Array.map
                  (fun req ->
                    Protocol.write_frame fd (Protocol.request_to_string req);
                    match Protocol.read_frame fd with
                    | Protocol.Frame body -> body
                    | _ -> failwith "load: no reply to reference request")
                  reqs
              in
              Ok (reqs, refs))
        |> function
        | Error msg -> failwith ("load: " ^ msg)
        | Ok x -> x
      in
      (* One shared blob of per_conn pipelined frames. *)
      let blob =
        let b = Buffer.create 65536 in
        for i = 0 to per_conn - 1 do
          Protocol.buffer_request b reqs.(i mod variants)
        done;
        Buffer.contents b
      in
      let stallers =
        List.init stall (fun _ ->
            let fd = connect_fd () in
            (* Two bytes of a four-byte header, then silence. *)
            write_all fd "\x10\x00";
            fd)
      in
      let mismatches = Atomic.make 0 in
      let errors = Atomic.make 0 in
      let latencies = Array.make (connections * per_conn) 0. in
      let t_start = Unix.gettimeofday () in
      let worker c =
        try
          let fd = connect_fd () in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              let t0 = Unix.gettimeofday () in
              write_all fd blob;
              for i = 0 to per_conn - 1 do
                match Protocol.read_frame ~timeout_s:60. fd with
                | Protocol.Frame body ->
                  latencies.((c * per_conn) + i) <- Unix.gettimeofday () -. t0;
                  if not (String.equal body refs.(i mod variants)) then begin
                    Atomic.incr mismatches;
                    match Protocol.response_of_string body with
                    | Ok (Protocol.R_error { code; message }) ->
                      Printf.eprintf "conn %d req %d: error [%s] %s\n%!" c i code
                        message
                    | Ok (Protocol.R_shed { depth; capacity }) ->
                      (* Not corruption: the daemon's queue overflowed and it
                         shed the request.  Raise --queue (the full pipelined
                         burst is connections x per-conn) or lower the load. *)
                      Printf.eprintf "conn %d req %d: shed (queue %d/%d)\n%!" c i
                        depth capacity
                    | Ok (Protocol.R_unavailable { retry_after_ms; _ }) ->
                      Printf.eprintf "conn %d req %d: unavailable (retry %d ms)\n%!"
                        c i retry_after_ms
                    | Ok (Protocol.R_deadline { stage; elapsed_ms }) ->
                      Printf.eprintf "conn %d req %d: deadline (%s, %d ms)\n%!" c i
                        stage elapsed_ms
                    | Ok _ -> Printf.eprintf "conn %d req %d: wrong bytes\n%!" c i
                    | Error e ->
                      Printf.eprintf "conn %d req %d: undecodable: %s\n%!" c i e
                  end
                | _ ->
                  Atomic.incr errors;
                  raise Exit
              done)
        with _ -> Atomic.incr errors
      in
      let threads = List.init connections (fun c -> Thread.create worker c) in
      List.iter Thread.join threads;
      let wall = Unix.gettimeofday () -. t_start in
      let total = connections * per_conn in
      Array.sort compare latencies;
      let pct p = latencies.(min (total - 1) (total * p / 100)) in
      Printf.printf
        "%d connections x %d pipelined requests: %d ok, %d mismatched, %d errors\n"
        connections per_conn
        (total - Atomic.get mismatches - Atomic.get errors)
        (Atomic.get mismatches) (Atomic.get errors);
      Printf.printf "wall %.3f s  throughput %.0f req/s  p50 %.1f ms  p99 %.1f ms\n"
        wall
        (float_of_int total /. wall)
        (pct 50 *. 1000.) (pct 99 *. 1000.);
      (* Slow-loris verdict: a stalled connection must be dropped (EOF on
         its socket) within the wait window. *)
      let kept = ref 0 in
      if stall > 0 && stall_wait > 0. then begin
        let deadline = Unix.gettimeofday () +. stall_wait in
        let dropped fd =
          let rec wait () =
            let left = deadline -. Unix.gettimeofday () in
            if left <= 0. then false
            else
              match Unix.select [ fd ] [] [] left with
              | [], _, _ -> wait ()
              | _ -> (
                match Unix.read fd (Bytes.create 64) 0 64 with
                | 0 -> true
                | _ -> wait ()
                | exception Unix.Unix_error _ -> true)
          in
          wait ()
        in
        List.iter (fun fd -> if not (dropped fd) then incr kept) stallers;
        Printf.printf "stalled connections: %d sent, %d dropped by daemon\n" stall
          (stall - !kept)
      end;
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) stallers;
      if Atomic.get mismatches > 0 || Atomic.get errors > 0 then
        `Error (false, "load: responses diverged from sequential reference")
      else if !kept > 0 then
        `Error (false, Printf.sprintf "load: %d stalled connections not dropped" !kept)
      else `Ok ()
    with
    | Unix.Unix_error (e, _, _) -> `Error (false, "connect: " ^ Unix.error_message e)
    | Failure msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Pipelined multi-connection load generator; verifies every response \
             byte-identical to a sequential reference, in order.")
    Term.(ret
            (const action $ connect_arg $ model_arg $ seed_arg $ n_arg $ connections
             $ per_conn $ stall $ stall_wait))

let () =
  let doc = "Fault-tolerant multi-model TCCA serving daemon" in
  let info = Cmd.info "tccad" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ serve_cmd; health_cmd; list_models_cmd; model_health_cmd; transform_cmd;
            predict_cmd; ingest_cmd; refit_cmd; swap_cmd; drain_cmd; load_cmd ]))
