(* The serving daemon and its client.

   dune exec bin/tccad.exe -- serve --listen unix:/tmp/tccad.sock --state-dir /tmp/tccad
   dune exec bin/tccad.exe -- serve --model m.tccm --listen tcp:7070 --workers 4
   dune exec bin/tccad.exe -- health  --connect unix:/tmp/tccad.sock
   dune exec bin/tccad.exe -- ingest  --connect unix:/tmp/tccad.sock --seed 1 -n 200 --views 3 --dim 12
   dune exec bin/tccad.exe -- refit   --connect unix:/tmp/tccad.sock
   dune exec bin/tccad.exe -- transform --connect unix:/tmp/tccad.sock --seed 7 -n 16
   dune exec bin/tccad.exe -- swap    --connect unix:/tmp/tccad.sock /path/model.tccm
   dune exec bin/tccad.exe -- drain   --connect unix:/tmp/tccad.sock

   The client generates deterministic synthetic views from a seed (same
   generator as tcca_experiments fit), so two [transform --seed S] calls
   against the same model print byte-identical output — the property the
   daemon kill-and-resume CI check asserts. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Addresses: unix:PATH or tcp:PORT (loopback). *)

let sockaddr_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
    Ok (Unix.ADDR_UNIX (String.sub s (i + 1) (String.length s - i - 1)))
  | Some i when String.sub s 0 i = "tcp" -> (
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some port when port > 0 && port < 65536 ->
      Ok (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
    | _ -> Error (`Msg "tcp address needs a port number"))
  | _ -> Error (`Msg "address must be unix:PATH or tcp:PORT")

let addr_conv =
  let parse s = sockaddr_of_string s in
  let print ppf = function
    | Unix.ADDR_UNIX p -> Format.fprintf ppf "unix:%s" p
    | Unix.ADDR_INET (_, port) -> Format.fprintf ppf "tcp:%d" port
  in
  Arg.conv (parse, print)

(* ------------------------------------------------------------------ *)
(* serve *)

let setup_logs () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Info)

let serve_cmd =
  let model =
    Arg.(value & opt (some string) None & info [ "model" ] ~docv:"FILE"
           ~doc:"Model file (TCCM) to serve; otherwise recover from --state-dir.")
  in
  let listen =
    Arg.(value & opt addr_conv (Unix.ADDR_UNIX "/tmp/tccad.sock")
         & info [ "listen" ] ~docv:"ADDR" ~doc:"unix:PATH or tcp:PORT.")
  in
  let state_dir =
    Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR"
           ~doc:"Snapshot/recovery directory (created if missing).")
  in
  let workers =
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N"
           ~doc:"Compute threads (default: the domain-pool size).")
  in
  let queue =
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc:"Request-queue capacity.")
  in
  let deadline =
    Arg.(value & opt int 5000 & info [ "default-deadline-ms" ] ~docv:"MS"
           ~doc:"Deadline for requests that do not carry one (negative = unlimited).")
  in
  let io_timeout =
    Arg.(value & opt float 30. & info [ "io-timeout" ] ~docv:"S"
           ~doc:"Per-connection frame-read timeout.")
  in
  let refit_iters =
    Arg.(value & opt int 100 & info [ "refit-iters" ] ~docv:"K" ~doc:"Max ALS sweeps per refit.")
  in
  let refit_tol =
    Arg.(value & opt float 1e-6 & info [ "refit-tol" ] ~docv:"T" ~doc:"Refit ALS tolerance.")
  in
  let eps =
    Arg.(value & opt float 1e-2 & info [ "eps" ] ~docv:"E" ~doc:"Whitening regularizer.")
  in
  let rank =
    Arg.(value & opt int 4 & info [ "rank" ] ~docv:"R" ~doc:"Rank for cold-start refits.")
  in
  let action model listen state_dir workers queue deadline io_timeout refit_iters
      refit_tol eps rank =
    setup_logs ();
    let cfg =
      { Server.default_config with
        workers = (match workers with Some w -> w | None -> Server.default_config.Server.workers);
        queue_capacity = queue;
        default_deadline_ms = deadline;
        io_timeout_s = io_timeout;
        state_dir;
        refit_options = { Cp_als.default_options with max_iter = refit_iters; tol = refit_tol };
        eps;
        rank }
    in
    match
      match model with
      | None -> Ok None
      | Some path -> (
        match Model_store.load ~path with
        | Ok m -> Ok (Some m)
        | Error e -> Error (Checkpoint.load_error_to_string e))
    with
    | Error msg -> `Error (false, "--model: " ^ msg)
    | Ok model ->
      let t = Server.create ?model cfg in
      (* Graceful drain on SIGTERM/SIGINT: flip the (atomic) drain flag;
         the accept loop wakes on EINTR, flushes in-flight work and
         snapshots before exiting. *)
      let handler = Sys.Signal_handle (fun _ -> Server.request_drain t) in
      Sys.set_signal Sys.sigterm handler;
      Sys.set_signal Sys.sigint handler;
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      Server.serve_forever t listen;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the serving daemon.")
    Term.(ret
            (const action $ model $ listen $ state_dir $ workers $ queue $ deadline
             $ io_timeout $ refit_iters $ refit_tol $ eps $ rank))

(* ------------------------------------------------------------------ *)
(* client plumbing *)

let connect_arg =
  Arg.(value & opt addr_conv (Unix.ADDR_UNIX "/tmp/tccad.sock")
       & info [ "connect" ] ~docv:"ADDR" ~doc:"Daemon address (unix:PATH or tcp:PORT).")

let with_conn addr f =
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd addr;
      f fd)

(* Same generator as tcca_experiments' fit harness: a shared 4-dim latent
   signal plus per-view noise, a pure function of (views, dim, n, seed). *)
let synth_views ~views ~dim ~n ~seed =
  let rng = Rng.create seed in
  let latent = Mat.init 4 n (fun _ _ -> Rng.gaussian rng) in
  let out = Array.make views (Mat.create 0 0) in
  for p = 0 to views - 1 do
    let mix = Mat.init dim 4 (fun _ _ -> Rng.gaussian rng) in
    let noise = Mat.init dim n (fun _ _ -> 0.5 *. Rng.gaussian rng) in
    out.(p) <- Mat.add (Mat.mul mix latent) noise
  done;
  out

let synth_from_dims ~dims ~n ~seed =
  (* Per-view dims may differ after a swap; generate at the max and slice.
     (All in-tree models use homogeneous dims, where this is exact.) *)
  let views = Array.length dims in
  let dmax = Array.fold_left max 1 dims in
  let full = synth_views ~views ~dim:dmax ~n ~seed in
  Array.map2 (fun v d -> Mat.init d n (fun i j -> Mat.get v i j)) full dims

let fetch_dims fd =
  match Protocol.call fd Protocol.Health with
  | Protocol.R_health { dims; _ } when Array.length dims > 0 -> Ok dims
  | Protocol.R_health _ -> Error "server is cold (no model): no dims to generate against"
  | _ -> Error "unexpected health reply"

let print_response = function
  | Protocol.R_health
      { version; r; dims; queue_depth; queue_capacity; workers; ingested; since_fit;
        draining } ->
    Printf.printf "version %d  r %d  dims [%s]  queue %d/%d  workers %d  ingested %d  since-fit %d  draining %b\n"
      version r
      (String.concat ";" (Array.to_list (Array.map string_of_int dims)))
      queue_depth queue_capacity workers ingested since_fit draining;
    `Ok ()
  | Protocol.R_matrix m ->
    Printf.printf "matrix %d %d\n" m.Mat.rows m.Mat.cols;
    Array.iter (fun v -> Printf.printf "%.17g\n" v) m.Mat.data;
    `Ok ()
  | Protocol.R_scores s ->
    Printf.printf "scores %d\n" (Array.length s);
    Array.iter (fun v -> Printf.printf "%.17g\n" v) s;
    `Ok ()
  | Protocol.R_ok { version; note } ->
    Printf.printf "ok version %d: %s\n" version note;
    `Ok ()
  | Protocol.R_shed { depth; capacity } ->
    `Error (false, Printf.sprintf "shed: queue %d/%d full — retry later" depth capacity)
  | Protocol.R_deadline { stage; elapsed_ms } ->
    `Error (false, Printf.sprintf "deadline exceeded at %s after %d ms" stage elapsed_ms)
  | Protocol.R_error { code; message } ->
    `Error (false, Printf.sprintf "error [%s]: %s" code message)

let simple_client_cmd name doc req =
  let action connect =
    try with_conn connect (fun fd -> print_response (Protocol.call fd (req ())))
    with Unix.Unix_error (e, _, _) -> `Error (false, "connect: " ^ Unix.error_message e)
       | Failure msg -> `Error (false, msg)
  in
  Cmd.v (Cmd.info name ~doc) Term.(ret (const action $ connect_arg))

let health_cmd = simple_client_cmd "health" "Query daemon health." (fun () -> Protocol.Health)
let drain_cmd = simple_client_cmd "drain" "Ask the daemon to drain and stop." (fun () -> Protocol.Drain)

let swap_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let action connect path =
    try with_conn connect (fun fd -> print_response (Protocol.call fd (Protocol.Swap { path })))
    with Unix.Unix_error (e, _, _) -> `Error (false, "connect: " ^ Unix.error_message e)
       | Failure msg -> `Error (false, msg)
  in
  Cmd.v (Cmd.info "swap" ~doc:"Hot-swap the serving model from a file.")
    Term.(ret (const action $ connect_arg $ path))

let refit_cmd =
  let deadline =
    Arg.(value & opt int (-1) & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Refit deadline (negative = server default).")
  in
  let action connect deadline_ms =
    try
      with_conn connect (fun fd ->
          print_response
            (Protocol.call ~timeout_s:600. fd (Protocol.Refit { deadline_ms })))
    with Unix.Unix_error (e, _, _) -> `Error (false, "connect: " ^ Unix.error_message e)
       | Failure msg -> `Error (false, msg)
  in
  Cmd.v (Cmd.info "refit" ~doc:"Warm-started incremental refit from ingested samples.")
    Term.(ret (const action $ connect_arg $ deadline))

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Data seed.")
let n_arg = Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"Instances.")

let ingest_cmd =
  let views =
    Arg.(value & opt (some int) None & info [ "views" ] ~docv:"M"
           ~doc:"View count (required when the server is cold).")
  in
  let dim =
    Arg.(value & opt (some int) None & info [ "dim" ] ~docv:"D"
           ~doc:"Per-view dimension (required when the server is cold).")
  in
  let action connect seed n views dim =
    try
      with_conn connect (fun fd ->
          let dims =
            match (views, dim) with
            | Some m, Some d -> Ok (Array.make m d)
            | _ -> fetch_dims fd
          in
          match dims with
          | Error msg -> `Error (false, msg ^ " (pass --views and --dim)")
          | Ok dims ->
            let batch = synth_from_dims ~dims ~n ~seed in
            print_response (Protocol.call fd (Protocol.Ingest { views = batch })))
    with Unix.Unix_error (e, _, _) -> `Error (false, "connect: " ^ Unix.error_message e)
       | Failure msg -> `Error (false, msg)
  in
  Cmd.v (Cmd.info "ingest" ~doc:"Ingest a deterministic synthetic sample batch.")
    Term.(ret (const action $ connect_arg $ seed_arg $ n_arg $ views $ dim))

let batch_query_cmd name doc mk =
  let deadline =
    Arg.(value & opt int (-1) & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Request deadline (negative = server default).")
  in
  let action connect seed n deadline_ms =
    try
      with_conn connect (fun fd ->
          match fetch_dims fd with
          | Error msg -> `Error (false, msg)
          | Ok dims ->
            let batch = synth_from_dims ~dims ~n ~seed in
            print_response (Protocol.call fd (mk ~deadline_ms ~views:batch)))
    with Unix.Unix_error (e, _, _) -> `Error (false, "connect: " ^ Unix.error_message e)
       | Failure msg -> `Error (false, msg)
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(ret (const action $ connect_arg $ seed_arg $ n_arg $ deadline))

let transform_cmd =
  batch_query_cmd "transform" "Project a deterministic synthetic batch (%.17g output)."
    (fun ~deadline_ms ~views -> Protocol.Transform { deadline_ms; views })

let predict_cmd =
  batch_query_cmd "predict" "Score a deterministic synthetic batch (%.17g output)."
    (fun ~deadline_ms ~views -> Protocol.Predict { deadline_ms; views })

let () =
  let doc = "Fault-tolerant TCCA model-serving daemon" in
  let info = Cmd.info "tccad" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ serve_cmd; health_cmd; transform_cmd; predict_cmd; ingest_cmd; refit_cmd;
            swap_cmd; drain_cmd ]))
