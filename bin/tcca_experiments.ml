(* Command-line experiment runner.

   dune exec bin/tcca_experiments.exe -- list
   dune exec bin/tcca_experiments.exe -- run fig3 --seeds 5 --paper
   dune exec bin/tcca_experiments.exe -- run fig5 --rs 6,12,24,45,90
   dune exec bin/tcca_experiments.exe -- demo --dataset nuswide --dim 45
   dune exec bin/tcca_experiments.exe -- fit --checkpoint-dir /tmp/ck --resume

   The [run] command regenerates any table/figure of the paper at either the
   quick (default) or paper scale, with every knob overridable; [demo] runs a
   single protocol instance and prints per-method accuracy; [fit] runs one
   crash-safe TCCA fit on a deterministic synthetic pool (the harness behind
   the CI kill-and-resume check, and a template for long production fits). *)

open Cmdliner

let ids_doc = String.concat ", " Figures.all_ids

(* ------------------------------------------------------------------ *)
(* run *)

let apply_overrides params ~seeds ~rs ~paper_scale ~pools =
  let params = if paper_scale then Figures.paper else params in
  let params = match seeds with Some s -> { params with Figures.seeds = s } | None -> params in
  let params = match rs with Some g -> { params with Figures.rs = g; rs_kernel = g } | None -> params in
  match pools with
  | Some n ->
    { params with
      Figures.secstr_pool = n;
      ads_pool = n;
      nus_train = n;
      nus_test = n;
      complexity_n = n }
  | None -> params

let run_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT"
           ~doc:(Printf.sprintf "Experiment id: %s (tab1-tab4 alias their figure)." ids_doc))
  in
  let seeds =
    Arg.(value & opt (some int) None & info [ "seeds" ] ~docv:"N" ~doc:"Runs per cell.")
  in
  let rs =
    let int_list = Arg.(list ~sep:',' int) in
    Arg.(value & opt (some int_list) None & info [ "rs" ] ~docv:"R1,R2,.."
           ~doc:"Total-dimension grid for the sweeps.")
  in
  let paper_scale =
    Arg.(value & flag & info [ "paper" ]
           ~doc:"Paper-scale dimensions and pools (hours, not minutes).")
  in
  let pools =
    Arg.(value & opt (some int) None & info [ "pool" ] ~docv:"N"
           ~doc:"Override every dataset pool size.")
  in
  let action id seeds rs paper_scale pools =
    let rs = Option.map Array.of_list rs in
    let params = apply_overrides Figures.quick ~seeds ~rs ~paper_scale ~pools in
    match Figures.run params id with
    | blocks ->
      List.iter print_endline blocks;
      `Ok ()
    | exception Not_found ->
      `Error (false, Printf.sprintf "unknown experiment %S; try: %s" id ids_doc)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Regenerate one of the paper's tables/figures.")
    Term.(ret (const action $ id $ seeds $ rs $ paper_scale $ pools))

(* ------------------------------------------------------------------ *)
(* list *)

let list_cmd =
  let action () =
    List.iter (fun id -> Printf.printf "%-12s %s\n" id (Figures.describe id)) Figures.all_ids
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids.") Term.(const action $ const ())

(* ------------------------------------------------------------------ *)
(* demo *)

let demo_cmd =
  let dataset =
    Arg.(value & opt (enum [ ("secstr", `Secstr); ("ads", `Ads); ("nuswide", `Nuswide) ])
           `Secstr
         & info [ "dataset" ] ~docv:"NAME" ~doc:"secstr | ads | nuswide.")
  in
  let dim =
    Arg.(value & opt int 24 & info [ "dim" ] ~docv:"R" ~doc:"Total subspace dimension.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Run seed.") in
  let paper_scale =
    Arg.(value & flag & info [ "paper" ] ~doc:"Paper-scale feature dimensions.")
  in
  let action dataset dim seed paper_scale =
    (match dataset with
     | `Secstr | `Ads ->
       let world =
         match dataset with
         | `Secstr -> Secstr.world (if paper_scale then Secstr.Paper else Secstr.Quick)
         | _ -> Ads.world (if paper_scale then Ads.Paper else Ads.Quick)
       in
       let config = Linear_protocol.default_config world in
       let st = Linear_protocol.prepare config ~seed in
       let table =
         Tableau.create
           ~title:(Printf.sprintf "RLS protocol, dim=%d, seed=%d" dim seed)
           ~columns:[ "method"; "val acc (%)"; "test acc (%)" ]
       in
       List.iter
         (fun meth ->
           let res = Linear_protocol.run_prepared st meth ~r:dim in
           Tableau.add_row table (Spec.linear_name meth)
             [ res.Linear_protocol.val_acc *. 100.; res.Linear_protocol.test_acc *. 100. ])
         Spec.all_linear;
       Tableau.print table
     | `Nuswide ->
       let world = Nuswide.world (if paper_scale then Nuswide.Paper else Nuswide.Quick) in
       let config = Knn_protocol.default_config world in
       let st = Knn_protocol.prepare config ~seed in
       let table =
         Tableau.create
           ~title:(Printf.sprintf "kNN protocol, dim=%d, seed=%d" dim seed)
           ~columns:[ "method"; "val acc (%)"; "test acc (%)" ]
       in
       List.iter
         (fun meth ->
           let res = Knn_protocol.run_prepared st meth ~r:dim in
           Tableau.add_row table (Spec.linear_name meth)
             [ res.Knn_protocol.val_acc *. 100.; res.Knn_protocol.test_acc *. 100. ])
         Spec.all_linear;
       Tableau.print table)
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run one protocol instance and print per-method accuracy.")
    Term.(const action $ dataset $ dim $ seed $ paper_scale)

(* ------------------------------------------------------------------ *)
(* fit: one crash-safe, budget-aware TCCA fit on deterministic synthetic
   views.  Everything (data, solver, output format) is a pure function of
   the flags, so two runs with the same flags produce byte-identical --out
   files — which is exactly what the kill-and-resume CI check asserts. *)

(* Shared 4-dim latent signal plus per-view Gaussian noise: correlated views
   whose fit takes real ALS work at the default tol=0 (runs to --iters). *)
let synth_views ~views ~dim ~n ~seed =
  let rng = Rng.create seed in
  let latent = Mat.init 4 n (fun _ _ -> Rng.gaussian rng) in
  let out = Array.make views (Mat.create 0 0) in
  for p = 0 to views - 1 do
    let mix = Mat.init dim 4 (fun _ _ -> Rng.gaussian rng) in
    let noise = Mat.init dim n (fun _ _ -> 0.5 *. Rng.gaussian rng) in
    out.(p) <- Mat.add (Mat.mul mix latent) noise
  done;
  out

let write_model path model =
  let oc = open_out path in
  let cors = Tcca.correlations model in
  Printf.fprintf oc "correlations %d\n" (Array.length cors);
  Array.iter (fun c -> Printf.fprintf oc "%.17g\n" c) cors;
  Array.iteri
    (fun p m ->
      Printf.fprintf oc "projection %d %d %d\n" p m.Mat.rows m.Mat.cols;
      Array.iter (fun v -> Printf.fprintf oc "%.17g\n" v) m.Mat.data)
    (Tcca.projections model);
  close_out oc

let fit_cmd =
  let views = Arg.(value & opt int 3 & info [ "views" ] ~docv:"M" ~doc:"Number of views.") in
  let dim = Arg.(value & opt int 20 & info [ "dim" ] ~docv:"D" ~doc:"Per-view dimension.") in
  let n = Arg.(value & opt int 200 & info [ "n" ] ~docv:"N" ~doc:"Instances.") in
  let rank = Arg.(value & opt int 4 & info [ "rank" ] ~docv:"R" ~doc:"CP rank.") in
  let iters =
    Arg.(value & opt int 400 & info [ "iters" ] ~docv:"K" ~doc:"Max ALS sweeps.")
  in
  let tol =
    Arg.(value & opt float 0. & info [ "tol" ] ~docv:"T"
           ~doc:"ALS tolerance (0 = always run to --iters, for reproducible length).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Data seed.") in
  let checkpoint_dir =
    Arg.(value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR"
           ~doc:"Snapshot the ALS state to $(docv)/fit.ckpt (created if missing).")
  in
  let every =
    Arg.(value & opt int 1 & info [ "checkpoint-every" ] ~docv:"K"
           ~doc:"Snapshot every $(docv) sweeps.")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Resume from an existing snapshot (otherwise it is overwritten).")
  in
  let time_budget =
    Arg.(value & opt (some float) None & info [ "time-budget" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget; on expiry the best-so-far model is returned.")
  in
  let sweep_budget =
    Arg.(value & opt (some int) None & info [ "sweep-budget" ] ~docv:"K"
           ~doc:"Total-sweep budget; on expiry the best-so-far model is returned.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Write the model (correlations + projections, %.17g) to $(docv).")
  in
  let action views dim n rank iters tol seed checkpoint_dir every resume time_budget
      sweep_budget out =
    if views < 2 then `Error (false, "--views must be >= 2")
    else begin
      let data = synth_views ~views ~dim ~n ~seed in
      let options = { Cp_als.default_options with max_iter = iters; tol } in
      let budget =
        match (time_budget, sweep_budget) with
        | None, None -> None
        | w, s -> Some (Budget.create ?wall_seconds:w ?sweeps:s ())
      in
      let checkpoint =
        Option.map
          (fun dir ->
            (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
            Checkpoint.config ~every ~resume (Filename.concat dir "fit.ckpt"))
          checkpoint_dir
      in
      match Tcca.fit_checked ~solver:(Tcca.Als options) ?budget ?checkpoint ~r:rank data with
      | Error e -> `Error (false, "fit failed: " ^ Robust.failure_to_string e)
      | Ok model ->
        List.iter (Printf.printf "warning: %s\n") (Robust.recent_warnings ());
        Printf.printf "solver: %s\n" (Tcca.solver_info model);
        Array.iteri
          (fun i c -> Printf.printf "rho[%d] = %.6f\n" i c)
          (Tcca.correlations model);
        Option.iter
          (fun path ->
            write_model path model;
            Printf.printf "model written to %s\n" path)
          out;
        `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "fit"
       ~doc:"Run one crash-safe TCCA fit on synthetic views (checkpoint/resume, budgets).")
    Term.(ret
            (const action $ views $ dim $ n $ rank $ iters $ tol $ seed $ checkpoint_dir
             $ every $ resume $ time_budget $ sweep_budget $ out))

let () =
  let doc = "Reproduction harness for 'Tensor CCA for Multi-view Dimension Reduction'" in
  let info = Cmd.info "tcca_experiments" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; list_cmd; demo_cmd; fit_cmd ]))
