(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. 5) at a container-friendly scale, plus the ablations and
   a Bechamel micro-benchmark of each experiment's dominant kernel.

   Usage:
     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe fig3 fig7 micro  # a subset
     dune exec bench/main.exe --list           # available ids
     dune exec bench/main.exe micro --smoke --json out.json
                                               # CI: short quota, JSON artifact

   The `par/*` micros pin each kernel that is row-partitioned across the
   `Parallel` domain pool (see DESIGN.md §"Domain-parallel compute pool");
   compare runs with TCCA_DOMAINS=1 vs TCCA_DOMAINS=4 to measure the
   speedup — outputs are bitwise identical either way.

   Paper-scale runs (bigger dimensions, more seeds) live in
   bin/tcca_experiments.exe. *)

let params = Figures.quick

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure, covering
   the operation that dominates that experiment's cost.                *)

(* One pinned micro per kernel that the Parallel pool row-partitions, sized
   well above the sequential cutoff so the pool actually engages.  fig7
   (covariance tensor) and fig9 (MTTKRP) pin the remaining two. *)
let parallel_kernel_tests () =
  let r = Rng.create 4242 in
  let mk rows cols = Mat.init rows cols (fun _ _ -> Rng.gaussian r) in
  let a = mk 192 160 and b = mk 160 176 in
  let at = mk 160 192 in
  let c = mk 176 160 in
  let wide = mk 48 300 in
  let open Bechamel in
  [ Test.make ~name:"par/mul-192x160x176" (Staged.stage (fun () -> Mat.mul a b));
    Test.make ~name:"par/mul_tn-192x160x176" (Staged.stage (fun () -> Mat.mul_tn at b));
    Test.make ~name:"par/mul_nt-192x176x160" (Staged.stage (fun () -> Mat.mul_nt a c));
    Test.make ~name:"par/gram-192x160" (Staged.stage (fun () -> Mat.gram a));
    Test.make ~name:"par/tgram-160x192" (Staged.stage (fun () -> Mat.tgram at));
    Test.make ~name:"par/pairwise-sql2-300"
      (Staged.stage (fun () -> Distance.pairwise Distance.Sq_l2 wide));
    Test.make ~name:"par/pairwise-chi2-300"
      (Staged.stage (fun () -> Distance.pairwise Distance.Chi2 wide)) ]

(* Head-to-head micros for the symmetric eigensolver rewrite: the two-stage
   tridiagonal path at typical whitener sizes, the Jacobi oracle at the
   larger size for the crossover record, and the tall-matrix SVD route that
   rides on it. *)
let eig_tests () =
  let open Bechamel in
  let r = Rng.create 777 in
  let spd d =
    let x = Mat.init d (2 * d) (fun _ _ -> Rng.gaussian r) in
    Mat.add_scaled_identity 1e-3 (Mat.scale (1. /. float_of_int (2 * d)) (Mat.gram x))
  in
  let a64 = spd 64 and a192 = spd 192 in
  let tall = Mat.init 2048 64 (fun _ _ -> Rng.gaussian r) in
  [ Test.make ~name:"eig/tridiagonal-d64"
      (Staged.stage (fun () -> Eigen.decompose ~method_:`Tridiagonal a64));
    Test.make ~name:"eig/tridiagonal-d192"
      (Staged.stage (fun () -> Eigen.decompose ~method_:`Tridiagonal a192));
    Test.make ~name:"eig/jacobi-d192"
      (Staged.stage (fun () -> Eigen.decompose ~method_:`Jacobi a192));
    Test.make ~name:"svd/tall-2048x64" (Staged.stage (fun () -> Svd.decompose tall)) ]

(* Serving-path micro (PR "tccad"): one framed transform round trip — encode
   request, socketpair hop, queue + worker dispatch, compute, encode reply —
   at serving-realistic size (d = 200, r = 10, batch 64).  The fixture is
   shared between the Bechamel throughput measurement and the latency-
   percentile pass, and lives for the process (the bench exits right
   after). *)
let serve_fixture =
  lazy
    (let rng = Rng.create 20200 in
     let mk rows cols = Mat.init rows cols (fun _ _ -> Rng.gaussian rng) in
     let views = Array.init 2 (fun _ -> mk 200 256) in
     let model =
       Tcca.fit ~solver:(Tcca.Als { Cp_als.default_options with max_iter = 25 }) ~r:10 views
     in
     let server =
       Server.create ~model { Server.default_config with workers = 2; queue_capacity = 64 }
     in
     let client, sock = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     ignore (Thread.create (fun () -> Event_loop.serve_connection server sock) ());
     let batch = Array.init 2 (fun _ -> mk 200 64) in
     let req = Protocol.Transform { deadline_ms = -1; views = batch; model_id = "default" } in
     (client, req))

let serve_call () =
  let client, req = Lazy.force serve_fixture in
  match Protocol.call client req with
  | Protocol.R_matrix _ -> ()
  | _ -> failwith "bench: serve/transform-batch got a non-matrix reply"

(* Multi-model routing micro: the same round trip, but against a registry
   holding two models, alternating the target per call — so the measured
   cost includes registry lookup, per-model breaker admission, and the
   cache churn of two live model entries.  The second model is hot-swapped
   in from a file, so it gets its own entry, queue and workers exactly as
   in production. *)
let route_fixture =
  lazy
    (let rng = Rng.create 20300 in
     let mk rows cols = Mat.init rows cols (fun _ _ -> Rng.gaussian rng) in
     let views = Array.init 2 (fun _ -> mk 200 256) in
     let model =
       Tcca.fit ~solver:(Tcca.Als { Cp_als.default_options with max_iter = 25 }) ~r:10 views
     in
     let server =
       Server.create ~model { Server.default_config with workers = 2; queue_capacity = 64 }
     in
     let client, sock = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     ignore (Thread.create (fun () -> Event_loop.serve_connection server sock) ());
     let tmp = Filename.temp_file "tccad-bench" ".tccm" in
     Model_store.save ~path:tmp model;
     (match Protocol.call client (Protocol.Swap { path = tmp; model_id = "alt" }) with
     | Protocol.R_ok _ -> ()
     | _ -> failwith "bench: serve/route-transform fixture swap failed");
     (try Sys.remove tmp with Sys_error _ -> ());
     let batch = Array.init 2 (fun _ -> mk 200 64) in
     let reqs =
       [| Protocol.Transform { deadline_ms = -1; views = batch; model_id = "default" };
          Protocol.Transform { deadline_ms = -1; views = batch; model_id = "alt" } |]
     in
     (client, reqs))

let route_counter = ref 0

let route_call () =
  let client, reqs = Lazy.force route_fixture in
  let req = reqs.(!route_counter land 1) in
  incr route_counter;
  match Protocol.call client req with
  | Protocol.R_matrix _ -> ()
  | _ -> failwith "bench: serve/route-transform got a non-matrix reply"

(* Concurrent pipelined micro (PR "event loop"): 32 connections, each
   pipelining 64 transforms through ONE reactor, with cross-request GEMM
   micro-batching on — against a PR-9-shaped reference (thread per
   connection, blocking round trips, batch_max 1) over the same model.
   Requests are deliberately small (single-column transforms) so
   per-request overhead — syscalls, wakeups, GEMM packing — is what the
   micro actually measures; that is exactly the regime micro-batching is
   for.  The model is deliberately tiny (r = 8, d = 16): per-request
   FLOPs are negligible next to per-request dispatch, so the numbers
   isolate the serving layer itself — the bigger-model regimes are
   covered by serve/transform-batch and serve/route-transform above.
   One client thread drives all 32
   connections through per-connection incremental decoders — with
   pipelining, connection concurrency no longer needs a thread per
   connection on either side of the socket.  The blocking reference
   needs its 32 client threads: one in-flight request per connection is
   the architecture under comparison. *)
let c32_conns = 32
let c32_per_conn = 64

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let c32_fixture =
  lazy
    (let rng = Rng.create 20400 in
     let mk rows cols = Mat.init rows cols (fun _ _ -> Rng.gaussian rng) in
     let views = Array.init 2 (fun _ -> mk 16 256) in
     let model =
       Tcca.fit ~solver:(Tcca.Als { Cp_als.default_options with max_iter = 25 }) ~r:8 views
     in
     let batch = Array.init 2 (fun _ -> mk 16 1) in
     let req = Protocol.Transform { deadline_ms = -1; views = batch; model_id = "default" } in
     (* The measured server: one reactor over all 32 fds, batching on.
        The queue is deep enough to hold the whole sweep, so coalescing
        runs at its configured width instead of queue-drain width. *)
     let server =
       Server.create ~model
         { Server.default_config with
           workers = 2;
           queue_capacity = 4096;
           batch_max = 128 }
     in
     let pairs =
       Array.init c32_conns (fun _ -> Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0)
     in
     ignore
       (Thread.create
          (fun () -> Event_loop.serve_fds server (Array.to_list (Array.map snd pairs)))
          ());
     (* The PR-9 reference: same model, one thread per connection, no
        coalescing — yesterday's architecture as a live yardstick. *)
     let ref_server =
       Server.create ~model
         { Server.default_config with workers = 2; queue_capacity = 4096; batch_max = 1 }
     in
     let ref_pairs =
       Array.init c32_conns (fun _ -> Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0)
     in
     Array.iter
       (fun (_, s) ->
         ignore (Thread.create (fun () -> Event_loop.serve_connection ref_server s) ()))
       ref_pairs;
     let blob =
       let b = Buffer.create 65536 in
       for _ = 1 to c32_per_conn do
         Protocol.buffer_request b req
       done;
       Buffer.contents b
     in
     (* What every response must be, bitwise: batch-of-1 dispatch. *)
     let expected = Protocol.response_to_string (Server.handle server req) in
     (Array.map fst pairs, Array.map fst ref_pairs, blob, req, expected))

(* One client thread, 32 pipelined connections: write every blob, then
   select over the sockets, feeding one incremental decoder per
   connection.  The whole sweep fits in the server queue, so the writes
   cannot deadlock against unread responses (the reactor buffers them). *)
let c32_sweep ~verify lats =
  let clients, _, blob, _, expected = Lazy.force c32_fixture in
  let total = c32_conns * c32_per_conn in
  let t0 = Unix.gettimeofday () in
  Array.iter (fun fd -> write_all fd blob) clients;
  let decs = Array.map (fun _ -> Protocol.decoder ()) clients in
  let got = Array.make c32_conns 0 in
  let chunk = Bytes.create 65536 in
  let completed = ref 0 in
  while !completed < total do
    let rds = ref [] in
    Array.iteri (fun i fd -> if got.(i) < c32_per_conn then rds := fd :: !rds) clients;
    let rd, _, _ = Unix.select !rds [] [] 5.0 in
    if rd = [] then failwith "bench: c32 sweep stalled";
    List.iter
      (fun fd ->
        let i = ref 0 in
        Array.iteri (fun k c -> if c = fd then i := k) clients;
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n = 0 then failwith "bench: c32 connection closed early";
        Protocol.decoder_feed decs.(!i) chunk 0 n;
        let more = ref true in
        while !more do
          match Protocol.decoder_next decs.(!i) with
          | `Frame body ->
            (match lats with
            | Some l -> l.(!completed) <- (Unix.gettimeofday () -. t0) *. 1e9
            | None -> ());
            if verify && not (String.equal body expected) then
              failwith "bench: c32 response not bitwise-identical to batch-1 dispatch";
            got.(!i) <- got.(!i) + 1;
            incr completed
          | `Oversize _ -> failwith "bench: c32 oversize response"
          | `Await -> more := false
        done)
      rd
  done;
  Unix.gettimeofday () -. t0

let c32_call () = ignore (c32_sweep ~verify:false None)

(* Verified sweeps with per-response completion times, plus the PR-9
   reference sweeps — prints the throughput ratio, returns (p50, p99).
   Both sides take the best of three sweeps: on one CPU a single sweep's
   wall time is at the mercy of whatever else the scheduler slots in, and
   best-of-N is the standard way to ask "how fast is this architecture"
   rather than "how unlucky was this run".  The percentiles come from the
   best pipelined sweep for the same reason. *)
let c32_report () =
  let _, ref_clients, _, req, _ = Lazy.force c32_fixture in
  let total = c32_conns * c32_per_conn in
  let best_of n f =
    let best_s = ref infinity in
    for _ = 1 to n do
      let s = f () in
      if s < !best_s then best_s := s
    done;
    !best_s
  in
  let lats = Array.make total nan in
  let pipelined_s =
    let best = ref infinity in
    for _ = 1 to 3 do
      let l = Array.make total nan in
      let s = c32_sweep ~verify:true (Some l) in
      if s < !best then begin
        best := s;
        Array.blit l 0 lats 0 total
      end
    done;
    !best
  in
  let ref_worker fd =
    for _ = 1 to c32_per_conn do
      match Protocol.call fd req with
      | Protocol.R_matrix _ -> ()
      | _ -> failwith "bench: c32 reference got a non-matrix reply"
    done
  in
  let ref_s =
    best_of 3 (fun () ->
        let t0 = Unix.gettimeofday () in
        let ths = Array.map (fun fd -> Thread.create ref_worker fd) ref_clients in
        Array.iter Thread.join ths;
        Unix.gettimeofday () -. t0)
  in
  Printf.printf
    "serve/concurrent-transform-c32: pipelined+batched %.0f req/s vs \
     thread-per-connection %.0f req/s (x%.1f)\n%!"
    (float_of_int total /. pipelined_s)
    (float_of_int total /. ref_s)
    (ref_s /. pipelined_s);
  Array.sort compare lats;
  let pick q = lats.(min (total - 1) (int_of_float (float_of_int total *. q))) in
  (pick 0.50, pick 0.99)

(* p50/p99 request latency over [samples] sequential calls on the same
   connection — the schema /3 fields riding on the serve records. *)
let latency_percentiles ~samples call =
  ignore (call ()); (* warm the fixture outside the timed window *)
  let lat =
    Array.init samples (fun _ ->
        let t0 = Unix.gettimeofday () in
        call ();
        (Unix.gettimeofday () -. t0) *. 1e9)
  in
  Array.sort compare lat;
  let pick q =
    lat.(min (samples - 1) (int_of_float (Float.of_int samples *. q)))
  in
  (pick 0.50, pick 0.99)

let serve_tests () =
  let open Bechamel in
  [ Test.make ~name:"serve/transform-batch" (Staged.stage serve_call);
    Test.make ~name:"serve/route-transform" (Staged.stage route_call);
    Test.make ~name:"serve/concurrent-transform-c32" (Staged.stage c32_call) ]

let micro_tests () =
  let world = Secstr.world Secstr.Quick in
  let rng = Rng.create 99 in
  let data = Synth.sample world rng ~n:400 in
  let views = data.Multiview.views in
  let centered = fst (Preprocess.center_views views) in
  let covariance = Tcca.covariance_tensor centered in
  let prepared = Tcca.prepare ~eps:1e-2 views in
  let nus = Synth.sample (Nuswide.world Nuswide.Quick) rng ~n:300 in
  let kernel_config =
    Kernel_protocol.default_config ~n_subset:120 (Nuswide.world Nuswide.Quick)
  in
  let small_kernels =
    Kernel_protocol.build_kernels kernel_config
      (Synth.sample (Nuswide.world Nuswide.Quick) rng ~n:120)
  in
  let ktcca_prepared = Ktcca.prepare ~eps:1e-4 small_kernels in
  let factors =
    Array.map
      (fun v -> Mat.init (fst (Mat.dims v)) 8 (fun i j -> sin (float_of_int ((i * 7) + j))))
      views
  in
  let embedding = Tcca.transform (Tcca.fit_prepared ~r:8 prepared) views in
  let labels = data.Multiview.labels in
  (* Operator-representation micros (PR "materialization-free TCCA"): the
     factored path vs the dense kernel on the same whitened tensor.  The
     mttkrp pair is 4 views at dₚ = 30 (810 000 dense entries — still
     materializable, so both sides can run); the 5-view dₚ = 40 fit
     (102 400 000 dense entries) exists only factored. *)
  let op_rng = Rng.create 515 in
  let op_mat rows cols = Mat.init rows cols (fun _ _ -> Rng.gaussian op_rng) in
  let op_factored =
    Op_tensor.factored ~weight:(1. /. 200.) (Array.init 4 (fun _ -> op_mat 30 200))
  in
  let op_dense = Op_tensor.to_tensor op_factored in
  let op_us = Array.init 4 (fun _ -> op_mat 30 8) in
  let mk_views m d n = Array.init m (fun _ -> op_mat d n) in
  let bench_als = Tcca.Als { Cp_als.default_options with max_iter = 20 } in
  let tcca_dense_p = Tcca.prepare ~eps:1e-2 ~materialize:true (mk_views 3 30 300) in
  let tcca_fact_p = Tcca.prepare ~eps:1e-2 ~materialize:false (mk_views 3 30 300) in
  let tcca_many_p = Tcca.prepare ~eps:1e-2 (mk_views 5 40 200) in
  assert (not (Tcca.materialized tcca_many_p));
  (* Sketched scaling path (PR "sketched scaling path"): the partial-Cholesky
     Nyström pipeline at sizes where the N×N Gram would be prohibitive.  The
     oracles are RBF over synthetic features, so fitting needs no bandwidth
     pass and a kernel column is one O(N·d) sweep — nothing N×N is ever
     allocated inside these kernels; the n20000 entry is the acceptance
     measurement for "N = 20 000 in seconds". *)
  let sketch_rng = Rng.create 4242 in
  let sketch_oracles n =
    Array.init 3 (fun _ ->
        let v = Mat.init 8 n (fun _ _ -> Rng.gaussian sketch_rng) in
        Kernel.oracle (Kernel.fit ~precompute:false (Kernel.Rbf 0.05) v))
  in
  let pchol_oracle = (sketch_oracles 4096).(0) in
  let ny_oracles_4096 = sketch_oracles 4096 in
  let ny_oracles_20k = sketch_oracles 20_000 in
  let rand_svd_a = Mat.init 4096 512 (fun _ _ -> Rng.gaussian sketch_rng) in
  let bench_sampled = Tcca.Sampled_als { Cp_rand.default_options with max_iter = 20 } in
  let open Bechamel in
  [ (* Fig. 3 / Table 1: TCCA fit on SecStr-sim (decomposition only). *)
    Test.make ~name:"fig3/tcca-cp-als-r8"
      (Staged.stage (fun () -> Tcca.fit_prepared ~r:8 prepared));
    (* Fig. 4 / Table 2: two-view CCA fit (the Ads baseline family). *)
    Test.make ~name:"fig4/cca-pair-fit"
      (Staged.stage (fun () -> Cca.fit ~eps:1e-2 ~r:8 views.(0) views.(1)));
    (* Fig. 5 / Table 3: CCA-LS multi-view fit on NUS-WIDE-sim. *)
    Test.make ~name:"fig5/cca-ls-fit"
      (Staged.stage (fun () -> Cca_ls.fit ~eps:1e-2 ~r:8 nus.Multiview.views));
    (* Fig. 6 / Table 4: KTCCA decomposition on the kernel tensor. *)
    Test.make ~name:"fig6/ktcca-cp-als-r6"
      (Staged.stage (fun () -> Ktcca.fit_prepared ~r:6 ktcca_prepared));
    (* Fig. 7: covariance-tensor accumulation (the N-dependent pass). *)
    Test.make ~name:"fig7/covariance-tensor"
      (Staged.stage (fun () -> Tcca.covariance_tensor centered));
    (* Fig. 8: whitening — the inverse-square-root of a view covariance. *)
    Test.make ~name:"fig8/inv-sqrt-whitener"
      (Staged.stage
         (let cov =
            Mat.add_scaled_identity 1e-2 (Mat.scale (1. /. 400.) (Mat.gram centered.(0)))
          in
          fun () -> Matfun.inv_sqrt_psd cov));
    (* Fig. 9: the MTTKRP kernel of one ALS sweep. *)
    Test.make ~name:"fig9/mttkrp"
      (Staged.stage (fun () -> Cp_als.mttkrp covariance factors 0));
    (* Operator representations: same MTTKRP contraction, dense walk over
       ∏dₚ entries vs the factored O(N·Σdₚ·r) GEMM path. *)
    Test.make ~name:"op/mttkrp-dense"
      (Staged.stage (fun () -> Cp_als.mttkrp op_dense op_us 0));
    Test.make ~name:"op/mttkrp-factored"
      (Staged.stage (fun () -> Op_tensor.mttkrp op_factored op_us 0));
    (* End-to-end fit on a dense-feasible shape, both representations … *)
    Test.make ~name:"tcca/fit-dense"
      (Staged.stage (fun () -> Tcca.fit_prepared ~solver:bench_als ~r:8 tcca_dense_p));
    Test.make ~name:"tcca/fit-factored"
      (Staged.stage (fun () -> Tcca.fit_prepared ~solver:bench_als ~r:8 tcca_fact_p));
    (* … and the many-view shape only the factored operator can hold. *)
    Test.make ~name:"tcca/fit-factored-5view-d40"
      (Staged.stage (fun () -> Tcca.fit_prepared ~solver:bench_als ~r:8 tcca_many_p));
    (* Robustness guardrails (PR "numerics guardrail layer"): what the checked
       paths add on healthy inputs.  The finite guards are the only per-fit
       additions that scale with data size; the injection probe is the
       constant-time check every guarded stage pays even with injection off;
       jittered Cholesky and the checked whitener should match their unguarded
       twins (fig8) to measurement noise — attempt 0 is the same arithmetic. *)
    Test.make ~name:"robust/all-finite-factored"
      (Staged.stage (fun () -> Op_tensor.all_finite op_factored));
    Test.make ~name:"robust/all-finite-dense"
      (Staged.stage (fun () -> Op_tensor.all_finite (Op_tensor.Dense op_dense)));
    Test.make ~name:"robust/inject-probe-disabled"
      (Staged.stage (fun () -> Robust.Inject.(active Als_nan)));
    Test.make ~name:"robust/cholesky-jittered-spd"
      (Staged.stage
         (let spd =
            let x = op_mat 60 120 in
            Mat.add_scaled_identity 1. (Mat.scale (1. /. 120.) (Mat.gram x))
          in
          fun () -> Cholesky.decompose_jittered spd));
    Test.make ~name:"robust/inv-sqrt-checked"
      (Staged.stage
         (let cov =
            Mat.add_scaled_identity 1e-2 (Mat.scale (1. /. 400.) (Mat.gram centered.(0)))
          in
          fun () -> Matfun.inv_sqrt_psd_checked ~shift:1e-2 ~stage:"bench" cov));
    (* Crash-safety (PR "checkpoint/resume"): the cost of one per-sweep
       snapshot (encode + CRC + atomic write) and of loading it back, on a
       state sized like the tcca/fit-dense solve (3 × 30×8 factors), plus the
       checkpointed twin of tcca/fit-dense at the recommended cadence
       (every 25 sweeps) — its ratio to the plain fit is the overhead the
       <5% budget in DESIGN.md §8 refers to (asserted after full-quota
       runs, reported in smoke mode).  Snapshotting every sweep on a
       sub-millisecond solve is dominated by file I/O by construction;
       that per-snapshot cost is what robust/checkpoint-write measures. *)
    Test.make ~name:"robust/checkpoint-write"
      (Staged.stage
         (let path = Filename.temp_file "tcca_bench_ckpt" ".bin" in
          let state =
            { Checkpoint.rs_init_random = None;
              rs_iterations = 10;
              rs_previous_fit = 0.5;
              rs_best_fit = 0.5;
              rs_drops = 0;
              rs_converged = false;
              rs_failure = None;
              rs_weights = Array.make 8 1.;
              rs_factors =
                Array.init 3 (fun _ ->
                    { Checkpoint.rows = 30; cols = 8; data = Array.init 240 float_of_int });
              rs_history = Array.init 10 (fun i -> float_of_int i /. 10.) }
          in
          let snapshot =
            { Checkpoint.fingerprint = "bench/1";
              domains = Parallel.num_domains ();
              attempt = 0;
              completed = [];
              current = state }
          in
          fun () -> Checkpoint.save ~path snapshot));
    Test.make ~name:"robust/resume-load"
      (Staged.stage
         (let path = Filename.temp_file "tcca_bench_ckpt_load" ".bin" in
          let state =
            { Checkpoint.rs_init_random = Some 7;
              rs_iterations = 10;
              rs_previous_fit = 0.5;
              rs_best_fit = 0.5;
              rs_drops = 0;
              rs_converged = false;
              rs_failure = None;
              rs_weights = Array.make 8 1.;
              rs_factors =
                Array.init 3 (fun _ ->
                    { Checkpoint.rows = 30; cols = 8; data = Array.init 240 float_of_int });
              rs_history = Array.init 10 (fun i -> float_of_int i /. 10.) }
          in
          Checkpoint.save ~path
            { Checkpoint.fingerprint = "bench/1";
              domains = Parallel.num_domains ();
              attempt = 0;
              completed = [ state ];
              current = state };
          fun () -> Checkpoint.load ~path));
    Test.make ~name:"tcca/fit-checkpointed"
      (Staged.stage
         (let path = Filename.temp_file "tcca_bench_fit_ckpt" ".bin" in
          fun () ->
            Tcca.fit_prepared ~solver:bench_als
              ~checkpoint:(Checkpoint.config ~every:25 ~resume:false path)
              ~r:8 tcca_dense_p));
    (* Sketched scaling path: rank-revealing partial Cholesky on a kernel
       oracle, the Nyström KTCCA pipeline end to end (pchol → ℓ-space
       whitening → CP → duals), the randomized range-finder SVD behind
       `Randomized whitening, and the first-class sampled-ALS solver. *)
    Test.make ~name:"sketch/pchol-n4096-l256"
      (Staged.stage (fun () -> Pchol.decompose ~rank:256 ~tol:0. pchol_oracle));
    Test.make ~name:"ktcca/nystrom-n4096"
      (Staged.stage (fun () ->
           Ktcca.fit_oracles
             ~approx:(Ktcca.Nystrom { rank = 64; tol = 1e-8 })
             ~r:6 ny_oracles_4096));
    (* ℓ = 32 keeps the ℓ-space materialization (32³ entries × N CP
       components) comfortably inside the single-digit-seconds budget. *)
    Test.make ~name:"ktcca/nystrom-n20000"
      (Staged.stage (fun () ->
           Ktcca.fit_oracles
             ~approx:(Ktcca.Nystrom { rank = 32; tol = 1e-8 })
             ~r:6 ny_oracles_20k));
    Test.make ~name:"svd/randomized-4096x512"
      (Staged.stage (fun () -> Svd.randomized ~rank:32 rand_svd_a));
    Test.make ~name:"tcca/fit-sampled-als"
      (Staged.stage (fun () -> Tcca.fit_prepared ~solver:bench_sampled ~r:8 tcca_fact_p));
    (* Fig. 10: Gram-matrix construction (chi-squared kernel). *)
    Test.make ~name:"fig10/chi2-gram"
      (Staged.stage (fun () ->
           Kernel.gram
             (Kernel.fit (Kernel.Exp_distance Distance.Chi2) nus.Multiview.views.(0))));
    (* Classification stages shared by all tables. *)
    Test.make ~name:"tables/rls-fit"
      (Staged.stage (fun () -> Rls.fit ~gamma:1e-2 embedding labels));
    Test.make ~name:"tables/knn-predict"
      (Staged.stage
         (let model = Knn.fit ~k:5 embedding labels in
          fun () -> Knn.predict model embedding)) ]
    @ parallel_kernel_tests ()
    @ eig_tests ()
    @ serve_tests ()

(* Nominal flop counts for the GEMM-shaped micros, so every run reports the
   achieved GFLOP/s next to wall time.  mul-family products count 2·m·k·n;
   the symmetric kernels compute the upper triangle and mirror the rest,
   counted as n·(n+1)·k; the MTTKRP pair follows the operation counts in
   DESIGN.md §7 (the factored count is the three side GEMMs, the Hadamard
   combine, and the final projection).  Kernels without a closed-form count
   report null. *)
let flops_of_kernel =
  let mulf m k n = 2 * m * k * n in
  let syrkf n k = n * (n + 1) * k in
  function
  | "par/mul-192x160x176" | "par/mul_tn-192x160x176" | "par/mul_nt-192x176x160" ->
    Some (mulf 192 160 176)
  | "par/gram-192x160" | "par/tgram-160x192" -> Some (syrkf 192 160)
  | "op/mttkrp-dense" -> Some (2 * 8 * 810_000)
  | "op/mttkrp-factored" -> Some ((3 * mulf 200 30 8) + (3 * 200 * 8) + mulf 30 200 8)
  (* Randomized SVD: six m×n×k GEMM passes (sketch, 2×2 power-iteration
     half-steps, final B = QᵀA) at k = rank + oversample = 40; the small
     k-space eig is not counted. *)
  | "svd/randomized-4096x512" -> Some (6 * mulf 4096 512 40)
  (* Partial Cholesky: the residual-column update at step k is 2·N·k flops;
     summed over ℓ = 256 steps (kernel-entry evaluations not counted). *)
  | "sketch/pchol-n4096-l256" -> Some (4096 * 256 * 255)
  | _ -> None

(* flops per nanosecond is numerically GFLOP/s. *)
let gflops_of ~name ~ns =
  match flops_of_kernel name with
  | Some flops when Float.is_finite ns && ns > 0. -> Some (float_of_int flops /. ns)
  | _ -> None

(* JSON artifact for the CI bench-regression pipeline: a flat list of
   (kernel, ns/run, r², GFLOP/s) plus enough metadata (sha, domain count,
   smoke flag) to compare runs PR-over-PR.  Hand-rolled — the names are
   plain ASCII.  Schema tcca-bench/2 added the "gflops" field; it is
   emitted on every record (null when no flop count applies) so the
   sequential scanner in scripts/bench_compare.ml never reads a field from
   the wrong record.  Schema /3 adds optional "p50_ns"/"p99_ns" request-
   latency percentiles on the serve micros ([percentiles] is an assoc from
   kernel name); records without them are unchanged, and the scanner
   accepts /1 and /2 artifacts as before. *)
let write_json ~path ~smoke ?(percentiles = []) results =
  let oc = open_out path in
  let sha = match Sys.getenv_opt "GITHUB_SHA" with Some s -> s | None -> "local" in
  Printf.fprintf oc "{\n  \"schema\": \"tcca-bench/3\",\n  \"sha\": %S,\n" sha;
  Printf.fprintf oc "  \"domains\": %d,\n  \"smoke\": %b,\n  \"results\": [\n"
    (Parallel.num_domains ()) smoke;
  let num v = if Float.is_finite v then Printf.sprintf "%.3f" v else "null" in
  List.iteri
    (fun i (name, ns, r2) ->
      let gf = match gflops_of ~name ~ns with Some g -> num g | None -> "null" in
      let lat =
        match List.assoc_opt name percentiles with
        | Some (p50, p99) ->
          Printf.sprintf ", \"p50_ns\": %s, \"p99_ns\": %s" (num p50) (num p99)
        | None -> ""
      in
      Printf.fprintf oc
        "    {\"name\": %S, \"ns_per_run\": %s, \"r_square\": %s, \"gflops\": %s%s}%s\n" name
        (num ns) (num r2) gf lat
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "bench results written to %s\n%!" path

let run_micro ~smoke ~json () =
  let open Bechamel in
  let tests = micro_tests () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    (* Smoke mode trades statistical quality for CI wall-clock: enough runs
       to catch order-of-magnitude regressions, not enough for a tight OLS. *)
    if smoke then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.05) ~kde:None ~stabilize:false ()
    else Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) ~kde:None ~stabilize:false ()
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let table =
    Tableau.create
      ~title:
        (Printf.sprintf "Micro-benchmarks (Bechamel, monotonic clock, %d domain%s)"
           (Parallel.num_domains ())
           (if Parallel.num_domains () = 1 then "" else "s"))
      ~columns:[ "kernel"; "time/run"; "r^2"; "GFLOP/s" ]
  in
  let collected = ref [] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          let time_ns =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> t
            | _ -> nan
          in
          let r2 = match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan in
          collected := (name, time_ns, r2) :: !collected;
          let pretty =
            if time_ns > 1e9 then Printf.sprintf "%.2f s" (time_ns /. 1e9)
            else if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
            else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
            else Printf.sprintf "%.0f ns" time_ns
          in
          let gf =
            match gflops_of ~name ~ns:time_ns with
            | Some g -> Printf.sprintf "%.2f" g
            | None -> "-"
          in
          Tableau.add_text_row table name [ pretty; Printf.sprintf "%.3f" r2; gf ])
        results)
    tests;
  Tableau.print table;
  (* Latency percentiles for the serve micros: measured per-request on the
     live fixtures, printed always and carried into the JSON artifact as
     the schema /3 fields. *)
  let percentiles =
    let samples = if smoke then 120 else 400 in
    List.map
      (fun (name, measure) ->
        let p50, p99 = measure () in
        Printf.printf "%s latency: p50 %.0f ns, p99 %.0f ns\n%!" name p50 p99;
        (name, (p50, p99)))
      [ ("serve/transform-batch", fun () -> latency_percentiles ~samples serve_call);
        ("serve/route-transform", fun () -> latency_percentiles ~samples route_call);
        ("serve/concurrent-transform-c32", c32_report) ]
  in
  (match json with
  | Some path -> write_json ~path ~smoke ~percentiles (List.rev !collected)
  | None -> ());
  (* Checkpointing contract: snapshotting every sweep must stay within a 5%
     per-sweep overhead of the plain fit.  Smoke-mode numbers on shared
     runners are too noisy to gate on, so there the ratio is only printed;
     a full-quota run (the local/perf workflow) enforces it. *)
  let lookup name =
    List.find_map (fun (n, t, _) -> if n = name then Some t else None) !collected
  in
  match (lookup "tcca/fit-dense", lookup "tcca/fit-checkpointed") with
  | Some plain, Some ckpt when plain > 0. && Float.is_finite ckpt ->
    let overhead = (ckpt /. plain) -. 1. in
    Printf.printf "checkpoint overhead: fit-checkpointed / fit-dense = %+.2f%%\n%!"
      (100. *. overhead);
    if (not smoke) && overhead > 0.05 then begin
      Printf.printf "bench: FAIL — checkpointed fit overhead %.2f%% exceeds the 5%% budget\n%!"
        (100. *. overhead);
      exit 1
    end
  | _ -> ()

(* ------------------------------------------------------------------ *)

let run_id id =
  let t0 = Sys.time () in
  Printf.printf ">>> %s — %s\n%!" id (Figures.describe id);
  List.iter (fun block -> print_endline block) (Figures.run params id);
  Printf.printf "<<< %s done in %.1fs\n\n%!" id (Sys.time () -. t0)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Flags can appear anywhere: --smoke, --json FILE; the rest are ids. *)
  let rec parse smoke json ids = function
    | [] -> (smoke, json, List.rev ids)
    | "--smoke" :: rest -> parse true json ids rest
    | "--json" :: path :: rest -> parse smoke (Some path) ids rest
    | "--json" :: [] -> failwith "bench: --json needs a file argument"
    | id :: rest -> parse smoke json (id :: ids) rest
  in
  let smoke, json, ids = parse false None [] args in
  let run_micro = run_micro ~smoke ~json in
  match ids with
  | [ "--list" ] ->
    List.iter (fun id -> Printf.printf "%-12s %s\n" id (Figures.describe id)) Figures.all_ids;
    print_endline "micro        Bechamel micro-benchmarks of each experiment's dominant kernel"
  | [] ->
    List.iter run_id Figures.all_ids;
    run_micro ()
  | ids -> List.iter (fun id -> if id = "micro" then run_micro () else run_id id) ids
