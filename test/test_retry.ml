(* Retry: deterministic-jitter exponential backoff with typed give-up. *)

let check_true msg condition = Alcotest.(check bool) msg true condition

let policy =
  { Retry.attempts = 4;
    base_delay = 0.1;
    multiplier = 2.0;
    max_delay = 0.5;
    jitter = 0.5;
    seed = 17 }

let test_delay_deterministic () =
  for attempt = 1 to 6 do
    let a = Retry.delay_for policy ~attempt in
    let b = Retry.delay_for policy ~attempt in
    check_true "same (policy, attempt) -> same delay" (a = b)
  done;
  let other = Retry.delay_for { policy with seed = 18 } ~attempt:1 in
  check_true "seed changes the jitter draw" (other <> Retry.delay_for policy ~attempt:1)

let test_delay_bounds () =
  for attempt = 1 to 8 do
    let d = Retry.delay_for policy ~attempt in
    let cap = min policy.Retry.max_delay
        (policy.Retry.base_delay *. (policy.Retry.multiplier ** float_of_int (attempt - 1)))
    in
    check_true "delay <= cap" (d <= cap +. 1e-12);
    check_true "delay >= (1-jitter)*cap" (d >= ((1. -. policy.Retry.jitter) *. cap) -. 1e-12);
    check_true "delay positive" (d > 0.)
  done

let test_first_try_succeeds () =
  let calls = ref 0 in
  let slept = ref [] in
  let r =
    Retry.run ~policy ~sleep:(fun d -> slept := d :: !slept)
      (fun () ->
        incr calls;
        Ok "done")
  in
  check_true "Ok" (r = Ok "done");
  check_true "one call" (!calls = 1);
  check_true "no sleeps" (!slept = [])

let test_recovers_after_failures () =
  let calls = ref 0 in
  let slept = ref [] in
  let retries = ref [] in
  let r =
    Retry.run ~policy ~sleep:(fun d -> slept := d :: !slept)
      ~on_retry:(fun ~attempt ~delay:_ _e -> retries := attempt :: !retries)
      (fun () -> incr calls; if !calls < 3 then Error "flaky" else Ok !calls)
  in
  check_true "Ok 3" (r = Ok 3);
  check_true "three calls" (!calls = 3);
  check_true "two sleeps" (List.length !slept = 2);
  check_true "on_retry saw attempts 1,2" (List.sort compare !retries = [ 1; 2 ]);
  check_true "sleeps match delay_for"
    (List.rev !slept
    = [ Retry.delay_for policy ~attempt:1; Retry.delay_for policy ~attempt:2 ])

let test_give_up () =
  let calls = ref 0 in
  let slept = ref 0. in
  let r =
    Retry.run ~policy ~sleep:(fun d -> slept := !slept +. d)
      (fun () -> incr calls; Error (`Broken !calls))
  in
  match r with
  | Ok _ -> Alcotest.fail "must give up"
  | Error g ->
    check_true "all attempts used" (g.Retry.ga_attempts = policy.Retry.attempts);
    check_true "calls = attempts" (!calls = policy.Retry.attempts);
    check_true "last error is from the last call" (g.Retry.ga_last_error = `Broken policy.Retry.attempts);
    check_true "total delay accounted"
      (Float.abs (g.Retry.ga_total_delay -. !slept) < 1e-12);
    check_true "slept between attempts only"
      (Float.abs
         (!slept
         -. (Retry.delay_for policy ~attempt:1 +. Retry.delay_for policy ~attempt:2
            +. Retry.delay_for policy ~attempt:3))
      < 1e-12)

let test_zero_jitter_is_pure_exponential () =
  let p = { policy with Retry.jitter = 0. } in
  check_true "a1" (Retry.delay_for p ~attempt:1 = 0.1);
  check_true "a2" (Retry.delay_for p ~attempt:2 = 0.2);
  check_true "a3" (Retry.delay_for p ~attempt:3 = 0.4);
  check_true "a4 capped" (Retry.delay_for p ~attempt:4 = 0.5)

let test_exceptions_pass_through () =
  match Retry.run ~policy ~sleep:(fun _ -> ()) (fun () -> failwith "boom") with
  | exception Failure m -> check_true "exception escapes" (m = "boom")
  | _ -> Alcotest.fail "exceptions must not be retried"

let () =
  Alcotest.run "retry"
    [ ( "retry",
        [ Alcotest.test_case "delay deterministic" `Quick test_delay_deterministic;
          Alcotest.test_case "delay bounds" `Quick test_delay_bounds;
          Alcotest.test_case "first try" `Quick test_first_try_succeeds;
          Alcotest.test_case "recovers" `Quick test_recovers_after_failures;
          Alcotest.test_case "give up" `Quick test_give_up;
          Alcotest.test_case "zero jitter" `Quick test_zero_jitter_is_pure_exponential;
          Alcotest.test_case "exceptions pass" `Quick test_exceptions_pass_through ] ) ]
