open Test_support

let three_view_grams r ~n =
  let views = Array.init 3 (fun _ -> Mat.create 2 n) in
  let labels = Array.init n (fun j -> j mod 2) in
  for j = 0 to n - 1 do
    let radius = if labels.(j) = 0 then 1. else 3. in
    Array.iter
      (fun v ->
        let a = Rng.float r (2. *. Float.pi) in
        Mat.set v 0 j ((radius *. cos a) +. (0.1 *. Rng.gaussian r));
        Mat.set v 1 j ((radius *. sin a) +. (0.1 *. Rng.gaussian r)))
      views
  done;
  let fits = Array.map (fun v -> Kernel.fit (Kernel.Exp_distance Distance.L2) v) views in
  (Array.map Kernel.gram fits, fits, views, labels)

let test_shapes () =
  let r = rng () in
  let kernels, _, _, _ = three_view_grams r ~n:40 in
  let model = Ktcca.fit ~r:3 kernels in
  Alcotest.(check int) "r" 3 (Ktcca.r model);
  Alcotest.(check int) "views" 3 (Ktcca.n_views model);
  Alcotest.(check (pair int int)) "3r × N" (9, 40) (Mat.dims (Ktcca.transform_train model));
  Array.iter
    (fun a -> Alcotest.(check (pair int int)) "dual shape" (40, 3) (Mat.dims a))
    (Ktcca.dual_weights model)

let test_two_views_matches_kcca () =
  (* For m = 2 KTCCA's leading directions coincide with KCCA's (the tensor
     problem degenerates to the same SVD, up to the 1/N weight scale). *)
  let r = rng () in
  let kernels, _, _, _ = three_view_grams r ~n:50 in
  let pair = [| kernels.(0); kernels.(1) |] in
  let ktcca = Ktcca.fit ~eps:1e-2 ~r:3 pair in
  let kcca = Kcca.fit ~eps:1e-2 ~r:3 kernels.(0) kernels.(1) in
  let zt = Ktcca.transform_train ktcca and zc = Kcca.transform_train kcca in
  for i = 0 to 2 do
    check_true
      (Printf.sprintf "component %d matches" i)
      (Float.abs (Stats.pearson (Mat.row zt i) (Mat.row zc i)) > 0.999)
  done

let test_nonlinear_separation () =
  let r = rng () in
  let kernels, _, _, labels = three_view_grams r ~n:100 in
  let model = Ktcca.fit ~eps:1e-1 ~r:4 kernels in
  let z = Ktcca.transform_train model in
  let knn = Knn.fit ~k:3 z labels in
  check_true "rings separated" (Eval.accuracy (Knn.predict knn z) labels > 0.85)

let test_out_of_sample_matches_train () =
  let r = rng () in
  let _, fits, views, _ = three_view_grams r ~n:40 in
  let kernels = Array.map Kernel.gram fits in
  let model = Ktcca.fit ~eps:1e-2 ~r:2 kernels in
  let crosses = Array.map2 Kernel.cross fits views in
  check_mat ~eps:1e-8 "train = cross(train)" (Ktcca.transform_train model)
    (Ktcca.transform model crosses)

let test_prepare_consistency () =
  let r = rng () in
  let kernels, _, _, _ = three_view_grams r ~n:40 in
  let direct = Ktcca.fit ~eps:1e-2 ~r:2 kernels in
  let prepared = Ktcca.fit_prepared ~r:2 (Ktcca.prepare ~eps:1e-2 kernels) in
  check_mat ~eps:1e-12 "same embedding" (Ktcca.transform_train direct)
    (Ktcca.transform_train prepared)

let test_max_instances_guard () =
  (* The Nᵐ guard now protects only the dense path: materializing must still
     refuse, while the default (factored above the threshold) must not. *)
  let k = Mat.identity 1000 in
  Alcotest.check_raises "guard"
    (Invalid_argument "Ktcca.fit: N=1000 exceeds max_instances=600 (the tensor S is N^m dense)")
    (fun () -> ignore (Ktcca.fit ~materialize:true ~r:1 [| k; k; k |]));
  check_true "factored raw prepares fine"
    (Ktcca.prepare_raw [| k; k; k |] |> fun _ -> true)

let test_factored_matches_dense () =
  (* N=40, m=3 is dense-feasible (64 000 entries): both representations of S
     must give the same model. *)
  let r = rng () in
  let kernels, _, _, _ = three_view_grams r ~n:40 in
  let dense_p = Ktcca.prepare ~eps:1e-2 ~materialize:true kernels in
  let fact_p = Ktcca.prepare ~eps:1e-2 ~materialize:false kernels in
  check_true "dense is dense" (Ktcca.materialized dense_p);
  check_true "factored is factored" (not (Ktcca.materialized fact_p));
  let zd = Ktcca.transform_train (Ktcca.fit_prepared ~r:2 dense_p) in
  let zf = Ktcca.transform_train (Ktcca.fit_prepared ~r:2 fact_p) in
  for i = 0 to 5 do
    check_true
      (Printf.sprintf "component %d matches" i)
      (Float.abs (Stats.pearson (Mat.row zd i) (Mat.row zf i)) > 0.9999)
  done

(* --- Nyström sketched path. --- *)

let test_nystrom_full_rank_matches_exact () =
  (* At ℓ = N with tol 0 the partial Cholesky is exact (K̂ = K), so the
     sketched model must reproduce the exact one. *)
  let r = rng () in
  let kernels, _, _, _ = three_view_grams r ~n:40 in
  let exact = Ktcca.fit ~eps:1e-2 ~r:2 kernels in
  let ny = Ktcca.fit ~eps:1e-2 ~approx:(Ktcca.Nystrom { rank = 40; tol = 0. }) ~r:2 kernels in
  let ze = Ktcca.transform_train exact and zn = Ktcca.transform_train ny in
  Alcotest.(check (pair int int)) "same shape" (Mat.dims ze) (Mat.dims zn);
  for i = 0 to 5 do
    check_true
      (Printf.sprintf "component %d matches exact" i)
      (Float.abs (Stats.pearson (Mat.row ze i) (Mat.row zn i)) > 0.999)
  done

let test_nystrom_converges_with_rank () =
  (* ℓ → N monotonically drives the kernel trace residual to zero. *)
  let r = rng () in
  let kernels, _, _, _ = three_view_grams r ~n:40 in
  let residual rank =
    let p = Ktcca.prepare ~eps:1e-2 ~approx:(Ktcca.Nystrom { rank; tol = 0. }) kernels in
    match Ktcca.sketch_info p with
    | None -> Alcotest.fail "expected sketch diagnostics"
    | Some info -> Array.fold_left Float.max 0. info.Ktcca.trace_residuals
  in
  let r10 = residual 10 and r25 = residual 25 and r40 = residual 40 in
  check_true "residual shrinks 10→25" (r25 <= r10 +. 1e-12);
  check_true "residual shrinks 25→40" (r40 <= r25 +. 1e-12);
  check_true "full rank residual ~ 0" (r40 < 1e-8)

let test_nystrom_sketch_info () =
  let r = rng () in
  let kernels, _, _, _ = three_view_grams r ~n:40 in
  let p = Ktcca.prepare ~eps:1e-2 ~approx:(Ktcca.Nystrom { rank = 15; tol = 0. }) kernels in
  (match Ktcca.sketch_info p with
  | None -> Alcotest.fail "expected sketch diagnostics"
  | Some info ->
    Alcotest.(check int) "one rank per view" 3 (Array.length info.Ktcca.achieved_ranks);
    Array.iter (fun l -> check_true "ℓ ≤ cap" (l <= 15)) info.Ktcca.achieved_ranks;
    Array.iter
      (fun res -> check_true "residual ∈ [0,1]" (res >= 0. && res <= 1. +. 1e-12))
      info.Ktcca.trace_residuals);
  check_true "exact path has no sketch"
    (Ktcca.sketch_info (Ktcca.prepare ~eps:1e-2 kernels) = None);
  let model = Ktcca.fit_prepared ~r:2 p in
  check_true "model carries the diagnostics" (Ktcca.model_sketch_info model <> None)

let test_nystrom_oracles_match_grams () =
  (* The no-N×N entry point ([fit_oracles] on [Kernel.oracle]) and the Gram
     entry point with the same approximation agree. *)
  let r = rng () in
  let kernels, fits, _, _ = three_view_grams r ~n:40 in
  let approx = Ktcca.Nystrom { rank = 40; tol = 0. } in
  let from_grams = Ktcca.fit ~eps:1e-2 ~approx ~r:2 kernels in
  let from_oracles = Ktcca.fit_oracles ~eps:1e-2 ~approx ~r:2 (Array.map Kernel.oracle fits) in
  check_mat ~eps:1e-6 "same embedding"
    (Ktcca.transform_train from_grams)
    (Ktcca.transform_train from_oracles)

let test_nystrom_out_of_sample () =
  (* At full rank the approximate column means equal the exact ones, so
     embedding the training columns through [transform] reproduces
     [transform_train]. *)
  let r = rng () in
  let _, fits, views, _ = three_view_grams r ~n:40 in
  let kernels = Array.map Kernel.gram fits in
  let model =
    Ktcca.fit ~eps:1e-2 ~approx:(Ktcca.Nystrom { rank = 40; tol = 0. }) ~r:2 kernels
  in
  let crosses = Array.map2 Kernel.cross fits views in
  check_mat ~eps:1e-6 "train = cross(train)" (Ktcca.transform_train model)
    (Ktcca.transform model crosses)

let test_nystrom_low_rank_separates () =
  (* A genuinely truncated sketch (ℓ ≪ N) still solves the rings task. *)
  let r = rng () in
  let kernels, _, _, labels = three_view_grams r ~n:100 in
  let model =
    Ktcca.fit ~eps:1e-1 ~approx:(Ktcca.Nystrom { rank = 30; tol = 0. }) ~r:4 kernels
  in
  let z = Ktcca.transform_train model in
  let knn = Knn.fit ~k:3 z labels in
  check_true "rings separated on the sketch" (Eval.accuracy (Knn.predict knn z) labels > 0.8)

let test_errors () =
  Alcotest.check_raises "one view" (Invalid_argument "Ktcca.fit: need at least two views")
    (fun () -> ignore (Ktcca.fit ~r:1 [| Mat.identity 3 |]))

let () =
  Alcotest.run "ktcca"
    [ ( "theory",
        [ Alcotest.test_case "m=2 reduces to KCCA" `Quick test_two_views_matches_kcca;
          Alcotest.test_case "factored = dense" `Quick test_factored_matches_dense ] );
      ( "behaviour",
        [ Alcotest.test_case "nonlinear separation" `Quick test_nonlinear_separation;
          Alcotest.test_case "out of sample" `Quick test_out_of_sample_matches_train ] );
      ( "interface",
        [ Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "prepare" `Quick test_prepare_consistency;
          Alcotest.test_case "guard" `Quick test_max_instances_guard;
          Alcotest.test_case "errors" `Quick test_errors ] );
      ( "nystrom",
        [ Alcotest.test_case "full rank = exact" `Quick test_nystrom_full_rank_matches_exact;
          Alcotest.test_case "residual → 0 as ℓ → N" `Quick test_nystrom_converges_with_rank;
          Alcotest.test_case "sketch diagnostics" `Quick test_nystrom_sketch_info;
          Alcotest.test_case "oracles = grams" `Quick test_nystrom_oracles_match_grams;
          Alcotest.test_case "out of sample" `Quick test_nystrom_out_of_sample;
          Alcotest.test_case "low rank separates" `Quick test_nystrom_low_rank_separates ] ) ]
