open Test_support

(* Three views sharing a skewed latent signal in their first coordinate. *)
let shared_views r ~n ~noise =
  let views = Array.init 3 (fun _ -> Mat.create 4 n) in
  for j = 0 to n - 1 do
    (* Skewed (exponential-ish) latent: third moments are non-zero, so the
       covariance tensor actually carries the signal. *)
    let s = -.log (Float.max 1e-12 (Rng.uniform r)) -. 1. in
    Array.iter
      (fun v ->
        Mat.set v 0 j (s +. (noise *. Rng.gaussian r));
        for i = 1 to 3 do
          Mat.set v i j (Rng.gaussian r)
        done)
      views
  done;
  views

let test_covariance_tensor_definition () =
  (* C = (1/N) Σ x₁ₙ∘x₂ₙ∘x₃ₙ, checked entry-wise against the definition. *)
  let r = rng () in
  let views = [| random_mat r 2 7; random_mat r 3 7; random_mat r 2 7 |] in
  let c = Tcca.covariance_tensor views in
  let expected i j k =
    let acc = ref 0. in
    for n = 0 to 6 do
      acc := !acc +. (Mat.get views.(0) i n *. Mat.get views.(1) j n *. Mat.get views.(2) k n)
    done;
    !acc /. 7.
  in
  for i = 0 to 1 do
    for j = 0 to 2 do
      for k = 0 to 1 do
        check_float ~eps:1e-10 "entry" (expected i j k) (Tensor.get c [| i; j; k |])
      done
    done
  done

let test_finds_shared_signal () =
  let r = rng () in
  let views = shared_views r ~n:4000 ~noise:0.3 in
  let model = Tcca.fit ~eps:1e-2 ~r:1 views in
  let z0 = Mat.row (Tcca.transform_view model 0 views.(0)) 0 in
  let z1 = Mat.row (Tcca.transform_view model 1 views.(1)) 0 in
  let z2 = Mat.row (Tcca.transform_view model 2 views.(2)) 0 in
  check_true "views 0,1 agree" (Float.abs (Stats.pearson z0 z1) > 0.85);
  check_true "views 0,2 agree" (Float.abs (Stats.pearson z0 z2) > 0.85)

let test_constraint_satisfied () =
  (* Canonical vectors satisfy hᵀ C̃pp h = 1 (Eq. 4.8). *)
  let r = rng () in
  let views = shared_views r ~n:1000 ~noise:0.5 in
  let eps = 1e-2 in
  let model = Tcca.fit ~eps ~r:2 views in
  let hs = Tcca.canonical_vectors model in
  let centered = fst (Preprocess.center_views views) in
  Array.iteri
    (fun p h ->
      let cpp =
        Mat.add_scaled_identity eps (Mat.scale (1. /. 1000.) (Mat.gram centered.(p)))
      in
      for k = 0 to 1 do
        let hk = Mat.col h k in
        check_float ~eps:1e-6
          (Printf.sprintf "constraint view %d comp %d" p k)
          1.
          (Vec.dot hk (Mat.mul_vec cpp hk))
      done)
    hs

let test_correlation_is_multilinear_form () =
  (* λ₀ must equal M ×₁u₁ᵀ×₂u₂ᵀ×₃u₃ᵀ at the fitted (whitened) directions —
     i.e. the high-order canonical correlation of Theorem 1/2. *)
  let r = rng () in
  let views = shared_views r ~n:800 ~noise:0.4 in
  let eps = 1e-2 in
  let model = Tcca.fit ~eps ~r:1 views in
  let hs = Tcca.canonical_vectors model in
  (* ρ = C ×ₚ hₚᵀ on the *unwhitened* centered covariance tensor. *)
  let centered = fst (Preprocess.center_views views) in
  let c = Tcca.covariance_tensor centered in
  let rho = Tensor.multilinear_form c (Array.map (fun h -> Mat.col h 0) hs) in
  check_float ~eps:1e-6 "lambda = canonical correlation"
    (Float.abs (Tcca.correlations model).(0))
    (Float.abs rho)

let test_two_views_matches_cca () =
  (* For m = 2 the best rank-1 of the whitened covariance matrix is the top
     canonical pair: TCCA and CCA must agree. *)
  let r = rng () in
  let views3 = shared_views r ~n:3000 ~noise:0.3 in
  let views = [| views3.(0); views3.(1) |] in
  let tcca = Tcca.fit ~eps:1e-3 ~r:1 views in
  let cca = Cca.fit ~eps:1e-3 ~r:1 views.(0) views.(1) in
  let zt = Mat.row (Tcca.transform_view tcca 0 views.(0)) 0 in
  let zc = Mat.row (Cca.transform1 cca views.(0)) 0 in
  check_true "TCCA(m=2) = CCA" (Float.abs (Stats.pearson zt zc) > 0.999);
  check_float ~eps:0.01 "correlation value matches"
    (Cca.correlations cca).(0)
    (Float.abs (Tcca.correlations tcca).(0))

let test_prepare_fit_consistency () =
  let r = rng () in
  let views = shared_views r ~n:500 ~noise:0.5 in
  let direct = Tcca.fit ~eps:1e-2 ~r:2 views in
  let prepared = Tcca.fit_prepared ~r:2 (Tcca.prepare ~eps:1e-2 views) in
  check_vec ~eps:1e-12 "same correlations" (Tcca.correlations direct)
    (Tcca.correlations prepared);
  check_mat ~eps:1e-12 "same transform" (Tcca.transform direct views)
    (Tcca.transform prepared views)

let test_transform_shapes () =
  let r = rng () in
  let views = shared_views r ~n:60 ~noise:0.5 in
  let model = Tcca.fit ~r:2 views in
  Alcotest.(check int) "r" 2 (Tcca.r model);
  Alcotest.(check int) "views" 3 (Tcca.n_views model);
  Alcotest.(check (pair int int)) "m·r × N" (6, 60) (Mat.dims (Tcca.transform model views));
  Alcotest.(check (pair int int)) "view block" (2, 60)
    (Mat.dims (Tcca.transform_view model 1 views.(1)))

let test_r_clamped () =
  let r = rng () in
  let views = shared_views r ~n:50 ~noise:0.5 in
  Alcotest.(check int) "clamped to min dim" 4 (Tcca.r (Tcca.fit ~r:100 views))

let test_solver_power_deflation () =
  let r = rng () in
  let views = shared_views r ~n:2000 ~noise:0.3 in
  let als = Tcca.fit ~solver:Tcca.default_solver ~r:1 views in
  let power = Tcca.fit ~solver:Tcca.Power_deflation ~r:1 views in
  (* Both solvers find the same dominant component. *)
  let za = Mat.row (Tcca.transform_view als 0 views.(0)) 0 in
  let zp = Mat.row (Tcca.transform_view power 0 views.(0)) 0 in
  check_true "solvers agree on rank-1" (Float.abs (Stats.pearson za zp) > 0.99)

let test_correlations_sorted () =
  let r = rng () in
  let views = shared_views r ~n:800 ~noise:0.5 in
  let c = Tcca.correlations (Tcca.fit ~r:3 views) in
  for i = 1 to 2 do
    check_true "descending magnitude" (Float.abs c.(i) <= Float.abs c.(i - 1) +. 1e-9)
  done

let test_builder_matches_batch_fit () =
  (* Streaming accumulation over batches must reproduce the one-shot fit on
     the concatenated data exactly. *)
  let r = rng () in
  let views = shared_views r ~n:400 ~noise:0.4 in
  let slice lo len = Array.map (fun v -> Mat.sub_cols v lo len) views in
  let builder = Tcca.Builder.create ~dims:(Array.map (fun v -> fst (Mat.dims v)) views) in
  Tcca.Builder.add_batch builder (slice 0 150);
  Tcca.Builder.add_batch builder (slice 150 100);
  Tcca.Builder.add_batch builder (slice 250 150);
  Alcotest.(check int) "count" 400 (Tcca.Builder.count builder);
  let streamed =
    Tcca.fit_prepared ~r:2 (Tcca.prepare_of_raw ~eps:1e-2 (Tcca.Builder.finalize builder))
  in
  let direct = Tcca.fit ~eps:1e-2 ~r:2 views in
  check_vec ~eps:1e-8 "same correlations" (Tcca.correlations direct)
    (Tcca.correlations streamed);
  check_mat ~eps:1e-6 "same embedding" (Tcca.transform direct views)
    (Tcca.transform streamed views)

let test_builder_four_views () =
  (* The inclusion–exclusion centering is generic in the number of views. *)
  let r = rng () in
  let n = 120 in
  let views = Array.init 4 (fun _ -> Mat.create 3 n) in
  for j = 0 to n - 1 do
    let s = Float.abs (Rng.gaussian r) in
    Array.iter
      (fun v ->
        Mat.set v 0 j (s +. (0.3 *. Rng.gaussian r));
        Mat.set v 1 j (1. +. Rng.gaussian r);
        Mat.set v 2 j (Rng.gaussian r))
      views
  done;
  let builder = Tcca.Builder.create ~dims:[| 3; 3; 3; 3 |] in
  Tcca.Builder.add_batch builder (Array.map (fun v -> Mat.sub_cols v 0 50) views);
  Tcca.Builder.add_batch builder (Array.map (fun v -> Mat.sub_cols v 50 70) views);
  let streamed =
    Tcca.fit_prepared ~r:1 (Tcca.prepare_of_raw ~eps:1e-2 (Tcca.Builder.finalize builder))
  in
  let direct = Tcca.fit ~eps:1e-2 ~r:1 views in
  check_float ~eps:1e-8 "4-view correlation matches"
    (Float.abs (Tcca.correlations direct).(0))
    (Float.abs (Tcca.correlations streamed).(0))

(* --- Sketched / shrinkage knobs. --- *)

let test_solver_sampled_als () =
  let r = rng () in
  let views = shared_views r ~n:2000 ~noise:0.3 in
  let als = Tcca.fit ~eps:1e-2 ~r:1 views in
  let sampled = Tcca.fit ~eps:1e-2 ~solver:(Tcca.Sampled_als Cp_rand.default_options) ~r:1 views in
  let za = Mat.row (Tcca.transform_view als 0 views.(0)) 0 in
  let zs = Mat.row (Tcca.transform_view sampled 0 views.(0)) 0 in
  check_true "sampled ALS finds the ALS component" (Float.abs (Stats.pearson za zs) > 0.95)

let test_fixed_zero_shrinkage_is_historical () =
  (* ρ = 0 adds no identity mass, so the whole pipeline is bit-identical to
     the default path. *)
  let r = rng () in
  let views = shared_views r ~n:300 ~noise:0.5 in
  let plain = Tcca.fit ~eps:1e-2 ~r:2 views in
  let zeroed = Tcca.fit ~eps:1e-2 ~shrinkage:(`Fixed 0.) ~r:2 views in
  check_vec ~eps:0. "bitwise correlations" (Tcca.correlations plain) (Tcca.correlations zeroed);
  check_mat ~eps:0. "bitwise embedding" (Tcca.transform plain views)
    (Tcca.transform zeroed views)

let test_shrinkage_intensities_recorded () =
  let r = rng () in
  let views = shared_views r ~n:300 ~noise:0.5 in
  let none = Tcca.prepare ~eps:1e-2 views in
  Array.iter (check_float "no shrinkage → ρ = 0" 0.) (Tcca.shrinkage_intensities none);
  let oas = Tcca.prepare ~eps:1e-2 ~shrinkage:`Oas views in
  let intens = Tcca.shrinkage_intensities oas in
  Alcotest.(check int) "one ρ per view" 3 (Array.length intens);
  Array.iter (fun rho -> check_true "ρ ∈ (0,1]" (rho > 0. && rho <= 1.)) intens;
  (* Shrinkage perturbs the whitening but must keep the shared component. *)
  let m = Tcca.fit_prepared ~r:1 oas in
  let plain = Tcca.fit ~eps:1e-2 ~r:1 views in
  let zs = Mat.row (Tcca.transform_view m 0 views.(0)) 0 in
  let zp = Mat.row (Tcca.transform_view plain 0 views.(0)) 0 in
  check_true "component survives shrinkage" (Float.abs (Stats.pearson zs zp) > 0.95)

let test_builder_finalize_shrinkage () =
  let r = rng () in
  let views = shared_views r ~n:400 ~noise:0.4 in
  let builder = Tcca.Builder.create ~dims:(Array.map (fun v -> fst (Mat.dims v)) views) in
  Tcca.Builder.add_batch builder views;
  let raw = Tcca.Builder.finalize ~shrinkage:`Oas builder in
  let p = Tcca.prepare_of_raw ~eps:1e-2 raw in
  Array.iter
    (fun rho -> check_true "streamed ρ ∈ (0,1]" (rho > 0. && rho <= 1.))
    (Tcca.shrinkage_intensities p)

let test_randomized_whiten_matches_eig () =
  (* d = 4 with a 4-dimensional sketch: the range finder captures the whole
     view space, so the sketched whitener reproduces the eig whitener's
     model up to sign. *)
  let r = rng () in
  let views = shared_views r ~n:1500 ~noise:0.4 in
  let eig = Tcca.fit ~eps:1e-2 ~whiten:`Eig ~r:2 views in
  let rand = Tcca.fit ~eps:1e-2 ~whiten:(`Randomized 4) ~r:2 views in
  let ze = Tcca.transform eig views and zr = Tcca.transform rand views in
  for i = 0 to 5 do
    check_true
      (Printf.sprintf "component %d matches eig route" i)
      (Float.abs (Stats.pearson (Mat.row ze i) (Mat.row zr i)) > 0.999)
  done

let test_builder_errors () =
  Alcotest.check_raises "one view" (Invalid_argument "Tcca.Builder.create: need at least two views")
    (fun () -> ignore (Tcca.Builder.create ~dims:[| 3 |]));
  let b = Tcca.Builder.create ~dims:[| 2; 2 |] in
  Alcotest.check_raises "empty finalize" (Invalid_argument "Tcca.Builder.finalize: no instances")
    (fun () -> ignore (Tcca.Builder.finalize b))

let test_errors () =
  let r = rng () in
  Alcotest.check_raises "one view" (Invalid_argument "Tcca.prepare: need at least two views")
    (fun () -> ignore (Tcca.fit ~r:1 [| random_mat r 3 5 |]));
  Alcotest.check_raises "instance mismatch"
    (Invalid_argument "Tcca.prepare: instance count mismatch") (fun () ->
      ignore (Tcca.fit ~r:1 [| random_mat r 3 5; random_mat r 3 6 |]))

let () =
  Alcotest.run "tcca"
    [ ( "theory",
        [ Alcotest.test_case "covariance tensor" `Quick test_covariance_tensor_definition;
          Alcotest.test_case "constraint (Eq 4.8)" `Quick test_constraint_satisfied;
          Alcotest.test_case "correlation = multilinear form" `Quick
            test_correlation_is_multilinear_form;
          Alcotest.test_case "m=2 reduces to CCA" `Quick test_two_views_matches_cca ] );
      ( "behaviour",
        [ Alcotest.test_case "shared signal" `Quick test_finds_shared_signal;
          Alcotest.test_case "solver agreement" `Quick test_solver_power_deflation;
          Alcotest.test_case "sorted correlations" `Quick test_correlations_sorted ] );
      ( "interface",
        [ Alcotest.test_case "prepare/fit" `Quick test_prepare_fit_consistency;
          Alcotest.test_case "shapes" `Quick test_transform_shapes;
          Alcotest.test_case "clamping" `Quick test_r_clamped;
          Alcotest.test_case "errors" `Quick test_errors ] );
      ( "streaming",
        [ Alcotest.test_case "builder = batch fit" `Quick test_builder_matches_batch_fit;
          Alcotest.test_case "four views" `Quick test_builder_four_views;
          Alcotest.test_case "builder errors" `Quick test_builder_errors ] );
      ( "sketched",
        [ Alcotest.test_case "sampled ALS solver" `Quick test_solver_sampled_als;
          Alcotest.test_case "fixed-0 shrinkage bitwise" `Quick
            test_fixed_zero_shrinkage_is_historical;
          Alcotest.test_case "shrinkage intensities" `Quick test_shrinkage_intensities_recorded;
          Alcotest.test_case "builder shrinkage" `Quick test_builder_finalize_shrinkage;
          Alcotest.test_case "randomized whitening" `Quick test_randomized_whiten_matches_eig ]
      ) ]
