open Test_support

let centered_cov x =
  let _, n = Mat.dims x in
  Mat.scale (1. /. float_of_int n) (Mat.gram x)

let white_data r d n = random_mat r d n

let structured_data r d n =
  (* One dominant direction + small noise: far from the identity target. *)
  let base = random_vec r d in
  Mat.init d n (fun i j ->
      (base.(i) *. float_of_int ((j mod 5) - 2)) +. (0.05 *. Rng.gaussian r))

let test_none_is_identity () =
  let r = rng () in
  let x = white_data r 4 30 in
  let c = centered_cov x in
  let a = Shrink.apply ~x ~n:30 `None c in
  check_true "same matrix object" (a.Shrink.cov == c);
  check_float "zero intensity" 0. a.Shrink.intensity

let test_fixed_clipping () =
  let r = rng () in
  let x = white_data r 4 30 in
  let c = centered_cov x in
  check_float "over-1 clipped" 1. (Shrink.apply ~x ~n:30 (`Fixed 2.5) c).Shrink.intensity;
  check_float "negative clipped" 0. (Shrink.apply ~x ~n:30 (`Fixed (-0.5)) c).Shrink.intensity;
  let a = Shrink.apply ~x ~n:30 (`Fixed 1.) c in
  (* ρ = 1 is the pure identity target μI. *)
  let d = fst (Mat.dims c) in
  let mu = Mat.trace c /. float_of_int d in
  check_mat ~eps:1e-12 "full shrink = μI" (Mat.scale mu (Mat.identity d)) a.Shrink.cov

let test_shrunk_trace_preserved () =
  (* (1−ρ)C + ρμI preserves the trace for every ρ. *)
  let r = rng () in
  let x = structured_data r 5 40 in
  let c = centered_cov x in
  List.iter
    (fun mode ->
      let a = Shrink.apply ~x ~n:40 mode c in
      check_float ~eps:1e-9 "trace preserved" (Mat.trace c) (Mat.trace a.Shrink.cov))
    [ `Lw; `Oas; `Fixed 0.3 ]

let test_white_data_shrinks_hard () =
  (* On white data the true covariance IS μI, so every deviation is sampling
     noise and both estimators should shrink most of the way to the target. *)
  let r = rng () in
  let d = 5 and n = 2000 in
  let x = white_data r d n in
  let c = centered_cov x in
  List.iter
    (fun (name, mode) ->
      let a = Shrink.apply ~x ~n mode c in
      check_true (name ^ " intensity large on white data") (a.Shrink.intensity > 0.5);
      (* Shrunk covariance ≈ I (μ ≈ 1 for standard normal data). *)
      check_mat ~eps:0.15 (name ^ " ≈ identity") (Mat.identity d) a.Shrink.cov)
    [ ("lw", `Lw); ("oas", `Oas) ]

let test_structured_data_shrinks_little () =
  (* A strong low-rank signal with many samples: the deviation from μI is
     real structure, so LW must keep most of it. *)
  let r = rng () in
  let x = structured_data r 5 500 in
  let c = centered_cov x in
  let a = Shrink.apply ~x ~n:500 `Lw c in
  check_true "lw intensity small on structured data" (a.Shrink.intensity < 0.2)

let test_lw_without_instances_falls_back () =
  let r = rng () in
  let x = white_data r 4 50 in
  let c = centered_cov x in
  Robust.clear_warnings ();
  let a = Shrink.apply ~n:50 `Lw c in
  let b = Shrink.apply ~x ~n:50 `Oas c in
  check_float ~eps:1e-12 "falls back to OAS intensity" b.Shrink.intensity a.Shrink.intensity;
  check_true "warned" (Robust.recent_warnings () <> [])

let gen_view =
  QCheck2.Gen.(
    pair (int_range 2 6) (int_range 8 40) >>= fun (d, n) ->
    array_size (return (d * n)) (float_range (-5.) 5.) >|= fun data ->
    Mat.unsafe_of_flat ~rows:d ~cols:n data)

let prop_intensity_in_range =
  qtest ~count:60 "LW/OAS intensity ∈ [0,1]" gen_view (fun x ->
      let _, n = Mat.dims x in
      let c = centered_cov x in
      let ok mode =
        let a = Shrink.apply ~x ~n mode c in
        a.Shrink.intensity >= 0. && a.Shrink.intensity <= 1.
      in
      ok `Lw && ok `Oas)

let prop_shrunk_stays_symmetric =
  qtest ~count:60 "shrunk covariance stays symmetric PSD-conditioned" gen_view (fun x ->
      let _, n = Mat.dims x in
      let c = centered_cov x in
      let a = Shrink.apply ~x ~n `Oas c in
      Mat.is_symmetric ~eps:1e-8 a.Shrink.cov)

let () =
  Alcotest.run "shrink"
    [ ( "modes",
        [ Alcotest.test_case "none" `Quick test_none_is_identity;
          Alcotest.test_case "fixed clipping" `Quick test_fixed_clipping;
          Alcotest.test_case "trace preserved" `Quick test_shrunk_trace_preserved;
          Alcotest.test_case "lw fallback" `Quick test_lw_without_instances_falls_back ] );
      ( "estimators",
        [ Alcotest.test_case "white data" `Quick test_white_data_shrinks_hard;
          Alcotest.test_case "structured data" `Quick test_structured_data_shrinks_little ] );
      ("properties", [ prop_intensity_in_range; prop_shrunk_stays_symmetric ]) ]
