open Test_support

(* The Parallel pool itself, plus end-to-end bitwise-determinism checks for
   every kernel that partitions work across it.  [set_sequential_cutoff 0]
   forces even tiny inputs through the pool so the parallel paths are
   genuinely exercised regardless of input size. *)

let with_pool size f =
  Parallel.set_num_domains size;
  Parallel.set_sequential_cutoff 0;
  Fun.protect
    ~finally:(fun () ->
      Parallel.set_num_domains 1;
      Parallel.set_sequential_cutoff Parallel.default_cutoff)
    f

let pool_sizes = [ 1; 2; 4 ]

let test_env_sizing () =
  Alcotest.(check int) "explicit 1" 1 (Parallel.size_from_env (Some "1"));
  Alcotest.(check int) "explicit 4" 4 (Parallel.size_from_env (Some "4"));
  Alcotest.(check int) "whitespace tolerated" 3 (Parallel.size_from_env (Some " 3 "));
  Alcotest.(check int) "clamped above" 128 (Parallel.size_from_env (Some "100000"));
  let default = Parallel.size_from_env None in
  check_true "default positive" (default >= 1);
  Alcotest.(check int) "zero falls back" default (Parallel.size_from_env (Some "0"));
  Alcotest.(check int) "negative falls back" default (Parallel.size_from_env (Some "-2"));
  Alcotest.(check int) "garbage falls back" default (Parallel.size_from_env (Some "fast"))

let test_for_covers_range () =
  List.iter
    (fun size ->
      with_pool size (fun () ->
          List.iter
            (fun n ->
              let hits = Array.make (max n 1) 0 in
              Parallel.parallel_for ~n (fun lo hi ->
                  for i = lo to hi - 1 do
                    hits.(i) <- hits.(i) + 1
                  done);
              for i = 0 to n - 1 do
                Alcotest.(check int) (Printf.sprintf "size %d n %d idx %d" size n i) 1 hits.(i)
              done)
            [ 0; 1; 2; 3; 7; 64; 101 ]))
    pool_sizes

let test_reduce_ordered () =
  List.iter
    (fun size ->
      with_pool size (fun () ->
          (* A non-commutative combine exposes any chunk reordering. *)
          let spans =
            Parallel.parallel_for_reduce ~n:97 ~init:[] ~combine:( @ ) (fun lo hi ->
                [ (lo, hi) ])
          in
          let last =
            List.fold_left
              (fun expect (lo, hi) ->
                Alcotest.(check int) (Printf.sprintf "size %d contiguous" size) expect lo;
                check_true "nonempty chunk" (hi > lo);
                hi)
              0 spans
          in
          Alcotest.(check int) (Printf.sprintf "size %d full cover" size) 97 last;
          let total =
            Parallel.parallel_for_reduce ~n:1000 ~init:0 ~combine:( + ) (fun lo hi ->
                let s = ref 0 in
                for i = lo to hi - 1 do
                  s := !s + i
                done;
                !s)
          in
          Alcotest.(check int) (Printf.sprintf "size %d sum" size) 499500 total))
    pool_sizes

let test_exceptions_propagate () =
  List.iter
    (fun size ->
      with_pool size (fun () ->
          Alcotest.check_raises "chunk failure re-raised" (Failure "boom") (fun () ->
              Parallel.parallel_for ~n:64 (fun lo hi ->
                  if lo <= 40 && 40 < hi then failwith "boom"));
          (* The pool must survive a failed dispatch and keep working. *)
          let acc = ref 0 in
          Parallel.parallel_for_reduce ~n:10 ~init:() ~combine:(fun () () -> ())
            (fun lo hi -> acc := !acc + (hi - lo))
          |> ignore;
          check_true "pool alive after failure" true))
    pool_sizes

let test_nested_degrades () =
  with_pool 4 (fun () ->
      let out = Array.make 32 0 in
      Parallel.parallel_for ~n:32 (fun lo hi ->
          for i = lo to hi - 1 do
            (* Nested region: must run (sequentially) rather than deadlock. *)
            Parallel.parallel_for ~n:4 (fun l h ->
                for _ = l to h - 1 do
                  out.(i) <- out.(i) + 1
                done)
          done);
      Array.iteri (fun i v -> Alcotest.(check int) (Printf.sprintf "idx %d" i) 4 v) out)

(* ------------------------------------------------------------------ *)
(* Bitwise determinism of the parallelized numerical kernels: results at
   pool sizes 2 and 4 must be bit-for-bit the results at pool size 1.   *)

let mat_bits_equal a b =
  Mat.dims a = Mat.dims b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a.Mat.data b.Mat.data

let tensor_bits_equal a b =
  a.Tensor.dims = b.Tensor.dims
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a.Tensor.data b.Tensor.data

let across_pools name compute equal =
  let reference = with_pool 1 compute in
  List.iter
    (fun size ->
      let got = with_pool size compute in
      check_true (Printf.sprintf "%s bitwise stable at pool %d" name size)
        (equal reference got))
    [ 2; 4 ]

let test_covariance_tensor_deterministic () =
  let r = rng () in
  let views = [| random_mat r 6 40; random_mat r 5 40; random_mat r 4 40 |] in
  across_pools "covariance_tensor"
    (fun () -> Tcca.covariance_tensor views)
    tensor_bits_equal

let test_mttkrp_deterministic () =
  let r = rng () in
  let t = random_tensor r [| 7; 6; 5 |] in
  let us = [| random_mat r 7 3; random_mat r 6 3; random_mat r 5 3 |] in
  for k = 0 to 2 do
    across_pools
      (Printf.sprintf "mttkrp mode %d" k)
      (fun () -> Cp_als.mttkrp t us k)
      mat_bits_equal
  done

let test_pairwise_deterministic () =
  let r = rng () in
  let x = random_mat r 5 23 in
  List.iter
    (fun kind ->
      across_pools "pairwise" (fun () -> Distance.pairwise kind x) mat_bits_equal;
      across_pools "cross"
        (fun () -> Distance.cross kind x (random_mat (rng ()) 5 9))
        mat_bits_equal)
    [ Distance.L2; Distance.Sq_l2; Distance.Chi2; Distance.L1 ]

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "env sizing" `Quick test_env_sizing;
          Alcotest.test_case "range cover" `Quick test_for_covers_range;
          Alcotest.test_case "ordered reduce" `Quick test_reduce_ordered;
          Alcotest.test_case "exceptions" `Quick test_exceptions_propagate;
          Alcotest.test_case "nested" `Quick test_nested_degrades ] );
      ( "determinism",
        [ Alcotest.test_case "covariance tensor" `Quick test_covariance_tensor_deterministic;
          Alcotest.test_case "mttkrp" `Quick test_mttkrp_deterministic;
          Alcotest.test_case "pairwise/cross" `Quick test_pairwise_deterministic ] ) ]
