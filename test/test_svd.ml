open Test_support

let test_diagonal () =
  let a = Mat.diag_of_vec [| 3.; 5.; 1. |] in
  let { Svd.sigma; _ } = Svd.decompose a in
  check_vec ~eps:1e-10 "sorted singular values" [| 5.; 3.; 1. |] sigma

let test_reconstruction_tall () =
  let r = rng () in
  for _ = 1 to 8 do
    let a = random_mat r 7 4 in
    check_mat ~eps:1e-7 "UΣVᵀ = A" a (Svd.reconstruct (Svd.decompose a))
  done

let test_reconstruction_wide () =
  let r = rng () in
  let a = random_mat r 3 8 in
  check_mat ~eps:1e-7 "wide reconstruction" a (Svd.reconstruct (Svd.decompose a))

let test_orthonormal_factors () =
  let r = rng () in
  let a = random_mat r 9 5 in
  let { Svd.u; v; _ } = Svd.decompose a in
  check_mat ~eps:1e-8 "UᵀU = I" (Mat.identity 5) (Mat.tgram u);
  check_mat ~eps:1e-8 "VᵀV = I" (Mat.identity 5) (Mat.tgram v)

let test_singular_values_vs_eigen () =
  (* σᵢ² are the eigenvalues of AᵀA. *)
  let r = rng () in
  let a = random_mat r 8 4 in
  let { Svd.sigma; _ } = Svd.decompose a in
  let eig = (Eigen.decompose (Mat.tgram a)).Eigen.values in
  Array.iteri
    (fun i s -> check_float ~eps:1e-6 (Printf.sprintf "σ²=λ (%d)" i) eig.(i) (s *. s))
    sigma

let test_rank_deficient () =
  (* Rank-1 matrix: exactly one non-negligible singular value. *)
  let x = [| 1.; 2.; 3. |] and y = [| 4.; 5. |] in
  let a = Mat.of_arrays (Vec.outer x y) in
  let svd = Svd.decompose a in
  Alcotest.(check int) "numerical rank 1" 1 (Svd.rank svd);
  check_float ~eps:1e-9 "σ₁ = |x||y|" (Vec.norm x *. Vec.norm y) svd.Svd.sigma.(0)

let test_truncated () =
  let r = rng () in
  let a = random_mat r 6 5 in
  let svd = Svd.decompose a in
  let u, s, v = Svd.truncated svd 2 in
  Alcotest.(check (pair int int)) "u shape" (6, 2) (Mat.dims u);
  Alcotest.(check int) "sigma length" 2 (Array.length s);
  Alcotest.(check (pair int int)) "v shape" (5, 2) (Mat.dims v)

let test_truncation_error_optimal () =
  (* Eckart–Young: truncating to rank k leaves error² = Σ_{i>k} σᵢ². *)
  let r = rng () in
  let a = random_mat r 6 6 in
  let svd = Svd.decompose a in
  let u, s, v = Svd.truncated svd 3 in
  let scaled = Mat.init 6 3 (fun i j -> Mat.get u i j *. s.(j)) in
  let approx = Mat.mul_nt scaled v in
  let err2 = Mat.frobenius (Mat.sub a approx) ** 2. in
  let tail2 = ref 0. in
  for i = 3 to 5 do
    tail2 := !tail2 +. (svd.Svd.sigma.(i) ** 2.)
  done;
  check_float ~eps:1e-6 "tail energy" !tail2 err2

let test_zero_matrix () =
  let svd = Svd.decompose (Mat.create 4 3) in
  Alcotest.(check int) "rank 0" 0 (Svd.rank svd);
  check_vec "zero sigma" [| 0.; 0.; 0. |] svd.Svd.sigma

let test_nuclear_norm () =
  let a = Mat.diag_of_vec [| 2.; 3. |] in
  check_float ~eps:1e-10 "nuclear" 5. (Svd.nuclear_norm (Svd.decompose a))

(* --- Tall-matrix QR + eig route (forced with ~method_ so these hold no
   matter what TCCA_EIG picked for the process). --- *)

let test_tall_reconstruction () =
  let r = rng () in
  for _ = 1 to 5 do
    let a = random_mat r 40 8 in
    check_mat ~eps:1e-7 "UΣVᵀ = A (qr_eig)"
      a
      (Svd.reconstruct (Svd.decompose ~method_:`Qr_eig a))
  done

let test_tall_orthonormal () =
  let r = rng () in
  let a = random_mat r 50 6 in
  let { Svd.u; v; _ } = Svd.decompose ~method_:`Qr_eig a in
  check_mat ~eps:1e-8 "UᵀU = I (qr_eig)" (Mat.identity 6) (Mat.tgram u);
  check_mat ~eps:1e-8 "VᵀV = I (qr_eig)" (Mat.identity 6) (Mat.tgram v)

let test_tall_matches_jacobi () =
  let r = rng () in
  let a = random_mat r 36 7 in
  let sj = (Svd.decompose ~method_:`Jacobi a).Svd.sigma in
  let sq = (Svd.decompose ~method_:`Qr_eig a).Svd.sigma in
  check_vec ~eps:1e-8 "singular values agree across routes" sj sq

let test_wide_qr_eig () =
  (* Wide inputs go through the transpose normalization first; the forced
     route must land on the same spectrum. *)
  let r = rng () in
  let a = random_mat r 5 30 in
  let sj = (Svd.decompose ~method_:`Jacobi a).Svd.sigma in
  let sq = (Svd.decompose ~method_:`Qr_eig a).Svd.sigma in
  check_vec ~eps:1e-8 "wide spectrum agrees" sj sq;
  check_mat ~eps:1e-7 "wide reconstruction (qr_eig)" a
    (Svd.reconstruct (Svd.decompose ~method_:`Qr_eig a))

let test_tall_rank_deficient () =
  (* Rank-2 tall matrix: the route must report rank 2 and keep σ₃.. at ~0
     without manufacturing spurious energy. *)
  let r = rng () in
  let b = random_mat r 30 2 in
  let c = random_mat r 2 5 in
  let a = Mat.mul b c in
  let svd = Svd.decompose ~method_:`Qr_eig a in
  Alcotest.(check int) "numerical rank 2" 2 (Svd.rank svd);
  check_mat ~eps:1e-7 "rank-2 reconstruction" a (Svd.reconstruct svd)

let test_tall_zero () =
  let svd = Svd.decompose ~method_:`Qr_eig (Mat.create 24 3) in
  Alcotest.(check int) "rank 0" 0 (Svd.rank svd);
  check_vec "zero sigma" [| 0.; 0.; 0. |] svd.Svd.sigma

(* --- Randomized range-finder route. --- *)

let test_randomized_exact_on_low_rank () =
  let r = rng () in
  let b = random_mat r 40 4 in
  let c = random_mat r 4 9 in
  let a = Mat.mul b c in
  let rsvd, info = Svd.randomized ~rank:4 a in
  check_true "converged" info.Svd.converged;
  check_mat ~eps:1e-6 "UΣVᵀ = A on exact low rank" a (Svd.reconstruct rsvd);
  let exact = Svd.decompose ~method_:`Qr_eig a in
  for i = 0 to 3 do
    check_float ~eps:1e-6
      (Printf.sprintf "σ%d matches exact route" i)
      exact.Svd.sigma.(i) rsvd.Svd.sigma.(i)
  done

let test_randomized_subspace_angle () =
  (* Principal angles between the randomized and exact top-k left subspaces:
     every singular value of [U_exᵀ U_rand] must be cos(0) = 1. *)
  let r = rng () in
  let b = random_mat r 30 3 in
  let c = random_mat r 3 7 in
  let a = Mat.mul b c in
  let rsvd, _ = Svd.randomized ~rank:3 a in
  let exact = Svd.decompose ~method_:`Qr_eig a in
  let u_ex, _, _ = Svd.truncated exact 3 in
  let overlap = Svd.decompose (Mat.mul_tn u_ex rsvd.Svd.u) in
  Array.iter (fun s -> check_float ~eps:1e-6 "cos(principal angle) = 1" 1. s) overlap.Svd.sigma

let test_randomized_orthonormal () =
  let r = rng () in
  let a = random_mat r 25 10 in
  let rsvd, _ = Svd.randomized ~rank:5 a in
  Alcotest.(check (pair int int)) "u shape" (25, 5) (Mat.dims rsvd.Svd.u);
  Alcotest.(check int) "sigma length" 5 (Array.length rsvd.Svd.sigma);
  check_mat ~eps:1e-8 "UᵀU = I" (Mat.identity 5) (Mat.tgram rsvd.Svd.u);
  check_mat ~eps:1e-8 "VᵀV = I" (Mat.identity 5) (Mat.tgram rsvd.Svd.v)

let test_randomized_sigma_bounds () =
  (* σ̂ᵢ never exceeds the true σᵢ (the sketch is an orthogonal projection),
     and with rank + oversample covering the whole space it matches to
     roundoff. *)
  let r = rng () in
  let a = random_mat r 12 8 in
  let exact = Svd.decompose ~method_:`Qr_eig a in
  let rsvd, _ = Svd.randomized ~rank:4 a in
  Array.iteri
    (fun i s ->
      check_true "σ̂ ≤ σ" (s <= exact.Svd.sigma.(i) +. 1e-8);
      check_float ~eps:1e-7 "σ̂ = σ under a full sketch" exact.Svd.sigma.(i) s)
    rsvd.Svd.sigma

let test_randomized_deterministic () =
  let r = rng () in
  let a = random_mat r 30 6 in
  let s1, _ = Svd.randomized ~rank:3 a in
  let s2, _ = Svd.randomized ~rank:3 a in
  check_mat ~eps:0. "bitwise identical U" s1.Svd.u s2.Svd.u;
  check_vec ~eps:0. "bitwise identical σ" s1.Svd.sigma s2.Svd.sigma;
  (* A different seed draws a different sketch, but here the sketch still
     spans the whole 6-dimensional row space, so the spectrum agrees. *)
  let s3, _ = Svd.randomized ~seed:7 ~rank:3 a in
  check_vec ~eps:1e-6 "seed changes sketch, not spectrum" s1.Svd.sigma s3.Svd.sigma

let prop_randomized_matches_qr_eig =
  qtest ~count:30 "randomized = qr_eig on known-low-rank matrices"
    QCheck2.Gen.(triple (int_range 6 18) (int_range 1 3) (int_range 4 8))
    (fun (m, k, n) ->
      let r = Rng.create ((m * 1000) + (k * 100) + n) in
      let a = Mat.mul (random_mat r m k) (random_mat r k n) in
      let rsvd, _ = Svd.randomized ~rank:k a in
      let exact = Svd.decompose ~method_:`Qr_eig a in
      let ok = ref true in
      for i = 0 to k - 1 do
        let s = exact.Svd.sigma.(i) in
        if Float.abs (rsvd.Svd.sigma.(i) -. s) > 1e-6 *. (1. +. s) then ok := false
      done;
      !ok && Mat.equal ~eps:(1e-6 *. (1. +. Mat.frobenius a)) a (Svd.reconstruct rsvd))

let prop_spectral_bound =
  qtest ~count:50 "‖Ax‖ <= σ₁‖x‖" gen_mat (fun a ->
      let _, n = Mat.dims a in
      let x = Array.init n (fun i -> float_of_int (i + 1)) in
      let svd = Svd.decompose a in
      let s1 = if Array.length svd.Svd.sigma = 0 then 0. else svd.Svd.sigma.(0) in
      Vec.norm (Mat.mul_vec a x) <= (s1 *. Vec.norm x) +. 1e-6)

let prop_frobenius_is_sigma_norm =
  qtest ~count:50 "‖A‖F² = Σσ²" gen_mat (fun a ->
      let svd = Svd.decompose a in
      let s2 = Array.fold_left (fun acc s -> acc +. (s *. s)) 0. svd.Svd.sigma in
      Float.abs (s2 -. (Mat.frobenius a ** 2.)) < 1e-5 *. (1. +. s2))

let () =
  Alcotest.run "svd"
    [ ( "known",
        [ Alcotest.test_case "diagonal" `Quick test_diagonal;
          Alcotest.test_case "rank deficient" `Quick test_rank_deficient;
          Alcotest.test_case "zero" `Quick test_zero_matrix;
          Alcotest.test_case "nuclear norm" `Quick test_nuclear_norm ] );
      ( "invariants",
        [ Alcotest.test_case "reconstruct tall" `Quick test_reconstruction_tall;
          Alcotest.test_case "reconstruct wide" `Quick test_reconstruction_wide;
          Alcotest.test_case "orthonormal" `Quick test_orthonormal_factors;
          Alcotest.test_case "sigma vs eigen" `Quick test_singular_values_vs_eigen;
          Alcotest.test_case "truncated shapes" `Quick test_truncated;
          Alcotest.test_case "Eckart-Young" `Quick test_truncation_error_optimal ] );
      ( "tall qr+eig",
        [ Alcotest.test_case "reconstruction" `Quick test_tall_reconstruction;
          Alcotest.test_case "orthonormal" `Quick test_tall_orthonormal;
          Alcotest.test_case "matches jacobi" `Quick test_tall_matches_jacobi;
          Alcotest.test_case "wide via transpose" `Quick test_wide_qr_eig;
          Alcotest.test_case "rank deficient" `Quick test_tall_rank_deficient;
          Alcotest.test_case "zero" `Quick test_tall_zero ] );
      ( "randomized",
        [ Alcotest.test_case "exact on low rank" `Quick test_randomized_exact_on_low_rank;
          Alcotest.test_case "subspace angle" `Quick test_randomized_subspace_angle;
          Alcotest.test_case "orthonormal" `Quick test_randomized_orthonormal;
          Alcotest.test_case "sigma bounds" `Quick test_randomized_sigma_bounds;
          Alcotest.test_case "deterministic" `Quick test_randomized_deterministic ] );
      ( "properties",
        [ prop_spectral_bound; prop_frobenius_is_sigma_norm; prop_randomized_matches_qr_eig ]
      ) ]
